// Package cliutil holds the flag conventions shared by every cmd/ tool:
// the -workers flag that sizes the execution engine's scheduler, and the
// BENCH_*.json emission used by the benchmark commands.
package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
)

// WorkersFlag registers the shared -workers flag: every tool exposes the
// same knob with the same meaning, plumbed into the engine scheduler.
func WorkersFlag() *int {
	return flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
}

// MaxStepsFlag registers the shared -max-steps flag: the per-case executed
// instruction budget fed to engine.Options.MaxInstructions. Exhaustion is a
// classified harness fault, not a crash.
func MaxStepsFlag() *int64 {
	return flag.Int64("max-steps", 0, "per-case instruction budget (0 = interpreter default)")
}

// MaxDepthFlag registers the shared -max-depth flag: the per-case simulated
// call-depth limit fed to engine.Options.MaxCallDepth.
func MaxDepthFlag() *int {
	return flag.Int("max-depth", 0, "per-case call-depth limit (0 = interpreter default)")
}

// ResolveWorkers maps the flag value to a concrete worker count.
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// WriteJSON writes v, pretty-printed, to path.
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
