// Package obs is the repository's unified observability layer: a metrics
// registry (counters, gauges, log-bucketed histograms) with lock-free
// hot-path recording and JSON + Prometheus-text exposition, a check-site
// profiler attributing executed sanitizer checks to their static sites, a
// Chrome trace_event span recorder for flame-chart inspection of the engine
// pipeline, and a live HTTP introspection endpoint (metric snapshots plus
// net/http/pprof) for watching long-running campaigns without stopping them.
//
// The package is dependency-free within the repository: everything else
// (engine, interp, harness, fuzz, cliutil, the cmd/ tools) imports obs,
// never the reverse. Observability is strictly off the report path — the
// layer only ever *reads* execution state, so differential fuzz reports and
// the Table II output are byte-identical whether an Observer is attached or
// not (pinned by TestFuzzReportByteIdentity / TestTable2ByteIdentity).
package obs

// Observer bundles the three observability facilities a consumer can attach
// to the execution pipeline. Registry is always present; Tracer and Sites
// are nil unless the corresponding flag (-trace, -profile-checks) enabled
// them, so their costs — span recording, per-check timing — are strictly
// opt-in.
type Observer struct {
	// Registry holds the metric instruments. Never nil on an Observer built
	// with New.
	Registry *Registry
	// Tracer records engine pipeline spans (instrument/execute/reset) for
	// Chrome trace_event export; nil disables span recording.
	Tracer *Tracer
	// Sites profiles executed checks per (sanitizer, check site); nil
	// disables the per-check timing instrumentation.
	Sites *SiteProfiler
}

// New returns an Observer with a fresh Registry and no tracer or site
// profiler. Callers enable those by assigning NewTracer / NewSiteProfiler.
func New() *Observer {
	return &Observer{Registry: NewRegistry()}
}
