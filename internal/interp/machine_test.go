package interp

import (
	"fmt"
	"errors"
	"strings"
	"testing"

	"cecsan/internal/sanitizers/nosan"
	"cecsan/prog"
)

// runNative builds and runs a program under the uninstrumented baseline.
func runNative(t *testing.T, pb *prog.ProgramBuilder) *Result {
	t.Helper()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m, err := New(p, nosan.Sanitizer(), DefaultOptions())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m.Run()
}

func TestArithmeticAndReturn(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	a := f.Const(6)
	b := f.Const(7)
	f.Ret(f.Mul(a, b))
	res := runNative(t, pb)
	if !res.Ok() {
		t.Fatalf("run failed: %+v", res)
	}
	if res.Ret != 42 {
		t.Fatalf("Ret = %d, want 42", res.Ret)
	}
}

func TestAllBinaryOps(t *testing.T) {
	tests := []struct {
		op   prog.BinOp
		a, b int64
		want uint64
	}{
		{prog.BinAdd, 5, 3, 8},
		{prog.BinSub, 5, 3, 2},
		{prog.BinMul, 5, 3, 15},
		{prog.BinDiv, -15, 4, ^uint64(2)},
		{prog.BinRem, -15, 4, ^uint64(2)},
		{prog.BinAnd, 0b1100, 0b1010, 0b1000},
		{prog.BinOr, 0b1100, 0b1010, 0b1110},
		{prog.BinXor, 0b1100, 0b1010, 0b0110},
		{prog.BinShl, 3, 4, 48},
		{prog.BinShr, 48, 4, 3},
	}
	for _, tt := range tests {
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		f.Ret(f.Bin(tt.op, f.Const(tt.a), f.Const(tt.b)))
		res := runNative(t, pb)
		if !res.Ok() || res.Ret != tt.want {
			t.Errorf("op %d: Ret = %d (ok=%v), want %d", tt.op, res.Ret, res.Ok(), tt.want)
		}
	}
}

func TestDivisionByZeroFaults(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	f.Ret(f.Bin(prog.BinDiv, f.Const(1), f.Const(0)))
	res := runNative(t, pb)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "SIGFPE") {
		t.Fatalf("expected SIGFPE, got %+v", res)
	}
}

func TestComparisonPredicates(t *testing.T) {
	tests := []struct {
		pred prog.CmpPred
		a, b int64
		want uint64
	}{
		{prog.CmpEq, 3, 3, 1},
		{prog.CmpNe, 3, 3, 0},
		{prog.CmpSLt, -1, 1, 1},
		{prog.CmpULt, -1, 1, 0}, // -1 is huge unsigned
		{prog.CmpSGe, 5, 5, 1},
		{prog.CmpUGt, -1, 1, 1},
		{prog.CmpSLe, 4, 3, 0},
		{prog.CmpUGe, 0, 0, 1},
		{prog.CmpSGt, 1, 2, 0},
		{prog.CmpULe, 2, 2, 1},
	}
	for _, tt := range tests {
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		f.Ret(f.Cmp(tt.pred, f.Const(tt.a), f.Const(tt.b)))
		res := runNative(t, pb)
		if res.Ret != tt.want {
			t.Errorf("pred %d (%d,%d): got %d, want %d", tt.pred, tt.a, tt.b, res.Ret, tt.want)
		}
	}
}

func TestIfBothBranches(t *testing.T) {
	for _, cond := range []int64{0, 1} {
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		out := f.NewReg()
		f.If(f.Const(cond),
			func() { f.AssignConst(out, 111) },
			func() { f.AssignConst(out, 222) },
		)
		f.Ret(out)
		res := runNative(t, pb)
		want := uint64(222)
		if cond != 0 {
			want = 111
		}
		if res.Ret != want {
			t.Errorf("cond=%d: Ret = %d, want %d", cond, res.Ret, want)
		}
	}
}

func TestForRangeSum(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	sum := f.NewReg()
	f.AssignConst(sum, 0)
	f.ForRange(prog.ConstOperand(0), prog.ConstOperand(101), 1, func(i prog.Reg) {
		f.Assign(sum, f.Add(sum, i))
	})
	f.Ret(sum)
	res := runNative(t, pb)
	if res.Ret != 5050 {
		t.Fatalf("sum 0..100 = %d, want 5050", res.Ret)
	}
}

func TestDescendingLoop(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	count := f.NewReg()
	f.AssignConst(count, 0)
	f.ForRange(prog.ConstOperand(10), prog.ConstOperand(0), -2, func(i prog.Reg) {
		f.Assign(count, f.AddImm(count, 1))
	})
	f.Ret(count)
	res := runNative(t, pb)
	if res.Ret != 5 { // 10,8,6,4,2
		t.Fatalf("iterations = %d, want 5", res.Ret)
	}
}

func TestWhileLoop(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	n := f.NewReg()
	f.AssignConst(n, 1)
	f.While(
		func() prog.Reg { return f.Cmp(prog.CmpSLt, n, f.Const(1000)) },
		func() { f.Assign(n, f.Mul(n, f.Const(2))) },
	)
	f.Ret(n)
	res := runNative(t, pb)
	if res.Ret != 1024 {
		t.Fatalf("Ret = %d, want 1024", res.Ret)
	}
}

func TestMemoryLoadStore(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	buf := f.MallocType(prog.ArrayOf(prog.Int64T(), 4))
	f.Store(buf, 24, f.Const(0xDEAD), prog.Int64T())
	v := f.Load(buf, 24, prog.Int64T())
	f.Free(buf)
	f.Ret(v)
	res := runNative(t, pb)
	if !res.Ok() || res.Ret != 0xDEAD {
		t.Fatalf("Ret = %#x (res=%+v), want 0xdead", res.Ret, res)
	}
	if res.Stats.Mallocs != 1 || res.Stats.Frees != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestAllocaAndFieldAccess(t *testing.T) {
	st := prog.StructOf("S",
		prog.FieldSpec{Name: "a", Type: prog.Int()},
		prog.FieldSpec{Name: "b", Type: prog.Int64T()},
	)
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	s := f.Alloca(st)
	fb := f.FieldPtr(s, st, "b")
	f.Store(fb, 0, f.Const(77), prog.Int64T())
	f.Ret(f.Load(s, 8, prog.Int64T())) // field b is at offset 8
	res := runNative(t, pb)
	if res.Ret != 77 {
		t.Fatalf("Ret = %d, want 77", res.Ret)
	}
}

func TestFunctionCallsAndRecursion(t *testing.T) {
	pb := prog.NewProgram()
	fib := pb.Function("fib", 1)
	n := fib.Arg(0)
	fib.If(fib.Cmp(prog.CmpSLt, n, fib.Const(2)),
		func() { fib.Ret(n) },
		func() {
			a := fib.Call("fib", fib.Sub(n, fib.Const(1)))
			b := fib.Call("fib", fib.Sub(n, fib.Const(2)))
			fib.Ret(fib.Add(a, b))
		},
	)
	f := pb.Function("main", 0)
	f.Ret(f.Call("fib", f.Const(15)))
	res := runNative(t, pb)
	if res.Ret != 610 {
		t.Fatalf("fib(15) = %d, want 610", res.Ret)
	}
}

func TestCallDepthLimit(t *testing.T) {
	pb := prog.NewProgram()
	loop := pb.Function("spin", 1)
	loop.Ret(loop.Call("spin", loop.Arg(0)))
	f := pb.Function("main", 0)
	f.Ret(f.Call("spin", f.Const(0)))
	res := runNative(t, pb)
	if !errors.Is(res.Err, ErrCallDepth) {
		t.Fatalf("err = %v, want ErrCallDepth", res.Err)
	}
}

func TestInstructionBudget(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	f.While(func() prog.Reg { return f.Const(1) }, func() {})
	p := pb.MustBuild()
	opts := DefaultOptions()
	opts.MaxInstructions = 10000
	m, err := New(p, nosan.Sanitizer(), opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := m.Run()
	if !errors.Is(res.Err, ErrInstructionBudget) {
		t.Fatalf("err = %v, want ErrInstructionBudget", res.Err)
	}
}

func TestGlobalsInitAndAccess(t *testing.T) {
	pb := prog.NewProgram()
	pb.GlobalInit("flag", prog.Int(), 5)
	pb.GlobalBytes("msg", []byte("hi"))
	f := pb.Function("main", 0)
	g := f.GlobalAddr("flag")
	v := f.Load(g, 0, prog.Int())
	s := f.GlobalAddr("msg")
	c := f.Load(s, 1, prog.Char())
	f.Ret(f.Add(v, c)) // 5 + 'i'
	res := runNative(t, pb)
	if res.Ret != 5+'i' {
		t.Fatalf("Ret = %d, want %d", res.Ret, 5+'i')
	}
}

func TestLibcMemcpyAndStrlen(t *testing.T) {
	pb := prog.NewProgram()
	pb.GlobalBytes("src", []byte("hello"))
	f := pb.Function("main", 0)
	dst := f.MallocBytes(16)
	src := f.GlobalAddr("src")
	f.Libc("memcpy", dst, src, f.Const(6))
	f.Ret(f.Libc("strlen", dst))
	res := runNative(t, pb)
	if !res.Ok() || res.Ret != 5 {
		t.Fatalf("strlen = %d (res=%+v), want 5", res.Ret, res)
	}
}

func TestLibcStringFamily(t *testing.T) {
	pb := prog.NewProgram()
	pb.GlobalBytes("src", []byte("abc"))
	f := pb.Function("main", 0)
	src := f.GlobalAddr("src")
	d1 := f.MallocBytes(16)
	f.Libc("strcpy", d1, src)
	d2 := f.MallocBytes(16)
	f.Libc("strncpy", d2, d1, f.Const(8))
	f.Libc("strcat", d2, src)
	f.Ret(f.Libc("strlen", d2)) // "abcabc" -> 6
	res := runNative(t, pb)
	if !res.Ok() || res.Ret != 6 {
		t.Fatalf("Ret = %d (res=%+v), want 6", res.Ret, res)
	}
}

func TestLibcWideFamily(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	a := f.MallocType(prog.ArrayOf(prog.WChar(), 8))
	b := f.MallocType(prog.ArrayOf(prog.WChar(), 8))
	f.Libc("wmemset", a, f.Const('W'), f.Const(7)) // 7 wide chars + NUL terminator
	f.Libc("wcsncpy", b, a, f.Const(8))
	f.Ret(f.Libc("wcslen", b))
	res := runNative(t, pb)
	if !res.Ok() || res.Ret != 7 {
		t.Fatalf("wcslen = %d (res=%+v), want 7", res.Ret, res)
	}
}

func TestInputFeedFgets(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	buf := f.MallocBytes(32)
	n := f.Libc("fgets", buf, f.Const(32))
	f.Ret(n)
	p := pb.MustBuild()
	m, err := New(p, nosan.Sanitizer(), DefaultOptions())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.Feed([]byte("external-input"))
	res := m.Run()
	if res.Ret != 14 {
		t.Fatalf("fgets returned %d, want 14", res.Ret)
	}
	// Without input, fgets returns 0.
	m2, _ := New(p, nosan.Sanitizer(), DefaultOptions())
	if got := m2.Run().Ret; got != 0 {
		t.Fatalf("fgets with empty feed = %d, want 0", got)
	}
}

func TestFgetsTruncatesToBuffer(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	buf := f.MallocBytes(8)
	f.Ret(f.Libc("fgets", buf, f.Const(8)))
	p := pb.MustBuild()
	m, _ := New(p, nosan.Sanitizer(), DefaultOptions())
	m.Feed([]byte("0123456789ABCDEF"))
	res := m.Run()
	if res.Ret != 7 { // 8-byte buffer: 7 chars + NUL
		t.Fatalf("fgets wrote %d, want 7", res.Ret)
	}
}

func TestPrintOutput(t *testing.T) {
	pb := prog.NewProgram()
	pb.GlobalBytes("msg", []byte("hello world"))
	f := pb.Function("main", 0)
	f.Libc("print_int", f.Const(42))
	f.Libc("print_str", f.GlobalAddr("msg"))
	f.RetVoid()
	p := pb.MustBuild()
	m, _ := New(p, nosan.Sanitizer(), DefaultOptions())
	if res := m.Run(); !res.Ok() {
		t.Fatalf("run failed: %+v", res)
	}
	out := m.Output()
	if len(out) != 2 || out[0] != "42" || out[1] != "hello world" {
		t.Fatalf("output = %q", out)
	}
}

func TestRandIsDeterministicPerSeed(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	f.Ret(f.Libc("rand"))
	p := pb.MustBuild()
	opts := DefaultOptions()
	opts.Seed = 7
	m1, _ := New(p, nosan.Sanitizer(), opts)
	m2, _ := New(p, nosan.Sanitizer(), opts)
	if a, b := m1.Run().Ret, m2.Run().Ret; a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	opts.Seed = 8
	m3, _ := New(p, nosan.Sanitizer(), opts)
	if a, c := m1.Run().Ret, m3.Run().Ret; a == c {
		t.Fatalf("different seeds collided: %d", a)
	}
}

func TestExternalCallIdentityAndFill(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	buf := f.MallocBytes(16)
	same := f.CallExternal("ext_identity", true, buf)
	f.CallExternal("ext_fill", false, same, f.Const(16), f.Const(0x5A))
	f.Ret(f.Load(same, 15, prog.Char()))
	res := runNative(t, pb)
	if !res.Ok() || res.Ret != 0x5A {
		t.Fatalf("Ret = %#x (res=%+v), want 0x5a", res.Ret, res)
	}
	if res.Stats.ExternCalls != 2 {
		t.Fatalf("ExternCalls = %d, want 2", res.Stats.ExternCalls)
	}
}

func TestExternalAllocFreeRoundTrip(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	p := f.CallExternal("ext_alloc", false, f.Const(64))
	f.Store(p, 0, f.Const(9), prog.Int64T())
	v := f.Load(p, 0, prog.Int64T())
	f.CallExternal("ext_free", false, p)
	f.Ret(v)
	res := runNative(t, pb)
	if !res.Ok() || res.Ret != 9 {
		t.Fatalf("res = %+v", res)
	}
}

func TestUnknownSymbolsError(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	f.Libc("no_such_libc")
	f.RetVoid()
	res := runNative(t, pb)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "unknown libc") {
		t.Fatalf("err = %v", res.Err)
	}

	pb2 := prog.NewProgram()
	f2 := pb2.Function("main", 0)
	f2.CallExternal("no_such_ext", false)
	f2.RetVoid()
	res2 := runNative(t, pb2)
	if res2.Err == nil || !strings.Contains(res2.Err.Error(), "unknown external") {
		t.Fatalf("err = %v", res2.Err)
	}
}

func TestParForComputesInParallel(t *testing.T) {
	pb := prog.NewProgram()
	pb.Global("results", prog.ArrayOf(prog.Int64T(), 64))
	w := pb.Function("worker", 1)
	i := w.Arg(0)
	slot := w.ElemPtr(w.GlobalAddr("results"), prog.Int64T(), i)
	w.Store(slot, 0, w.Mul(i, i), prog.Int64T())
	w.RetVoid()
	f := pb.Function("main", 0)
	f.ParFor("worker", f.Const(0), f.Const(64), 4)
	sum := f.NewReg()
	f.AssignConst(sum, 0)
	g := f.GlobalAddr("results")
	f.ForRange(prog.ConstOperand(0), prog.ConstOperand(64), 1, func(i prog.Reg) {
		f.Assign(sum, f.Add(sum, f.Load(f.ElemPtr(g, prog.Int64T(), i), 0, prog.Int64T())))
	})
	f.Ret(sum)
	res := runNative(t, pb)
	want := uint64(0)
	for i := 0; i < 64; i++ {
		want += uint64(i * i)
	}
	if !res.Ok() || res.Ret != want {
		t.Fatalf("parallel sum = %d (res=%+v), want %d", res.Ret, res, want)
	}
}

func TestStatsAndRSSAccounting(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	f.ForRange(prog.ConstOperand(0), prog.ConstOperand(100), 1, func(i prog.Reg) {
		p := f.MallocBytes(1 << 16) // one chunk each
		f.Store(p, 0, i, prog.Int64T())
		f.Free(p)
	})
	f.RetVoid()
	res := runNative(t, pb)
	if !res.Ok() {
		t.Fatalf("res = %+v", res)
	}
	if res.Stats.Mallocs != 100 || res.Stats.Frees != 100 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if res.Stats.Instructions == 0 {
		t.Fatal("instruction count not recorded")
	}
	// Freed chunks are reused, so the footprint must stay near one chunk,
	// not 100.
	if res.Stats.PeakProgramBytes > 1<<20 {
		t.Fatalf("PeakProgramBytes = %d, want < 1MiB (allocator reuse)", res.Stats.PeakProgramBytes)
	}
	if res.Stats.PeakRSS < res.Stats.PeakProgramBytes {
		t.Fatal("PeakRSS < PeakProgramBytes")
	}
}

func TestWildPointerDereferenceFaults(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	bad := f.Const(int64(uint64(3) << 47)) // tagged-looking wild pointer
	f.Ret(f.Load(bad, 0, prog.Int64T()))
	res := runNative(t, pb)
	if res.Fault == nil {
		t.Fatalf("expected machine fault, got %+v", res)
	}
}

func TestParForStatsMergeExactly(t *testing.T) {
	// Every parfor worker thread allocates, stores, loads and frees, so the
	// per-thread counters merge concurrently at thread exit. The totals must
	// be exact regardless of scheduling; run under -race this also exercises
	// the atomic merge path.
	const iters = 64
	pb := prog.NewProgram()
	w := pb.Function("worker", 1)
	i := w.Arg(0)
	buf := w.MallocBytes(32)
	w.Store(buf, 0, i, prog.Int64T())
	w.Load(buf, 0, prog.Int64T())
	w.Free(buf)
	w.RetVoid()
	f := pb.Function("main", 0)
	f.ParFor("worker", f.Const(0), f.Const(iters), 8)
	f.RetVoid()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	run := func() *Result {
		m, err := New(p, nosan.Sanitizer(), DefaultOptions())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return m.Run()
	}
	res := run()
	if !res.Ok() {
		t.Fatalf("run failed: %+v", res)
	}
	if res.Stats.Mallocs != iters || res.Stats.Frees != iters {
		t.Fatalf("Mallocs/Frees = %d/%d, want %d/%d",
			res.Stats.Mallocs, res.Stats.Frees, iters, iters)
	}
	// Instruction totals are deterministic even under parallel scheduling.
	again := run()
	if res.Stats.Instructions != again.Stats.Instructions {
		t.Fatalf("instruction count unstable across runs: %d vs %d",
			res.Stats.Instructions, again.Stats.Instructions)
	}
}

func TestNewOnResetReproducesFreshRun(t *testing.T) {
	// A machine on recycled (Reset) resources must behave byte-identically
	// to one on fresh resources: same return value, same stats, same RSS
	// high-water marks, and the same heap addresses handed out.
	pb := prog.NewProgram()
	pb.GlobalBytes("msg", []byte("pool"))
	f := pb.Function("main", 0)
	buf := f.MallocBytes(4096)
	f.Store(buf, 0, f.Load(f.GlobalAddr("msg"), 0, prog.Char()), prog.Char())
	v := f.Load(buf, 0, prog.Int64T())
	f.Free(buf)
	f.Ret(v)
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	opts := DefaultOptions()

	fresh, err := New(p, nosan.Sanitizer(), opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want := fresh.Run()

	res, err := NewResources(opts.AddrBits)
	if err != nil {
		t.Fatalf("NewResources: %v", err)
	}
	for round := 0; round < 3; round++ {
		m, err := NewOn(res, p, nosan.Sanitizer(), opts)
		if err != nil {
			t.Fatalf("NewOn round %d: %v", round, err)
		}
		got := m.Run()
		if got.Ret != want.Ret || got.Stats != want.Stats {
			t.Fatalf("round %d diverged from fresh run:\n got %+v\nwant %+v", round, got, want)
		}
		res.Reset()
	}

	// Mismatched address widths must be rejected rather than silently
	// producing wrong tagging semantics.
	narrow := opts
	narrow.AddrBits = 48
	if _, err := NewOn(res, p, nosan.Sanitizer(), narrow); err == nil {
		t.Fatal("NewOn accepted a 47-bit space for 48-bit options")
	}
}

// TestPooledResourcesGlobalTableIsolation pins the map-pooling contract of
// Resources: the Global Pointer Table maps live on the bundle and are
// recycled across machines, so a machine built on freshly Reset resources
// must see exactly its own program's globals — never stale entries from the
// previous occupant.
func TestPooledResourcesGlobalTableIsolation(t *testing.T) {
	pb1 := prog.NewProgram()
	pb1.GlobalInit("only_in_p1", prog.Int(), 11)
	f1 := pb1.Function("main", 0)
	f1.Ret(f1.Load(f1.GlobalAddr("only_in_p1"), 0, prog.Int()))
	p1 := pb1.MustBuild()

	pb2 := prog.NewProgram()
	pb2.GlobalInit("only_in_p2", prog.Int(), 22)
	f2 := pb2.Function("main", 0)
	f2.Ret(f2.Load(f2.GlobalAddr("only_in_p2"), 0, prog.Int()))
	p2 := pb2.MustBuild()

	res, err := NewResources(47)
	if err != nil {
		t.Fatalf("NewResources: %v", err)
	}
	m1, err := NewOn(res, p1, nosan.Sanitizer(), DefaultOptions())
	if err != nil {
		t.Fatalf("NewOn p1: %v", err)
	}
	if got := m1.Run(); got.Ret != 11 {
		t.Fatalf("p1 Ret = %d, want 11", got.Ret)
	}
	res.Reset()
	m2, err := NewOn(res, p2, nosan.Sanitizer(), DefaultOptions())
	if err != nil {
		t.Fatalf("NewOn p2: %v", err)
	}
	if _, stale := m2.globalPtr["only_in_p1"]; stale {
		t.Fatal("global table leaked an entry from the previous pooled machine")
	}
	if got := m2.Run(); got.Ret != 22 {
		t.Fatalf("p2 Ret = %d, want 22", got.Ret)
	}
}

// BenchmarkNewOnPooled measures the pooled machine-construction path the
// engine pays once per case: Reset plus NewOn on a recycled bundle, for a
// program with a realistic global count. The global-map pooling keeps this
// allocation-flat in the number of globals.
func BenchmarkNewOnPooled(b *testing.B) {
	pb := prog.NewProgram()
	for i := 0; i < 16; i++ {
		pb.GlobalInit(fmt.Sprintf("g%d", i), prog.Int(), int64(i))
	}
	f := pb.Function("main", 0)
	f.Ret(f.Const(0))
	p := pb.MustBuild()
	res, err := NewResources(47)
	if err != nil {
		b.Fatalf("NewResources: %v", err)
	}
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewOn(res, p, nosan.Sanitizer(), opts)
		if err != nil {
			b.Fatalf("NewOn: %v", err)
		}
		_ = m
		res.Reset()
	}
}
