package faultinject

import (
	"errors"
	"testing"
)

func TestScheduleDeterministic(t *testing.T) {
	for seed := uint64(1); seed < 50; seed++ {
		for key := uint64(0); key < 50; key++ {
			a, b := Schedule(seed, key), Schedule(seed, key)
			if a != b {
				t.Fatalf("Schedule(%d,%d) not deterministic: %+v vs %+v", seed, key, a, b)
			}
		}
	}
}

func TestScheduleSeedZeroDisables(t *testing.T) {
	for key := uint64(0); key < 100; key++ {
		if p := Schedule(0, key); !p.Zero() {
			t.Fatalf("Schedule(0,%d) = %+v, want zero plan", key, p)
		}
	}
}

// Schedule must never set MallocPanicNth: injected panics are a test-only
// device for exercising the engine's recovery path, not a campaign fault.
func TestScheduleNeverPanics(t *testing.T) {
	for seed := uint64(1); seed < 20; seed++ {
		for key := uint64(0); key < 200; key++ {
			if p := Schedule(seed, key); p.MallocPanicNth != 0 {
				t.Fatalf("Schedule(%d,%d) set MallocPanicNth=%d", seed, key, p.MallocPanicNth)
			}
		}
	}
}

// The schedule should hit every plan family so campaigns exercise all three
// pressure paths plus controls.
func TestScheduleCoversFamilies(t *testing.T) {
	var oom, clamp, page, control int
	for key := uint64(0); key < 400; key++ {
		p := Schedule(7, key)
		switch {
		case p.Zero():
			control++
		case p.MetatableCap > 0:
			clamp++
		case p.PageMapFailNth > 0:
			page++
		case p.MallocFailNth > 0:
			oom++
		}
	}
	if oom == 0 || clamp == 0 || page == 0 || control == 0 {
		t.Fatalf("family coverage oom=%d clamp=%d page=%d control=%d: some family never scheduled",
			oom, clamp, page, control)
	}
}

func TestInjectorMallocFailNth(t *testing.T) {
	in := New(Plan{MallocFailNth: 3})
	for i := 1; i <= 5; i++ {
		err := in.OnMalloc()
		if i == 3 {
			if !errors.Is(err, ErrInjectedOOM) {
				t.Fatalf("malloc %d: got %v, want ErrInjectedOOM", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("malloc %d: unexpected error %v", i, err)
		}
	}
	if got := in.Triggered(); got != 1 {
		t.Fatalf("Triggered = %d, want 1", got)
	}
}

func TestInjectorMallocPanicNth(t *testing.T) {
	in := New(Plan{MallocPanicNth: 2})
	if err := in.OnMalloc(); err != nil {
		t.Fatalf("malloc 1: unexpected error %v", err)
	}
	defer func() {
		v := recover()
		if v != PanicValue {
			t.Fatalf("recovered %v, want PanicValue", v)
		}
		if got := in.Triggered(); got != 1 {
			t.Fatalf("Triggered = %d, want 1", got)
		}
	}()
	in.OnMalloc()
	t.Fatal("malloc 2 did not panic")
}

func TestInjectorPageMapFailNth(t *testing.T) {
	in := New(Plan{PageMapFailNth: 4})
	for i := 1; i <= 6; i++ {
		failed := in.OnPageMap()
		if (i == 4) != failed {
			t.Fatalf("page map %d: failed=%v", i, failed)
		}
	}
	if got := in.Triggered(); got != 1 {
		t.Fatalf("Triggered = %d, want 1", got)
	}
}

func TestInjectorZeroPlanNeverFires(t *testing.T) {
	in := New(Plan{})
	for i := 0; i < 100; i++ {
		if err := in.OnMalloc(); err != nil {
			t.Fatalf("OnMalloc fired on zero plan: %v", err)
		}
		if in.OnPageMap() {
			t.Fatal("OnPageMap fired on zero plan")
		}
	}
	if got := in.Triggered(); got != 0 {
		t.Fatalf("Triggered = %d, want 0", got)
	}
}
