package interp

import (
	"testing"

	"cecsan/internal/core"
	"cecsan/internal/instrument"
	"cecsan/internal/rt"
	"cecsan/internal/sanitizers/nosan"
	"cecsan/prog"
)

// runCECSan instruments and runs under default CECSan (the libc tests need
// a checking sanitizer).
func runCECSanProg(t *testing.T, pb *prog.ProgramBuilder, inputs ...[]byte) *Result {
	t.Helper()
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	san, err := core.Sanitizer(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ip := instrument.Apply(p, san.Profile)
	m, err := New(ip, san, DefaultOptions())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, in := range inputs {
		m.Feed(in)
	}
	return m.Run()
}

func TestCallocZeroesRecycledMemory(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	a := f.MallocBytes(64)
	f.Libc("memset", a, f.Const(0xFF), f.Const(64))
	f.Free(a)
	// calloc must reuse the dirty chunk and zero it.
	b := f.Libc("calloc", f.Const(8), f.Const(8))
	f.Ret(f.Load(b, 32, prog.Int64T()))
	res := runCECSanProg(t, pb)
	if !res.Ok() || res.Ret != 0 {
		t.Fatalf("calloc returned dirty memory: ret=%d res=%+v", res.Ret, res)
	}
}

func TestReallocGrowPreservesData(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	a := f.MallocBytes(16)
	f.Store(a, 8, f.Const(0xAB), prog.Int64T())
	b := f.Libc("realloc", a, f.Const(128))
	f.Store(b, 120, f.Const(1), prog.Int64T()) // new tail is accessible
	v := f.Load(b, 8, prog.Int64T())
	f.Libc("realloc", b, f.Const(0)) // realloc(p, 0) frees
	f.Ret(v)
	res := runCECSanProg(t, pb)
	if !res.Ok() || res.Ret != 0xAB {
		t.Fatalf("realloc lost data: ret=%#x res=%+v", res.Ret, res)
	}
	if res.Stats.Mallocs != 2 || res.Stats.Frees != 2 {
		t.Fatalf("realloc accounting: %+v", res.Stats)
	}
}

func TestReallocShrinkProtectsNewBounds(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	a := f.MallocBytes(128)
	b := f.Libc("realloc", a, f.Const(16))
	f.Store(b, 16, f.Const(1), prog.Char()) // past the shrunken object
	f.RetVoid()
	res := runCECSanProg(t, pb)
	if res.Violation == nil {
		t.Fatal("write past shrunken realloc not detected")
	}
}

func TestReallocOfFreedPointerDetected(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	a := f.MallocBytes(32)
	f.Free(a)
	f.Libc("realloc", a, f.Const(64))
	f.RetVoid()
	res := runCECSanProg(t, pb)
	if res.Violation == nil {
		t.Fatal("realloc of freed pointer not detected")
	}
	// The freed entry may have been recycled by realloc's own allocation,
	// so CECSan classifies this as double-free OR invalid-free (the paper's
	// documented approximation after entry reuse) — either way it reports.
	if k := res.Violation.Kind; k != rt.KindDoubleFree && k != rt.KindInvalidFree {
		t.Fatalf("kind = %v, want double-free or invalid-free", k)
	}
}

func TestUseAfterReallocDetected(t *testing.T) {
	// The classic realloc bug: keep using the OLD pointer after realloc
	// moved the object.
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	a := f.MallocBytes(32)
	f.Libc("realloc", a, f.Const(64))
	f.Store(a, 0, f.Const(1), prog.Char()) // stale pointer
	f.RetVoid()
	res := runCECSanProg(t, pb)
	if res.Violation == nil {
		t.Fatal("use of stale pre-realloc pointer not detected")
	}
}

func TestMemcmpSemanticsAndChecks(t *testing.T) {
	pb := prog.NewProgram()
	pb.GlobalBytes("x", []byte("abcdef"))
	pb.GlobalBytes("y", []byte("abcxef"))
	f := pb.Function("main", 0)
	r1 := f.Libc("memcmp", f.GlobalAddr("x"), f.GlobalAddr("y"), f.Const(3))
	r2 := f.Libc("memcmp", f.GlobalAddr("x"), f.GlobalAddr("y"), f.Const(6))
	// r1 == 0, r2 != 0 -> ret = r1*10 + (r2 != 0)
	ne := f.Cmp(prog.CmpNe, r2, f.Const(0))
	f.Ret(f.Add(f.Mul(r1, f.Const(10)), ne))
	res := runCECSanProg(t, pb)
	if !res.Ok() || res.Ret != 1 {
		t.Fatalf("memcmp semantics: ret=%d res=%+v", res.Ret, res)
	}

	// Overread through memcmp is checked.
	pb2 := prog.NewProgram()
	f2 := pb2.Function("main", 0)
	a := f2.MallocBytes(8)
	b := f2.MallocBytes(8)
	f2.Libc("memcmp", a, b, f2.Const(16))
	f2.RetVoid()
	if res := runCECSanProg(t, pb2); res.Violation == nil {
		t.Fatal("memcmp overread not detected")
	}
}

func TestStrcmpFamily(t *testing.T) {
	pb := prog.NewProgram()
	pb.GlobalBytes("a", []byte("hello"))
	pb.GlobalBytes("b", []byte("help"))
	f := pb.Function("main", 0)
	eq3 := f.Libc("strncmp", f.GlobalAddr("a"), f.GlobalAddr("b"), f.Const(3))
	full := f.Libc("strcmp", f.GlobalAddr("a"), f.GlobalAddr("b"))
	lt := f.Cmp(prog.CmpNe, full, f.Const(0))
	f.Ret(f.Add(f.Mul(eq3, f.Const(10)), lt)) // 0*10 + 1
	res := runCECSanProg(t, pb)
	if !res.Ok() || res.Ret != 1 {
		t.Fatalf("strcmp family: ret=%d res=%+v", res.Ret, res)
	}
}

func TestMemchrAndStrnlen(t *testing.T) {
	pb := prog.NewProgram()
	pb.GlobalBytes("s", []byte("finding"))
	f := pb.Function("main", 0)
	g := f.GlobalAddr("s")
	hit := f.Libc("memchr", g, f.Const('d'), f.Const(7))
	off := f.Sub(hit, g)
	n := f.Libc("strnlen", g, f.Const(4))
	f.Ret(f.Add(f.Mul(off, f.Const(10)), n)) // 3*10 + 4
	res := runCECSanProg(t, pb)
	if !res.Ok() || res.Ret != 34 {
		t.Fatalf("memchr/strnlen: ret=%d res=%+v", res.Ret, res)
	}
	// memchr miss returns NULL.
	pb2 := prog.NewProgram()
	pb2.GlobalBytes("s", []byte("finding"))
	f2 := pb2.Function("main", 0)
	f2.Ret(f2.Libc("memchr", f2.GlobalAddr("s"), f2.Const('z'), f2.Const(7)))
	if res := runCECSanProg(t, pb2); res.Ret != 0 {
		t.Fatalf("memchr miss = %#x, want 0", res.Ret)
	}
}

func TestStrncatBoundsChecked(t *testing.T) {
	pb := prog.NewProgram()
	pb.GlobalBytes("suffix", []byte("-tail"))
	f := pb.Function("main", 0)
	buf := f.MallocBytes(16)
	f.Libc("strcpy", buf, f.GlobalAddr("suffix")) // "-tail" (5 chars)
	f.Libc("strncat", buf, f.GlobalAddr("suffix"), f.Const(5))
	f.Ret(f.Libc("strlen", buf)) // 10
	res := runCECSanProg(t, pb)
	if !res.Ok() || res.Ret != 10 {
		t.Fatalf("strncat: ret=%d res=%+v", res.Ret, res)
	}

	// Appending past the buffer is detected.
	pb2 := prog.NewProgram()
	long := make([]byte, 14)
	for i := range long {
		long[i] = 'x'
	}
	pb2.GlobalBytes("suffix", long)
	f2 := pb2.Function("main", 0)
	buf2 := f2.MallocBytes(16)
	f2.Libc("strcpy", buf2, f2.GlobalAddr("suffix"))
	f2.Libc("strncat", buf2, f2.GlobalAddr("suffix"), f2.Const(14))
	f2.RetVoid()
	if res := runCECSanProg(t, pb2); res.Violation == nil {
		t.Fatal("strncat overflow not detected")
	}
}

func TestUsableSizeThroughRealloc(t *testing.T) {
	// realloc under the native runtime uses the allocator registry.
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	a := f.MallocBytes(24)
	f.Store(a, 0, f.Const(7), prog.Int64T())
	b := f.Libc("realloc", a, f.Const(48))
	f.Ret(f.Load(b, 0, prog.Int64T()))
	p := pb.MustBuild()
	m, err := New(p, nosan.Sanitizer(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if !res.Ok() || res.Ret != 7 {
		t.Fatalf("native realloc: ret=%d res=%+v", res.Ret, res)
	}
}
