// Package asanlite models ASAN-- ("Debloating Address Sanitizer", USENIX
// Security 2022): stock ASan's runtime with compiler passes that remove
// redundant and recurring checks and hoist loop-invariant LOAD checks
// (stores cannot be relocated past redzones, the §II.F.1 contrast).
// Detection behaviour is ASan's; only the check count shrinks.
package asanlite

import (
	"cecsan/internal/rt"
	"cecsan/internal/sanitizers/asan"
)

// options returns the ASAN-- configuration of the ASan runtime.
func options() asan.Options {
	opts := asan.DefaultOptions()
	opts.Name = "ASAN--"
	return opts
}

// ProfileFor derives the ASAN-- instrumentation profile without
// constructing a runtime: ASan's profile plus the debloating passes.
func ProfileFor() rt.Profile {
	p := asan.ProfileFor(options())
	p.OptRedundant = true
	p.OptLoopInvariant = true // loads only: RedzoneBased is set
	return p
}

// Sanitizer returns the ASAN-- bundle.
func Sanitizer() rt.Sanitizer {
	return rt.Sanitizer{Runtime: asan.New(options()), Profile: ProfileFor()}
}
