// Command julietbench regenerates the paper's security evaluation on the
// Juliet-style suite: Table I (suite composition) and Table II (per-CWE
// detection rates for CECSan, PACMem, CryptSan, HWASan, ASan and
// SoftBound/CETS, each on its published evaluation subset).
//
// Usage:
//
//	julietbench [-table 1|2] [-scale 1.0] [-workers N]
//
// -scale shrinks the suite proportionally (e.g. 0.1 runs ~1,575 cases) for
// quick runs; 1.0 is the full 15,752-case Table I suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cecsan/internal/harness"
	"cecsan/internal/juliet"
	"cecsan/internal/sanitizers"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "julietbench:", err)
		os.Exit(1)
	}
}

func run() error {
	table := flag.Int("table", 2, "which table to regenerate (1 or 2)")
	scale := flag.Float64("scale", 1.0, "suite scale factor (1.0 = full 15,752 cases)")
	workers := flag.Int("workers", 0, "parallel case runners (0 = GOMAXPROCS)")
	flag.Parse()

	counts := juliet.TableI()
	var suite []*juliet.Case
	for _, cwe := range juliet.AllCWEs() {
		n := int(float64(counts[cwe]) * *scale)
		if n < 1 {
			n = 1
		}
		cases, err := juliet.Generate(cwe, n)
		if err != nil {
			return err
		}
		suite = append(suite, cases...)
	}

	if *table == 1 {
		fmt.Println(harness.FormatTable1(suite))
		return nil
	}

	tools := []sanitizers.Name{
		sanitizers.CECSan, sanitizers.PACMem, sanitizers.CryptSan,
		sanitizers.HWASan, sanitizers.ASan, sanitizers.SoftBound,
	}
	fmt.Printf("evaluating %d cases x %d tools...\n", len(suite), len(tools))
	start := time.Now()
	eval, err := harness.EvaluateJuliet(suite, tools, *workers)
	if err != nil {
		return err
	}
	fmt.Println(harness.FormatTable2(eval))
	fmt.Printf("(%d cases, %.1fs)\n", len(suite), time.Since(start).Seconds())
	return nil
}
