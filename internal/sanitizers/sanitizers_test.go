package sanitizers

import (
	"testing"

	"cecsan/internal/instrument"
	"cecsan/internal/interp"
	"cecsan/prog"
)

// outcome classifies one sanitizer run of one scenario.
type outcome int

const (
	clean outcome = iota // ran to completion, no report
	report               // sanitizer violation
	crash                // machine fault
)

// runUnder instruments and executes p under the named sanitizer.
func runUnder(t *testing.T, p *prog.Program, name Name) outcome {
	t.Helper()
	san, err := New(name)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	ip := instrument.Apply(p, san.Profile)
	m, err := interp.New(ip, san, interp.DefaultOptions())
	if err != nil {
		t.Fatalf("interp.New(%s): %v", name, err)
	}
	res := m.Run()
	switch {
	case res.Violation != nil:
		return report
	case res.Fault != nil:
		return crash
	case res.Err != nil:
		t.Fatalf("%s: unexpected execution error: %v", name, res.Err)
		return crash
	default:
		return clean
	}
}

// TestRegistry constructs every sanitizer and checks names line up.
func TestRegistry(t *testing.T) {
	for _, name := range All() {
		san, err := New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if got := san.Runtime.Name(); got != string(name) {
			t.Errorf("runtime name %q != registry name %q", got, name)
		}
		if san.Profile.Name != string(name) {
			t.Errorf("profile name %q != registry name %q", san.Profile.Name, name)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("New(bogus) did not error")
	}
}

// TestDetectionMatrix is the mechanism-level core of Table II: each
// scenario is a bug shape, and each sanitizer detects or misses it strictly
// according to its design.
func TestDetectionMatrix(t *testing.T) {
	figure3 := prog.StructOf("CharVoid",
		prog.FieldSpec{Name: "charFirst", Type: prog.ArrayOf(prog.Char(), 16)},
		prog.FieldSpec{Name: "voidSecond", Type: prog.VoidPtr()},
	)

	scenarios := []struct {
		name  string
		build func() *prog.Program
		want  map[Name]outcome
	}{
		{
			// Contiguous heap off-by-one: lands in the adjacent redzone /
			// mismatched granule / out of bounds — everyone catches it.
			name: "heap contiguous overflow",
			build: func() *prog.Program {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				b := f.MallocBytes(64)
				i := f.Libc("rand")
				off := f.Add(f.Bin(prog.BinAnd, i, f.Const(0)), f.Const(64)) // dynamic 64
				f.Store(f.OffsetPtrReg(b, off), 0, f.Const(1), prog.Char())
				f.RetVoid()
				return pb.MustBuild()
			},
			want: map[Name]outcome{
				Native: clean, CECSan: report, ASan: report, ASanLite: report,
				HWASan: report, SoftBound: report, PACMem: report, CryptSan: report,
			},
		},
		{
			// Large stride lands inside ANOTHER live chunk: identity-based
			// tools catch it; ASan's redzone is skipped over. (HWASan
			// catches it because the victim carries a different tag.)
			name: "redzone-skipping stride overflow",
			build: func() *prog.Program {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				a := f.MallocBytes(64)
				bufs := make([]prog.Reg, 8)
				for i := range bufs {
					bufs[i] = f.MallocBytes(64) // victims beyond the redzone
				}
				i := f.Libc("rand")
				off := f.Add(f.Bin(prog.BinAnd, i, f.Const(0)), f.Const(4096+32))
				f.Store(f.OffsetPtrReg(a, off), 0, f.Const(1), prog.Char())
				for _, b := range bufs {
					f.Free(b)
				}
				f.RetVoid()
				return pb.MustBuild()
			},
			want: map[Name]outcome{
				Native: clean, CECSan: report, ASan: clean, ASanLite: clean,
				HWASan: report, SoftBound: report, PACMem: report, CryptSan: report,
			},
		},
		{
			// Off-by-one into an odd-sized buffer's own 16-byte granule:
			// HWASan's uniform granule tag cannot see it; ASan's partial
			// shadow byte can.
			name: "intra-granule overflow",
			build: func() *prog.Program {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				b := f.MallocBytes(13)
				i := f.Libc("rand")
				off := f.Add(f.Bin(prog.BinAnd, i, f.Const(0)), f.Const(13))
				f.Store(f.OffsetPtrReg(b, off), 0, f.Const(1), prog.Char())
				f.RetVoid()
				return pb.MustBuild()
			},
			want: map[Name]outcome{
				Native: clean, CECSan: report, ASan: report, ASanLite: report,
				HWASan: clean, SoftBound: report, PACMem: report, CryptSan: report,
			},
		},
		{
			// Figure 3 sub-object overflow: CECSan only.
			name: "sub-object overflow",
			build: func() *prog.Program {
				pb := prog.NewProgram()
				pb.GlobalBytes("src", make([]byte, 32))
				f := pb.Function("main", 0)
				obj := f.MallocType(figure3)
				fp := f.FieldPtr(obj, figure3, "charFirst")
				f.Libc("memcpy", fp, f.GlobalAddr("src"), f.Const(figure3.Size()))
				f.Free(obj)
				f.RetVoid()
				return pb.MustBuild()
			},
			want: map[Name]outcome{
				Native: clean, CECSan: report, ASan: clean, ASanLite: clean,
				HWASan: clean, SoftBound: clean, PACMem: clean, CryptSan: clean,
			},
		},
		{
			// Wide-character overflow through wcsncpy: interceptor-based
			// tools and the SoftBound wrappers miss the wide family.
			name: "wcsncpy overflow",
			build: func() *prog.Program {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				dst := f.MallocType(prog.ArrayOf(prog.WChar(), 8))
				src := f.MallocType(prog.ArrayOf(prog.WChar(), 16))
				f.Libc("wmemset", src, f.Const('A'), f.Const(15))
				f.Libc("wcsncpy", dst, src, f.Const(16)) // 64 bytes into 32
				f.Free(dst)
				f.Free(src)
				f.RetVoid()
				return pb.MustBuild()
			},
			want: map[Name]outcome{
				Native: clean, CECSan: report, ASan: clean, ASanLite: clean,
				HWASan: clean, SoftBound: clean, PACMem: report, CryptSan: report,
			},
		},
		{
			// Immediate heap use-after-free: everyone.
			name: "immediate UAF",
			build: func() *prog.Program {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				b := f.MallocBytes(64)
				f.Free(b)
				f.Store(b, 0, f.Const(1), prog.Int64T())
				f.RetVoid()
				return pb.MustBuild()
			},
			want: map[Name]outcome{
				Native: clean, CECSan: report, ASan: report, ASanLite: report,
				HWASan: report, SoftBound: report, PACMem: report, CryptSan: report,
			},
		},
		{
			// UAF through a pointer that round-tripped through memory: the
			// SoftBound prototype's shadow loses the CETS key (§IV.B flaw).
			name: "UAF via reloaded pointer",
			build: func() *prog.Program {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				cell := f.MallocType(prog.PtrTo(prog.Char()))
				b := f.MallocBytes(64)
				f.Store(cell, 0, b, prog.PtrTo(prog.Char()))
				f.Free(b)
				reloaded := f.Load(cell, 0, prog.PtrTo(prog.Char()))
				f.Store(reloaded, 0, f.Const(1), prog.Char())
				f.RetVoid()
				return pb.MustBuild()
			},
			want: map[Name]outcome{
				Native: clean, CECSan: report, ASan: report, ASanLite: report,
				HWASan: report, SoftBound: clean, PACMem: report, CryptSan: report,
			},
		},
		{
			// UAF after the quarantine has been flushed by heavy allocation
			// and the chunk reused by a new object: ASan's poison is gone;
			// identity-based tools still catch it. A small allocation first
			// claims the freed metadata entry so the stale tag resolves to
			// different bounds (otherwise CECSan hits its documented
			// same-index residual case).
			name: "UAF after quarantine flush",
			build: func() *prog.Program {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				b := f.MallocBytes(1 << 20)
				f.Free(b)
				small := f.MallocBytes(32) // claims b's recycled table entry
				// Churn >8 MiB through a different size class to evict b
				// from ASan's quarantine without touching b's chunk.
				f.ForRange(prog.ConstOperand(0), prog.ConstOperand(20), 1, func(i prog.Reg) {
					c := f.MallocBytes(1<<20 + 16)
					f.Store(c, 0, i, prog.Int64T())
					f.Free(c)
				})
				keep := f.MallocBytes(1 << 20) // lands on b's chunk, unpoisons it
				f.Store(b, 8, f.Const(7), prog.Int64T())
				f.Free(keep)
				f.Free(small)
				f.RetVoid()
				return pb.MustBuild()
			},
			want: map[Name]outcome{
				Native: clean, CECSan: report, ASan: clean, ASanLite: clean,
				HWASan: report, SoftBound: report, PACMem: report, CryptSan: report,
			},
		},
		{
			// Double free, immediate: everyone.
			name: "double free",
			build: func() *prog.Program {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				b := f.MallocBytes(64)
				f.Free(b)
				f.Free(b)
				f.RetVoid()
				return pb.MustBuild()
			},
			want: map[Name]outcome{
				Native: clean, CECSan: report, ASan: report, ASanLite: report,
				HWASan: report, SoftBound: report, PACMem: report, CryptSan: report,
			},
		},
		{
			// Free of an interior pointer: HWASan's tag check passes (same
			// object, same tag) — its 0% CWE761 row.
			name: "invalid free interior",
			build: func() *prog.Program {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				b := f.MallocBytes(64)
				f.Free(f.OffsetPtr(b, 16))
				f.RetVoid()
				return pb.MustBuild()
			},
			want: map[Name]outcome{
				Native: clean, CECSan: report, ASan: report, ASanLite: report,
				HWASan: clean, SoftBound: report, PACMem: report, CryptSan: report,
			},
		},
		{
			// Stack buffer overflow via memset: stack protection everywhere
			// except the wide gaps don't apply here.
			name: "stack overflow via libc",
			build: func() *prog.Program {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				buf := f.Alloca(prog.ArrayOf(prog.Char(), 32))
				f.Libc("memset", buf, f.Const(0x42), f.Const(40))
				f.RetVoid()
				return pb.MustBuild()
			},
			want: map[Name]outcome{
				Native: clean, CECSan: report, ASan: report, ASanLite: report,
				HWASan: report, SoftBound: clean, PACMem: report, CryptSan: report,
			},
		},
		{
			// Global buffer overflow crossing a tag granule: everyone
			// except SoftBound, whose released memset wrapper is missing.
			name: "global overflow cross-granule",
			build: func() *prog.Program {
				pb := prog.NewProgram()
				pb.Global("g", prog.ArrayOf(prog.Char(), 24))
				f := pb.Function("main", 0)
				g := f.GlobalAddr("g")
				f.Libc("memset", g, f.Const(1), f.Const(40))
				f.RetVoid()
				return pb.MustBuild()
			},
			want: map[Name]outcome{
				Native: clean, CECSan: report, ASan: report, ASanLite: report,
				HWASan: report, SoftBound: clean, PACMem: report, CryptSan: report,
			},
		},
		{
			// Global off-by-one inside the object's last 16-byte granule:
			// HWASan's uniform tag cannot see it; SoftBound's memset
			// wrapper is missing.
			name: "global overflow intra-granule",
			build: func() *prog.Program {
				pb := prog.NewProgram()
				pb.Global("g", prog.ArrayOf(prog.Char(), 24))
				f := pb.Function("main", 0)
				g := f.GlobalAddr("g")
				f.Libc("memset", g, f.Const(1), f.Const(25))
				f.RetVoid()
				return pb.MustBuild()
			},
			want: map[Name]outcome{
				Native: clean, CECSan: report, ASan: report, ASanLite: report,
				HWASan: clean, SoftBound: clean, PACMem: report, CryptSan: report,
			},
		},
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			p := sc.build()
			for san, want := range sc.want {
				got := runUnder(t, p, san)
				if got != want {
					names := map[outcome]string{clean: "clean", report: "report", crash: "crash"}
					t.Errorf("%s: got %s, want %s", san, names[got], names[want])
				}
			}
		})
	}
}

// TestGoodProgramsNoFalsePositives runs benign programs under every
// sanitizer except the deliberately flawed SoftBound prototype model.
func TestGoodProgramsNoFalsePositives(t *testing.T) {
	builds := map[string]func() *prog.Program{
		"heap exact fill": func() *prog.Program {
			pb := prog.NewProgram()
			f := pb.Function("main", 0)
			b := f.MallocBytes(64)
			f.Libc("memset", b, f.Const(7), f.Const(64))
			f.Free(b)
			return pb.MustBuild()
		},
		"loop sweep": func() *prog.Program {
			pb := prog.NewProgram()
			f := pb.Function("main", 0)
			arr := prog.ArrayOf(prog.Int64T(), 128)
			b := f.MallocType(arr)
			f.ForRange(prog.ConstOperand(0), prog.ConstOperand(128), 1, func(i prog.Reg) {
				f.Store(f.ElemPtr(b, prog.Int64T(), i), 0, i, prog.Int64T())
			})
			f.Free(b)
			return pb.MustBuild()
		},
		"struct field use": func() *prog.Program {
			st := prog.StructOf("S",
				prog.FieldSpec{Name: "buf", Type: prog.ArrayOf(prog.Char(), 16)},
				prog.FieldSpec{Name: "len", Type: prog.Int64T()},
			)
			pb := prog.NewProgram()
			pb.GlobalBytes("src", make([]byte, 16))
			f := pb.Function("main", 0)
			obj := f.MallocType(st)
			fp := f.FieldPtr(obj, st, "buf")
			f.Libc("memcpy", fp, f.GlobalAddr("src"), f.Const(16))
			f.Store(f.FieldPtr(obj, st, "len"), 0, f.Const(16), prog.Int64T())
			f.Free(obj)
			return pb.MustBuild()
		},
		"alloc free churn": func() *prog.Program {
			pb := prog.NewProgram()
			f := pb.Function("main", 0)
			f.ForRange(prog.ConstOperand(0), prog.ConstOperand(200), 1, func(i prog.Reg) {
				b := f.MallocBytes(48)
				f.Store(b, 40, i, prog.Int64T())
				f.Free(b)
			})
			return pb.MustBuild()
		},
		"wide char legal": func() *prog.Program {
			pb := prog.NewProgram()
			f := pb.Function("main", 0)
			dst := f.MallocType(prog.ArrayOf(prog.WChar(), 8))
			src := f.MallocType(prog.ArrayOf(prog.WChar(), 8))
			f.Libc("wmemset", src, f.Const('B'), f.Const(7))
			f.Libc("wcsncpy", dst, src, f.Const(8))
			f.Free(dst)
			f.Free(src)
			return pb.MustBuild()
		},
	}
	for name, build := range builds {
		p := build()
		for _, san := range All() {
			if got := runUnder(t, p, san); got != clean {
				t.Errorf("%s under %s: not clean (outcome %d)", name, san, got)
			}
		}
	}
}

// TestSoftBoundStrncpyFalsePositive pins the modelled prototype flaw: an
// exactly-sized strncpy is reported by SoftBound but by no one else.
func TestSoftBoundStrncpyFalsePositive(t *testing.T) {
	pb := prog.NewProgram()
	pb.GlobalBytes("src", []byte("0123456"))
	f := pb.Function("main", 0)
	dst := f.MallocBytes(8)
	f.Libc("strncpy", dst, f.GlobalAddr("src"), f.Const(8))
	f.Free(dst)
	p := pb.MustBuild()

	if got := runUnder(t, p, SoftBound); got != report {
		t.Errorf("SoftBound: expected the off-by-one wrapper false positive, got %d", got)
	}
	for _, san := range []Name{CECSan, ASan, HWASan, PACMem} {
		if got := runUnder(t, p, san); got != clean {
			t.Errorf("%s: false positive on exact strncpy", san)
		}
	}
}

func TestProfileForMatchesConstructedBundles(t *testing.T) {
	for _, name := range All() {
		p, err := ProfileFor(name)
		if err != nil {
			t.Fatalf("ProfileFor(%s): %v", name, err)
		}
		san, err := New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if p != san.Profile {
			t.Errorf("%s: ProfileFor diverges from constructed bundle:\n got %+v\nwant %+v",
				name, p, san.Profile)
		}
	}
	if _, err := ProfileFor("bogus"); err == nil {
		t.Error("ProfileFor accepted an unknown name")
	}
}

// Base must invert Hardened exactly: every hardened variant steps back down
// to its default-profile base, and nothing else claims to.
func TestBaseInvertsHardened(t *testing.T) {
	for _, n := range All() {
		h, ok := Hardened(n)
		if !ok {
			if b, down := Base(n); down || b != n {
				t.Errorf("Base(%s) = (%s, %v), want identity for unhardened tool", n, b, down)
			}
			continue
		}
		b, down := Base(h)
		if !down || b != n {
			t.Errorf("Base(Hardened(%s)) = (%s, %v), want (%s, true)", n, b, down, n)
		}
	}
	if b, down := Base(CECSan); down || b != CECSan {
		t.Errorf("Base(CECSan) = (%s, %v), want identity", b, down)
	}
}
