// Byte-identity tests: observability is strictly off the report path, so
// the differential fuzz report and the Table II rendering must be identical
// bytes whether an Observer — with every facility on — is attached or not.
// This is the determinism contract the obs package doc promises; these tests
// live in an external package because they drive fuzz and harness, which
// import obs-adjacent packages (obs itself imports nothing from the repo, so
// no cycle either way).
package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"cecsan/internal/fuzz"
	"cecsan/internal/harness"
	"cecsan/internal/juliet"
	"cecsan/internal/obs"
	"cecsan/internal/sanitizers"
)

// fullObserver returns an Observer with every facility enabled — registry,
// tracer, site profiler — the configuration with the most opportunities to
// perturb execution if it ever escaped the read-only contract.
func fullObserver() *obs.Observer {
	o := obs.New()
	o.Tracer = obs.NewTracer()
	o.Sites = obs.NewSiteProfiler()
	return o
}

// campaignBytes runs a small differential campaign and returns the
// deterministic JSON record.
func campaignBytes(t *testing.T, o *obs.Observer) []byte {
	t.Helper()
	runner, err := fuzz.NewRunner(fuzz.Config{Seed: 11, Count: 25, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFuzzReportByteIdentity(t *testing.T) {
	plain := campaignBytes(t, nil)
	observed := campaignBytes(t, fullObserver())
	if !bytes.Equal(plain, observed) {
		t.Fatalf("fuzz report changed with observability attached:\n--- without obs ---\n%s\n--- with obs ---\n%s",
			plain, observed)
	}
}

// table2String renders Table II on a small suite, with harness.Obs set to o.
func table2String(t *testing.T, suite []*juliet.Case, o *obs.Observer) string {
	t.Helper()
	harness.Obs = o
	defer func() { harness.Obs = nil }()
	tools := []sanitizers.Name{
		sanitizers.CECSan, sanitizers.PACMem, sanitizers.CryptSan,
		sanitizers.HWASan, sanitizers.ASan, sanitizers.SoftBound,
	}
	eval, err := harness.EvaluateJuliet(suite, tools, 0)
	if err != nil {
		t.Fatal(err)
	}
	return harness.FormatTable2(eval)
}

func TestTable2ByteIdentity(t *testing.T) {
	var suite []*juliet.Case
	for _, cwe := range juliet.AllCWEs() {
		cases, err := juliet.Generate(cwe, 2)
		if err != nil {
			t.Fatal(err)
		}
		suite = append(suite, cases...)
	}
	plain := table2String(t, suite, nil)
	observed := table2String(t, suite, fullObserver())
	if plain != observed {
		t.Fatalf("Table II changed with observability attached:\n--- without obs ---\n%s\n--- with obs ---\n%s",
			plain, observed)
	}
}
