package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension on a metric. Metrics with the same name
// but different label sets are distinct series of one metric family.
type Label struct {
	Key   string
	Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// labelKey renders a sorted, canonical form of a label set, used both as the
// registry map key and as the Prometheus label block.
func labelKey(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	sorted := append([]Label(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing metric. Add is a single atomic add —
// safe for concurrent use on the hot path.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// entry is one registered metric series.
type entry struct {
	name   string
	labels []Label
	lkey   string
	kind   string // "counter", "gauge" or "histogram"

	c  *Counter
	g  *Gauge
	fn func() float64 // func gauge; read at snapshot time
	h  *Histogram
}

// Registry holds metric instruments by (name, label set). Registration takes
// a mutex; recording on a registered instrument is lock-free. Registering
// the same (name, labels) again returns the existing instrument (func gauges
// instead replace their callback, so a rebuilt producer — e.g. a fresh
// engine for the same tool — takes over the series).
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	helps   map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry), helps: make(map[string]string)}
}

// SetHelp attaches a help string to a metric family; WritePrometheus emits
// it as the family's # HELP line (before # TYPE, per the exposition format).
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	r.helps[name] = help
	r.mu.Unlock()
}

// lookup returns the series for (name, ls), creating it with mk on first use.
func (r *Registry) lookup(name, kind string, ls []Label, mk func(*entry)) *entry {
	key := name + labelKey(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", key, kind, e.kind))
		}
		return e
	}
	e := &entry{name: name, labels: append([]Label(nil), ls...), lkey: labelKey(ls), kind: kind}
	mk(e)
	r.entries[key] = e
	return e
}

// Counter returns the counter for (name, ls), registering it on first use.
func (r *Registry) Counter(name string, ls ...Label) *Counter {
	e := r.lookup(name, "counter", ls, func(e *entry) { e.c = &Counter{} })
	return e.c
}

// Gauge returns the gauge for (name, ls), registering it on first use.
func (r *Registry) Gauge(name string, ls ...Label) *Gauge {
	e := r.lookup(name, "gauge", ls, func(e *entry) { e.g = &Gauge{} })
	return e.g
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time. Re-registering the same series replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64, ls ...Label) {
	e := r.lookup(name, "gauge", ls, func(e *entry) {})
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// Histogram returns the log-bucketed histogram for (name, ls), registering
// it on first use.
func (r *Registry) Histogram(name string, ls ...Label) *Histogram {
	e := r.lookup(name, "histogram", ls, func(e *entry) { e.h = &Histogram{} })
	return e.h
}

// Value returns the current value of a counter or gauge series; ok is false
// when the series does not exist or is a histogram.
func (r *Registry) Value(name string, ls ...Label) (float64, bool) {
	key := name + labelKey(ls)
	r.mu.Lock()
	e, ok := r.entries[key]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch {
	case e.c != nil:
		return float64(e.c.Value()), true
	case e.g != nil:
		return float64(e.g.Value()), true
	case e.fn != nil:
		return e.fn(), true
	}
	return 0, false
}

// Bucket is one non-empty histogram bucket in a snapshot. Le is the
// inclusive upper bound of the bucket's value range; Count is the number of
// observations that landed in this bucket (non-cumulative).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Metric is one series in a snapshot.
type Metric struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counters, gauges and func gauges.
	Value float64 `json:"value"`
	// Count, Sum and Buckets carry histograms.
	Count   int64    `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every series' current value, sorted by (name, labels) so
// two snapshots of identical state render identically.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].lkey < entries[j].lkey
	})
	out := make([]Metric, 0, len(entries))
	for _, e := range entries {
		m := Metric{Name: e.name, Type: e.kind}
		if len(e.labels) > 0 {
			m.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				m.Labels[l.Key] = l.Value
			}
		}
		switch {
		case e.c != nil:
			m.Value = float64(e.c.Value())
		case e.g != nil:
			m.Value = float64(e.g.Value())
		case e.fn != nil:
			m.Value = e.fn()
		case e.h != nil:
			m.Count, m.Sum, m.Buckets = e.h.snapshot()
		}
		out = append(out, m)
	}
	return out
}

// WriteJSON writes the snapshot as pretty-printed JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (text/plain; version=0.0.4). Histograms render as cumulative
// _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	r.mu.Lock()
	helps := make(map[string]string, len(r.helps))
	for k, v := range r.helps {
		helps[k] = v
	}
	r.mu.Unlock()
	var b strings.Builder
	lastName := ""
	for _, m := range snap {
		if m.Name != lastName {
			if h, ok := helps[m.Name]; ok {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.Name, escapeHelp(h))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, m.Type)
			lastName = m.Name
		}
		lb := labelBlock(m.Labels, "", "")
		switch m.Type {
		case "histogram":
			var cum int64
			for _, bk := range m.Buckets {
				cum += bk.Count
				fmt.Fprintf(&b, "%s_bucket%s %d\n", m.Name, labelBlock(m.Labels, "le", fmt.Sprintf("%d", bk.Le)), cum)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", m.Name, labelBlock(m.Labels, "le", "+Inf"), m.Count)
			fmt.Fprintf(&b, "%s_sum%s %d\n", m.Name, lb, m.Sum)
			fmt.Fprintf(&b, "%s_count%s %d\n", m.Name, lb, m.Count)
		default:
			fmt.Fprintf(&b, "%s%s %v\n", m.Name, lb, m.Value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelBlock renders a {k="v",...} block from a label map plus an optional
// extra pair (the histogram "le" bound); empty when there are no labels.
func labelBlock(labels map[string]string, extraK, extraV string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, k+`="`+escapeLabelValue(labels[k])+`"`)
	}
	if extraK != "" {
		parts = append(parts, extraK+`="`+escapeLabelValue(extraV)+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// escapeLabelValue applies the Prometheus text-format label-value escaping:
// exactly backslash, double-quote and newline — Go's %q would additionally
// escape tabs and non-ASCII, which the format forbids.
func escapeLabelValue(s string) string {
	return labelEscaper.Replace(s)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeHelp applies the HELP-line escaping (backslash and newline only;
// quotes are literal there).
func escapeHelp(s string) string {
	return helpEscaper.Replace(s)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
