// Uafserver demonstrates the temporal-safety path and the automation
// framework's dummy server (§IV): a simulated request handler keeps a
// dangling pointer to a freed session object, and a crafted second request
// makes it dereference the stale pointer. The request bytes arrive through
// the machine's input feed, exactly how the harness drives the
// external-input Juliet cases other evaluations excluded.
package main

import (
	"fmt"
	"os"

	"cecsan"
	"cecsan/prog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uafserver:", err)
		os.Exit(1)
	}
}

// buildServer models:
//
//	session = malloc(64);
//	recv(req1); session->id = req1[0];
//	if (req1[0] == 'Q') { free(session); }   // logout path
//	recv(req2);
//	if (req2[0] == 'S') { session->data = ...; }  // stats path: UAF if logged out
func buildServer() (*prog.Program, error) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	session := f.MallocBytes(64)
	req := f.Alloca(prog.ArrayOf(prog.Char(), 16))

	f.Libc("recv", req, f.Const(16))
	c1 := f.Load(req, 0, prog.Char())
	f.Store(session, 0, c1, prog.Char())
	f.If(f.Cmp(prog.CmpEq, c1, f.Const('Q')), func() {
		f.Free(session)
	}, nil)

	f.Libc("recv", req, f.Const(16))
	c2 := f.Load(req, 0, prog.Char())
	f.If(f.Cmp(prog.CmpEq, c2, f.Const('S')), func() {
		f.Store(session, 8, f.Const(0xC0FFEE), prog.Int64T())
	}, nil)
	f.RetVoid()
	return pb.Build()
}

func run() error {
	p, err := buildServer()
	if err != nil {
		return err
	}

	scenarios := []struct {
		label    string
		requests [][]byte
	}{
		{"benign: LOGIN then STATS", [][]byte{[]byte("L"), []byte("S")}},
		{"benign: QUIT then NOOP", [][]byte{[]byte("Q"), []byte("N")}},
		{"attack: QUIT then STATS (use-after-free)", [][]byte{[]byte("Q"), []byte("S")}},
	}
	for _, sc := range scenarios {
		fmt.Printf("\n--- %s ---\n", sc.label)
		for _, name := range []string{cecsan.Native, cecsan.CECSan, cecsan.ASan} {
			res, err := cecsan.Run(p, cecsan.Config{Sanitizer: name, Inputs: sc.requests})
			if err != nil {
				return err
			}
			if res.Violation != nil {
				fmt.Printf("%-10s DETECTED %s: %s\n", name, res.Violation.Kind, res.Violation.Detail)
			} else {
				fmt.Printf("%-10s completed silently\n", name)
			}
		}
	}
	return nil
}
