package traffic

import (
	"strings"
	"testing"
)

// TestParseExampleSpecs loads both shipped example specs and checks the
// fields that define their semantics round-trip.
func TestParseExampleSpecs(t *testing.T) {
	s, err := Load("../../examples/workloads/interactive-batch.yaml")
	if err != nil {
		t.Fatalf("interactive-batch: %v", err)
	}
	if s.Seed != 42 || s.AggregateRate != 2000 || s.MaxRequests != 0 {
		t.Fatalf("top-level fields: %+v", s)
	}
	if len(s.Clients) != 2 {
		t.Fatalf("want 2 clients, got %d", len(s.Clients))
	}
	ia, batch := s.Clients[0], s.Clients[1]
	if ia.ID != "interactive" || ia.RateFraction != 0.6 || ia.Tool != "CECSan" ||
		ia.DeadlineMS != 50 || ia.Arrival.Process != ProcessPoisson ||
		ia.Program.Kind != KindSpatial || ia.Program.Variants != 8 ||
		ia.Budget.MaxSteps != 200000 || ia.Budget.WallMS != 200 {
		t.Fatalf("interactive client: %+v", ia)
	}
	if batch.ID != "batch" || batch.RateFraction != 0.4 || batch.Tool != "CECSan-hardened" ||
		batch.Arrival.Process != ProcessGamma || batch.Arrival.CV != 2.0 ||
		batch.Program.Kind != KindChurn || batch.Budget.HeapBytes != 33554432 {
		t.Fatalf("batch client: %+v", batch)
	}

	m, err := Load("../../examples/workloads/single.yaml")
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	if len(m.Clients) != 1 || m.MaxRequests != 256 {
		t.Fatalf("single spec: %+v", m)
	}
	c := m.Clients[0]
	if c.Tool != "CECSan" { // defaulted
		t.Fatalf("default profile: %q", c.Tool)
	}
	if c.Arrival.Process != ProcessWeibull || c.Arrival.Shape != 1.5 ||
		c.Program.Kind != KindMixed || c.Program.Variants != 4 {
		t.Fatalf("single client: %+v", c)
	}
}

const minimalSpec = `
version: "1"
aggregate_rate: 100
clients:
  - id: a
    rate_fraction: 1.0
`

// TestParseDefaults checks defaulted fields on a minimal spec.
func TestParseDefaults(t *testing.T) {
	s, err := Parse(minimalSpec)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clients[0]
	if s.Seed != 1 || c.Tool != "CECSan" || c.Arrival.Process != ProcessPoisson ||
		c.Arrival.CV != 2.0 || c.Program.Kind != KindSpatial ||
		c.Program.Variants != DefaultVariants || c.DeadlineMS != 0 {
		t.Fatalf("defaults: spec=%+v client=%+v", s, c)
	}
}

// TestParseErrors feeds malformed specs and checks each fails with a
// message naming the problem.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "empty document"},
		{"tab indent", "clients:\n\t- id: a\n", "tab in indentation"},
		{"bad version", `version: "9"` + "\naggregate_rate: 1\nclients:\n  - id: a\n    rate_fraction: 1.0\n", "unsupported spec version"},
		{"no rate", "clients:\n  - id: a\n    rate_fraction: 1.0\n", "aggregate_rate"},
		{"no clients", "aggregate_rate: 5\n", "at least one client"},
		{"dup key", "aggregate_rate: 5\naggregate_rate: 6\nclients:\n  - id: a\n    rate_fraction: 1.0\n", "duplicate key"},
		{"dup id", "aggregate_rate: 5\nclients:\n  - id: a\n    rate_fraction: 0.5\n  - id: a\n    rate_fraction: 0.5\n", "duplicate client id"},
		{"fraction sum", "aggregate_rate: 5\nclients:\n  - id: a\n    rate_fraction: 0.5\n  - id: b\n    rate_fraction: 0.4\n", "rate_fractions sum"},
		{"fraction range", "aggregate_rate: 5\nclients:\n  - id: a\n    rate_fraction: 1.5\n", "rate_fraction must be in"},
		{"bad profile", "aggregate_rate: 5\nclients:\n  - id: a\n    rate_fraction: 1.0\n    profile: NopeSan\n", "unknown profile"},
		{"bad process", "aggregate_rate: 5\nclients:\n  - id: a\n    rate_fraction: 1.0\n    arrival:\n      process: lognormal\n", "unknown arrival process"},
		{"bad kind", "aggregate_rate: 5\nclients:\n  - id: a\n    rate_fraction: 1.0\n    program:\n      kind: quantum\n", "unknown program kind"},
		{"bad variants", "aggregate_rate: 5\nclients:\n  - id: a\n    rate_fraction: 1.0\n    program:\n      kind: spatial\n      variants: 0\n", "variants must be >= 1"},
		{"type error", "aggregate_rate: fast\nclients:\n  - id: a\n    rate_fraction: 1.0\n", "expected a number"},
		{"clients not seq", "aggregate_rate: 5\nclients: 3\n", "must be a sequence"},
		{"negative budget", "aggregate_rate: 5\nclients:\n  - id: a\n    rate_fraction: 1.0\n    budget:\n      max_steps: -4\n", "must be >= 0"},
		{"slo target high", "aggregate_rate: 5\nclients:\n  - id: a\n    rate_fraction: 1.0\n    slo:\n      target: 1.0\n", "slo target must be in (0, 1)"},
		{"slo target zero", "aggregate_rate: 5\nclients:\n  - id: a\n    rate_fraction: 1.0\n    slo:\n      target: 0\n", "slo target must be in (0, 1)"},
		{"slo p99 negative", "aggregate_rate: 5\nclients:\n  - id: a\n    rate_fraction: 1.0\n    slo:\n      target: 0.9\n      p99_ms: -1\n", "slo p99_ms"},
		{"slo window order", "aggregate_rate: 5\nclients:\n  - id: a\n    rate_fraction: 1.0\n    slo:\n      target: 0.9\n      short_window_s: 60\n      long_window_s: 10\n", "slo windows"},
		{"slo window max", "aggregate_rate: 5\nclients:\n  - id: a\n    rate_fraction: 1.0\n    slo:\n      target: 0.9\n      long_window_s: 900\n", "slo windows"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("accepted malformed spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestYAMLSubset exercises the parser's corners directly.
func TestYAMLSubset(t *testing.T) {
	v, err := parseYAML(`
# top comment
a: 1
b: "x # not a comment"
c:
  - 1
  - two
  - true
d:
  nested: 2.5   # trailing comment
e: -3
`)
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	if m["a"] != int64(1) || m["b"] != "x # not a comment" || m["e"] != int64(-3) {
		t.Fatalf("scalars: %#v", m)
	}
	seq := m["c"].([]any)
	if len(seq) != 3 || seq[0] != int64(1) || seq[1] != "two" || seq[2] != true {
		t.Fatalf("sequence: %#v", seq)
	}
	if m["d"].(map[string]any)["nested"] != 2.5 {
		t.Fatalf("nested: %#v", m["d"])
	}

	if _, err := parseYAML("a: 1\n  b: 2\n"); err == nil {
		t.Fatal("accepted inconsistent indent")
	}
	if _, err := parseYAML("a:\n  - x\n- y\n"); err == nil {
		t.Fatal("accepted outdented sequence continuation")
	}
}

// TestParseSLO covers the slo: section: values, window defaults, and that
// classes without the section have no objective.
func TestParseSLO(t *testing.T) {
	spec, err := Parse(`
version: "1"
seed: 1
aggregate_rate: 10
clients:
  - id: a
    rate_fraction: 0.5
    slo:
      target: 0.99
      p99_ms: 25
  - id: b
    rate_fraction: 0.5
`)
	if err != nil {
		t.Fatal(err)
	}
	a, b := spec.Clients[0], spec.Clients[1]
	if a.SLO == nil {
		t.Fatal("client a declared an slo: section, spec has none")
	}
	if a.SLO.Target != 0.99 || a.SLO.P99MS != 25 {
		t.Fatalf("slo = %+v", a.SLO)
	}
	if a.SLO.ShortWindowS != 10 || a.SLO.LongWindowS != 60 {
		t.Fatalf("windows did not default to 10/60: %+v", a.SLO)
	}
	if b.SLO != nil {
		t.Fatalf("client b declared no slo: section, got %+v", b.SLO)
	}
}
