package instrument

import (
	"testing"

	"cecsan/internal/core"
	"cecsan/internal/interp"
	"cecsan/internal/juliet"
	"cecsan/internal/tagptr"
	"cecsan/prog"
)

// runWithOpts instruments and runs under CECSan with given options,
// returning (detected, ret).
func runWithOpts(t *testing.T, p *prog.Program, inputs [][]byte, opts core.Options) (bool, uint64) {
	t.Helper()
	san, err := core.Sanitizer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ip := Apply(p, san.Profile)
	m, err := interp.New(ip, san, interp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range inputs {
		m.Feed(in)
	}
	res := m.Run()
	if res.Err != nil {
		t.Fatalf("execution error: %v", res.Err)
	}
	return res.Violation != nil || res.Fault != nil, res.Ret
}

// TestOptimizationEquivalenceProperty: across a large sample of generated
// Juliet cases, the fully optimized CECSan and the unoptimized CECSan must
// agree on every verdict — §II.F's claim that the optimizations lose no
// detection and add no false positives.
func TestOptimizationEquivalenceProperty(t *testing.T) {
	full := core.DefaultOptions()
	bare := core.DefaultOptions()
	bare.OptRedundant = false
	bare.OptLoopInvariant = false
	bare.OptMonotonic = false
	bare.OptTypeBased = false

	for _, cwe := range juliet.AllCWEs() {
		cases, err := juliet.Generate(cwe, 70)
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range cases {
			for _, variant := range []struct {
				label  string
				p      *prog.Program
				inputs [][]byte
			}{
				{"bad", cs.Bad, cs.BadInputs},
				{"good", cs.Good, cs.GoodInputs},
			} {
				optDet, _ := runWithOpts(t, variant.p, variant.inputs, full)
				bareDet, _ := runWithOpts(t, variant.p, variant.inputs, bare)
				if optDet != bareDet {
					t.Errorf("%s (%s): optimized=%v unoptimized=%v — optimizations changed the verdict",
						cs.ID, variant.label, optDet, bareDet)
				}
			}
		}
	}
}

// TestARM64Configuration runs CECSan in its ARM64 configuration (48 address
// bits, 16 tag bits, 2^16-entry table) end to end.
func TestARM64Configuration(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Arch = tagptr.ARM64

	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	b := f.MallocBytes(32)
	f.Store(b, 31, f.Const(1), prog.Char())
	f.Store(b, 32, f.Const(1), prog.Char()) // overflow
	f.RetVoid()
	p := pb.MustBuild()

	det, _ := runWithOpts(t, p, nil, opts)
	if !det {
		t.Fatal("ARM64-configured CECSan missed a heap overflow")
	}

	san, err := core.Sanitizer(opts)
	if err != nil {
		t.Fatal(err)
	}
	cr, ok := san.Runtime.(*core.Runtime)
	if !ok {
		t.Fatal("not a core.Runtime")
	}
	if got := cr.Table().Capacity(); got != 1<<16 {
		t.Fatalf("ARM64 table capacity = %d, want 2^16", got)
	}
}

// TestDeterministicResultsAcrossOptimizations verifies that on clean
// programs the optimizations do not change computed results either.
func TestDeterministicResultsAcrossOptimizations(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	arr := f.MallocBytes(512 * 8)
	sum := f.NewReg()
	f.AssignConst(sum, 0)
	f.ForRange(prog.ConstOperand(0), prog.ConstOperand(512), 1, func(i prog.Reg) {
		f.Store(f.ElemPtr(arr, prog.Int64T(), i), 0, f.Mul(i, i), prog.Int64T())
	})
	f.ForRange(prog.ConstOperand(0), prog.ConstOperand(512), 1, func(i prog.Reg) {
		f.Assign(sum, f.Add(sum, f.Load(f.ElemPtr(arr, prog.Int64T(), i), 0, prog.Int64T())))
	})
	f.Free(arr)
	f.Ret(sum)
	p := pb.MustBuild()

	var want uint64
	for i := uint64(0); i < 512; i++ {
		want += i * i
	}
	for mask := 0; mask < 16; mask++ {
		opts := core.DefaultOptions()
		opts.OptRedundant = mask&1 != 0
		opts.OptLoopInvariant = mask&2 != 0
		opts.OptMonotonic = mask&4 != 0
		opts.OptTypeBased = mask&8 != 0
		det, ret := runWithOpts(t, p, nil, opts)
		if det {
			t.Fatalf("mask %04b: false positive", mask)
		}
		if ret != want {
			t.Fatalf("mask %04b: result %d, want %d", mask, ret, want)
		}
	}
}
