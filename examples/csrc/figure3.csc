// Figure 3 from the paper, as cecsan source: a memcpy sized for the whole
// struct overflows the charFirst member into voidSecond.
//
//   go run ./cmd/cecsan-run -src examples/csrc/figure3.csc
//   go run ./cmd/cecsan-run -src examples/csrc/figure3.csc -sanitizer ASan

struct CharVoid {
    char charFirst[16];
    ptr voidSecond;
}

global char SRC_STRING[] = "0123456789abcdefghijklmnopqrstu";

func main() {
    var s = new(CharVoid);
    s->voidSecond = 0x401000;             // a "function pointer"
    memcpy(s->charFirst, SRC_STRING, 24); // sizeof(struct), not sizeof(field)
    print_int(s->voidSecond);             // corrupted if undetected
    free(s);
    return 0;
}
