package prog

import "testing"

// buildOverflow builds a small program; off parameterizes the store offset
// so tests can produce structurally distinct variants.
func buildOverflow(t *testing.T, off int64) *Program {
	t.Helper()
	pb := NewProgram()
	pb.GlobalBytes("g_msg", []byte("hello"))
	f := pb.Function("main", 0)
	buf := f.MallocBytes(16)
	f.Store(buf, off, f.Const(1), Char())
	f.Free(buf)
	f.RetVoid()
	return pb.MustBuild()
}

func TestFingerprintStable(t *testing.T) {
	a := buildOverflow(t, 8)
	b := buildOverflow(t, 8)
	if a == b {
		t.Fatal("expected two independent builds")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("structurally identical programs hash differently:\n%s\n%s",
			a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint not deterministic across calls")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := buildOverflow(t, 8)
	if buildOverflow(t, 16).Fingerprint() == base.Fingerprint() {
		t.Error("offset change not reflected in fingerprint")
	}

	// Same layout, different global initializer bytes.
	pb := NewProgram()
	pb.GlobalBytes("g_msg", []byte("hellO"))
	f := pb.Function("main", 0)
	buf := f.MallocBytes(16)
	f.Store(buf, 8, f.Const(1), Char())
	f.Free(buf)
	f.RetVoid()
	if pb.MustBuild().Fingerprint() == base.Fingerprint() {
		t.Error("global initializer change not reflected in fingerprint")
	}
}

func TestFingerprintTypeStructure(t *testing.T) {
	// Two struct types with the same name but different field layouts must
	// hash differently (names are not trusted as identities).
	build := func(st *Type) *Program {
		pb := NewProgram()
		f := pb.Function("main", 0)
		obj := f.Alloca(st)
		f.Store(obj, 0, f.Const(1), Char())
		f.RetVoid()
		return pb.MustBuild()
	}
	a := build(StructOf("S", FieldSpec{Name: "a", Type: ArrayOf(Char(), 8)}, FieldSpec{Name: "b", Type: Int64T()}))
	b := build(StructOf("S", FieldSpec{Name: "a", Type: ArrayOf(Char(), 16)}, FieldSpec{Name: "b", Type: Int64T()}))
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("struct layout change behind the same name not reflected in fingerprint")
	}
}
