// Package softbound models SoftBound+CETS: per-pointer (base, bound)
// spatial metadata (PLDI 2009) combined with lock-and-key temporal checking
// (ISMM 2010), propagated explicitly — through registers on every pointer
// move and through a disjoint shadow space when pointers are stored to and
// loaded from memory. That explicit propagation is exactly the cost CECSan's
// implicit tag propagation eliminates, so it is modelled as real work.
//
// The model also reproduces the released prototype's documented defects the
// paper ran into (§IV.B): missing wrappers for the wide-character family
// (false negatives) and a broken wrapper with an off-by-one (false
// positives), plus the harness-level compile-failure exclusions (only 3,970
// Juliet cases build).
package softbound

import (
	"fmt"
	"strings"
	"sync"

	"cecsan/internal/alloc"
	"cecsan/internal/rt"
)

// Runtime is the SoftBound+CETS model (rt.Runtime implementation).
type Runtime struct {
	env rt.Env

	mu      sync.Mutex
	nextKey uint64
	// shadow maps a memory address holding a pointer to that pointer's
	// metadata (SoftBound's disjoint metadata space).
	shadow map[uint64]rt.PtrMeta
	// locks is the CETS lock space; freed locks are reused.
	freeLocks []*uint64
	liveLocks int64

	shadowPeak int64
}

var (
	_ rt.Runtime    = (*Runtime)(nil)
	_ rt.Resettable = (*Runtime)(nil)
)

// New constructs a SoftBound+CETS model runtime.
func New() *Runtime {
	return &Runtime{nextKey: 1, shadow: make(map[uint64]rt.PtrMeta)}
}

// ResetRuntime implements rt.Resettable: forget all pointer metadata, lock
// cells and gauges — the state New returns, so pooled reuse is byte-identical
// to fresh construction.
func (r *Runtime) ResetRuntime() {
	r.mu.Lock()
	r.nextKey = 1
	clear(r.shadow)
	r.freeLocks = nil
	r.liveLocks = 0
	r.shadowPeak = 0
	r.mu.Unlock()
}

// Sanitizer returns the SoftBound+CETS bundle: per-pointer metadata
// propagation, checked loads and stores, no pointer tagging, no layout
// changes, and none of CECSan's check-reducing optimizations.
func Sanitizer() rt.Sanitizer {
	return rt.Sanitizer{Runtime: New(), Profile: ProfileFor()}
}

// ProfileFor derives the SoftBound+CETS instrumentation profile without
// constructing a runtime.
func ProfileFor() rt.Profile {
	return rt.Profile{
		Name:         "SoftBound/CETS",
		CheckLoads:   true,
		CheckStores:  true,
		PtrMeta:      true,
		TrackStack:   true,
		TrackGlobals: true,
	}
}

// Name implements rt.Runtime.
func (r *Runtime) Name() string { return "SoftBound/CETS" }

// Attach implements rt.Runtime.
func (r *Runtime) Attach(env *rt.Env) error {
	r.env = *env
	return nil
}

// newLock allocates (or recycles) a CETS lock cell holding key.
func (r *Runtime) newLock(key uint64) *uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var l *uint64
	if n := len(r.freeLocks); n > 0 {
		l = r.freeLocks[n-1]
		r.freeLocks = r.freeLocks[:n-1]
	} else {
		l = new(uint64)
	}
	*l = key
	r.liveLocks++
	return l
}

// Malloc implements rt.Runtime: plain allocation plus fresh per-pointer
// metadata with a new lock-and-key pair.
func (r *Runtime) Malloc(size int64) (uint64, rt.PtrMeta, error) {
	raw, err := r.env.Heap.Alloc(size)
	if err != nil {
		return 0, rt.PtrMeta{}, err
	}
	r.mu.Lock()
	key := r.nextKey
	r.nextKey++
	r.mu.Unlock()
	meta := rt.PtrMeta{Base: raw, Bound: raw + uint64(size), Key: key, Lock: r.newLock(key)}
	return raw, meta, nil
}

// Free implements rt.Runtime: the pointer must carry metadata whose base is
// the pointer itself (invalid free) and whose lock still holds its key
// (double free); then the lock is invalidated and recycled.
func (r *Runtime) Free(ptr uint64, meta rt.PtrMeta) *rt.Violation {
	if !meta.Valid() {
		// Pointer of unknown provenance: SoftBound cannot check it; the
		// call reaches the allocator unchecked (compatibility rule).
		r.env.Heap.Free(ptr)
		return nil
	}
	if meta.Lock != nil && *meta.Lock != meta.Key {
		return &rt.Violation{
			Kind: rt.KindDoubleFree, Ptr: ptr, Addr: ptr, Seg: alloc.SegmentOf(ptr),
			Detail: "CETS key does not match lock (object already freed)",
		}
	}
	if ptr != meta.Base {
		return &rt.Violation{
			Kind: rt.KindInvalidFree, Ptr: ptr, Addr: ptr, Seg: alloc.SegmentOf(ptr),
			Detail: fmt.Sprintf("free of non-base pointer (base=%#x)", meta.Base),
		}
	}
	if seg := alloc.SegmentOf(ptr); seg != alloc.SegHeap {
		return &rt.Violation{
			Kind: rt.KindInvalidFree, Ptr: ptr, Addr: ptr, Seg: seg,
			Detail: "free of non-heap object",
		}
	}
	if meta.Lock != nil {
		*meta.Lock = 0
		r.mu.Lock()
		r.freeLocks = append(r.freeLocks, meta.Lock)
		r.liveLocks--
		r.mu.Unlock()
	}
	r.env.Heap.Free(ptr)
	return nil
}

// StackAlloc implements rt.Runtime: stack objects carry spatial bounds but
// no temporal lock — the released prototype does not key stack lifetimes,
// which is why half the CWE416 (use-after-scope) cases slip through
// (Table II: 51.3%).
func (r *Runtime) StackAlloc(raw uint64, size int64, tracked bool) (uint64, rt.PtrMeta) {
	if !tracked {
		return raw, rt.PtrMeta{}
	}
	return raw, rt.PtrMeta{Base: raw, Bound: raw + uint64(size)}
}

// StackRelease implements rt.Runtime: nothing to invalidate (no lock).
func (r *Runtime) StackRelease(uint64, int64) {}

// GlobalInit implements rt.Runtime: globals carry spatial bounds.
func (r *Runtime) GlobalInit(_ string, raw uint64, size int64, tracked bool) (uint64, rt.PtrMeta) {
	if !tracked {
		return raw, rt.PtrMeta{}
	}
	return raw, rt.PtrMeta{Base: raw, Bound: raw + uint64(size)}
}

// Check implements rt.Runtime: SoftBound's spatial check against the
// pointer's own (base, bound) plus CETS's key/lock comparison. Pointers
// without metadata are never checked.
func (r *Runtime) Check(ptr uint64, meta rt.PtrMeta, off, size int64, k rt.AccessKind) *rt.Violation {
	if !meta.Valid() {
		return nil
	}
	if meta.Lock != nil && *meta.Lock != meta.Key {
		return &rt.Violation{
			Kind: rt.KindUseAfterFree, Ptr: ptr, Addr: ptr + uint64(off), Size: size,
			Seg:    alloc.SegmentOf(ptr + uint64(off)),
			Detail: "CETS key does not match lock",
		}
	}
	addr := ptr + uint64(off)
	if addr < meta.Base || addr+uint64(size) > meta.Bound {
		v := &rt.Violation{
			Ptr: ptr, Addr: addr, Size: size, Seg: alloc.SegmentOf(addr),
			Detail: fmt.Sprintf("outside [%#x, %#x)", meta.Base, meta.Bound),
		}
		if k == rt.Write {
			v.Kind = rt.KindOOBWrite
		} else {
			v.Kind = rt.KindOOBRead
		}
		return v
	}
	return nil
}

// Addr implements rt.Runtime: plain pointers.
func (r *Runtime) Addr(ptr uint64) uint64 { return ptr }

// UsableSize implements rt.Runtime from the pointer's own bounds.
func (r *Runtime) UsableSize(ptr uint64, meta rt.PtrMeta) int64 {
	if meta.Valid() && meta.Base == ptr {
		return int64(meta.Bound - meta.Base)
	}
	if sz, ok := r.env.Heap.Lookup(ptr); ok {
		return sz
	}
	return -1
}

// SubPtr implements rt.Runtime: the released prototype claims sub-object
// narrowing but detects none of the sub-object Juliet cases (§IV.B
// observation 3), so the model keeps object-granular bounds.
func (r *Runtime) SubPtr(base uint64, off, _ int64) (uint64, rt.PtrMeta) {
	return base + uint64(off), rt.PtrMeta{}
}

// SubRelease implements rt.Runtime.
func (r *Runtime) SubRelease(uint64) {}

// PrepareExternArg implements rt.Runtime: plain pointers pass through;
// metadata simply does not follow them.
func (r *Runtime) PrepareExternArg(ptr uint64) (uint64, *rt.Violation) { return ptr, nil }

// AdoptExternRet implements rt.Runtime: foreign pointers have no metadata
// and are never checked.
func (r *Runtime) AdoptExternRet(raw uint64) uint64 { return raw }

// LibcCheck implements rt.Runtime via SoftBound's wrapper functions. The
// released wrappers are incomplete: the wide-character family is missing
// (false negatives) and the strncpy wrapper checks one byte too many (false
// positives on exactly-filled buffers) — the prototype flaws §IV.B reports.
func (r *Runtime) LibcCheck(fn string, ptr uint64, meta rt.PtrMeta, n int64, k rt.AccessKind) *rt.Violation {
	if n <= 0 {
		return nil
	}
	if strings.HasPrefix(fn, "wcs") || strings.HasPrefix(fn, "wmem") || strings.HasPrefix(fn, "print") || fn == "memset" {
		return nil // missing wrapper in the released prototype
	}
	if fn == "strncpy" && k == rt.Write {
		n++ // buggy wrapper: off-by-one over-check
	}
	return r.Check(ptr, meta, 0, n, k)
}

// LoadPtrMeta implements rt.Runtime: read pointer metadata from the
// disjoint shadow space.
func (r *Runtime) LoadPtrMeta(addr uint64) rt.PtrMeta {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shadow[addr]
}

// StorePtrMeta implements rt.Runtime: write pointer metadata to the shadow
// space. Modelled prototype defect: the released shadow propagation loses
// the CETS lock-and-key pair, so a pointer that round-trips through memory
// keeps its bounds but not its temporal identity — use-after-free through
// reloaded pointers goes undetected, which is how Table II's 51.3% CWE416
// row comes about.
func (r *Runtime) StorePtrMeta(addr uint64, meta rt.PtrMeta) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if meta.Valid() {
		meta.Key, meta.Lock = 0, nil
		r.shadow[addr] = meta
		if n := int64(len(r.shadow)); n > r.shadowPeak {
			r.shadowPeak = n
		}
	} else {
		delete(r.shadow, addr)
	}
}

// OverheadBytes implements rt.Runtime: the disjoint pointer-metadata space
// (32 bytes per shadowed pointer) plus the lock space.
func (r *Runtime) OverheadBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int64(len(r.shadow))*32 + r.liveLocks*8
}
