package fuzz

import (
	"fmt"
	"hash"

	"cecsan/internal/checkpoint"
)

// CampaignCheckpoint is a fuzz campaign's serializable mid-run state,
// captured between chunks (never inside the worker fan-out, so there is no
// partial case to reason about). The snapshot plus the campaign identity
// (seed, fault seed, hardened mode, count, tool set) fully determines the
// rest of the run: a resumed campaign regenerates the remaining cases from
// their seeds and produces a report byte-identical to an uninterrupted one,
// witnessed by the running case-digest chain carried in the snapshot.
type CampaignCheckpoint struct {
	Seed      uint64   `json:"seed"`
	FaultSeed uint64   `json:"fault_seed,omitempty"`
	Hardened  bool     `json:"hardened,omitempty"`
	Count     int      `json:"count"`
	Tools     []string `json:"tools"`
	// NextCase is the resume cursor: every case index below it is fully
	// absorbed into the aggregates below.
	NextCase int `json:"next_case"`

	Injected      int                 `json:"injected"`
	CleanN        int                 `json:"clean_cases"`
	Shapes        map[string]int      `json:"shapes"`
	ToolAgg       []ToolReport        `json:"tool_agg"`
	HarnessFaults int                 `json:"harness_faults,omitempty"`
	FaultCases    []FaultCase         `json:"fault_cases,omitempty"`
	Findings      []CheckpointFinding `json:"findings,omitempty"`
	// CaseDigest is the running SHA-256 state of the case-digest chain
	// (crypto/sha256's binary marshaling), not a finished sum.
	CaseDigest []byte `json:"case_digest"`
}

// CheckpointFinding carries a Finding plus its case/tool coordinates, which
// the in-memory Finding keeps unexported (they exist only to drive the
// final minimization pass, which happens after all chunks are absorbed).
type CheckpointFinding struct {
	Finding
	CaseIdx int `json:"case_idx"`
	ToolIdx int `json:"tool_idx"`
}

// captureCampaign snapshots the running report after next cases have been
// absorbed.
func (r *Runner) captureCampaign(rep *Report, chain hash.Hash, next int) (*CampaignCheckpoint, error) {
	state, err := checkpoint.MarshalHash(chain)
	if err != nil {
		return nil, err
	}
	ck := &CampaignCheckpoint{
		Seed:          rep.Seed,
		FaultSeed:     rep.FaultSeed,
		Hardened:      rep.Hardened,
		Count:         rep.Count,
		NextCase:      next,
		Injected:      rep.Injected,
		CleanN:        rep.CleanN,
		Shapes:        rep.Shapes,
		HarnessFaults: rep.HarnessFaults,
		FaultCases:    rep.FaultCases,
		CaseDigest:    state,
	}
	for _, tool := range r.tools {
		ck.Tools = append(ck.Tools, string(tool))
	}
	ck.ToolAgg = append(ck.ToolAgg, rep.Tools...)
	for _, f := range rep.Findings {
		ck.Findings = append(ck.Findings, CheckpointFinding{Finding: f, CaseIdx: f.caseIdx, ToolIdx: f.toolIdx})
	}
	return ck, nil
}

// restoreCampaign rewinds the report and digest chain to a snapshot. The
// snapshot must match this campaign's identity exactly — a resume under a
// different seed, fault seed, hardened mode, count or tool set would fork
// the case stream, so every mismatch fails loudly before any case runs.
func (r *Runner) restoreCampaign(rep *Report, chain hash.Hash, ck *CampaignCheckpoint) error {
	if ck.Seed != r.cfg.Seed {
		return fmt.Errorf("fuzz: resume: checkpoint seed %d, campaign seed %d", ck.Seed, r.cfg.Seed)
	}
	if ck.FaultSeed != r.cfg.FaultSeed {
		return fmt.Errorf("fuzz: resume: checkpoint fault seed %d, campaign fault seed %d", ck.FaultSeed, r.cfg.FaultSeed)
	}
	if ck.Hardened != r.cfg.Hardened {
		return fmt.Errorf("fuzz: resume: checkpoint hardened=%v, campaign hardened=%v", ck.Hardened, r.cfg.Hardened)
	}
	if ck.Count != r.cfg.Count {
		return fmt.Errorf("fuzz: resume: checkpoint count %d, campaign count %d", ck.Count, r.cfg.Count)
	}
	if len(ck.Tools) != len(r.tools) {
		return fmt.Errorf("fuzz: resume: checkpoint has %d tools, campaign has %d", len(ck.Tools), len(r.tools))
	}
	for i, tool := range r.tools {
		if ck.Tools[i] != string(tool) {
			return fmt.Errorf("fuzz: resume: tool %d is %q in the checkpoint, %q in the campaign", i, ck.Tools[i], tool)
		}
	}
	if ck.NextCase < 0 || ck.NextCase > ck.Count {
		return fmt.Errorf("fuzz: resume: case cursor %d out of range [0, %d]", ck.NextCase, ck.Count)
	}
	if len(ck.ToolAgg) != len(rep.Tools) {
		return fmt.Errorf("fuzz: resume: checkpoint has %d tool aggregates, campaign has %d", len(ck.ToolAgg), len(rep.Tools))
	}
	if err := checkpoint.UnmarshalHash(chain, ck.CaseDigest); err != nil {
		return fmt.Errorf("fuzz: resume: %w", err)
	}
	rep.Injected = ck.Injected
	rep.CleanN = ck.CleanN
	if ck.Shapes != nil {
		rep.Shapes = ck.Shapes
	}
	copy(rep.Tools, ck.ToolAgg)
	rep.HarnessFaults = ck.HarnessFaults
	rep.FaultCases = ck.FaultCases
	rep.Findings = rep.Findings[:0]
	for _, f := range ck.Findings {
		restored := f.Finding
		restored.caseIdx = f.CaseIdx
		restored.toolIdx = f.ToolIdx
		rep.Findings = append(rep.Findings, restored)
	}
	return nil
}
