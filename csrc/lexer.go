// Package csrc is a small C-like source front-end for the prog IR: it lets
// test programs be written as text files and run with cmd/cecsan-run (or
// compiled via Compile), instead of hand-building IR with the prog package.
//
// The language (informal grammar in the package README section of Compile's
// doc comment) covers what the repository's workloads exercise: struct and
// global declarations, functions, locals (allocas), malloc/calloc/free,
// typed array indexing, struct field access, loops with recorded
// scalar-evolution facts, libc and external calls, and recv/fgets input.
package csrc

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokString
	tokPunct // single or multi-char operator / punctuation
)

// token is one lexeme with its source line for diagnostics.
type token struct {
	kind tokKind
	text string
	val  int64
	line int
}

// lexer tokenizes source text.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// puncts are the multi-character operators, longest first.
var puncts = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->", "+=", "-=",
	"+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "=", "(", ")",
	"{", "}", "[", "]", ",", ";", "!",
}

// lex tokenizes the whole source, reporting the first error.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], line: l.line})
		case unicode.IsDigit(rune(c)):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexChar(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if !l.lexPunct() {
				return nil, fmt.Errorf("csrc:%d: unexpected character %q", l.line, string(c))
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
	return l.toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// lexNumber scans decimal or 0x hex integers.
func (l *lexer) lexNumber() error {
	start := l.pos
	base := int64(10)
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		base = 16
		l.pos += 2
	}
	for l.pos < len(l.src) && isNumChar(l.src[l.pos], base) {
		l.pos++
	}
	text := l.src[start:l.pos]
	var v int64
	var err error
	if base == 16 {
		_, err = fmt.Sscanf(text, "0x%x", &v)
		if err != nil {
			_, err = fmt.Sscanf(text, "0X%x", &v)
		}
	} else {
		_, err = fmt.Sscanf(text, "%d", &v)
	}
	if err != nil {
		return fmt.Errorf("csrc:%d: bad number %q", l.line, text)
	}
	l.toks = append(l.toks, token{kind: tokInt, text: text, val: v, line: l.line})
	return nil
}

func isNumChar(c byte, base int64) bool {
	if unicode.IsDigit(rune(c)) {
		return true
	}
	if base == 16 {
		return (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
	}
	return false
}

// lexChar scans a character literal ('A', '\n', '\0', '\\', '\'').
func (l *lexer) lexChar() error {
	start := l.line
	l.pos++ // opening quote
	if l.pos >= len(l.src) {
		return fmt.Errorf("csrc:%d: unterminated character literal", start)
	}
	var v int64
	if l.src[l.pos] == '\\' {
		l.pos++
		if l.pos >= len(l.src) {
			return fmt.Errorf("csrc:%d: unterminated escape", start)
		}
		switch l.src[l.pos] {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			return fmt.Errorf("csrc:%d: unknown escape \\%c", start, l.src[l.pos])
		}
		l.pos++
	} else {
		v = int64(l.src[l.pos])
		l.pos++
	}
	if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
		return fmt.Errorf("csrc:%d: unterminated character literal", start)
	}
	l.pos++
	l.toks = append(l.toks, token{kind: tokInt, text: "'c'", val: v, line: start})
	return nil
}

// lexString scans a double-quoted string with the same escapes.
func (l *lexer) lexString() error {
	start := l.line
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) && l.src[l.pos] != '"' {
		c := l.src[l.pos]
		if c == '\n' {
			return fmt.Errorf("csrc:%d: newline in string literal", start)
		}
		if c == '\\' {
			l.pos++
			if l.pos >= len(l.src) {
				break
			}
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '0':
				b.WriteByte(0)
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			default:
				return fmt.Errorf("csrc:%d: unknown escape \\%c", start, l.src[l.pos])
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("csrc:%d: unterminated string literal", start)
	}
	l.pos++
	l.toks = append(l.toks, token{kind: tokString, text: b.String(), line: start})
	return nil
}

// lexPunct matches the longest operator at the cursor.
func (l *lexer) lexPunct() bool {
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.toks = append(l.toks, token{kind: tokPunct, text: p, line: l.line})
			l.pos += len(p)
			return true
		}
	}
	return false
}
