// Package harness implements the paper's "automation framework" (§IV):
// it drives every generated test case through every sanitizer — including
// the external-input cases previous evaluations excluded, whose payloads it
// serves like the paper's dummy server — classifies detections, misses,
// crashes and false positives, and renders Tables I and II. The
// performance half (Tables IV and V) lives in perf.go.
package harness

import (
	"fmt"
	"strings"

	"cecsan/internal/engine"
	"cecsan/internal/interp"
	"cecsan/internal/juliet"
	"cecsan/internal/obs"
	"cecsan/internal/sanitizers"
	"cecsan/prog"
)

// Outcome classifies one run of one program version.
type Outcome int

// Outcomes.
const (
	OutcomeClean Outcome = iota + 1
	OutcomeDetected
	OutcomeCrash
	OutcomeError
)

// RunCase executes one program with its input feed under a fresh instance
// of the named sanitizer. One-shot convenience over RunCaseOn; evaluation
// loops build an engine per tool and call RunCaseOn to benefit from the
// instrumentation cache.
func RunCase(p *prog.Program, inputs [][]byte, name sanitizers.Name) (Outcome, error) {
	eng, err := engine.New(name, engine.Options{})
	if err != nil {
		return OutcomeError, err
	}
	return RunCaseOn(eng, p, inputs)
}

// RunCaseOn executes one program through an engine (cached instrumentation,
// pooled resources, fresh sanitizer runtime) and classifies the outcome.
func RunCaseOn(eng *engine.Engine, p *prog.Program, inputs [][]byte) (Outcome, error) {
	res, err := eng.Run(p, inputs...)
	if err != nil {
		return OutcomeError, err
	}
	if o := Classify(res); o != OutcomeError {
		return o, nil
	}
	return OutcomeError, res.Err
}

// Classify maps a raw machine result to an Outcome: sanitizer report,
// machine-level crash, execution error, or clean completion. Shared by the
// Juliet evaluation and the differential fuzzer.
func Classify(res *interp.Result) Outcome {
	switch {
	case res.Violation != nil:
		return OutcomeDetected
	case res.Fault != nil:
		return OutcomeCrash
	case res.Err != nil:
		return OutcomeError
	default:
		return OutcomeClean
	}
}

// CWEStats aggregates one tool's results on one CWE.
type CWEStats struct {
	Total          int
	Detected       int // sanitizer report on the bad version
	Crashed        int // machine fault on the bad version (observable crash)
	FalsePositives int // report or crash on the good version
}

// Rate returns the detection rate in percent, counting crashes as
// observable detections (Juliet methodology: any abnormal termination of
// the bad version counts).
func (s CWEStats) Rate() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.Detected+s.Crashed) / float64(s.Total)
}

// ToolResult is one Table II column.
type ToolResult struct {
	Name   sanitizers.Name
	Cases  int // size of the tool's evaluated subset
	PerCWE map[juliet.CWE]CWEStats
	// Engine is the tool's pipeline counters: cache hit rate, cases/sec,
	// instrument vs execute time split.
	Engine engine.Stats
}

// TotalFalsePositives sums FPs across CWEs.
func (t *ToolResult) TotalFalsePositives() int {
	n := 0
	for _, s := range t.PerCWE {
		n += s.FalsePositives
	}
	return n
}

// JulietEvaluation is the material of Table II.
type JulietEvaluation struct {
	Tools []*ToolResult
}

// subsetFor returns the case filter reproducing each tool's published
// evaluation subset (§IV.B): PACMem and CryptSan excluded external-input
// cases; SoftBound/CETS only compiles a fraction of the suite.
func subsetFor(name sanitizers.Name) func(*juliet.Case) bool {
	switch name {
	case sanitizers.PACMem:
		return juliet.SubsetPACMem
	case sanitizers.CryptSan:
		return juliet.SubsetCryptSan
	case sanitizers.SoftBound:
		return juliet.SubsetSoftBound
	default:
		return func(*juliet.Case) bool { return true }
	}
}

// Progress, when set, receives per-tool completion updates while
// EvaluateJuliet runs, every ProgressEvery cases and once per tool at the
// end.
var Progress func(tool sanitizers.Name, done, total int)

// ProgressEvery is the Progress callback stride.
var ProgressEvery = 200

// Obs, when set, is attached to every engine the harness builds (same
// package-level-hook convention as Progress). Observability only reads
// execution state, so evaluation results are identical with or without it.
var Obs *obs.Observer

// EvaluateJuliet runs the suite under every listed tool, in parallel across
// cases. workers <= 0 selects GOMAXPROCS. All tools share one campaign-global
// instrumentation cache, and each tool's case families are pre-instrumented
// before its run loop, so the run path never compiles inline.
func EvaluateJuliet(suite []*juliet.Case, tools []sanitizers.Name, workers int) (*JulietEvaluation, error) {
	eval := &JulietEvaluation{}
	cache := engine.NewCache(0)
	for _, tool := range tools {
		tr, err := evaluateTool(suite, tool, workers, cache)
		if err != nil {
			return nil, err
		}
		eval.Tools = append(eval.Tools, tr)
	}
	return eval, nil
}

// evaluateTool runs one tool over its subset of the suite through one
// engine: the tool's cases share the campaign's instrumentation cache and
// the engine's resource pool, and fan out across the worker scheduler. The
// bad and good variants of every case are pre-instrumented (single-flight,
// across the worker pool) before the run loop starts.
func evaluateTool(suite []*juliet.Case, tool sanitizers.Name, workers int, cache *engine.Cache) (*ToolResult, error) {
	include := subsetFor(tool)
	var cases []*juliet.Case
	for _, cs := range suite {
		if include(cs) {
			cases = append(cases, cs)
		}
	}
	tr := &ToolResult{Name: tool, Cases: len(cases), PerCWE: make(map[juliet.CWE]CWEStats)}

	eopts := engine.Options{Workers: workers, ProgressEvery: ProgressEvery, Obs: Obs, Cache: cache}
	if Progress != nil {
		eopts.Progress = func(done, total int) { Progress(tool, done, total) }
	}
	eng, err := engine.New(tool, eopts)
	if err != nil {
		return nil, err
	}

	progs := make([]*prog.Program, 0, 2*len(cases))
	for _, cs := range cases {
		progs = append(progs, cs.Bad, cs.Good)
	}
	eng.Preinstrument(progs)

	type caseOut struct {
		cwe        juliet.CWE
		badOutcome Outcome
		fp         bool
	}
	outs := make([]caseOut, len(cases))
	err = eng.ForEach(len(cases), func(i int) error {
		cs := cases[i]
		bad, err := RunCaseOn(eng, cs.Bad, cs.BadInputs)
		if err != nil {
			return fmt.Errorf("%s bad: %w", cs.ID, err)
		}
		good, err := RunCaseOn(eng, cs.Good, cs.GoodInputs)
		if err != nil {
			return fmt.Errorf("%s good: %w", cs.ID, err)
		}
		outs[i] = caseOut{
			cwe:        cs.CWE,
			badOutcome: bad,
			fp:         good == OutcomeDetected || good == OutcomeCrash,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for _, o := range outs {
		s := tr.PerCWE[o.cwe]
		s.Total++
		switch o.badOutcome {
		case OutcomeDetected:
			s.Detected++
		case OutcomeCrash:
			s.Crashed++
		}
		if o.fp {
			s.FalsePositives++
		}
		tr.PerCWE[o.cwe] = s
	}
	tr.Engine = eng.Stats()
	return tr, nil
}

// FormatTable1 renders Table I (suite composition).
func FormatTable1(suite []*juliet.Case) string {
	counts := map[juliet.CWE]int{}
	for _, cs := range suite {
		counts[cs.CWE]++
	}
	var b strings.Builder
	b.WriteString("Table I: Description of the generated Juliet-style suite\n")
	fmt.Fprintf(&b, "%-10s %-24s %s\n", "CWE Name", "Vulnerability Type", "Number of Samples")
	total := 0
	for _, cwe := range juliet.AllCWEs() {
		fmt.Fprintf(&b, "%-10s %-24s %d\n", cwe, cwe.Description(), counts[cwe])
		total += counts[cwe]
	}
	fmt.Fprintf(&b, "%-10s %-24s %d\n", "Total", "-", total)
	return b.String()
}

// FormatTable2 renders Table II (per-CWE detection rates per tool).
func FormatTable2(eval *JulietEvaluation) string {
	var b strings.Builder
	b.WriteString("Table II: Comparison of Memory Violation Detection\n")
	b.WriteString(fmt.Sprintf("%-8s", "Name"))
	for _, tr := range eval.Tools {
		b.WriteString(fmt.Sprintf(" %16s", fmt.Sprintf("%s(%d)", tr.Name, tr.Cases)))
	}
	b.WriteString("\n")
	for _, cwe := range juliet.AllCWEs() {
		b.WriteString(fmt.Sprintf("%-8s", cwe))
		for _, tr := range eval.Tools {
			s := tr.PerCWE[cwe]
			if s.Total == 0 {
				b.WriteString(fmt.Sprintf(" %16s", "-"))
				continue
			}
			b.WriteString(fmt.Sprintf(" %15.2f%%", s.Rate()))
		}
		b.WriteString("\n")
	}
	b.WriteString(fmt.Sprintf("%-8s", "FPs"))
	for _, tr := range eval.Tools {
		b.WriteString(fmt.Sprintf(" %16d", tr.TotalFalsePositives()))
	}
	b.WriteString("\n")
	return b.String()
}

