package core

import (
	"strings"
	"testing"

	"cecsan/internal/alloc"
	"cecsan/internal/mem"
	"cecsan/internal/rt"
	"cecsan/internal/tagptr"
)

func newRuntime(t *testing.T) *Runtime {
	t.Helper()
	r, err := New(DefaultOptions())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	space, err := mem.NewSpace(47)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	env := rt.Env{Space: space, Heap: alloc.NewHeap(), Globals: alloc.NewGlobals()}
	if err := r.Attach(&env); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	return r
}

func mustMalloc(t *testing.T, r *Runtime, size int64) uint64 {
	t.Helper()
	p, _, err := r.Malloc(size)
	if err != nil {
		t.Fatalf("Malloc(%d): %v", size, err)
	}
	return p
}

func TestMallocReturnsTaggedPointer(t *testing.T) {
	r := newRuntime(t)
	p := mustMalloc(t, r, 64)
	if !tagptr.X8664.IsTagged(p) {
		t.Fatalf("Malloc returned untagged pointer %#x", p)
	}
	if raw := r.Addr(p); alloc.SegmentOf(raw) != alloc.SegHeap {
		t.Fatalf("stripped pointer %#x not in heap segment", raw)
	}
}

func TestCheckInBoundsAccesses(t *testing.T) {
	r := newRuntime(t)
	p := mustMalloc(t, r, 64)
	tests := []struct {
		name string
		off  int64
		size int64
	}{
		{name: "first byte", off: 0, size: 1},
		{name: "interior word", off: 32, size: 8},
		{name: "last byte", off: 63, size: 1},
		{name: "exactly filling access", off: 56, size: 8},
		{name: "whole object", off: 0, size: 64},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if v := r.Check(p, rt.PtrMeta{}, tt.off, tt.size, rt.Read); v != nil {
				t.Fatalf("false positive: %v", v)
			}
			if v := r.Check(p, rt.PtrMeta{}, tt.off, tt.size, rt.Write); v != nil {
				t.Fatalf("false positive on write: %v", v)
			}
		})
	}
}

func TestCheckOutOfBoundsAccesses(t *testing.T) {
	r := newRuntime(t)
	p := mustMalloc(t, r, 64)
	tests := []struct {
		name string
		off  int64
		size int64
		kind rt.AccessKind
		want rt.Kind
	}{
		{name: "off-by-one write", off: 64, size: 1, kind: rt.Write, want: rt.KindOOBWrite},
		{name: "straddling end", off: 60, size: 8, kind: rt.Write, want: rt.KindOOBWrite},
		{name: "far overflow read", off: 4096, size: 4, kind: rt.Read, want: rt.KindOOBRead},
		{name: "underflow", off: -1, size: 1, kind: rt.Write, want: rt.KindOOBWrite},
		{name: "far underflow", off: -4096, size: 8, kind: rt.Read, want: rt.KindOOBRead},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := r.Check(p, rt.PtrMeta{}, tt.off, tt.size, tt.kind)
			if v == nil {
				t.Fatal("out-of-bounds access not detected")
			}
			if v.Kind != tt.want {
				t.Fatalf("kind = %v, want %v", v.Kind, tt.want)
			}
		})
	}
}

// TestCheckDetectsRedzoneSkippingOverflow is the attack ASan's redzones
// miss: a stride large enough to land inside ANOTHER live object. CECSan's
// identity-based bounds catch it regardless of where the access lands.
func TestCheckDetectsRedzoneSkippingOverflow(t *testing.T) {
	r := newRuntime(t)
	a := mustMalloc(t, r, 64)
	b := mustMalloc(t, r, 64)
	dist := int64(r.Addr(b) - r.Addr(a))
	if v := r.Check(a, rt.PtrMeta{}, dist+8, 1, rt.Write); v == nil {
		t.Fatal("stride overflow into a neighbouring live object not detected")
	}
}

func TestUseAfterFreeDetected(t *testing.T) {
	r := newRuntime(t)
	p := mustMalloc(t, r, 64)
	if v := r.Free(p, rt.PtrMeta{}); v != nil {
		t.Fatalf("legal free reported: %v", v)
	}
	v := r.Check(p, rt.PtrMeta{}, 0, 8, rt.Read)
	if v == nil {
		t.Fatal("use-after-free not detected")
	}
	if v.Kind != rt.KindUseAfterFree {
		t.Fatalf("kind = %v, want use-after-free", v.Kind)
	}
}

// TestUseAfterFreeWithImmediateReuse: glibc-style LIFO reuse hands the same
// memory to a new object. The dangling pointer's table entry was also
// recycled — but the new entry's bounds don't match the stale tag's object,
// or the entry's low bound is INVALID; either way the check fails (§II.C.1).
func TestUseAfterFreeWithReuse(t *testing.T) {
	r := newRuntime(t)
	p := mustMalloc(t, r, 64)
	r.Free(p, rt.PtrMeta{})
	q := mustMalloc(t, r, 64) // reuses both the chunk and the table entry
	if r.Addr(q) != r.Addr(p) {
		t.Skip("allocator did not reuse the chunk; scenario not reproduced")
	}
	// The stale pointer p carries the old tag; the entry now belongs to q.
	// Dereference through p must still be caught... unless the recycled
	// entry accidentally matches. Here sizes are identical and the entry
	// index is the same, so bounds DO match: this is the paper's admitted
	// residual case ("accidentally has the same index"). Verify the
	// documented behaviour: the check passes.
	if v := r.Check(p, rt.PtrMeta{}, 0, 8, rt.Read); v != nil {
		t.Fatalf("documented residual-miss case unexpectedly reported: %v", v)
	}
	// With a different-size object in between, the tag is NOT recycled to
	// the same bounds and the UAF IS caught.
	r.Free(q, rt.PtrMeta{})
	big := mustMalloc(t, r, 128)
	_ = big
	if v := r.Check(q, rt.PtrMeta{}, 0, 8, rt.Read); v == nil {
		t.Fatal("use-after-free with non-matching reuse not detected")
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	r := newRuntime(t)
	p := mustMalloc(t, r, 64)
	r.Free(p, rt.PtrMeta{})
	v := r.Free(p, rt.PtrMeta{})
	if v == nil {
		t.Fatal("double free not detected")
	}
	if v.Kind != rt.KindDoubleFree {
		t.Fatalf("kind = %v, want double-free", v.Kind)
	}
}

func TestInvalidFreeDetected(t *testing.T) {
	r := newRuntime(t)
	p := mustMalloc(t, r, 64)
	v := r.Free(p+16, rt.PtrMeta{})
	if v == nil {
		t.Fatal("free of interior pointer not detected")
	}
	if v.Kind != rt.KindInvalidFree {
		t.Fatalf("kind = %v, want invalid-free", v.Kind)
	}
	if !strings.Contains(v.Detail, "base") {
		t.Errorf("detail %q should mention the base address", v.Detail)
	}
}

// TestInvalidFreeAlignedCollision frees a+dist where dist lands exactly on
// another chunk's base — the case that fools allocator-registry checks
// (ASan's) but not Algorithm 2, because the pointer's TAG still names a's
// metadata whose low bound is a's base, not b's.
func TestInvalidFreeAlignedCollision(t *testing.T) {
	r := newRuntime(t)
	a := mustMalloc(t, r, 64)
	b := mustMalloc(t, r, 64)
	dist := r.Addr(b) - r.Addr(a)
	v := r.Free(a+dist, rt.PtrMeta{})
	if v == nil {
		t.Fatal("aligned-collision invalid free not detected")
	}
	if v.Kind != rt.KindInvalidFree {
		t.Fatalf("kind = %v, want invalid-free", v.Kind)
	}
}

func TestFreeOfStackObjectDetected(t *testing.T) {
	r := newRuntime(t)
	p, _ := r.StackAlloc(alloc.StackBase+0x100, 64, true)
	v := r.Free(p, rt.PtrMeta{})
	if v == nil {
		t.Fatal("free of stack object not detected")
	}
	if v.Kind != rt.KindInvalidFree {
		t.Fatalf("kind = %v, want invalid-free", v.Kind)
	}
}

func TestStackProtectionLifecycle(t *testing.T) {
	r := newRuntime(t)
	const raw = alloc.StackBase + 0x200
	p, _ := r.StackAlloc(raw, 32, true)
	if !tagptr.X8664.IsTagged(p) {
		t.Fatal("tracked stack object not tagged")
	}
	if v := r.Check(p, rt.PtrMeta{}, 0, 32, rt.Write); v != nil {
		t.Fatalf("in-bounds stack access reported: %v", v)
	}
	if v := r.Check(p, rt.PtrMeta{}, 32, 1, rt.Write); v == nil {
		t.Fatal("stack overflow not detected")
	}
	r.StackRelease(p, 32)
	if v := r.Check(p, rt.PtrMeta{}, 0, 1, rt.Read); v == nil {
		t.Fatal("use-after-scope not detected")
	}

	// Untracked ("safe") stack objects are untagged and unchecked.
	q, _ := r.StackAlloc(raw+64, 8, false)
	if tagptr.X8664.IsTagged(q) {
		t.Fatal("untracked stack object was tagged")
	}
}

func TestGlobalProtection(t *testing.T) {
	r := newRuntime(t)
	const raw = alloc.GlobalsBase + 0x40
	p, _ := r.GlobalInit("g_buf", raw, 16, true)
	if !tagptr.X8664.IsTagged(p) {
		t.Fatal("unsafe global not tagged for the GPT")
	}
	if v := r.Check(p, rt.PtrMeta{}, 15, 1, rt.Write); v != nil {
		t.Fatalf("in-bounds global access reported: %v", v)
	}
	if v := r.Check(p, rt.PtrMeta{}, 16, 1, rt.Write); v == nil {
		t.Fatal("global overflow not detected")
	}
	// Safe globals stay untagged.
	q, _ := r.GlobalInit("g_int", raw+32, 4, false)
	if tagptr.X8664.IsTagged(q) {
		t.Fatal("safe global was tagged")
	}
	if r.OverheadBytes() < 8 {
		t.Error("GPT slot not accounted in OverheadBytes")
	}
}

// TestSubObjectNarrowing reproduces Figure 3: a 16-byte field inside a
// 24-byte struct; a 24-byte memcpy through the narrowed field pointer must
// be flagged as a sub-object overflow even though it stays inside the
// parent object.
func TestSubObjectNarrowing(t *testing.T) {
	r := newRuntime(t)
	obj := mustMalloc(t, r, 24) // struct { char charFirst[16]; void *voidSecond; }
	sub, _ := r.SubPtr(obj, 0, 16)

	if v := r.Check(sub, rt.PtrMeta{}, 0, 16, rt.Write); v != nil {
		t.Fatalf("in-bounds sub-object write reported: %v", v)
	}
	v := r.Check(sub, rt.PtrMeta{}, 0, 24, rt.Write) // memcpy(sizeof(struct))
	if v == nil {
		t.Fatal("sub-object overflow not detected (Figure 3)")
	}
	if v.Kind != rt.KindSubObjectOverflow {
		t.Fatalf("kind = %v, want sub-object-overflow", v.Kind)
	}
	// Through the ORIGINAL object pointer the same copy is legal.
	if v := r.Check(obj, rt.PtrMeta{}, 0, 24, rt.Write); v != nil {
		t.Fatalf("whole-object access through object pointer reported: %v", v)
	}
	if r.SubCreated() != 1 {
		t.Errorf("SubCreated = %d, want 1", r.SubCreated())
	}
	// Scope exit releases the narrowed metadata (Figure 3, line 13).
	live := r.Table().Stats().Live
	r.SubRelease(sub)
	if got := r.Table().Stats().Live; got != live-1 {
		t.Errorf("SubRelease did not free the entry: live %d -> %d", live, got)
	}
}

func TestExternArgStripAndCheck(t *testing.T) {
	r := newRuntime(t)
	p := mustMalloc(t, r, 64)
	raw, v := r.PrepareExternArg(p)
	if v != nil {
		t.Fatalf("valid pointer rejected at external boundary: %v", v)
	}
	if tagptr.X8664.IsTagged(raw) {
		t.Fatal("pointer not stripped before external call")
	}
	// One-past-end pointers are legal C and must pass.
	if _, v := r.PrepareExternArg(p + 64); v != nil {
		t.Fatalf("one-past-end pointer rejected: %v", v)
	}
	// Dangling pointers must be rejected (checked and stripped, §II.E).
	r.Free(p, rt.PtrMeta{})
	if _, v := r.PrepareExternArg(p); v == nil {
		t.Fatal("dangling pointer passed to external code not detected")
	}
}

func TestAdoptExternRetUncheckedButUsable(t *testing.T) {
	r := newRuntime(t)
	foreign := r.AdoptExternRet(alloc.HeapBase + 0x5000)
	if tagptr.X8664.IsTagged(foreign) {
		t.Fatal("foreign pointer should map to the reserved entry (tag 0)")
	}
	// Reserved entry 0: any access passes — used as-is, never checked.
	if v := r.Check(foreign, rt.PtrMeta{}, 1<<20, 8, rt.Write); v != nil {
		t.Fatalf("foreign pointer access checked/rejected: %v", v)
	}
	// And freeing it goes straight to the standard deallocator, unchecked.
	if v := r.Free(foreign, rt.PtrMeta{}); v != nil {
		t.Fatalf("free of foreign pointer reported: %v", v)
	}
}

func TestLibcCheckCoversWideCharacterFunctions(t *testing.T) {
	r := newRuntime(t)
	p := mustMalloc(t, r, 40) // wchar_t[10]
	// wcsncpy of 10 wide chars = 40 bytes: fine.
	if v := r.LibcCheck("wcsncpy", p, rt.PtrMeta{}, 40, rt.Write); v != nil {
		t.Fatalf("in-bounds wcsncpy reported: %v", v)
	}
	// 11 wide chars = 44 bytes: CECSan instruments the call site, so the
	// wide-character gap of interceptor-based sanitizers does not exist.
	if v := r.LibcCheck("wcsncpy", p, rt.PtrMeta{}, 44, rt.Write); v == nil {
		t.Fatal("wcsncpy overflow not detected")
	}
	if v := r.LibcCheck("memcpy", p, rt.PtrMeta{}, 0, rt.Write); v != nil {
		t.Fatalf("zero-length libc op reported: %v", v)
	}
}

func TestTableExhaustionFallback(t *testing.T) {
	r := newRuntime(t)
	// Exhaust the table directly (faster than 2^17 Mallocs through the heap).
	tbl := r.Table()
	for {
		if _, ok := tbl.Allocate(0x1000, 0x1040, false); !ok {
			break
		}
	}
	p := mustMalloc(t, r, 64)
	if tagptr.X8664.IsTagged(p) {
		t.Fatal("exhausted-table Malloc returned a tagged pointer")
	}
	// The object is usable (reserved entry semantics) but unprotected.
	if v := r.Check(p, rt.PtrMeta{}, 1<<16, 8, rt.Write); v != nil {
		t.Fatalf("fallback pointer was checked: %v", v)
	}
	if tbl.Stats().Exhausted == 0 {
		t.Error("exhaustion not counted")
	}
	// Its free must not report and must reach the heap.
	if v := r.Free(p, rt.PtrMeta{}); v != nil {
		t.Fatalf("free of fallback pointer reported: %v", v)
	}
}

func TestOverheadBytesIsCompact(t *testing.T) {
	r := newRuntime(t)
	for i := 0; i < 1000; i++ {
		mustMalloc(t, r, 64)
	}
	oh := r.OverheadBytes()
	// 1000 entries * 24B = ~24KB -> a handful of pages, not megabytes:
	// the paper's "compact metadata table" claim.
	if oh > 64*1024 {
		t.Fatalf("OverheadBytes = %d after 1000 allocations, want < 64KiB", oh)
	}
}

func TestPtrMetaNoOps(t *testing.T) {
	r := newRuntime(t)
	if m := r.LoadPtrMeta(0x1000); m.Valid() {
		t.Error("CECSan LoadPtrMeta returned metadata")
	}
	r.StorePtrMeta(0x1000, rt.PtrMeta{Base: 1, Bound: 2}) // must not panic
}

func TestViolationErrorString(t *testing.T) {
	r := newRuntime(t)
	p := mustMalloc(t, r, 16)
	v := r.Check(p, rt.PtrMeta{}, 16, 8, rt.Write)
	if v == nil {
		t.Fatal("expected violation")
	}
	msg := v.Error()
	for _, want := range []string{"buffer-overflow-write", "heap"} {
		if !strings.Contains(msg, want) {
			t.Errorf("violation message %q missing %q", msg, want)
		}
	}
}
