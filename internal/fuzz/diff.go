package fuzz

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"sort"
	"sync/atomic"
	"time"

	"cecsan/csrc"
	"cecsan/internal/checkpoint"
	"cecsan/internal/engine"
	"cecsan/internal/faultinject"
	"cecsan/internal/harness"
	"cecsan/internal/interp"
	"cecsan/internal/obs"
	"cecsan/internal/rt"
	"cecsan/internal/sanitizers"
)

// Config parameterizes a differential campaign.
type Config struct {
	// Seed is the campaign base seed; per-case seeds derive from it.
	Seed uint64
	// Count is the number of generated cases.
	Count int
	// Workers bounds concurrency; <= 0 selects GOMAXPROCS.
	Workers int
	// MaxInstructions bounds each run (0 = 50M, far above any generated
	// program; the bound only catches generator bugs).
	MaxInstructions int64
	// MaxCallDepth bounds each run's simulated recursion (0 = interpreter
	// default).
	MaxCallDepth int
	// WallBudget is the per-case wall-clock watchdog (0 = 30s — a hang
	// backstop that the instruction budget fires long before in any
	// deterministic run, so campaign records stay byte-reproducible).
	WallBudget time.Duration
	// FaultSeed enables deterministic fault injection: each case's fault
	// plan derives from (FaultSeed, program fingerprint). Expected-miss
	// disagreements under injection pressure are diverted to the pressure
	// bucket; spurious detections stay findings. 0 disables injection.
	FaultSeed uint64
	// MinimizeCap bounds how many findings get the delta-debugging
	// treatment (0 = 8). Findings beyond the cap keep their full source.
	MinimizeCap int
	// Hardened swaps every CECSan-family tool for its temporally hardened
	// variant (generation-stamped metatable entries + address quarantine),
	// changing the oracle expectations with it: the Reuse/IndexReuse blind
	// spots become mandatory detections. Tools without a hardened variant
	// run unchanged.
	Hardened bool
	// Progress, when set, receives (done, total) while the campaign runs.
	Progress func(done, total int)
	// Obs, when set, attaches the observability layer to every engine in the
	// fan-out and registers campaign-level gauges (fuzz_cases_per_sec,
	// fuzz_cache_hit_rate, fuzz_faults_total, ...). Reports are byte-identical
	// with or without it.
	Obs *obs.Observer
	// CheckpointPath, when set, arms periodic durable checkpointing: the
	// campaign runs in CheckpointEvery-case chunks and snapshots its
	// accumulated state (case cursor, aggregates, findings, running case
	// digest) after each chunk. Snapshots happen between chunks, never
	// inside the worker fan-out, so checkpointing stays off the hot path.
	CheckpointPath string
	// CheckpointEvery is the chunk size in cases (default 500 when
	// CheckpointPath is set).
	CheckpointEvery int
	// Resume, when set, restores a prior campaign's snapshot and continues
	// from its case cursor. Validated against seed, fault seed, hardened
	// mode, count and the tool set — the resumed report is byte-identical
	// to an uninterrupted run's.
	Resume *CampaignCheckpoint
}

// Runner owns one engine per sanitizer and fans generated cases across all
// of them.
type Runner struct {
	cfg       Config
	faultMode bool
	tools     []sanitizers.Name
	engines   []*engine.Engine
}

// NewRunner builds a runner with one engine per registry sanitizer. All
// engines share the campaign's seeds so HWASan's tag stream is identical
// across runs of the same campaign.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.MaxInstructions == 0 {
		cfg.MaxInstructions = 50_000_000
	}
	if cfg.MinimizeCap == 0 {
		cfg.MinimizeCap = 8
	}
	if cfg.WallBudget == 0 {
		cfg.WallBudget = 30 * time.Second
	}
	r := &Runner{cfg: cfg, faultMode: cfg.FaultSeed != 0, tools: sanitizers.All()}
	if cfg.Hardened {
		for i, tool := range r.tools {
			if h, ok := sanitizers.Hardened(tool); ok {
				r.tools[i] = h
			}
		}
	}
	cache := engine.NewCache(0)
	for _, tool := range r.tools {
		// Progress is driven by Campaign's own cumulative counter (not the
		// engine scheduler) so it reports campaign-absolute case counts even
		// when the campaign runs in checkpoint chunks or resumes mid-way.
		opts := engine.Options{
			Workers:         cfg.Workers,
			MaxInstructions: cfg.MaxInstructions,
			MaxCallDepth:    cfg.MaxCallDepth,
			WallBudget:      cfg.WallBudget,
			FaultSeed:       cfg.FaultSeed,
			RuntimeSeed:     cfg.Seed,
			Obs:             cfg.Obs,
			Cache:           cache,
		}
		eng, err := engine.New(tool, opts)
		if err != nil {
			return nil, fmt.Errorf("fuzz: %w", err)
		}
		r.engines = append(r.engines, eng)
	}
	if cfg.Obs != nil {
		r.registerMetrics(cfg.Obs)
	}
	return r, nil
}

// LiveStats is a campaign-level aggregate over the runner's per-tool
// engines, cheap enough to poll from a progress line or a metrics snapshot.
type LiveStats struct {
	// Runs is total machine runs across all engines (each case fans out to
	// one run per sanitizer).
	Runs int64
	// Faults is total classified harness faults across all engines.
	Faults int64
	// CacheHitRate is the pooled instrumentation-cache hit fraction.
	CacheHitRate float64
	// CasesPerSec is total runs divided by the widest engine wall span.
	CasesPerSec float64
}

// LiveStats aggregates the engines' counters right now.
func (r *Runner) LiveStats() LiveStats {
	var ls LiveStats
	var hits, misses int64
	var wall time.Duration
	for _, e := range r.engines {
		s := e.Stats()
		ls.Runs += s.Runs
		ls.Faults += s.Faults
		hits += s.CacheHits
		misses += s.CacheMisses
		if s.Wall > wall {
			wall = s.Wall
		}
	}
	if hits+misses > 0 {
		ls.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	if wall > 0 {
		ls.CasesPerSec = float64(ls.Runs) / wall.Seconds()
	}
	return ls
}

// registerMetrics exposes the campaign-level aggregates as registry func
// gauges; the per-tool engine series are registered by the engines
// themselves.
func (r *Runner) registerMetrics(o *obs.Observer) {
	reg := o.Registry
	reg.GaugeFunc("fuzz_runs_total", func() float64 { return float64(r.LiveStats().Runs) })
	reg.GaugeFunc("fuzz_faults_total", func() float64 { return float64(r.LiveStats().Faults) })
	reg.GaugeFunc("fuzz_cache_hit_rate", func() float64 { return r.LiveStats().CacheHitRate })
	reg.GaugeFunc("fuzz_cases_per_sec", func() float64 { return r.LiveStats().CasesPerSec })
	reg.GaugeFunc("fuzz_tools", func() float64 { return float64(len(r.tools)) })
}

// Classification buckets for one (case, tool) cell. Anything not in this
// list is a finding.
const (
	bucketDetected     = "detected"      // expected detect, got a report
	bucketMissDoc      = "miss_doc"      // documented blind spot, silent
	bucketDetectedProb = "detected_prob" // probabilistic model, got a report
	bucketMissProb     = "miss_prob"     // probabilistic model, silent
	bucketClean        = "clean"         // clean case ran clean
	// bucketPressure collects fault-mode cells where injected resource
	// pressure legitimately changed the run: the program died of an injected
	// OOM or page-map failure before (or instead of) the bug, or the metadata
	// clamp degraded coverage so an expected detection went silent. Only
	// miss-direction disagreements divert here — a *detection* the oracle
	// rules out is a finding no matter what was injected.
	bucketPressure = "pressure"
)

// Finding is one oracle disagreement: an outcome the expectation models
// declare impossible. The acceptance bar for the subsystem is an empty
// findings list; anything here is either a sanitizer-model bug, an
// expectation-model bug, or a genuine discovery for the ROADMAP backlog.
type Finding struct {
	Tool   string `json:"tool"`
	Seed   uint64 `json:"seed"`
	Shape  string `json:"shape"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
	// Expect / Outcome / Kind record the disagreement: what the model
	// predicted, what the run did, and the violation kind if any.
	Expect   string `json:"expect,omitempty"`
	Outcome  string `json:"outcome"`
	Kind     string `json:"kind,omitempty"`
	WantKind string `json:"want_kind,omitempty"`
	// Source is the reproducer — minimized when the finding was within
	// the minimization cap, the full generated program otherwise.
	Source    string `json:"source"`
	Minimized bool   `json:"minimized"`

	caseIdx int
	toolIdx int
}

// ToolReport aggregates one sanitizer's column of the campaign.
type ToolReport struct {
	Tool string `json:"tool"`
	// Bucket counts over the tool's cells (injected + clean cases).
	Detected     int `json:"detected"`
	MissDoc      int `json:"miss_doc"`
	DetectedProb int `json:"detected_prob,omitempty"`
	MissProb     int `json:"miss_prob,omitempty"`
	Clean        int `json:"clean"`
	// Pressure counts cells where injected faults legitimately changed the
	// outcome (fault mode only).
	Pressure int `json:"pressure,omitempty"`
	// Faults counts harness-level faults (recovered panics, budget
	// exhaustions) — cases with no sanitizer verdict at all.
	Faults   int `json:"faults,omitempty"`
	Findings int `json:"findings,omitempty"`
}

// FaultCase records one harness-level fault deterministically: class only —
// panic values and stacks carry addresses, so they stay out of the record.
type FaultCase struct {
	Tool  string `json:"tool"`
	Seed  uint64 `json:"seed"`
	Shape string `json:"shape"`
	Class string `json:"class"`
}

// Report is the deterministic campaign record: same seed, count and fault
// seed produce a byte-identical report regardless of worker count (it
// deliberately carries no timing — throughput lives in the separate bench
// record).
type Report struct {
	Seed      uint64         `json:"seed"`
	FaultSeed uint64         `json:"fault_seed,omitempty"`
	Hardened  bool           `json:"hardened,omitempty"`
	Count     int            `json:"count"`
	Injected  int            `json:"injected"`
	CleanN    int            `json:"clean_cases"`
	Shapes    map[string]int `json:"shapes"`
	// CaseDigest is the hex SHA-256 over every case's canonical outcome
	// record in case order — the campaign's byte-determinism witness (the
	// analogue of the traffic stream digest), checkpointed mid-stream so a
	// resumed campaign provably covers the identical cases.
	CaseDigest string       `json:"case_digest"`
	Tools      []ToolReport `json:"tools"`
	// HarnessFaults totals FaultCases; any non-zero value makes cmd/fuzz
	// exit 2 (harness fault), distinct from exit 1 (findings).
	HarnessFaults int         `json:"harness_faults,omitempty"`
	FaultCases    []FaultCase `json:"fault_cases,omitempty"`
	Findings      []Finding   `json:"findings"`
}

// outcomeName renders a harness outcome for JSON records.
func outcomeName(o harness.Outcome) string {
	switch o {
	case harness.OutcomeClean:
		return "clean"
	case harness.OutcomeDetected:
		return "detected"
	case harness.OutcomeCrash:
		return "crash"
	case harness.OutcomeError:
		return "error"
	}
	return "?"
}

// cell is the classification of one (case, tool) run.
type cell struct {
	bucket     string // one of the bucket* constants, or "" for a finding
	reason     string // finding reason when bucket == ""
	detail     string
	expect     Expect
	outcome    harness.Outcome
	kind       rt.Kind // observed violation kind, if any
	hasKind    bool
	faultClass string // harness-fault class when the machine itself stopped
}

// classify compares one run result against the oracle's expectation for
// the tool. The rules mirror the subsystem contract in the package doc;
// faultMode additionally enables the pressure diversions documented on
// bucketPressure.
func classify(tool sanitizers.Name, o *Oracle, res *interp.Result, faultMode bool) cell {
	outcome := harness.Classify(res)
	c := cell{outcome: outcome, expect: ExpectFor(tool, o)}
	if v := res.Violation; v != nil {
		c.kind, c.hasKind = v.Kind, true
	}
	if fo := engine.AsFault(res.Err); fo != nil {
		// The machine itself was stopped: there is no sanitizer verdict to
		// compare. Recorded by class alone (stacks and panic payloads carry
		// addresses) and surfaced as a harness fault, not a finding.
		c.faultClass = fo.Class.String()
		return c
	}
	// Injection pressure that legitimately pre-empts or masks the verdict:
	// the program died of an injected OOM or page-map SIGBUS, or the clamped
	// metadata table degraded coverage. Detections the oracle rules out are
	// never excused this way.
	pressured := faultMode && (res.Stats.InjectedFaults > 0 ||
		res.Stats.DegradedAllocs > 0 ||
		(res.Fault != nil && res.Fault.Injected) ||
		errors.Is(res.Err, faultinject.ErrInjectedOOM))
	switch outcome {
	case harness.OutcomeError:
		if pressured && errors.Is(res.Err, faultinject.ErrInjectedOOM) {
			c.bucket = bucketPressure
			return c
		}
		c.reason = "error"
		if res.Err != nil {
			c.detail = res.Err.Error()
		}
		return c
	case harness.OutcomeCrash:
		if pressured && res.Fault != nil && res.Fault.Injected {
			c.bucket = bucketPressure
			return c
		}
		// No shape is allowed to escalate to a machine-level fault under
		// any tool — least of all native, whose contract is "never aborts".
		c.reason = "fault"
		return c
	}
	detected := outcome == harness.OutcomeDetected

	if !o.Injected {
		if detected {
			c.reason = "false-positive"
			return c
		}
		c.bucket = bucketClean
		return c
	}

	if tool == sanitizers.Native && detected {
		c.reason = "native-report"
		return c
	}
	if tool == sanitizers.CECSan && c.expect == ExpectDetect {
		// Stricter than the generic ExpectDetect arm: CECSan must also
		// report the exact violation kind the oracle recorded. (The one
		// ExpectMiss carve-out — the staged tag-reuse UAF — falls through
		// to the generic classification below.)
		if !detected {
			if pressured {
				c.bucket = bucketPressure
				return c
			}
			c.reason = "cecsan-false-negative"
			return c
		}
		if c.kind != o.Kind {
			if pressured {
				c.bucket = bucketPressure
				return c
			}
			c.reason = "wrong-kind"
			c.detail = fmt.Sprintf("reported %v", c.kind)
			return c
		}
		c.bucket = bucketDetected
		return c
	}

	switch c.expect {
	case ExpectDetect:
		if detected {
			c.bucket = bucketDetected
		} else if pressured {
			c.bucket = bucketPressure
		} else {
			c.reason = "unexpected-miss"
		}
	case ExpectMiss:
		if detected {
			c.reason = "unexpected-detect"
			if c.hasKind {
				c.detail = fmt.Sprintf("reported %v", c.kind)
			}
		} else {
			c.bucket = bucketMissDoc
		}
	default: // ExpectMaybe
		if detected {
			c.bucket = bucketDetectedProb
		} else if pressured {
			c.bucket = bucketPressure
		} else {
			c.bucket = bucketMissProb
		}
	}
	return c
}

// caseOut is one case's raw fan-out result, produced by workers and
// absorbed into the report in case order.
type caseOut struct {
	oracle  Oracle
	cells   []cell
	genErr  string
	theCase *Case
}

// progressEvery is the Progress callback stride in cases.
const progressEvery = 100

// defaultFuzzCheckpointEvery is the snapshot chunk size in cases.
const defaultFuzzCheckpointEvery = 500

// Campaign generates cfg.Count cases, fans each across every sanitizer,
// classifies every cell against the oracle and returns the deterministic
// report. Findings within the minimization cap are shrunk to minimal
// reproducers.
//
// With CheckpointPath set the campaign runs in chunks, absorbing each
// chunk into the running report (and the case-digest chain) and writing a
// durable snapshot between chunks; with Resume set it restores a snapshot
// first and continues from its cursor. Chunking, checkpointing and
// resuming never change the report: aggregation happens in case order
// either way, and the final minimization pass regenerates cases from
// their seeds, which is exactly how they were produced.
func (r *Runner) Campaign() (*Report, error) {
	n := r.cfg.Count
	rep := &Report{Seed: r.cfg.Seed, FaultSeed: r.cfg.FaultSeed, Hardened: r.cfg.Hardened, Count: n, Shapes: map[string]int{}}
	for _, tool := range r.tools {
		rep.Tools = append(rep.Tools, ToolReport{Tool: string(tool)})
	}
	chain := sha256.New()
	start := 0
	if ck := r.cfg.Resume; ck != nil {
		if err := r.restoreCampaign(rep, chain, ck); err != nil {
			return nil, err
		}
		start = ck.NextCase
	}

	every := r.cfg.CheckpointEvery
	if every <= 0 {
		every = defaultFuzzCheckpointEvery
	}
	if r.cfg.CheckpointPath == "" {
		// No checkpointing: one chunk, the pre-checkpoint behaviour.
		every = n - start
		if every < 1 {
			every = 1
		}
	}

	var done atomic.Int64
	done.Store(int64(start))
	for lo := start; lo < n; lo += every {
		hi := lo + every
		if hi > n {
			hi = n
		}
		outs := make([]caseOut, hi-lo)
		err := r.engines[0].ForEach(hi-lo, func(j int) error {
			i := lo + j
			c := Generate(caseSeed(r.cfg.Seed, i))
			outs[j].oracle = c.Oracle
			outs[j].theCase = c
			p, err := csrc.Compile(c.Source)
			if err != nil {
				outs[j].genErr = err.Error()
			} else {
				outs[j].cells = make([]cell, len(r.tools))
				for ti, tool := range r.tools {
					res, rerr := r.engines[ti].Run(p, c.Inputs...)
					if rerr != nil {
						outs[j].cells[ti] = cell{reason: "error", detail: rerr.Error(), outcome: harness.OutcomeError}
						continue
					}
					outs[j].cells[ti] = classify(tool, &c.Oracle, res, r.faultMode)
				}
			}
			if d := int(done.Add(1)); r.cfg.Progress != nil && (d%progressEvery == 0 || d == n) {
				r.cfg.Progress(d, n)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Deterministic aggregation in case order, then tool order.
		for j := range outs {
			r.absorb(rep, chain, lo+j, &outs[j])
		}
		if r.cfg.CheckpointPath != "" && hi < n {
			ck, err := r.captureCampaign(rep, chain, hi)
			if err == nil {
				err = checkpoint.Save(r.cfg.CheckpointPath, checkpoint.KindFuzz, ck)
			}
			if err != nil {
				return nil, fmt.Errorf("fuzz: checkpoint: %w", err)
			}
		}
	}
	rep.CaseDigest = hex.EncodeToString(chain.Sum(nil))

	// Minimization regenerates each finding's case from its seed — pure in
	// (campaign seed, case index), so it works identically for findings
	// carried over from a snapshot.
	r.minimizeFindings(rep, func(i int) *Case { return Generate(caseSeed(r.cfg.Seed, i)) })
	return rep, nil
}

// absorb folds one completed case into the running report and the case
// digest chain. Must be called in case order.
func (r *Runner) absorb(rep *Report, chain hash.Hash, i int, o *caseOut) {
	fmt.Fprintf(chain, "%d|%d|%s|%s\n", i, o.theCase.Seed, shapeLabel(&o.oracle), o.genErr)
	if o.oracle.Injected {
		rep.Injected++
		rep.Shapes[o.oracle.Shape]++
	} else {
		rep.CleanN++
	}
	if o.genErr != "" {
		rep.Findings = append(rep.Findings, Finding{
			Tool: "-", Seed: o.theCase.Seed, Shape: shapeLabel(&o.oracle),
			Reason: "compile-error", Detail: o.genErr,
			Outcome: "error", Source: o.theCase.Source, caseIdx: i,
		})
		return
	}
	for ti := range r.tools {
		cl := &o.cells[ti]
		tr := &rep.Tools[ti]
		fmt.Fprintf(chain, "%s|%s|%s|%s\n", r.tools[ti], cl.bucket, cl.reason, cl.faultClass)
		if cl.faultClass != "" {
			tr.Faults++
			rep.HarnessFaults++
			rep.FaultCases = append(rep.FaultCases, FaultCase{
				Tool: string(r.tools[ti]), Seed: o.theCase.Seed,
				Shape: shapeLabel(&o.oracle), Class: cl.faultClass,
			})
			continue
		}
		switch cl.bucket {
		case bucketDetected:
			tr.Detected++
		case bucketMissDoc:
			tr.MissDoc++
		case bucketDetectedProb:
			tr.DetectedProb++
		case bucketMissProb:
			tr.MissProb++
		case bucketClean:
			tr.Clean++
		case bucketPressure:
			tr.Pressure++
		default:
			tr.Findings++
			f := Finding{
				Tool: string(r.tools[ti]), Seed: o.theCase.Seed,
				Shape: shapeLabel(&o.oracle), Reason: cl.reason,
				Detail: cl.detail, Expect: cl.expect.String(),
				Outcome: outcomeName(cl.outcome),
				Source:  o.theCase.Source,
				caseIdx: i, toolIdx: ti,
			}
			if cl.hasKind {
				f.Kind = cl.kind.String()
			}
			if r.tools[ti] == sanitizers.CECSan && o.oracle.Injected {
				f.WantKind = o.oracle.KindName()
			}
			rep.Findings = append(rep.Findings, f)
		}
	}
}

func shapeLabel(o *Oracle) string {
	if !o.Injected {
		return "clean"
	}
	return o.Shape
}

// minimizeFindings shrinks up to MinimizeCap findings (in deterministic
// report order) to minimal reproducers. The keep-predicate re-runs the
// shrunk candidate on the finding's own engine and demands the same
// (reason, tool) disagreement.
func (r *Runner) minimizeFindings(rep *Report, caseAt func(i int) *Case) {
	sort.SliceStable(rep.Findings, func(a, b int) bool {
		fa, fb := &rep.Findings[a], &rep.Findings[b]
		if fa.caseIdx != fb.caseIdx {
			return fa.caseIdx < fb.caseIdx
		}
		return fa.toolIdx < fb.toolIdx
	})
	budget := r.cfg.MinimizeCap
	for fi := range rep.Findings {
		if budget == 0 {
			break
		}
		f := &rep.Findings[fi]
		if f.Reason == "compile-error" || f.Reason == "error" {
			continue // already minimal / not execution-reproducible
		}
		budget--
		c := caseAt(f.caseIdx)
		min := Minimize(c, func(cand *Case) bool {
			return r.reproduces(cand, f)
		})
		if min != nil {
			f.Source = min.Source
			f.Minimized = true
		}
	}
}

// reproduces reruns a candidate on the finding's tool and reports whether
// the same disagreement reason shows up.
func (r *Runner) reproduces(cand *Case, f *Finding) bool {
	p, err := csrc.Compile(cand.Source)
	if err != nil {
		return false
	}
	res, rerr := r.engines[f.toolIdx].Run(p, cand.Inputs...)
	if rerr != nil {
		return false
	}
	cl := classify(r.tools[f.toolIdx], &cand.Oracle, res, r.faultMode)
	return cl.bucket == "" && cl.faultClass == "" && cl.reason == f.Reason
}

// RunOne generates the case for one seed, fans it across every sanitizer
// and returns any findings (unminimized). This is the Go-native fuzz
// target's entry point; Campaign is the batch equivalent.
func (r *Runner) RunOne(seed uint64) []Finding {
	c := Generate(seed)
	p, err := csrc.Compile(c.Source)
	if err != nil {
		return []Finding{{Tool: "-", Seed: seed, Shape: shapeLabel(&c.Oracle),
			Reason: "compile-error", Detail: err.Error(), Outcome: "error", Source: c.Source}}
	}
	var findings []Finding
	for ti, tool := range r.tools {
		res, rerr := r.engines[ti].Run(p, c.Inputs...)
		var cl cell
		if rerr != nil {
			cl = cell{reason: "error", detail: rerr.Error(), outcome: harness.OutcomeError}
		} else {
			cl = classify(tool, &c.Oracle, res, r.faultMode)
		}
		if cl.faultClass != "" {
			// The batch path reports these separately as harness faults; the
			// Go-native fuzz target has only findings to surface them with.
			findings = append(findings, Finding{
				Tool: string(tool), Seed: seed, Shape: shapeLabel(&c.Oracle),
				Reason: "harness-fault", Detail: cl.faultClass,
				Outcome: outcomeName(cl.outcome), Source: c.Source, toolIdx: ti,
			})
			continue
		}
		if cl.bucket != "" {
			continue
		}
		f := Finding{
			Tool: string(tool), Seed: seed, Shape: shapeLabel(&c.Oracle),
			Reason: cl.reason, Detail: cl.detail, Expect: cl.expect.String(),
			Outcome: outcomeName(cl.outcome), Source: c.Source, toolIdx: ti,
		}
		if cl.hasKind {
			f.Kind = cl.kind.String()
		}
		findings = append(findings, f)
	}
	return findings
}

// Stats exposes the per-tool engine counters for the bench record.
func (r *Runner) Stats() map[string]engine.Stats {
	m := make(map[string]engine.Stats, len(r.tools))
	for i, tool := range r.tools {
		m[string(tool)] = r.engines[i].Stats()
	}
	return m
}

// Tools returns the registry order the runner fans across.
func (r *Runner) Tools() []sanitizers.Name { return r.tools }
