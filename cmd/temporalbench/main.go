// Command temporalbench quantifies the cost of the temporal-hardening modes:
// it runs a fixed workload set under CECSan four times — baseline, generation
// stamping only, address quarantine only, and both — and records the wall-time
// and RSS-model deltas against the baseline, plus the degradation counters
// (generation wraps, index spills, quarantine evictions/flushes), into
// BENCH_temporal.json. The record is the quantified trade-off behind the
// hardened profiles' defaults.
//
// Usage:
//
//	temporalbench [-reps 3] [-churn 1500] [-json BENCH_temporal.json]
//
// The set is the specsim smoke workloads (a realistic operation mix) plus two
// synthetic allocation-churn programs that maximize free-structure and
// quarantine traffic — the worst case for both mitigations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cecsan/csrc"
	"cecsan/internal/cliutil"
	"cecsan/internal/core"
	"cecsan/internal/engine"
	"cecsan/internal/sanitizers"
	"cecsan/internal/specsim"
	"cecsan/prog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "temporalbench:", err)
		os.Exit(1)
	}
}

// workloadJSON is one (mode, workload) measurement.
type workloadJSON struct {
	Name         string  `json:"name"`
	WallSeconds  float64 `json:"wall_seconds"`
	PeakRSS      int64   `json:"peak_rss"`
	PeakOverhead int64   `json:"peak_overhead"`
	WallPct      float64 `json:"wall_pct"` // overhead vs baseline, percent
	RSSPct       float64 `json:"rss_pct"`

	GenWraps    int64 `json:"gen_wraps,omitempty"`
	IndexSpills int64 `json:"index_spills,omitempty"`
	QuarEvicts  int64 `json:"quarantine_evictions,omitempty"`
	QuarFlushes int64 `json:"quarantine_flushes,omitempty"`
}

// modeJSON is one hardening configuration's column.
type modeJSON struct {
	Name            string         `json:"name"`
	GenerationBits  uint           `json:"generation_bits"`
	IndexDelay      int            `json:"index_delay"`
	QuarantineBytes int64          `json:"quarantine_bytes"`
	AvgWallPct      float64        `json:"avg_wall_pct"`
	AvgRSSPct       float64        `json:"avg_rss_pct"`
	Workloads       []workloadJSON `json:"workloads"`
}

type benchJSON struct {
	Bench string     `json:"bench"`
	Reps  int        `json:"reps"`
	Churn int        `json:"churn"`
	Modes []modeJSON `json:"modes"`
}

// churnSource renders an unrolled allocation-churn program: a sliding window
// of `window` live chunks of `size` bytes over `n` allocations, every store
// checked. This is the free-structure's worst case — each free enters the
// delayed-reuse FIFO and the quarantine, and each allocation pops them.
func churnSource(n, window, size int) string {
	var b strings.Builder
	b.WriteString("func main() {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    var p%d = malloc(%d);\n    p%d[0] = %d;\n", i, size, i, i%100)
		if i >= window {
			fmt.Fprintf(&b, "    free(p%d);\n", i-window)
		}
	}
	for i := n - window; i < n; i++ {
		fmt.Fprintf(&b, "    free(p%d);\n", i)
	}
	b.WriteString("    return 0;\n}\n")
	return b.String()
}

// measurement is the best-of-reps result for one (mode, workload) cell.
type measurement struct {
	wall  time.Duration
	stats workloadJSON
}

func run() error {
	reps := flag.Int("reps", 3, "repetitions per measurement (best-of)")
	churn := flag.Int("churn", 1500, "allocations in each synthetic churn workload")
	jsonPath := flag.String("json", "BENCH_temporal.json", "machine-readable record path")
	obsFlags := cliutil.ObsFlagsCmd()
	flag.Parse()

	o, srv, err := obsFlags.Build()
	if err != nil {
		return err
	}

	type workload struct {
		name  string
		build func() (*prog.Program, error)
	}
	var workloads []workload
	small, err := csrc.Compile(churnSource(*churn, 32, 64))
	if err != nil {
		return fmt.Errorf("churn-small: %w", err)
	}
	large, err := csrc.Compile(churnSource(*churn/4, 16, 4096))
	if err != nil {
		return fmt.Errorf("churn-large: %w", err)
	}
	workloads = append(workloads,
		workload{"churn-small", func() (*prog.Program, error) { return small, nil }},
		workload{"churn-large", func() (*prog.Program, error) { return large, nil }},
	)
	for _, w := range specsim.Smoke() {
		build := w.Build
		workloads = append(workloads, workload{w.Name, func() (*prog.Program, error) { return build(), nil }})
	}

	genOnly := core.DefaultOptions()
	genOnly.TemporalGenerations = true
	quarOnly := core.DefaultOptions()
	quarOnly.QuarantineBytes = core.DefaultQuarantineBytes
	modes := []struct {
		name string
		opts core.Options
	}{
		{"baseline", core.DefaultOptions()},
		{"generations", genOnly},
		{"quarantine", quarOnly},
		{"hardened", core.HardenedOptions()},
	}

	rec := benchJSON{Bench: "temporal", Reps: *reps, Churn: *churn}
	baseline := map[string]measurement{}
	for _, mode := range modes {
		opts := mode.opts
		eng, err := engine.New(sanitizers.CECSan, engine.Options{RuntimeSeed: 1, CECSan: &opts, Obs: o})
		if err != nil {
			return err
		}
		mj := modeJSON{
			Name:            mode.name,
			QuarantineBytes: opts.QuarantineBytes,
		}
		if opts.TemporalGenerations {
			mj.GenerationBits = core.DefaultGenerationBits
			mj.IndexDelay = core.DefaultIndexDelay
		}
		var sumWall, sumRSS float64
		for _, w := range workloads {
			p, err := w.build()
			if err != nil {
				return fmt.Errorf("%s: %w", w.name, err)
			}
			var best measurement
			for rep := 0; rep < *reps; rep++ {
				start := time.Now()
				res, rerr := eng.Run(p)
				wall := time.Since(start)
				if rerr != nil {
					return fmt.Errorf("%s under %s: %w", w.name, mode.name, rerr)
				}
				if res.Violation != nil || res.Err != nil {
					return fmt.Errorf("%s under %s: unexpected outcome (violation=%v err=%v)",
						w.name, mode.name, res.Violation, res.Err)
				}
				if rep == 0 || wall < best.wall {
					best = measurement{wall: wall, stats: workloadJSON{
						Name:         w.name,
						WallSeconds:  wall.Seconds(),
						PeakRSS:      res.Stats.PeakRSS,
						PeakOverhead: res.Stats.PeakOverheadBytes,
						GenWraps:     res.Stats.GenerationWraps,
						IndexSpills:  res.Stats.IndexSpills,
						QuarEvicts:   res.Stats.QuarantineEvictions,
						QuarFlushes:  res.Stats.QuarantineFlushes,
					}}
				}
			}
			if mode.name == "baseline" {
				baseline[w.name] = best
			} else if base, ok := baseline[w.name]; ok {
				best.stats.WallPct = pct(best.wall.Seconds(), base.wall.Seconds())
				best.stats.RSSPct = pct(float64(best.stats.PeakRSS), float64(base.stats.PeakRSS))
			}
			sumWall += best.stats.WallPct
			sumRSS += best.stats.RSSPct
			mj.Workloads = append(mj.Workloads, best.stats)
		}
		mj.AvgWallPct = sumWall / float64(len(workloads))
		mj.AvgRSSPct = sumRSS / float64(len(workloads))
		rec.Modes = append(rec.Modes, mj)
		fmt.Printf("%-12s avg wall %+6.1f%%  avg rss %+6.1f%%\n", mode.name, mj.AvgWallPct, mj.AvgRSSPct)
	}

	if *jsonPath != "" {
		if err := cliutil.WriteJSON(*jsonPath, rec); err != nil {
			return err
		}
	}
	return obsFlags.Finish(o, srv, 0)
}

// pct is the percent overhead of v over base (0 when base is 0).
func pct(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (v/base - 1) * 100
}
