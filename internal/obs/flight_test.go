package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDeriveTraceIDDeterministic(t *testing.T) {
	a := DeriveTraceID(42, 7)
	b := DeriveTraceID(42, 7)
	if a != b {
		t.Fatalf("same (seed, index) produced %s and %s", a, b)
	}
	if DeriveTraceID(42, 8) == a || DeriveTraceID(43, 7) == a {
		t.Fatal("different seed or index must produce a different trace ID")
	}
	if len(a.String()) != 16 {
		t.Fatalf("trace ID %q is not 16 hex chars", a.String())
	}
}

// finish runs one synthetic trace through the recorder.
func finish(f *FlightRecorder, seed, idx uint64, outcome string, mut func(*RequestTrace)) {
	tr := NewRequestTrace(seed, idx, "c")
	if mut != nil {
		mut(tr)
	}
	f.Finish(tr, outcome)
}

func TestFlightRetention(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Budget: 64, SampleN: 4})
	finish(f, 1, 0, OutcomeFault, nil)
	finish(f, 1, 1, OutcomeRejected, nil)
	finish(f, 1, 2, OutcomeShedQueue, nil)
	finish(f, 1, 3, OutcomeAbandoned, nil)
	finish(f, 1, 4, OutcomeClean, func(tr *RequestTrace) { tr.Retried = true })
	finish(f, 1, 5, OutcomeClean, func(tr *RequestTrace) { tr.DeadlineMiss = true })
	sum := f.Summary()
	if sum.Interesting != 6 {
		t.Fatalf("interesting = %d, want 6 (fault, rejected, shed, abandoned, retried, deadline-missed)", sum.Interesting)
	}
	if sum.Faulted != 1 || sum.Rejected != 1 || sum.Shed != 1 || sum.Abandoned != 1 || sum.Retried != 1 || sum.DeadlineMissed != 1 {
		t.Fatalf("category counts wrong: %+v", sum)
	}
}

func TestFlightDeterministicOnlyExcludesDeadlineMiss(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Budget: 64, SampleN: 1 << 20})
	f.SetDeterministicOnly(true)
	// A deadline miss is wall-clock-dependent: in deterministic-only mode it
	// must not, by itself, make a trace interesting.
	finish(f, 1, 5, OutcomeClean, func(tr *RequestTrace) { tr.DeadlineMiss = true })
	finish(f, 1, 6, OutcomeFault, nil)
	sum := f.Summary()
	if sum.Interesting != 1 || sum.Faulted != 1 {
		t.Fatalf("deterministic-only retained %d interesting (want only the fault): %+v", sum.Interesting, sum)
	}
}

func TestFlightHealthySampling(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Budget: 4096, SampleN: 4})
	const n = 1000
	for i := uint64(0); i < n; i++ {
		finish(f, 9, i, OutcomeClean, nil)
	}
	sum := f.Summary()
	if sum.Interesting != 0 {
		t.Fatalf("clean traces retained as interesting: %+v", sum)
	}
	// The sample is keyed on the trace ID (uniform under splitmix64), so
	// roughly 1/4 of 1000 traces land in the sampled ring.
	if sum.SampledHealthy < n/8 || sum.SampledHealthy > n/2 {
		t.Fatalf("sampled %d of %d healthy traces, want ~%d", sum.SampledHealthy, n, n/4)
	}
	// The sampled set is a pure function of the IDs: a second recorder over
	// the same traces retains the identical set.
	g := NewFlightRecorder(FlightConfig{Budget: 4096, SampleN: 4})
	for i := uint64(0); i < n; i++ {
		finish(g, 9, i, OutcomeClean, nil)
	}
	a, b := f.Records(), g.Records()
	if len(a) != len(b) {
		t.Fatalf("retained %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i].TraceID != b[i].TraceID {
			t.Fatalf("record %d: %s vs %s", i, a[i].TraceID, b[i].TraceID)
		}
	}
}

func TestFlightEviction(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Budget: 8, SampleN: 1}) // caps: 2 sampled, 6 interesting
	for i := uint64(0); i < 10; i++ {
		finish(f, 3, i, OutcomeFault, nil)
	}
	for i := uint64(100); i < 110; i++ {
		finish(f, 3, i, OutcomeClean, nil)
	}
	sum := f.Summary()
	if sum.Retained > 8 {
		t.Fatalf("retained %d traces over budget 8", sum.Retained)
	}
	if sum.EvictedInteresting != 4 {
		t.Fatalf("evicted_interesting = %d, want 4 (10 faults into 6 slots)", sum.EvictedInteresting)
	}
	if sum.EvictedSampled != 8 {
		t.Fatalf("evicted_sampled = %d, want 8 (10 healthy at SampleN=1 into 2 slots)", sum.EvictedSampled)
	}
	// Healthy pressure never evicts interesting traces: the rings are
	// separate.
	if sum.Interesting != 6 {
		t.Fatalf("interesting ring holds %d, want its full cap 6", sum.Interesting)
	}
}

func TestFlightExportImportRoundtrip(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Budget: 64, SampleN: 2})
	f.SetDeterministicOnly(true)
	finish(f, 5, 0, OutcomeFault, nil)
	finish(f, 5, 1, OutcomeClean, nil)
	finish(f, 5, 2, OutcomeClean, nil)
	st := f.Export()

	g := NewFlightRecorder(FlightConfig{Budget: 64, SampleN: 2})
	if err := g.Import(&st); err != nil {
		t.Fatal(err)
	}
	a, b := f.Records(), g.Records()
	if len(a) != len(b) {
		t.Fatalf("roundtrip retained %d records, want %d", len(b), len(a))
	}
	sa, sb := f.Summary(), g.Summary()
	if sa != sb {
		t.Fatalf("summaries diverge after roundtrip:\n%+v\n%+v", sa, sb)
	}

	mismatched := NewFlightRecorder(FlightConfig{Budget: 32, SampleN: 2})
	if err := mismatched.Import(&st); err == nil {
		t.Fatal("importing into a recorder with a different budget must fail")
	}
}

func TestFlightFromState(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Budget: 16, SampleN: 1 << 20})
	finish(f, 5, 3, OutcomeFault, nil)
	st := f.Export()
	g := FlightFromState(&st)
	recs := g.Records()
	if len(recs) != 1 || recs[0].Outcome != OutcomeFault {
		t.Fatalf("reconstructed recorder holds %+v", recs)
	}
}

func TestFlightWriteJSONLines(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Budget: 16, SampleN: 1 << 20})
	finish(f, 5, 3, OutcomeFault, func(tr *RequestTrace) {
		tr.Add("attempt").Detail = "full"
	})
	var b strings.Builder
	if err := f.WriteJSONLines(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1:\n%s", len(lines), b.String())
	}
	var rec TraceRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
	if rec.TraceID != DeriveTraceID(5, 3).String() || rec.Outcome != OutcomeFault {
		t.Fatalf("record %+v", rec)
	}
}

func TestFlightWriteChromeTrace(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Budget: 16, SampleN: 1 << 20})
	finish(f, 5, 3, OutcomeFault, func(tr *RequestTrace) {
		ev := tr.Add("run")
		ev.DurUS = 12
	})
	var b strings.Builder
	if err := f.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, b.String())
	}
	var haveSpan, haveInstant bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			haveSpan = true
		case "i":
			haveInstant = true
		}
	}
	if !haveSpan || !haveInstant {
		t.Fatalf("chrome trace must mix complete (X) and instant (i) events:\n%s", b.String())
	}
}
