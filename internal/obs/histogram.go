package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of log2 buckets: bucket i holds observations v
// with bits.Len64(v) == i, i.e. the half-open range [2^(i-1), 2^i). 64
// buckets cover every non-negative int64.
const histBuckets = 65

// Histogram is a fixed-layout log2-bucketed histogram. Observe is a pair of
// atomic adds — no locks, no allocation — so it is safe on the interpreter
// hot path. Values are whatever unit the caller picks (the engine records
// microseconds and check counts); negatives clamp to bucket 0.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an estimate of the q-quantile (0 < q <= 1) of the
// observed values, interpolating linearly inside the log2 bucket that
// holds the rank. With ~2x-wide buckets the estimate is coarse but
// monotone and cheap — good enough for p50/p95/p99 latency gauges.
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	count, _, bs := h.snapshot()
	if count == 0 || len(bs) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range bs {
		if seen+b.Count < rank {
			seen += b.Count
			continue
		}
		// The rank lands in this bucket: interpolate between the bucket's
		// lower bound (half its upper bound, by the log2 layout) and Le.
		lo := b.Le / 2
		frac := float64(rank-seen) / float64(b.Count)
		return lo + int64(frac*float64(b.Le-lo))
	}
	return bs[len(bs)-1].Le
}

// HistogramState is a Histogram's full serializable contents, used by the
// campaign checkpoint layer to carry latency distributions across a crash
// and resume. Buckets holds every raw log2 bucket, empty ones included, so
// Import is a plain positional copy.
type HistogramState struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Buckets []int64 `json:"buckets"`
}

// Export captures the histogram's current state. Safe for concurrent
// Observe calls, but only a quiescent capture (no writers in flight) is
// guaranteed internally consistent — the checkpoint barrier provides that.
func (h *Histogram) Export() HistogramState {
	st := HistogramState{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]int64, histBuckets),
	}
	for i := range h.buckets {
		st.Buckets[i] = h.buckets[i].Load()
	}
	return st
}

// Import overwrites the histogram with previously exported state. It
// rejects state with more buckets than this layout holds (a layout change
// without a checkpoint version bump); shorter state loads positionally.
func (h *Histogram) Import(st HistogramState) error {
	if len(st.Buckets) > histBuckets {
		return fmt.Errorf("obs: histogram state has %d buckets, layout holds %d", len(st.Buckets), histBuckets)
	}
	h.count.Store(st.Count)
	h.sum.Store(st.Sum)
	for i := range h.buckets {
		var v int64
		if i < len(st.Buckets) {
			v = st.Buckets[i]
		}
		h.buckets[i].Store(v)
	}
	return nil
}

// snapshot returns count, sum, and the non-empty buckets in ascending
// upper-bound order. The top bucket's bound saturates at MaxInt64.
func (h *Histogram) snapshot() (count, sum int64, bs []Bucket) {
	count = h.count.Load()
	sum = h.sum.Load()
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(math.MaxInt64)
		if i < 63 {
			le = (int64(1) << uint(i)) - 1
		}
		bs = append(bs, Bucket{Le: le, Count: n})
	}
	return count, sum, bs
}
