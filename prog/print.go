package prog

import (
	"fmt"
	"strings"
)

// opNames maps opcodes to their mnemonic.
var opNames = [...]string{
	OpInvalid:       "invalid",
	OpConst:         "const",
	OpMov:           "mov",
	OpBin:           "bin",
	OpCmp:           "cmp",
	OpBr:            "br",
	OpCondBr:        "condbr",
	OpAlloca:        "alloca",
	OpMalloc:        "malloc",
	OpFree:          "free",
	OpLoad:          "load",
	OpStore:         "store",
	OpGEP:           "gep",
	OpGlobalAddr:    "globaladdr",
	OpCall:          "call",
	OpCallExternal:  "callext",
	OpLibc:          "libc",
	OpParFor:        "parfor",
	OpRet:           "ret",
	OpCheckAccess:   "check",
	OpCheckPeriodic: "checkperiodic",
	OpSubPtr:        "subptr",
	OpSubRelease:    "subrelease",
	OpStripPtr:      "strip",
	OpRetagPtr:      "retag",
	OpPtrMetaCopy:   "pmcopy",
	OpPtrMetaLoad:   "pmload",
	OpPtrMetaStore:  "pmstore",
}

var binNames = map[BinOp]string{
	BinAdd: "add", BinSub: "sub", BinMul: "mul", BinDiv: "div", BinRem: "rem",
	BinAnd: "and", BinOr: "or", BinXor: "xor", BinShl: "shl", BinShr: "shr",
}

var predNames = map[CmpPred]string{
	CmpEq: "eq", CmpNe: "ne", CmpSLt: "slt", CmpSLe: "sle", CmpSGt: "sgt",
	CmpSGe: "sge", CmpULt: "ult", CmpULe: "ule", CmpUGt: "ugt", CmpUGe: "uge",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// String renders one instruction in a compact assembly-like syntax.
func (i Instr) String() string {
	var b strings.Builder
	if i.Dst != NoReg {
		fmt.Fprintf(&b, "r%d = ", i.Dst)
	}
	switch i.Op {
	case OpConst:
		fmt.Fprintf(&b, "const %d", i.Imm)
	case OpMov:
		fmt.Fprintf(&b, "mov r%d", i.A)
	case OpBin:
		fmt.Fprintf(&b, "%s r%d, r%d", binNames[BinOp(i.X)], i.A, i.B)
	case OpCmp:
		fmt.Fprintf(&b, "cmp.%s r%d, r%d", predNames[CmpPred(i.X)], i.A, i.B)
	case OpBr:
		fmt.Fprintf(&b, "br @%d", i.Imm)
	case OpCondBr:
		fmt.Fprintf(&b, "if r%d goto @%d", i.A, i.Imm)
	case OpAlloca:
		fmt.Fprintf(&b, "alloca %s (%d bytes)", i.Type, i.Size)
	case OpMalloc:
		if i.A != NoReg {
			fmt.Fprintf(&b, "malloc r%d", i.A)
		} else {
			fmt.Fprintf(&b, "malloc %d", i.Size)
		}
	case OpFree:
		fmt.Fprintf(&b, "free r%d", i.A)
	case OpLoad:
		fmt.Fprintf(&b, "load%d [r%d+%d]", i.Size, i.A, i.Off)
	case OpStore:
		fmt.Fprintf(&b, "store%d [r%d+%d], r%d", i.Size, i.A, i.Off, i.B)
	case OpGEP:
		if i.B != NoReg {
			fmt.Fprintf(&b, "gep r%d + %d + r%d*%d", i.A, i.Off, i.B, i.Imm)
		} else {
			fmt.Fprintf(&b, "gep r%d + %d", i.A, i.Off)
		}
		if i.Sym != "" {
			fmt.Fprintf(&b, " ; .%s", i.Sym)
		}
	case OpGlobalAddr:
		fmt.Fprintf(&b, "globaladdr %s", i.Sym)
	case OpCall, OpCallExternal, OpLibc:
		fmt.Fprintf(&b, "%s %s(", i.Op, i.Sym)
		for n, a := range i.Args {
			if n > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "r%d", a)
		}
		b.WriteString(")")
	case OpParFor:
		fmt.Fprintf(&b, "parfor %s [r%d, r%d) x%d", i.Sym, i.A, i.B, i.Imm)
	case OpRet:
		if i.A != NoReg {
			fmt.Fprintf(&b, "ret r%d", i.A)
		} else {
			b.WriteString("ret")
		}
	case OpCheckAccess:
		kind := "r"
		if i.Has(FlagWrite) {
			kind = "w"
		}
		if i.B != NoReg {
			fmt.Fprintf(&b, "check.%s [r%d+%d, +r%d)", kind, i.A, i.Off, i.B)
		} else {
			fmt.Fprintf(&b, "check.%s [r%d+%d, +%d)", kind, i.A, i.Off, i.Size)
		}
	case OpCheckPeriodic:
		kind := "r"
		if i.Has(FlagWrite) {
			kind = "w"
		}
		fmt.Fprintf(&b, "checkperiodic.%s ptr=r%d iv=r%d lim=r%d start=%d mod=%d step=%d elem=%d",
			kind, i.Args[0], i.Args[1], i.Args[2], i.Imm, i.Off, i.X, i.Size)
	case OpSubPtr:
		fmt.Fprintf(&b, "subptr r%d [%d, +%d)", i.A, i.Off, i.Size)
	case OpSubRelease:
		fmt.Fprintf(&b, "subrelease r%d", i.A)
	case OpStripPtr:
		fmt.Fprintf(&b, "strip r%d", i.A)
	case OpRetagPtr:
		fmt.Fprintf(&b, "retag r%d with r%d", i.A, i.B)
	case OpPtrMetaCopy:
		fmt.Fprintf(&b, "pmcopy r%d", i.A)
	case OpPtrMetaLoad:
		fmt.Fprintf(&b, "pmload [r%d+%d]", i.A, i.Off)
	case OpPtrMetaStore:
		fmt.Fprintf(&b, "pmstore [r%d+%d], r%d", i.A, i.Off, i.B)
	default:
		fmt.Fprintf(&b, "%s", i.Op)
	}
	if i.Flags&FlagStaticSafe != 0 {
		b.WriteString(" !safe")
	}
	if i.Flags&FlagSubObject != 0 {
		b.WriteString(" !sub")
	}
	if i.Flags&FlagTracked != 0 {
		b.WriteString(" !tracked")
	}
	return b.String()
}

// Dump renders a function as annotated assembly for debugging.
func (f *Func) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(%d params, %d regs):\n", f.Name, f.NumParams, f.NumRegs)
	for pc, in := range f.Code {
		fmt.Fprintf(&b, "  @%-4d %s\n", pc, in.String())
	}
	for li, l := range f.Loops {
		fmt.Fprintf(&b, "  ; loop %d: head[%d,%d) body[%d,%d) latch..%d iv=r%d start=%s limit=%s step=%d\n",
			li, l.HeadStart, l.HeadEnd, l.BodyStart, l.BodyEnd, l.LatchEnd, l.IndVar, l.Start, l.Limit, l.Step)
	}
	return b.String()
}

// Dump renders the whole program.
func (p *Program) Dump() string {
	var b strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "global %s %s", g.Name, g.Type)
		if g.AddressTaken {
			b.WriteString(" !addrtaken")
		}
		b.WriteString("\n")
	}
	for _, name := range p.Order {
		b.WriteString(p.Funcs[name].Dump())
	}
	return b.String()
}
