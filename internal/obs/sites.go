package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// SiteKey identifies one static check site under one sanitizer: the function
// containing the check opcode, the opcode's program counter within that
// function, and the tool whose runtime executed it.
type SiteKey struct {
	Tool string
	Func string
	PC   int
}

// SiteStat is the accumulated profile of one check site.
type SiteStat struct {
	Key   SiteKey
	Fires int64         // number of times the check executed
	Bytes int64         // total bytes the checks covered
	Cost  time.Duration // cumulative wall time spent inside the checks
}

// SiteProfiler accumulates per-(sanitizer, check site) fire counts and
// cumulative cost. Sites are created on first fire under a mutex; subsequent
// fires on the same site update its stat under the same mutex — check
// profiling is explicitly opt-in (-profile-checks) and its overhead is
// accepted, unlike Registry recording which stays lock-free.
type SiteProfiler struct {
	mu    sync.Mutex
	stats map[SiteKey]*SiteStat
}

// NewSiteProfiler returns an empty profiler.
func NewSiteProfiler() *SiteProfiler {
	return &SiteProfiler{stats: make(map[SiteKey]*SiteStat)}
}

// ToolSites is a SiteProfiler view bound to one sanitizer. It satisfies the
// interpreter's CheckObserver interface structurally, keeping internal/interp
// free of an obs import.
type ToolSites struct {
	p    *SiteProfiler
	tool string
}

// ForTool returns the profiler view for one sanitizer. Returns nil when the
// profiler itself is nil, so callers can pass it through unconditionally.
func (p *SiteProfiler) ForTool(tool string) *ToolSites {
	if p == nil {
		return nil
	}
	return &ToolSites{p: p, tool: tool}
}

// ObserveCheck records one executed check at (fn, pc) covering bytes and
// costing dur of wall time.
func (t *ToolSites) ObserveCheck(fn string, pc int, bytes int64, dur time.Duration) {
	key := SiteKey{Tool: t.tool, Func: fn, PC: pc}
	t.p.mu.Lock()
	s, ok := t.p.stats[key]
	if !ok {
		s = &SiteStat{Key: key}
		t.p.stats[key] = s
	}
	s.Fires++
	s.Bytes += bytes
	s.Cost += dur
	t.p.mu.Unlock()
}

// Sites returns every site's stat, sorted by cumulative cost descending
// (ties broken by fires, then key) so the hottest sites come first.
func (p *SiteProfiler) Sites() []SiteStat {
	p.mu.Lock()
	out := make([]SiteStat, 0, len(p.stats))
	for _, s := range p.stats {
		out = append(out, *s)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		if out[i].Fires != out[j].Fires {
			return out[i].Fires > out[j].Fires
		}
		ki, kj := out[i].Key, out[j].Key
		if ki.Tool != kj.Tool {
			return ki.Tool < kj.Tool
		}
		if ki.Func != kj.Func {
			return ki.Func < kj.Func
		}
		return ki.PC < kj.PC
	})
	return out
}

// TotalFires returns the total number of observed check executions across
// all sites. Comparing it against interp.Stats.ChecksExecuted proves the
// profiler's attribution coverage.
func (p *SiteProfiler) TotalFires() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, s := range p.stats {
		n += s.Fires
	}
	return n
}

// FormatSites writes a top-N hottest-check-sites table. totalChecks, when
// positive, is the denominator for the attribution footer (typically
// interp.Stats.ChecksExecuted); topN <= 0 means all sites.
func (p *SiteProfiler) FormatSites(w io.Writer, topN int, totalChecks int64) {
	sites := p.Sites()
	shown := sites
	if topN > 0 && len(shown) > topN {
		shown = shown[:topN]
	}
	fmt.Fprintf(w, "%-16s %-24s %6s %12s %12s %14s\n", "TOOL", "FUNC", "PC", "FIRES", "BYTES", "COST")
	var fires int64
	for _, s := range sites {
		fires += s.Fires
	}
	for _, s := range shown {
		fmt.Fprintf(w, "%-16s %-24s %6d %12d %12d %14s\n",
			s.Key.Tool, s.Key.Func, s.Key.PC, s.Fires, s.Bytes, s.Cost.Round(time.Microsecond))
	}
	if len(sites) > len(shown) {
		fmt.Fprintf(w, "... %d more sites\n", len(sites)-len(shown))
	}
	if totalChecks > 0 {
		fmt.Fprintf(w, "attributed %d/%d checks (%.1f%%) across %d sites\n",
			fires, totalChecks, 100*float64(fires)/float64(totalChecks), len(sites))
	} else {
		fmt.Fprintf(w, "attributed %d checks across %d sites\n", fires, len(sites))
	}
}
