package faultinject

import (
	"errors"
	"testing"
)

func TestScheduleDeterministic(t *testing.T) {
	for seed := uint64(1); seed < 50; seed++ {
		for key := uint64(0); key < 50; key++ {
			a, b := Schedule(seed, key), Schedule(seed, key)
			if a != b {
				t.Fatalf("Schedule(%d,%d) not deterministic: %+v vs %+v", seed, key, a, b)
			}
		}
	}
}

func TestScheduleSeedZeroDisables(t *testing.T) {
	for key := uint64(0); key < 100; key++ {
		if p := Schedule(0, key); !p.Zero() {
			t.Fatalf("Schedule(0,%d) = %+v, want zero plan", key, p)
		}
	}
}

// Schedule must never set MallocPanicNth: injected panics are a test-only
// device for exercising the engine's recovery path, not a campaign fault.
func TestScheduleNeverPanics(t *testing.T) {
	for seed := uint64(1); seed < 20; seed++ {
		for key := uint64(0); key < 200; key++ {
			if p := Schedule(seed, key); p.MallocPanicNth != 0 {
				t.Fatalf("Schedule(%d,%d) set MallocPanicNth=%d", seed, key, p.MallocPanicNth)
			}
		}
	}
}

// The schedule should hit every plan family so campaigns exercise all three
// pressure paths plus controls.
func TestScheduleCoversFamilies(t *testing.T) {
	var oom, clamp, page, control int
	for key := uint64(0); key < 400; key++ {
		p := Schedule(7, key)
		switch {
		case p.Zero():
			control++
		case p.MetatableCap > 0:
			clamp++
		case p.PageMapFailNth > 0:
			page++
		case p.MallocFailNth > 0:
			oom++
		}
	}
	if oom == 0 || clamp == 0 || page == 0 || control == 0 {
		t.Fatalf("family coverage oom=%d clamp=%d page=%d control=%d: some family never scheduled",
			oom, clamp, page, control)
	}
}

func TestInjectorMallocFailNth(t *testing.T) {
	in := New(Plan{MallocFailNth: 3})
	for i := 1; i <= 5; i++ {
		err := in.OnMalloc()
		if i == 3 {
			if !errors.Is(err, ErrInjectedOOM) {
				t.Fatalf("malloc %d: got %v, want ErrInjectedOOM", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("malloc %d: unexpected error %v", i, err)
		}
	}
	if got := in.Triggered(); got != 1 {
		t.Fatalf("Triggered = %d, want 1", got)
	}
}

func TestInjectorMallocPanicNth(t *testing.T) {
	in := New(Plan{MallocPanicNth: 2})
	if err := in.OnMalloc(); err != nil {
		t.Fatalf("malloc 1: unexpected error %v", err)
	}
	defer func() {
		v := recover()
		if v != PanicValue {
			t.Fatalf("recovered %v, want PanicValue", v)
		}
		if got := in.Triggered(); got != 1 {
			t.Fatalf("Triggered = %d, want 1", got)
		}
	}()
	in.OnMalloc()
	t.Fatal("malloc 2 did not panic")
}

func TestInjectorPageMapFailNth(t *testing.T) {
	in := New(Plan{PageMapFailNth: 4})
	for i := 1; i <= 6; i++ {
		failed := in.OnPageMap()
		if (i == 4) != failed {
			t.Fatalf("page map %d: failed=%v", i, failed)
		}
	}
	if got := in.Triggered(); got != 1 {
		t.Fatalf("Triggered = %d, want 1", got)
	}
}

func TestInjectorMallocFailBurst(t *testing.T) {
	in := New(Plan{MallocFailNth: 2, MallocFailBurst: 3})
	for i := 1; i <= 6; i++ {
		err := in.OnMalloc()
		wantFail := i >= 2 && i <= 4
		if wantFail != errors.Is(err, ErrInjectedOOM) {
			t.Fatalf("malloc %d: err=%v, want failure=%v", i, err, wantFail)
		}
	}
	if got := in.Triggered(); got != 3 {
		t.Fatalf("Triggered = %d, want 3 (one per burst failure)", got)
	}
}

func TestChaosScheduleDeterministic(t *testing.T) {
	for seed := uint64(1); seed < 20; seed++ {
		for idx := uint64(0); idx < 200; idx++ {
			a, b := ChaosSchedule(seed, idx), ChaosSchedule(seed, idx)
			if a != b {
				t.Fatalf("ChaosSchedule(%d,%d) not deterministic: %+v vs %+v", seed, idx, a, b)
			}
		}
	}
}

func TestChaosScheduleSeedZeroDisables(t *testing.T) {
	for idx := uint64(0); idx < 500; idx++ {
		if c := ChaosSchedule(0, idx); !c.Zero() {
			t.Fatalf("ChaosSchedule(0,%d) = %+v, want zero", idx, c)
		}
	}
}

// Calm half-cycles must inject nothing: that is what lets breakers close and
// the degradation ladder recover between storms.
func TestChaosScheduleCalmPhases(t *testing.T) {
	for seed := uint64(1); seed < 5; seed++ {
		for idx := uint64(0); idx < 4*ChaosPhase; idx++ {
			c := ChaosSchedule(seed, idx)
			if idx%(2*ChaosPhase) >= ChaosPhase && !c.Zero() {
				t.Fatalf("seed %d idx %d is in a calm phase but drew %+v", seed, idx, c)
			}
		}
	}
}

// Storm phases should draw every chaos family.
func TestChaosScheduleCoversFamilies(t *testing.T) {
	var panics, ooms, slow, bypass, control int
	for idx := uint64(0); idx < ChaosPhase; idx++ {
		for seed := uint64(1); seed < 6; seed++ {
			c := ChaosSchedule(seed, idx)
			switch {
			case c.Run.MallocPanicNth > 0:
				panics++
			case c.Run.MallocFailNth > 0:
				ooms++
				if c.Run.MallocFailBurst < 1 {
					t.Fatalf("OOM plan without burst width: %+v", c)
				}
			case c.SlowdownUS > 0:
				slow++
			case c.CacheBypass:
				bypass++
			default:
				control++
			}
		}
	}
	if panics == 0 || ooms == 0 || slow == 0 || bypass == 0 || control == 0 {
		t.Fatalf("chaos family coverage panics=%d ooms=%d slow=%d bypass=%d control=%d",
			panics, ooms, slow, bypass, control)
	}
}

func TestInjectorZeroPlanNeverFires(t *testing.T) {
	in := New(Plan{})
	for i := 0; i < 100; i++ {
		if err := in.OnMalloc(); err != nil {
			t.Fatalf("OnMalloc fired on zero plan: %v", err)
		}
		if in.OnPageMap() {
			t.Fatal("OnPageMap fired on zero plan")
		}
	}
	if got := in.Triggered(); got != 0 {
		t.Fatalf("Triggered = %d, want 0", got)
	}
}
