package cecsan

import (
	"fmt"
	"strings"

	"cecsan/internal/tagptr"
)

// FormatReport renders a violation as a multi-line, ASan-flavoured report:
// header, access facts, pointer-tag decomposition and a mechanism hint.
// For reports produced by CECSan machines the metadata-table facts are
// included.
func FormatReport(v *Violation, m *Machine) string {
	if v == nil {
		return "no violation\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "==CECSAN== ERROR: %s\n", v.Kind)
	fmt.Fprintf(&b, "  %s of %d byte(s) at address %#x\n", accessVerb(v), v.Size, v.Addr)
	fmt.Fprintf(&b, "  in function %s, instruction %d\n", v.Func, v.PC)
	fmt.Fprintf(&b, "  object segment: %s\n", v.Seg)

	arch := tagptr.X8664
	idx := arch.Index(v.Ptr)
	fmt.Fprintf(&b, "  pointer %#x = tag %#x | address %#x\n", v.Ptr, idx, arch.Strip(v.Ptr))

	if m != nil {
		if cr := m.CoreRuntime(); cr != nil && idx != 0 && idx <= cr.Table().Capacity()-1 {
			low, high := cr.Table().Load(idx)
			fmt.Fprintf(&b, "  metadata entry %d: low=%#x high=%#x", idx, low, high)
			if high > low {
				fmt.Fprintf(&b, " (object of %d bytes)", high-low)
			}
			b.WriteString("\n")
			if off := int64(v.Addr) - int64(low); high > low {
				fmt.Fprintf(&b, "  faulting address is %+d bytes from the object base\n", off)
			}
		}
	}

	fmt.Fprintf(&b, "  cause: %s\n", v.Detail)
	if hint := hintFor(v); hint != "" {
		fmt.Fprintf(&b, "  hint: %s\n", hint)
	}
	return b.String()
}

// accessVerb phrases the access like ASan's reports do.
func accessVerb(v *Violation) string {
	switch v.Kind {
	case KindOOBRead:
		return "READ"
	case KindOOBWrite, KindSubObjectOverflow:
		return "WRITE"
	case KindUseAfterFree:
		return "access"
	case KindDoubleFree, KindInvalidFree:
		return "free"
	default:
		return "access"
	}
}

// hintFor adds the paper-mechanism explanation for each violation class.
func hintFor(v *Violation) string {
	switch v.Kind {
	case KindSubObjectOverflow:
		return "the access stayed inside the parent object but crossed a member boundary (§II.D narrowed bounds)"
	case KindUseAfterFree:
		return "the metadata entry was invalidated on free (low bound = INVALID, §II.B.4)"
	case KindDoubleFree:
		return "Algorithm 2: the entry's low bound no longer matches the pointer"
	case KindInvalidFree:
		return "Algorithm 2: deallocation requires the object's base address"
	case KindOOBRead, KindOOBWrite:
		return "Algorithm 1: one of the bound differences was negative"
	default:
		return ""
	}
}
