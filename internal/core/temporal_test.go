package core

import (
	"testing"

	"cecsan/internal/tagptr"
)

// idxBits for X8664 with 3 generation bits: 17 - 3.
const testIdxBits = 14

func newHardenedTable(t *testing.T, genBits uint, delay int) *Table {
	t.Helper()
	tbl, err := NewHardenedTable(tagptr.X8664, genBits, delay)
	if err != nil {
		t.Fatalf("NewHardenedTable(%d, %d): %v", genBits, delay, err)
	}
	return tbl
}

func TestHardenedTableValidation(t *testing.T) {
	if _, err := NewHardenedTable(tagptr.X8664, 9, 0); err == nil {
		t.Error("NewHardenedTable(9 bits) succeeded, want error (max 8)")
	}
	if _, err := NewHardenedTable(tagptr.X8664, 0, -1); err == nil {
		t.Error("NewHardenedTable(delay -1) succeeded, want error")
	}
	tbl := newHardenedTable(t, 3, 0)
	if got, want := tbl.Capacity(), uint64(1)<<testIdxBits; got != want {
		t.Errorf("Capacity = %d, want %d (3 of 17 tag bits surrendered)", got, want)
	}
}

// TestGenerationStampDetectsReuse pins the tentpole property: after an index
// is freed and rebuilt for a new object, the stale tag's generation no longer
// matches the entry's, so Probe returns a non-zero genXor — the value whose
// negation fails Algorithm 1's combined check. The fresh tag still decodes
// clean bounds, proving the stamp stays out of the address arithmetic.
func TestGenerationStampDetectsReuse(t *testing.T) {
	tbl := newHardenedTable(t, 3, 0)
	stale, ok := tbl.Allocate(0x1000, 0x1040, false)
	if !ok {
		t.Fatal("Allocate failed")
	}
	if stale != 1 {
		t.Fatalf("first tag = %#x, want 1 (index 1, generation 0)", stale)
	}
	tbl.Free(stale)
	fresh, ok := tbl.Allocate(0x2000, 0x2080, false)
	if !ok {
		t.Fatal("Allocate after Free failed")
	}
	if want := uint64(1)<<testIdxBits | 1; fresh != want {
		t.Fatalf("recycled tag = %#x, want %#x (index 1, generation 1)", fresh, want)
	}
	if _, _, gx := tbl.Probe(stale); gx == 0 {
		t.Error("stale tag probed with genXor 0; the reuse window is open")
	}
	low, high, gx := tbl.Probe(fresh)
	if gx != 0 {
		t.Errorf("fresh tag probed with genXor %#x, want 0", gx)
	}
	if low != 0x2000 || high != 0x2080 {
		t.Errorf("fresh bounds = [%#x,%#x), want [0x2000,0x2080) — generation bits leaked into the high bound", low, high)
	}
}

// TestGenerationWrap pins the documented degradation: with a 1-bit stamp the
// counter wraps on the second free, the wrap is counted, and a tag from the
// entry's first incarnation validates again (stamp-free coverage, not an
// error).
func TestGenerationWrap(t *testing.T) {
	tbl := newHardenedTable(t, 1, 0)
	gen0, _ := tbl.Allocate(0x1000, 0x1040, false)
	tbl.Free(gen0)
	gen1, _ := tbl.Allocate(0x1000, 0x1040, false)
	if gen1 == gen0 {
		t.Fatal("second incarnation reused the generation-0 tag")
	}
	tbl.Free(gen1)
	if got := tbl.Stats().GenWraps; got != 1 {
		t.Fatalf("GenWraps = %d, want 1 after the 1-bit counter wrapped", got)
	}
	wrapped, _ := tbl.Allocate(0x3000, 0x3040, false)
	if wrapped != gen0 {
		t.Fatalf("post-wrap tag = %#x, want %#x (generation back to 0)", wrapped, gen0)
	}
	if _, _, gx := tbl.Probe(gen0); gx != 0 {
		t.Errorf("generation-0 tag probed with genXor %#x after wrap, want 0 (coverage degraded, by design)", gx)
	}
}

// TestIndexDelayFIFO pins the delayed-reuse semantics: a freed index is not
// re-handed-out until `delay` more indices have been freed; allocations in
// the meantime take virgin indices.
func TestIndexDelayFIFO(t *testing.T) {
	tbl := newHardenedTable(t, 0, 2)
	var tags [4]uint64
	for i := 1; i <= 3; i++ {
		tags[i], _ = tbl.Allocate(uint64(0x1000*i), uint64(0x1000*i+64), false)
	}
	tbl.Free(tags[1])
	if got, _ := tbl.Allocate(0x9000, 0x9040, false); got != 4 {
		t.Fatalf("Allocate while index 1 is delayed = %d, want virgin index 4", got)
	}
	tbl.Free(tags[2])
	if got := tbl.Stats().Delayed; got != 2 {
		t.Fatalf("Delayed = %d, want 2 (FIFO at capacity)", got)
	}
	// The third free pushes the FIFO past its depth: index 1 threads.
	tbl.Free(tags[3])
	if got, _ := tbl.Allocate(0xa000, 0xa040, false); got != 1 {
		t.Fatalf("Allocate after 2 further frees = %d, want recycled index 1", got)
	}
}

// TestIndexSpillUnderExhaustion pins graceful degradation: when the table is
// full, Allocate drains the delayed-reuse FIFO (counting the early
// re-threadings) before falling back to the reserved entry.
func TestIndexSpillUnderExhaustion(t *testing.T) {
	tbl := newHardenedTable(t, 0, 5)
	tbl.Clamp(3)
	var tags [4]uint64
	for i := 1; i <= 3; i++ {
		tags[i], _ = tbl.Allocate(uint64(0x1000*i), uint64(0x1000*i+64), false)
	}
	tbl.Free(tags[1])
	idx, ok := tbl.Allocate(0x9000, 0x9040, false)
	if !ok || idx != 1 {
		t.Fatalf("Allocate under exhaustion = (%d,%v), want delayed index 1 spilled early", idx, ok)
	}
	if got := tbl.Stats().IndexSpills; got != 1 {
		t.Errorf("IndexSpills = %d, want 1", got)
	}
	// With the FIFO empty and the clamp still on, exhaustion degrades as before.
	if _, ok := tbl.Allocate(0xb000, 0xb040, false); ok {
		t.Error("Allocate succeeded with a full table and empty FIFO")
	}
	if got := tbl.Stats().Exhausted; got != 1 {
		t.Errorf("Exhausted = %d, want 1", got)
	}
}

// TestHardenedResetByteIdentity extends the clamp test's pooling contract to
// the hardened configuration: after arbitrary churn (bumped generations, a
// part-full FIFO), Reset must leave the table indistinguishable from fresh
// construction — same stats, and a long replay of allocate/probe produces
// identical tags, bounds and generation comparisons.
func TestHardenedResetByteIdentity(t *testing.T) {
	dirty := newHardenedTable(t, 3, 4)
	var churn []uint64
	for i := 1; i <= 12; i++ {
		tag, _ := dirty.Allocate(uint64(0x1000*i), uint64(0x1000*i+32), false)
		churn = append(churn, tag)
	}
	for _, tag := range churn[:7] {
		dirty.Free(tag)
	}
	dirty.Reset()

	fresh := newHardenedTable(t, 3, 4)
	if got, want := dirty.Stats(), fresh.Stats(); got != want {
		t.Errorf("Stats after Reset = %+v, want %+v", got, want)
	}
	for i := uint64(1); i <= 40; i++ {
		gi, gok := dirty.Allocate(0x2000*i, 0x2000*i+32, false)
		wi, wok := fresh.Allocate(0x2000*i, 0x2000*i+32, false)
		if gi != wi || gok != wok {
			t.Fatalf("replay Allocate #%d: reset table gave (%#x,%v), fresh gave (%#x,%v)", i, gi, gok, wi, wok)
		}
		if i%3 == 0 {
			dirty.Free(gi)
			fresh.Free(wi)
			continue
		}
		glow, ghigh, ggx := dirty.Probe(gi)
		wlow, whigh, wgx := fresh.Probe(wi)
		if glow != wlow || ghigh != whigh || ggx != wgx {
			t.Fatalf("replay entry %#x differs: [%#x,%#x) gx=%d vs [%#x,%#x) gx=%d",
				gi, glow, ghigh, ggx, wlow, whigh, wgx)
		}
	}
	if got, want := dirty.Stats(), fresh.Stats(); got != want {
		t.Errorf("Stats after replay = %+v, want %+v", got, want)
	}
}

// A negative IndexDelay is the serving ladder's "no delayed reuse" sentinel:
// New must clamp it to 0 instead of letting TemporalGenerations re-default it
// (or NewHardenedTable reject it).
func TestNegativeIndexDelayDisablesReuse(t *testing.T) {
	opts := HardenedOptions()
	opts.IndexDelay = -1
	r, err := New(opts)
	if err != nil {
		t.Fatalf("New(IndexDelay=-1): %v", err)
	}
	if got := r.Table().IndexDelay(); got != 0 {
		t.Fatalf("IndexDelay() = %d, want 0 (sentinel disables delayed reuse)", got)
	}
	// Sanity: the same options with delay 0 re-default under generations.
	opts.IndexDelay = 0
	r, err = New(opts)
	if err != nil {
		t.Fatalf("New(IndexDelay=0): %v", err)
	}
	if got := r.Table().IndexDelay(); got != DefaultIndexDelay {
		t.Fatalf("IndexDelay() = %d, want DefaultIndexDelay %d", got, DefaultIndexDelay)
	}
}
