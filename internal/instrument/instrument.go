package instrument

import (
	"cecsan/internal/rt"
	"cecsan/prog"
)

// DefaultCheckStep is the §II.F.1 monotonic grouping constant ("default
// parameter is 5").
const DefaultCheckStep = 5

// Apply clones the program and instruments it for the given profile,
// returning the instrumented copy. The original is not modified.
func Apply(p *prog.Program, profile rt.Profile) *prog.Program {
	out := p.Clone()
	if profile.CheckStep <= 0 {
		profile.CheckStep = DefaultCheckStep
	}

	// Whole-program view first (the LTO vantage point, §II.E): classify
	// globals across all functions.
	var unsafeGlobals map[string]bool
	if profile.TrackGlobals {
		unsafeGlobals = classifyGlobals(out)
		for i := range out.Globals {
			out.Globals[i].AddressTaken = unsafeGlobals[out.Globals[i].Name]
		}
	}
	globalSizes := make(map[string]int64, len(out.Globals))
	for _, g := range out.Globals {
		globalSizes[g.Name] = g.Type.Size()
	}

	for _, name := range out.Order {
		f := out.Funcs[name]
		instrumentFunc(f, profile, globalSizes)
		if profile.OptRedundant {
			eliminateRedundantChecks(f)
		}
		if profile.OptLoopInvariant {
			hoistInvariantChecks(f, profile.RedzoneBased)
		}
		if profile.OptMonotonic {
			groupMonotonicChecks(f, profile.CheckStep)
		}
	}
	return out
}

// rewriter rebuilds a function's code with insertions/removals while
// remapping branch targets and loop ranges.
type rewriter struct {
	f      *prog.Func
	out    []prog.Instr
	idxMap []int // old index -> new index of the group start
	fromOld []bool
}

func newRewriter(f *prog.Func) *rewriter {
	return &rewriter{
		f:      f,
		out:    make([]prog.Instr, 0, len(f.Code)+len(f.Code)/2),
		idxMap: make([]int, len(f.Code)+1),
	}
}

// beginGroup records that old index i starts here.
func (rw *rewriter) beginGroup(i int) { rw.idxMap[i] = len(rw.out) }

// emitOld appends an instruction copied from the original code; its branch
// target (if any) will be remapped.
func (rw *rewriter) emitOld(in prog.Instr) {
	rw.out = append(rw.out, in)
	rw.fromOld = append(rw.fromOld, true)
}

// emitNew appends a pass-created instruction; branch targets (if any) are
// already final unless they are old indices, in which case the caller must
// mark them with FlagResolvedTarget semantics inverted... pass-created
// branches are never remapped.
func (rw *rewriter) emitNew(in prog.Instr) {
	rw.out = append(rw.out, in)
	rw.fromOld = append(rw.fromOld, false)
}

// finish installs the rewritten code, remapping branches, loops and alloca
// indices.
func (rw *rewriter) finish() {
	rw.idxMap[len(rw.f.Code)] = len(rw.out)
	for i := range rw.out {
		in := &rw.out[i]
		if in.Op != prog.OpBr && in.Op != prog.OpCondBr {
			continue
		}
		if rw.fromOld[i] && !in.Has(prog.FlagResolvedTarget) {
			in.Imm = int64(rw.idxMap[in.Imm])
		}
		in.Flags &^= prog.FlagResolvedTarget
	}
	for li := range rw.f.Loops {
		l := &rw.f.Loops[li]
		l.HeadStart = rw.idxMap[l.HeadStart]
		l.HeadEnd = rw.idxMap[l.HeadEnd]
		l.BodyStart = rw.idxMap[l.BodyStart]
		l.BodyEnd = rw.idxMap[l.BodyEnd]
		l.LatchEnd = rw.idxMap[l.LatchEnd]
	}
	rw.f.Code = rw.out
	rw.f.Allocas = rw.f.Allocas[:0]
	for i := range rw.f.Code {
		if rw.f.Code[i].Op == prog.OpAlloca {
			rw.f.Allocas = append(rw.f.Allocas, i)
		}
	}
}

// instrumentFunc performs the insertion pass for one function: check
// insertion (with §II.F.2 type-based removal applied inline), sub-object
// narrowing (§II.D), stack-object classification (§II.C.3) and per-pointer
// metadata propagation (SoftBound profiles).
func instrumentFunc(f *prog.Func, profile rt.Profile, globalSizes map[string]int64) {
	a := analyze(f, globalSizes)

	var trackedAllocas map[int]bool
	if profile.TrackStack {
		trackedAllocas = classifyStackObjects(f, a)
	}

	// Decide which sub-object GEPs get narrowed.
	narrow := map[int]bool{}
	var subRegs []prog.Reg
	if profile.SubObject {
		escapes := make(map[prog.Reg]bool)  // returned or stored as a value
		dynamic := make(map[prog.Reg]bool)  // any use that needs runtime bounds
		for i := range f.Code {
			in := &f.Code[i]
			switch in.Op {
			case prog.OpRet:
				if in.A != prog.NoReg {
					escapes[in.A] = true
				}
			case prog.OpStore:
				escapes[in.B] = true
				if !a.staticallySafeAccess(in.A, in.Off, in.Size) {
					dynamic[in.A] = true
				}
			case prog.OpLoad:
				if !a.staticallySafeAccess(in.A, in.Off, in.Size) {
					dynamic[in.A] = true
				}
			case prog.OpCall, prog.OpLibc, prog.OpCallExternal:
				for _, arg := range in.Args {
					dynamic[arg] = true
				}
			case prog.OpGEP:
				if !in.Has(prog.FlagStaticSafe) {
					dynamic[in.A] = true
				}
			case prog.OpFree:
				dynamic[in.A] = true
			}
		}
		for i := range f.Code {
			in := &f.Code[i]
			if in.Op != prog.OpGEP || !in.Has(prog.FlagSubObject) || in.Size <= 0 {
				continue
			}
			if in.Type != nil && !in.Type.IsComposite() {
				// Scalar members are covered by the object-granular check;
				// §II.D narrowing targets member buffers (Figure 3).
				continue
			}
			if escapes[in.Dst] {
				continue // keep object-granular protection for escaping members
			}
			if profile.OptTypeBased && !dynamic[in.Dst] {
				continue // every use statically in-bounds: no narrowing needed
			}
			narrow[i] = true
			subRegs = append(subRegs, in.Dst)
		}
	}

	needsCheck := func(ptr prog.Reg, off, size int64) bool {
		if profile.OptTypeBased && a.staticallySafeAccess(ptr, off, size) {
			return false
		}
		return true
	}

	rw := newRewriter(f)
	for i := range f.Code {
		in := f.Code[i]
		rw.beginGroup(i)
		switch in.Op {
		case prog.OpAlloca:
			if trackedAllocas != nil && trackedAllocas[i] {
				in.Flags |= prog.FlagTracked
			}
			rw.emitOld(in)
		case prog.OpLoad:
			if profile.CheckLoads && needsCheck(in.A, in.Off, in.Size) {
				rw.emitNew(prog.Instr{Op: prog.OpCheckAccess, A: in.A, B: prog.NoReg, Dst: prog.NoReg, Off: in.Off, Size: in.Size})
			}
			rw.emitOld(in)
			if profile.PtrMeta && in.Has(prog.FlagPtrVal) {
				rw.emitNew(prog.Instr{Op: prog.OpPtrMetaLoad, Dst: in.Dst, A: in.A, B: prog.NoReg, Off: in.Off})
			}
		case prog.OpStore:
			if profile.CheckStores && needsCheck(in.A, in.Off, in.Size) {
				rw.emitNew(prog.Instr{Op: prog.OpCheckAccess, A: in.A, B: prog.NoReg, Dst: prog.NoReg, Off: in.Off, Size: in.Size, Flags: prog.FlagWrite})
			}
			rw.emitOld(in)
			if profile.PtrMeta && in.Has(prog.FlagPtrVal) {
				rw.emitNew(prog.Instr{Op: prog.OpPtrMetaStore, A: in.A, B: in.B, Dst: prog.NoReg, Off: in.Off})
			}
		case prog.OpGEP:
			if narrow[i] {
				// Release the previous iteration's narrowed metadata (a
				// no-op on the first execution when the register is zero),
				// then create the §II.D temporary sub-object pointer.
				rw.emitNew(prog.Instr{Op: prog.OpSubRelease, A: in.Dst, Dst: prog.NoReg, B: prog.NoReg})
				rw.emitNew(prog.Instr{Op: prog.OpSubPtr, Dst: in.Dst, A: in.A, B: prog.NoReg, Off: in.Off, Size: in.Size})
			} else {
				rw.emitOld(in)
			}
		case prog.OpRet:
			// Function epilogue: clear narrowed sub-object metadata
			// (Figure 3 line 13) before returning.
			for _, r := range subRegs {
				if in.A != r {
					rw.emitNew(prog.Instr{Op: prog.OpSubRelease, A: r, Dst: prog.NoReg, B: prog.NoReg})
				}
			}
			rw.emitOld(in)
		default:
			rw.emitOld(in)
		}
	}
	rw.finish()
}
