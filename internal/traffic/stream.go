package traffic

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"time"

	"cecsan/internal/sanitizers"
	"cecsan/prog"
)

// Request is one generated unit of traffic: a program to run under a
// sanitizer profile, stamped with its virtual arrival time, class and
// deadline. Requests carry everything a worker needs, so consumers can
// fan them out freely without touching generator state.
type Request struct {
	// Index is the request's position in the merged stream (0-based).
	Index int
	// Class is the client class ID from the spec.
	Class string
	// ClassIndex is the class's position in spec order.
	ClassIndex int
	// Tool is the sanitizer profile to run under.
	Tool sanitizers.Name
	// Arrival is the request's virtual arrival offset from campaign start.
	Arrival time.Duration
	// Deadline is the class latency SLO (0 = none).
	Deadline time.Duration
	// Variant is which of the class's program variants this request uses.
	Variant int
	// ProgSeed is the variant's generator seed.
	ProgSeed uint64
	// Program is the compiled program (shared across requests of the same
	// variant; programs are immutable once built).
	Program *prog.Program
	// Inputs are the recv payloads, if the variant consumes any.
	Inputs [][]byte
	// Source is the variant's csrc source.
	Source string
}

// Stream generates the merged request stream for a (spec, seed) pair.
//
// Determinism contract: the stream is a pure function of the spec content
// and the seed. Each client owns three independent splitmix64 streams
// derived from mix(spec seed, client index) — arrivals, variant picks and
// variant program seeds — and the per-client streams are merged by
// (virtual arrival time, spec order) with spec order breaking ties.
// Nothing consults wall clocks, worker counts or map iteration order, so
// two Streams with the same inputs yield byte-identical request sequences
// no matter how the consumer schedules them.
type Stream struct {
	spec  *Spec
	limit int
	count int

	clients []*clientState
	digest  hashState
}

// hashState accumulates the canonical per-request records that define
// stream identity.
type hashState struct{ h hash.Hash }

func (hs *hashState) add(req *Request) {
	fmt.Fprintf(hs.h, "%d|%s|%d|%d|%s|%d|%d|%s\n",
		req.Index, req.Class, req.Arrival.Nanoseconds(), req.Deadline.Nanoseconds(),
		req.Tool, req.Variant, req.ProgSeed, req.Program.Fingerprint())
}

// clientState is one client's generator position in the merge.
type clientState struct {
	spec     *ClientSpec
	index    int
	arrivals *arrivalSampler
	picker   *rng
	variants []*Variant
	nextAt   time.Duration
}

// NewStream builds the generator. seedOverride, when nonzero, replaces
// the spec's seed (the cmd/serve -seed flag). Variant programs for every
// class are compiled up front; the error covers generator bugs only, not
// request execution.
func NewStream(spec *Spec, seedOverride uint64) (*Stream, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	seed := spec.Seed
	if seedOverride != 0 {
		seed = seedOverride
	}
	s := &Stream{spec: spec, limit: spec.MaxRequests, digest: hashState{h: sha256.New()}}
	for i := range spec.Clients {
		c := &spec.Clients[i]
		clientSeed := mix(seed, uint64(i)+1)
		cs := &clientState{
			spec:     c,
			index:    i,
			arrivals: newArrivalSampler(c.Arrival, spec.AggregateRate*c.RateFraction, mix(clientSeed, 1)),
			picker:   newRNG(mix(clientSeed, 2)),
		}
		for j := 0; j < c.Program.Variants; j++ {
			v, err := buildVariant(c.Program.Kind, mix(clientSeed, 3+uint64(j)))
			if err != nil {
				return nil, err
			}
			cs.variants = append(cs.variants, v)
		}
		cs.nextAt = cs.arrivals.next()
		s.clients = append(s.clients, cs)
	}
	return s, nil
}

// SetLimit overrides the spec's max_requests bound (0 = unbounded).
func (s *Stream) SetLimit(n int) { s.limit = n }

// Variants returns the compiled variant programs for class i, for
// engine warmup via Preinstrument.
func (s *Stream) Variants(i int) []*Variant { return s.clients[i].variants }

// Next returns the next request in virtual-time order, or nil when the
// stream's request bound is reached. Single-producer by design: the
// merge is a stateful k-way walk.
func (s *Stream) Next() *Request {
	if s.limit > 0 && s.count >= s.limit {
		return nil
	}
	best := -1
	for i, cs := range s.clients {
		if best < 0 || cs.nextAt < s.clients[best].nextAt {
			best = i
		}
	}
	cs := s.clients[best]
	vi := cs.picker.intn(len(cs.variants))
	v := cs.variants[vi]
	req := &Request{
		Index:      s.count,
		Class:      cs.spec.ID,
		ClassIndex: cs.index,
		Tool:       sanitizers.Name(cs.spec.Tool),
		Arrival:    cs.nextAt,
		Deadline:   time.Duration(cs.spec.DeadlineMS * float64(time.Millisecond)),
		Variant:    vi,
		ProgSeed:   v.Seed,
		Program:    v.Program,
		Inputs:     v.Inputs,
		Source:     v.Source,
	}
	cs.nextAt += cs.arrivals.next()
	s.count++
	s.digest.add(req)
	return req
}

// Count returns how many requests have been generated so far.
func (s *Stream) Count() int { return s.count }

// Digest returns the hex SHA-256 over the canonical records of every
// request generated so far — the byte-determinism witness two runs (or
// two worker counts) can compare.
func (s *Stream) Digest() string {
	return hex.EncodeToString(s.digest.h.Sum(nil))
}
