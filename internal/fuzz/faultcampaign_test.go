package fuzz

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestFaultCampaignDeterministic pins the acceptance property for fault
// mode: a campaign's record is a pure function of (seed, fault seed) — the
// worker count must not leak into a single byte of it. It also checks the
// injection actually bites (some pressure cells) without destabilizing the
// harness (no faults, no findings).
func TestFaultCampaignDeterministic(t *testing.T) {
	run := func(workers int) []byte {
		t.Helper()
		r, err := NewRunner(Config{Seed: 7, Count: 60, FaultSeed: 3, Workers: workers})
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		rep, err := r.Campaign()
		if err != nil {
			t.Fatalf("Campaign: %v", err)
		}
		if rep.HarnessFaults > 0 {
			t.Fatalf("workers=%d: %d harness faults: %+v", workers, rep.HarnessFaults, rep.FaultCases)
		}
		if len(rep.Findings) > 0 {
			t.Fatalf("workers=%d: %d findings under injection, first: %+v",
				workers, len(rep.Findings), rep.Findings[0])
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		return data
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("fault campaign not worker-independent:\nworkers=1: %s\nworkers=8: %s", serial, parallel)
	}

	var rep Report
	if err := json.Unmarshal(serial, &rep); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	var pressure int
	for _, tr := range rep.Tools {
		pressure += tr.Pressure
	}
	if pressure == 0 {
		t.Fatal("no pressure cells: fault injection never bit")
	}
}
