package harness

import (
	"fmt"
	"math"
	"strings"

	"cecsan/internal/engine"
	"cecsan/internal/interp"
	"cecsan/internal/sanitizers"
	"cecsan/internal/specsim"
)

// The interpreter charges every IR operation one dispatch, which flattens
// the large per-operation cost differences between sanitizers on real
// hardware (an ASan shadow probe is 3 instructions; CECSan's inlined
// Algorithm 1 is ~7 instructions with a 16-byte metadata load on its
// critical path). The cycle model re-weights the machine's precise event
// counts with per-sanitizer operation costs taken from the published
// instrumentation sequences, yielding the modelled runtime-overhead view
// that corresponds to the paper's wall-clock measurements. The weights are
// explicit, global (not fitted per benchmark), and documented here.
//
// Costs are in model cycles; an ordinary IR operation costs 1.

// CostModel holds the per-event weights of one sanitizer.
type CostModel struct {
	// Check is the cost of one executed dereference check.
	Check float64
	// Malloc / Free are the costs ADDED to the stock allocator path by the
	// sanitizer's allocation hooks.
	Malloc float64
	Free   float64
	// SubPtr is the cost of one sub-object narrowing operation (metadata
	// table insert or release under the GMI lock).
	SubPtr float64
	// MetaOp is the cost of one explicit per-pointer metadata propagation
	// (SoftBound's register/shadow copies).
	MetaOp float64
}

// mallocBase is the stock allocator's own cost, shared by every
// configuration including native.
const mallocBase = 60.0

// CostModels returns the per-sanitizer weights:
//
//   - native: the stock allocator only.
//   - ASan / ASAN--: 3-instruction shadow probe; allocation pays redzone
//     selection + poisoning (~2 shadow stores per 16 redzone bytes) and
//     chunk registration; free pays poisoning + quarantine bookkeeping.
//   - CECSan: the inlined Algorithm 1 sequence (tag extract, 2 bound loads
//     with a dependent 24-byte table access, 2 subs, OR, sign test, strip)
//     is ~7 instructions but sits on the load's critical path and touches
//     a disjoint 3 MiB table, modelled at 9 cycles; allocation/free pay
//     one locked table update each (§III's global mutex).
//   - HWASan: 4-instruction tag compare; allocation pays granule tagging.
//   - SoftBound/CETS: bounds + lock-and-key compare (~9), metadata shadow
//     traffic per propagated pointer.
func CostModels() map[sanitizers.Name]CostModel {
	return map[sanitizers.Name]CostModel{
		sanitizers.Native:    {},
		sanitizers.ASan:      {Check: 3, Malloc: 90, Free: 70},
		sanitizers.ASanLite:  {Check: 3, Malloc: 90, Free: 70},
		sanitizers.HWASan:    {Check: 4, Malloc: 40, Free: 30},
		sanitizers.CECSan:    {Check: 9, Malloc: 45, Free: 40, SubPtr: 45},
		sanitizers.PACMem:    {Check: 9, Malloc: 45, Free: 40},
		sanitizers.CryptSan:  {Check: 11, Malloc: 55, Free: 45},
		sanitizers.SoftBound: {Check: 9, Malloc: 50, Free: 40, MetaOp: 4},
	}
}

// ModelCycles converts one run's event counts into model cycles.
func ModelCycles(s interp.Stats, m CostModel) float64 {
	base := float64(s.Instructions-s.ChecksExecuted) +
		float64(s.Mallocs+s.Frees)*mallocBase
	return base +
		float64(s.ChecksExecuted)*(1+m.Check) +
		float64(s.Mallocs)*m.Malloc +
		float64(s.Frees)*m.Free +
		float64(s.SubPtrOps)*m.SubPtr +
		float64(s.MetaOps)*m.MetaOp
}

// CycleRow is one benchmark row of the modelled-overhead table.
type CycleRow struct {
	Benchmark    string
	NativeCycles float64
	OverheadPct  map[sanitizers.Name]float64
}

// CycleTable aggregates the modelled view.
type CycleTable struct {
	Suite string
	Tools []sanitizers.Name
	Rows  []CycleRow
}

// statsFor executes one workload through one tool's engine and returns the
// machine's event counts (deterministic: a single rep suffices).
func statsFor(eng *engine.Engine, w specsim.Workload) (interp.Stats, error) {
	res, err := eng.Run(w.Build())
	if err != nil {
		return interp.Stats{}, err
	}
	if !res.Ok() {
		return interp.Stats{}, fmt.Errorf("harness: %s under %s: %v%v%v", w.Name, eng.Tool(), res.Violation, res.Fault, res.Err)
	}
	return res.Stats, nil
}

// EvaluateCycles computes the modelled-overhead table for a workload set.
func EvaluateCycles(ws []specsim.Workload, tools []sanitizers.Name) (*CycleTable, error) {
	models := CostModels()
	table := &CycleTable{Tools: tools}
	if len(ws) > 0 {
		table.Suite = ws[0].Suite
	}
	engines := make(map[sanitizers.Name]*engine.Engine, len(tools)+1)
	for _, tool := range append([]sanitizers.Name{sanitizers.Native}, tools...) {
		if _, ok := engines[tool]; ok {
			continue
		}
		eng, err := engine.New(tool, engine.Options{})
		if err != nil {
			return nil, err
		}
		engines[tool] = eng
	}
	for _, w := range ws {
		base, err := statsFor(engines[sanitizers.Native], w)
		if err != nil {
			return nil, err
		}
		nativeCycles := ModelCycles(base, models[sanitizers.Native])
		row := CycleRow{
			Benchmark:    w.Name,
			NativeCycles: nativeCycles,
			OverheadPct:  make(map[sanitizers.Name]float64, len(tools)),
		}
		for _, tool := range tools {
			st, err := statsFor(engines[tool], w)
			if err != nil {
				return nil, err
			}
			row.OverheadPct[tool] = 100 * (ModelCycles(st, models[tool])/nativeCycles - 1)
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// Average and Geomean aggregate one tool's modelled overheads.
func (t *CycleTable) Average(tool sanitizers.Name) float64 {
	var sum float64
	for _, r := range t.Rows {
		sum += r.OverheadPct[tool]
	}
	return sum / float64(len(t.Rows))
}

// Geomean returns the geometric mean of the modelled overhead percentages.
func (t *CycleTable) Geomean(tool sanitizers.Name) float64 {
	var logSum float64
	for _, r := range t.Rows {
		v := r.OverheadPct[tool]
		if v < 0.1 {
			v = 0.1
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(t.Rows)))
}

// FormatCycleTable renders the modelled-overhead table.
func FormatCycleTable(t *CycleTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Modelled runtime overhead (cycle model) on SPEC%s-like workloads\n", t.Suite)
	fmt.Fprintf(&b, "%-18s", "Benchmark")
	for _, tool := range t.Tools {
		fmt.Fprintf(&b, " %12s", tool)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-18s", r.Benchmark)
		for _, tool := range t.Tools {
			fmt.Fprintf(&b, " %11.1f%%", r.OverheadPct[tool])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-18s", "Average")
	for _, tool := range t.Tools {
		fmt.Fprintf(&b, " %11.1f%%", t.Average(tool))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-18s", "Geometric Mean")
	for _, tool := range t.Tools {
		fmt.Fprintf(&b, " %11.1f%%", t.Geomean(tool))
	}
	b.WriteString("\n")
	return b.String()
}
