package instrument

import "cecsan/prog"

// Fuse populates each function's superinstruction side table: an
// OpCheckAccess immediately followed by the load or store it guards becomes
// one fused dispatch (§II.F's mask → metatable lookup → OR → compare
// sequence plus the access, executed back to back without returning to the
// interpreter loop). The check-site profiler shows exactly these pairs
// dominating ChecksExecuted in loop bodies, which is why the pair — not a
// longer sequence — is the specialization target.
//
// Fusion runs after the check-optimization passes (it reads their output)
// and rewrites nothing: Code, and with it every PC, branch target and
// violation report, is untouched. A branch into the middle of a pair
// executes the plain tail instruction, identical to unfused execution, so
// the pass needs no control-flow analysis.
func Fuse(p *prog.Program) {
	for _, f := range p.Funcs {
		var fused []prog.FuseKind
		for i := 0; i+1 < len(f.Code); i++ {
			if f.Code[i].Op != prog.OpCheckAccess {
				continue
			}
			var k prog.FuseKind
			switch f.Code[i+1].Op {
			case prog.OpLoad:
				k = prog.FuseLoad
			case prog.OpStore:
				k = prog.FuseStore
			default:
				continue
			}
			if fused == nil {
				fused = make([]prog.FuseKind, len(f.Code))
			}
			fused[i] = k
		}
		f.Fused = fused
	}
}
