package interp

import (
	"fmt"
	"time"

	"cecsan/internal/rt"
	"cecsan/prog"
)

// libcCall dispatches a simulated C library call. Each function first
// validates the byte ranges it will touch through the runtime's LibcCheck —
// the interceptor for ASan-family sanitizers, the instrumented call-site
// check for CECSan — and then performs the operation on raw memory.
// Individual runtimes reproduce their documented coverage gaps (e.g. the
// wide-character functions most sanitizers overlook, §IV.B) inside
// LibcCheck.
func (th *thread) libcCall(in *prog.Instr, regs []uint64, metas []rt.PtrMeta, fnName string, pc int) (uint64, *abort) {
	m := th.m
	mask := m.addrMask
	argv := func(i int) uint64 { return regs[in.Args[i]] }
	argm := func(i int) rt.PtrMeta {
		if metas == nil {
			return rt.PtrMeta{}
		}
		return metas[in.Args[i]]
	}
	check := func(fn string, i int, n int64, k rt.AccessKind) *abort {
		th.local.ChecksExecuted++
		var v *rt.Violation
		if obsv := m.opts.CheckObserver; obsv != nil {
			t0 := time.Now()
			v = m.san.Runtime.LibcCheck(fn, argv(i), argm(i), n, k)
			obsv.ObserveCheck(fnName, pc, n, time.Since(t0))
		} else {
			v = m.san.Runtime.LibcCheck(fn, argv(i), argm(i), n, k)
		}
		if v != nil {
			return th.report(v, fnName, pc)
		}
		return nil
	}
	need := func(n int) *abort {
		if len(in.Args) < n {
			return &abort{err: fmt.Errorf("interp: libc %s: want %d args, got %d", in.Sym, n, len(in.Args))}
		}
		return nil
	}
	// strlenRaw measures a NUL-terminated byte string in raw memory.
	strlenRaw := func(raw uint64) int64 {
		var n int64
		for {
			b, f := m.space.Load(raw+uint64(n), 1)
			if f != nil || b == 0 {
				return n
			}
			n++
		}
	}

	switch in.Sym {
	case "memcpy", "memmove":
		if ab := need(3); ab != nil {
			return 0, ab
		}
		n := int64(argv(2))
		if ab := check(in.Sym, 0, n, rt.Write); ab != nil {
			return 0, ab
		}
		if ab := check(in.Sym, 1, n, rt.Read); ab != nil {
			return 0, ab
		}
		if f := m.space.Copy(argv(0)&mask, argv(1)&mask, n); f != nil {
			return 0, &abort{fault: f}
		}
		return argv(0), nil

	case "memset":
		if ab := need(3); ab != nil {
			return 0, ab
		}
		n := int64(argv(2))
		if ab := check(in.Sym, 0, n, rt.Write); ab != nil {
			return 0, ab
		}
		if f := m.space.Set(argv(0)&mask, byte(argv(1)), n); f != nil {
			return 0, &abort{fault: f}
		}
		return argv(0), nil

	case "strlen":
		if ab := need(1); ab != nil {
			return 0, ab
		}
		n := strlenRaw(argv(0) & mask)
		if ab := check(in.Sym, 0, n+1, rt.Read); ab != nil {
			return 0, ab
		}
		return uint64(n), nil

	case "strcpy":
		if ab := need(2); ab != nil {
			return 0, ab
		}
		n := strlenRaw(argv(1) & mask)
		if ab := check(in.Sym, 1, n+1, rt.Read); ab != nil {
			return 0, ab
		}
		if ab := check(in.Sym, 0, n+1, rt.Write); ab != nil {
			return 0, ab
		}
		if f := m.space.Copy(argv(0)&mask, argv(1)&mask, n+1); f != nil {
			return 0, &abort{fault: f}
		}
		return argv(0), nil

	case "strncpy":
		if ab := need(3); ab != nil {
			return 0, ab
		}
		n := int64(argv(2))
		srcLen := strlenRaw(argv(1) & mask)
		cp := srcLen
		if cp > n {
			cp = n
		}
		if ab := check(in.Sym, 1, cp, rt.Read); ab != nil {
			return 0, ab
		}
		if ab := check(in.Sym, 0, n, rt.Write); ab != nil { // strncpy pads to n
			return 0, ab
		}
		if f := m.space.Copy(argv(0)&mask, argv(1)&mask, cp); f != nil {
			return 0, &abort{fault: f}
		}
		if cp < n {
			if f := m.space.Set((argv(0)&mask)+uint64(cp), 0, n-cp); f != nil {
				return 0, &abort{fault: f}
			}
		}
		return argv(0), nil

	case "strcat":
		if ab := need(2); ab != nil {
			return 0, ab
		}
		dl := strlenRaw(argv(0) & mask)
		sl := strlenRaw(argv(1) & mask)
		if ab := check(in.Sym, 1, sl+1, rt.Read); ab != nil {
			return 0, ab
		}
		if ab := check(in.Sym, 0, dl+sl+1, rt.Write); ab != nil {
			return 0, ab
		}
		if f := m.space.Copy((argv(0)&mask)+uint64(dl), argv(1)&mask, sl+1); f != nil {
			return 0, &abort{fault: f}
		}
		return argv(0), nil

	case "wcslen":
		if ab := need(1); ab != nil {
			return 0, ab
		}
		raw := argv(0) & mask
		var n int64
		for {
			w, f := m.space.Load(raw+uint64(4*n), 4)
			if f != nil || w == 0 {
				break
			}
			n++
		}
		if ab := check(in.Sym, 0, 4*(n+1), rt.Read); ab != nil {
			return 0, ab
		}
		return uint64(n), nil

	case "wcsncpy", "wmemcpy":
		if ab := need(3); ab != nil {
			return 0, ab
		}
		n := int64(argv(2)) * 4 // wide chars -> bytes
		if ab := check(in.Sym, 0, n, rt.Write); ab != nil {
			return 0, ab
		}
		if ab := check(in.Sym, 1, n, rt.Read); ab != nil {
			return 0, ab
		}
		if f := m.space.Copy(argv(0)&mask, argv(1)&mask, n); f != nil {
			return 0, &abort{fault: f}
		}
		return argv(0), nil

	case "wmemset":
		if ab := need(3); ab != nil {
			return 0, ab
		}
		n := int64(argv(2))
		if ab := check(in.Sym, 0, 4*n, rt.Write); ab != nil {
			return 0, ab
		}
		raw := argv(0) & mask
		for i := int64(0); i < n; i++ {
			if f := m.space.Store(raw+uint64(4*i), 4, argv(1)); f != nil {
				return 0, &abort{fault: f}
			}
		}
		return argv(0), nil

	case "fgets", "recv":
		// fgets(buf, n) / recv(buf, n): consume the next payload from the
		// harness's dummy server. fgets reserves one byte for the NUL;
		// recv does not. Returns the number of bytes written.
		if ab := need(2); ab != nil {
			return 0, ab
		}
		limit := int64(argv(1))
		payload, ok := m.nextInput()
		if !ok || limit <= 0 {
			return 0, nil
		}
		n := int64(len(payload))
		if in.Sym == "fgets" {
			if n > limit-1 {
				n = limit - 1
			}
		} else if n > limit {
			n = limit
		}
		if n < 0 {
			n = 0
		}
		wr := n
		if in.Sym == "fgets" {
			wr = n + 1 // terminating NUL
		}
		if ab := check(in.Sym, 0, wr, rt.Write); ab != nil {
			return 0, ab
		}
		if f := m.space.WriteBytes(argv(0)&mask, payload[:n]); f != nil {
			return 0, &abort{fault: f}
		}
		if in.Sym == "fgets" {
			if f := m.space.Store((argv(0)&mask)+uint64(n), 1, 0); f != nil {
				return 0, &abort{fault: f}
			}
		}
		return uint64(n), nil

	case "calloc":
		// calloc(n, size): zeroed allocation through the runtime's
		// allocation hook (the machine's memory is zero-initialized, but
		// recycled chunks are not — clear explicitly).
		if ab := need(2); ab != nil {
			return 0, ab
		}
		total := int64(argv(0)) * int64(argv(1))
		if total <= 0 {
			return 0, nil
		}
		ptr, meta, err := m.san.Runtime.Malloc(total)
		if err != nil {
			return 0, &abort{err: err}
		}
		if metas != nil && in.Dst != prog.NoReg {
			metas[in.Dst] = meta
		}
		th.local.Mallocs++
		m.sampleRSS()
		if f := m.space.Set(ptr&mask, 0, total); f != nil {
			return 0, &abort{fault: f}
		}
		return ptr, nil

	case "realloc":
		// realloc(p, n): malloc + copy + free through the runtime hooks, so
		// realloc-of-freed and realloc-of-interior pointers are caught by
		// the Free path's checks.
		if ab := need(2); ab != nil {
			return 0, ab
		}
		oldPtr := argv(0)
		n := int64(argv(1))
		if oldPtr == 0 {
			ptr, meta, err := m.san.Runtime.Malloc(n)
			if err != nil {
				return 0, &abort{err: err}
			}
			if metas != nil && in.Dst != prog.NoReg {
				metas[in.Dst] = meta
			}
			th.local.Mallocs++
			m.sampleRSS()
			return ptr, nil
		}
		if n == 0 {
			if v := m.san.Runtime.Free(oldPtr, argm(0)); v != nil {
				return 0, th.report(v, fnName, pc)
			}
			th.local.Frees++
			m.sampleRSS()
			return 0, nil
		}
		oldSize := m.san.Runtime.UsableSize(oldPtr, argm(0))
		ptr, meta, err := m.san.Runtime.Malloc(n)
		if err != nil {
			return 0, &abort{err: err}
		}
		th.local.Mallocs++
		cp := oldSize
		if cp > n {
			cp = n
		}
		if cp > 0 {
			if f := m.space.Copy(ptr&mask, oldPtr&mask, cp); f != nil {
				return 0, &abort{fault: f}
			}
		}
		if v := m.san.Runtime.Free(oldPtr, argm(0)); v != nil {
			return 0, th.report(v, fnName, pc)
		}
		th.local.Frees++
		if metas != nil && in.Dst != prog.NoReg {
			metas[in.Dst] = meta
		}
		m.sampleRSS()
		return ptr, nil

	case "memcmp":
		if ab := need(3); ab != nil {
			return 0, ab
		}
		n := int64(argv(2))
		if ab := check(in.Sym, 0, n, rt.Read); ab != nil {
			return 0, ab
		}
		if ab := check(in.Sym, 1, n, rt.Read); ab != nil {
			return 0, ab
		}
		a, f := m.space.ReadBytes(argv(0)&mask, n)
		if f != nil {
			return 0, &abort{fault: f}
		}
		b, f := m.space.ReadBytes(argv(1)&mask, n)
		if f != nil {
			return 0, &abort{fault: f}
		}
		for i := int64(0); i < n; i++ {
			if a[i] != b[i] {
				if a[i] < b[i] {
					return ^uint64(0), nil // -1
				}
				return 1, nil
			}
		}
		return 0, nil

	case "strcmp", "strncmp":
		if ab := need(2); ab != nil {
			return 0, ab
		}
		limit := int64(1 << 30)
		if in.Sym == "strncmp" {
			if ab := need(3); ab != nil {
				return 0, ab
			}
			limit = int64(argv(2))
		}
		la := strlenRaw(argv(0) & mask)
		lb := strlenRaw(argv(1) & mask)
		ca, cb := la+1, lb+1
		if ca > limit {
			ca = limit
		}
		if cb > limit {
			cb = limit
		}
		if ab := check(in.Sym, 0, ca, rt.Read); ab != nil {
			return 0, ab
		}
		if ab := check(in.Sym, 1, cb, rt.Read); ab != nil {
			return 0, ab
		}
		for i := int64(0); i < limit; i++ {
			x, _ := m.space.Load((argv(0)&mask)+uint64(i), 1)
			y, _ := m.space.Load((argv(1)&mask)+uint64(i), 1)
			if x != y {
				if x < y {
					return ^uint64(0), nil
				}
				return 1, nil
			}
			if x == 0 {
				break
			}
		}
		return 0, nil

	case "memchr":
		if ab := need(3); ab != nil {
			return 0, ab
		}
		n := int64(argv(2))
		if ab := check(in.Sym, 0, n, rt.Read); ab != nil {
			return 0, ab
		}
		want := byte(argv(1))
		for i := int64(0); i < n; i++ {
			b, f := m.space.Load((argv(0)&mask)+uint64(i), 1)
			if f != nil {
				return 0, &abort{fault: f}
			}
			if byte(b) == want {
				return argv(0) + uint64(i), nil
			}
		}
		return 0, nil

	case "strnlen":
		if ab := need(2); ab != nil {
			return 0, ab
		}
		limit := int64(argv(1))
		n := strlenRaw(argv(0) & mask)
		if n > limit {
			n = limit
		}
		probe := n
		if n < limit {
			probe = n + 1 // the terminator was read too
		}
		if ab := check(in.Sym, 0, probe, rt.Read); ab != nil {
			return 0, ab
		}
		return uint64(n), nil

	case "strncat":
		if ab := need(3); ab != nil {
			return 0, ab
		}
		dl := strlenRaw(argv(0) & mask)
		sl := strlenRaw(argv(1) & mask)
		n := int64(argv(2))
		cp := sl
		if cp > n {
			cp = n
		}
		if ab := check(in.Sym, 1, cp, rt.Read); ab != nil {
			return 0, ab
		}
		if ab := check(in.Sym, 0, dl+cp+1, rt.Write); ab != nil {
			return 0, ab
		}
		if f := m.space.Copy((argv(0)&mask)+uint64(dl), argv(1)&mask, cp); f != nil {
			return 0, &abort{fault: f}
		}
		if f := m.space.Store((argv(0)&mask)+uint64(dl+cp), 1, 0); f != nil {
			return 0, &abort{fault: f}
		}
		return argv(0), nil

	case "rand":
		return m.rand(), nil

	case "print_int":
		if ab := need(1); ab != nil {
			return 0, ab
		}
		m.printLine(fmt.Sprintf("%d", int64(argv(0))))
		return 0, nil

	case "print_str":
		if ab := need(1); ab != nil {
			return 0, ab
		}
		raw := argv(0) & mask
		n := strlenRaw(raw)
		if ab := check(in.Sym, 0, n+1, rt.Read); ab != nil {
			return 0, ab
		}
		b, f := m.space.ReadBytes(raw, n)
		if f != nil {
			return 0, &abort{fault: f}
		}
		m.printLine(string(b))
		return 0, nil

	default:
		return 0, &abort{err: fmt.Errorf("interp: unknown libc function %q", in.Sym)}
	}
}

// callExternal simulates a call into external, uninstrumented code (§II.E):
// pointer arguments are checked and stripped via the runtime, the foreign
// implementation operates on raw memory with no sanitizer involvement, and
// returned pointers are adopted (reserved entry) or re-tagged (functions
// returning one of their pointer arguments).
func (th *thread) callExternal(in *prog.Instr, regs []uint64, metas []rt.PtrMeta, fnName string, pc int) (uint64, *abort) {
	m := th.m
	mask := m.addrMask
	run := m.san.Runtime

	raw := make([]uint64, len(in.Args))
	for i, a := range in.Args {
		// The §II.E wrapper: check and strip every pointer-looking argument.
		// The machine treats every argument of an external call as a
		// potential pointer, as a conservative LTO pass would.
		r, v := run.PrepareExternArg(regs[a])
		if v != nil {
			return 0, th.report(v, fnName, pc)
		}
		raw[i] = r
	}
	_ = metas // external code receives no metadata: it is uninstrumented

	var ret uint64
	switch in.Sym {
	case "ext_identity":
		// Returns its first argument unchanged (canonical returns-own-arg).
		if len(raw) > 0 {
			ret = raw[0]
		}

	case "ext_advance":
		// Returns arg0 + arg1: a derived pointer into the same object.
		if len(raw) > 1 {
			ret = raw[0] + raw[1]
		}

	case "ext_fill":
		// ext_fill(p, n, v): uninstrumented write loop. No checks happen
		// here — if the program passed a bad pointer, memory corrupts
		// silently, exactly like calling into a legacy .so.
		if len(raw) > 2 {
			if f := m.space.Set(raw[0], byte(raw[2]), int64(raw[1])); f != nil {
				return 0, &abort{fault: f}
			}
		}
		ret = raw[0]

	case "ext_sum":
		// ext_sum(p, n): uninstrumented read loop returning a byte sum.
		if len(raw) > 1 {
			b, f := m.space.ReadBytes(raw[0], int64(raw[1]))
			if f != nil {
				return 0, &abort{fault: f}
			}
			var s uint64
			for _, x := range b {
				s += uint64(x)
			}
			ret = s
		}

	case "ext_alloc":
		// ext_alloc(n): the foreign library allocates with the stock
		// allocator; the returned pointer has unknown provenance.
		if len(raw) > 0 {
			p, err := m.heap.Alloc(int64(raw[0]))
			if err != nil {
				return 0, &abort{err: err}
			}
			m.sampleRSS()
			ret = p
		}

	case "ext_free":
		// ext_free(p): the foreign library frees through the stock
		// allocator, bypassing all sanitizer bookkeeping.
		if len(raw) > 0 {
			m.heap.Free(raw[0])
		}

	case "getenv":
		// Returns a pointer to foreign static storage ("VALUE\0").
		p, err := m.heap.Alloc(16)
		if err != nil {
			return 0, &abort{err: err}
		}
		if f := m.space.WriteBytes(p, []byte("VALUE\x00")); f != nil {
			return 0, &abort{fault: f}
		}
		m.sampleRSS()
		ret = p

	default:
		return 0, &abort{err: fmt.Errorf("interp: unknown external function %q", in.Sym)}
	}

	if in.Has(prog.FlagRetIsArg0) && len(in.Args) > 0 {
		// Re-apply the stripped tag of arg0 to the returned pointer (§II.E).
		return (ret & mask) | (regs[in.Args[0]] &^ mask), nil
	}
	if in.Has(prog.FlagRetPtr) {
		return run.AdoptExternRet(ret), nil
	}
	return ret, nil
}
