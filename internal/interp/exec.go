package interp

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"cecsan/internal/alloc"
	"cecsan/internal/mem"
	"cecsan/internal/rt"
	"cecsan/prog"
)

// abort carries the reason execution stopped up the simulated call stack.
// Exactly one field is set.
type abort struct {
	violation *rt.Violation
	fault     *mem.Fault
	err       error
}

// thread is one simulated thread of execution: its own stack and local
// counters, sharing the machine's memory, heap and runtime.
type thread struct {
	m      *Machine
	stack  *alloc.Stack
	budget int64

	// regArena and metaArena back call-frame register windows: each call
	// carves [frameBase, frameBase+NumRegs) and releases it in its epilogue,
	// so frame setup is a clear of recycled memory instead of a fresh
	// allocation per call. Growth reallocates the arena, but live parent
	// frames keep their slices into the old backing array — every frame only
	// ever touches its own window, so the windows never alias.
	regArena  []uint64
	metaArena []rt.PtrMeta
	frameBase int

	local Stats
}

// frame carves a zeroed register window (and, when per-pointer metadata is
// tracked, a matching metadata window) for one call frame.
func (th *thread) frame(n int) (regs []uint64, metas []rt.PtrMeta) {
	base := th.frameBase
	if base+n > len(th.regArena) {
		size := 2 * (base + n)
		if size < 256 {
			size = 256
		}
		grown := make([]uint64, size)
		copy(grown, th.regArena[:base])
		th.regArena = grown
	}
	regs = th.regArena[base : base+n : base+n]
	clear(regs)
	if th.m.trackMeta {
		if base+n > len(th.metaArena) {
			grown := make([]rt.PtrMeta, len(th.regArena))
			copy(grown, th.metaArena[:base])
			th.metaArena = grown
		}
		metas = th.metaArena[base : base+n : base+n]
		clear(metas)
	}
	th.frameBase = base + n
	return regs, metas
}

// flushStats merges the thread's counters into the machine.
func (th *thread) flushStats() {
	th.m.mergeStats(&th.local)
	th.local = Stats{}
}

// trackedObj records a metadata-carrying stack object for epilogue release.
type trackedObj struct {
	ptr  uint64
	size int64
}

// call executes fn with the given argument values (and their per-pointer
// metadata when tracking is enabled), returning the result value/meta or an
// abort.
func (th *thread) call(fn *prog.Func, args []uint64, argMeta []rt.PtrMeta, depth int) (uint64, rt.PtrMeta, *abort) {
	if depth > th.m.opts.MaxCallDepth {
		return 0, rt.PtrMeta{}, &abort{err: ErrCallDepth}
	}
	if th.m.aborted.Load() {
		// Interrupts also land at call entry, so loop-free recursive
		// programs still honour the watchdog.
		return 0, rt.PtrMeta{}, th.abortCause()
	}
	m := th.m
	run := m.san.Runtime
	mask := m.addrMask

	arenaMark := th.frameBase
	regs, metas := th.frame(fn.NumRegs)
	copy(regs, args)
	if metas != nil {
		copy(metas, argMeta)
	}

	frameMark := th.stack.Mark()
	var tracked []trackedObj
	// epilogue releases tracked stack objects' metadata and pops the frame,
	// returning the register window to the arena.
	epilogue := func() {
		for _, ob := range tracked {
			run.StackRelease(ob.ptr, ob.size)
		}
		th.stack.Release(frameMark)
		th.frameBase = arenaMark
	}

	code := fn.Code
	pc := 0
	steps := int64(0)

	for pc < len(code) {
		in := &code[pc]
		steps++
		switch in.Op {
		case prog.OpConst:
			regs[in.Dst] = uint64(in.Imm)
		case prog.OpMov:
			regs[in.Dst] = regs[in.A]
			if metas != nil {
				metas[in.Dst] = metas[in.A]
			}
		case prog.OpBin:
			a, b := regs[in.A], regs[in.B]
			var v uint64
			switch prog.BinOp(in.X) {
			case prog.BinAdd:
				v = a + b
			case prog.BinSub:
				v = a - b
			case prog.BinMul:
				v = a * b
			case prog.BinDiv:
				if b == 0 {
					epilogue()
					return 0, rt.PtrMeta{}, &abort{err: fmt.Errorf("interp: SIGFPE: division by zero in %s@%d", fn.Name, pc)}
				}
				v = uint64(int64(a) / int64(b))
			case prog.BinRem:
				if b == 0 {
					epilogue()
					return 0, rt.PtrMeta{}, &abort{err: fmt.Errorf("interp: SIGFPE: remainder by zero in %s@%d", fn.Name, pc)}
				}
				v = uint64(int64(a) % int64(b))
			case prog.BinAnd:
				v = a & b
			case prog.BinOr:
				v = a | b
			case prog.BinXor:
				v = a ^ b
			case prog.BinShl:
				v = a << (b & 63)
			case prog.BinShr:
				v = a >> (b & 63)
			}
			regs[in.Dst] = v
			if metas != nil {
				// Pointer ± integer keeps the operand's per-pointer metadata:
				// the derived pointer inherits the base object's bounds and
				// key (SoftBound's pointer-arithmetic rule), so an interior
				// pointer built by register arithmetic carries provenance
				// into Free/Check. Scalar operands carry zero metadata, so
				// plain integer arithmetic stays metadata-free.
				switch prog.BinOp(in.X) {
				case prog.BinAdd, prog.BinSub:
					if ma := metas[in.A]; ma.Valid() {
						metas[in.Dst] = ma
					} else if mb := metas[in.B]; mb.Valid() {
						metas[in.Dst] = mb
					}
				}
			}
		case prog.OpCmp:
			a, b := regs[in.A], regs[in.B]
			var t bool
			switch prog.CmpPred(in.X) {
			case prog.CmpEq:
				t = a == b
			case prog.CmpNe:
				t = a != b
			case prog.CmpSLt:
				t = int64(a) < int64(b)
			case prog.CmpSLe:
				t = int64(a) <= int64(b)
			case prog.CmpSGt:
				t = int64(a) > int64(b)
			case prog.CmpSGe:
				t = int64(a) >= int64(b)
			case prog.CmpULt:
				t = a < b
			case prog.CmpULe:
				t = a <= b
			case prog.CmpUGt:
				t = a > b
			case prog.CmpUGe:
				t = a >= b
			}
			if t {
				regs[in.Dst] = 1
			} else {
				regs[in.Dst] = 0
			}
		case prog.OpBr:
			tgt := int(in.Imm)
			if tgt <= pc { // backedge: budget and abort checks
				th.budget -= steps
				th.local.Instructions += steps
				steps = 0
				if th.budget <= 0 {
					epilogue()
					return 0, rt.PtrMeta{}, &abort{err: ErrInstructionBudget}
				}
				if m.aborted.Load() {
					epilogue()
					return 0, rt.PtrMeta{}, th.abortCause()
				}
			}
			pc = tgt
			continue
		case prog.OpCondBr:
			if regs[in.A] != 0 {
				tgt := int(in.Imm)
				if tgt <= pc {
					th.budget -= steps
					th.local.Instructions += steps
					steps = 0
					if th.budget <= 0 {
						epilogue()
						return 0, rt.PtrMeta{}, &abort{err: ErrInstructionBudget}
					}
					if m.aborted.Load() {
						epilogue()
						return 0, rt.PtrMeta{}, &abort{err: errAbortedElsewhere}
					}
				}
				pc = tgt
				continue
			}
		case prog.OpAlloca:
			isTracked := in.Has(prog.FlagTracked)
			allocSize := in.Size
			rz := m.san.Profile.StackRedzone
			if isTracked && rz > 0 {
				allocSize += 2 * rz // redzone-based layout change
			}
			raw, err := th.stack.Alloc(allocSize)
			if err != nil {
				epilogue()
				return 0, rt.PtrMeta{}, &abort{err: err}
			}
			if isTracked && rz > 0 {
				raw += uint64(rz)
			}
			ptr, meta := run.StackAlloc(raw, in.Size, isTracked)
			regs[in.Dst] = ptr
			if metas != nil {
				metas[in.Dst] = meta
			}
			if isTracked {
				tracked = append(tracked, trackedObj{ptr: ptr, size: in.Size})
			}
			m.sampleRSS()
		case prog.OpMalloc:
			size := in.Size
			if in.A != prog.NoReg {
				size = int64(regs[in.A])
			}
			ptr, meta, err := run.Malloc(size)
			if err != nil {
				epilogue()
				return 0, rt.PtrMeta{}, &abort{err: err}
			}
			regs[in.Dst] = ptr
			if metas != nil {
				metas[in.Dst] = meta
			}
			th.local.Mallocs++
			if mb := m.opts.MaxHeapBytes; mb > 0 && m.heap.LiveBytes() > mb {
				epilogue()
				return 0, rt.PtrMeta{}, &abort{err: ErrHeapBudget}
			}
			m.sampleRSS()
		case prog.OpFree:
			var meta rt.PtrMeta
			if metas != nil {
				meta = metas[in.A]
			}
			if v := run.Free(regs[in.A], meta); v != nil {
				epilogue()
				return 0, rt.PtrMeta{}, th.report(v, fn.Name, pc)
			}
			th.local.Frees++
			m.sampleRSS()
		case prog.OpLoad:
			addr := (regs[in.A] & mask) + uint64(in.Off)
			v, f := m.space.Load(addr, in.Size)
			if f != nil {
				epilogue()
				return 0, rt.PtrMeta{}, &abort{fault: f}
			}
			regs[in.Dst] = v
		case prog.OpStore:
			addr := (regs[in.A] & mask) + uint64(in.Off)
			if f := m.space.Store(addr, in.Size, regs[in.B]); f != nil {
				epilogue()
				return 0, rt.PtrMeta{}, &abort{fault: f}
			}
		case prog.OpGEP:
			v := regs[in.A] + uint64(in.Off)
			if in.B != prog.NoReg {
				v += regs[in.B] * uint64(in.Imm)
			}
			regs[in.Dst] = v
			if metas != nil {
				metas[in.Dst] = metas[in.A]
			}
		case prog.OpGlobalAddr:
			regs[in.Dst] = m.globalPtr[in.Sym]
			if metas != nil {
				metas[in.Dst] = m.globalMeta[in.Sym]
			}
		case prog.OpCall:
			callee, ok := m.program.Funcs[in.Sym]
			if !ok {
				epilogue()
				return 0, rt.PtrMeta{}, &abort{err: fmt.Errorf("interp: undefined function %q", in.Sym)}
			}
			cargs := make([]uint64, len(in.Args))
			var cmetas []rt.PtrMeta
			if metas != nil {
				cmetas = make([]rt.PtrMeta, len(in.Args))
			}
			for i, a := range in.Args {
				cargs[i] = regs[a]
				if cmetas != nil {
					cmetas[i] = metas[a]
				}
			}
			ret, rmeta, ab := th.call(callee, cargs, cmetas, depth+1)
			if ab != nil {
				epilogue()
				return 0, rt.PtrMeta{}, ab
			}
			regs[in.Dst] = ret
			if metas != nil {
				metas[in.Dst] = rmeta
			}
		case prog.OpCallExternal:
			ret, ab := th.callExternal(in, regs, metas, fn.Name, pc)
			if ab != nil {
				epilogue()
				return 0, rt.PtrMeta{}, ab
			}
			regs[in.Dst] = ret
			th.local.ExternCalls++
		case prog.OpLibc:
			ret, ab := th.libcCall(in, regs, metas, fn.Name, pc)
			if ab != nil {
				epilogue()
				return 0, rt.PtrMeta{}, ab
			}
			regs[in.Dst] = ret
			th.local.LibcCalls++
		case prog.OpParFor:
			if ab := th.parFor(in, regs, depth); ab != nil {
				epilogue()
				return 0, rt.PtrMeta{}, ab
			}
		case prog.OpRet:
			var v uint64
			var rmeta rt.PtrMeta
			if in.A != prog.NoReg {
				v = regs[in.A]
				if metas != nil {
					rmeta = metas[in.A]
				}
			}
			th.local.Instructions += steps
			epilogue()
			return v, rmeta, nil
		case prog.OpCheckAccess:
			kind := rt.Read
			if in.Has(prog.FlagWrite) {
				kind = rt.Write
			}
			var meta rt.PtrMeta
			if metas != nil {
				meta = metas[in.A]
			}
			size := in.Size
			if in.B != prog.NoReg {
				size = int64(regs[in.B])
			}
			th.local.ChecksExecuted++
			var v *rt.Violation
			if obsv := m.opts.CheckObserver; obsv != nil {
				t0 := time.Now()
				v = run.Check(regs[in.A], meta, in.Off, size, kind)
				obsv.ObserveCheck(fn.Name, pc, size, time.Since(t0))
			} else {
				v = run.Check(regs[in.A], meta, in.Off, size, kind)
			}
			if v != nil {
				epilogue()
				return 0, rt.PtrMeta{}, th.report(v, fn.Name, pc)
			}
			// Fused superinstruction: execute the guarded access in the same
			// dispatch. Semantics, PCs and step accounting are identical to
			// the unfused pair — the access instruction is executed verbatim
			// and counted as its own step.
			if fn.Fused != nil && fn.Fused[pc] != prog.FuseNone {
				nin := &code[pc+1]
				steps++
				addr := (regs[nin.A] & mask) + uint64(nin.Off)
				if fn.Fused[pc] == prog.FuseLoad {
					v, f := m.space.Load(addr, nin.Size)
					if f != nil {
						epilogue()
						return 0, rt.PtrMeta{}, &abort{fault: f}
					}
					regs[nin.Dst] = v
				} else {
					if f := m.space.Store(addr, nin.Size, regs[nin.B]); f != nil {
						epilogue()
						return 0, rt.PtrMeta{}, &abort{fault: f}
					}
				}
				pc += 2
				continue
			}
		case prog.OpCheckPeriodic:
			// Grouped monotonic check (§II.F.1, Figure 4a): fire every
			// check_step-th iteration, widened to cover the elements until
			// the next firing, clamped at the loop limit.
			iv := int64(regs[in.Args[1]])
			modulus := in.Off
			if (iv-in.Imm)%modulus == 0 {
				step := int64(in.X)
				limit := int64(regs[in.Args[2]])
				elems := (limit - iv + step - 1) / step
				if ceiling := modulus / step; elems > ceiling {
					elems = ceiling
				}
				if elems > 0 {
					kind := rt.Read
					if in.Has(prog.FlagWrite) {
						kind = rt.Write
					}
					var meta rt.PtrMeta
					if metas != nil {
						meta = metas[in.Args[0]]
					}
					th.local.ChecksExecuted++
					var v *rt.Violation
					if obsv := m.opts.CheckObserver; obsv != nil {
						t0 := time.Now()
						v = run.Check(regs[in.Args[0]], meta, 0, elems*in.Size, kind)
						obsv.ObserveCheck(fn.Name, pc, elems*in.Size, time.Since(t0))
					} else {
						v = run.Check(regs[in.Args[0]], meta, 0, elems*in.Size, kind)
					}
					if v != nil {
						epilogue()
						return 0, rt.PtrMeta{}, th.report(v, fn.Name, pc)
					}
				}
			}
		case prog.OpSubPtr:
			ptr, meta := run.SubPtr(regs[in.A], in.Off, in.Size)
			regs[in.Dst] = ptr
			if metas != nil {
				metas[in.Dst] = meta
			}
			th.local.SubPtrOps++
		case prog.OpSubRelease:
			run.SubRelease(regs[in.A])
			th.local.SubPtrOps++
		case prog.OpStripPtr:
			raw, v := run.PrepareExternArg(regs[in.A])
			if v != nil {
				epilogue()
				return 0, rt.PtrMeta{}, th.report(v, fn.Name, pc)
			}
			regs[in.Dst] = raw
		case prog.OpRetagPtr:
			regs[in.Dst] = (regs[in.A] & mask) | (regs[in.B] &^ mask)
		case prog.OpPtrMetaCopy:
			if metas != nil {
				metas[in.Dst] = metas[in.A]
				th.local.MetaOps++
			}
		case prog.OpPtrMetaLoad:
			if metas != nil {
				addr := (regs[in.A] & mask) + uint64(in.Off)
				metas[in.Dst] = run.LoadPtrMeta(addr)
				th.local.MetaOps++
			}
		case prog.OpPtrMetaStore:
			if metas != nil {
				addr := (regs[in.A] & mask) + uint64(in.Off)
				run.StorePtrMeta(addr, metas[in.B])
				th.local.MetaOps++
			}
		default:
			epilogue()
			return 0, rt.PtrMeta{}, &abort{err: fmt.Errorf("interp: invalid opcode %v at %s@%d", in.Op, fn.Name, pc)}
		}
		pc++
	}
	// Fell off the end (validator prevents this for authored programs).
	th.local.Instructions += steps
	epilogue()
	return 0, rt.PtrMeta{}, nil
}

// errAbortedElsewhere stops sibling threads after another thread reported.
var errAbortedElsewhere = fmt.Errorf("interp: aborted by violation on another thread")

// abortCause builds the abort for a thread that observed the machine's
// aborted flag: the externally supplied Interrupt cause when there is one,
// the generic cross-thread error otherwise.
func (th *thread) abortCause() *abort {
	if c := th.m.interrupted.Load(); c != nil {
		return &abort{err: c.err}
	}
	return &abort{err: errAbortedElsewhere}
}

// report finalizes a violation with its code location and flips the global
// abort flag so parallel regions stop.
func (th *thread) report(v *rt.Violation, fnName string, pc int) *abort {
	v.Func = fnName
	v.PC = pc
	th.m.aborted.Store(true)
	return &abort{violation: v}
}

// parFor runs in.Sym over [lo,hi) partitioned across in.Imm OS-level
// workers — the OpenMP analogue used by the SPEC CPU2017 workloads.
func (th *thread) parFor(in *prog.Instr, regs []uint64, depth int) *abort {
	m := th.m
	lo := int64(regs[in.A])
	hi := int64(regs[in.B])
	workers := int(in.Imm)
	if hi <= lo {
		return nil
	}
	fn, ok := m.program.Funcs[in.Sym]
	if !ok {
		return &abort{err: fmt.Errorf("interp: undefined parfor body %q", in.Sym)}
	}
	if workers < 1 {
		workers = 1
	}
	span := hi - lo
	if int64(workers) > span {
		workers = int(span)
	}
	chunk := span / int64(workers)

	aborts := make([]*abort, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := lo + int64(w)*chunk
		end := start + chunk
		if w == workers-1 {
			end = hi
		}
		wg.Add(1)
		go func(w int, start, end int64) {
			defer wg.Done()
			// A panic on a worker goroutine would kill the whole process
			// (recover in the engine can't cross goroutines), so each worker
			// converts its own panic into an abort and stops the region.
			defer func() {
				if v := recover(); v != nil {
					aborts[w] = &abort{err: &PanicError{
						Value: fmt.Sprint(v),
						Stack: string(debug.Stack()),
					}}
					m.aborted.Store(true)
				}
			}()
			stack, err := alloc.NewStack(w + 1)
			if err != nil {
				aborts[w] = &abort{err: err}
				return
			}
			wt := &thread{m: m, stack: stack, budget: th.budget}
			defer wt.flushStats()
			for i := start; i < end; i++ {
				if m.aborted.Load() {
					return
				}
				var am []rt.PtrMeta
				if m.trackMeta {
					am = []rt.PtrMeta{{}}
				}
				if _, _, ab := wt.call(fn, []uint64{uint64(i)}, am, depth+1); ab != nil {
					if ab.err != errAbortedElsewhere {
						aborts[w] = ab
					}
					return
				}
			}
		}(w, start, end)
	}
	wg.Wait()
	for _, ab := range aborts {
		if ab != nil {
			return ab
		}
	}
	return nil
}
