package engine

import (
	"testing"

	"cecsan/internal/obs"
	"cecsan/internal/sanitizers"
)

// TestStatsWallConcurrent pins the wall-clock snapshot race fix: Stats()
// reading first-start/last-end while runs are in flight must neither race
// (caught under -race) nor ever observe a torn span (an end before the
// start).
func TestStatsWallConcurrent(t *testing.T) {
	suite := sampleSuite(t, 1)
	eng, err := New(sanitizers.CECSan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := eng.Stats()
			if s.Wall < 0 {
				t.Error("Stats observed a negative wall span")
				return
			}
		}
	}()
	err = eng.ForEach(len(suite), func(i int) error {
		_, rerr := eng.Run(suite[i].Bad, suite[i].BadInputs...)
		return rerr
	})
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if s := eng.Stats(); s.Runs == 0 || s.Wall <= 0 {
		t.Fatalf("stats after campaign: %+v", s)
	}
}

// TestEngineObs drives a small suite through an engine with every
// observability facility on and checks the plumbing end to end: the site
// profiler attributes every executed check (the two check opcodes plus the
// libc entry check are the only ChecksExecuted increments, so attribution
// is exactly 100%), the
// per-run histograms count every run, the tracer holds execute spans, and
// the registry gauges mirror engine stats.
func TestEngineObs(t *testing.T) {
	o := obs.New()
	o.Tracer = obs.NewTracer()
	o.Sites = obs.NewSiteProfiler()
	suite := sampleSuite(t, 2)
	eng, err := New(sanitizers.CECSan, Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	var checks int64
	for _, cs := range suite {
		res, rerr := eng.Run(cs.Bad, cs.BadInputs...)
		if rerr != nil {
			t.Fatal(rerr)
		}
		checks += res.Stats.ChecksExecuted
	}
	if checks == 0 {
		t.Fatal("suite executed no checks; the attribution test is vacuous")
	}
	if fires := o.Sites.TotalFires(); fires != checks {
		t.Fatalf("site profiler attributed %d fires, ChecksExecuted total is %d", fires, checks)
	}

	s := eng.Stats()
	h := o.Registry.Histogram("engine_run_duration_us", obs.L("tool", "CECSan"))
	if h.Count() != s.Runs {
		t.Fatalf("run-duration histogram has %d observations, engine ran %d", h.Count(), s.Runs)
	}
	hc := o.Registry.Histogram("engine_run_checks", obs.L("tool", "CECSan"))
	if hc.Sum() != checks {
		t.Fatalf("run-checks histogram sums to %d, want %d", hc.Sum(), checks)
	}

	var execs, resets int
	for _, sp := range o.Tracer.Spans() {
		switch sp.Name {
		case "execute CECSan":
			execs++
		case "reset CECSan":
			resets++
		}
	}
	if int64(execs) != s.Runs {
		t.Fatalf("tracer holds %d execute spans, engine ran %d", execs, s.Runs)
	}
	if resets == 0 {
		t.Fatal("tracer holds no reset spans")
	}

	if v, ok := o.Registry.Value("engine_runs_total", obs.L("tool", "CECSan")); !ok || int64(v) != s.Runs {
		t.Fatalf("engine_runs_total gauge = %v, %v; want %d", v, ok, s.Runs)
	}
}

// TestGaugeReregistration pins the rebuilt-engine behaviour: a second engine
// for the same tool takes over the gauge series instead of panicking or
// leaving the series pointed at the dead engine.
func TestGaugeReregistration(t *testing.T) {
	o := obs.New()
	if _, err := New(sanitizers.CECSan, Options{Obs: o}); err != nil {
		t.Fatal(err)
	}
	eng2, err := New(sanitizers.CECSan, Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	suite := sampleSuite(t, 1)
	if _, err := eng2.Run(suite[0].Bad, suite[0].BadInputs...); err != nil {
		t.Fatal(err)
	}
	if v, ok := o.Registry.Value("engine_runs_total", obs.L("tool", "CECSan")); !ok || v != 1 {
		t.Fatalf("engine_runs_total = %v, %v; want 1 (series must follow the newest engine)", v, ok)
	}
}
