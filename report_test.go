package cecsan

import (
	"strings"
	"testing"

	"cecsan/prog"
)

func TestFormatReportHeapOverflow(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	buf := f.MallocBytes(24)
	n := f.Libc("rand")
	off := f.Add(f.Bin(prog.BinAnd, n, f.Const(0)), f.Const(24))
	f.Store(f.OffsetPtrReg(buf, off), 0, f.Const(1), prog.Char())
	f.RetVoid()
	p := pb.MustBuild()

	m, err := NewMachine(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Violation == nil {
		t.Fatal("expected violation")
	}
	out := FormatReport(res.Violation, m)
	for _, want := range []string{
		"==CECSAN== ERROR: buffer-overflow-write",
		"WRITE of 1 byte(s)",
		"heap",
		"metadata entry",
		"object of 24 bytes",
		"+24 bytes from the object base",
		"Algorithm 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFormatReportSubObject(t *testing.T) {
	st := prog.StructOf("S",
		prog.FieldSpec{Name: "buf", Type: prog.ArrayOf(prog.Char(), 8)},
		prog.FieldSpec{Name: "n", Type: prog.Int64T()},
	)
	pb := prog.NewProgram()
	pb.GlobalBytes("src", make([]byte, 16))
	f := pb.Function("main", 0)
	obj := f.MallocType(st)
	f.Libc("memcpy", f.FieldPtr(obj, st, "buf"), f.GlobalAddr("src"), f.Const(16))
	f.RetVoid()
	m, err := NewMachine(pb.MustBuild(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Violation == nil {
		t.Fatal("expected violation")
	}
	out := FormatReport(res.Violation, m)
	if !strings.Contains(out, "sub-object-overflow") || !strings.Contains(out, "member boundary") {
		t.Errorf("sub-object report incomplete:\n%s", out)
	}
}

func TestFormatReportNilAndForeign(t *testing.T) {
	if got := FormatReport(nil, nil); !strings.Contains(got, "no violation") {
		t.Fatalf("nil report = %q", got)
	}
	// A violation without a machine (e.g. from another sanitizer).
	res, err := Run(func() *prog.Program {
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		b := f.MallocBytes(8)
		f.Free(b)
		f.Free(b)
		f.RetVoid()
		return pb.MustBuild()
	}(), Config{Sanitizer: ASan})
	if err != nil || res.Violation == nil {
		t.Fatalf("setup: %v %+v", err, res)
	}
	out := FormatReport(res.Violation, nil)
	if !strings.Contains(out, "double-free") {
		t.Errorf("foreign report incomplete:\n%s", out)
	}
}
