package engine

import (
	"sync"
	"testing"

	"cecsan/internal/sanitizers"
	"cecsan/prog"
)

// distinctPrograms flattens a sample suite into its program list and counts
// the distinct fingerprints (structurally identical cases can collide; the
// single-flight assertions key on fingerprints, not cases).
func distinctPrograms(t *testing.T, perCWE int) ([]*prog.Program, int) {
	t.Helper()
	var progs []*prog.Program
	for _, cs := range sampleSuite(t, perCWE) {
		progs = append(progs, cs.Bad, cs.Good)
	}
	fps := make(map[prog.Fingerprint]bool)
	for _, p := range progs {
		fps[p.Fingerprint()] = true
	}
	return progs, len(fps)
}

// TestCacheSingleFlight hammers one shared cache from many goroutines and
// asserts the single-flight invariant: no matter the worker count, each
// distinct fingerprint is instrumented exactly once (one counted miss), every
// other request is a hit on the interned entry, and all requests for a
// fingerprint observe the same instrumented program pointer. Run under
// -race this also proves the shard locking: the once bodies execute outside
// the shard mutex, so concurrent fills of different fingerprints do not
// serialize or tear.
func TestCacheSingleFlight(t *testing.T) {
	progs, distinct := distinctPrograms(t, 3)
	eng, err := New(sanitizers.CECSan, Options{Cache: NewCache(0)})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const rounds = 4
	results := make([][]*prog.Program, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = make([]*prog.Program, len(progs))
			for r := 0; r < rounds; r++ {
				for i, p := range progs {
					results[w][i] = eng.Instrument(p)
				}
			}
		}(w)
	}
	wg.Wait()

	for w := 1; w < workers; w++ {
		for i := range progs {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d got a different instrumented program for progs[%d]; cache entries must be interned", w, i)
			}
		}
	}
	s := eng.Stats()
	if s.CacheMisses != int64(distinct) {
		t.Errorf("CacheMisses = %d, want exactly one per distinct fingerprint (%d): single-flight broken", s.CacheMisses, distinct)
	}
	total := int64(workers * rounds * len(progs))
	if s.CacheHits != total-s.CacheMisses {
		t.Errorf("CacheHits = %d, want %d (every non-filling request counts as a hit)", s.CacheHits, total-s.CacheMisses)
	}
	if s.CacheOverflows != 0 {
		t.Errorf("CacheOverflows = %d, want 0 at default capacity", s.CacheOverflows)
	}
}

// TestCacheOverflowGraceful fills a deliberately tiny cache far past
// capacity from concurrent workers. Exhaustion must degrade, not fail:
// every request still returns an instrumented program (inline, uncached),
// overflows are counted, and the per-shard maps never exceed their bound.
func TestCacheOverflowGraceful(t *testing.T) {
	progs, _ := distinctPrograms(t, 3)
	cache := NewCache(cacheShardCount) // one entry per shard
	eng, err := New(sanitizers.CECSan, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, p := range progs {
				ip := eng.Instrument(p)
				if ip == nil || ip == p {
					t.Error("overflowing Instrument must still return a fresh instrumented program")
					return
				}
			}
		}()
	}
	wg.Wait()

	if n := cache.Len(); n > cacheShardCount {
		t.Errorf("cache holds %d entries, capacity bound is %d", n, cacheShardCount)
	}
	s := eng.Stats()
	if s.CacheOverflows == 0 {
		t.Error("expected counted overflows when the cache is past capacity")
	}
	if got := s.CacheHits + s.CacheMisses; got != int64(8*len(progs)) {
		t.Errorf("hits+misses = %d, want %d: every request must land in exactly one per-request bucket", got, 8*len(progs))
	}
}

// TestCachePrefillAccounting pins the satellite-6 contract: Preinstrument
// warms the cache without touching the hit/miss counters (prefills are
// tracked separately), so CacheHitRate keeps measuring the run path alone
// and stays comparable with records produced before pre-instrumentation
// existed.
func TestCachePrefillAccounting(t *testing.T) {
	progs, distinct := distinctPrograms(t, 2)
	eng, err := New(sanitizers.CECSan, Options{Cache: NewCache(0), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	eng.Preinstrument(progs)
	s := eng.Stats()
	if s.CachePrefills != int64(len(progs)) {
		t.Errorf("CachePrefills = %d, want %d", s.CachePrefills, len(progs))
	}
	if s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Errorf("prefill touched the run-path counters: hits=%d misses=%d, want 0/0", s.CacheHits, s.CacheMisses)
	}

	for _, p := range progs {
		eng.Instrument(p)
	}
	s = eng.Stats()
	if s.CacheMisses != 0 {
		t.Errorf("CacheMisses = %d after a full prefill, want 0", s.CacheMisses)
	}
	if s.CacheHits != int64(len(progs)) {
		t.Errorf("CacheHits = %d, want %d", s.CacheHits, len(progs))
	}
	if r := s.CacheHitRate(); r != 1.0 {
		t.Errorf("CacheHitRate = %v, want 1.0 on a fully warmed run path", r)
	}
	if eng.cache.Len() != distinct {
		t.Errorf("cache.Len() = %d, want %d distinct fingerprints", eng.cache.Len(), distinct)
	}
}
