package flaws

import (
	"errors"
	"testing"

	"cecsan/internal/instrument"
	"cecsan/internal/interp"
	"cecsan/internal/sanitizers"
)

// runFlaw executes one scenario variant under the named sanitizer and
// reports whether it was detected. Stack exhaustion (the machine's call
// depth or stack limit) counts as an observable crash, which is how
// sanitizers surface CVE-2018-9138-style stack overflows.
func runFlaw(t *testing.T, fl Flaw, patched bool, name sanitizers.Name) bool {
	t.Helper()
	p, inputs := fl.Build(patched)
	san, err := sanitizers.New(name)
	if err != nil {
		t.Fatalf("sanitizers.New: %v", err)
	}
	ip := instrument.Apply(p, san.Profile)
	m, err := interp.New(ip, san, interp.DefaultOptions())
	if err != nil {
		t.Fatalf("interp.New: %v", err)
	}
	for _, in := range inputs {
		m.Feed(in)
	}
	res := m.Run()
	if res.Violation != nil || res.Fault != nil {
		return true
	}
	if errors.Is(res.Err, interp.ErrCallDepth) {
		return true // stack exhaustion crash
	}
	if res.Err != nil {
		t.Fatalf("%s (patched=%v) under %s: unexpected error %v", fl.CVE, patched, name, res.Err)
	}
	return false
}

func TestValidate(t *testing.T) {
	if err := Validate(All()); err != nil {
		t.Fatal(err)
	}
}

// TestTable3AllDetectedByCECSan reproduces Table III: CECSan detects all
// ten CVEs.
func TestTable3AllDetectedByCECSan(t *testing.T) {
	for _, fl := range All() {
		fl := fl
		t.Run(fl.CVE, func(t *testing.T) {
			if !runFlaw(t, fl, false, sanitizers.CECSan) {
				t.Errorf("%s (%s) not detected by CECSan", fl.CVE, fl.Type)
			}
		})
	}
}

// TestPatchedVariantsAreClean guards against scenarios that would trip any
// sanitizer even when fixed.
func TestPatchedVariantsAreClean(t *testing.T) {
	for _, fl := range All() {
		fl := fl
		t.Run(fl.CVE, func(t *testing.T) {
			if runFlaw(t, fl, true, sanitizers.CECSan) {
				t.Errorf("%s: patched variant still reported by CECSan", fl.CVE)
			}
			if runFlaw(t, fl, true, sanitizers.ASan) {
				t.Errorf("%s: patched variant reported by ASan", fl.CVE)
			}
		})
	}
}

// TestVulnerableVariantsUnderNative documents that without a sanitizer the
// bugs corrupt silently (or crash the machine), never reporting.
func TestVulnerableVariantsUnderNative(t *testing.T) {
	for _, fl := range All() {
		p, inputs := fl.Build(false)
		san, _ := sanitizers.New(sanitizers.Native)
		ip := instrument.Apply(p, san.Profile)
		m, err := interp.New(ip, san, interp.DefaultOptions())
		if err != nil {
			t.Fatalf("interp.New: %v", err)
		}
		for _, in := range inputs {
			m.Feed(in)
		}
		res := m.Run()
		if res.Violation != nil {
			t.Errorf("%s: native run produced a sanitizer report", fl.CVE)
		}
	}
}
