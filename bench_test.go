// Root benchmark harness: one benchmark per table and figure of the
// paper's evaluation (see DESIGN.md's experiment index). Sub-benchmarks
// carry the row/series structure, so
//
//	go test -bench 'Table4' -benchtime=1x
//
// prints one wall-time line per (workload, sanitizer) cell of Table IV.
// The cmd/julietbench, cmd/flawbench and cmd/specbench binaries print the
// fully formatted tables, including the derived overhead percentages.
package cecsan_test

import (
	"errors"
	"fmt"
	"testing"

	"cecsan/internal/alloc"
	"cecsan/internal/core"
	"cecsan/internal/flaws"
	"cecsan/internal/harness"
	"cecsan/internal/instrument"
	"cecsan/internal/interp"
	"cecsan/internal/juliet"
	"cecsan/internal/mem"
	"cecsan/internal/rt"
	"cecsan/internal/sanitizers"
	"cecsan/internal/specsim"
	"cecsan/internal/tagptr"
)

// BenchmarkTable1JulietGeneration measures generating the Table I suite
// (scaled: 1/20th of each CWE per iteration).
func BenchmarkTable1JulietGeneration(b *testing.B) {
	counts := juliet.TableI()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, cwe := range juliet.AllCWEs() {
			cases, err := juliet.Generate(cwe, counts[cwe]/20)
			if err != nil {
				b.Fatal(err)
			}
			total += len(cases)
		}
		b.ReportMetric(float64(total), "cases")
	}
}

// BenchmarkTable2DetectionRates evaluates a scaled Table II per tool and
// reports the overall detection rate as a metric.
func BenchmarkTable2DetectionRates(b *testing.B) {
	var suite []*juliet.Case
	for _, cwe := range juliet.AllCWEs() {
		cases, err := juliet.Generate(cwe, 24)
		if err != nil {
			b.Fatal(err)
		}
		suite = append(suite, cases...)
	}
	tools := []sanitizers.Name{
		sanitizers.CECSan, sanitizers.PACMem, sanitizers.CryptSan,
		sanitizers.HWASan, sanitizers.ASan, sanitizers.SoftBound,
	}
	for _, tool := range tools {
		tool := tool
		b.Run(string(tool), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval, err := harness.EvaluateJuliet(suite, []sanitizers.Name{tool}, 0)
				if err != nil {
					b.Fatal(err)
				}
				var det, total int
				for _, s := range eval.Tools[0].PerCWE {
					det += s.Detected + s.Crashed
					total += s.Total
				}
				b.ReportMetric(100*float64(det)/float64(total), "detect%")
			}
		})
	}
}

// BenchmarkTable3LinuxFlaws runs the ten CVE scenarios under CECSan,
// reporting the detection count.
func BenchmarkTable3LinuxFlaws(b *testing.B) {
	list := flaws.All()
	for i := 0; i < b.N; i++ {
		detected := 0
		for _, fl := range list {
			p, inputs := fl.Build(false)
			san, err := sanitizers.New(sanitizers.CECSan)
			if err != nil {
				b.Fatal(err)
			}
			ip := instrument.Apply(p, san.Profile)
			m, err := interp.New(ip, san, interp.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			for _, in := range inputs {
				m.Feed(in)
			}
			res := m.Run()
			if res.Violation != nil || res.Fault != nil || errors.Is(res.Err, interp.ErrCallDepth) {
				detected++
			}
		}
		if detected != len(list) {
			b.Fatalf("detected %d of %d CVEs", detected, len(list))
		}
		b.ReportMetric(float64(detected), "CVEs")
	}
}

// benchWorkloads runs each (workload, sanitizer) cell as a sub-benchmark:
// the ns/op column is the cell of Table IV/V before overhead division.
func benchWorkloads(b *testing.B, ws []specsim.Workload) {
	tools := []sanitizers.Name{sanitizers.Native, sanitizers.ASan, sanitizers.ASanLite, sanitizers.CECSan}
	for _, w := range ws {
		for _, tool := range tools {
			w, tool := w, tool
			b.Run(fmt.Sprintf("%s/%s", w.Name, tool), func(b *testing.B) {
				p := w.Build()
				san, err := sanitizers.New(tool)
				if err != nil {
					b.Fatal(err)
				}
				ip := instrument.Apply(p, san.Profile)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					san, err := sanitizers.New(tool)
					if err != nil {
						b.Fatal(err)
					}
					m, err := interp.New(ip, san, interp.DefaultOptions())
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					res := m.Run()
					if !res.Ok() {
						b.Fatalf("%+v", res)
					}
					b.ReportMetric(float64(res.Stats.PeakRSS), "rss-bytes")
					b.ReportMetric(float64(res.Stats.ChecksExecuted), "checks")
				}
			})
		}
	}
}

// BenchmarkTable4Spec2006 regenerates the Table IV cells (smoke scale; use
// cmd/specbench -suite 2006 for the full-scale table).
func BenchmarkTable4Spec2006(b *testing.B) {
	benchWorkloads(b, specsim.Smoke()[:8])
}

// BenchmarkTable5Spec2017 regenerates the Table V cells at smoke scale,
// including the parallel (OpenMP-analogue) workloads.
func BenchmarkTable5Spec2017(b *testing.B) {
	benchWorkloads(b, specsim.Smoke()[8:])
}

// BenchmarkFigure4Ablation measures CECSan's §II.F optimizations one by
// one on the monotonic-sweep workload (462.libquantum's pattern).
func BenchmarkFigure4Ablation(b *testing.B) {
	w, ok := specsim.ByName("smoke.libquantum")
	if !ok {
		// Smoke() names are resolvable only through the slice.
		for _, sw := range specsim.Smoke() {
			if sw.Name == "smoke.libquantum" {
				w, ok = sw, true
			}
		}
	}
	if !ok {
		b.Fatal("smoke.libquantum not found")
	}
	p := w.Build()

	configs := map[string]func(*core.Options){
		"all-on":       func(*core.Options) {},
		"no-monotonic": func(o *core.Options) { o.OptMonotonic = false },
		"no-loopinv":   func(o *core.Options) { o.OptLoopInvariant = false },
		"no-typebased": func(o *core.Options) { o.OptTypeBased = false },
		"no-redundant": func(o *core.Options) { o.OptRedundant = false },
		"no-subobject": func(o *core.Options) { o.SubObject = false },
		"all-off": func(o *core.Options) {
			o.OptMonotonic, o.OptLoopInvariant, o.OptTypeBased, o.OptRedundant = false, false, false, false
		},
	}
	for name, tweak := range configs {
		name, tweak := name, tweak
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions()
			tweak(&opts)
			san, err := core.Sanitizer(opts)
			if err != nil {
				b.Fatal(err)
			}
			ip := instrument.Apply(p, san.Profile)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				san, err := core.Sanitizer(opts)
				if err != nil {
					b.Fatal(err)
				}
				m, err := interp.New(ip, san, interp.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res := m.Run()
				if !res.Ok() {
					b.Fatalf("%+v", res)
				}
				b.ReportMetric(float64(res.Stats.ChecksExecuted), "checks")
			}
		})
	}
}

// BenchmarkMetadataTable measures the §II.B table operations themselves:
// allocation with free-list reuse (Figure 2) and the Algorithm 1 check.
func BenchmarkMetadataTable(b *testing.B) {
	b.Run("alloc-free-churn", func(b *testing.B) {
		tbl, err := core.NewTable(tagptr.X8664)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx, ok := tbl.Allocate(0x1000, 0x1040, false)
			if !ok {
				b.Fatal("exhausted")
			}
			tbl.Free(idx)
		}
	})
	b.Run("algorithm1-check", func(b *testing.B) {
		r, err := core.New(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		env := newBenchEnv(b)
		if err := r.Attach(env); err != nil {
			b.Fatal(err)
		}
		p, _, err := r.Malloc(64)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if v := r.Check(p, rt.PtrMeta{}, int64(i&63), 1, rt.Read); v != nil {
				b.Fatal(v)
			}
		}
	})
}

// BenchmarkTableExhaustion measures the §V exhaustion fallback path.
func BenchmarkTableExhaustion(b *testing.B) {
	tbl, err := core.NewTable(tagptr.X8664)
	if err != nil {
		b.Fatal(err)
	}
	for {
		if _, ok := tbl.Allocate(0x1000, 0x1040, false); !ok {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tbl.Allocate(0x1000, 0x1040, false); ok {
			b.Fatal("not exhausted")
		}
	}
}

// newBenchEnv builds a standalone machine environment for white-box
// runtime benchmarks.
func newBenchEnv(b *testing.B) *rt.Env {
	b.Helper()
	space, err := mem.NewSpace(47)
	if err != nil {
		b.Fatal(err)
	}
	return &rt.Env{Space: space, Heap: alloc.NewHeap(), Globals: alloc.NewGlobals()}
}
