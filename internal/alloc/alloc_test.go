package alloc

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestSegmentOf(t *testing.T) {
	tests := []struct {
		name string
		addr uint64
		want Segment
	}{
		{name: "below everything", addr: 0x1000, want: SegNone},
		{name: "globals start", addr: GlobalsBase, want: SegGlobals},
		{name: "globals interior", addr: GlobalsBase + 100, want: SegGlobals},
		{name: "stack start", addr: StackBase, want: SegStack},
		{name: "heap start", addr: HeapBase, want: SegHeap},
		{name: "heap end is exclusive", addr: HeapLimit, want: SegNone},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SegmentOf(tt.addr); got != tt.want {
				t.Fatalf("SegmentOf(%#x) = %v, want %v", tt.addr, got, tt.want)
			}
		})
	}
}

func TestSegmentString(t *testing.T) {
	for seg, want := range map[Segment]string{
		SegGlobals: "global", SegStack: "stack", SegHeap: "heap", SegNone: "unmapped",
	} {
		if got := seg.String(); got != want {
			t.Errorf("Segment(%d).String() = %q, want %q", seg, got, want)
		}
	}
}

func TestHeapAllocAlignmentAndDisjointness(t *testing.T) {
	h := NewHeap()
	seen := make(map[uint64]int64)
	for _, size := range []int64{1, 15, 16, 17, 100, 4096, 1 << 20} {
		addr, err := h.Alloc(size)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", size, err)
		}
		if addr%Align != 0 {
			t.Errorf("Alloc(%d) = %#x, not %d-byte aligned", size, addr, Align)
		}
		if SegmentOf(addr) != SegHeap {
			t.Errorf("Alloc(%d) = %#x, outside heap segment", size, addr)
		}
		for base, sz := range seen {
			if addr < base+uint64(sz) && base < addr+uint64(size) {
				t.Errorf("chunk [%#x,+%d) overlaps live chunk [%#x,+%d)", addr, size, base, sz)
			}
		}
		seen[addr] = size
	}
}

func TestHeapFreeListReuseIsLIFO(t *testing.T) {
	h := NewHeap()
	a, _ := h.Alloc(64)
	b, _ := h.Alloc(64)
	h.Free(a)
	h.Free(b)
	// glibc-style immediate LIFO reuse: next same-size alloc returns b.
	c, _ := h.Alloc(64)
	if c != b {
		t.Errorf("expected LIFO reuse of %#x, got %#x", b, c)
	}
	d, _ := h.Alloc(64)
	if d != a {
		t.Errorf("expected second reuse of %#x, got %#x", a, d)
	}
}

func TestHeapFreeUndefinedBehaviourIsSilent(t *testing.T) {
	h := NewHeap()
	a, _ := h.Alloc(64)
	if ok := h.Free(a + 16); ok {
		t.Error("free of interior pointer reported success")
	}
	if ok := h.Free(a); !ok {
		t.Error("free of valid base failed")
	}
	if ok := h.Free(a); ok {
		t.Error("double free reported success")
	}
	if got := h.Stats().FreeErrors; got != 2 {
		t.Errorf("FreeErrors = %d, want 2", got)
	}
}

func TestHeapLookup(t *testing.T) {
	h := NewHeap()
	a, _ := h.Alloc(100)
	size, ok := h.Lookup(a)
	if !ok || size != 112 { // 100 rounded to 112
		t.Errorf("Lookup(%#x) = (%d,%v), want (112,true)", a, size, ok)
	}
	if _, ok := h.Lookup(a + 8); ok {
		t.Error("Lookup of interior pointer succeeded; want base addresses only")
	}
	h.Free(a)
	if _, ok := h.Lookup(a); ok {
		t.Error("Lookup of freed chunk succeeded")
	}
}

func TestHeapStats(t *testing.T) {
	h := NewHeap()
	a, _ := h.Alloc(32)
	b, _ := h.Alloc(32)
	s := h.Stats()
	if s.LiveCount != 2 || s.LiveBytes != 64 || s.AllocCount != 2 {
		t.Fatalf("stats after 2 allocs: %+v", s)
	}
	h.Free(a)
	h.Free(b)
	s = h.Stats()
	if s.LiveCount != 0 || s.LiveBytes != 0 {
		t.Fatalf("stats after frees: %+v", s)
	}
	if s.PeakLive != 64 {
		t.Fatalf("PeakLive = %d, want 64", s.PeakLive)
	}
}

func TestHeapConcurrentAllocFree(t *testing.T) {
	h := NewHeap()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []uint64
			for i := 0; i < 500; i++ {
				a, err := h.Alloc(int64(16 + i%256))
				if err != nil {
					t.Errorf("Alloc: %v", err)
					return
				}
				mine = append(mine, a)
				if len(mine) > 10 {
					h.Free(mine[0])
					mine = mine[1:]
				}
			}
			for _, a := range mine {
				h.Free(a)
			}
		}()
	}
	wg.Wait()
	if s := h.Stats(); s.LiveCount != 0 || s.FreeErrors != 0 {
		t.Fatalf("after concurrent churn: %+v", s)
	}
}

// TestHeapLiveChunksNeverOverlap property-checks the central allocator
// invariant under a random alloc/free interleaving.
func TestHeapLiveChunksNeverOverlap(t *testing.T) {
	prop := func(ops []uint16) bool {
		h := NewHeap()
		type chunk struct {
			base uint64
			size int64
		}
		var livest []chunk
		for _, op := range ops {
			if op%3 != 0 || len(livest) == 0 {
				size := int64(op%512) + 1
				a, err := h.Alloc(size)
				if err != nil {
					return false
				}
				for _, c := range livest {
					if a < c.base+uint64(roundUp(c.size)) && c.base < a+uint64(roundUp(size)) {
						return false
					}
				}
				livest = append(livest, chunk{a, size})
			} else {
				i := int(op) % len(livest)
				h.Free(livest[i].base)
				livest = append(livest[:i], livest[i+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStackFrames(t *testing.T) {
	s, err := NewStack(0)
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	outer := s.Mark()
	a, err := s.Alloc(100)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if a%Align != 0 || SegmentOf(a) != SegStack {
		t.Fatalf("stack alloc %#x misaligned or out of segment", a)
	}
	inner := s.Mark()
	b, _ := s.Alloc(64)
	if b < a+100 {
		t.Fatalf("inner alloca %#x overlaps outer %#x", b, a)
	}
	s.Release(inner)
	c, _ := s.Alloc(64)
	if c != b {
		t.Fatalf("frame release did not reuse stack space: got %#x want %#x", c, b)
	}
	s.Release(outer)
	if got := s.Mark(); got != outer {
		t.Fatalf("Mark after full release = %#x, want %#x", got, outer)
	}
	if s.PeakBytes() <= 0 {
		t.Fatal("PeakBytes not tracked")
	}
}

func TestStackOverflow(t *testing.T) {
	s, err := NewStack(0)
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	if _, err := s.Alloc(int64(ThreadStackSize) + 1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestThreadStacksAreDisjoint(t *testing.T) {
	s0, err := NewStack(0)
	if err != nil {
		t.Fatalf("NewStack(0): %v", err)
	}
	s1, err := NewStack(1)
	if err != nil {
		t.Fatalf("NewStack(1): %v", err)
	}
	a, _ := s0.Alloc(int64(ThreadStackSize) - Align)
	b, _ := s1.Alloc(16)
	if b < a+ThreadStackSize-Align && a < b+16 {
		t.Fatal("thread stacks overlap")
	}
	if _, err := NewStack(int((StackLimit - StackBase) / ThreadStackSize)); err == nil {
		t.Error("NewStack beyond region did not error")
	}
}

func TestGlobalsLayout(t *testing.T) {
	g := NewGlobals()
	a, err := g.Define("alpha", 100)
	if err != nil {
		t.Fatalf("Define: %v", err)
	}
	b, err := g.Define("beta", 8)
	if err != nil {
		t.Fatalf("Define: %v", err)
	}
	if a == b || b < a+100 {
		t.Fatalf("globals overlap: alpha=%#x beta=%#x", a, b)
	}
	if _, err := g.Define("alpha", 4); err == nil {
		t.Error("duplicate Define did not error")
	}
	def, ok := g.Lookup("alpha")
	if !ok || def.Addr != a || def.Size != 100 {
		t.Fatalf("Lookup(alpha) = %+v, %v", def, ok)
	}
	if got := len(g.All()); got != 2 {
		t.Fatalf("All() returned %d defs, want 2", got)
	}
	if g.TotalBytes() < 108 {
		t.Fatalf("TotalBytes = %d, want >= 108", g.TotalBytes())
	}
}

func TestHeapReset(t *testing.T) {
	h := NewHeap()
	first, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(128); err != nil {
		t.Fatal(err)
	}
	h.Free(first)
	h.Free(first) // double free: counted UB
	h.Reset()
	if st := h.Stats(); st != (Stats{}) {
		t.Errorf("Stats after Reset = %+v, want zero", st)
	}
	// Addresses repeat exactly: a reset heap is indistinguishable from new.
	again, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Errorf("first allocation after Reset = %#x, want %#x", again, first)
	}
}

func TestGlobalsReset(t *testing.T) {
	g := NewGlobals()
	a1, err := g.Define("x", 24)
	if err != nil {
		t.Fatal(err)
	}
	g.Reset()
	if _, ok := g.Lookup("x"); ok {
		t.Error("Lookup succeeds after Reset")
	}
	if got := g.TotalBytes(); got != 0 {
		t.Errorf("TotalBytes after Reset = %d, want 0", got)
	}
	// Redefining the same name is legal again and lands at the same address.
	a2, err := g.Define("x", 24)
	if err != nil {
		t.Fatalf("redefine after Reset: %v", err)
	}
	if a1 != a2 {
		t.Errorf("address after Reset = %#x, want %#x", a2, a1)
	}
}

func TestStackReset(t *testing.T) {
	s, err := NewStack(0)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if got := s.PeakBytes(); got != 0 {
		t.Errorf("PeakBytes after Reset = %d, want 0", got)
	}
	again, err := s.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Errorf("allocation after Reset = %#x, want %#x", again, first)
	}
}
