// Package cliutil holds the flag conventions shared by every cmd/ tool:
// the -workers/-max-steps/-max-depth knobs plumbed into the execution
// engine, the observability flag set (-metrics-json, -trace, -http,
// -profile-checks) backed by internal/obs, and the BENCH_*.json emission
// used by the benchmark commands.
package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"cecsan/internal/obs"
)

// RegisterWorkersFlag registers the shared -workers flag on fs: every tool
// exposes the same knob with the same meaning, plumbed into the engine
// scheduler.
func RegisterWorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
}

// WorkersFlag registers -workers on the process-global flag set.
func WorkersFlag() *int { return RegisterWorkersFlag(flag.CommandLine) }

// RegisterMaxStepsFlag registers the shared -max-steps flag on fs: the
// per-case executed instruction budget fed to engine.Options.
// MaxInstructions. Exhaustion is a classified harness fault, not a crash.
func RegisterMaxStepsFlag(fs *flag.FlagSet) *int64 {
	return fs.Int64("max-steps", 0, "per-case instruction budget (0 = interpreter default)")
}

// MaxStepsFlag registers -max-steps on the process-global flag set.
func MaxStepsFlag() *int64 { return RegisterMaxStepsFlag(flag.CommandLine) }

// RegisterMaxDepthFlag registers the shared -max-depth flag on fs: the
// per-case simulated call-depth limit fed to engine.Options.MaxCallDepth.
func RegisterMaxDepthFlag(fs *flag.FlagSet) *int {
	return fs.Int("max-depth", 0, "per-case call-depth limit (0 = interpreter default)")
}

// MaxDepthFlag registers -max-depth on the process-global flag set.
func MaxDepthFlag() *int { return RegisterMaxDepthFlag(flag.CommandLine) }

// RegisterSeedFlag registers the shared -seed flag on fs with the given
// default: the deterministic seed for program-visible rand() streams and
// RNG-bearing sanitizer runtimes.
func RegisterSeedFlag(fs *flag.FlagSet, def uint64, usage string) *uint64 {
	return fs.Uint64("seed", def, usage)
}

// SeedFlag registers -seed on the process-global flag set.
func SeedFlag(def uint64, usage string) *uint64 {
	return RegisterSeedFlag(flag.CommandLine, def, usage)
}

// RegisterJSONFlag registers the shared -json flag on fs: the path a
// benchmark command writes its machine-readable result to.
func RegisterJSONFlag(fs *flag.FlagSet, usage string) *string {
	return fs.String("json", "", usage)
}

// JSONFlag registers -json on the process-global flag set.
func JSONFlag(usage string) *string { return RegisterJSONFlag(flag.CommandLine, usage) }

// ResolveWorkers maps the flag value to a concrete worker count.
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// WriteJSON writes v, pretty-printed, to path. The write is atomic: a
// concurrent reader (CI collecting artifacts, a watcher tailing BENCH
// records) sees either the previous complete file or the new one, never a
// torn prefix, and a crash mid-write cannot destroy an existing record.
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return writeTo(path, func(w io.Writer) error {
		_, err := w.Write(append(data, '\n'))
		return err
	})
}

// ObsFlags is the shared observability flag set. Every cmd/ tool registers
// the same four flags with the same meaning; Build turns them into an
// attached Observer and Finish writes the requested exports at exit.
type ObsFlags struct {
	// MetricsJSON is -metrics-json: path for the final registry snapshot.
	MetricsJSON string
	// TracePath is -trace: path for the Chrome trace_event export.
	TracePath string
	// HTTPAddr is -http: listen address for the live introspection endpoint
	// (":0" picks a free port; the bound address is printed to stderr).
	HTTPAddr string
	// ProfileChecks is -profile-checks: per-(sanitizer, check site) fire
	// count and cost attribution, printed as a top-N table at exit.
	ProfileChecks bool
	// ProfileTop is -profile-top: how many sites the table shows.
	ProfileTop int
	// ProfileJSON is -profile-json: path for the machine-readable site
	// profile (implies -profile-checks). The file is the baseline input to
	// cecsan-run's -profile-diff ablation mode.
	ProfileJSON string
}

// RegisterObsFlags registers the shared observability flags on fs.
func RegisterObsFlags(fs *flag.FlagSet) *ObsFlags {
	f := &ObsFlags{}
	fs.StringVar(&f.MetricsJSON, "metrics-json", "", "write final metrics registry snapshot to this path")
	fs.StringVar(&f.TracePath, "trace", "", "write Chrome trace_event JSON (instrument/execute/reset spans) to this path")
	fs.StringVar(&f.HTTPAddr, "http", "", "serve live metric snapshots + pprof on this address (e.g. 127.0.0.1:0)")
	fs.BoolVar(&f.ProfileChecks, "profile-checks", false, "profile executed checks per (sanitizer, site); print the hottest sites at exit")
	fs.IntVar(&f.ProfileTop, "profile-top", 10, "rows in the -profile-checks table (0 = all)")
	fs.StringVar(&f.ProfileJSON, "profile-json", "", "write the full check-site profile as JSON to this path (implies -profile-checks)")
	return f
}

// ObsFlagsCmd registers the observability flags on the process-global flag
// set.
func ObsFlagsCmd() *ObsFlags { return RegisterObsFlags(flag.CommandLine) }

// Enabled reports whether any observability flag was set.
func (f *ObsFlags) Enabled() bool {
	return f.MetricsJSON != "" || f.TracePath != "" || f.HTTPAddr != "" || f.ProfileChecks || f.ProfileJSON != ""
}

// Build constructs the Observer the flags ask for and starts the live
// endpoint when -http was given (its bound address goes to stderr). Returns
// (nil, nil, nil) when no observability flag is set, so callers can pass the
// nil Observer straight into engine.Options.Obs.
func (f *ObsFlags) Build() (*obs.Observer, *obs.Server, error) {
	if !f.Enabled() {
		return nil, nil, nil
	}
	o := obs.New()
	if f.TracePath != "" {
		o.Tracer = obs.NewTracer()
	}
	if f.ProfileChecks || f.ProfileJSON != "" {
		o.Sites = obs.NewSiteProfiler()
	}
	var srv *obs.Server
	if f.HTTPAddr != "" {
		var err error
		srv, err = o.Serve(f.HTTPAddr)
		if err != nil {
			return nil, nil, fmt.Errorf("cliutil: -http: %w", err)
		}
		fmt.Fprintf(os.Stderr, "obs: serving metrics + pprof on http://%s\n", srv.Addr)
	}
	return o, srv, nil
}

// Finish writes the exports the flags requested — the -metrics-json
// snapshot, the -trace file, the -profile-checks table (attributed against
// totalChecks when positive) — and shuts the live endpoint down. Safe to
// call with a nil Observer (no flags set).
func (f *ObsFlags) Finish(o *obs.Observer, srv *obs.Server, totalChecks int64) error {
	if o == nil {
		return srv.Close()
	}
	var firstErr error
	if f.MetricsJSON != "" {
		if err := writeTo(f.MetricsJSON, o.Registry.WriteJSON); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if f.TracePath != "" && o.Tracer != nil {
		if err := writeTo(f.TracePath, o.Tracer.WriteJSON); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if f.ProfileChecks && o.Sites != nil {
		fmt.Println()
		o.Sites.FormatSites(os.Stdout, f.ProfileTop, totalChecks)
	}
	if f.ProfileJSON != "" && o.Sites != nil {
		if err := writeTo(f.ProfileJSON, o.Sites.WriteJSON); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := srv.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// WriteAtomic streams write into path atomically and durably — the
// exported form of writeTo, for artifact writers (flight recorder dumps,
// trace exports) living outside this package.
func WriteAtomic(path string, write func(w io.Writer) error) error {
	return writeTo(path, write)
}

// writeTo streams write into path atomically and durably: the content
// lands in a temporary file in the same directory (same filesystem, so the
// rename is atomic; the directory is created first if missing), is fsynced
// before the close, and replaces path only after a successful write — then
// the directory itself is fsynced so the rename survives a crash, not just
// the data. On any failure the temporary file is removed and the previous
// path contents are left untouched.
func writeTo(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fh, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := fh.Name()
	cleanup := func(err error) error {
		fh.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(fh); err != nil {
		return cleanup(err)
	}
	if err := fh.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := fh.Sync(); err != nil {
		return cleanup(err)
	}
	if err := fh.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
