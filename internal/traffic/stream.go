package traffic

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"time"

	"cecsan/internal/checkpoint"
	"cecsan/internal/sanitizers"
	"cecsan/prog"
)

// Request is one generated unit of traffic: a program to run under a
// sanitizer profile, stamped with its virtual arrival time, class and
// deadline. Requests carry everything a worker needs, so consumers can
// fan them out freely without touching generator state.
type Request struct {
	// Index is the request's position in the merged stream (0-based).
	Index int
	// Class is the client class ID from the spec.
	Class string
	// ClassIndex is the class's position in spec order.
	ClassIndex int
	// Tool is the sanitizer profile to run under.
	Tool sanitizers.Name
	// Arrival is the request's virtual arrival offset from campaign start.
	Arrival time.Duration
	// Deadline is the class latency SLO (0 = none).
	Deadline time.Duration
	// Variant is which of the class's program variants this request uses.
	Variant int
	// ProgSeed is the variant's generator seed.
	ProgSeed uint64
	// Program is the compiled program (shared across requests of the same
	// variant; programs are immutable once built).
	Program *prog.Program
	// Inputs are the recv payloads, if the variant consumes any.
	Inputs [][]byte
	// Source is the variant's csrc source.
	Source string
}

// Stream generates the merged request stream for a (spec, seed) pair.
//
// Determinism contract: the stream is a pure function of the spec content
// and the seed. Each client owns three independent splitmix64 streams
// derived from mix(spec seed, client index) — arrivals, variant picks and
// variant program seeds — and the per-client streams are merged by
// (virtual arrival time, spec order) with spec order breaking ties.
// Nothing consults wall clocks, worker counts or map iteration order, so
// two Streams with the same inputs yield byte-identical request sequences
// no matter how the consumer schedules them.
type Stream struct {
	spec  *Spec
	limit int
	count int

	clients []*clientState
	digest  hashState
}

// hashState accumulates the canonical per-request records that define
// stream identity (written by step).
type hashState struct{ h hash.Hash }

// clientState is one client's generator position in the merge.
type clientState struct {
	spec     *ClientSpec
	index    int
	arrivals *arrivalSampler
	picker   *rng
	variants []*Variant
	nextAt   time.Duration
}

// NewStream builds the generator. seedOverride, when nonzero, replaces
// the spec's seed (the cmd/serve -seed flag). Variant programs for every
// class are compiled up front; the error covers generator bugs only, not
// request execution.
func NewStream(spec *Spec, seedOverride uint64) (*Stream, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	seed := spec.Seed
	if seedOverride != 0 {
		seed = seedOverride
	}
	s := &Stream{spec: spec, limit: spec.MaxRequests, digest: hashState{h: sha256.New()}}
	for i := range spec.Clients {
		c := &spec.Clients[i]
		clientSeed := mix(seed, uint64(i)+1)
		cs := &clientState{
			spec:     c,
			index:    i,
			arrivals: newArrivalSampler(c.Arrival, spec.AggregateRate*c.RateFraction, mix(clientSeed, 1)),
			picker:   newRNG(mix(clientSeed, 2)),
		}
		for j := 0; j < c.Program.Variants; j++ {
			v, err := buildVariant(c.Program.Kind, mix(clientSeed, 3+uint64(j)))
			if err != nil {
				return nil, err
			}
			cs.variants = append(cs.variants, v)
		}
		cs.nextAt = cs.arrivals.next()
		s.clients = append(s.clients, cs)
	}
	return s, nil
}

// SetLimit overrides the spec's max_requests bound (0 = unbounded).
func (s *Stream) SetLimit(n int) { s.limit = n }

// Variants returns the compiled variant programs for class i, for
// engine warmup via Preinstrument.
func (s *Stream) Variants(i int) []*Variant { return s.clients[i].variants }

// Next returns the next request in virtual-time order, or nil when the
// stream's request bound is reached. Single-producer by design: the
// merge is a stateful k-way walk.
func (s *Stream) Next() *Request {
	if s.limit > 0 && s.count >= s.limit {
		return nil
	}
	index := s.count
	cs, vi, arrival := s.step()
	v := cs.variants[vi]
	return &Request{
		Index:      index,
		Class:      cs.spec.ID,
		ClassIndex: cs.index,
		Tool:       sanitizers.Name(cs.spec.Tool),
		Arrival:    arrival,
		Deadline:   time.Duration(cs.spec.DeadlineMS * float64(time.Millisecond)),
		Variant:    vi,
		ProgSeed:   v.Seed,
		Program:    v.Program,
		Inputs:     v.Inputs,
		Source:     v.Source,
	}
}

// Seek fast-forwards the generator past the next n requests without
// materializing them: every RNG draw, arrival advance and digest record
// happens exactly as in Next, so a seeked stream is indistinguishable
// from one that generated and discarded n requests. Returns how many
// requests were actually skipped (less than n when the stream's bound
// intervenes).
func (s *Stream) Seek(n int) int {
	skipped := 0
	for skipped < n {
		if s.limit > 0 && s.count >= s.limit {
			break
		}
		s.step()
		skipped++
	}
	return skipped
}

// step advances the merge by one request — picks the earliest client
// (spec order breaks ties), draws its variant, folds the canonical record
// into the running digest, and schedules the client's next arrival. The
// single mutation point shared by Next and Seek.
func (s *Stream) step() (cs *clientState, vi int, arrival time.Duration) {
	best := -1
	for i, c := range s.clients {
		if best < 0 || c.nextAt < s.clients[best].nextAt {
			best = i
		}
	}
	cs = s.clients[best]
	vi = cs.picker.intn(len(cs.variants))
	v := cs.variants[vi]
	arrival = cs.nextAt
	deadline := time.Duration(cs.spec.DeadlineMS * float64(time.Millisecond))
	fmt.Fprintf(s.digest.h, "%d|%s|%d|%d|%s|%d|%d|%s\n",
		s.count, cs.spec.ID, arrival.Nanoseconds(), deadline.Nanoseconds(),
		cs.spec.Tool, vi, v.Seed, v.Program.Fingerprint())
	cs.nextAt += cs.arrivals.next()
	s.count++
	return cs, vi, arrival
}

// Count returns how many requests have been generated so far.
func (s *Stream) Count() int { return s.count }

// Digest returns the hex SHA-256 over the canonical records of every
// request generated so far — the byte-determinism witness two runs (or
// two worker counts) can compare.
func (s *Stream) Digest() string {
	return hex.EncodeToString(s.digest.h.Sum(nil))
}

// StreamState is the generator's full serializable position: the merged
// count, the running digest's internal state, and each client's RNG
// cursors. Restoring it into a fresh Stream over the same (spec, seed)
// resumes generation exactly where the capture left off — byte-identical
// requests and final digest.
type StreamState struct {
	Count   int                 `json:"count"`
	Digest  []byte              `json:"digest"`
	Clients []ClientStreamState `json:"clients"`
}

// ClientStreamState is one client's generator cursor within the merge.
type ClientStreamState struct {
	ArrivalRNG uint64        `json:"arrival_rng"`
	PickerRNG  uint64        `json:"picker_rng"`
	NextAt     time.Duration `json:"next_at_ns"`
}

// State captures the generator's position. Callers must not interleave
// State with concurrent Next/Seek calls (the stream is single-producer).
func (s *Stream) State() (*StreamState, error) {
	d, err := checkpoint.MarshalHash(s.digest.h)
	if err != nil {
		return nil, err
	}
	st := &StreamState{Count: s.count, Digest: d}
	for _, cs := range s.clients {
		st.Clients = append(st.Clients, ClientStreamState{
			ArrivalRNG: cs.arrivals.r.s,
			PickerRNG:  cs.picker.s,
			NextAt:     cs.nextAt,
		})
	}
	return st, nil
}

// Restore rewinds this stream to a previously captured position. The
// stream must have been built from the same (spec, seed) pair — variant
// programs are deterministic in those, so only the cursors and digest
// state need reloading. Client-count mismatch (a different spec) fails.
func (s *Stream) Restore(st *StreamState) error {
	if len(st.Clients) != len(s.clients) {
		return fmt.Errorf("traffic: stream state has %d clients, spec has %d", len(st.Clients), len(s.clients))
	}
	if err := checkpoint.UnmarshalHash(s.digest.h, st.Digest); err != nil {
		return err
	}
	s.count = st.Count
	for i, c := range st.Clients {
		cs := s.clients[i]
		cs.arrivals.r.s = c.ArrivalRNG
		cs.picker.s = c.PickerRNG
		cs.nextAt = c.NextAt
	}
	return nil
}
