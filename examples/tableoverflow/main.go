// Tableoverflow demonstrates the paper's §V limitation and the implemented
// future-work extension: a program keeps more objects live than the
// metadata table has entries (2^16 on ARM64 here, to keep the demo fast).
// Without chaining, overflow objects silently lose protection; with the
// chained-metadata extension they stay protected at O(log n) check cost.
package main

import (
	"fmt"
	"os"

	"cecsan"
	"cecsan/prog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tableoverflow:", err)
		os.Exit(1)
	}
}

// build allocates `count` live objects, then overflows the LAST one.
func build(count int64) (*prog.Program, error) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	keep := f.MallocType(prog.ArrayOf(prog.VoidPtr(), count))
	f.ForRange(prog.ConstOperand(0), prog.ConstOperand(count), 1, func(i prog.Reg) {
		p := f.MallocBytes(32)
		f.Store(f.ElemPtr(keep, prog.VoidPtr(), i), 0, p, prog.VoidPtr())
	})
	last := f.Load(f.ElemPtr(keep, prog.VoidPtr(), f.Const(count-1)), 0, prog.VoidPtr())
	f.Store(last, 32, f.Const(0x42), prog.Char()) // off-by-one on an overflow object
	f.RetVoid()
	return pb.Build()
}

func run() error {
	// More live objects than an ARM64-sized (2^16) table can tag.
	const live = 1<<16 + 500
	p, err := build(live)
	if err != nil {
		return err
	}

	for _, chaining := range []bool{false, true} {
		opts := cecsan.ARM64CECSanOptions() // 2^16-entry table
		opts.OverflowChaining = chaining
		res, err := cecsan.Run(p, cecsan.Config{Sanitizer: cecsan.CECSan, CECSan: &opts})
		if err != nil {
			return err
		}
		mode := "fallback (paper's prototype)"
		if chaining {
			mode = "overflow chaining (§V extension)"
		}
		if res.Violation != nil {
			fmt.Printf("%-34s DETECTED %v\n", mode, res.Violation.Kind)
		} else {
			fmt.Printf("%-34s missed — object %d was beyond the table, unprotected\n", mode, live)
		}
	}
	return nil
}
