package fuzz

import (
	"os"
	"path/filepath"
	"testing"

	"cecsan/csrc"
	"cecsan/internal/engine"
	"cecsan/internal/harness"
	"cecsan/internal/rt"
	"cecsan/internal/sanitizers"
)

// TestReplayUAFTagReuse replays the minimized staged tag-reuse reproducer as
// a standing regression: the differential outcome matrix it documents
// (SoftBound reports the UAF through its key/lock pair; every tag- or
// redzone-based tool is silent because the entry index / chunk was recycled;
// HWASan is probabilistic) must not drift as runtimes evolve. A drift here
// means either a model regression or a genuine detection change — both worth
// a human look before re-pinning.
func TestReplayUAFTagReuse(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "uaf_tag_reuse.csc"))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	p, err := csrc.Compile(string(src))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}

	// silent = must run to completion with no report; detect = must report a
	// use-after-free; HWASan is legitimately either (retag on free/malloc).
	expect := map[sanitizers.Name]string{
		sanitizers.Native:    "silent",
		sanitizers.CECSan:    "silent",
		sanitizers.PACMem:    "silent",
		sanitizers.CryptSan:  "silent",
		sanitizers.ASan:      "silent",
		sanitizers.ASanLite:  "silent",
		sanitizers.SoftBound: "detect",
		sanitizers.HWASan:    "either",
	}
	for _, tool := range sanitizers.All() {
		eng, err := engine.New(tool, engine.Options{RuntimeSeed: 1})
		if err != nil {
			t.Fatalf("engine.New(%s): %v", tool, err)
		}
		res, rerr := eng.Run(p)
		if rerr != nil {
			t.Fatalf("%s: Run: %v", tool, rerr)
		}
		outcome := harness.Classify(res)
		switch expect[tool] {
		case "silent":
			if outcome != harness.OutcomeClean {
				t.Errorf("%s: outcome %v (violation=%v err=%v), want clean",
					tool, outcome, res.Violation, res.Err)
			}
		case "detect":
			if outcome != harness.OutcomeDetected {
				t.Errorf("%s: outcome %v, want detected", tool, outcome)
			} else if res.Violation.Kind != rt.KindUseAfterFree {
				t.Errorf("%s: reported %v, want use-after-free", tool, res.Violation.Kind)
			}
		case "either":
			if outcome != harness.OutcomeClean && outcome != harness.OutcomeDetected {
				t.Errorf("%s: outcome %v, want clean or detected", tool, outcome)
			}
		default:
			t.Fatalf("no expectation for %s", tool)
		}
	}
}
