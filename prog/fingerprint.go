package prog

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
)

// Fingerprint is a 128-bit structural hash of a program. Two programs with
// the same fingerprint are structurally identical as far as instrumentation
// and execution are concerned: same functions in the same order, same
// instructions (all operands, flags, types and symbols), same loop facts,
// same globals and initializers, same entry point. The engine's
// instrumentation cache uses it as the program half of its cache key, so
// the thousands of structurally identical Juliet flow/data variants
// instrument once per distinct shape.
type Fingerprint [16]byte

// String renders the fingerprint as hex.
func (f Fingerprint) String() string { return fmt.Sprintf("%x", f[:]) }

// fpWriter streams the program encoding into a hash. Every field is written
// length- or tag-delimited so that adjacent variable-length fields cannot
// alias (e.g. symbol "ab"+"c" vs "a"+"bc").
type fpWriter struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64]byte
	// typeIDs interns types: the first encounter hashes the full structure,
	// later ones hash only the assigned id. This keeps deep or widely shared
	// types (struct fields, array elements) cheap and handles aliasing.
	typeIDs map[*Type]uint64
}

func (w *fpWriter) int(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.h.Write(w.buf[:n])
}

func (w *fpWriter) uint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.h.Write(w.buf[:n])
}

func (w *fpWriter) str(s string) {
	w.uint(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w *fpWriter) bytes(b []byte) {
	w.uint(uint64(len(b)))
	w.h.Write(b)
}

func (w *fpWriter) bool(b bool) {
	if b {
		w.uint(1)
	} else {
		w.uint(0)
	}
}

// typ encodes a type reference structurally (kind, size, alignment, name,
// length, element, fields), interning repeats by id.
func (w *fpWriter) typ(t *Type) {
	if t == nil {
		w.uint(0)
		return
	}
	if id, ok := w.typeIDs[t]; ok {
		w.uint(1)
		w.uint(id)
		return
	}
	id := uint64(len(w.typeIDs)) + 1
	w.typeIDs[t] = id
	w.uint(2)
	w.uint(uint64(t.kind))
	w.int(t.size)
	w.int(t.align)
	w.str(t.name)
	w.int(t.length)
	w.typ(t.elem)
	w.uint(uint64(len(t.fields)))
	for _, f := range t.fields {
		w.str(f.Name)
		w.int(f.Offset)
		w.typ(f.Type)
	}
}

func (w *fpWriter) instr(in *Instr) {
	w.uint(uint64(in.Op))
	w.uint(uint64(in.X))
	w.int(int64(in.Dst))
	w.int(int64(in.A))
	w.int(int64(in.B))
	w.int(in.Imm)
	w.int(in.Off)
	w.int(in.Size)
	w.typ(in.Type)
	w.str(in.Sym)
	w.uint(uint64(len(in.Args)))
	for _, a := range in.Args {
		w.int(int64(a))
	}
	w.uint(uint64(in.Flags))
}

func (w *fpWriter) operand(o Operand) {
	w.bool(o.IsConst)
	w.int(o.Const)
	w.int(int64(o.Reg))
}

// Fingerprint computes the structural hash of the program. The result is
// memoized on first call (programs are immutable after Build); a program
// must not be mutated after its first Fingerprint call.
func (p *Program) Fingerprint() Fingerprint {
	if fp := p.fp.Load(); fp != nil {
		return *fp
	}
	fp := p.fingerprint()
	p.fp.Store(&fp)
	return fp
}

func (p *Program) fingerprint() Fingerprint {
	w := &fpWriter{h: fnv.New128a(), typeIDs: make(map[*Type]uint64)}
	w.str(p.Entry)
	w.uint(uint64(len(p.Globals)))
	for i := range p.Globals {
		g := &p.Globals[i]
		w.str(g.Name)
		w.typ(g.Type)
		w.int(g.Init)
		w.bytes(g.InitBytes)
		w.bool(g.AddressTaken)
	}
	w.uint(uint64(len(p.Order)))
	for _, name := range p.Order {
		f := p.Funcs[name]
		w.str(f.Name)
		w.int(int64(f.NumParams))
		w.int(int64(f.NumRegs))
		w.uint(uint64(len(f.Code)))
		for i := range f.Code {
			w.instr(&f.Code[i])
		}
		w.uint(uint64(len(f.Loops)))
		for _, l := range f.Loops {
			w.int(int64(l.HeadStart))
			w.int(int64(l.HeadEnd))
			w.int(int64(l.BodyStart))
			w.int(int64(l.BodyEnd))
			w.int(int64(l.LatchEnd))
			w.int(int64(l.IndVar))
			w.operand(l.Start)
			w.operand(l.Limit)
			w.int(l.Step)
		}
	}
	var fp Fingerprint
	copy(fp[:], w.h.Sum(nil))
	return fp
}
