package engine

import (
	"errors"
	"fmt"
)

// FaultClass classifies a harness-level fault.
type FaultClass int

// Fault classes.
const (
	// FaultPanic is a recovered Go panic from the interpreter or a sanitizer
	// runtime — a harness bug surfaced by the case, never legal behaviour.
	FaultPanic FaultClass = iota + 1
	// FaultStepBudget is an exhausted per-case instruction budget.
	FaultStepBudget
	// FaultWallBudget is a watchdog interrupt on the wall-clock budget.
	FaultWallBudget
	// FaultHeapBudget is an exceeded live-heap byte budget.
	FaultHeapBudget
)

// String returns the class name used in records and reports.
func (c FaultClass) String() string {
	switch c {
	case FaultPanic:
		return "panic"
	case FaultStepBudget:
		return "step-budget"
	case FaultWallBudget:
		return "wall-budget"
	case FaultHeapBudget:
		return "heap-budget"
	default:
		return "unknown-fault"
	}
}

// FaultOutcome is the structured record of a harness-level fault: the case
// produced no sanitizer verdict because the machine itself was stopped — a
// recovered panic or an exhausted resource budget. It is distinct from both
// sanitizer reports (Result.Violation) and simulated program crashes
// (Result.Fault): those are outcomes of the program, this is an outcome of
// the harness. It lands in Result.Err so every existing consumer already
// treats it as "no verdict"; classifiers unwrap it with AsFault.
type FaultOutcome struct {
	// Class says what stopped the machine.
	Class FaultClass
	// PanicValue is the stringified panic payload (FaultPanic only).
	PanicValue string
	// Stack is the recovered goroutine stack (FaultPanic only). It carries
	// addresses, so deterministic records must not include it.
	Stack string
	// Retried reports that the case was re-run on a fresh, never-pooled
	// runtime after faulting on a recycled one.
	Retried bool
	// Deterministic reports the fault is attributable to the case itself:
	// it happened on (or reproduced on) a fresh runtime, ruling out pooled
	// state corrupted by an earlier case. Budget faults whose trigger cannot
	// depend on pool state are deterministic by construction.
	Deterministic bool
	// Err is the underlying cause (budget sentinel or interp.PanicError).
	Err error
}

// Error implements the error interface.
func (f *FaultOutcome) Error() string {
	if f.Class == FaultPanic {
		return fmt.Sprintf("engine: fault (%s): %s", f.Class, f.PanicValue)
	}
	return fmt.Sprintf("engine: fault (%s): %v", f.Class, f.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (f *FaultOutcome) Unwrap() error { return f.Err }

// AsFault extracts the FaultOutcome from a run error, or nil if the error is
// not (wrapping) one.
func AsFault(err error) *FaultOutcome {
	var fo *FaultOutcome
	if errors.As(err, &fo) {
		return fo
	}
	return nil
}
