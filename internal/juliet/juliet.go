// Package juliet generates the repository's analogue of the NIST Juliet
// Test Suite slice used in the paper's Table I/II evaluation: for each of
// the eight memory-safety CWEs it deterministically enumerates test cases
// as (good, bad) program pairs.
//
// A case is the cross product of a functional variant (the bug shape: how
// and where the overflow/UAF/bad-free happens), a control-flow variant
// (Juliet's flow wrappers: straight-line, flag-guarded, loop, helper call,
// external-input-guarded), and data variants (element type, buffer length).
// The shapes are chosen so that each comparator's design-level blind spots
// (sub-object overflows, redzone-skipping strides, intra-granule accesses,
// wide-character library calls, quarantine eviction, metadata lost through
// memory) occur at realistic frequencies; the detection rates of Table II
// then emerge from mechanism, not from hard-coded numbers.
//
// Cases that depend on external input (the paper's dummy-server cases that
// previous evaluations excluded) carry NeedsInput; the harness feeds their
// payloads, reproducing the paper's automation-framework contribution.
package juliet

import (
	"fmt"

	"cecsan/prog"
)

// CWE identifies one of the evaluated weakness classes.
type CWE int

// The eight CWEs of Table I.
const (
	CWE121 CWE = 121 // stack buffer overflow
	CWE122 CWE = 122 // heap buffer overflow
	CWE124 CWE = 124 // buffer underwrite
	CWE126 CWE = 126 // buffer overread
	CWE127 CWE = 127 // buffer underread
	CWE415 CWE = 415 // double free
	CWE416 CWE = 416 // use after free
	CWE761 CWE = 761 // free of pointer not at start of buffer
)

// String returns "CWE121" etc.
func (c CWE) String() string { return fmt.Sprintf("CWE%d", int(c)) }

// Description returns Table I's vulnerability-type column.
func (c CWE) Description() string {
	switch c {
	case CWE121:
		return "Stack Buffer Overflow"
	case CWE122:
		return "Heap Buffer Overflow"
	case CWE124:
		return "Buffer Underwrite"
	case CWE126:
		return "Buffer Overread"
	case CWE127:
		return "Buffer Underread"
	case CWE415:
		return "Double Free"
	case CWE416:
		return "Use After Free"
	case CWE761:
		return "Invalid Free"
	default:
		return "Unknown"
	}
}

// TableI returns the per-CWE case counts of the paper's Table I.
func TableI() map[CWE]int {
	return map[CWE]int{
		CWE121: 4896,
		CWE122: 3777,
		CWE124: 1440,
		CWE126: 2004,
		CWE127: 2000,
		CWE415: 818,
		CWE416: 393,
		CWE761: 424,
	}
}

// AllCWEs lists the CWEs in Table I order.
func AllCWEs() []CWE {
	return []CWE{CWE121, CWE122, CWE124, CWE126, CWE127, CWE415, CWE416, CWE761}
}

// TotalCases is Table I's total.
const TotalCases = 15752

// Case is one generated test case: a good (benign) and a bad (flawed)
// program pair plus the attributes the harness uses for subsetting.
type Case struct {
	ID  string
	CWE CWE

	Good *prog.Program
	Bad  *prog.Program
	// GoodInputs / BadInputs are the dummy-server payloads each version
	// consumes, in order.
	GoodInputs [][]byte
	BadInputs  [][]byte

	// NeedsInput marks cases driven by external input (excluded by the
	// PACMem and CryptSan published evaluations).
	NeedsInput bool
	// Wide marks cases exercising the wide-character library family.
	Wide bool
	// SubObject marks intra-object overflow cases (Figure 3 shapes).
	SubObject bool
	// Shape and Flow name the functional and control-flow variants; Elem
	// is the element type name.
	Shape string
	Flow  string
	Elem  string
}

// dims are the data variants of one case.
type dims struct {
	elem *prog.Type
	n    int64 // element count
	heap bool  // buffer segment (where the CWE allows both)
	salt int64 // extra enumeration entropy (perturbs sizes)
}

// caseBuilder carries emission state through a shape builder.
type caseBuilder struct {
	pb *prog.ProgramBuilder
	f  *prog.FuncBuilder
	d  dims

	goodInputs [][]byte
	badInputs  [][]byte
	bad        bool
}

// input queues a payload for whichever version is being built.
func (c *caseBuilder) input(good, bad []byte) {
	c.goodInputs = append(c.goodInputs, good)
	c.badInputs = append(c.badInputs, bad)
}

// feed returns the payload for the version under construction.
func (c *caseBuilder) pick(good, bad int64) int64 {
	if c.bad {
		return bad
	}
	return good
}

// buf allocates the case's buffer per dims (stack or heap), returning the
// pointer register and the byte size.
func (c *caseBuilder) buf() (prog.Reg, int64) {
	t := prog.ArrayOf(c.d.elem, c.d.n)
	if c.d.heap {
		return c.f.MallocType(t), t.Size()
	}
	return c.f.Alloca(t), t.Size()
}

// releaseBuf frees heap buffers so good versions exit cleanly.
func (c *caseBuilder) releaseBuf(p prog.Reg) {
	if c.d.heap {
		c.f.Free(p)
	}
}

// shape is one functional variant.
type shape struct {
	name       string
	wide       bool
	subObject  bool
	needsInput bool
	// weight is the shape's relative frequency in the enumeration (how
	// often the corresponding bug flavour occurs in the real Juliet suite);
	// 0 means 1.
	weight int
	// stackOnly/heapOnly restrict the segment dim.
	stackOnly bool
	heapOnly  bool
	build     func(c *caseBuilder)
}

// flow is one control-flow variant wrapper.
type flow struct {
	name       string
	needsInput bool
	wrap       func(c *caseBuilder, body func())
}

// flows are the Juliet-style control-flow wrappers.
var flows = []flow{
	{
		name: "flow01_straight",
		wrap: func(c *caseBuilder, body func()) { body() },
	},
	{
		name: "flow02_if_const_global",
		wrap: func(c *caseBuilder, body func()) {
			c.pb.GlobalInit("global_const_true", prog.Int(), 1)
			v := c.f.Load(c.f.GlobalAddr("global_const_true"), 0, prog.Int())
			c.f.If(v, body, nil)
		},
	},
	{
		name: "flow03_while_once",
		wrap: func(c *caseBuilder, body func()) {
			f := c.f
			flag := f.NewReg()
			f.AssignConst(flag, 1)
			f.While(
				func() prog.Reg { return flag },
				func() {
					body()
					f.AssignConst(flag, 0)
				},
			)
		},
	},
	{
		name: "flow04_helper_call",
		wrap: func(c *caseBuilder, body func()) {
			main := c.f
			helper := c.pb.Function("flow_helper", 0)
			c.f = helper
			body()
			c.f = main
			main.Call("flow_helper")
		},
	},
	{
		name:       "flow05_input_guard",
		needsInput: true,
		wrap: func(c *caseBuilder, body func()) {
			// Read one byte from the dummy server; run the body when it is
			// 0x42 (both versions receive 0x42 — the flaw is in the body).
			c.input([]byte{0x42}, []byte{0x42})
			f := c.f
			gbuf := f.Alloca(prog.ArrayOf(prog.Char(), 4))
			f.Libc("recv", gbuf, f.Const(1))
			b := f.Load(gbuf, 0, prog.Char())
			cond := f.Cmp(prog.CmpEq, b, f.Const(0x42))
			f.If(cond, body, nil)
		},
	},
}

// scalarTypes are the non-wide element types Juliet varies.
var scalarTypes = []*prog.Type{prog.Char(), prog.Int(), prog.Int64T()}

// lengths are the buffer length variants (element counts). Odd lengths
// create intra-granule layouts.
var lengths = []int64{8, 13, 16, 25, 32, 64, 100}

// Generate deterministically produces n cases for one CWE.
func Generate(cwe CWE, n int) ([]*Case, error) {
	ss := shapesFor(cwe)
	if len(ss) == 0 {
		return nil, fmt.Errorf("juliet: no shapes for %v", cwe)
	}
	out := make([]*Case, 0, n)
	for i := 0; i < n; i++ {
		cs, err := buildCase(cwe, i, ss)
		if err != nil {
			return nil, fmt.Errorf("juliet: %v case %d: %w", cwe, i, err)
		}
		out = append(out, cs)
	}
	return out, nil
}

// splitmix64 is the SplitMix64 mixing function, used to derive independent
// deterministic dimension picks from a case index.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// buildCase assembles case i of a CWE from the enumeration dimensions.
// Dimensions are picked by hashing the index so that every dimension varies
// immediately (a plain mixed radix would leave small suites with a single
// buffer size) while shape frequencies stay exactly proportional to their
// weights.
func buildCase(cwe CWE, i int, ss []shape) (*Case, error) {
	h := splitmix64(uint64(i) ^ uint64(cwe)<<32)
	pick := func(n int) int {
		h = splitmix64(h)
		return int(h % uint64(n))
	}
	sh := ss[i%len(ss)]
	fl := flows[pick(len(flows))]

	d := dims{}
	if sh.wide {
		d.elem = prog.WChar()
	} else {
		d.elem = scalarTypes[pick(len(scalarTypes))]
	}
	d.n = lengths[pick(len(lengths))]
	d.salt = int64(pick(4))
	// Salt perturbs the length so deep enumeration keeps producing
	// distinct layouts.
	d.n += 8 * (d.salt % 4)

	switch {
	case sh.heapOnly || cwe == CWE122 || cwe == CWE415 || cwe == CWE416 || cwe == CWE761:
		d.heap = true
	case sh.stackOnly || cwe == CWE121:
		d.heap = false
	default:
		d.heap = i%2 == 1
	}

	id := fmt.Sprintf("%s__%s_%s_%s_n%d_%05d", cwe, sh.name, fl.name, d.elem.Name(), d.n, i)

	build := func(bad bool) (*prog.Program, [][]byte, [][]byte, error) {
		pb := prog.NewProgram()
		registerCommonGlobals(pb, d)
		main := pb.Function("main", 0)
		cb := &caseBuilder{pb: pb, f: main, d: d, bad: bad}
		fl.wrap(cb, func() { sh.build(cb) })
		p, err := pb.Build()
		if err != nil {
			return nil, nil, nil, err
		}
		return p, cb.goodInputs, cb.badInputs, nil
	}

	good, gi, _, err := build(false)
	if err != nil {
		return nil, err
	}
	bad, _, bi, err := build(true)
	if err != nil {
		return nil, err
	}
	return &Case{
		ID:         id,
		CWE:        cwe,
		Elem:       d.elem.Name(),
		Good:       good,
		Bad:        bad,
		GoodInputs: gi,
		BadInputs:  bi,
		NeedsInput: sh.needsInput || fl.needsInput,
		Wide:       sh.wide,
		SubObject:  sh.subObject,
		Shape:      sh.name,
		Flow:       fl.name,
	}, nil
}

// registerCommonGlobals declares the data-source globals shapes rely on.
func registerCommonGlobals(pb *prog.ProgramBuilder, d dims) {
	// A long source region (zero-filled) for memcpy-style shapes: always
	// larger than any buffer variant.
	pb.Global("g_src", prog.ArrayOf(prog.Char(), 4096))
	// A NUL-terminated string exactly 7 chars long for strcpy good paths.
	pb.GlobalBytes("g_short", []byte("short67"))
	// A long string for strcpy bad paths: longer than any buffer variant.
	long := make([]byte, 2000)
	for i := range long {
		long[i] = 'A'
	}
	pb.GlobalBytes("g_long", long)
}

// Suite generates the full Table I suite.
func Suite() ([]*Case, error) {
	var out []*Case
	counts := TableI()
	for _, cwe := range AllCWEs() {
		cases, err := Generate(cwe, counts[cwe])
		if err != nil {
			return nil, err
		}
		out = append(out, cases...)
	}
	return out, nil
}

// SubsetPACMem reports whether the PACMem published evaluation would have
// included the case (it excluded every case needing external input).
func SubsetPACMem(c *Case) bool { return !c.NeedsInput }

// SubsetCryptSan approximates CryptSan's published 5,364-case subset: no
// external input, no wide characters, and only the simple flow variants its
// harness automated.
func SubsetCryptSan(c *Case) bool {
	return !c.NeedsInput && !c.Wide &&
		(c.Flow == "flow01_straight" || c.Flow == "flow02_if_const_global")
}

// SubsetSoftBound approximates the 3,970 cases that compile under the
// released SoftBound/CETS prototype: no wide characters, no input-driven
// cases, simple flows, and no 8-byte element types (the prototype's
// metadata propagation rejects several int64 idioms).
func SubsetSoftBound(c *Case) bool {
	return !c.NeedsInput && !c.Wide && c.Elem != "int64" &&
		(c.Flow == "flow01_straight" || c.Flow == "flow02_if_const_global")
}
