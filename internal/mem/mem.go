// Package mem implements the simulated 64-bit virtual address space that all
// sanitizers and workloads in this repository run against.
//
// The space is sparse and chunk-granular: addresses are 64-bit values, but
// only chunks that have actually been touched are materialized. This mirrors
// how a demand-paged OS backs user-space memory and gives the repository its
// resident-set-size (RSS) model: the number of materialized chunks is the
// simulated physical footprint of a program.
//
// Pointer tagging relies on the fact that user-space addresses occupy only
// the low 47 (x86-64) or 48 (ARM64) bits of a pointer. The machine's linker
// model additionally keeps every segment below 4 GiB, so a dereference of a
// still-tagged pointer (tag bits in the high word) lands far outside the
// mapped span and is reported as a fault, exactly like the non-canonical
// fault such a dereference raises on real hardware.
//
// Chunk materialization uses atomic pointers so that parallel workload
// regions (the OpenMP analogue of the SPEC CPU2017 runs) can fault chunks in
// concurrently. Racing data accesses to the same bytes remain races of the
// simulated program, as on real memory.
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ChunkBits is the log2 of the chunk size. Chunks are 64 KiB: small enough
// that the RSS model tracks footprints at sub-megabyte granularity, large
// enough that the chunk table stays small.
const ChunkBits = 16

// ChunkSize is the number of bytes in one materialized chunk.
const ChunkSize = 1 << ChunkBits

// SpanBits is the log2 of the mapped span. All segments live below 4 GiB.
const SpanBits = 32

// SpanSize is the size of the mappable span in bytes.
const SpanSize = uint64(1) << SpanBits

const (
	chunkMask = ChunkSize - 1
	numChunks = SpanSize >> ChunkBits
)

// Fault describes a raw-memory access error (address outside the mapped
// span, e.g. a dereference of a pointer whose tag bits were never stripped).
// It is a machine-level fault, not a sanitizer report; the harness treats a
// fault in a "bad" test case as a crash rather than a detection.
type Fault struct {
	Addr uint64
	Size int64
	Wr   bool
	// Injected marks a fault produced by the fault-injection page-map hook
	// (the chunk backing this address could not be materialized), as opposed
	// to a wild access by the program. Classifiers use it to separate
	// injected resource pressure from genuine program crashes.
	Injected bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	op := "read"
	if f.Wr {
		op = "write"
	}
	if f.Injected {
		return fmt.Sprintf("SIGBUS: injected page-map failure on %s of %d bytes at %#x", op, f.Size, f.Addr)
	}
	return fmt.Sprintf("SIGSEGV: wild %s of %d bytes at unmapped address %#x", op, f.Size, f.Addr)
}

type chunk [ChunkSize]byte

// Space is a sparse simulated address space.
type Space struct {
	addrBits uint // canonical pointer address width (47 or 48)

	chunks  []atomic.Pointer[chunk]
	touched atomic.Int64 // number of materialized chunks

	// dirtyHi[i] is the exclusive high-water mark of bytes written into
	// chunk i since the last Reset, maintained with a CAS-max so parallel
	// regions can store concurrently. Reset zeroes only c[:dirtyHi[i]] —
	// bytes past the mark were never written and are still zero.
	dirtyHi []atomic.Int32

	// spare holds zeroed chunks recycled by Reset, so a pooled space
	// re-materializes pages without fresh 64 KiB allocations. Only touched
	// by Reset and the (post-Reset, single-goroutine) first faults, but a
	// mutex keeps concurrent faulting safe anyway.
	spareMu sync.Mutex
	spare   []*chunk

	// touchedIdx records the chunk-table index of every materialized chunk
	// since the last Reset, so Reset walks only the handful of live chunks
	// instead of all numChunks table slots. Guarded by spareMu;
	// materialization is rare (first touch per chunk per run), so the lock
	// is far off the access fast path.
	touchedIdx []uint32

	// faultHook, when set, is consulted before each first-touch chunk
	// materialization; returning true fails the mapping (the access gets an
	// injected Fault). Reset clears it.
	faultHook atomic.Pointer[func() bool]
}

// NewSpace returns an empty space with the given canonical pointer width in
// bits. The width governs tagging semantics only; the mapped span is always
// SpanSize. Widths below SpanBits or above 57 are rejected.
func NewSpace(addrBits uint) (*Space, error) {
	if addrBits < SpanBits || addrBits > 57 {
		return nil, fmt.Errorf("mem: address width %d out of range [%d,57]", addrBits, SpanBits)
	}
	return &Space{
		addrBits: addrBits,
		chunks:   make([]atomic.Pointer[chunk], numChunks),
		dirtyHi:  make([]atomic.Int32, numChunks),
	}, nil
}

// AddrBits returns the canonical pointer width of the space.
func (s *Space) AddrBits() uint { return s.addrBits }

// Canonical reports whether addr fits in the canonical user-space pointer
// range (i.e. carries no tag bits).
func (s *Space) Canonical(addr uint64) bool { return addr < uint64(1)<<s.addrBits }

// TouchedBytes returns the simulated resident set size: the total bytes of
// materialized chunks.
func (s *Space) TouchedBytes() int64 { return s.touched.Load() * ChunkSize }

// chunkFor returns the chunk containing addr, materializing it on first
// touch. addr must be below SpanSize. It returns nil only when the fault
// hook vetoes the materialization (injected mmap failure): callers turn that
// into an injected Fault.
func (s *Space) chunkFor(addr uint64) *chunk {
	idx := addr >> ChunkBits
	if c := s.chunks[idx].Load(); c != nil {
		return c
	}
	if hook := s.faultHook.Load(); hook != nil && (*hook)() {
		return nil
	}
	c := s.newChunk()
	if s.chunks[idx].CompareAndSwap(nil, c) {
		s.touched.Add(1)
		s.spareMu.Lock()
		s.touchedIdx = append(s.touchedIdx, uint32(idx))
		s.spareMu.Unlock()
		return c
	}
	s.recycle(c)
	return s.chunks[idx].Load()
}

// newChunk returns a zeroed chunk, reusing one recycled by Reset if any.
func (s *Space) newChunk() *chunk {
	s.spareMu.Lock()
	if n := len(s.spare); n > 0 {
		c := s.spare[n-1]
		s.spare = s.spare[:n-1]
		s.spareMu.Unlock()
		return c
	}
	s.spareMu.Unlock()
	return new(chunk)
}

// recycle returns a zeroed chunk to the spare list.
func (s *Space) recycle(c *chunk) {
	s.spareMu.Lock()
	s.spare = append(s.spare, c)
	s.spareMu.Unlock()
}

// Reset returns the space to its freshly-constructed state: every
// materialized chunk is unmapped (and kept, zeroed, for reuse) and the
// touched-page gauge drops to zero. The caller must guarantee no machine is
// still using the space. A reset space behaves byte-for-byte like a new one
// — including the RSS model, which counts pages from zero again.
func (s *Space) Reset() {
	s.spareMu.Lock()
	idxs := s.touchedIdx
	s.touchedIdx = s.touchedIdx[:0]
	s.spareMu.Unlock()
	for _, i := range idxs {
		c := s.chunks[i].Swap(nil)
		if c == nil {
			continue
		}
		if hi := s.dirtyHi[i].Swap(0); hi > 0 {
			clear(c[:hi])
		}
		s.recycle(c)
	}
	s.touched.Store(0)
	s.faultHook.Store(nil)
}

// SetFaultHook installs (or, with nil, removes) the chunk-materialization
// fault hook. The caller must not race it with accesses.
func (s *Space) SetFaultHook(f func() bool) {
	if f == nil {
		s.faultHook.Store(nil)
		return
	}
	s.faultHook.Store(&f)
}

func (s *Space) inSpan(addr uint64, size int64) bool {
	return addr < SpanSize && size >= 0 && addr+uint64(size) <= SpanSize
}

// noteDirty raises chunk idx's dirty high-water mark to at least end (an
// in-chunk byte offset, exclusive). The common case — the mark already
// covers end — is one atomic load.
func (s *Space) noteDirty(idx uint64, end int64) {
	h := &s.dirtyHi[idx]
	for {
		cur := h.Load()
		if int64(cur) >= end {
			return
		}
		if h.CompareAndSwap(cur, int32(end)) {
			return
		}
	}
}

// Load reads size bytes (1, 2, 4 or 8) at addr, little-endian, zero-extended.
func (s *Space) Load(addr uint64, size int64) (uint64, *Fault) {
	if !s.inSpan(addr, size) {
		return 0, &Fault{Addr: addr, Size: size}
	}
	off := addr & chunkMask
	if off+uint64(size) <= ChunkSize {
		c := s.chunkFor(addr)
		if c == nil {
			return 0, &Fault{Addr: addr, Size: size, Injected: true}
		}
		switch size {
		case 1:
			return uint64(c[off]), nil
		case 2:
			return uint64(c[off]) | uint64(c[off+1])<<8, nil
		case 4:
			return uint64(c[off]) | uint64(c[off+1])<<8 | uint64(c[off+2])<<16 | uint64(c[off+3])<<24, nil
		case 8:
			return uint64(c[off]) | uint64(c[off+1])<<8 | uint64(c[off+2])<<16 | uint64(c[off+3])<<24 |
				uint64(c[off+4])<<32 | uint64(c[off+5])<<40 | uint64(c[off+6])<<48 | uint64(c[off+7])<<56, nil
		}
	}
	// Slow path: crosses a chunk boundary or odd size.
	var v uint64
	for i := int64(0); i < size; i++ {
		c := s.chunkFor(addr + uint64(i))
		if c == nil {
			return 0, &Fault{Addr: addr + uint64(i), Size: size, Injected: true}
		}
		v |= uint64(c[(addr+uint64(i))&chunkMask]) << (8 * uint(i))
	}
	return v, nil
}

// Store writes the low size bytes (1, 2, 4 or 8) of val at addr, little-endian.
func (s *Space) Store(addr uint64, size int64, val uint64) *Fault {
	if !s.inSpan(addr, size) {
		return &Fault{Addr: addr, Size: size, Wr: true}
	}
	off := addr & chunkMask
	if off+uint64(size) <= ChunkSize {
		c := s.chunkFor(addr)
		if c == nil {
			return &Fault{Addr: addr, Size: size, Wr: true, Injected: true}
		}
		s.noteDirty(addr>>ChunkBits, int64(off)+size)
		switch size {
		case 1:
			c[off] = byte(val)
			return nil
		case 2:
			c[off], c[off+1] = byte(val), byte(val>>8)
			return nil
		case 4:
			c[off], c[off+1], c[off+2], c[off+3] = byte(val), byte(val>>8), byte(val>>16), byte(val>>24)
			return nil
		case 8:
			c[off], c[off+1], c[off+2], c[off+3] = byte(val), byte(val>>8), byte(val>>16), byte(val>>24)
			c[off+4], c[off+5], c[off+6], c[off+7] = byte(val>>32), byte(val>>40), byte(val>>48), byte(val>>56)
			return nil
		}
	}
	for i := int64(0); i < size; i++ {
		a := addr + uint64(i)
		c := s.chunkFor(a)
		if c == nil {
			return &Fault{Addr: a, Size: size, Wr: true, Injected: true}
		}
		s.noteDirty(a>>ChunkBits, int64(a&chunkMask)+1)
		c[a&chunkMask] = byte(val >> (8 * uint(i)))
	}
	return nil
}

// ReadBytes copies n bytes starting at addr into a new slice.
func (s *Space) ReadBytes(addr uint64, n int64) ([]byte, *Fault) {
	if !s.inSpan(addr, n) {
		return nil, &Fault{Addr: addr, Size: n}
	}
	out := make([]byte, n)
	var done int64
	for done < n {
		a := addr + uint64(done)
		c := s.chunkFor(a)
		if c == nil {
			return nil, &Fault{Addr: a, Size: n, Injected: true}
		}
		done += int64(copy(out[done:], c[a&chunkMask:]))
	}
	return out, nil
}

// WriteBytes copies b into memory starting at addr.
func (s *Space) WriteBytes(addr uint64, b []byte) *Fault {
	n := int64(len(b))
	if !s.inSpan(addr, n) {
		return &Fault{Addr: addr, Size: n, Wr: true}
	}
	var done int64
	for done < n {
		a := addr + uint64(done)
		c := s.chunkFor(a)
		if c == nil {
			return &Fault{Addr: a, Size: n, Wr: true, Injected: true}
		}
		w := int64(copy(c[a&chunkMask:], b[done:]))
		s.noteDirty(a>>ChunkBits, int64(a&chunkMask)+w)
		done += w
	}
	return nil
}

// Copy moves n bytes from src to dst within the space, handling overlap like
// memmove does.
func (s *Space) Copy(dst, src uint64, n int64) *Fault {
	if n <= 0 {
		return nil
	}
	b, f := s.ReadBytes(src, n)
	if f != nil {
		return f
	}
	return s.WriteBytes(dst, b)
}

// Set fills n bytes starting at addr with byte v.
func (s *Space) Set(addr uint64, v byte, n int64) *Fault {
	if !s.inSpan(addr, n) {
		return &Fault{Addr: addr, Size: n, Wr: true}
	}
	var done int64
	for done < n {
		a := addr + uint64(done)
		c := s.chunkFor(a)
		if c == nil {
			return &Fault{Addr: a, Size: n, Wr: true, Injected: true}
		}
		off := a & chunkMask
		end := int64(ChunkSize) - int64(off)
		if end > n-done {
			end = n - done
		}
		s.noteDirty(a>>ChunkBits, int64(off)+end)
		seg := c[off : int64(off)+end]
		for i := range seg {
			seg[i] = v
		}
		done += end
	}
	return nil
}
