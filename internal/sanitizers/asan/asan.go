// Package asan models AddressSanitizer: the location-based (redzone)
// comparator of Table II and the performance baseline of Tables IV and V.
//
// The model reproduces ASan's mechanism, not its source: a 1/8 shadow
// encoding addressability per 8-byte granule, scaled redzones around heap
// chunks, poisoned stack frames and global redzones, a quarantine that
// delays reuse of freed memory, and libc interceptors (with the documented
// wide-character gaps). Its design-level false negatives — sub-object
// overflows, large strides that jump over a redzone into another live
// object, use-after-free after quarantine eviction — arise mechanically.
package asan

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"cecsan/internal/alloc"
	"cecsan/internal/mem"
	"cecsan/internal/rt"
)

// Shadow encoding: 0 = addressable, otherwise a poison kind.
const (
	shadowOK         byte = 0
	shadowHeapRZ     byte = 0xFA
	shadowHeapFreed  byte = 0xFD
	shadowStackRZ    byte = 0xF1
	shadowStackFreed byte = 0xF8
	shadowGlobalRZ   byte = 0xF9
	// shadowPartial values 1..7 encode a partially addressable granule.
)

// granule is ASan's 8-byte shadow granularity.
const granule = 8

// shadowChunkBits carves the shadow into lazily materialized chunks for the
// RSS model (real ASan maps shadow with MAP_NORESERVE and pays RSS only for
// touched pages).
const shadowChunkBits = 16

const shadowChunkSize = 1 << shadowChunkBits

// Options tunes the model.
type Options struct {
	// RedzoneMin is the minimum redzone on each side of a heap chunk.
	// ASan's default minimum is 16 bytes.
	RedzoneMin int64
	// RedzoneMax caps the scaled redzone (ASan scales redzones up to 2 KiB
	// for large allocations).
	RedzoneMax int64
	// QuarantineBytes is the FIFO quarantine capacity. ASan's default is
	// 256 MiB; the model scales it to the simulated heap.
	QuarantineBytes int64
	// Name overrides the display name (ASAN-- reuses this runtime).
	Name string
	// InterceptWide enables wide-character interceptors. Stock ASan misses
	// several wide functions (the §IV.B observation); keep false for the
	// faithful model.
	InterceptWide bool
}

// DefaultOptions returns the stock ASan configuration.
func DefaultOptions() Options {
	return Options{
		RedzoneMin:      16,
		RedzoneMax:      2048,
		QuarantineBytes: 2 << 20,
		Name:            "ASan",
	}
}

// Runtime is the ASan model (rt.Runtime implementation).
type Runtime struct {
	opts Options
	env  rt.Env

	mu     sync.Mutex
	shadow []atomic.Pointer[shadowChunk] // lazily materialized shadow chunks

	// spareMu guards the shadow-chunk recycling state. touchedIdx records
	// the index of every materialized shadow chunk since the last reset and
	// spare holds zeroed chunks ResetRuntime reclaimed, so a pooled runtime
	// re-materializes shadow without fresh 64 KiB allocations and resets in
	// O(touched) instead of O(span).
	spareMu    sync.Mutex
	touchedIdx []uint32
	spare      []*shadowChunk

	// chunkInfo tracks ASan's allocator metadata per user pointer.
	chunkInfo map[uint64]asanChunk

	quarantine      []asanChunk
	quarantineBytes int64

	redzoneBytes  int64 // live redzone bytes (heap+stack+globals)
	shadowTouched atomic.Int64
}

// shadowChunk is one lazily materialized shadow region.
type shadowChunk [shadowChunkSize]byte

// asanChunk records one allocation the runtime manages.
type asanChunk struct {
	base uint64 // allocator base (start of left redzone)
	user uint64 // user pointer
	size int64  // user size
	rz   int64  // redzone on each side
}

var (
	_ rt.Runtime    = (*Runtime)(nil)
	_ rt.Resettable = (*Runtime)(nil)
)

// New constructs an ASan model runtime.
func New(opts Options) *Runtime {
	if opts.Name == "" {
		opts.Name = "ASan"
	}
	if opts.RedzoneMin <= 0 {
		opts.RedzoneMin = 16
	}
	if opts.RedzoneMax < opts.RedzoneMin {
		opts.RedzoneMax = opts.RedzoneMin
	}
	return &Runtime{opts: opts, chunkInfo: make(map[uint64]asanChunk)}
}

// ProfileFor derives the instrumentation profile for the given options
// without constructing a runtime (and hence without reserving shadow
// bookkeeping): checks on loads and stores, interceptor-based libc checking,
// redzone-poisoned stack and globals, no pointer tagging, no sub-object
// narrowing, and no compiler optimizations beyond what stock ASan does.
func ProfileFor(opts Options) rt.Profile {
	if opts.Name == "" {
		opts.Name = "ASan"
	}
	return rt.Profile{
		Name:            opts.Name,
		CheckLoads:      true,
		CheckStores:     true,
		TrackStack:      true,
		TrackGlobals:    true,
		InterceptorLibc: true,
		RedzoneBased:    true,
		StackRedzone:    2 * granule,
		GlobalRedzone:   2 * granule,
	}
}

// Sanitizer returns the bundled ASan runtime and profile.
func Sanitizer(opts Options) rt.Sanitizer {
	return rt.Sanitizer{Runtime: New(opts), Profile: ProfileFor(opts)}
}

// Name implements rt.Runtime.
func (r *Runtime) Name() string { return r.opts.Name }

// Attach implements rt.Runtime: reserve the (lazy) shadow. A pooled runtime
// keeps its (reset) shadow table across attaches.
func (r *Runtime) Attach(env *rt.Env) error {
	r.env = *env
	if r.shadow == nil {
		nChunks := (mem.SpanSize / granule) >> shadowChunkBits
		r.shadow = make([]atomic.Pointer[shadowChunk], nChunks)
	}
	return nil
}

// ResetRuntime implements rt.Resettable: drop every materialized shadow
// chunk (zeroed and kept for reuse), forget allocator metadata and the
// quarantine, and zero the overhead gauges — byte-for-byte the state of a
// freshly constructed runtime with the same options.
func (r *Runtime) ResetRuntime() {
	r.spareMu.Lock()
	idxs := r.touchedIdx
	r.touchedIdx = r.touchedIdx[:0]
	r.spareMu.Unlock()
	for _, ci := range idxs {
		c := r.shadow[ci].Swap(nil)
		if c == nil {
			continue
		}
		*c = shadowChunk{}
		r.spareMu.Lock()
		r.spare = append(r.spare, c)
		r.spareMu.Unlock()
	}
	r.shadowTouched.Store(0)
	r.mu.Lock()
	clear(r.chunkInfo)
	r.quarantine = r.quarantine[:0]
	r.quarantineBytes = 0
	r.redzoneBytes = 0
	r.mu.Unlock()
}

// materialize installs a chunk at shadow-chunk index ci, reusing a spare.
func (r *Runtime) materialize(ci uint64) *shadowChunk {
	r.spareMu.Lock()
	var c *shadowChunk
	if n := len(r.spare); n > 0 {
		c = r.spare[n-1]
		r.spare = r.spare[:n-1]
	} else {
		c = new(shadowChunk)
	}
	r.spareMu.Unlock()
	if r.shadow[ci].CompareAndSwap(nil, c) {
		r.shadowTouched.Add(shadowChunkSize)
		r.spareMu.Lock()
		r.touchedIdx = append(r.touchedIdx, uint32(ci))
		r.spareMu.Unlock()
		return c
	}
	r.spareMu.Lock()
	r.spare = append(r.spare, c)
	r.spareMu.Unlock()
	return r.shadow[ci].Load()
}

// shadowByte returns a pointer to the shadow byte for addr, materializing
// the chunk. addr must be below mem.SpanSize.
func (r *Runtime) shadowByte(addr uint64) *byte {
	s := addr / granule
	ci := s >> shadowChunkBits
	c := r.shadow[ci].Load()
	if c == nil {
		c = r.materialize(ci)
	}
	return &c[s&(shadowChunkSize-1)]
}

// shadowFill writes val to count consecutive shadow bytes starting at shadow
// index s0, resolving each shadow chunk once and filling the in-chunk span,
// instead of a full table lookup per granule.
func (r *Runtime) shadowFill(s0 uint64, count int64, val byte) {
	for count > 0 {
		ci := s0 >> shadowChunkBits
		c := r.shadow[ci].Load()
		if c == nil {
			c = r.materialize(ci)
		}
		off := int64(s0 & (shadowChunkSize - 1))
		n := shadowChunkSize - off
		if n > count {
			n = count
		}
		seg := c[off : off+n]
		for i := range seg {
			seg[i] = val
		}
		s0 += uint64(n)
		count -= n
	}
}

// poison marks [addr, addr+n) with the given shadow value (granule-aligned
// regions only). The shadow bytes of successive granules are consecutive,
// so the region is one contiguous shadow fill.
func (r *Runtime) poison(addr uint64, n int64, val byte) {
	if n <= 0 {
		return
	}
	r.shadowFill(addr/granule, (n+granule-1)/granule, val)
}

// unpoison marks [addr, addr+n) addressable, including the partial last
// granule encoding.
func (r *Runtime) unpoison(addr uint64, n int64) {
	full := n / granule * granule
	if full > 0 {
		r.shadowFill(addr/granule, full/granule, shadowOK)
	}
	if rem := n - full; rem > 0 {
		*r.shadowByte(addr + uint64(full)) = byte(rem)
	}
}

// redzoneFor scales the redzone with the allocation size, like ASan.
func (r *Runtime) redzoneFor(size int64) int64 {
	rz := r.opts.RedzoneMin
	for rz < size/8 && rz < r.opts.RedzoneMax {
		rz *= 2
	}
	return rz
}

// Malloc implements rt.Runtime: allocate user size plus redzones from the
// stock heap, poison the redzones, unpoison the user region.
func (r *Runtime) Malloc(size int64) (uint64, rt.PtrMeta, error) {
	rz := r.redzoneFor(size)
	total := size + 2*rz
	base, err := r.env.Heap.Alloc(total)
	if err != nil {
		return 0, rt.PtrMeta{}, err
	}
	user := base + uint64(rz)
	r.poison(base, rz, shadowHeapRZ)
	r.unpoison(user, size)
	// Poison the right redzone from the next granule boundary.
	rstart := (user + uint64(size) + granule - 1) &^ (granule - 1)
	r.poison(rstart, rz, shadowHeapRZ)

	r.mu.Lock()
	r.chunkInfo[user] = asanChunk{base: base, user: user, size: size, rz: rz}
	r.redzoneBytes += 2 * rz
	r.mu.Unlock()
	return user, rt.PtrMeta{}, nil
}

// Free implements rt.Runtime: validate against the allocator metadata
// (catching invalid and double frees the way ASan's allocator does), poison
// the chunk, and move it to the quarantine instead of releasing it.
func (r *Runtime) Free(ptr uint64, _ rt.PtrMeta) *rt.Violation {
	r.mu.Lock()
	ch, ok := r.chunkInfo[ptr]
	r.mu.Unlock()
	if !ok {
		// Not a live chunk base. ASan distinguishes double frees (freed
		// chunk headers are remembered while quarantined) from frees of
		// never-allocated pointers.
		sv := *r.shadowByte(ptr)
		if sv == shadowHeapFreed {
			return &rt.Violation{
				Kind: rt.KindDoubleFree, Ptr: ptr, Addr: ptr, Seg: alloc.SegmentOf(ptr),
				Detail: "attempting double-free on quarantined chunk",
			}
		}
		if seg := alloc.SegmentOf(ptr); seg != alloc.SegHeap {
			return &rt.Violation{
				Kind: rt.KindInvalidFree, Ptr: ptr, Addr: ptr, Seg: seg,
				Detail: "attempting free on address which was not malloc()-ed",
			}
		}
		// Heap address that is not a chunk base: if it happens to be the
		// base of ANOTHER live chunk the registry lookup above would have
		// found it and freed it silently — that miss is modelled by the
		// caller passing such a pointer and chunkInfo finding it. Here the
		// pointer is interior: report.
		return &rt.Violation{
			Kind: rt.KindInvalidFree, Ptr: ptr, Addr: ptr, Seg: alloc.SegHeap,
			Detail: "attempting free on address which was not malloc()-ed (interior pointer)",
		}
	}
	// Poison the user region and quarantine the chunk. Double frees while
	// quarantined are caught through the freed-shadow poison (the same
	// signal real ASan loses once the chunk leaves the quarantine), so
	// chunkInfo tracks live chunks only — otherwise a recycled address
	// would alias an old quarantine generation.
	r.poison(ptr&^uint64(granule-1), (ch.size+granule-1)/granule*granule, shadowHeapFreed)
	r.mu.Lock()
	delete(r.chunkInfo, ptr)
	r.quarantine = append(r.quarantine, ch)
	r.quarantineBytes += ch.size + 2*ch.rz
	// Evict oldest entries beyond capacity: their memory returns to the
	// allocator and their shadow becomes addressable again on reuse.
	for r.quarantineBytes > r.opts.QuarantineBytes && len(r.quarantine) > 0 {
		old := r.quarantine[0]
		r.quarantine = r.quarantine[1:]
		r.quarantineBytes -= old.size + 2*old.rz
		r.redzoneBytes -= 2 * old.rz
		r.env.Heap.Free(old.base)
	}
	r.mu.Unlock()
	return nil
}

// StackAlloc implements rt.Runtime: tracked (unsafe) stack objects receive
// poisoned redzones in the frame; safe ones are untouched.
func (r *Runtime) StackAlloc(raw uint64, size int64, tracked bool) (uint64, rt.PtrMeta) {
	if !tracked {
		return raw, rt.PtrMeta{}
	}
	// The machine hands us the object base; emulate ASan's frame layout by
	// poisoning the granule just before and after the object.
	r.unpoison(raw, size)
	r.poison(raw-granule, granule, shadowStackRZ)
	rstart := (raw + uint64(size) + granule - 1) &^ (granule - 1)
	r.poison(rstart, granule, shadowStackRZ)
	r.mu.Lock()
	r.redzoneBytes += 2 * granule
	r.mu.Unlock()
	return raw, rt.PtrMeta{}
}

// StackRelease implements rt.Runtime: poison the dead frame region
// (use-after-return detection in ASan's default mode is limited; the model
// poisons, which is its use-after-scope behaviour).
func (r *Runtime) StackRelease(ptr uint64, size int64) {
	r.poison(ptr&^uint64(granule-1), (size+granule-1)/granule*granule, shadowStackFreed)
	r.mu.Lock()
	r.redzoneBytes -= 2 * granule
	r.mu.Unlock()
}

// GlobalInit implements rt.Runtime: unsafe globals get right redzones.
func (r *Runtime) GlobalInit(_ string, raw uint64, size int64, tracked bool) (uint64, rt.PtrMeta) {
	if tracked {
		r.unpoison(raw, size)
		rstart := (raw + uint64(size) + granule - 1) &^ (granule - 1)
		r.poison(rstart, 2*granule, shadowGlobalRZ)
		r.mu.Lock()
		r.redzoneBytes += 2 * granule
		r.mu.Unlock()
	}
	return raw, rt.PtrMeta{}
}

// Check implements rt.Runtime: the classic ASan shadow check — load one
// shadow byte; 0 means fully addressable, 1..7 partially, anything else is
// poison.
func (r *Runtime) Check(ptr uint64, _ rt.PtrMeta, off, size int64, k rt.AccessKind) *rt.Violation {
	addr := ptr + uint64(off)
	if addr >= mem.SpanSize {
		return nil // out of simulated span; the machine faults
	}
	// Check every granule the access touches (ASan emits 1 or 2 checks for
	// <=16-byte accesses; ranges come through LibcCheck).
	end := addr + uint64(size)
	for a := addr; a < end; {
		gbase := a &^ (granule - 1)
		hi := end - gbase
		if hi > granule {
			hi = granule
		}
		sv := *r.shadowByte(gbase)
		if sv != shadowOK {
			if sv >= granule || hi > uint64(sv) {
				return r.reportShadow(ptr, a, size, k, sv)
			}
		}
		a = gbase + granule
	}
	return nil
}

// reportShadow classifies a poisoned access.
func (r *Runtime) reportShadow(ptr, addr uint64, size int64, k rt.AccessKind, sv byte) *rt.Violation {
	v := &rt.Violation{Ptr: ptr, Addr: addr, Size: size, Seg: alloc.SegmentOf(addr)}
	switch sv {
	case shadowHeapFreed, shadowStackFreed:
		v.Kind = rt.KindUseAfterFree
		v.Detail = "heap-use-after-free (poisoned shadow)"
	default:
		if k == rt.Write {
			v.Kind = rt.KindOOBWrite
		} else {
			v.Kind = rt.KindOOBRead
		}
		v.Detail = fmt.Sprintf("redzone access (shadow=%#x)", sv)
	}
	return v
}

// Addr implements rt.Runtime: ASan pointers are plain addresses.
func (r *Runtime) Addr(ptr uint64) uint64 { return ptr }

// UsableSize implements rt.Runtime via the chunk registry.
func (r *Runtime) UsableSize(ptr uint64, _ rt.PtrMeta) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ch, ok := r.chunkInfo[ptr]; ok {
		return ch.size
	}
	return -1
}

// SubPtr implements rt.Runtime: ASan has no sub-object granularity — the
// derived pointer is ordinary arithmetic (the design-level Table II gap).
func (r *Runtime) SubPtr(base uint64, off, _ int64) (uint64, rt.PtrMeta) {
	return base + uint64(off), rt.PtrMeta{}
}

// SubRelease implements rt.Runtime.
func (r *Runtime) SubRelease(uint64) {}

// PrepareExternArg implements rt.Runtime: nothing to strip.
func (r *Runtime) PrepareExternArg(ptr uint64) (uint64, *rt.Violation) { return ptr, nil }

// AdoptExternRet implements rt.Runtime.
func (r *Runtime) AdoptExternRet(raw uint64) uint64 { return raw }

// LibcCheck implements rt.Runtime: the interceptor model. Wide-character
// functions are NOT intercepted by default — the coverage gap Table II
// attributes several ASan misses to.
func (r *Runtime) LibcCheck(fn string, ptr uint64, meta rt.PtrMeta, n int64, k rt.AccessKind) *rt.Violation {
	if n <= 0 {
		return nil
	}
	if !r.opts.InterceptWide && (strings.HasPrefix(fn, "wcs") || strings.HasPrefix(fn, "wmem")) {
		return nil // no interceptor for the wide family
	}
	if strings.HasPrefix(fn, "print") {
		return nil // printf-family interception is off by default
	}
	return r.Check(ptr, meta, 0, n, k)
}

// LoadPtrMeta implements rt.Runtime.
func (r *Runtime) LoadPtrMeta(uint64) rt.PtrMeta { return rt.PtrMeta{} }

// StorePtrMeta implements rt.Runtime.
func (r *Runtime) StorePtrMeta(uint64, rt.PtrMeta) {}

// OverheadBytes implements rt.Runtime: touched shadow + live redzones +
// quarantined memory — the sources of ASan's Table IV/V memory overhead.
func (r *Runtime) OverheadBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shadowTouched.Load() + r.redzoneBytes + r.quarantineBytes
}
