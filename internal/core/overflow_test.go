package core

import (
	"testing"
	"testing/quick"

	"cecsan/internal/alloc"
	"cecsan/internal/mem"
	"cecsan/internal/rt"
	"cecsan/internal/tagptr"
)

func newChainedRuntime(t *testing.T) *Runtime {
	t.Helper()
	opts := DefaultOptions()
	opts.OverflowChaining = true
	r, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	space, err := mem.NewSpace(47)
	if err != nil {
		t.Fatal(err)
	}
	env := rt.Env{Space: space, Heap: alloc.NewHeap(), Globals: alloc.NewGlobals()}
	if err := r.Attach(&env); err != nil {
		t.Fatal(err)
	}
	return r
}

// exhaust fills the table so subsequent allocations chain.
func exhaust(t *testing.T, r *Runtime) {
	t.Helper()
	for {
		if _, ok := r.Table().Allocate(0x1000, 0x1040, false); !ok {
			return
		}
	}
}

func TestSpillIndexBasics(t *testing.T) {
	var s spillIndex
	s.insert(100, 164)
	s.insert(300, 332)
	s.insert(200, 232)

	tests := []struct {
		addr     uint64
		wantBase uint64
		wantOK   bool
	}{
		{100, 100, true},
		{163, 100, true},
		{164, 0, false}, // end is exclusive
		{99, 0, false},
		{216, 200, true},
		{250, 0, false},
		{331, 300, true},
	}
	for _, tt := range tests {
		sp, ok := s.lookup(tt.addr)
		if ok != tt.wantOK || (ok && sp.base != tt.wantBase) {
			t.Errorf("lookup(%d) = (%+v,%v), want base %d ok %v", tt.addr, sp, ok, tt.wantBase, tt.wantOK)
		}
	}
	if !s.remove(200) {
		t.Fatal("remove(200) failed")
	}
	if s.remove(200) {
		t.Fatal("second remove(200) succeeded")
	}
	if _, ok := s.lookup(216); ok {
		t.Fatal("lookup found a removed span")
	}
	if s.size() != 2 || s.bytes() != 32 {
		t.Fatalf("size=%d bytes=%d", s.size(), s.bytes())
	}
}

// TestSpillIndexProperty cross-checks lookup against a naive scan under
// random insert/remove interleavings.
func TestSpillIndexProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		var s spillIndex
		ref := map[uint64]uint64{} // base -> end
		for i, op := range ops {
			base := uint64(op%512)*64 + 0x1000
			if op%3 == 0 {
				if _, dup := ref[base]; !dup {
					s.insert(base, base+48)
					ref[base] = base + 48
				}
			} else if op%3 == 1 {
				if _, ok := ref[base]; ok {
					if !s.remove(base) {
						return false
					}
					delete(ref, base)
				}
			} else {
				addr := base + uint64(i%64)
				sp, ok := s.lookup(addr)
				var wantOK bool
				var wantBase uint64
				for b, e := range ref {
					if addr >= b && addr < e {
						wantOK, wantBase = true, b
					}
				}
				if ok != wantOK || (ok && sp.base != wantBase) {
					return false
				}
			}
		}
		return s.size() == len(ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestChainedProtectionAfterExhaustion(t *testing.T) {
	r := newChainedRuntime(t)
	exhaust(t, r)

	p, _, err := r.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if got := tagptr.X8664.Index(p); got != tagptr.X8664.MaxIndex() {
		t.Fatalf("chained pointer tag = %#x, want CHAINED %#x", got, tagptr.X8664.MaxIndex())
	}
	// In-bounds accesses pass, including through interior pointers.
	if v := r.Check(p, rt.PtrMeta{}, 0, 64, rt.Write); v != nil {
		t.Fatalf("in-bounds chained access reported: %v", v)
	}
	if v := r.Check(p+32, rt.PtrMeta{}, 0, 8, rt.Read); v != nil {
		t.Fatalf("interior chained access reported: %v", v)
	}
	// Overflow past the chained object is caught (unlike the fallback mode,
	// which gives up protection entirely).
	if v := r.Check(p, rt.PtrMeta{}, 64, 1, rt.Write); v == nil {
		t.Fatal("chained overflow not detected")
	}
	// Temporal: free then use.
	if v := r.Free(p, rt.PtrMeta{}); v != nil {
		t.Fatalf("chained free reported: %v", v)
	}
	if v := r.Check(p, rt.PtrMeta{}, 0, 8, rt.Read); v == nil {
		t.Fatal("chained use-after-free not detected")
	}
	// Double free.
	if v := r.Free(p, rt.PtrMeta{}); v == nil {
		t.Fatal("chained double free not detected")
	}
	if r.ChainedObjects() != 0 {
		t.Fatalf("ChainedObjects = %d, want 0", r.ChainedObjects())
	}
}

func TestChainedExternBoundary(t *testing.T) {
	r := newChainedRuntime(t)
	exhaust(t, r)
	p, _, err := r.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	raw, v := r.PrepareExternArg(p)
	if v != nil {
		t.Fatalf("valid chained pointer rejected at boundary: %v", v)
	}
	if tagptr.X8664.IsTagged(raw) {
		t.Fatal("chained pointer not stripped")
	}
	r.Free(p, rt.PtrMeta{})
	if _, v := r.PrepareExternArg(p); v == nil {
		t.Fatal("dangling chained pointer not rejected at boundary")
	}
}

func TestChainingDisabledFallsBackUnprotected(t *testing.T) {
	// Baseline behaviour without the extension, for contrast.
	r := newRuntime(t)
	tbl := r.Table()
	for {
		if _, ok := tbl.Allocate(0x1000, 0x1040, false); !ok {
			break
		}
	}
	p, _, err := r.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if tagptr.X8664.IsTagged(p) {
		t.Fatal("fallback pointer is tagged")
	}
	if v := r.Check(p, rt.PtrMeta{}, 64, 1, rt.Write); v != nil {
		t.Fatalf("fallback mode unexpectedly protected: %v", v)
	}
}

func TestOverheadIncludesSpill(t *testing.T) {
	r := newChainedRuntime(t)
	exhaust(t, r)
	before := r.OverheadBytes()
	for i := 0; i < 100; i++ {
		if _, _, err := r.Malloc(32); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.OverheadBytes(); got != before+100*16 {
		t.Fatalf("OverheadBytes = %d, want %d", got, before+100*16)
	}
}
