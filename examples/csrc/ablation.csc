// §II.F ablation kernel for the check-site profiler: a monotonic array
// sweep (grouped by OptMonotonic) and a constant-index store to a local
// array, statically provable in-bounds (removed entirely by OptTypeBased).
//
//   go run ./cmd/cecsan-run -src examples/csrc/ablation.csc \
//       -no-monotonic -no-typebased -profile-json baseline.json
//   go run ./cmd/cecsan-run -src examples/csrc/ablation.csc \
//       -profile-diff baseline.json
//
// The diff shows the monotonic sweep's site firing once per check_step
// instead of once per element, and the statically safe site gone from the
// table altogether. (Loop-invariant relocation and redundancy elimination
// key on pointer registers reused across checks, which this surface
// language re-derives per access; examples/loopopt exercises those two
// through the builder API.)

func main() {
    var buf = malloc(4096);
    var tab = local int[8];
    for (i = 0; i < 4096; i += 1) {
        buf[i] = i;       // monotonic: one check per check_step after grouping
    }
    for (j = 0; j < 4096; j += 1) {
        tab[3] = j;       // constant index into a sized local: check removed
    }
    free(buf);
    return 0;
}
