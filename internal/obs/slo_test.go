package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func almost(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func TestSLOBudgetMath(t *testing.T) {
	s := NewSLO()
	c := s.Add(SLOConfig{Class: "c", Target: 0.9}, nil)
	const sec = int64(1000)
	// 100 requests, 5 bad: half of the 10% error budget.
	for i := 0; i < 95; i++ {
		c.recordAt(true, sec)
	}
	for i := 0; i < 5; i++ {
		c.recordAt(false, sec)
	}
	st := c.statusAt(sec)
	if st.Good != 95 || st.Total != 100 {
		t.Fatalf("good/total = %d/%d", st.Good, st.Total)
	}
	if !almost(st.BudgetUsed, 0.5) {
		t.Fatalf("budget_used = %v, want 0.5", st.BudgetUsed)
	}
	if st.Exhausted {
		t.Fatal("half-consumed budget reported exhausted")
	}
	// Both windows cover the single active second, so the burn rate equals
	// the bad fraction over the budget: 0.05 / 0.1 = 0.5.
	if !almost(st.BurnShort, 0.5) || !almost(st.BurnLong, 0.5) {
		t.Fatalf("burn = %v/%v, want 0.5/0.5", st.BurnShort, st.BurnLong)
	}
}

func TestSLOExhausted(t *testing.T) {
	s := NewSLO()
	c := s.Add(SLOConfig{Class: "c", Target: 0.9}, nil)
	const sec = int64(1000)
	for i := 0; i < 80; i++ {
		c.recordAt(true, sec)
	}
	for i := 0; i < 20; i++ {
		c.recordAt(false, sec)
	}
	st := c.statusAt(sec)
	if !almost(st.BudgetUsed, 2.0) || !st.Exhausted {
		t.Fatalf("20%% bad against a 10%% budget: budget_used=%v exhausted=%v", st.BudgetUsed, st.Exhausted)
	}
	if !almost(st.BurnShort, 2.0) {
		t.Fatalf("burn_short = %v, want 2.0", st.BurnShort)
	}
}

func TestSLOWindowing(t *testing.T) {
	s := NewSLO()
	c := s.Add(SLOConfig{Class: "c", Target: 0.9, ShortWindow: 10 * time.Second, LongWindow: 60 * time.Second}, nil)
	// An incident 30s ago: outside the short window, inside the long one.
	for i := 0; i < 10; i++ {
		c.recordAt(false, 1000)
	}
	// A healthy current second.
	for i := 0; i < 10; i++ {
		c.recordAt(true, 1030)
	}
	st := c.statusAt(1030)
	if st.BurnShort != 0 {
		t.Fatalf("short window must exclude the 30s-old incident: burn_short=%v", st.BurnShort)
	}
	// Long window: 10 bad of 20 → 0.5 bad fraction / 0.1 budget = 5.
	if !almost(st.BurnLong, 5.0) {
		t.Fatalf("burn_long = %v, want 5.0", st.BurnLong)
	}
}

func TestSLOBucketReset(t *testing.T) {
	s := NewSLO()
	c := s.Add(SLOConfig{Class: "c", Target: 0.5}, nil)
	// Two writes into the same ring slot, sloRingSeconds apart: the second
	// write must reset the stale bucket, not accumulate into it.
	c.recordAt(false, 1000)
	c.recordAt(true, 1000+sloRingSeconds)
	st := c.statusAt(1000 + sloRingSeconds)
	if st.BurnShort != 0 || st.BurnLong != 0 {
		t.Fatalf("stale bucket leaked into the window: burn=%v/%v", st.BurnShort, st.BurnLong)
	}
	// The cumulative counters still see both.
	if st.Good != 1 || st.Total != 2 {
		t.Fatalf("good/total = %d/%d, want 1/2", st.Good, st.Total)
	}
}

func TestSLOP99Objective(t *testing.T) {
	lat := &Histogram{}
	for i := 0; i < 100; i++ {
		lat.Observe(100)
	}
	lat.Observe(100000)

	s := NewSLO()
	c := s.Add(SLOConfig{Class: "c", Target: 0.9, P99ObjectiveUS: 50000}, lat)
	c.recordAt(true, 1000)
	st := c.statusAt(1000)
	if st.P99US <= 0 {
		t.Fatalf("p99_us = %d, want the histogram's p99", st.P99US)
	}
	if st.P99Violated {
		t.Fatalf("p99 %dus within objective 50000us reported violated", st.P99US)
	}

	tight := s.Add(SLOConfig{Class: "tight", Target: 0.9, P99ObjectiveUS: 10}, lat)
	if st := tight.statusAt(1000); !st.P99Violated {
		t.Fatalf("p99 %dus over objective 10us not reported violated", st.P99US)
	}
}

func TestSLOWindowDefaultsAndClamp(t *testing.T) {
	s := NewSLO()
	c := s.Add(SLOConfig{Class: "c", Target: 0.9}, nil)
	if c.cfg.ShortWindow != DefaultSLOShortWindow || c.cfg.LongWindow != DefaultSLOLongWindow {
		t.Fatalf("windows defaulted to %v/%v", c.cfg.ShortWindow, c.cfg.LongWindow)
	}
	d := s.Add(SLOConfig{Class: "d", Target: 0.9, ShortWindow: time.Hour, LongWindow: 2 * time.Hour}, nil)
	if d.cfg.ShortWindow != MaxSLOWindow || d.cfg.LongWindow != MaxSLOWindow {
		t.Fatalf("windows not clamped to MaxSLOWindow: %v/%v", d.cfg.ShortWindow, d.cfg.LongWindow)
	}
}

func TestSLORegisterGauges(t *testing.T) {
	s := NewSLO()
	c := s.Add(SLOConfig{Class: "c", Target: 0.9}, nil)
	for i := 0; i < 8; i++ {
		c.Record(true)
	}
	c.Record(false)
	r := NewRegistry()
	s.Register(r)
	if v, ok := r.Value("slo_target", L("class", "c")); !ok || !almost(v, 0.9) {
		t.Fatalf("slo_target = %v, %v", v, ok)
	}
	if v, ok := r.Value("slo_budget_used", L("class", "c")); !ok || v <= 0 {
		t.Fatalf("slo_budget_used = %v, %v", v, ok)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# HELP slo_budget_used") || !strings.Contains(out, `slo_target{class="c"} 0.9`) {
		t.Fatalf("prometheus exposition missing slo gauges:\n%s", out)
	}
}
