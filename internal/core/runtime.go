package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"cecsan/internal/alloc"
	"cecsan/internal/rt"
	"cecsan/internal/tagptr"
)

// Options configures the CECSan runtime and its instrumentation profile.
// The zero value is not usable; use DefaultOptions as a base.
type Options struct {
	// Arch selects the pointer layout (x86-64 or ARM64).
	Arch tagptr.Arch
	// Name overrides the display name, letting object-granular tagged
	// pointer comparators (the PACMem and CryptSan models) reuse this
	// runtime with SubObject disabled.
	Name string
	// SubObject enables §II.D sub-object bounds narrowing.
	SubObject bool
	// OptRedundant, OptLoopInvariant, OptMonotonic and OptTypeBased toggle
	// the §II.F optimization passes individually (for ablation).
	OptRedundant     bool
	OptLoopInvariant bool
	OptMonotonic     bool
	OptTypeBased     bool
	// CheckStep is the monotonic grouping constant (default 5, §II.F.1).
	CheckStep int64
	// OverflowChaining enables the §V future-work extension: when the
	// metadata table is exhausted, new heap objects are tagged with a
	// reserved CHAINED tag and their bounds kept in a disjoint ordered
	// index, preserving (object-granular) protection at O(log n) check
	// cost instead of dropping it.
	OverflowChaining bool

	// TemporalGenerations enables the first temporal-hardening mode:
	// generation-stamped metadata entries (stale tags fail checks even
	// after their index is rebuilt) plus a delayed-reuse FIFO in the free
	// structure. It closes the table-index half of the tag-reuse window at
	// the cost of GenerationBits of tag space.
	TemporalGenerations bool
	// GenerationBits is the tag-field width surrendered to the generation
	// stamp (0 selects DefaultGenerationBits when TemporalGenerations is
	// set). Each bit halves the table capacity and multiplies the per-entry
	// reuse distance a stale tag must survive by 2.
	GenerationBits uint
	// IndexDelay is the delayed-reuse FIFO depth: a freed index is not
	// re-handed-out until this many others have been freed (0 selects
	// DefaultIndexDelay when TemporalGenerations is set). A non-zero value
	// is honored on its own — delayed reuse without generation stamps is a
	// valid, cheaper configuration. A negative value explicitly disables
	// delayed reuse even under TemporalGenerations — the configuration the
	// serving degradation ladder steps a hardened class down to before
	// abandoning hardening entirely.
	IndexDelay int
	// QuarantineBytes enables the second temporal-hardening mode: a
	// bounded FIFO under the stock allocator that delays chunk-address
	// reuse by up to this many bytes (0 = off). It closes the address half
	// of the tag-reuse window at a bounded RSS cost.
	QuarantineBytes int64
}

// Temporal-hardening defaults, applied by Harden (and by New when
// TemporalGenerations is set with zero-valued knobs).
const (
	// DefaultGenerationBits trades 3 of x86-64's 17 tag bits: 2^14 entries
	// remain and a stale tag survives only if its entry is recycled a
	// multiple of 8 times.
	DefaultGenerationBits = 3
	// DefaultIndexDelay holds each freed index back until 64 more frees.
	DefaultIndexDelay = 64
	// DefaultQuarantineBytes is 8 MiB — four times ASan's default, so the
	// churn that defeats ASan's quarantine (the uaf_quarantine_flush shape)
	// still sits inside CECSan's.
	DefaultQuarantineBytes = 8 << 20
)

// Harden layers both temporal-hardening modes, at their default strengths,
// onto an existing configuration and marks the name.
func Harden(opts Options) Options {
	opts.TemporalGenerations = true
	opts.GenerationBits = DefaultGenerationBits
	opts.IndexDelay = DefaultIndexDelay
	opts.QuarantineBytes = DefaultQuarantineBytes
	opts.Name += "-hardened"
	return opts
}

// HardenedOptions is the hardened CECSan prototype configuration:
// DefaultOptions plus both temporal-reuse mitigations.
func HardenedOptions() Options {
	return Harden(DefaultOptions())
}

// DefaultOptions returns the paper's prototype configuration: x86-64,
// 2^17-entry table, sub-object narrowing and all optimizations on.
func DefaultOptions() Options {
	return Options{
		Arch:             tagptr.X8664,
		Name:             "CECSan",
		SubObject:        true,
		OptRedundant:     true,
		OptLoopInvariant: true,
		OptMonotonic:     true,
		OptTypeBased:     true,
		CheckStep:        5,
	}
}

// ProfileFor derives the LTO instrumentation profile (§III) for the given
// options without constructing a runtime. Building a runtime allocates the
// full metadata table, so callers that only need to know *how to instrument*
// — the execution engine's cache key among them — use this instead.
func ProfileFor(opts Options) rt.Profile {
	if opts.Name == "" {
		opts.Name = "CECSan"
	}
	return rt.Profile{
		Name:             opts.Name,
		CheckLoads:       true,
		CheckStores:      true,
		TagPointers:      true,
		PtrMask:          (uint64(1) << opts.Arch.AddrBits) - 1,
		SubObject:        opts.SubObject,
		TrackStack:       true,
		TrackGlobals:     true,
		OptRedundant:     opts.OptRedundant,
		OptLoopInvariant: opts.OptLoopInvariant,
		OptMonotonic:     opts.OptMonotonic,
		OptTypeBased:     opts.OptTypeBased,
		CheckStep:        opts.CheckStep,
	}
}

// Sanitizer builds the full CECSan sanitizer bundle: the runtime library
// plus the LTO instrumentation profile (§III).
func Sanitizer(opts Options) (rt.Sanitizer, error) {
	r, err := New(opts)
	if err != nil {
		return rt.Sanitizer{}, err
	}
	return rt.Sanitizer{Runtime: r, Profile: ProfileFor(opts)}, nil
}

// Runtime is the CECSan runtime library (rt.Runtime implementation).
type Runtime struct {
	name  string
	arch  tagptr.Arch
	table *Table
	env   rt.Env

	addrBits uint
	signBit  uint64

	// chainTag is the reserved CHAINED tag when overflow chaining is on
	// (0 = chaining disabled).
	chainTag uint64
	spill    *spillIndex

	// quar delays chunk-address reuse when the quarantine hardening mode is
	// on (nil = deallocations go straight to the heap).
	quar *alloc.Quarantine

	trackedGlobals atomic.Int64
	subCreated     atomic.Int64
}

var _ rt.Runtime = (*Runtime)(nil)

// New constructs a CECSan runtime with the given options.
func New(opts Options) (*Runtime, error) {
	if opts.Name == "" {
		opts.Name = "CECSan"
	}
	var genBits uint
	delay := opts.IndexDelay
	if opts.TemporalGenerations {
		genBits = opts.GenerationBits
		if genBits == 0 {
			genBits = DefaultGenerationBits
		}
		if delay == 0 {
			delay = DefaultIndexDelay
		}
	}
	if delay < 0 {
		delay = 0 // explicit opt-out, distinct from "use the default"
	}
	table, err := NewHardenedTable(opts.Arch, genBits, delay)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	r := &Runtime{
		name:     opts.Name,
		arch:     opts.Arch,
		table:    table,
		addrBits: opts.Arch.AddrBits,
		signBit:  1 << 63,
	}
	if opts.QuarantineBytes > 0 {
		r.quar = alloc.NewQuarantine(opts.QuarantineBytes)
	}
	if opts.OverflowChaining {
		// The CHAINED tag is the all-ones tag field; ReserveLast keeps the
		// top *index* out of circulation, so no generation-stamped tag can
		// collide with it.
		r.chainTag = opts.Arch.MaxIndex()
		r.spill = &spillIndex{}
		table.ReserveLast()
	}
	return r, nil
}

// Name returns the sanitizer's display name.
func (r *Runtime) Name() string { return r.name }

// Attach implements rt.Runtime. It plays the role of the load-time
// constructor that mmaps and initializes the metadata table (§III); here the
// table was built in New, so Attach only binds the machine environment.
func (r *Runtime) Attach(env *rt.Env) error {
	r.env = *env
	return nil
}

// Table exposes the metadata table for white-box tests and stats.
func (r *Runtime) Table() *Table { return r.table }

// ClampMetaTable implements rt.MetaTableClamper: it caps the metadata table
// at n allocatable entries so fault injection can force the §V exhaustion
// path. The clamp is run state — Table.Reset (and hence ResetRuntime)
// removes it.
func (r *Runtime) ClampMetaTable(n uint64) { r.table.Clamp(n) }

// DegradedAllocs implements rt.Degrader: the number of allocations this run
// that found the table exhausted. Without overflow chaining each one fell
// back to an untagged pointer validating through the reserved entry 0 —
// functionality preserved, coverage lost (§V); with chaining the same count
// went to the spill index instead and stayed protected.
func (r *Runtime) DegradedAllocs() int64 {
	return r.table.Stats().Exhausted
}

// ResetRuntime implements rt.Resettable: it restores the runtime to its
// freshly-constructed state so the execution engine can recycle it instead
// of paying New's full metadata-table allocation per program. The next
// Attach rebinds the machine environment.
func (r *Runtime) ResetRuntime() {
	r.table.Reset()
	if r.quar != nil {
		r.quar.Reset()
	}
	if r.spill != nil {
		r.spill.mu.Lock()
		r.spill.spans = r.spill.spans[:0]
		r.spill.inserts = 0
		r.spill.lookups = 0
		r.spill.mu.Unlock()
	}
	r.trackedGlobals.Store(0)
	r.subCreated.Store(0)
	r.env = rt.Env{}
}

// Malloc implements rt.Runtime: allocate from the stock heap (CECSan keeps
// the system allocator, §I), create a metadata entry, and return the tagged
// pointer (§II.B.2).
func (r *Runtime) Malloc(size int64) (uint64, rt.PtrMeta, error) {
	raw, err := r.env.Heap.Alloc(size)
	if err != nil && r.quar != nil && errors.Is(err, alloc.ErrOutOfMemory) {
		// Graceful quarantine degradation: trade the delayed-reuse coverage
		// back for progress before reporting OOM (counted in Flushes).
		if r.quar.Flush(r.env.Heap) > 0 {
			raw, err = r.env.Heap.Alloc(size)
		}
	}
	if err != nil {
		return 0, rt.PtrMeta{}, err
	}
	idx, ok := r.table.Allocate(raw, raw+uint64(size), false)
	if !ok {
		if r.spill != nil {
			// §V extension: chain the object's metadata in the ordered
			// spill index under the reserved CHAINED tag.
			r.spill.insert(raw, raw+uint64(size))
			return r.arch.MustPack(raw, r.chainTag), rt.PtrMeta{}, nil
		}
		// Table exhausted (§V limitation): fall back to the reserved entry;
		// the object is usable but unprotected.
		return raw, rt.PtrMeta{}, nil
	}
	return r.arch.MustPack(raw, idx), rt.PtrMeta{}, nil
}

// Free implements rt.Runtime with Algorithm 2: the pointer must carry valid
// metadata whose low bound equals its address — rejecting frees of interior
// pointers (invalid free), dangling pointers (double free, because the low
// bound was set to INVALID on the first free), and non-heap objects.
func (r *Runtime) Free(ptr uint64, _ rt.PtrMeta) *rt.Violation {
	idx := r.arch.Index(ptr)
	raw := r.arch.Strip(ptr)
	if r.spill != nil && idx == r.chainTag {
		// Chained object: the spill entry must exist with this exact base.
		if !r.spill.remove(raw) {
			return &rt.Violation{
				Kind: rt.KindInvalidFree, Ptr: ptr, Addr: raw, Seg: alloc.SegmentOf(raw),
				Detail: "no chained metadata at this base (freed already, or interior pointer)",
			}
		}
		r.heapFree(raw)
		return nil
	}
	if idx == 0 {
		// Untagged pointer: from uninstrumented code or the exhaustion
		// fallback. CECSan uses it as-is with the standard deallocation
		// (§II.E), performing no check.
		r.heapFree(raw)
		return nil
	}
	low, _, gx := r.table.Probe(idx)
	if low != raw || gx != 0 {
		if low == Invalid {
			return &rt.Violation{
				Kind: rt.KindDoubleFree, Ptr: ptr, Addr: raw, Seg: alloc.SegmentOf(raw),
				Detail: "metadata entry already invalidated (Algorithm 2, line 4)",
			}
		}
		if gx != 0 {
			// Generation-stamped variant of Algorithm 2's line 4: the entry
			// was rebuilt for a newer object, so this pointer's object was
			// already freed even though the bases may coincide.
			return &rt.Violation{
				Kind: rt.KindDoubleFree, Ptr: ptr, Addr: raw, Seg: alloc.SegmentOf(raw),
				Detail: "pointer generation predates the entry's (object freed, index reused)",
			}
		}
		return &rt.Violation{
			Kind: rt.KindInvalidFree, Ptr: ptr, Addr: raw, Seg: alloc.SegmentOf(raw),
			Detail: fmt.Sprintf("pointer is not the object base (base=%#x; Algorithm 2, line 4)", low),
		}
	}
	if seg := alloc.SegmentOf(raw); seg != alloc.SegHeap {
		return &rt.Violation{
			Kind: rt.KindInvalidFree, Ptr: ptr, Addr: raw, Seg: seg,
			Detail: "deallocation of a non-heap object",
		}
	}
	// Invalidate the metadata entry first (§II.B.4), then free through the
	// standard deallocator.
	r.table.Free(idx)
	r.heapFree(raw)
	return nil
}

// heapFree returns a chunk to the stock allocator, via the address
// quarantine when that hardening mode is on.
func (r *Runtime) heapFree(raw uint64) {
	if r.quar != nil {
		r.quar.Free(r.env.Heap, raw)
		return
	}
	r.env.Heap.Free(raw)
}

// StackAlloc implements rt.Runtime: unsafe stack objects (§II.C.3) get a
// metadata entry in the function prologue and a tagged pointer; safe ones
// are returned untagged and unchecked.
func (r *Runtime) StackAlloc(raw uint64, size int64, tracked bool) (uint64, rt.PtrMeta) {
	if !tracked {
		return raw, rt.PtrMeta{}
	}
	idx, ok := r.table.Allocate(raw, raw+uint64(size), false)
	if !ok {
		return raw, rt.PtrMeta{}
	}
	return r.arch.MustPack(raw, idx), rt.PtrMeta{}
}

// StackRelease implements rt.Runtime: the function epilogue clears the
// metadata of tracked stack objects, so later uses of escaped pointers fail
// the low-bound check (use-after-scope).
func (r *Runtime) StackRelease(ptr uint64, _ int64) {
	if idx := r.arch.Index(ptr); idx != 0 && !r.isChainTag(idx) {
		r.table.Free(idx)
	}
}

// isChainTag reports whether idx is the reserved CHAINED tag.
func (r *Runtime) isChainTag(idx uint64) bool {
	return r.spill != nil && idx == r.chainTag
}

// GlobalInit implements rt.Runtime: unsafe globals receive metadata and a
// tagged pointer which the machine publishes in the Global Pointer Table;
// accesses are rewritten by instrumentation to load from the GPT (§II.C.3).
func (r *Runtime) GlobalInit(_ string, raw uint64, size int64, tracked bool) (uint64, rt.PtrMeta) {
	if !tracked {
		return raw, rt.PtrMeta{}
	}
	idx, ok := r.table.Allocate(raw, raw+uint64(size), false)
	if !ok {
		return raw, rt.PtrMeta{}
	}
	r.trackedGlobals.Add(1)
	return r.arch.MustPack(raw, idx), rt.PtrMeta{}
}

// Check implements rt.Runtime with Algorithm 1, the optimized combined
// spatial+temporal dereference check: both bound differences are computed,
// OR-ed, and the sign bit tested once. A freed entry's INVALID low bound
// makes the same single test fail, providing the temporal guarantee. With
// generation stamping on, the XOR of the tag's stamp against the entry's
// generation is negated and folded into the same OR — any mismatch sets the
// sign bit, so the hardened check still costs one branch.
func (r *Runtime) Check(ptr uint64, _ rt.PtrMeta, off, size int64, k rt.AccessKind) *rt.Violation {
	idx := ptr >> r.addrBits
	if r.spill != nil && idx == r.chainTag {
		return r.checkChained(ptr, off, size, k)
	}
	low, high, gx := r.table.Probe(idx)
	p := (ptr & ((1 << r.addrBits) - 1)) + uint64(off)
	d1 := p - low                   // >= 0 iff p >= low
	d2 := high - (p + uint64(size)) // >= 0 iff p+size <= high
	d3 := -gx                       // 0 iff generations match (or stamping off)
	if (d1|d2|d3)&r.signBit == 0 {
		return nil
	}
	return r.classify(ptr, p, idx, low, gx, size, k)
}

// classify builds the violation report on the slow path.
func (r *Runtime) classify(ptr, p, idx uint64, low, gx uint64, size int64, k rt.AccessKind) *rt.Violation {
	v := &rt.Violation{Ptr: ptr, Addr: p, Size: size, Seg: alloc.SegmentOf(p)}
	switch {
	case low == Invalid:
		v.Kind = rt.KindUseAfterFree
		v.Detail = "metadata low bound is INVALID: object lifetime ended"
	case gx != 0:
		v.Kind = rt.KindUseAfterFree
		v.Detail = "pointer generation predates the entry's: stale tag into a reused index"
	case r.table.IsSub(idx):
		v.Kind = rt.KindSubObjectOverflow
		v.Detail = "access exceeds narrowed sub-object bounds (§II.D)"
	case k == rt.Write:
		v.Kind = rt.KindOOBWrite
		v.Detail = "access outside object bounds (Algorithm 1)"
	default:
		v.Kind = rt.KindOOBRead
		v.Detail = "access outside object bounds (Algorithm 1)"
	}
	if k == rt.Write && v.Kind == rt.KindOOBRead {
		v.Kind = rt.KindOOBWrite
	}
	return v
}

// checkChained validates an access through a CHAINED-tagged pointer by
// searching the spill index — the §V linked-metadata cost.
func (r *Runtime) checkChained(ptr uint64, off, size int64, k rt.AccessKind) *rt.Violation {
	p := r.arch.Strip(ptr) + uint64(off)
	sp, ok := r.spill.lookup(p)
	if ok && p+uint64(size) <= sp.end {
		return nil
	}
	v := &rt.Violation{Ptr: ptr, Addr: p, Size: size, Seg: alloc.SegmentOf(p)}
	if !ok {
		v.Kind = rt.KindUseAfterFree
		v.Detail = "no chained metadata covers the address (freed or out of bounds)"
		if k == rt.Write {
			v.Kind = rt.KindOOBWrite
		}
		return v
	}
	if k == rt.Write {
		v.Kind = rt.KindOOBWrite
	} else {
		v.Kind = rt.KindOOBRead
	}
	v.Detail = "access exceeds chained object bounds"
	return v
}

// Addr implements rt.Runtime: once a check succeeds the pointer is stripped
// and dereferenced (§II.C.1).
func (r *Runtime) Addr(ptr uint64) uint64 { return r.arch.Strip(ptr) }

// UsableSize implements rt.Runtime: the object extent is the metadata
// entry's bounds; untagged pointers fall back to the allocator's registry.
func (r *Runtime) UsableSize(ptr uint64, _ rt.PtrMeta) int64 {
	idx := r.arch.Index(ptr)
	raw := r.arch.Strip(ptr)
	if r.isChainTag(idx) {
		if sp, ok := r.spill.lookup(raw); ok && sp.base == raw {
			return int64(sp.end - sp.base)
		}
		return -1
	}
	if idx != 0 {
		low, high, gx := r.table.Probe(idx)
		if low == raw && high > low && gx == 0 {
			return int64(high - low)
		}
		return -1
	}
	if sz, ok := r.env.Heap.Lookup(raw); ok {
		return sz
	}
	return -1
}

// SubPtr implements rt.Runtime: create the temporary narrowed sub-object
// pointer of §II.D, with bounds derived from the member's type.
func (r *Runtime) SubPtr(base uint64, off, size int64) (uint64, rt.PtrMeta) {
	raw := r.arch.Strip(base) + uint64(off)
	idx, ok := r.table.Allocate(raw, raw+uint64(size), true)
	if !ok {
		// Degraded mode under table exhaustion: keep the base pointer's
		// object-granular protection.
		return base + uint64(off), rt.PtrMeta{}
	}
	r.subCreated.Add(1)
	return r.arch.MustPack(raw, idx), rt.PtrMeta{}
}

// SubRelease implements rt.Runtime: clear the narrowed pointer's metadata
// when it goes out of scope (Figure 3, line 13).
func (r *Runtime) SubRelease(ptr uint64) {
	if idx := r.arch.Index(ptr); idx != 0 && !r.isChainTag(idx) {
		r.table.Free(idx)
	}
}

// PrepareExternArg implements rt.Runtime (§II.E): tagged pointers passed to
// external functions are checked (the object must still be live and the
// pointer within it) and stripped.
func (r *Runtime) PrepareExternArg(ptr uint64) (uint64, *rt.Violation) {
	idx := r.arch.Index(ptr)
	raw := r.arch.Strip(ptr)
	if idx == 0 {
		return raw, nil
	}
	if r.isChainTag(idx) {
		if _, ok := r.spill.lookup(raw); !ok {
			return raw, &rt.Violation{
				Kind: rt.KindUseAfterFree, Ptr: ptr, Addr: raw, Seg: alloc.SegmentOf(raw),
				Detail: "dangling chained pointer passed to external function",
			}
		}
		return raw, nil
	}
	low, high, gx := r.table.Probe(idx)
	d1 := raw - low
	d2 := high - raw // one-past-end pointers remain legal to pass
	d3 := -gx
	if (d1|d2|d3)&r.signBit != 0 {
		if low == Invalid || gx != 0 {
			return raw, &rt.Violation{
				Kind: rt.KindUseAfterFree, Ptr: ptr, Addr: raw, Seg: alloc.SegmentOf(raw),
				Detail: "dangling pointer passed to external function",
			}
		}
		return raw, &rt.Violation{
			Kind: rt.KindOOBRead, Ptr: ptr, Addr: raw, Seg: alloc.SegmentOf(raw),
			Detail: "out-of-bounds pointer passed to external function",
		}
	}
	return raw, nil
}

// AdoptExternRet implements rt.Runtime: pointers returned from
// uninstrumented code are used as-is under the reserved entry 0 — full
// functionality, no checks (§II.E).
func (r *Runtime) AdoptExternRet(raw uint64) uint64 { return raw }

// LibcCheck implements rt.Runtime. CECSan instruments call sites during LTO
// rather than relying on interceptors, so every libc function — including
// the wide-character family most sanitizers overlook (§IV.B) — gets a full
// range check against the pointer's metadata.
func (r *Runtime) LibcCheck(_ string, ptr uint64, meta rt.PtrMeta, n int64, k rt.AccessKind) *rt.Violation {
	if n <= 0 {
		return nil
	}
	return r.Check(ptr, meta, 0, n, k)
}

// LoadPtrMeta implements rt.Runtime; CECSan keeps no per-pointer metadata.
func (r *Runtime) LoadPtrMeta(uint64) rt.PtrMeta { return rt.PtrMeta{} }

// StorePtrMeta implements rt.Runtime; CECSan keeps no per-pointer metadata.
func (r *Runtime) StorePtrMeta(uint64, rt.PtrMeta) {}

// OverheadBytes implements rt.Runtime: the table's touched pages plus one
// GPT slot per protected global. No shadow memory, no redzones, no
// quarantine — the source of the paper's Table IV/V memory advantage.
func (r *Runtime) OverheadBytes() int64 {
	b := r.table.TouchedBytes() + 8*r.trackedGlobals.Load()
	if r.spill != nil {
		b += r.spill.bytes()
	}
	if r.quar != nil {
		// Bookkeeping only: the held chunk bytes stay live in the heap and
		// are charged to program memory, which is the point of the RSS
		// trade-off measurement.
		b += r.quar.OverheadBytes()
	}
	return b
}

// TemporalStats implements rt.TemporalHardened: the graceful-degradation
// counters of the temporal-hardening modes. All zero when both modes are
// off.
func (r *Runtime) TemporalStats() rt.TemporalStats {
	st := r.table.Stats()
	ts := rt.TemporalStats{
		GenerationWraps: st.GenWraps,
		IndexSpills:     st.IndexSpills,
	}
	if r.quar != nil {
		qs := r.quar.Stats()
		ts.QuarantineEvictions = qs.Evictions
		ts.QuarantineFlushes = qs.Flushes
		ts.QuarantinedBytes = qs.HeldBytes
	}
	return ts
}

// ChainedObjects returns the number of objects currently protected by the
// §V overflow-chaining extension.
func (r *Runtime) ChainedObjects() int {
	if r.spill == nil {
		return 0
	}
	return r.spill.size()
}

// SubCreated returns the number of narrowed sub-object pointers created, for
// the ablation benchmarks.
func (r *Runtime) SubCreated() int64 { return r.subCreated.Load() }
