module cecsan

go 1.22
