package fuzz

// Minimize shrinks a case by statement-group deletion: it repeatedly tries
// dropping one non-essential op, re-renders (which also prunes objects no
// surviving op uses) and keeps the deletion when the keep-predicate still
// accepts the candidate. Generated programs carry at most a handful of
// ops, so the quadratic greedy loop is cheap and — unlike ddmin's chunked
// passes — yields a 1-minimal result directly.
//
// Returns nil when nothing could be removed (the case is already minimal
// or keep rejects every shrink).
func Minimize(c *Case, keep func(*Case) bool) *Case {
	cur := cloneCase(c)
	shrunk := false
	for {
		removed := false
		for i := 0; i < len(cur.ops); i++ {
			if cur.ops[i].essential {
				continue
			}
			cand := cloneCase(cur)
			cand.ops = append(cand.ops[:i], cand.ops[i+1:]...)
			cand.render()
			if keep(cand) {
				cur = cand
				removed, shrunk = true, true
				break // restart: indices shifted
			}
		}
		if !removed {
			break
		}
	}
	if !shrunk {
		return nil
	}
	return cur
}

// cloneCase deep-copies the mutable generator state (op list; objects are
// only read during render, but the slice header must be independent so the
// minimizer never aliases the original).
func cloneCase(c *Case) *Case {
	out := &Case{Seed: c.Seed, Source: c.Source, Oracle: c.Oracle}
	out.Inputs = append([][]byte(nil), c.Inputs...)
	out.objects = append([]object(nil), c.objects...)
	out.ops = append([]op(nil), c.ops...)
	return out
}
