package obs

import (
	"fmt"
	"time"
)

// TraceID identifies one request's lifecycle trace. IDs derive
// deterministically from (campaign seed, stream index), so the same request
// carries the same ID at any worker count, queue depth or speedup — traces
// are byte-comparable across runs the same way stream_digest is.
type TraceID uint64

// String renders the ID as fixed-width hex, the form exported records use.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// DeriveTraceID maps (seed, stream index) to a TraceID with a splitmix64
// finalizer — the same construction the traffic layer uses for its seed
// tree, reimplemented here so obs stays dependency-free in-repo.
func DeriveTraceID(seed, index uint64) TraceID {
	z := seed + 0x9e3779b97f4a7c15*(index+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return TraceID(z)
}

// Terminal outcomes of a request lifecycle. They mirror the serving layer's
// accounting: every generated request ends in exactly one of these.
const (
	OutcomeClean      = "clean"
	OutcomeDetected   = "detected"
	OutcomeFault      = "fault"
	OutcomeRejected   = "rejected"
	OutcomeShedQueue  = "shed_queue"
	OutcomeShedBucket = "shed_bucket"
	OutcomeShedDelay  = "shed_delay"
	OutcomeAbandoned  = "abandoned"
)

// TraceEvent is one step in a request lifecycle: generate, admit, dequeue,
// attempt, retry, engine sub-spans (instrument/run/reset), the terminal
// outcome. AtUS is the offset from the trace start; DurUS is set for spans,
// zero for instants.
type TraceEvent struct {
	Kind string `json:"kind"`
	AtUS int64  `json:"at_us"`
	// DurUS is the span duration for timed phases (queue wait, engine
	// sub-spans); 0 for instant events.
	DurUS int64 `json:"dur_us,omitempty"`
	// Attempt numbers the execution attempt the event belongs to (1-based);
	// 0 for events outside the retry loop.
	Attempt int `json:"attempt,omitempty"`
	// Detail carries the event's qualifier: the degradation rung of an
	// attempt, the fault class of a fault/retry, the shed reason.
	Detail string `json:"detail,omitempty"`
	// ValueUS carries an event-specific duration that is not a span — the
	// seeded backoff a retry slept, for example.
	ValueUS int64 `json:"value_us,omitempty"`
}

// RequestTrace is one request's lifecycle record, threaded from generation
// through admission, shedding, breaker decisions, retries and engine
// execution to its terminal outcome. A trace is owned by one goroutine at a
// time (the producer, then the single worker executing the request), so it
// needs no internal locking; handing it to the flight recorder via Finish
// is the only cross-goroutine transfer.
type RequestTrace struct {
	ID    TraceID
	Class string
	Index uint64
	Start time.Time

	// Outcome, Attempts, Retried and DeadlineMiss summarize the lifecycle;
	// the serving layer fills them in as it accounts the request.
	Outcome      string
	Attempts     int
	Retried      bool
	DeadlineMiss bool

	Events []TraceEvent
}

// NewRequestTrace starts a trace for the request at the given stream index.
// The "generate" event is recorded at offset zero.
func NewRequestTrace(seed, index uint64, class string) *RequestTrace {
	t := &RequestTrace{
		ID:    DeriveTraceID(seed, index),
		Class: class,
		Index: index,
		Start: time.Now(),
	}
	t.Events = append(t.Events, TraceEvent{Kind: "generate"})
	return t
}

// Add appends an instant event at the current offset and returns a pointer
// to it so the caller can attach Attempt/Detail/ValueUS. The pointer is
// only valid until the next Add/Span call (the slice may grow).
func (t *RequestTrace) Add(kind string) *TraceEvent {
	t.Events = append(t.Events, TraceEvent{Kind: kind, AtUS: time.Since(t.Start).Microseconds()})
	return &t.Events[len(t.Events)-1]
}

// Span appends a timed event covering [start, start+d).
func (t *RequestTrace) Span(kind string, start time.Time, d time.Duration) {
	t.Events = append(t.Events, TraceEvent{
		Kind:  kind,
		AtUS:  start.Sub(t.Start).Microseconds(),
		DurUS: d.Microseconds(),
	})
}

// Complete marks the terminal outcome and records it as the trace's final
// event.
func (t *RequestTrace) Complete(outcome string) {
	t.Outcome = outcome
	t.Add(outcome)
}
