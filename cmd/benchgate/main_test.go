package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorruptBaselineIsLoudAndTyped: a truncated BENCH_serve.json (the
// classic interrupted-write artifact) must surface as a corruptError — the
// marker main maps to exit 2 — whose one-line message names the damaged
// path, for every record loader.
func TestCorruptBaselineIsLoudAndTyped(t *testing.T) {
	whole, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Fatalf("committed serve baseline unreadable: %v", err)
	}
	truncated := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := os.WriteFile(truncated, whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	loaders := []struct {
		name string
		load func(path string) error
	}{
		{"serve", func(p string) error { _, err := loadServe(p); return err }},
		{"bench", func(p string) error { _, err := load(p); return err }},
		{"overload", func(p string) error { _, err := loadOverload(p); return err }},
	}
	for _, l := range loaders {
		t.Run(l.name, func(t *testing.T) {
			err := l.load(truncated)
			if err == nil {
				t.Fatal("truncated record parsed without error")
			}
			var ce *corruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error not classified corrupt (exit 2): %v", err)
			}
			if !strings.Contains(err.Error(), truncated) {
				t.Fatalf("error does not name the damaged file: %v", err)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("corruption error must be one line: %q", err.Error())
			}
		})
	}

	// A missing file stays a plain os error (gateServe turns it into the
	// bootstrap skip), never a corruption verdict.
	_, err = loadServe(filepath.Join(t.TempDir(), "absent.json"))
	if err == nil || !os.IsNotExist(err) {
		t.Fatalf("missing file must stay an os.IsNotExist error, got %v", err)
	}
	var ce *corruptError
	if errors.As(err, &ce) {
		t.Fatal("missing file must not be classified corrupt")
	}
}
