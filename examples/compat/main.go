// Compat demonstrates §II.E: tagged pointers crossing into external,
// uninstrumented code and back. Arguments are checked and stripped at the
// boundary, functions that return one of their pointer arguments get the
// tag re-applied, and pointers born in foreign code map to the reserved
// metadata entry — usable, never checked, never breaking functionality.
package main

import (
	"fmt"
	"os"

	"cecsan"
	"cecsan/prog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "compat:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("1) tagged pointer survives an external round trip; protection intact after return")
	{
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		buf := f.MallocBytes(32)
		// same = ext_identity(buf): external function returning its arg;
		// the §II.E wrapper strips the tag for the callee and re-applies it
		// to the returned pointer.
		same := f.CallExternal("ext_identity", true, buf)
		f.Store(same, 31, f.Const(1), prog.Char()) // in bounds: fine
		f.Store(same, 32, f.Const(1), prog.Char()) // overflow: must be caught
		f.RetVoid()
		res, err := cecsan.Run(pb.MustBuild(), cecsan.Config{})
		if err != nil {
			return err
		}
		fmt.Printf("   after round trip, overflow detected: %v (%v)\n\n", res.Violation != nil, res.Violation)
	}

	fmt.Println("2) foreign pointers (allocated by uninstrumented code) are usable as-is, unchecked")
	{
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		foreign := f.CallExternal("ext_alloc", false, f.Const(16))
		f.Store(foreign, 0, f.Const(42), prog.Int64T())
		v := f.Load(foreign, 0, prog.Int64T())
		f.Libc("print_int", v)
		f.CallExternal("ext_free", false, foreign)
		f.RetVoid()
		m, err := cecsan.NewMachine(pb.MustBuild(), cecsan.Config{})
		if err != nil {
			return err
		}
		res := m.Run()
		fmt.Printf("   program output: %v, violation: %v\n\n", m.Output(), res.Violation)
	}

	fmt.Println("3) dangling pointers are rejected BEFORE reaching external code")
	{
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		buf := f.MallocBytes(32)
		f.Free(buf)
		f.CallExternal("ext_fill", false, buf, f.Const(32), f.Const(0)) // would corrupt foreign-side
		f.RetVoid()
		res, err := cecsan.Run(pb.MustBuild(), cecsan.Config{})
		if err != nil {
			return err
		}
		fmt.Printf("   dangling argument detected at the boundary: %v (%v)\n\n", res.Violation != nil, res.Violation)
	}

	fmt.Println("4) external code writing through a stripped pointer keeps working (no layout change)")
	{
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		buf := f.MallocBytes(8)
		f.CallExternal("ext_fill", false, buf, f.Const(8), f.Const(0x5A))
		v := f.Load(buf, 0, prog.Char())
		f.Libc("print_int", v)
		f.Free(buf)
		f.RetVoid()
		m, err := cecsan.NewMachine(pb.MustBuild(), cecsan.Config{})
		if err != nil {
			return err
		}
		res := m.Run()
		fmt.Printf("   foreign write visible to instrumented code: output=%v violation=%v\n", m.Output(), res.Violation)
	}
	return nil
}
