// Command specbench regenerates the paper's performance evaluation:
// Table IV (per-benchmark runtime and memory overhead on the SPEC
// CPU2006-like workloads) and Table V (aggregates on the SPEC CPU2017-like
// workloads, OpenMP-analogue parallel regions included).
//
// Usage:
//
//	specbench -suite 2006|2017|smoke [-reps 3] [-tools ASan,ASAN--,CECSan]
//	          [-workers N] [-json BENCH_table4.json]
//
// Timed measurement is intentionally serial — one workload at a time, so
// wall-clock numbers are not polluted by sibling measurements. The shared
// -workers flag is accepted for interface uniformity with the other tools
// and recorded in the -json output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cecsan/internal/cliutil"
	"cecsan/internal/harness"
	"cecsan/internal/sanitizers"
	"cecsan/internal/specsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "specbench:", err)
		os.Exit(1)
	}
}

// toolJSON is one tool's entry in the -json record.
type toolJSON struct {
	Name              string  `json:"name"`
	AvgRuntimePct     float64 `json:"avg_runtime_pct"`
	GeoRuntimePct     float64 `json:"geomean_runtime_pct"`
	AvgMemoryPct      float64 `json:"avg_memory_pct"`
	GeoMemoryPct      float64 `json:"geomean_memory_pct"`
	Runs              int64   `json:"runs"`
	CacheHits         int64   `json:"cache_hits"`
	CacheMisses       int64   `json:"cache_misses"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	InstrumentSeconds float64 `json:"instrument_seconds"`
	ExecuteSeconds    float64 `json:"execute_seconds"`
}

// benchJSON is the BENCH_table4/5.json schema.
type benchJSON struct {
	Suite       string     `json:"suite"`
	Reps        int        `json:"reps"`
	Workloads   int        `json:"workloads"`
	Workers     int        `json:"workers"`
	WallSeconds float64    `json:"wall_seconds"`
	Tools       []toolJSON `json:"tools"`
}

func run() error {
	suite := flag.String("suite", "2006", "workload suite: 2006, 2017 or smoke")
	reps := flag.Int("reps", 3, "repetitions per measurement (best-of)")
	toolsFlag := flag.String("tools", "ASan,ASAN--,CECSan", "comma-separated sanitizer list")
	model := flag.Bool("model", false, "also print the cycle-model overhead table (per-operation costs from the published instrumentation sequences)")
	workers := cliutil.WorkersFlag()
	jsonPath := flag.String("json", "", "also write a machine-readable benchmark record to this path")
	obsFlags := cliutil.ObsFlagsCmd()
	flag.Parse()

	o, srv, err := obsFlags.Build()
	if err != nil {
		return err
	}
	harness.Obs = o
	defer func() { harness.Obs = nil }()

	var ws []specsim.Workload
	switch *suite {
	case "2006":
		ws = specsim.Spec2006()
	case "2017":
		ws = specsim.Spec2017()
	case "smoke":
		ws = specsim.Smoke()
	default:
		return fmt.Errorf("unknown suite %q", *suite)
	}

	var tools []sanitizers.Name
	for _, t := range strings.Split(*toolsFlag, ",") {
		tools = append(tools, sanitizers.Name(strings.TrimSpace(t)))
	}

	harness.Verbose = true
	fmt.Printf("measuring %d workloads x %d tools (reps=%d)...\n", len(ws), len(tools), *reps)
	start := time.Now()
	table, err := harness.EvaluatePerf(ws, tools, *reps)
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	if *suite == "2017" {
		fmt.Println(harness.FormatTable5(table))
	} else {
		fmt.Println(harness.FormatTable4(table))
	}
	if *model {
		ct, err := harness.EvaluateCycles(ws, tools)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatCycleTable(ct))
	}

	if *jsonPath != "" {
		rec := benchJSON{
			Suite:       *suite,
			Reps:        *reps,
			Workloads:   len(ws),
			Workers:     cliutil.ResolveWorkers(*workers),
			WallSeconds: wall,
		}
		for _, tool := range append([]sanitizers.Name{sanitizers.Native}, tools...) {
			es := table.Engines[tool]
			tj := toolJSON{
				Name:              string(tool),
				Runs:              es.Runs,
				CacheHits:         es.CacheHits,
				CacheMisses:       es.CacheMisses,
				CacheHitRate:      es.CacheHitRate(),
				InstrumentSeconds: es.InstrumentTime.Seconds(),
				ExecuteSeconds:    es.ExecuteTime.Seconds(),
			}
			if tool != sanitizers.Native {
				tj.AvgRuntimePct = table.Average(tool, false)
				tj.GeoRuntimePct = table.Geomean(tool, false)
				tj.AvgMemoryPct = table.Average(tool, true)
				tj.GeoMemoryPct = table.Geomean(tool, true)
			}
			rec.Tools = append(rec.Tools, tj)
		}
		if err := cliutil.WriteJSON(*jsonPath, rec); err != nil {
			return err
		}
	}
	return obsFlags.Finish(o, srv, 0)
}
