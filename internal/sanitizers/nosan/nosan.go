// Package nosan implements the uninstrumented baseline: a runtime that
// allocates through the stock allocator and never checks anything. Its
// execution time and footprint are the "native" reference every overhead
// percentage in Tables IV and V is computed against.
package nosan

import (
	"cecsan/internal/rt"
)

// Runtime is the pass-through runtime.
type Runtime struct {
	env rt.Env
}

var _ rt.Runtime = (*Runtime)(nil)

// New returns the baseline runtime.
func New() *Runtime { return &Runtime{} }

// ProfileFor returns the (empty) native profile: no checks, no tagging.
func ProfileFor() rt.Profile { return rt.Profile{Name: "native"} }

// Sanitizer returns the bundled runtime + (empty) profile.
func Sanitizer() rt.Sanitizer {
	return rt.Sanitizer{Runtime: New(), Profile: ProfileFor()}
}

// Name implements rt.Runtime.
func (r *Runtime) Name() string { return "native" }

// Attach implements rt.Runtime.
func (r *Runtime) Attach(env *rt.Env) error {
	r.env = *env
	return nil
}

// Malloc implements rt.Runtime: plain heap allocation.
func (r *Runtime) Malloc(size int64) (uint64, rt.PtrMeta, error) {
	p, err := r.env.Heap.Alloc(size)
	return p, rt.PtrMeta{}, err
}

// Free implements rt.Runtime: plain deallocation; invalid frees are the
// allocator's silent undefined behaviour.
func (r *Runtime) Free(ptr uint64, _ rt.PtrMeta) *rt.Violation {
	r.env.Heap.Free(ptr)
	return nil
}

// StackAlloc implements rt.Runtime.
func (r *Runtime) StackAlloc(raw uint64, _ int64, _ bool) (uint64, rt.PtrMeta) {
	return raw, rt.PtrMeta{}
}

// StackRelease implements rt.Runtime.
func (r *Runtime) StackRelease(uint64, int64) {}

// GlobalInit implements rt.Runtime.
func (r *Runtime) GlobalInit(_ string, raw uint64, _ int64, _ bool) (uint64, rt.PtrMeta) {
	return raw, rt.PtrMeta{}
}

// Check implements rt.Runtime: never called (no checks are instrumented),
// and a no-op if it is.
func (r *Runtime) Check(uint64, rt.PtrMeta, int64, int64, rt.AccessKind) *rt.Violation {
	return nil
}

// Addr implements rt.Runtime.
func (r *Runtime) Addr(ptr uint64) uint64 { return ptr }

// UsableSize implements rt.Runtime via the allocator registry.
func (r *Runtime) UsableSize(ptr uint64, _ rt.PtrMeta) int64 {
	if sz, ok := r.env.Heap.Lookup(ptr); ok {
		return sz
	}
	return -1
}

// SubPtr implements rt.Runtime.
func (r *Runtime) SubPtr(base uint64, off, _ int64) (uint64, rt.PtrMeta) {
	return base + uint64(off), rt.PtrMeta{}
}

// SubRelease implements rt.Runtime.
func (r *Runtime) SubRelease(uint64) {}

// PrepareExternArg implements rt.Runtime.
func (r *Runtime) PrepareExternArg(ptr uint64) (uint64, *rt.Violation) { return ptr, nil }

// AdoptExternRet implements rt.Runtime.
func (r *Runtime) AdoptExternRet(raw uint64) uint64 { return raw }

// LibcCheck implements rt.Runtime: no interceptors.
func (r *Runtime) LibcCheck(string, uint64, rt.PtrMeta, int64, rt.AccessKind) *rt.Violation {
	return nil
}

// LoadPtrMeta implements rt.Runtime.
func (r *Runtime) LoadPtrMeta(uint64) rt.PtrMeta { return rt.PtrMeta{} }

// StorePtrMeta implements rt.Runtime.
func (r *Runtime) StorePtrMeta(uint64, rt.PtrMeta) {}

// OverheadBytes implements rt.Runtime.
func (r *Runtime) OverheadBytes() int64 { return 0 }
