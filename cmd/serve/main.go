// Command serve runs a long-lived traffic campaign: a YAML workload spec
// (internal/traffic) is expanded into a deterministic request stream of
// heterogeneous client classes, admitted through a bounded queue into
// per-class engine pools, with deadline-miss, shed and per-class latency
// percentile accounting.
//
// Usage:
//
//	serve -spec examples/workloads/interactive-batch.yaml
//	      [-seed N] [-workers N] [-max-requests N] [-duration 30s]
//	      [-speedup X] [-queue N] [-min-completed N]
//	      [-resilience] [-chaos-seed N]
//	      [-breaker-window N] [-breaker-threshold X] [-breaker-cooldown N]
//	      [-retry-max N] [-ladder-trips N] [-ladder-recovery N]
//	      [-max-breaker-trips N] [-min-breaker-trips N]
//	      [-min-degradations N] [-min-recoveries N]
//	      [-overload] [-overload-multiples 1,2,4] [-overload-requests N]
//	      [-checkpoint s.ckpt] [-checkpoint-every N] [-resume s.ckpt]
//	      [-supervise] [-max-restarts N]
//	      [-flight f.jsonl] [-flight-chrome f.json]
//	      [-flight-budget N] [-flight-sample N] [-slo-exit]
//	      [-json BENCH_serve.json] [-progress]
//	      [-metrics-json m.json] [-trace t.json] [-http 127.0.0.1:0]
//
// With -speedup X the spec's virtual arrival schedule replays compressed
// X-fold on the wall clock (open loop: a full admission queue sheds).
// Without it the campaign runs closed-loop — requests are admitted as
// fast as the workers drain them — which is the throughput-measurement
// mode CI gates on.
//
// -resilience arms the overload layer: CoDel-style delay shedding,
// per-class token buckets, bounded retries with seeded backoff, per-class
// circuit breakers and the graceful-degradation ladder. -chaos-seed N
// additionally arms the chaos campaign (implies -resilience): injections
// derive from (chaos seed, stream index), execution switches to per-class
// ordered consumers, and the summary's chaos_digest is byte-identical at
// any -workers for a closed-loop run.
//
// -overload replaces the single campaign with a sweep: one closed-loop
// calibration run measures capacity, then each -overload-multiples point
// replays the stream open-loop at that multiple of capacity with
// resilience armed, emitting the BENCH_overload.json payload.
//
// The request stream (and the stream_digest in the summary) depends only
// on (spec, seed): rerunning with a different -workers, -speedup or any
// resilience knob changes scheduling and latency, never the traffic.
//
// -checkpoint arms periodic durable snapshots: the producer pauses at a
// consistent cut every -checkpoint-every generated requests (default
// 1000) and atomically rewrites the snapshot. -resume restores one
// (validated against the spec fingerprint, seed and chaos seed) and
// continues the campaign; for a closed-loop run the resumed stream and
// chaos digests are byte-identical to an uninterrupted run's. -resume
// implies -checkpoint to the same path unless one is given.
//
// -supervise runs the campaign in a forked worker process and restarts
// it from the last checkpoint after an abnormal exit (signal death,
// panic, internal error — never an assertion failure), with a bounded
// restart budget (-max-restarts) and crash-loop backoff. The summary's
// restarts counter records how many times the worker died. When -flight
// is also set, each abnormal exit dumps the last checkpoint's retained
// traces to <flight>.crash before restarting — a post-mortem that
// survives the worker's death.
//
// -flight arms the tail-sampling flight recorder: every request carries
// a lifecycle trace (trace IDs derive from (seed, stream index), so they
// are byte-identical across worker counts), and the recorder retains all
// faulted/retried/shed/rejected traces plus a deterministic 1-in-N
// healthy sample (-flight-sample) inside a fixed budget (-flight-budget).
// Retained traces are written as JSON lines to the -flight path;
// -flight-chrome additionally writes the Chrome trace_event view
// (load it in chrome://tracing or Perfetto).
//
// -slo-exit gates the exit status on the spec's slo: declarations: any
// class with its error budget exhausted or its p99 objective violated
// exits 1. Specs without slo: sections fail the gate loudly (exit 2).
//
// Exit status:
//
//	0  campaign completed
//	1  -min-completed, -max/min-breaker-trips, -min-degradations,
//	   -min-recoveries or -slo-exit violated
//	2  spec or internal error
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cecsan/internal/checkpoint"
	"cecsan/internal/cliutil"
	"cecsan/internal/obs"
	"cecsan/internal/traffic"
)

const (
	exitOK       = 0
	exitShort    = 1
	exitInternal = 2
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
	}
	os.Exit(code)
}

// benchRecord is the BENCH_serve.json payload: run metadata plus the
// campaign summary.
type benchRecord struct {
	Bench string `json:"bench"`
	Spec  string `json:"spec"`
	*traffic.ServeResult
}

// overloadRecord is the BENCH_overload.json payload.
type overloadRecord struct {
	Bench string `json:"bench"`
	Spec  string `json:"spec"`
	*traffic.OverloadResult
}

func run() (int, error) {
	specPath := flag.String("spec", "", "workload spec YAML (required)")
	seed := cliutil.SeedFlag(0, "override the spec's campaign seed (0 = use spec)")
	workers := cliutil.WorkersFlag()
	maxRequests := flag.Int("max-requests", 0, "stop after N requests (0 = spec's max_requests)")
	duration := flag.Duration("duration", 0, "stop admission after this wall time (0 = until stream ends)")
	speedup := flag.Float64("speedup", 0, "replay the virtual arrival schedule compressed X-fold (0 = closed loop)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
	minCompleted := flag.Int("min-completed", 0, "exit 1 unless every class completes at least N requests")
	resilience := flag.Bool("resilience", false, "arm the overload-resilience layer (admission control, retries, breakers, degradation ladder)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "arm the chaos campaign with this seed (implies -resilience; 0 = off)")
	breakerWindow := flag.Int("breaker-window", 0, "circuit-breaker sliding window, attempts (0 = default)")
	breakerThreshold := flag.Float64("breaker-threshold", 0, "circuit-breaker fault-rate trip threshold (0 = default)")
	breakerCooldown := flag.Int("breaker-cooldown", 0, "rejected requests while open before a half-open probe (0 = default, -1 disables breakers)")
	retryMax := flag.Int("retry-max", 0, "max retries per request (0 = default, -1 disables)")
	ladderTrips := flag.Int("ladder-trips", 0, "breaker trips per degradation-ladder step (0 = default, -1 freezes the ladder)")
	ladderRecovery := flag.Int("ladder-recovery", 0, "consecutive clean completions to step back up (0 = default)")
	maxBreakerTrips := flag.Int("max-breaker-trips", -1, "exit 1 if total breaker trips exceed N (-1 = no assertion)")
	minBreakerTrips := flag.Int("min-breaker-trips", 0, "exit 1 unless total breaker trips reach N")
	minDegradations := flag.Int("min-degradations", 0, "exit 1 unless total ladder step-downs reach N")
	minRecoveries := flag.Int("min-recoveries", 0, "exit 1 unless total ladder recoveries reach N")
	overload := flag.Bool("overload", false, "run the overload sweep (calibrate, then open-loop points past saturation)")
	overloadMultiples := flag.String("overload-multiples", "1,2,4", "comma-separated capacity multiples for -overload")
	overloadRequests := flag.Int("overload-requests", 0, "requests per overload point (0 = 5000)")
	jsonPath := cliutil.JSONFlag("write the BENCH_serve.json (or BENCH_overload.json) summary to this path")
	progress := flag.Bool("progress", false, "print a progress line every 256 processed requests")
	ckptPath := flag.String("checkpoint", "", "write a durable campaign snapshot to this path at the checkpoint cadence")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in generated requests (0 = 1000)")
	resumePath := flag.String("resume", "", "restore this snapshot and continue the campaign")
	supervise := flag.Bool("supervise", false, "fork a worker process and restart it from the last checkpoint after abnormal exits")
	maxRestarts := flag.Int("max-restarts", 5, "restart budget for -supervise before giving up")
	crashAfter := flag.Int("crash-after", 0, "kill -9 this process after N processed requests this incarnation (crash-injection testing; 0 = off)")
	flightPath := flag.String("flight", "", "arm the flight recorder and write retained traces as JSON lines to this path")
	flightChrome := flag.String("flight-chrome", "", "also write retained traces in Chrome trace_event format to this path (implies the recorder)")
	flightBudget := flag.Int("flight-budget", obs.DefaultFlightBudget, "flight recorder trace budget")
	flightSample := flag.Int("flight-sample", obs.DefaultFlightSampleN, "keep 1 in N healthy traces (deterministic, keyed on trace ID)")
	sloExit := flag.Bool("slo-exit", false, "exit 1 if any class's SLO budget is exhausted or p99 objective violated")
	obsFlags := cliutil.ObsFlagsCmd()
	flag.Parse()

	if *specPath == "" {
		flag.Usage()
		return exitInternal, fmt.Errorf("-spec is required")
	}
	spec, err := traffic.Load(*specPath)
	if err != nil {
		return exitInternal, err
	}

	if *supervise {
		if *overload {
			return exitInternal, fmt.Errorf("-supervise does not apply to -overload sweeps")
		}
		if *ckptPath == "" {
			return exitInternal, fmt.Errorf("-supervise requires -checkpoint (restarts resume from the last snapshot)")
		}
		return runSupervised(*ckptPath, *maxRestarts, *flightPath)
	}

	var flight *obs.FlightRecorder
	if *flightPath != "" || *flightChrome != "" {
		flight = obs.NewFlightRecorder(obs.FlightConfig{
			Budget:  *flightBudget,
			SampleN: *flightSample,
		})
	}

	var resCfg *traffic.ResilienceConfig
	if *resilience || *chaosSeed != 0 || *overload {
		resCfg = &traffic.ResilienceConfig{
			BreakerWindow:    *breakerWindow,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
			RetryMax:         *retryMax,
			LadderTrips:      *ladderTrips,
			LadderRecovery:   *ladderRecovery,
		}
	}

	observer, srv, err := obsFlags.Build()
	if err != nil {
		return exitInternal, err
	}

	if *overload {
		multiples, merr := parseMultiples(*overloadMultiples)
		if merr != nil {
			return exitInternal, merr
		}
		return runOverload(spec, observer, srv, obsFlags, overloadOpts{
			specPath:  *specPath,
			seed:      *seed,
			workers:   cliutil.ResolveWorkers(*workers),
			requests:  *overloadRequests,
			multiples: multiples,
			res:       resCfg,
			chaosSeed: *chaosSeed,
			queue:     *queue,
			jsonPath:  *jsonPath,
			progress:  *progress,
		})
	}

	if spec.MaxRequests == 0 && *maxRequests == 0 && *duration == 0 {
		fmt.Fprintln(os.Stderr, "serve: unbounded campaign (no -duration / -max-requests); stop with ^C")
	}

	stop := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "serve: stopping (signal)")
		close(stop)
		signal.Stop(sigCh)
	}()

	var resume *traffic.ServeCheckpoint
	if *resumePath != "" {
		var ck traffic.ServeCheckpoint
		if lerr := checkpoint.Load(*resumePath, checkpoint.KindServe, &ck); lerr != nil {
			return exitInternal, fmt.Errorf("resume: %w", lerr)
		}
		resume = &ck
		if *ckptPath == "" {
			// A resumed campaign keeps snapshotting where it left off.
			*ckptPath = *resumePath
		}
	}

	if *progress && observer == nil {
		// The status line reads shed/breaker gauges from the registry, so
		// -progress arms a private observer even without metrics flags.
		observer = obs.New()
	}

	cfg := traffic.ServeConfig{
		Spec:            spec,
		Seed:            *seed,
		Workers:         cliutil.ResolveWorkers(*workers),
		MaxRequests:     *maxRequests,
		Duration:        *duration,
		QueueDepth:      *queue,
		Speedup:         *speedup,
		Resilience:      resCfg,
		ChaosSeed:       *chaosSeed,
		Obs:             observer,
		Stop:            stop,
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		Resume:          resume,
		Restarts:        restartCount(),
		Flight:          flight,
	}
	if *progress {
		total := *maxRequests
		if total == 0 {
			total = spec.MaxRequests
		}
		cfg.Progress = progressLine(spec, observer, total)
	}
	if *crashAfter > 0 {
		// Crash injection for resume testing: die hard (no signal handler,
		// no final snapshot) once this incarnation has processed its quota.
		// The base is the resume cursor, so a restarted incarnation makes
		// progress before dying again instead of re-crashing in place.
		var base int64
		if resume != nil {
			base = resume.Processed
		}
		inner := cfg.Progress
		cfg.Progress = func(done int) {
			if inner != nil {
				inner(done)
			}
			if int64(done)-base >= int64(*crashAfter) {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}

	res, err := traffic.Serve(cfg)
	if *progress {
		// The status line ends in \r; terminate it before the summary.
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return exitInternal, err
	}
	if ferr := obsFlags.Finish(observer, srv, 0); ferr != nil && err == nil {
		err = ferr
	}

	printServe(*specPath, res)

	if *jsonPath != "" {
		rec := benchRecord{Bench: "serve", Spec: *specPath, ServeResult: res}
		if werr := cliutil.WriteJSON(*jsonPath, rec); werr != nil && err == nil {
			err = werr
		}
	}
	if flight != nil {
		sum := flight.Summary()
		// Self-check the retention contract: with no interesting-ring
		// eviction, every faulted request must have its trace retained.
		if sum.EvictedInteresting == 0 && sum.Faulted != res.Faults {
			return exitInternal, fmt.Errorf("flight recorder lost traces: %d faulted traces retained, %d faults accounted", sum.Faulted, res.Faults)
		}
		if *flightPath != "" {
			if werr := cliutil.WriteAtomic(*flightPath, flight.WriteJSONLines); werr != nil && err == nil {
				err = werr
			}
		}
		if *flightChrome != "" {
			if werr := cliutil.WriteAtomic(*flightChrome, flight.WriteChromeTrace); werr != nil && err == nil {
				err = werr
			}
		}
	}
	if err != nil {
		return exitInternal, err
	}
	if *sloExit {
		if len(res.SLO) == 0 {
			return exitInternal, fmt.Errorf("-slo-exit: the spec declares no slo: sections, nothing to gate on")
		}
		for _, st := range res.SLO {
			if st.Exhausted {
				return exitShort, fmt.Errorf("class %q: SLO budget exhausted (%.4f of target %.4f good, budget used %.2f)",
					st.Class, float64(st.Good)/max(float64(st.Total), 1), st.Target, st.BudgetUsed)
			}
			if st.P99Violated {
				return exitShort, fmt.Errorf("class %q: p99 %dus exceeds objective %dus",
					st.Class, st.P99US, st.P99ObjectiveUS)
			}
		}
	}
	if *minCompleted > 0 {
		for _, cs := range res.Classes {
			if cs.Completed < int64(*minCompleted) {
				return exitShort, fmt.Errorf("class %q completed %d < %d requests",
					cs.Class, cs.Completed, *minCompleted)
			}
		}
	}
	if *maxBreakerTrips >= 0 && res.BreakerTrips > int64(*maxBreakerTrips) {
		return exitShort, fmt.Errorf("breaker trips %d > -max-breaker-trips %d (unexpected flapping)",
			res.BreakerTrips, *maxBreakerTrips)
	}
	if *minBreakerTrips > 0 && res.BreakerTrips < int64(*minBreakerTrips) {
		return exitShort, fmt.Errorf("breaker trips %d < -min-breaker-trips %d",
			res.BreakerTrips, *minBreakerTrips)
	}
	if *minDegradations > 0 && res.Degradations < int64(*minDegradations) {
		return exitShort, fmt.Errorf("ladder degradations %d < -min-degradations %d",
			res.Degradations, *minDegradations)
	}
	if *minRecoveries > 0 && res.Recoveries < int64(*minRecoveries) {
		return exitShort, fmt.Errorf("ladder recoveries %d < -min-recoveries %d",
			res.Recoveries, *minRecoveries)
	}
	return exitOK, nil
}

// progressLine builds the -progress callback: a carriage-return status
// line (mirroring cmd/fuzz -progress) with throughput, shed totals, open
// breaker count and — for a bounded campaign — an ETA extrapolated from
// the processed fraction.
func progressLine(spec *traffic.Spec, o *obs.Observer, total int) func(int) {
	start := time.Now()
	return func(done int) {
		elapsed := time.Since(start)
		var shed float64
		open := 0
		for i := range spec.Clients {
			l := obs.L("class", spec.Clients[i].ID)
			for _, name := range []string{"traffic_shed", "traffic_shed_bucket", "traffic_shed_delay"} {
				if v, ok := o.Registry.Value(name, l); ok {
					shed += v
				}
			}
			// 2 = open (breakerOpen); half-open probes count as recovering.
			if v, ok := o.Registry.Value("traffic_breaker_state", l); ok && v == 2 {
				open++
			}
		}
		line := fmt.Sprintf("\rserve: %d processed (%.0f/sec) shed=%.0f breakers_open=%d",
			done, float64(done)/elapsed.Seconds(), shed, open)
		if total > 0 && done > 0 && done < total {
			eta := time.Duration(float64(elapsed) * float64(total-done) / float64(done))
			line += fmt.Sprintf(" eta=%s", eta.Round(time.Second))
		}
		fmt.Fprintf(os.Stderr, "%s      ", line)
	}
}

// printServe writes the human summary: the legacy line, a resilience line
// when that layer did anything, and the per-class table.
func printServe(specPath string, res *traffic.ServeResult) {
	fmt.Printf("serve: %s workers=%d elapsed=%.2fs generated=%d completed=%d faults=%d shed=%d misses=%d (%.0f req/sec, cache hit %.3f)\n",
		specPath, res.Workers, res.ElapsedSec, res.Generated, res.Completed,
		res.Faults, res.Shed, res.DeadlineMisses, res.RequestsPerSec, res.CacheHitRate)
	if res.Retries+res.BreakerTrips+res.Degradations+res.ShedDelay+res.ShedBucket+res.ChaosInjected+res.Abandoned > 0 {
		fmt.Printf("  resilience: goodput=%.0f/sec retries=%d (ok %d) breaker trips=%d rejected=%d degradations=%d recoveries=%d shed delay=%d bucket=%d abandoned=%d chaos=%d\n",
			res.GoodputPerSec, res.Retries, res.RetrySuccesses, res.BreakerTrips,
			res.BreakerRejected, res.Degradations, res.Recoveries,
			res.ShedDelay, res.ShedBucket, res.Abandoned, res.ChaosInjected)
	}
	for _, cs := range res.Classes {
		fmt.Printf("  class %-14s tool=%-16s completed=%-6d detected=%-4d shed=%-5d misses=%-5d p50=%dus p95=%dus p99=%dus\n",
			cs.Class, cs.Tool, cs.Completed, cs.Detected, cs.Shed, cs.DeadlineMisses,
			cs.P50us, cs.P95us, cs.P99us)
		if cs.Retries+cs.BreakerTrips+cs.Degradations > 0 || cs.DegradationLevel > 0 {
			fmt.Printf("        %-14s retries=%-4d trips=%-3d rejected=%-4d level=%d (down %d, up %d)\n",
				"", cs.Retries, cs.BreakerTrips, cs.BreakerRejected,
				cs.DegradationLevel, cs.Degradations, cs.Recoveries)
		}
	}
	for _, st := range res.SLO {
		status := "ok"
		if st.Exhausted {
			status = "EXHAUSTED"
		} else if st.P99Violated {
			status = "P99 VIOLATED"
		}
		fmt.Printf("  slo %-16s target=%.3f good=%d/%d budget_used=%.3f burn(short=%.2f long=%.2f) %s\n",
			st.Class, st.Target, st.Good, st.Total, st.BudgetUsed, st.BurnShort, st.BurnLong, status)
	}
	if res.Flight != nil {
		f := res.Flight
		fmt.Printf("  flight: retained=%d (interesting %d, sampled %d) faulted=%d retried=%d shed=%d evicted=%d\n",
			f.Retained, f.Interesting, f.SampledHealthy, f.Faulted, f.Retried, f.Shed, f.EvictedInteresting+f.EvictedSampled)
	}
	fmt.Printf("  stream digest %s\n", res.StreamDigest)
	if res.ChaosDigest != "" {
		fmt.Printf("  chaos digest %s (seed %d)\n", res.ChaosDigest, res.ChaosSeed)
	}
}

type overloadOpts struct {
	specPath  string
	seed      uint64
	workers   int
	requests  int
	multiples []float64
	res       *traffic.ResilienceConfig
	chaosSeed uint64
	queue     int
	jsonPath  string
	progress  bool
}

// runOverload drives the calibrate-and-sweep campaign and writes the
// BENCH_overload.json payload.
func runOverload(spec *traffic.Spec, observer *obs.Observer, srv *obs.Server, obsFlags *cliutil.ObsFlags, o overloadOpts) (int, error) {
	cfg := traffic.OverloadConfig{
		Spec:       spec,
		Seed:       o.seed,
		Workers:    o.workers,
		Requests:   o.requests,
		Multiples:  o.multiples,
		Resilience: o.res,
		ChaosSeed:  o.chaosSeed,
		QueueDepth: o.queue,
		Obs:        observer,
	}
	if o.progress {
		cfg.Progress = func(stage string) {
			fmt.Fprintf(os.Stderr, "serve: overload %s\n", stage)
		}
	}
	res, err := traffic.RunOverload(cfg)
	if err != nil {
		return exitInternal, err
	}
	if ferr := obsFlags.Finish(observer, srv, 0); ferr != nil && err == nil {
		err = ferr
	}

	fmt.Printf("overload: %s workers=%d capacity=%.0f req/sec (%d requests/point)\n",
		o.specPath, res.Workers, res.CapacityPerSec, res.Requests)
	for _, p := range res.Points {
		r := p.Result
		fmt.Printf("  %4gx offered=%-6.0f goodput=%-6.0f completed=%-5d shed=%-5d (delay %d, bucket %d) retries=%-4d trips=%-3d degradations=%d recoveries=%d\n",
			p.Multiple, p.OfferedPerSec, r.GoodputPerSec, r.Completed,
			r.Shed+r.ShedBucket+r.ShedDelay, r.ShedDelay, r.ShedBucket,
			r.Retries, r.BreakerTrips, r.Degradations, r.Recoveries)
	}

	if o.jsonPath != "" {
		rec := overloadRecord{Bench: "overload", Spec: o.specPath, OverloadResult: res}
		if werr := cliutil.WriteJSON(o.jsonPath, rec); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return exitInternal, err
	}
	return exitOK, nil
}

// parseMultiples parses the -overload-multiples list.
func parseMultiples(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-overload-multiples: bad multiple %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-overload-multiples: empty list")
	}
	return out, nil
}
