// Package specsim provides the SPEC CPU-like workloads behind Tables IV
// and V. Real SPEC binaries cannot run on the simulated machine, so each
// workload reproduces the corresponding benchmark's characteristic
// operation mix — allocation rate, dereference density, loop shape, call
// depth, working-set size — which is what determines relative sanitizer
// overhead. Absolute times are not comparable to the paper's testbed and
// are not claimed; the harness reports overhead percentages against the
// native baseline.
package specsim

import (
	"cecsan/prog"
)

// Workload is one benchmark program.
type Workload struct {
	// Name matches the SPEC benchmark the operation mix imitates.
	Name string
	// Suite is "2006" or "2017".
	Suite string
	// Parallel marks OpenMP-analogue workloads (ParFor regions).
	Parallel bool
	// Build constructs the program.
	Build func() *prog.Program
}

// node is the heap record type used by the pointer-structure workloads.
var node = prog.StructOf("node",
	prog.FieldSpec{Name: "key", Type: prog.Int64T()},
	prog.FieldSpec{Name: "val", Type: prog.Int64T()},
	prog.FieldSpec{Name: "left", Type: prog.VoidPtr()},
	prog.FieldSpec{Name: "right", Type: prog.VoidPtr()},
	prog.FieldSpec{Name: "payload", Type: prog.ArrayOf(prog.Char(), 16)},
)

// Spec2006 returns the Table IV workload set, in the paper's row order.
func Spec2006() []Workload {
	return []Workload{
		{Name: "400.perlbench", Suite: "2006", Build: buildPerlbench(40000, 64)},
		{Name: "403.gcc", Suite: "2006", Build: buildGCC(24, 11)},
		{Name: "429.mcf", Suite: "2006", Build: buildMCF(1<<19, 800_000)},
		{Name: "447.dealII", Suite: "2006", Build: buildDealII(220, 10)},
		{Name: "458.sjeng", Suite: "2006", Build: buildSjeng(5, 12)},
		{Name: "462.libquantum", Suite: "2006", Build: buildLibquantum(1<<17, 8)},
		{Name: "470.lbm", Suite: "2006", Build: buildLBM(1<<18, 6)},
		{Name: "471.omnetpp", Suite: "2006", Build: buildOmnetpp(60000)},
	}
}

// Spec2017 returns the Table V workload set, including the OpenMP-analogue
// parallel workloads the paper enables where available.
func Spec2017() []Workload {
	return []Workload{
		{Name: "500.perlbench_r", Suite: "2017", Build: buildPerlbench(50000, 96)},
		{Name: "502.gcc_r", Suite: "2017", Build: buildGCC(32, 11)},
		{Name: "505.mcf_r", Suite: "2017", Build: buildMCF(1<<19, 1_000_000)},
		{Name: "520.omnetpp_r", Suite: "2017", Build: buildOmnetpp(80000)},
		{Name: "523.xalancbmk_r", Suite: "2017", Build: buildXalanc(2200, 24)},
		{Name: "525.x264_r", Suite: "2017", Parallel: true, Build: buildX264(64, 48, 6)},
		{Name: "531.deepsjeng_r", Suite: "2017", Build: buildSjeng(5, 14)},
		{Name: "541.leela_r", Suite: "2017", Build: buildLeela(25000)},
		{Name: "544.nab_r", Suite: "2017", Parallel: true, Build: buildNab(1<<15, 10)},
		{Name: "557.xz_r", Suite: "2017", Build: buildXZ(1<<18, 5)},
	}
}

// ByName finds a workload across both suites.
func ByName(name string) (Workload, bool) {
	for _, w := range append(Spec2006(), Spec2017()...) {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// buildPerlbench imitates 400.perlbench: interpreter-style execution
// dominated by small, short-lived allocations (scalars, hash entries,
// strings) and string copies — the allocation-heavy profile on which the
// paper observes CECSan outrunning ASan (its per-malloc work is one table
// write, not redzone poisoning + quarantine bookkeeping).
func buildPerlbench(iters, strLen int64) func() *prog.Program {
	return func() *prog.Program {
		pb := prog.NewProgram()
		pb.Global("g_text", prog.ArrayOf(prog.Char(), 4096))
		const ring = 4096 // live working set: ~4k scalars + ~4k strings
		f := pb.Function("main", 0)
		table := f.MallocType(prog.ArrayOf(prog.VoidPtr(), 256)) // hash buckets
		ringBuf := f.MallocType(prog.ArrayOf(prog.VoidPtr(), ring))
		ringStr := f.MallocType(prog.ArrayOf(prog.VoidPtr(), ring))
		text := f.GlobalAddr("g_text")
		sum := f.NewReg()
		f.AssignConst(sum, 0)
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(iters), 1, func(i prog.Reg) {
			// Evict the ring slot from `ring` iterations ago.
			slot := f.Bin(prog.BinAnd, i, f.Const(ring-1))
			oldNode := f.Load(f.ElemPtr(ringBuf, prog.VoidPtr(), slot), 0, prog.VoidPtr())
			f.If(oldNode, func() {
				oldStr := f.Load(f.ElemPtr(ringStr, prog.VoidPtr(), slot), 0, prog.VoidPtr())
				f.Free(oldStr)
				f.Free(oldNode)
			}, nil)
			// Fresh scalar node + string body.
			n := f.MallocType(node)
			s := f.MallocBytes(strLen)
			f.Libc("memcpy", s, text, f.Const(strLen))
			f.Store(n, 0, i, prog.Int64T())
			f.Store(n, 16, s, prog.VoidPtr())
			// Hash insert: chain through bucket heads.
			b := f.Bin(prog.BinAnd, f.Libc("rand"), f.Const(255))
			bp := f.ElemPtr(table, prog.VoidPtr(), b)
			head := f.Load(bp, 0, prog.VoidPtr())
			f.Store(n, 24, head, prog.VoidPtr())
			f.Store(bp, 0, n, prog.VoidPtr())
			f.Store(f.ElemPtr(ringBuf, prog.VoidPtr(), slot), 0, n, prog.VoidPtr())
			f.Store(f.ElemPtr(ringStr, prog.VoidPtr(), slot), 0, s, prog.VoidPtr())
			f.Assign(sum, f.Add(sum, f.Load(n, 0, prog.Int64T())))
		})
		f.Ret(sum)
		return pb.MustBuild()
	}
}

// buildGCC imitates 403.gcc: a forest of live IR trees with one tree torn
// down and rebuilt per compilation cycle — allocation churn against a
// multi-megabyte live pointer structure, plus irregular walks.
func buildGCC(cycles, depth int64) func() *prog.Program {
	return func() *prog.Program {
		pb := prog.NewProgram()

		build := pb.Function("build_tree", 1)
		{
			d := build.Arg(0)
			n := build.MallocType(node)
			build.Store(n, 0, d, prog.Int64T())
			// Leaves must NULL their children explicitly: recycled chunks
			// contain the previous occupant's pointers.
			zero := build.Const(0)
			build.Store(n, 16, zero, prog.VoidPtr())
			build.Store(n, 24, zero, prog.VoidPtr())
			build.If(build.Cmp(prog.CmpSGt, d, build.Const(0)), func() {
				l := build.Call("build_tree", build.Sub(d, build.Const(1)))
				r := build.Call("build_tree", build.Sub(d, build.Const(1)))
				build.Store(n, 16, l, prog.VoidPtr())
				build.Store(n, 24, r, prog.VoidPtr())
			}, nil)
			build.Ret(n)
		}

		sum := pb.Function("sum_tree", 1)
		{
			n := sum.Arg(0)
			sum.If(sum.Cmp(prog.CmpEq, n, sum.Const(0)), func() { sum.Ret(sum.Const(0)) }, nil)
			k := sum.Load(n, 0, prog.Int64T())
			l := sum.Load(n, 16, prog.VoidPtr())
			r := sum.Load(n, 24, prog.VoidPtr())
			a := sum.Call("sum_tree", l)
			b := sum.Call("sum_tree", r)
			sum.Ret(sum.Add(k, sum.Add(a, b)))
		}

		freeT := pb.Function("free_tree", 1)
		{
			n := freeT.Arg(0)
			freeT.If(freeT.Cmp(prog.CmpEq, n, freeT.Const(0)), func() { freeT.RetVoid() }, nil)
			l := freeT.Load(n, 16, prog.VoidPtr())
			r := freeT.Load(n, 24, prog.VoidPtr())
			freeT.Call("free_tree", l)
			freeT.Call("free_tree", r)
			freeT.Free(n)
			freeT.RetVoid()
		}

		f := pb.Function("main", 0)
		const forest = 8
		slots := f.MallocType(prog.ArrayOf(prog.VoidPtr(), forest))
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(forest), 1, func(i prog.Reg) {
			t := f.Call("build_tree", f.Const(depth))
			f.Store(f.ElemPtr(slots, prog.VoidPtr(), i), 0, t, prog.VoidPtr())
		})
		acc := f.NewReg()
		f.AssignConst(acc, 0)
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(cycles), 1, func(c prog.Reg) {
			slot := f.Bin(prog.BinAnd, c, f.Const(forest-1))
			sp := f.ElemPtr(slots, prog.VoidPtr(), slot)
			old := f.Load(sp, 0, prog.VoidPtr())
			f.Assign(acc, f.Add(acc, f.Call("sum_tree", old)))
			f.Call("free_tree", old)
			f.Store(sp, 0, f.Call("build_tree", f.Const(depth)), prog.VoidPtr())
		})
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(forest), 1, func(i prog.Reg) {
			f.Call("free_tree", f.Load(f.ElemPtr(slots, prog.VoidPtr(), i), 0, prog.VoidPtr()))
		})
		f.Free(slots)
		f.Ret(acc)
		return pb.MustBuild()
	}
}

// buildMCF imitates 429.mcf: network-simplex pointer chasing over a large
// arc array — dereference-dominated with an irregular access pattern,
// where every load pays the sanitizer's check and nothing is hoistable.
func buildMCF(nodes, steps int64) func() *prog.Program {
	return func() *prog.Program {
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		const stride = 32
		arena := f.MallocBytes(nodes * stride)
		// Link each slot to a pseudo-random successor.
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(nodes), 1, func(i prog.Reg) {
			succ := f.Bin(prog.BinAnd, f.Libc("rand"), f.Const(nodes-1))
			p := f.OffsetPtrReg(arena, f.Mul(i, f.Const(stride)))
			f.Store(p, 0, f.OffsetPtrReg(arena, f.Mul(succ, f.Const(stride))), prog.VoidPtr())
			f.Store(p, 8, i, prog.Int64T())
		})
		// Chase.
		cur := f.NewReg()
		f.Assign(cur, arena)
		acc := f.NewReg()
		f.AssignConst(acc, 0)
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(steps), 1, func(prog.Reg) {
			f.Assign(acc, f.Add(acc, f.Load(cur, 8, prog.Int64T())))
			f.Assign(cur, f.Load(cur, 0, prog.VoidPtr()))
		})
		f.Free(arena)
		f.Ret(acc)
		return pb.MustBuild()
	}
}

// buildDealII imitates 447.dealII: dense linear algebra (matrix-vector
// products) over heap arrays with regular inner loops.
func buildDealII(n, passes int64) func() *prog.Program {
	return func() *prog.Program {
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		mat := f.MallocBytes(n * n * 8)
		x := f.MallocBytes(n * 8)
		y := f.MallocBytes(n * 8)
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(n), 1, func(i prog.Reg) {
			f.Store(f.ElemPtr(x, prog.Int64T(), i), 0, i, prog.Int64T())
		})
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(passes), 1, func(prog.Reg) {
			f.ForRange(prog.ConstOperand(0), prog.ConstOperand(n), 1, func(i prog.Reg) {
				acc := f.NewReg()
				f.AssignConst(acc, 0)
				row := f.OffsetPtrReg(mat, f.Mul(i, f.Const(n*8)))
				f.ForRange(prog.ConstOperand(0), prog.ConstOperand(n), 1, func(j prog.Reg) {
					a := f.Load(f.ElemPtr(row, prog.Int64T(), j), 0, prog.Int64T())
					b := f.Load(f.ElemPtr(x, prog.Int64T(), j), 0, prog.Int64T())
					f.Assign(acc, f.Add(acc, f.Mul(a, b)))
				})
				f.Store(f.ElemPtr(y, prog.Int64T(), i), 0, acc, prog.Int64T())
			})
		})
		v := f.Load(y, 8, prog.Int64T())
		f.Free(mat)
		f.Free(x)
		f.Free(y)
		f.Ret(v)
		return pb.MustBuild()
	}
}

// buildSjeng imitates 458.sjeng / 531.deepsjeng: recursive game-tree search
// over global board state — call-heavy, working set dominated by static
// arrays, very few allocations (the row where ASan's memory overhead is
// tiny and so is CECSan's).
func buildSjeng(depth, branch int64) func() *prog.Program {
	return func() *prog.Program {
		pb := prog.NewProgram()
		pb.GlobalUnsafe("board", prog.ArrayOf(prog.Int64T(), 128))
		pb.GlobalUnsafe("history", prog.ArrayOf(prog.Int64T(), 4096))
		// Static evaluation tables dominate sjeng's (small) footprint.
		pb.GlobalUnsafe("eval_table", prog.ArrayOf(prog.Int64T(), 1<<19))

		search := pb.Function("search", 1)
		{
			d := search.Arg(0)
			search.If(search.Cmp(prog.CmpSLe, d, search.Const(0)), func() {
				b := search.GlobalAddr("board")
				search.Ret(search.Load(b, 0, prog.Int64T()))
			}, nil)
			best := search.NewReg()
			search.AssignConst(best, -1<<30)
			search.ForRange(prog.ConstOperand(0), prog.ConstOperand(branch), 1, func(mv prog.Reg) {
				b := search.GlobalAddr("board")
				sq := search.Bin(prog.BinAnd, search.Add(mv, d), search.Const(127))
				cell := search.ElemPtr(b, prog.Int64T(), sq)
				old := search.Load(cell, 0, prog.Int64T())
				search.Store(cell, 0, search.Add(old, mv), prog.Int64T())
				score := search.Call("search", search.Sub(d, search.Const(1)))
				search.Store(cell, 0, old, prog.Int64T())
				h := search.GlobalAddr("history")
				hidx := search.Bin(prog.BinAnd, score, search.Const(4095))
				search.Store(search.ElemPtr(h, prog.Int64T(), hidx), 0, d, prog.Int64T())
				search.If(search.Cmp(prog.CmpSGt, score, best), func() { search.Assign(best, score) }, nil)
			})
			search.Ret(best)
		}

		f := pb.Function("main", 0)
		et := f.GlobalAddr("eval_table")
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(1<<19), 1, func(i prog.Reg) {
			f.Store(f.ElemPtr(et, prog.Int64T(), i), 0, f.Mul(i, i), prog.Int64T())
		})
		f.Ret(f.Call("search", f.Const(depth)))
		return pb.MustBuild()
	}
}

// buildLibquantum imitates 462.libquantum: repeated full sweeps over a
// large quantum register (perfectly monotonic loops — §II.F.1's best case)
// combined with register snapshotting that churns large allocations through
// the allocator, inflating ASan's quarantine and redzones.
func buildLibquantum(qubits, gates int64) func() *prog.Program {
	return func() *prog.Program {
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		reg := f.MallocBytes(qubits * 8)
		acc := f.NewReg()
		f.AssignConst(acc, 0)
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(gates), 1, func(g prog.Reg) {
			// Apply a "gate": full monotonic sweep.
			f.ForRange(prog.ConstOperand(0), prog.ConstOperand(qubits), 1, func(i prog.Reg) {
				p := f.ElemPtr(reg, prog.Int64T(), i)
				v := f.Load(p, 0, prog.Int64T())
				f.Store(p, 0, f.Add(v, g), prog.Int64T())
			})
			// Snapshot the register (decoherence bookkeeping).
			snap := f.MallocBytes(qubits * 8)
			f.Libc("memcpy", snap, reg, f.Const(qubits*8))
			f.Assign(acc, f.Add(acc, f.Load(snap, 0, prog.Int64T())))
			f.Free(snap)
		})
		f.Free(reg)
		f.Ret(acc)
		return pb.MustBuild()
	}
}

// buildLBM imitates 470.lbm: a stencil sweep over two large grids —
// dense, regular loads and stores where the per-access check dominates.
func buildLBM(cells, iters int64) func() *prog.Program {
	return func() *prog.Program {
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		src := f.MallocBytes(cells * 8)
		dst := f.MallocBytes(cells * 8)
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(iters), 1, func(prog.Reg) {
			f.ForRange(prog.ConstOperand(1), prog.ConstOperand(cells-1), 1, func(i prog.Reg) {
				a := f.Load(f.ElemPtr(src, prog.Int64T(), f.Sub(i, f.Const(1))), 0, prog.Int64T())
				b := f.Load(f.ElemPtr(src, prog.Int64T(), i), 0, prog.Int64T())
				cc := f.Load(f.ElemPtr(src, prog.Int64T(), f.AddImm(i, 1)), 0, prog.Int64T())
				f.Store(f.ElemPtr(dst, prog.Int64T(), i), 0, f.Add(a, f.Add(b, cc)), prog.Int64T())
			})
			// Swap grids.
			t := f.Mov(src)
			f.Assign(src, dst)
			f.Assign(dst, t)
		})
		v := f.Load(src, 800, prog.Int64T())
		f.Free(src)
		f.Free(dst)
		f.Ret(v)
		return pb.MustBuild()
	}
}

// buildOmnetpp imitates 471.omnetpp: a discrete-event simulator whose
// future-event set churns small event objects through the allocator —
// the second allocation-heavy row where CECSan beats ASan.
func buildOmnetpp(events int64) func() *prog.Program {
	return func() *prog.Program {
		pb := prog.NewProgram()
		const fesSize = 4096
		f := pb.Function("main", 0)
		fes := f.MallocType(prog.ArrayOf(prog.VoidPtr(), fesSize))
		clock := f.NewReg()
		f.AssignConst(clock, 0)
		acc := f.NewReg()
		f.AssignConst(acc, 0)
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(events), 1, func(i prog.Reg) {
			slot := f.Bin(prog.BinAnd, i, f.Const(fesSize-1))
			sp := f.ElemPtr(fes, prog.VoidPtr(), slot)
			old := f.Load(sp, 0, prog.VoidPtr())
			// Process and retire the event occupying this slot.
			f.If(old, func() {
				f.Assign(acc, f.Add(acc, f.Load(old, 8, prog.Int64T())))
				f.Free(old)
			}, nil)
			// Schedule a new event.
			ev := f.MallocType(node)
			f.Store(ev, 0, f.Add(clock, i), prog.Int64T())
			f.Store(ev, 8, f.Bin(prog.BinAnd, f.Libc("rand"), f.Const(1023)), prog.Int64T())
			f.Store(sp, 0, ev, prog.VoidPtr())
			f.Assign(clock, f.AddImm(clock, 1))
		})
		f.Ret(acc)
		return pb.MustBuild()
	}
}

// buildXalanc imitates 523.xalancbmk: XML document tree traversal with
// string handling (strlen/memcpy) at every node.
func buildXalanc(nodes, passes int64) func() *prog.Program {
	return func() *prog.Program {
		pb := prog.NewProgram()
		pb.GlobalBytes("tag", []byte("element-name"))
		f := pb.Function("main", 0)
		// Flat array of tree nodes, child = 2i+1 walk.
		arr := f.MallocType(prog.ArrayOf(prog.VoidPtr(), nodes))
		tag := f.GlobalAddr("tag")
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(nodes), 1, func(i prog.Reg) {
			n := f.MallocType(node)
			s := f.MallocBytes(16)
			f.Libc("memcpy", s, tag, f.Const(13))
			f.Store(n, 16, s, prog.VoidPtr())
			f.Store(n, 0, i, prog.Int64T())
			f.Store(f.ElemPtr(arr, prog.VoidPtr(), i), 0, n, prog.VoidPtr())
		})
		acc := f.NewReg()
		f.AssignConst(acc, 0)
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(passes), 1, func(prog.Reg) {
			f.ForRange(prog.ConstOperand(0), prog.ConstOperand(nodes), 1, func(i prog.Reg) {
				n := f.Load(f.ElemPtr(arr, prog.VoidPtr(), i), 0, prog.VoidPtr())
				s := f.Load(n, 16, prog.VoidPtr())
				f.Assign(acc, f.Add(acc, f.Libc("strlen", s)))
			})
		})
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(nodes), 1, func(i prog.Reg) {
			n := f.Load(f.ElemPtr(arr, prog.VoidPtr(), i), 0, prog.VoidPtr())
			f.Free(f.Load(n, 16, prog.VoidPtr()))
			f.Free(n)
		})
		f.Free(arr)
		f.Ret(acc)
		return pb.MustBuild()
	}
}

// buildX264 imitates 525.x264: motion estimation over frame buffers —
// block copies and SAD loops — parallelized across macroblock rows (the
// OpenMP-analogue region).
func buildX264(rows, cols, frames int64) func() *prog.Program {
	return func() *prog.Program {
		pb := prog.NewProgram()
		const blk = 16
		pb.GlobalUnsafe("cur_frame", prog.ArrayOf(prog.Char(), 64*48*16*16))
		pb.GlobalUnsafe("ref_frame", prog.ArrayOf(prog.Char(), 64*48*16*16))

		// Worker: process one macroblock row.
		wk := pb.Function("mb_row", 1)
		{
			r := wk.Arg(0)
			cur := wk.GlobalAddr("cur_frame")
			ref := wk.GlobalAddr("ref_frame")
			wk.ForRange(prog.ConstOperand(0), prog.ConstOperand(cols), 1, func(cIdx prog.Reg) {
				base := wk.Mul(wk.Add(wk.Mul(r, wk.Const(cols)), cIdx), wk.Const(blk*blk))
				sad := wk.NewReg()
				wk.AssignConst(sad, 0)
				wk.ForRange(prog.ConstOperand(0), prog.ConstOperand(blk*blk/8), 1, func(px prog.Reg) {
					off := wk.Add(base, wk.Mul(px, wk.Const(8)))
					a := wk.Load(wk.OffsetPtrReg(cur, off), 0, prog.Int64T())
					b := wk.Load(wk.OffsetPtrReg(ref, off), 0, prog.Int64T())
					wk.Assign(sad, wk.Add(sad, wk.Bin(prog.BinXor, a, b)))
				})
				// Copy best block into the reference.
				wk.Libc("memcpy", wk.OffsetPtrReg(ref, base), wk.OffsetPtrReg(cur, base), wk.Const(blk*blk))
			})
			wk.RetVoid()
		}

		f := pb.Function("main", 0)
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(frames), 1, func(prog.Reg) {
			f.ParFor("mb_row", f.Const(0), f.Const(rows), 4)
		})
		f.Ret(f.Const(0))
		return pb.MustBuild()
	}
}

// buildLeela imitates 541.leela: Monte-Carlo tree search — node expansion
// (allocation), randomized descent (pointer chasing) and periodic subtree
// release.
func buildLeela(playouts int64) func() *prog.Program {
	return func() *prog.Program {
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		const poolSize = 4096
		pool := f.MallocType(prog.ArrayOf(prog.VoidPtr(), poolSize))
		acc := f.NewReg()
		f.AssignConst(acc, 0)
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(playouts), 1, func(i prog.Reg) {
			slot := f.Bin(prog.BinAnd, f.Libc("rand"), f.Const(poolSize-1))
			sp := f.ElemPtr(pool, prog.VoidPtr(), slot)
			n := f.Load(sp, 0, prog.VoidPtr())
			f.If(n,
				func() {
					// Visit: update statistics, maybe release.
					visits := f.Load(n, 0, prog.Int64T())
					f.Store(n, 0, f.AddImm(visits, 1), prog.Int64T())
					f.Assign(acc, f.Add(acc, visits))
					f.If(f.Cmp(prog.CmpSGt, visits, f.Const(30)), func() {
						f.Free(n)
						f.Store(sp, 0, f.Const(0), prog.VoidPtr())
					}, nil)
				},
				func() {
					// Expand: allocate a node.
					fresh := f.MallocType(node)
					f.Store(fresh, 0, f.Const(0), prog.Int64T())
					f.Store(fresh, 8, i, prog.Int64T())
					f.Store(sp, 0, fresh, prog.VoidPtr())
				})
		})
		f.Ret(acc)
		return pb.MustBuild()
	}
}

// buildNab imitates 544.nab: molecular dynamics force computation over a
// particle array, parallelized with the OpenMP analogue.
func buildNab(particles, iters int64) func() *prog.Program {
	return func() *prog.Program {
		pb := prog.NewProgram()
		pb.GlobalUnsafe("pos", prog.ArrayOf(prog.Int64T(), 1<<15))
		pb.GlobalUnsafe("force", prog.ArrayOf(prog.Int64T(), 1<<15))

		wk := pb.Function("force_chunk", 1)
		{
			i := wk.Arg(0)
			pos := wk.GlobalAddr("pos")
			force := wk.GlobalAddr("force")
			xi := wk.Load(wk.ElemPtr(pos, prog.Int64T(), i), 0, prog.Int64T())
			acc := wk.NewReg()
			wk.AssignConst(acc, 0)
			// Interact with a window of 32 neighbours.
			wk.ForRange(prog.ConstOperand(1), prog.ConstOperand(33), 1, func(d prog.Reg) {
				j := wk.Bin(prog.BinAnd, wk.Add(i, d), wk.Const(particles-1))
				xj := wk.Load(wk.ElemPtr(pos, prog.Int64T(), j), 0, prog.Int64T())
				diff := wk.Sub(xi, xj)
				wk.Assign(acc, wk.Add(acc, wk.Mul(diff, diff)))
			})
			wk.Store(wk.ElemPtr(force, prog.Int64T(), i), 0, acc, prog.Int64T())
			wk.RetVoid()
		}

		f := pb.Function("main", 0)
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(iters), 1, func(prog.Reg) {
			f.ParFor("force_chunk", f.Const(0), f.Const(particles), 4)
		})
		f.Ret(f.Const(0))
		return pb.MustBuild()
	}
}

// buildXZ imitates 557.xz: LZMA-style match finding — hash-chain lookups
// over a large input buffer plus match copies.
func buildXZ(inputLen, passes int64) func() *prog.Program {
	return func() *prog.Program {
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		buf := f.MallocBytes(inputLen)
		out := f.MallocBytes(inputLen)
		hash := f.MallocBytes((1 << 16) * 8)
		// Fill input pseudo-randomly.
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(inputLen/8), 1, func(i prog.Reg) {
			f.Store(f.ElemPtr(buf, prog.Int64T(), i), 0, f.Libc("rand"), prog.Int64T())
		})
		acc := f.NewReg()
		f.AssignConst(acc, 0)
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(passes), 1, func(prog.Reg) {
			f.ForRange(prog.ConstOperand(0), prog.ConstOperand(inputLen/64), 1, func(i prog.Reg) {
				pos := f.Mul(i, f.Const(64))
				v := f.Load(f.OffsetPtrReg(buf, pos), 0, prog.Int())
				h := f.Bin(prog.BinAnd, v, f.Const(1<<16-1))
				hp := f.ElemPtr(hash, prog.Int64T(), h)
				prev := f.Load(hp, 0, prog.Int64T())
				f.Store(hp, 0, pos, prog.Int64T())
				// "Match": copy 32 bytes from the previous occurrence.
				f.Libc("memcpy", f.OffsetPtrReg(out, pos), f.OffsetPtrReg(buf, prev), f.Const(32))
				f.Assign(acc, f.Add(acc, prev))
			})
		})
		f.Free(buf)
		f.Free(out)
		f.Free(hash)
		f.Ret(acc)
		return pb.MustBuild()
	}
}

// Smoke returns scaled-down variants of every workload pattern, sized for
// unit tests and quick CI runs rather than benchmarking.
func Smoke() []Workload {
	return []Workload{
		{Name: "smoke.perlbench", Suite: "smoke", Build: buildPerlbench(800, 32)},
		{Name: "smoke.gcc", Suite: "smoke", Build: buildGCC(6, 7)},
		{Name: "smoke.mcf", Suite: "smoke", Build: buildMCF(1<<10, 20000)},
		{Name: "smoke.dealII", Suite: "smoke", Build: buildDealII(48, 2)},
		{Name: "smoke.sjeng", Suite: "smoke", Build: buildSjeng(3, 8)},
		{Name: "smoke.libquantum", Suite: "smoke", Build: buildLibquantum(1<<12, 3)},
		{Name: "smoke.lbm", Suite: "smoke", Build: buildLBM(1<<12, 2)},
		{Name: "smoke.omnetpp", Suite: "smoke", Build: buildOmnetpp(2000)},
		{Name: "smoke.x264", Suite: "smoke", Parallel: true, Build: buildX264(8, 8, 2)},
		{Name: "smoke.nab", Suite: "smoke", Parallel: true, Build: buildNab(1<<10, 2)},
		{Name: "smoke.xz", Suite: "smoke", Build: buildXZ(1<<14, 1)},
		{Name: "smoke.xalancbmk", Suite: "smoke", Build: buildXalanc(200, 3)},
		{Name: "smoke.leela", Suite: "smoke", Build: buildLeela(2000)},
	}
}

// GccVariant exposes a parameterized gcc-like workload for scaling studies.
func GccVariant(trees, depth int64) Workload {
	return Workload{Name: "gcc-variant", Suite: "custom", Build: buildGCC(trees, depth)}
}
