// Package rt defines the contract between the machine (internal/interp), the
// instrumentation pass (internal/instrument) and the sanitizer runtimes
// (internal/core and internal/sanitizers/...).
//
// A sanitizer is a pair: a Profile describing what the compiler pass inserts
// (which accesses get checks, whether pointers are tagged, whether sub-object
// narrowing or per-pointer metadata propagation code is emitted, which
// optimizations run), and a Runtime implementing the semantics of the
// inserted operations. This split mirrors the paper's "compiler extension +
// runtime support library" architecture (§III).
package rt

import (
	"fmt"

	"cecsan/internal/alloc"
	"cecsan/internal/mem"
)

// AccessKind distinguishes reads from writes.
type AccessKind uint8

// Access kinds.
const (
	Read AccessKind = iota + 1
	Write
)

// String returns "read" or "write".
func (k AccessKind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Kind classifies a detected memory-safety violation.
type Kind uint8

// Violation kinds.
const (
	KindUnknown Kind = iota
	KindOOBRead
	KindOOBWrite
	KindUseAfterFree
	KindDoubleFree
	KindInvalidFree
	KindSubObjectOverflow
)

// String returns the ASan-style report name of the kind.
func (k Kind) String() string {
	switch k {
	case KindOOBRead:
		return "buffer-overflow-read"
	case KindOOBWrite:
		return "buffer-overflow-write"
	case KindUseAfterFree:
		return "use-after-free"
	case KindDoubleFree:
		return "double-free"
	case KindInvalidFree:
		return "invalid-free"
	case KindSubObjectOverflow:
		return "sub-object-overflow"
	default:
		return "unknown-violation"
	}
}

// Violation is a sanitizer report. The runtime fills the memory facts; the
// interpreter attaches the code location before surfacing it.
type Violation struct {
	Kind Kind
	// Ptr is the pointer as the program held it (possibly tagged).
	Ptr uint64
	// Addr is the raw faulting address.
	Addr uint64
	// Size is the access size in bytes (0 when not applicable).
	Size int64
	// Seg classifies the object's segment when known.
	Seg alloc.Segment
	// Detail is a free-form explanation from the runtime.
	Detail string
	// Func and PC locate the faulting instruction (filled by the machine).
	Func string
	PC   int
}

// Error implements the error interface with an ASan-flavoured one-liner.
func (v *Violation) Error() string {
	return fmt.Sprintf("%s: %s of %d bytes at %#x (ptr %#x, %s segment) in %s@%d: %s",
		"SANITIZER", v.Kind, v.Size, v.Addr, v.Ptr, v.Seg, v.Func, v.PC, v.Detail)
}

// PtrMeta is the per-pointer metadata SoftBound+CETS propagates explicitly:
// spatial bounds plus the CETS lock-and-key temporal pair. The zero value
// means "no metadata" (a pointer from uninstrumented code); runtimes that
// use PtrMeta skip checks for it, which is SoftBound's compatibility rule.
type PtrMeta struct {
	Base  uint64
	Bound uint64
	Key   uint64
	Lock  *uint64
}

// Valid reports whether the metadata carries bounds.
func (m PtrMeta) Valid() bool { return m.Bound != 0 }

// Env hands the machine's facilities to a runtime at attach time.
type Env struct {
	Space   *mem.Space
	Heap    *alloc.Heap
	Globals *alloc.Globals
}

// Runtime is a sanitizer runtime library. All methods are called by the
// machine while executing instrumented code. Implementations must be safe
// for concurrent use by parallel regions.
type Runtime interface {
	// Name returns the sanitizer's display name.
	Name() string

	// Attach binds the runtime to a machine and initializes its metadata
	// structures (CECSan's constructor mmap'ing the table, ASan's shadow).
	Attach(env *Env) error

	// Malloc services an instrumented heap allocation: it allocates from
	// env.Heap, records metadata, and returns the program-visible pointer
	// (tagged, for tagging runtimes) plus its per-pointer metadata.
	// A non-nil error aborts the program (OOM), which is not a violation.
	Malloc(size int64) (uint64, PtrMeta, error)

	// Free services an instrumented deallocation, performing the runtime's
	// deallocation checks (Algorithm 2 for CECSan). On success it releases
	// metadata and returns the chunk to env.Heap.
	Free(ptr uint64, meta PtrMeta) *Violation

	// StackAlloc registers a stack object at raw address raw. tracked
	// reports whether the instrumentation classified it unsafe (§II.C.3).
	// It returns the program-visible pointer.
	StackAlloc(raw uint64, size int64, tracked bool) (uint64, PtrMeta)

	// StackRelease ends a tracked stack object's lifetime at function exit.
	StackRelease(ptr uint64, size int64)

	// GlobalInit registers a global object at load time and returns the
	// program-visible pointer for it (the GPT entry value for CECSan).
	// tracked reports whether the object was classified unsafe.
	GlobalInit(name string, raw uint64, size int64, tracked bool) (uint64, PtrMeta)

	// Check validates an access of size bytes at ptr+off before it happens.
	Check(ptr uint64, meta PtrMeta, off, size int64, k AccessKind) *Violation

	// Addr translates a program-visible pointer to the raw address used for
	// the actual memory operation (tag stripping).
	Addr(ptr uint64) uint64

	// UsableSize returns the allocation size behind a live heap pointer
	// (malloc_usable_size), or -1 when unknown — used by the realloc path.
	UsableSize(ptr uint64, meta PtrMeta) int64

	// SubPtr derives a §II.D narrowed sub-object pointer for the member at
	// [off, off+size) of base.
	SubPtr(base uint64, off, size int64) (uint64, PtrMeta)

	// SubRelease drops the narrowed pointer's metadata when it leaves scope.
	SubRelease(ptr uint64)

	// PrepareExternArg checks and strips a pointer argument before it is
	// passed to external, uninstrumented code (§II.E).
	PrepareExternArg(ptr uint64) (uint64, *Violation)

	// AdoptExternRet wraps a pointer returned from uninstrumented code
	// (reserved metadata entry 0 for CECSan: usable, never checked).
	AdoptExternRet(raw uint64) uint64

	// LibcCheck validates the [ptr+off, ptr+off+n) range touched by a
	// simulated C library function. For interceptor-based sanitizers this
	// is the interceptor; fn lets models reproduce documented interceptor
	// gaps (e.g. missing wide-character wrappers).
	LibcCheck(fn string, ptr uint64, meta PtrMeta, n int64, k AccessKind) *Violation

	// LoadPtrMeta and StorePtrMeta maintain the in-memory shadow of pointer
	// metadata for per-pointer runtimes (SoftBound); no-ops otherwise.
	LoadPtrMeta(addr uint64) PtrMeta
	StorePtrMeta(addr uint64, meta PtrMeta)

	// OverheadBytes returns the runtime's current metadata memory footprint
	// (shadow pages touched, redzones, quarantine, tables) for the RSS
	// model.
	OverheadBytes() int64
}

// MetaTableClamper is implemented by runtimes whose metadata structure has a
// hard capacity that fault injection can clamp, making exhaustion reachable
// without millions of live objects. The clamp is run state: the runtime's
// reset must remove it.
type MetaTableClamper interface {
	// ClampMetaTable caps the metadata structure at n allocatable entries;
	// 0 removes the cap.
	ClampMetaTable(n uint64)
}

// Degrader is implemented by runtimes that degrade gracefully under metadata
// exhaustion — trading coverage for functionality instead of aborting, the
// CECSan reserved-entry-0 fallback (§II.E, §V).
type Degrader interface {
	// DegradedAllocs returns how many allocations this run lost (or, with
	// overflow chaining, rerouted) their metadata protection.
	DegradedAllocs() int64
}

// TemporalStats counts the graceful degradations of the temporal-hardening
// modes: each field is coverage the hardened runtime gave back under
// pressure rather than aborting, the same trade DegradedAllocs records for
// table exhaustion.
type TemporalStats struct {
	// GenerationWraps counts entry generation counters that wrapped to 0,
	// making the next incarnation indistinguishable from the first.
	GenerationWraps int64
	// IndexSpills counts delayed-reuse indices re-threaded early because the
	// free structure was exhausted.
	IndexSpills int64
	// QuarantineEvictions counts chunks released early because the
	// quarantine byte budget overflowed.
	QuarantineEvictions int64
	// QuarantineFlushes counts whole-quarantine releases on the OOM retry
	// path.
	QuarantineFlushes int64
	// QuarantinedBytes is the bytes currently held back from reuse.
	QuarantinedBytes int64
}

// TemporalHardened is implemented by runtimes carrying the temporal-reuse
// mitigations (generation stamping, delayed index reuse, address
// quarantine); the machine folds the counters into interp.Stats after a run.
type TemporalHardened interface {
	TemporalStats() TemporalStats
}

// Resettable is implemented by runtimes whose per-process state can be
// restored to freshly-constructed form. The execution engine recycles such
// runtimes across machines instead of reconstructing them, which matters for
// runtimes whose constructor is dominated by a large fixed allocation (the
// CECSan metadata table). Runtimes with construction-time randomness (the
// HWASan tag RNG) must NOT implement it: recycling them would change the
// per-run tag sequence relative to a fresh process.
type Resettable interface {
	// ResetRuntime restores the runtime to its post-constructor state.
	// The caller rebinds the environment with Attach before reuse.
	ResetRuntime()
}

// Profile describes what the instrumentation pass emits for a sanitizer.
type Profile struct {
	// Name is the sanitizer name (matches Runtime.Name).
	Name string

	// CheckLoads / CheckStores insert OpCheckAccess before memory reads and
	// writes.
	CheckLoads  bool
	CheckStores bool

	// TagPointers marks runtimes whose program-visible pointers carry tag
	// bits, requiring strip/re-tag wrappers at external-call boundaries.
	TagPointers bool

	// PtrMask is AND-ed with a pointer to form the raw dereference address
	// (the compiled-in strip the pass emits before each memory operation).
	// Zero means "no tagging": the machine uses the identity mask.
	PtrMask uint64

	// SubObject inserts OpSubPtr/OpSubRelease narrowing around composite
	// member accesses (§II.D).
	SubObject bool

	// PtrMeta inserts per-pointer metadata propagation (OpPtrMeta*) after
	// pointer producers, loads and stores — the SoftBound compilation
	// scheme the paper contrasts with implicit tag propagation.
	PtrMeta bool

	// TrackStack instruments unsafe stack objects (metadata in prologue,
	// release in epilogue).
	TrackStack bool

	// TrackGlobals instruments unsafe globals (CECSan's GPT).
	TrackGlobals bool

	// Optimizations (§II.F; OptRedundant additionally models ASan--'s
	// debloating passes).
	OptRedundant     bool
	OptLoopInvariant bool
	OptMonotonic     bool
	OptTypeBased     bool

	// RedzoneBased restricts the loop-invariant optimization to loads:
	// hoisted stores could overwrite redzones (§II.F.1's contrast).
	RedzoneBased bool

	// CheckStep is the §II.F.1 monotonic grouping constant (default 5).
	CheckStep int64

	// InterceptorLibc marks runtimes that check libc calls in interceptors
	// rather than instrumenting callers; callers then skip the explicit
	// range check and rely on LibcCheck.
	InterceptorLibc bool

	// StackRedzone and GlobalRedzone request extra bytes of spacing around
	// tracked stack objects and unsafe globals. Redzone-based sanitizers
	// need the layout change; CECSan's profile leaves both zero — the
	// paper's "unaltered memory layout" compatibility property (§I).
	StackRedzone  int64
	GlobalRedzone int64
}

// Sanitizer bundles a runtime with its instrumentation profile.
type Sanitizer struct {
	Runtime Runtime
	Profile Profile
}
