// Package hwasan models Hardware-assisted AddressSanitizer (HWASan /
// MTE-style memory tagging): 8-bit random tags in the pointer's top byte
// matched against per-16-byte-granule memory tags.
//
// The model reproduces the design-level misses Table II reports:
//
//   - intra-granule overflows (an odd-sized buffer's last 16-byte granule
//     is uniformly tagged, so off-by-small overflows inside it pass);
//   - sub-object overflows (no intra-object granularity);
//   - invalid free (deallocation only compares tags, which match for
//     interior pointers — CWE761 = 0%);
//   - use-after-return (stack frames are not retagged on return);
//   - probabilistic tag collisions (1/255 on reuse).
package hwasan

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"cecsan/internal/alloc"
	"cecsan/internal/mem"
	"cecsan/internal/rt"
)

// tagGranule is the MTE tagging granularity.
const tagGranule = 16

// tagShift places the tag in the pointer's top byte.
const tagShift = 56

const tagChunkBits = 16
const tagChunkSize = 1 << tagChunkBits

type tagChunk [tagChunkSize]byte

// Runtime is the HWASan model (rt.Runtime implementation).
type Runtime struct {
	env rt.Env

	tags        []atomic.Pointer[tagChunk]
	tagsTouched atomic.Int64

	mu   sync.Mutex
	rng  uint64
	seed uint64 // constructor seed; ResetRuntime rewinds rng to it

	// spareMu guards tag-chunk recycling: touchedIdx records materialized
	// chunk indices since the last reset, spare holds zeroed chunks
	// ResetRuntime reclaimed for reuse.
	spareMu    sync.Mutex
	touchedIdx []uint32
	spare      []*tagChunk

	// chunkSize remembers allocation sizes for retag-on-free.
	chunkSize map[uint64]int64
}

var (
	_ rt.Runtime    = (*Runtime)(nil)
	_ rt.Resettable = (*Runtime)(nil)
)

// New constructs an HWASan model runtime with a deterministic tag stream.
func New(seed uint64) *Runtime {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Runtime{rng: seed, seed: seed, chunkSize: make(map[uint64]int64)}
}

// Sanitizer returns the HWASan bundle: checked loads/stores, interceptor
// libc (with the wide gap), tagged pointers stripped via the top byte, no
// layout changes (MTE needs none), no check-reducing optimizations.
func Sanitizer(seed uint64) rt.Sanitizer {
	return rt.Sanitizer{Runtime: New(seed), Profile: ProfileFor()}
}

// ProfileFor derives the HWASan instrumentation profile without
// constructing a runtime. The profile is independent of the tag seed.
func ProfileFor() rt.Profile {
	return rt.Profile{
		Name:            "HWASan",
		CheckLoads:      true,
		CheckStores:     true,
		TagPointers:     true,
		PtrMask:         (uint64(1) << tagShift) - 1,
		TrackStack:      true,
		TrackGlobals:    true,
		InterceptorLibc: true,
	}
}

// Name implements rt.Runtime.
func (r *Runtime) Name() string { return "HWASan" }

// Attach implements rt.Runtime. A pooled runtime keeps its (reset) tag
// table across attaches.
func (r *Runtime) Attach(env *rt.Env) error {
	r.env = *env
	if r.tags == nil {
		r.tags = make([]atomic.Pointer[tagChunk], (mem.SpanSize/tagGranule)>>tagChunkBits)
	}
	return nil
}

// ResetRuntime implements rt.Resettable: drop every materialized tag chunk
// (zeroed and kept for reuse), forget allocation sizes, and rewind the tag
// RNG to the constructor seed — byte-for-byte the state New(seed) returns,
// including the deterministic tag stream.
func (r *Runtime) ResetRuntime() {
	r.spareMu.Lock()
	idxs := r.touchedIdx
	r.touchedIdx = r.touchedIdx[:0]
	r.spareMu.Unlock()
	for _, ci := range idxs {
		c := r.tags[ci].Swap(nil)
		if c == nil {
			continue
		}
		*c = tagChunk{}
		r.spareMu.Lock()
		r.spare = append(r.spare, c)
		r.spareMu.Unlock()
	}
	r.tagsTouched.Store(0)
	r.mu.Lock()
	r.rng = r.seed
	clear(r.chunkSize)
	r.mu.Unlock()
}

// materialize installs a tag chunk at index ci, reusing a spare.
func (r *Runtime) materialize(ci uint64) *tagChunk {
	r.spareMu.Lock()
	var c *tagChunk
	if n := len(r.spare); n > 0 {
		c = r.spare[n-1]
		r.spare = r.spare[:n-1]
	} else {
		c = new(tagChunk)
	}
	r.spareMu.Unlock()
	if r.tags[ci].CompareAndSwap(nil, c) {
		r.tagsTouched.Add(tagChunkSize)
		r.spareMu.Lock()
		r.touchedIdx = append(r.touchedIdx, uint32(ci))
		r.spareMu.Unlock()
		return c
	}
	r.spareMu.Lock()
	r.spare = append(r.spare, c)
	r.spareMu.Unlock()
	return r.tags[ci].Load()
}

// nextTag draws a uniformly random non-zero 8-bit tag.
func (r *Runtime) nextTag() byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		r.rng = r.rng*6364136223846793005 + 1442695040888963407
		t := byte(r.rng >> 56)
		if t != 0 {
			return t
		}
	}
}

// tagByte returns a pointer to the memory tag of the granule holding addr.
func (r *Runtime) tagByte(addr uint64) *byte {
	g := addr / tagGranule
	ci := g >> tagChunkBits
	c := r.tags[ci].Load()
	if c == nil {
		c = r.materialize(ci)
	}
	return &c[g&(tagChunkSize-1)]
}

// setTags tags the granules covering [addr, addr+size). The tag bytes of
// successive granules are consecutive, so the region is one contiguous fill
// resolving each tag chunk once.
func (r *Runtime) setTags(addr uint64, size int64, tag byte) {
	if size <= 0 {
		return
	}
	g := addr / tagGranule
	count := (size + tagGranule - 1) / tagGranule
	for count > 0 {
		ci := g >> tagChunkBits
		c := r.tags[ci].Load()
		if c == nil {
			c = r.materialize(ci)
		}
		off := int64(g & (tagChunkSize - 1))
		n := tagChunkSize - off
		if n > count {
			n = count
		}
		seg := c[off : off+n]
		for i := range seg {
			seg[i] = tag
		}
		g += uint64(n)
		count -= n
	}
}

// tagOf extracts a pointer's tag.
func tagOf(ptr uint64) byte { return byte(ptr >> tagShift) }

// withTag returns addr with the tag applied.
func withTag(addr uint64, tag byte) uint64 { return addr | uint64(tag)<<tagShift }

// strip removes the tag byte.
func strip(ptr uint64) uint64 { return ptr & ((uint64(1) << tagShift) - 1) }

// Malloc implements rt.Runtime: allocate, round the tagged extent up to the
// granule, tag memory and pointer with a fresh random tag.
func (r *Runtime) Malloc(size int64) (uint64, rt.PtrMeta, error) {
	// MTE requires granule-aligned allocations: round up (the size class
	// padding is tagged with the object, which is why intra-granule
	// overflows pass).
	rounded := (size + tagGranule - 1) &^ (tagGranule - 1)
	raw, err := r.env.Heap.Alloc(rounded)
	if err != nil {
		return 0, rt.PtrMeta{}, err
	}
	tag := r.nextTag()
	r.setTags(raw, rounded, tag)
	r.mu.Lock()
	r.chunkSize[raw] = rounded
	r.mu.Unlock()
	return withTag(raw, tag), rt.PtrMeta{}, nil
}

// Free implements rt.Runtime: the deallocation path only verifies that the
// pointer's tag matches memory (catching double free via the retag), then
// retags and releases. Interior pointers carry the SAME tag as the chunk,
// so invalid frees pass the tag check and reach the allocator unreported —
// the CWE761 = 0% design gap.
func (r *Runtime) Free(ptr uint64, _ rt.PtrMeta) *rt.Violation {
	raw := strip(ptr)
	ptag := tagOf(ptr)
	if ptag != 0 {
		mtag := *r.tagByte(raw)
		if mtag != ptag {
			return &rt.Violation{
				Kind: rt.KindDoubleFree, Ptr: ptr, Addr: raw, Seg: alloc.SegmentOf(raw),
				Detail: fmt.Sprintf("tag mismatch on free: ptr=%#x mem=%#x", ptag, mtag),
			}
		}
	}
	r.mu.Lock()
	rounded, ok := r.chunkSize[raw]
	if ok {
		delete(r.chunkSize, raw)
	}
	r.mu.Unlock()
	if !ok {
		// Interior or foreign pointer: silently forwarded (the allocator's
		// undefined behaviour), matching the 0% CWE761 row.
		r.env.Heap.Free(raw)
		return nil
	}
	// Retag with a fresh tag so stale pointers mismatch, then release for
	// immediate reuse (no quarantine).
	r.setTags(raw, rounded, r.nextTag())
	r.env.Heap.Free(raw)
	return nil
}

// StackAlloc implements rt.Runtime: tracked stack objects are tagged like
// heap chunks.
func (r *Runtime) StackAlloc(raw uint64, size int64, tracked bool) (uint64, rt.PtrMeta) {
	if !tracked {
		return raw, rt.PtrMeta{}
	}
	rounded := (size + tagGranule - 1) &^ (tagGranule - 1)
	tag := r.nextTag()
	r.setTags(raw, rounded, tag)
	return withTag(raw, tag), rt.PtrMeta{}
}

// StackRelease implements rt.Runtime: HWASan does NOT retag returning
// frames by default, so use-after-return goes undetected until the slot is
// reused by a new tagged object — the CWE416 stack gap.
func (r *Runtime) StackRelease(uint64, int64) {}

// GlobalInit implements rt.Runtime: unsafe globals are tagged.
func (r *Runtime) GlobalInit(_ string, raw uint64, size int64, tracked bool) (uint64, rt.PtrMeta) {
	if !tracked {
		return raw, rt.PtrMeta{}
	}
	rounded := (size + tagGranule - 1) &^ (tagGranule - 1)
	tag := r.nextTag()
	r.setTags(raw, rounded, tag)
	return withTag(raw, tag), rt.PtrMeta{}
}

// Check implements rt.Runtime: compare the pointer tag against the memory
// tag of every granule touched. Untagged pointers (tag 0) are never checked
// (compatibility with foreign memory).
func (r *Runtime) Check(ptr uint64, _ rt.PtrMeta, off, size int64, k rt.AccessKind) *rt.Violation {
	ptag := tagOf(ptr)
	if ptag == 0 {
		return nil
	}
	addr := strip(ptr) + uint64(off)
	if addr >= mem.SpanSize {
		return nil
	}
	end := addr + uint64(size)
	for a := addr; a < end; a = (a &^ (tagGranule - 1)) + tagGranule {
		if mtag := *r.tagByte(a); mtag != ptag {
			v := &rt.Violation{Ptr: ptr, Addr: a, Size: size, Seg: alloc.SegmentOf(a)}
			if k == rt.Write {
				v.Kind = rt.KindOOBWrite
			} else {
				v.Kind = rt.KindOOBRead
			}
			v.Detail = fmt.Sprintf("tag mismatch: ptr=%#x mem=%#x", ptag, mtag)
			return v
		}
	}
	return nil
}

// Addr implements rt.Runtime.
func (r *Runtime) Addr(ptr uint64) uint64 { return strip(ptr) }

// UsableSize implements rt.Runtime via the chunk-size registry.
func (r *Runtime) UsableSize(ptr uint64, _ rt.PtrMeta) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if sz, ok := r.chunkSize[strip(ptr)]; ok {
		return sz
	}
	return -1
}

// SubPtr implements rt.Runtime: no sub-object granularity (same tag).
func (r *Runtime) SubPtr(base uint64, off, _ int64) (uint64, rt.PtrMeta) {
	return base + uint64(off), rt.PtrMeta{}
}

// SubRelease implements rt.Runtime.
func (r *Runtime) SubRelease(uint64) {}

// PrepareExternArg implements rt.Runtime: strip the tag (external code does
// not run with tag checking).
func (r *Runtime) PrepareExternArg(ptr uint64) (uint64, *rt.Violation) {
	return strip(ptr), nil
}

// AdoptExternRet implements rt.Runtime: foreign pointers stay untagged and
// unchecked.
func (r *Runtime) AdoptExternRet(raw uint64) uint64 { return raw }

// LibcCheck implements rt.Runtime: interceptors tag-check the whole range;
// the wide-character family has no interceptor (shared sanitizer-library
// gap, §IV.B).
func (r *Runtime) LibcCheck(fn string, ptr uint64, meta rt.PtrMeta, n int64, k rt.AccessKind) *rt.Violation {
	if n <= 0 {
		return nil
	}
	if strings.HasPrefix(fn, "wcs") || strings.HasPrefix(fn, "wmem") || strings.HasPrefix(fn, "print") {
		return nil
	}
	return r.Check(ptr, meta, 0, n, k)
}

// LoadPtrMeta implements rt.Runtime.
func (r *Runtime) LoadPtrMeta(uint64) rt.PtrMeta { return rt.PtrMeta{} }

// StorePtrMeta implements rt.Runtime.
func (r *Runtime) StorePtrMeta(uint64, rt.PtrMeta) {}

// OverheadBytes implements rt.Runtime: the touched tag shadow (1/16 of
// touched memory) — HWASan's low-memory selling point.
func (r *Runtime) OverheadBytes() int64 { return r.tagsTouched.Load() }
