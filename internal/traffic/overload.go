package traffic

import (
	"fmt"
	"time"

	"cecsan/internal/obs"
)

// OverloadConfig configures an overload sweep: a closed-loop calibration
// run that measures the deployment's saturation throughput, then one
// open-loop point per multiple of that capacity, each served with the
// resilience layer armed.
type OverloadConfig struct {
	// Spec is the validated workload spec.
	Spec *Spec
	// Seed, when nonzero, overrides the spec's seed.
	Seed uint64
	// Workers sizes the execution pool (<= 0 selects GOMAXPROCS).
	Workers int
	// Requests bounds each point's request stream (<= 0 = 5000). The
	// sweep is self-calibrating: a point lasts Requests/capacity seconds
	// of wall time on whatever machine runs it, so the default gives each
	// point several CoDel control intervals of sustained pressure.
	Requests int
	// Multiples are the offered-load multiples of calibrated capacity to
	// sweep (empty = 1, 2, 4). Multiples past 1.0 drive the deployment
	// past saturation, which is where shedding, breakers and the
	// degradation ladder earn their keep.
	Multiples []float64
	// Resilience tunes the swept points (nil = defaults).
	Resilience *ResilienceConfig
	// ChaosSeed, when nonzero, additionally arms the chaos campaign on
	// every swept point (not the calibration run).
	ChaosSeed uint64
	// QueueDepth sizes each point's admission queue (<= 0 = 256). Overload
	// points default deeper than Serve's 4x workers: open-loop pacing at
	// high speedups arrives in timer-granularity bursts, and with the
	// CoDel controller shedding on sustained *delay*, a deep queue absorbs
	// jitter without surrendering latency control.
	QueueDepth int
	// Obs, when set, is passed to every run (gauges reflect the most
	// recent point).
	Obs *obs.Observer
	// Progress, when set, is called as each stage starts.
	Progress func(stage string)
}

// OverloadPoint is one swept offered-load point.
type OverloadPoint struct {
	// Multiple is the offered load as a multiple of calibrated capacity.
	Multiple float64 `json:"multiple"`
	// Speedup is the stream compression factor that realizes it.
	Speedup float64 `json:"speedup"`
	// OfferedPerSec is the offered request rate.
	OfferedPerSec float64 `json:"offered_per_sec"`
	// Result is the point's full campaign summary.
	Result *ServeResult `json:"result"`
}

// OverloadResult is the sweep summary (the BENCH_overload.json payload,
// minus the run metadata cmd/serve adds).
type OverloadResult struct {
	Seed           uint64          `json:"seed"`
	Workers        int             `json:"workers"`
	Requests       int             `json:"requests"`
	CapacityPerSec float64         `json:"capacity_per_sec"`
	ChaosSeed      uint64          `json:"chaos_seed,omitempty"`
	Points         []OverloadPoint `json:"points"`
}

// RunOverload calibrates, then sweeps. Calibration runs closed-loop with
// the resilience layer off: workers drain as fast as they can, and the
// achieved request rate is the deployment's capacity. Each sweep point then
// replays the same deterministic stream open-loop at Multiple x capacity
// with resilience armed, so the BENCH payload shows goodput, sheds, retries,
// breaker trips and ladder moves as offered load climbs past saturation.
func RunOverload(cfg OverloadConfig) (*OverloadResult, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("traffic: overload: nil spec")
	}
	requests := cfg.Requests
	if requests <= 0 {
		requests = 5000
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 256
	}
	multiples := cfg.Multiples
	if len(multiples) == 0 {
		multiples = []float64{1, 2, 4}
	}
	for _, m := range multiples {
		if m <= 0 {
			return nil, fmt.Errorf("traffic: overload: multiple %v must be positive", m)
		}
	}
	res := cfg.Resilience
	if res == nil {
		res = &ResilienceConfig{}
	}
	progress := func(stage string) {
		if cfg.Progress != nil {
			cfg.Progress(stage)
		}
	}

	progress("calibrate")
	cal, err := Serve(ServeConfig{
		Spec:        cfg.Spec,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
		MaxRequests: requests,
		QueueDepth:  depth,
		Obs:         cfg.Obs,
	})
	if err != nil {
		return nil, fmt.Errorf("traffic: overload calibration: %w", err)
	}
	capacity := cal.RequestsPerSec
	if capacity <= 0 {
		return nil, fmt.Errorf("traffic: overload calibration measured no throughput (elapsed %v)", cal.Elapsed)
	}

	out := &OverloadResult{
		Seed:           cal.Seed,
		Workers:        cal.Workers,
		Requests:       requests,
		CapacityPerSec: capacity,
		ChaosSeed:      cfg.ChaosSeed,
	}
	for _, m := range multiples {
		offered := m * capacity
		speedup := offered / cfg.Spec.AggregateRate
		progress(fmt.Sprintf("sweep %gx (%.0f req/s)", m, offered))
		r, err := Serve(ServeConfig{
			Spec:        cfg.Spec,
			Seed:        cfg.Seed,
			Workers:     cfg.Workers,
			MaxRequests: requests,
			QueueDepth:  depth,
			Speedup:     speedup,
			Resilience:  res,
			ChaosSeed:   cfg.ChaosSeed,
			Obs:         cfg.Obs,
			// Safety net: an open-loop point cannot take longer than the
			// offered schedule plus drain time; 2 minutes bounds a wedged
			// point without touching healthy ones.
			Duration: 2 * time.Minute,
		})
		if err != nil {
			return nil, fmt.Errorf("traffic: overload point %gx: %w", m, err)
		}
		out.Points = append(out.Points, OverloadPoint{
			Multiple:      m,
			Speedup:       speedup,
			OfferedPerSec: offered,
			Result:        r,
		})
	}
	return out, nil
}
