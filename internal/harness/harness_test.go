package harness

import (
	"strings"
	"testing"

	"cecsan/internal/juliet"
	"cecsan/internal/sanitizers"
	"cecsan/prog"
)

// miniSuite generates a scaled-down but fully representative suite.
func miniSuite(t *testing.T, perCWE int) []*juliet.Case {
	t.Helper()
	var suite []*juliet.Case
	for _, cwe := range juliet.AllCWEs() {
		cases, err := juliet.Generate(cwe, perCWE)
		if err != nil {
			t.Fatalf("Generate(%v): %v", cwe, err)
		}
		suite = append(suite, cases...)
	}
	return suite
}

func TestRunCaseOutcomes(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	b := f.MallocBytes(8)
	f.Store(b, 8, f.Const(1), prog.Char())
	f.RetVoid()
	p := pb.MustBuild()

	out, err := RunCase(p, nil, sanitizers.CECSan)
	if err != nil || out != OutcomeDetected {
		t.Fatalf("bad case: out=%v err=%v", out, err)
	}
	out, err = RunCase(p, nil, sanitizers.Native)
	if err != nil || out != OutcomeClean {
		t.Fatalf("native run: out=%v err=%v", out, err)
	}
}

// TestMiniTable2 evaluates a scaled-down Table II and checks the paper's
// qualitative findings hold mechanically.
func TestMiniTable2(t *testing.T) {
	suite := miniSuite(t, 90)
	tools := []sanitizers.Name{
		sanitizers.CECSan, sanitizers.PACMem, sanitizers.CryptSan,
		sanitizers.HWASan, sanitizers.ASan, sanitizers.SoftBound,
	}
	eval, err := EvaluateJuliet(suite, tools, 0)
	if err != nil {
		t.Fatalf("EvaluateJuliet: %v", err)
	}
	t.Logf("\n%s", FormatTable2(eval))

	byName := map[sanitizers.Name]*ToolResult{}
	for _, tr := range eval.Tools {
		byName[tr.Name] = tr
	}

	// Finding 4: CECSan detects 100% everywhere with zero FPs.
	cec := byName[sanitizers.CECSan]
	for cwe, s := range cec.PerCWE {
		if s.Rate() != 100 {
			t.Errorf("CECSan %v rate = %.2f%%, want 100%%", cwe, s.Rate())
		}
	}
	if cec.TotalFalsePositives() != 0 {
		t.Errorf("CECSan FPs = %d, want 0", cec.TotalFalsePositives())
	}
	if cec.Cases != len(suite) {
		t.Errorf("CECSan evaluated %d cases, want all %d", cec.Cases, len(suite))
	}

	// Finding 1: ASan and HWASan miss bugs on the overflow CWEs.
	for _, cwe := range []juliet.CWE{juliet.CWE121, juliet.CWE122} {
		if r := byName[sanitizers.ASan].PerCWE[cwe].Rate(); r >= 100 {
			t.Errorf("ASan %v rate = %.2f%%, want < 100%%", cwe, r)
		}
		if r := byName[sanitizers.HWASan].PerCWE[cwe].Rate(); r >= 100 {
			t.Errorf("HWASan %v rate = %.2f%%, want < 100%%", cwe, r)
		}
	}

	// HWASan's CWE761 row is exactly 0%.
	if r := byName[sanitizers.HWASan].PerCWE[juliet.CWE761].Rate(); r != 0 {
		t.Errorf("HWASan CWE761 rate = %.2f%%, want 0%%", r)
	}

	// Everyone catches every double free (Table II: 100% across CWE415).
	for _, tr := range eval.Tools {
		if s := tr.PerCWE[juliet.CWE415]; s.Total > 0 && s.Rate() != 100 {
			t.Errorf("%s CWE415 rate = %.2f%%, want 100%%", tr.Name, s.Rate())
		}
	}

	// Finding 3: PACMem and CryptSan miss ONLY sub-object cases, so they
	// sit strictly between ASan and CECSan on CWE121/122 and at 100% on
	// the rest.
	for _, name := range []sanitizers.Name{sanitizers.PACMem, sanitizers.CryptSan} {
		tr := byName[name]
		for _, cwe := range []juliet.CWE{juliet.CWE121, juliet.CWE122} {
			r := tr.PerCWE[cwe].Rate()
			if r >= 100 || r <= byName[sanitizers.ASan].PerCWE[cwe].Rate() {
				t.Errorf("%s %v rate = %.2f%%, want between ASan and 100%%", name, cwe, r)
			}
		}
		for _, cwe := range []juliet.CWE{juliet.CWE124, juliet.CWE126, juliet.CWE127, juliet.CWE416, juliet.CWE761} {
			if s := tr.PerCWE[cwe]; s.Total > 0 && s.Rate() != 100 {
				t.Errorf("%s %v rate = %.2f%%, want 100%%", name, cwe, s.Rate())
			}
		}
	}

	// Finding 2: only SoftBound has false positives.
	if byName[sanitizers.SoftBound].TotalFalsePositives() == 0 {
		t.Error("SoftBound FPs = 0, want > 0 (prototype flaws)")
	}
	for _, name := range []sanitizers.Name{sanitizers.ASan, sanitizers.HWASan, sanitizers.PACMem, sanitizers.CryptSan} {
		if fps := byName[name].TotalFalsePositives(); fps != 0 {
			t.Errorf("%s FPs = %d, want 0", name, fps)
		}
	}

	// Subset sizes: SoftBound < CryptSan < PACMem < full.
	if !(byName[sanitizers.SoftBound].Cases < byName[sanitizers.CryptSan].Cases &&
		byName[sanitizers.CryptSan].Cases < byName[sanitizers.PACMem].Cases &&
		byName[sanitizers.PACMem].Cases < len(suite)) {
		t.Errorf("subset sizes not ordered: SB=%d CS=%d PM=%d full=%d",
			byName[sanitizers.SoftBound].Cases, byName[sanitizers.CryptSan].Cases,
			byName[sanitizers.PACMem].Cases, len(suite))
	}
}

func TestFormatTable1(t *testing.T) {
	suite := miniSuite(t, 10)
	out := FormatTable1(suite)
	for _, want := range []string{"CWE121", "Stack Buffer Overflow", "CWE761", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}
