// Package interp implements the machine that executes (instrumented) IR
// programs: the stand-in for a CPU running a compiled C binary.
//
// The machine owns the simulated address space, the stock allocators, and
// the attached sanitizer runtime. Wall-clock time of Machine.Run is the
// repository's runtime-overhead metric, and the peak of
// (program resident bytes + sanitizer overhead bytes), sampled at
// allocation events, is its memory-overhead metric.
package interp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cecsan/internal/alloc"
	"cecsan/internal/mem"
	"cecsan/internal/rt"
	"cecsan/prog"
)

// DefaultMaxInstructions bounds a single Run to catch runaway programs.
const DefaultMaxInstructions = int64(2_000_000_000)

// DefaultMaxCallDepth bounds recursion so simulated stack overflows surface
// as program errors instead of killing the host.
const DefaultMaxCallDepth = 4096

// ErrInstructionBudget is returned when a program exceeds the instruction
// budget.
var ErrInstructionBudget = errors.New("interp: instruction budget exhausted")

// ErrCallDepth is returned when a program recurses past the depth limit.
var ErrCallDepth = errors.New("interp: call depth limit exceeded")

// ErrWallBudget is the conventional cause an external watchdog passes to
// Interrupt when a run exceeds its wall-clock budget.
var ErrWallBudget = errors.New("interp: wall-clock budget exhausted")

// ErrHeapBudget is returned when a program's live heap exceeds
// Options.MaxHeapBytes.
var ErrHeapBudget = errors.New("interp: heap budget exhausted")

// PanicError is a Go panic recovered from simulated execution — a bug in a
// sanitizer runtime or the machine itself, never legal program behaviour.
// Parallel-region workers recover panics into it so one hostile case cannot
// kill the host process; the engine wraps main-thread panics the same way.
type PanicError struct {
	// Value is the stringified panic payload.
	Value string
	// Stack is the recovering goroutine's stack trace.
	Stack string
}

// Error implements the error interface.
func (e *PanicError) Error() string { return "interp: recovered panic: " + e.Value }

// CheckObserver receives one callback per executed sanitizer check, keyed by
// the check's static site (containing function + opcode pc). bytes is the
// access size the check covered and dur the wall time spent inside the
// runtime's Check call. Implementations must be safe for concurrent use
// (parallel-region threads fire checks concurrently). obs.ToolSites
// satisfies this structurally, keeping interp free of an obs import.
type CheckObserver interface {
	ObserveCheck(fn string, pc int, bytes int64, dur time.Duration)
}

// Options configures a Machine.
type Options struct {
	// MaxInstructions bounds the total executed instructions (per run).
	MaxInstructions int64
	// MaxCallDepth bounds program recursion.
	MaxCallDepth int
	// MaxHeapBytes bounds the program's live heap (rounded chunk sizes);
	// 0 = unlimited. Exceeding it aborts the run with ErrHeapBudget.
	MaxHeapBytes int64
	// AddrBits is the canonical pointer width (47 unless testing ARM64).
	AddrBits uint
	// Seed seeds the program-visible rand() stream.
	Seed uint64
	// CheckObserver, when non-nil, is invoked (with wall timing) around
	// every executed check opcode. nil keeps the check hot path free of
	// time.Now calls.
	CheckObserver CheckObserver
}

// DefaultOptions returns the standard machine configuration.
func DefaultOptions() Options {
	return Options{
		MaxInstructions: DefaultMaxInstructions,
		MaxCallDepth:    DefaultMaxCallDepth,
		AddrBits:        47,
		Seed:            1,
	}
}

// Stats aggregates execution counters across all threads of a run.
type Stats struct {
	Instructions   int64
	ChecksExecuted int64
	SubPtrOps      int64
	MetaOps        int64 // per-pointer metadata propagation ops (SoftBound)
	Mallocs        int64
	Frees          int64
	LibcCalls      int64
	ExternCalls    int64

	// DegradedAllocs counts allocations whose sanitizer metadata was lost to
	// exhaustion (the CECSan entry-0 fallback); 0 for runtimes that do not
	// degrade.
	DegradedAllocs int64
	// InjectedFaults counts scheduled fault-injection events that fired
	// during the run (filled by the engine; always 0 outside fault mode).
	InjectedFaults int64

	// Temporal-hardening degradation counters (rt.TemporalStats): coverage
	// the hardened runtime traded back under pressure. Always 0 for default
	// profiles and for runtimes without the hardening modes.
	GenerationWraps     int64
	IndexSpills         int64
	QuarantineEvictions int64
	QuarantineFlushes   int64

	// PeakProgramBytes is the high-water resident size of program memory.
	PeakProgramBytes int64
	// PeakOverheadBytes is the high-water sanitizer metadata size.
	PeakOverheadBytes int64
	// PeakRSS is the high-water sum, sampled at allocation events.
	PeakRSS int64
}

// Result is the outcome of one program run.
type Result struct {
	// Violation is the sanitizer report that aborted the program, if any.
	Violation *rt.Violation
	// Fault is a machine-level crash (wild access), if any.
	Fault *mem.Fault
	// Err is an execution error: OOM, budget exhaustion, unknown symbol.
	Err error
	// Ret is main's return value when the program completed.
	Ret uint64
	// Stats are the merged execution counters.
	Stats Stats
}

// Ok reports whether the program ran to completion with no report, crash or
// error.
func (r *Result) Ok() bool { return r.Violation == nil && r.Fault == nil && r.Err == nil }

// Resources bundles the reusable per-machine execution state: the simulated
// address space and the stock allocators. A Resources value is what the
// engine's machine pool recycles between cases — Reset returns all three to
// their freshly-constructed state, so a machine built on reset resources
// behaves byte-identically to one built on fresh ones (same addresses, same
// zeroed memory, same RSS accounting).
type Resources struct {
	Space   *mem.Space
	Heap    *alloc.Heap
	Globals *alloc.Globals

	// globalPtr/globalMeta back the machine's Global Pointer Table. They
	// live here — not on the machine — so pooled reuse recycles the map
	// storage: NewOn repopulates the cleared maps instead of allocating two
	// fresh ones per run, which was the dominant setup cost left in the
	// machine-construction path.
	globalPtr  map[string]uint64
	globalMeta map[string]rt.PtrMeta
}

// NewResources allocates a fresh resource bundle for the given canonical
// pointer width.
func NewResources(addrBits uint) (*Resources, error) {
	space, err := mem.NewSpace(addrBits)
	if err != nil {
		return nil, fmt.Errorf("interp: %w", err)
	}
	return &Resources{
		Space:      space,
		Heap:       alloc.NewHeap(),
		Globals:    alloc.NewGlobals(),
		globalPtr:  make(map[string]uint64, 8),
		globalMeta: make(map[string]rt.PtrMeta, 8),
	}, nil
}

// Reset rewinds the bundle for reuse by a new machine. The caller must
// guarantee no machine still references it.
func (r *Resources) Reset() {
	r.Space.Reset()
	r.Heap.Reset()
	r.Globals.Reset()
	clear(r.globalPtr)
	clear(r.globalMeta)
}

// Machine executes one instrumented program under one sanitizer runtime.
// A Machine is single-run: create a new one for each execution.
type Machine struct {
	program *prog.Program
	san     rt.Sanitizer

	space   *mem.Space
	heap    *alloc.Heap
	globals *alloc.Globals

	// addrMask clears tag bits when forming raw addresses; ^0 when the
	// sanitizer does not tag pointers.
	addrMask uint64
	trackMeta bool // per-pointer metadata frames enabled (SoftBound)

	// globalPtr is the program-visible pointer for each global: the Global
	// Pointer Table (§II.C.3). For tracked globals the value is tagged.
	globalPtr map[string]uint64
	globalMeta map[string]rt.PtrMeta

	opts Options

	// Input feed for fgets/recv (the harness's dummy server).
	inputMu sync.Mutex
	inputs  [][]byte

	outputMu sync.Mutex
	output   []string

	rngState atomic.Uint64

	aborted     atomic.Bool
	interrupted atomic.Pointer[interruptCause]

	peakRSS  atomic.Int64
	peakProg atomic.Int64
	peakOver atomic.Int64

	// stats are merged with atomic adds: thread exits (including parallel
	// region workers) fold their local counters in concurrently.
	stats atomicStats
}

// atomicStats mirrors Stats with lock-free counters for cross-thread merges.
type atomicStats struct {
	instructions   atomic.Int64
	checksExecuted atomic.Int64
	subPtrOps      atomic.Int64
	metaOps        atomic.Int64
	mallocs        atomic.Int64
	frees          atomic.Int64
	libcCalls      atomic.Int64
	externCalls    atomic.Int64
}

// New builds a machine for an instrumented program and sanitizer pair on
// fresh resources, attaching the runtime and loading globals (including the
// GPT initialization the paper performs at the start of main).
func New(p *prog.Program, san rt.Sanitizer, opts Options) (*Machine, error) {
	if opts.AddrBits == 0 {
		opts.AddrBits = 47
	}
	res, err := NewResources(opts.AddrBits)
	if err != nil {
		return nil, err
	}
	return NewOn(res, p, san, opts)
}

// NewOn builds a machine on an existing (fresh or freshly Reset) resource
// bundle. The bundle's address-space width must match opts.AddrBits; the
// machine takes sole ownership of the bundle until its run completes.
func NewOn(res *Resources, p *prog.Program, san rt.Sanitizer, opts Options) (*Machine, error) {
	if opts.MaxInstructions <= 0 {
		opts.MaxInstructions = DefaultMaxInstructions
	}
	if opts.MaxCallDepth <= 0 {
		opts.MaxCallDepth = DefaultMaxCallDepth
	}
	if opts.AddrBits == 0 {
		opts.AddrBits = 47
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if got := res.Space.AddrBits(); got != opts.AddrBits {
		return nil, fmt.Errorf("interp: resource space has %d address bits, machine wants %d", got, opts.AddrBits)
	}
	if res.globalPtr == nil {
		// Bundles predating the pooled maps (zero-value Resources): behave
		// like a fresh bundle.
		res.globalPtr = make(map[string]uint64, len(p.Globals))
		res.globalMeta = make(map[string]rt.PtrMeta, len(p.Globals))
	}
	m := &Machine{
		program:    p,
		san:        san,
		space:      res.Space,
		heap:       res.Heap,
		globals:    res.Globals,
		globalPtr:  res.globalPtr,
		globalMeta: res.globalMeta,
		opts:       opts,
	}
	m.rngState.Store(opts.Seed)
	m.addrMask = ^uint64(0)
	if san.Profile.PtrMask != 0 {
		m.addrMask = san.Profile.PtrMask
	}
	m.trackMeta = san.Profile.PtrMeta

	env := rt.Env{Space: m.space, Heap: m.heap, Globals: m.globals}
	if err := san.Runtime.Attach(&env); err != nil {
		return nil, fmt.Errorf("interp: attach %s: %w", san.Runtime.Name(), err)
	}

	for _, g := range p.Globals {
		defSize := g.Type.Size()
		tracked := g.AddressTaken && san.Profile.TrackGlobals
		if tracked && san.Profile.GlobalRedzone > 0 {
			defSize += san.Profile.GlobalRedzone // redzone-based layout change
		}
		addr, err := m.globals.Define(g.Name, defSize)
		if err != nil {
			return nil, fmt.Errorf("interp: %w", err)
		}
		if g.InitBytes != nil {
			if f := m.space.WriteBytes(addr, g.InitBytes); f != nil {
				return nil, fmt.Errorf("interp: global init: %v", f)
			}
		} else if g.Init != 0 {
			sz := g.Type.Size()
			if sz > 8 {
				sz = 8
			}
			if f := m.space.Store(addr, sz, uint64(g.Init)); f != nil {
				return nil, fmt.Errorf("interp: global init: %v", f)
			}
		}
		ptr, meta := san.Runtime.GlobalInit(g.Name, addr, g.Type.Size(), tracked)
		m.globalPtr[g.Name] = ptr
		m.globalMeta[g.Name] = meta
	}
	return m, nil
}

// Feed queues input payloads for the program's fgets/recv calls, in order —
// the dummy-server side of the paper's automation framework.
func (m *Machine) Feed(payloads ...[]byte) {
	m.inputMu.Lock()
	defer m.inputMu.Unlock()
	for _, p := range payloads {
		m.inputs = append(m.inputs, append([]byte(nil), p...))
	}
}

// nextInput pops the next queued input payload.
func (m *Machine) nextInput() ([]byte, bool) {
	m.inputMu.Lock()
	defer m.inputMu.Unlock()
	if len(m.inputs) == 0 {
		return nil, false
	}
	in := m.inputs[0]
	m.inputs = m.inputs[1:]
	return in, true
}

// Output returns the lines printed by the program.
func (m *Machine) Output() []string {
	m.outputMu.Lock()
	defer m.outputMu.Unlock()
	return append([]string(nil), m.output...)
}

func (m *Machine) printLine(s string) {
	m.outputMu.Lock()
	defer m.outputMu.Unlock()
	m.output = append(m.output, s)
}

// interruptCause carries the error an external Interrupt asked the run to
// stop with.
type interruptCause struct{ err error }

// Interrupt asynchronously stops the run: threads notice at the next loop
// backedge or call and abort with cause (ErrWallBudget from the engine's
// watchdog, typically). The first cause wins; a nil cause still stops the
// run but leaves the generic cross-thread abort error. Safe to call from any
// goroutine, including after the run has finished (then a no-op).
func (m *Machine) Interrupt(cause error) {
	if cause != nil {
		m.interrupted.CompareAndSwap(nil, &interruptCause{err: cause})
	}
	m.aborted.Store(true)
}

// rand returns the next value of the program-visible deterministic LCG.
func (m *Machine) rand() uint64 {
	for {
		old := m.rngState.Load()
		next := old*6364136223846793005 + 1442695040888963407
		if m.rngState.CompareAndSwap(old, next) {
			return next >> 17
		}
	}
}

// sampleRSS updates the peak footprint gauges. Called at allocation events,
// where real RSS changes.
func (m *Machine) sampleRSS() {
	resident := m.space.TouchedBytes()
	over := m.san.Runtime.OverheadBytes()
	updateMax(&m.peakProg, resident)
	updateMax(&m.peakOver, over)
	updateMax(&m.peakRSS, resident+over)
}

func updateMax(g *atomic.Int64, v int64) {
	for {
		old := g.Load()
		if v <= old || g.CompareAndSwap(old, v) {
			return
		}
	}
}

// Run executes the program's entry function to completion or abort.
func (m *Machine) Run() *Result {
	res := &Result{}
	entry, ok := m.program.Funcs[m.program.Entry]
	if !ok {
		res.Err = fmt.Errorf("interp: entry %q not found", m.program.Entry)
		return res
	}
	stack, err := alloc.NewStack(0)
	if err != nil {
		res.Err = err
		return res
	}
	th := &thread{m: m, stack: stack, budget: m.opts.MaxInstructions}
	ret, _, ab := th.call(entry, nil, nil, 0)
	th.flushStats()
	m.sampleRSS()

	if ab != nil {
		res.Violation = ab.violation
		res.Fault = ab.fault
		res.Err = ab.err
	} else {
		res.Ret = ret
	}
	res.Stats = Stats{
		Instructions:   m.stats.instructions.Load(),
		ChecksExecuted: m.stats.checksExecuted.Load(),
		SubPtrOps:      m.stats.subPtrOps.Load(),
		MetaOps:        m.stats.metaOps.Load(),
		Mallocs:        m.stats.mallocs.Load(),
		Frees:          m.stats.frees.Load(),
		LibcCalls:      m.stats.libcCalls.Load(),
		ExternCalls:    m.stats.externCalls.Load(),
	}
	res.Stats.PeakProgramBytes = m.peakProg.Load()
	res.Stats.PeakOverheadBytes = m.peakOver.Load()
	res.Stats.PeakRSS = m.peakRSS.Load()
	if d, ok := m.san.Runtime.(rt.Degrader); ok {
		res.Stats.DegradedAllocs = d.DegradedAllocs()
	}
	if th, ok := m.san.Runtime.(rt.TemporalHardened); ok {
		ts := th.TemporalStats()
		res.Stats.GenerationWraps = ts.GenerationWraps
		res.Stats.IndexSpills = ts.IndexSpills
		res.Stats.QuarantineEvictions = ts.QuarantineEvictions
		res.Stats.QuarantineFlushes = ts.QuarantineFlushes
	}
	return res
}

// mergeStats folds a thread's local counters into the machine totals with
// atomic adds, keeping concurrent parallel-region exits off a shared lock.
func (m *Machine) mergeStats(s *Stats) {
	m.stats.instructions.Add(s.Instructions)
	m.stats.checksExecuted.Add(s.ChecksExecuted)
	m.stats.subPtrOps.Add(s.SubPtrOps)
	m.stats.metaOps.Add(s.MetaOps)
	m.stats.mallocs.Add(s.Mallocs)
	m.stats.frees.Add(s.Frees)
	m.stats.libcCalls.Add(s.LibcCalls)
	m.stats.externCalls.Add(s.ExternCalls)
}
