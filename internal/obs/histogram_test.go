package obs

import (
	"math"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// One value per boundary-interesting spot: zero, bucket edges, a
	// negative (clamps to the zero bucket), and a huge value.
	for _, v := range []int64{0, -3, 1, 2, 3, 4, 7, 8, math.MaxInt64} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d, want 9", h.Count())
	}
	_, _, bs := h.snapshot()
	got := map[int64]int64{}
	for _, b := range bs {
		got[b.Le] = b.Count
	}
	want := map[int64]int64{
		0:             2, // 0 and the clamped -3
		1:             1, // 1
		3:             2, // 2, 3
		7:             2, // 4, 7
		15:            1, // 8
		math.MaxInt64: 1,
	}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for le, n := range want {
		if got[le] != n {
			t.Fatalf("bucket le=%d count = %d, want %d (all: %v)", le, got[le], n, got)
		}
	}
	var total int64
	for _, b := range bs {
		total += b.Count
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, want count %d", total, h.Count())
	}
}
