package prog

import (
	"strings"
	"testing"
)

func TestBuildMinimalProgram(t *testing.T) {
	pb := NewProgram()
	f := pb.Function("main", 0)
	f.Ret(f.Const(0))
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.Entry != "main" || len(p.Funcs) != 1 {
		t.Fatalf("program = %+v", p)
	}
}

func TestBuildAddsImplicitReturn(t *testing.T) {
	pb := NewProgram()
	f := pb.Function("main", 0)
	f.Const(1) // no explicit terminator
	p, err := pb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	code := p.Funcs["main"].Code
	if code[len(code)-1].Op != OpRet {
		t.Fatal("missing implicit RetVoid")
	}
}

func TestIfShape(t *testing.T) {
	pb := NewProgram()
	f := pb.Function("main", 0)
	c := f.Const(1)
	var thenIdx, elseIdx int
	f.If(c,
		func() { thenIdx = f.pc(); f.Const(100) },
		func() { elseIdx = f.pc(); f.Const(200) },
	)
	f.RetVoid()
	p := pb.MustBuild()
	code := p.Funcs["main"].Code

	// Find the CondBr and check it targets the then-block.
	var condbr *Instr
	for i := range code {
		if code[i].Op == OpCondBr {
			condbr = &code[i]
			break
		}
	}
	if condbr == nil {
		t.Fatal("no CondBr emitted")
	}
	if condbr.Imm != int64(thenIdx) {
		t.Errorf("CondBr targets @%d, want then-block @%d", condbr.Imm, thenIdx)
	}
	if elseIdx >= thenIdx {
		t.Errorf("else block (@%d) should precede then block (@%d) in layout", elseIdx, thenIdx)
	}
}

func TestForRangeRecordsLoopFacts(t *testing.T) {
	pb := NewProgram()
	f := pb.Function("main", 0)
	buf := f.Alloca(ArrayOf(Int(), 10))
	f.ForRange(ConstOperand(0), ConstOperand(10), 1, func(i Reg) {
		p := f.ElemPtr(buf, Int(), i)
		f.Store(p, 0, i, Int())
	})
	f.RetVoid()
	p := pb.MustBuild()
	fn := p.Funcs["main"]

	if len(fn.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(fn.Loops))
	}
	l := fn.Loops[0]
	if !l.Start.IsConst || l.Start.Const != 0 {
		t.Errorf("loop start = %+v, want const 0", l.Start)
	}
	if !l.Limit.IsConst || l.Limit.Const != 10 {
		t.Errorf("loop limit = %+v, want const 10", l.Limit)
	}
	if l.Step != 1 {
		t.Errorf("loop step = %d, want 1", l.Step)
	}
	if !(l.HeadStart < l.HeadEnd && l.HeadEnd == l.BodyStart && l.BodyStart < l.BodyEnd && l.BodyEnd < l.LatchEnd) {
		t.Errorf("inconsistent loop ranges: %+v", l)
	}
	// The store in the body must sit inside [BodyStart, BodyEnd).
	foundStore := false
	for i := l.BodyStart; i < l.BodyEnd; i++ {
		if fn.Code[i].Op == OpStore {
			foundStore = true
		}
	}
	if !foundStore {
		t.Error("loop body range does not contain the store")
	}
}

func TestNestedLoopsRecordInnerFirst(t *testing.T) {
	pb := NewProgram()
	f := pb.Function("main", 0)
	f.ForRange(ConstOperand(0), ConstOperand(3), 1, func(i Reg) {
		f.ForRange(ConstOperand(0), ConstOperand(5), 1, func(j Reg) {
			f.Add(i, j)
		})
	})
	f.RetVoid()
	p := pb.MustBuild()
	loops := p.Funcs["main"].Loops
	if len(loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(loops))
	}
	inner, outer := loops[0], loops[1]
	if !(outer.BodyStart <= inner.HeadStart && inner.LatchEnd <= outer.BodyEnd) {
		t.Errorf("inner loop %+v not contained in outer body [%d,%d)", inner, outer.BodyStart, outer.BodyEnd)
	}
	if inner.Limit.Const != 5 || outer.Limit.Const != 3 {
		t.Errorf("loop limits scrambled: inner=%v outer=%v", inner.Limit, outer.Limit)
	}
}

func TestDescendingForRange(t *testing.T) {
	pb := NewProgram()
	f := pb.Function("main", 0)
	f.ForRange(ConstOperand(9), ConstOperand(0), -1, func(i Reg) { f.Mov(i) })
	f.RetVoid()
	p := pb.MustBuild()
	l := p.Funcs["main"].Loops[0]
	if l.Step != -1 {
		t.Fatalf("step = %d, want -1", l.Step)
	}
}

func TestFieldPtrFlags(t *testing.T) {
	st := StructOf("CharVoid",
		FieldSpec{"charFirst", ArrayOf(Char(), 16)},
		FieldSpec{"voidSecond", VoidPtr()},
	)
	pb := NewProgram()
	f := pb.Function("main", 0)
	obj := f.MallocType(st)
	fp := f.FieldPtr(obj, st, "voidSecond")
	f.Load(fp, 0, VoidPtr())
	f.RetVoid()
	p := pb.MustBuild()

	var gep *Instr
	for i := range p.Funcs["main"].Code {
		if p.Funcs["main"].Code[i].Op == OpGEP {
			gep = &p.Funcs["main"].Code[i]
		}
	}
	if gep == nil {
		t.Fatal("no GEP emitted")
	}
	if !gep.Has(FlagSubObject) || !gep.Has(FlagStaticSafe) {
		t.Errorf("field GEP flags = %v, want SubObject|StaticSafe", gep.Flags)
	}
	if gep.Off != 16 || gep.Size != 8 {
		t.Errorf("field GEP off=%d size=%d, want 16/8", gep.Off, gep.Size)
	}
}

func TestIndexPtrStaticSafety(t *testing.T) {
	arr := ArrayOf(Char(), 16)
	pb := NewProgram()
	f := pb.Function("main", 0)
	buf := f.Alloca(arr)

	inBounds := f.IndexPtr(buf, arr, f.Const(15))
	outOfBounds := f.IndexPtr(buf, arr, f.Const(16))
	dyn := f.NewReg()
	f.AssignConst(dyn, 3)
	f.AssignConst(dyn, 7) // reassignment clobbers const tracking
	dynamic := f.IndexPtr(buf, arr, dyn)
	_ = inBounds
	_ = outOfBounds
	_ = dynamic
	f.RetVoid()
	p := pb.MustBuild()

	var geps []Instr
	for _, in := range p.Funcs["main"].Code {
		if in.Op == OpGEP {
			geps = append(geps, in)
		}
	}
	if len(geps) != 3 {
		t.Fatalf("got %d GEPs, want 3", len(geps))
	}
	if !geps[0].Has(FlagStaticSafe) {
		t.Error("buf[15] of char[16] should be statically safe (§II.F.2)")
	}
	if geps[1].Has(FlagStaticSafe) {
		t.Error("buf[16] of char[16] must NOT be statically safe")
	}
	if geps[2].Has(FlagStaticSafe) {
		t.Error("dynamically indexed GEP must not be statically safe")
	}
}

func TestPointerLoadsCarryPtrValFlag(t *testing.T) {
	pb := NewProgram()
	f := pb.Function("main", 0)
	pp := f.MallocType(PtrTo(Int()))
	v := f.Load(pp, 0, PtrTo(Int()))
	f.Store(pp, 0, v, PtrTo(Int()))
	iv := f.Load(pp, 0, Int64T())
	_ = iv
	f.RetVoid()
	p := pb.MustBuild()

	var loads, stores []Instr
	for _, in := range p.Funcs["main"].Code {
		switch in.Op {
		case OpLoad:
			loads = append(loads, in)
		case OpStore:
			stores = append(stores, in)
		}
	}
	if !loads[0].Has(FlagPtrVal) {
		t.Error("pointer load missing FlagPtrVal")
	}
	if loads[1].Has(FlagPtrVal) {
		t.Error("integer load has FlagPtrVal")
	}
	if !stores[0].Has(FlagPtrVal) {
		t.Error("pointer store missing FlagPtrVal")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func() *ProgramBuilder
		want  string
	}{
		{
			name: "missing entry",
			build: func() *ProgramBuilder {
				pb := NewProgram()
				f := pb.Function("helper", 0)
				f.RetVoid()
				return pb
			},
			want: "entry function",
		},
		{
			name: "entry with params",
			build: func() *ProgramBuilder {
				pb := NewProgram()
				f := pb.Function("main", 2)
				f.RetVoid()
				return pb
			},
			want: "no parameters",
		},
		{
			name: "undefined callee",
			build: func() *ProgramBuilder {
				pb := NewProgram()
				f := pb.Function("main", 0)
				f.Call("ghost")
				f.RetVoid()
				return pb
			},
			want: "undefined function",
		},
		{
			name: "arity mismatch",
			build: func() *ProgramBuilder {
				pb := NewProgram()
				g := pb.Function("helper", 2)
				g.RetVoid()
				f := pb.Function("main", 0)
				f.Call("helper", f.Const(1))
				f.RetVoid()
				return pb
			},
			want: "want 2",
		},
		{
			name: "undefined global",
			build: func() *ProgramBuilder {
				pb := NewProgram()
				f := pb.Function("main", 0)
				f.GlobalAddr("nope")
				f.RetVoid()
				return pb
			},
			want: "undefined global",
		},
		{
			name: "duplicate global",
			build: func() *ProgramBuilder {
				pb := NewProgram()
				pb.Global("g", Int())
				pb.Global("g", Int())
				f := pb.Function("main", 0)
				f.RetVoid()
				return pb
			},
			want: "declared twice",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.build().Build()
			if err == nil {
				t.Fatal("Build succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestValidateRejectsHandAuthoredInstrumentation(t *testing.T) {
	pb := NewProgram()
	f := pb.Function("main", 0)
	r := f.Const(0)
	f.emit(Instr{Op: OpCheckAccess, A: r, Size: 8})
	f.RetVoid()
	if _, err := pb.Build(); err == nil || !strings.Contains(err.Error(), "instrumentation opcode") {
		t.Fatalf("err = %v, want instrumentation-opcode rejection", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	pb := NewProgram()
	g := pb.Function("callee", 1)
	g.Ret(g.Arg(0))
	f := pb.Function("main", 0)
	f.Call("callee", f.Const(5))
	f.RetVoid()
	p := pb.MustBuild()

	c := p.Clone()
	c.Funcs["main"].Code[0].Imm = 999
	for i := range c.Funcs["main"].Code {
		if c.Funcs["main"].Code[i].Args != nil {
			c.Funcs["main"].Code[i].Args[0] = 42
		}
	}
	if p.Funcs["main"].Code[0].Imm == 999 {
		t.Error("Clone shares Code")
	}
	for _, in := range p.Funcs["main"].Code {
		if in.Args != nil && in.Args[0] == 42 {
			t.Error("Clone shares Args")
		}
	}
}

func TestDumpRendersEveryOpcode(t *testing.T) {
	st := StructOf("S", FieldSpec{"a", ArrayOf(Char(), 4)}, FieldSpec{"b", Int()})
	pb := NewProgram()
	pb.GlobalInit("flag", Int(), 1)
	w := pb.Function("worker", 1)
	w.RetVoid()
	f := pb.Function("main", 0)
	obj := f.MallocType(st)
	fp := f.FieldPtr(obj, st, "a")
	f.Store(fp, 0, f.Const(65), Char())
	g := f.GlobalAddr("flag")
	v := f.Load(g, 0, Int())
	f.If(v, func() { f.Free(obj) }, nil)
	f.ForRange(ConstOperand(0), ConstOperand(2), 1, func(i Reg) { f.Mul(i, i) })
	f.Libc("memset", fp, f.Const(0), f.Const(4))
	f.CallExternal("getenv", false, fp)
	f.ParFor("worker", f.Const(0), f.Const(2), 2)
	f.Call("worker", f.Const(0))
	f.RetVoid()
	p := pb.MustBuild()

	dump := p.Dump()
	for _, want := range []string{"malloc", "gep", "store1", "globaladdr", "load4", "free",
		"libc memset", "callext getenv", "parfor worker", "call worker", "global flag", "; loop"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q:\n%s", want, dump)
		}
	}
}
