package csrc

import (
	"strings"
	"testing"

	"cecsan"
	"cecsan/prog"
)

// run compiles and executes source under the named sanitizer.
func run(t *testing.T, src, sanitizer string, inputs ...[]byte) *cecsan.Result {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v\nsource:\n%s", err, src)
	}
	res, err := cecsan.Run(p, cecsan.Config{Sanitizer: sanitizer, Inputs: inputs})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestArithmeticAndControlFlow(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want uint64
	}{
		{
			name: "arithmetic precedence",
			src:  `func main() { return 2 + 3 * 4 - 10 / 2; }`,
			want: 9,
		},
		{
			name: "hex char shifts",
			src:  `func main() { return (0x10 << 2) + 'A' + (1 << 8 >> 8); }`,
			want: 64 + 65 + 1,
		},
		{
			name: "comparisons and logic",
			src:  `func main() { return (3 < 4) + (4 <= 4) + (5 > 9) + (1 != 2) + (2 == 2 && 3 != 3) + (0 || 7); }`,
			want: 4,
		},
		{
			name: "if else",
			src: `func main() {
				var x = 10;
				if (x > 5) { x = 100; } else { x = 200; }
				if (x == 200) { x = x + 1; }
				return x;
			}`,
			want: 100,
		},
		{
			name: "while",
			src: `func main() {
				var n = 1;
				while (n < 100) { n = n * 3; }
				return n;
			}`,
			want: 243,
		},
		{
			name: "for loop sum",
			src: `func main() {
				var s = 0;
				for (i = 0; i < 101; i += 1) { s = s + i; }
				return s;
			}`,
			want: 5050,
		},
		{
			name: "descending for",
			src: `func main() {
				var c = 0;
				for (i = 10; i > 0; i -= 2) { c = c + 1; }
				return c;
			}`,
			want: 5,
		},
		{
			name: "unary minus and not",
			src:  `func main() { return -(0 - 7) + !0 + !5; }`,
			want: 8,
		},
		{
			name: "function calls",
			src: `
				func add(a, b) { return a + b; }
				func twice(x) { return add(x, x); }
				func main() { return twice(add(3, 4)); }`,
			want: 14,
		},
		{
			name: "comments",
			src: `// leading comment
				func main() {
					var x = 1; // trailing
					return x;
				}`,
			want: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := run(t, tt.src, cecsan.Native)
			if !res.Ok() {
				t.Fatalf("run failed: %+v", res)
			}
			if res.Ret != tt.want {
				t.Fatalf("ret = %d, want %d", res.Ret, tt.want)
			}
		})
	}
}

func TestMemoryAndTypes(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want uint64
	}{
		{
			name: "malloc index store load",
			src: `func main() {
				var p = malloc(16);
				p[3] = 'Z';
				var v = p[3];
				free(p);
				return v;
			}`,
			want: 'Z',
		},
		{
			name: "typed local array",
			src: `func main() {
				var b = local long[8];
				for (i = 0; i < 8; i += 1) { b[i] = i * i; }
				return b[7];
			}`,
			want: 49,
		},
		{
			name: "struct fields",
			src: `
				struct Pair { long a; long b; }
				func main() {
					var s = new(Pair);
					s->a = 11;
					s->b = s->a * 2;
					var v = s->b;
					free(s);
					return v;
				}`,
			want: 22,
		},
		{
			name: "array field with memcpy",
			src: `
				struct Msg { char buf[8]; long n; }
				global char src[] = "hiworld";
				func main() {
					var m = new(Msg);
					memcpy(m->buf, src, 8);
					m->n = strlen(m->buf);
					var v = m->n;
					free(m);
					return v;
				}`,
			want: 7,
		},
		{
			name: "globals scalar and array",
			src: `
				global int counter = 5;
				global char data[32];
				func main() {
					counter = counter + 1;
					memset(data, 'x', 32);
					return counter + data[31];
				}`,
			want: 6 + 'x',
		},
		{
			name: "calloc and realloc",
			src: `func main() {
				var p = calloc(4, 8);
				p[31] = 9;
				var q = realloc(p, 64);
				var v = q[31];
				free(q);
				return v;
			}`,
			want: 9,
		},
		{
			name: "extern round trip",
			src: `func main() {
				var p = malloc(8);
				var q = externret ext_identity(p);
				q[0] = 5;
				var v = q[0];
				free(q);
				return v;
			}`,
			want: 5,
		},
		{
			name: "string compare",
			src: `
				global char a[] = "same";
				global char b[] = "same";
				func main() { return strcmp(a, b) == 0; }`,
			want: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := run(t, tt.src, cecsan.CECSan)
			if !res.Ok() {
				t.Fatalf("run failed under CECSan: violation=%v fault=%v err=%v", res.Violation, res.Fault, res.Err)
			}
			if res.Ret != tt.want {
				t.Fatalf("ret = %d, want %d", res.Ret, tt.want)
			}
		})
	}
}

// TestBugsAreDetected compiles buggy source and checks CECSan reports.
func TestBugsAreDetected(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{
			name: "heap overflow",
			src: `func main() {
				var p = malloc(16);
				for (i = 0; i < 17; i += 1) { p[i] = i; }
				free(p);
				return 0;
			}`,
		},
		{
			name: "use after free",
			src: `func main() {
				var p = malloc(16);
				free(p);
				p[0] = 1;
				return 0;
			}`,
		},
		{
			name: "double free",
			src: `func main() { var p = malloc(16); free(p); free(p); return 0; }`,
		},
		{
			name: "figure 3 sub-object overflow",
			src: `
				struct CharVoid { char charFirst[16]; ptr voidSecond; }
				global char source[32];
				func main() {
					var s = new(CharVoid);
					memcpy(s->charFirst, source, 24);
					free(s);
					return 0;
				}`,
		},
		{
			name: "stack overflow via loop",
			src: `func main() {
				var b = local char[8];
				for (i = 0; i < 9; i += 1) { b[i] = i; }
				return 0;
			}`,
		},
		{
			name: "input driven overflow",
			src: `func main() {
				var b = local char[8];
				var n = recv(b, 16);
				return n;
			}`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := run(t, tt.src, cecsan.CECSan, []byte("0123456789ABCDEF"))
			if res.Violation == nil {
				t.Fatalf("bug not detected: %+v", res)
			}
		})
	}
	// The Figure 3 case must be missed by ASan (sub-object).
	res := run(t, tests[3].src, cecsan.ASan)
	if res.Violation != nil {
		t.Fatalf("ASan unexpectedly detected the sub-object overflow: %v", res.Violation)
	}
}

// TestSubObjectGEPFlags checks the front end emits the flags §II.D needs.
func TestSubObjectGEPFlags(t *testing.T) {
	p := MustCompile(`
		struct S { char buf[8]; long n; }
		func main() {
			var s = new(S);
			memset(s->buf, 0, 8);
			free(s);
			return 0;
		}`)
	var found bool
	for _, in := range p.Funcs["main"].Code {
		if in.Op == prog.OpGEP && in.Has(prog.FlagSubObject) {
			found = true
		}
	}
	if !found {
		t.Fatal("array field access did not emit a sub-object GEP")
	}
}

// TestForLoopRecordsSCEV checks counted loops carry scalar-evolution facts.
func TestForLoopRecordsSCEV(t *testing.T) {
	p := MustCompile(`func main() {
		var s = 0;
		for (i = 0; i < 64; i += 1) { s = s + i; }
		return s;
	}`)
	if len(p.Funcs["main"].Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(p.Funcs["main"].Loops))
	}
	l := p.Funcs["main"].Loops[0]
	if !l.Limit.IsConst || l.Limit.Const != 64 || l.Step != 1 {
		t.Fatalf("SCEV facts wrong: %+v", l)
	}
}

func TestCompileErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"undefined variable", `func main() { return nope; }`, "undefined name"},
		{"undefined type", `func main() { var x = new(Ghost); return 0; }`, "unknown type"},
		{"duplicate function", `func a() {} func a() {}`, "defined twice"},
		{"duplicate variable", `func main() { var x = 1; var x = 2; }`, "already declared"},
		{"arity mismatch", `func f(a) { return a; } func main() { return f(1, 2); }`, "want 1"},
		{"bad field", `struct S { long a; } func main() { var s = new(S); return s->b; }`, "no field"},
		{"arrow on int", `func main() { var x = 1; return x->y; }`, "struct pointer"},
		{"assign to array field", `struct S { char b[4]; } func main() { var s = new(S); s->b = 1; }`, "not assignable"},
		{"unterminated block", `func main() { return 0;`, "unterminated"},
		{"unterminated string", `global char s[] = "abc`, "unterminated string"},
		{"bad escape", `global char s[] = "a\q";`, "unknown escape"},
		{"reserved name", `func main() { var memcpy = 1; }`, "reserved"},
		{"for shadow", `func main() { var i = 1; for (i = 0; i < 3; i += 1) {} }`, "shadows"},
		{"mismatched step", `func main() { for (i = 0; i < 3; i -= 1) {} }`, "direction"},
		{"missing main", `func helper() { return 0; }`, "entry"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Compile(tt.src)
			if err == nil {
				t.Fatal("Compile succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	MustCompile("not a program")
}
