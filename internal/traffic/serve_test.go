package traffic

import (
	"testing"

	"cecsan/internal/obs"
)

const serveSpec = `
version: "1"
seed: 21
aggregate_rate: 5000
clients:
  - id: interactive
    rate_fraction: 0.6
    deadline_ms: 200
    program:
      kind: spatial
      variants: 2
  - id: batch
    rate_fraction: 0.4
    arrival:
      process: gamma
      cv: 2.0
    program:
      kind: churn
      variants: 2
    budget:
      max_steps: 500000
`

// TestServeBounded runs a small closed-loop campaign and checks the
// accounting invariants: every generated request is admitted (closed
// loop never sheds), every admitted request completes or faults, and
// both classes make progress.
func TestServeBounded(t *testing.T) {
	spec := mustParse(t, serveSpec)
	res, err := Serve(ServeConfig{Spec: spec, Workers: 2, MaxRequests: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 60 {
		t.Fatalf("generated %d, want 60", res.Generated)
	}
	if res.Shed != 0 || res.Admitted != res.Generated {
		t.Fatalf("closed loop shed %d / admitted %d of %d", res.Shed, res.Admitted, res.Generated)
	}
	if res.Completed+res.Faults != res.Admitted {
		t.Fatalf("completed %d + faults %d != admitted %d", res.Completed, res.Faults, res.Admitted)
	}
	if res.Faults != 0 {
		t.Fatalf("clean generated programs faulted %d times", res.Faults)
	}
	if len(res.Classes) != 2 {
		t.Fatalf("classes: %+v", res.Classes)
	}
	for _, cs := range res.Classes {
		if cs.Completed == 0 {
			t.Fatalf("class %s completed nothing: %+v", cs.Class, cs)
		}
		if cs.P50us <= 0 || cs.P99us < cs.P50us {
			t.Fatalf("class %s percentiles: %+v", cs.Class, cs)
		}
	}
	if res.StreamDigest == "" || res.RequestsPerSec <= 0 {
		t.Fatalf("summary: %+v", res)
	}
}

// TestServeDigestWorkerIndependence is the acceptance check: the stream
// digest is byte-identical whatever the worker count.
func TestServeDigestWorkerIndependence(t *testing.T) {
	spec := mustParse(t, serveSpec)
	var digest string
	for _, workers := range []int{1, 3, 8} {
		res, err := Serve(ServeConfig{Spec: spec, Workers: workers, MaxRequests: 80})
		if err != nil {
			t.Fatal(err)
		}
		if digest == "" {
			digest = res.StreamDigest
		} else if res.StreamDigest != digest {
			t.Fatalf("workers=%d digest %s != %s", workers, res.StreamDigest, digest)
		}
	}
}

// TestServeMetrics checks the per-class counters and percentile gauges
// land in the obs registry.
func TestServeMetrics(t *testing.T) {
	spec := mustParse(t, serveSpec)
	o := obs.New()
	res, err := Serve(ServeConfig{Spec: spec, Workers: 2, MaxRequests: 40, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	snap := o.Registry.Snapshot()
	found := map[string]bool{}
	for _, m := range snap {
		if class, ok := m.Labels["class"]; ok {
			found[m.Name+"|"+class] = true
		}
	}
	for _, class := range []string{"interactive", "batch"} {
		for _, name := range []string{
			"traffic_completed", "traffic_shed", "traffic_deadline_misses",
			"traffic_latency_p50_us", "traffic_latency_p95_us", "traffic_latency_p99_us",
			"traffic_latency_us",
		} {
			if !found[name+"|"+class] {
				t.Fatalf("metric %s{class=%s} missing from registry snapshot", name, class)
			}
		}
	}
	_ = res
}
