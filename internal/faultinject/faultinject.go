// Package faultinject provides deterministic, seeded fault schedules for the
// execution stack: heap-allocation failures, metadata-table capacity clamps
// and page-map (chunk materialization) failures.
//
// The paper's robustness story (§II.E, §V) is that CECSan degrades instead of
// aborting when its metadata table fills: allocations fall back to the
// reserved entry 0 and keep full functionality at the cost of coverage. That
// path — like an allocator returning NULL, or mmap failing under memory
// pressure — is never exercised by ordinary workloads, whose table occupancy
// sits orders of magnitude below 2^17 entries. This package makes those
// conditions reproducible: a Plan says *which* resource fails *when*, an
// Injector enforces it through hooks in internal/alloc and internal/mem, and
// Schedule derives a plan deterministically from (fault seed, program key) so
// an entire fuzzing campaign under resource pressure is byte-reproducible
// regardless of worker count.
package faultinject

import (
	"errors"
	"sync/atomic"
)

// ErrInjectedOOM is the typed error an injected allocation failure returns.
// It surfaces through rt.Runtime.Malloc like a genuine alloc.ErrOutOfMemory,
// so callers exercise exactly the exhaustion path, but remains
// distinguishable with errors.Is for classification.
var ErrInjectedOOM = errors.New("faultinject: injected allocation failure")

// PanicValue is the payload of an injected panic (Plan.MallocPanicNth). Tests
// use it to assert that a recovered fault originated here and not in a real
// runtime bug.
const PanicValue = "faultinject: injected runtime panic"

// Plan is one case's fault schedule. The zero value injects nothing. Counts
// are 1-based: MallocFailNth == 1 fails the first heap allocation.
type Plan struct {
	// MallocFailNth makes the nth heap allocation return ErrInjectedOOM
	// (0 = never).
	MallocFailNth int64
	// MallocFailBurst widens the allocation failure into a burst: the
	// MallocFailNth-th through (MallocFailNth+MallocFailBurst-1)-th
	// allocations all fail, modelling a sustained memory-pressure episode
	// rather than a single unlucky call. 0 and 1 both mean a single
	// failure; the field is meaningless without MallocFailNth.
	MallocFailBurst int64
	// MallocPanicNth makes the nth heap allocation panic with PanicValue
	// (0 = never). Schedule never sets it; it exists so tests and the
	// serving chaos mode can exercise the engine's panic recovery without
	// planting a bug in a runtime.
	MallocPanicNth int64
	// MetatableCap clamps the metadata table to this many allocatable
	// entries (excluding the reserved entry 0), forcing the §V exhaustion
	// fallback after that many live tagged objects (0 = no clamp).
	MetatableCap uint64
	// PageMapFailNth makes the nth chunk materialization in the simulated
	// address space fail, modelling mmap failure under memory pressure
	// (0 = never).
	PageMapFailNth int64
}

// Zero reports whether the plan injects nothing.
func (p Plan) Zero() bool { return p == Plan{} }

// splitmix64 is the standard SplitMix64 step: a tiny, statistically solid
// generator whose whole state is one uint64, so a (seed, key) pair maps to a
// stream with no shared state between cases.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Schedule derives the fault plan for one case from the campaign fault seed
// and a per-case key (the engine uses the program fingerprint). The mapping
// is pure: the same (faultSeed, key) pair always yields the same plan, which
// is what makes fault-injected campaigns deterministic under any worker
// count. A faultSeed of 0 disables injection entirely, and roughly a quarter
// of cases get an empty plan anyway — those are the in-campaign controls that
// must still match their oracles exactly.
func Schedule(faultSeed, key uint64) Plan {
	if faultSeed == 0 {
		return Plan{}
	}
	x := faultSeed ^ (key * 0x9e3779b97f4a7c15)
	r := splitmix64(&x)
	switch r & 7 {
	case 0, 1:
		return Plan{MallocFailNth: 1 + int64(splitmix64(&x)%8)}
	case 2, 3:
		return Plan{MetatableCap: 1 + splitmix64(&x)%24}
	case 4, 5:
		return Plan{PageMapFailNth: 1 + int64(splitmix64(&x)%64)}
	case 6:
		// Combined pressure: a clamped table and a later allocation failure.
		return Plan{
			MetatableCap:  1 + splitmix64(&x)%24,
			MallocFailNth: 4 + int64(splitmix64(&x)%8),
		}
	default:
		return Plan{} // control case: no injection
	}
}

// Injector enforces one Plan over one machine run. Its hooks are installed by
// the engine into the machine's heap and address space; counters are atomic
// because parallel regions allocate and fault pages concurrently.
type Injector struct {
	plan      Plan
	mallocs   atomic.Int64
	pages     atomic.Int64
	triggered atomic.Int64
}

// New returns an injector enforcing plan.
func New(plan Plan) *Injector {
	return &Injector{plan: plan}
}

// Plan returns the schedule the injector enforces.
func (in *Injector) Plan() Plan { return in.plan }

// OnMalloc is the heap-allocation hook: called before each allocation, it
// returns ErrInjectedOOM on the scheduled failure (or panics on the scheduled
// panic). Any other call returns nil.
func (in *Injector) OnMalloc() error {
	n := in.mallocs.Add(1)
	if in.plan.MallocPanicNth != 0 && n == in.plan.MallocPanicNth {
		in.triggered.Add(1)
		panic(PanicValue)
	}
	if in.plan.MallocFailNth != 0 {
		burst := in.plan.MallocFailBurst
		if burst < 1 {
			burst = 1
		}
		if n >= in.plan.MallocFailNth && n < in.plan.MallocFailNth+burst {
			in.triggered.Add(1)
			return ErrInjectedOOM
		}
	}
	return nil
}

// OnPageMap is the chunk-materialization hook: it reports true when the
// scheduled page-map failure fires, making the space return an injected
// fault instead of backing the page.
func (in *Injector) OnPageMap() bool {
	n := in.pages.Add(1)
	if in.plan.PageMapFailNth != 0 && n == in.plan.PageMapFailNth {
		in.triggered.Add(1)
		return true
	}
	return false
}

// Triggered returns how many scheduled faults actually fired during the run.
// A plan can trigger zero times (the program never reached the nth event);
// the classifier uses this to tell pressure-affected runs from controls.
func (in *Injector) Triggered() int64 { return in.triggered.Load() }

// ChaosPlan is one request's campaign-level chaos schedule: what the serving
// layer injects against itself while processing that request. Unlike Plan —
// which targets a single machine run and is keyed by program fingerprint —
// a ChaosPlan is keyed by the request's position in the deterministic
// traffic stream, so the same (chaos seed, request index) pair always maps
// to the same injection whatever the worker count or program mix.
type ChaosPlan struct {
	// Run is the machine-level fault plan armed for the request's first
	// execution attempt (worker panic or malloc OOM burst). Retries run
	// with the plan dropped, the way a real transient fault clears.
	Run Plan
	// SlowdownUS stalls the worker this many microseconds before the run —
	// the nth-request slow-down that drives queue delay into the admission
	// controller.
	SlowdownUS int64
	// CacheBypass makes the request's instrumentation-cache fill "fail":
	// the engine instruments inline without caching, paying the cold-path
	// cost a real cache eviction or fill error would impose.
	CacheBypass bool
}

// Zero reports whether the chaos plan injects nothing.
func (c ChaosPlan) Zero() bool { return c == ChaosPlan{} }

// ChaosPhase is the storm/calm alternation period of the chaos schedule, in
// requests: indices [0, ChaosPhase) of every 2*ChaosPhase-long cycle are a
// fault storm, the rest are calm. The calm half is what lets circuit
// breakers close and the degradation ladder step back up, so recovery paths
// are exercised deterministically instead of only under permanent pressure.
const ChaosPhase = 192

// ChaosSchedule derives the chaos plan for the reqIndex-th request of a
// campaign from the campaign chaos seed. Like Schedule, the mapping is pure:
// byte-deterministic accounting at any worker count falls out of keying by
// stream position. A chaosSeed of 0 disables chaos entirely. During storm
// phases roughly half the requests draw an injection (panic, OOM burst,
// slow-down or cache bypass); calm phases draw nothing.
func ChaosSchedule(chaosSeed, reqIndex uint64) ChaosPlan {
	if chaosSeed == 0 {
		return ChaosPlan{}
	}
	if reqIndex%(2*ChaosPhase) >= ChaosPhase {
		return ChaosPlan{} // calm half-cycle: let the resilience machinery recover
	}
	x := chaosSeed ^ ((reqIndex + 1) * 0x9e3779b97f4a7c15)
	r := splitmix64(&x)
	switch r & 7 {
	case 0, 1:
		// Seeded worker panic: the nth allocation of the request's run
		// panics, exercising the engine's recovery and the retry policy.
		return ChaosPlan{Run: Plan{MallocPanicNth: 1 + int64(splitmix64(&x)%4)}}
	case 2, 3:
		// Injected malloc OOM burst: several consecutive allocations fail.
		return ChaosPlan{Run: Plan{
			MallocFailNth:   1 + int64(splitmix64(&x)%6),
			MallocFailBurst: 1 + int64(splitmix64(&x)%4),
		}}
	case 4:
		// Nth-request slow-down: 200µs–2ms of injected queue pressure.
		return ChaosPlan{SlowdownUS: 200 + int64(splitmix64(&x)%1800)}
	case 5:
		// Instrumentation cache-fill failure.
		return ChaosPlan{CacheBypass: true}
	default:
		return ChaosPlan{} // in-storm control: no injection
	}
}
