package traffic

import (
	"testing"
	"time"

	"cecsan/internal/faultinject"
)

// chaosSpec mirrors the example interactive-batch deployment: a spatial
// CECSan class plus a churn CECSan-hardened class, the combination the
// chaos campaign's panic/OOM injections and the degradation ladder both
// need (injected malloc faults only fire on allocating programs, and only
// hardened classes have rungs to step down).
const chaosSpec = `
version: "1"
seed: 21
aggregate_rate: 5000
clients:
  - id: interactive
    rate_fraction: 0.6
    deadline_ms: 200
    program:
      kind: spatial
      variants: 2
  - id: batch
    rate_fraction: 0.4
    profile: CECSan-hardened
    arrival:
      process: gamma
      cv: 2.0
    program:
      kind: churn
      variants: 2
    budget:
      max_steps: 500000
`

func TestBreakerStateMachine(t *testing.T) {
	cfg := ResilienceConfig{BreakerWindow: 4, BreakerThreshold: 0.5, BreakerCooldown: 3}.resolve()
	b := newBreaker(cfg)

	// Below threshold over a full window: stays closed.
	for _, fault := range []bool{true, false, false, false} {
		if !b.allow() {
			t.Fatal("closed breaker rejected a request")
		}
		if b.record(fault) {
			t.Fatal("tripped below threshold")
		}
	}
	// Two faults in the window reach the 0.5 threshold: trips.
	if !b.allow() {
		t.Fatal("closed breaker rejected a request")
	}
	if b.record(true) {
		t.Fatal("tripped with window fault rate 1/4")
	}
	b.allow()
	if !b.record(true) {
		t.Fatal("did not trip at fault rate 2/4")
	}
	if got := b.trips.Load(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}

	// Open: rejects for cooldown-1 requests, then half-opens a probe.
	for i := 0; i < 2; i++ {
		if b.allow() {
			t.Fatalf("open breaker allowed request %d during cooldown", i)
		}
	}
	if got := b.rejected.Load(); got != 2 {
		t.Fatalf("rejected = %d, want 2", got)
	}
	if !b.allow() {
		t.Fatal("cooldown expired but probe rejected")
	}
	// Faulted probe re-opens (and counts as a trip).
	if !b.record(true) {
		t.Fatal("faulted half-open probe did not re-trip")
	}
	// Walk the cooldown again; this time the probe succeeds and closes.
	for b.state != breakerHalfOpen {
		b.allow()
	}
	if b.record(false) {
		t.Fatal("clean probe tripped")
	}
	if b.state != breakerClosed {
		t.Fatalf("state after clean probe = %d, want closed", b.state)
	}
	// The window restarted: one fault must not trip a 4-window at 0.5.
	b.allow()
	if b.record(true) {
		t.Fatal("tripped on first fault after close (stale window?)")
	}
}

func TestLadderStepsAndRecovers(t *testing.T) {
	l := &ladder{
		rungs:     make([]rung, 4),
		stepTrips: 2,
		recovery:  3,
	}
	// Two trips step down one rung.
	l.onTrip()
	if l.level != 0 {
		t.Fatalf("level after 1 trip = %d, want 0", l.level)
	}
	l.onTrip()
	if l.level != 1 || l.degradations.Load() != 1 {
		t.Fatalf("level=%d degradations=%d after 2 trips, want 1/1", l.level, l.degradations.Load())
	}
	// Four more trips: down to level 3 (the floor).
	for i := 0; i < 4; i++ {
		l.onTrip()
	}
	if l.level != 3 {
		t.Fatalf("level = %d, want floor 3", l.level)
	}
	// Further trips saturate at the floor.
	l.onTrip()
	l.onTrip()
	if l.level != 3 {
		t.Fatalf("level past floor: %d", l.level)
	}
	// A fault resets the clean streak; recovery needs 3 consecutive cleans.
	l.onClean()
	l.onClean()
	l.onFault()
	l.onClean()
	l.onClean()
	if l.level != 3 {
		t.Fatalf("recovered early: level %d", l.level)
	}
	l.onClean()
	if l.level != 2 || l.recoveries.Load() != 1 {
		t.Fatalf("level=%d recoveries=%d, want 2/1", l.level, l.recoveries.Load())
	}
	// Trips needed again after recovery (budget was reset).
	l.onTrip()
	if l.level != 2 {
		t.Fatalf("single trip stepped down after recovery: %d", l.level)
	}
}

func TestCoDelShedsOnSustainedDelay(t *testing.T) {
	cfg := ResilienceConfig{CoDelTargetUS: 1000, CoDelIntervalUS: 10_000}.resolve()
	c := newCoDel(cfg)
	base := time.Unix(0, 0)
	ms := func(n int) time.Time { return base.Add(time.Duration(n) * time.Millisecond) }

	// Below target: never sheds.
	for i := 0; i < 100; i++ {
		if c.shed(ms(i), 500*time.Microsecond) {
			t.Fatal("shed below target")
		}
	}
	// Above target but shorter than one interval: no shed yet.
	if c.shed(ms(100), 2*time.Millisecond) {
		t.Fatal("shed on first above-target sample")
	}
	if c.shed(ms(105), 2*time.Millisecond) {
		t.Fatal("shed before a full interval above target")
	}
	// A full interval above target: dropping starts.
	if !c.shed(ms(111), 2*time.Millisecond) {
		t.Fatal("did not shed after a sustained interval above target")
	}
	// Within the episode, shedding is paced, not per-request.
	if c.shed(ms(112), 2*time.Millisecond) {
		t.Fatal("shed back-to-back requests")
	}
	if !c.shed(ms(122), 2*time.Millisecond) {
		t.Fatal("did not shed at the next control point")
	}
	// One sub-target sample ends the episode immediately.
	if c.shed(ms(123), 500*time.Microsecond) {
		t.Fatal("shed a below-target request")
	}
	if c.shed(ms(140), 2*time.Millisecond) {
		t.Fatal("episode did not reset after delay recovered")
	}
}

func TestTokenBucketPacing(t *testing.T) {
	base := time.Unix(0, 0)
	tb := newTokenBucket(10, 2) // 10 tokens/sec, burst 2, starts full
	if !tb.allow(base) || !tb.allow(base) {
		t.Fatal("bucket did not start full")
	}
	if tb.allow(base) {
		t.Fatal("allowed past burst with no refill")
	}
	// 100ms refills one token at 10/sec.
	if !tb.allow(base.Add(100 * time.Millisecond)) {
		t.Fatal("no token after refill")
	}
	if tb.allow(base.Add(100 * time.Millisecond)) {
		t.Fatal("refill over-credited")
	}
	// A long idle stretch caps at burst, not unbounded credit.
	at := base.Add(10 * time.Second)
	if !tb.allow(at) || !tb.allow(at) {
		t.Fatal("bucket did not refill to burst")
	}
	if tb.allow(at) {
		t.Fatal("burst cap not enforced")
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	cfg := ResilienceConfig{}.resolve()
	for attempt := 1; attempt <= 5; attempt++ {
		a := backoffUS(cfg, 42, 1000, attempt)
		b := backoffUS(cfg, 42, 1000, attempt)
		if a != b {
			t.Fatalf("attempt %d backoff not deterministic: %d vs %d", attempt, a, b)
		}
		if a <= 0 || a > cfg.RetryCapUS {
			t.Fatalf("attempt %d backoff %dus out of (0, %d]", attempt, a, cfg.RetryCapUS)
		}
	}
	if backoffUS(cfg, 42, 1000, 1) == backoffUS(cfg, 42, 1001, 1) &&
		backoffUS(cfg, 42, 1002, 1) == backoffUS(cfg, 42, 1003, 1) &&
		backoffUS(cfg, 42, 1004, 1) == backoffUS(cfg, 42, 1005, 1) {
		t.Fatal("jitter identical across requests: retry storms would synchronize")
	}
}

// chaosCounters extracts the deterministic slice of a result's accounting —
// everything the chaos digest covers plus the digest itself. Wall-clock
// fields (latency, deadline misses, goodput, CoDel/bucket sheds) are
// deliberately absent.
type chaosCounters struct {
	digest                                  string
	admitted, completed, faults, detected   int64
	retries, retrySuccesses                 int64
	breakerTrips, breakerRejected           int64
	degradations, recoveries, chaosInjected int64
}

func chaosSlice(res *ServeResult) chaosCounters {
	return chaosCounters{
		digest:          res.ChaosDigest,
		admitted:        res.Admitted,
		completed:       res.Completed,
		faults:          res.Faults,
		detected:        res.Detected,
		retries:         res.Retries,
		retrySuccesses:  res.RetrySuccesses,
		breakerTrips:    res.BreakerTrips,
		breakerRejected: res.BreakerRejected,
		degradations:    res.Degradations,
		recoveries:      res.Recoveries,
		chaosInjected:   res.ChaosInjected,
	}
}

const chaosTestRequests = 3 * 2 * int(faultinject.ChaosPhase) // three full storm/calm cycles

// TestChaosDeterministicAcrossWorkers is the tentpole acceptance check: a
// closed-loop chaos campaign's resilience accounting — admissions,
// completions, faults, retries, breaker and ladder moves, and the combined
// chaos digest — is byte-identical at any worker count.
func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	spec := mustParse(t, chaosSpec)
	var want chaosCounters
	var stream string
	for i, workers := range []int{1, 4, 7} {
		res, err := Serve(ServeConfig{
			Spec:        spec,
			Workers:     workers,
			MaxRequests: chaosTestRequests,
			ChaosSeed:   11,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.ChaosDigest == "" {
			t.Fatal("chaos campaign produced no chaos digest")
		}
		got := chaosSlice(res)
		if i == 0 {
			want = got
			stream = res.StreamDigest
			continue
		}
		if got != want {
			t.Fatalf("workers=%d chaos accounting diverged:\n got %+v\nwant %+v", workers, got, want)
		}
		if res.StreamDigest != stream {
			t.Fatalf("workers=%d stream digest diverged", workers)
		}
	}
}

// TestChaosExercisesResilience pins that the fixed CI chaos seed actually
// drives every resilience mechanism: injections land, retries fire and
// mostly succeed, breakers trip, and the ladder steps down AND back up.
func TestChaosExercisesResilience(t *testing.T) {
	spec := mustParse(t, chaosSpec)
	res, err := Serve(ServeConfig{
		Spec:        spec,
		Workers:     4,
		MaxRequests: chaosTestRequests,
		ChaosSeed:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChaosInjected == 0 {
		t.Fatal("chaos campaign injected nothing")
	}
	if res.Retries == 0 || res.RetrySuccesses == 0 {
		t.Fatalf("retry policy idle: retries=%d successes=%d", res.Retries, res.RetrySuccesses)
	}
	if res.BreakerTrips == 0 {
		t.Fatalf("no breaker trips under chaos: %+v", chaosSlice(res))
	}
	if res.Degradations == 0 {
		t.Fatalf("ladder never stepped down under chaos: %+v", chaosSlice(res))
	}
	if res.Recoveries == 0 {
		t.Fatalf("ladder never recovered during calm phases: %+v", chaosSlice(res))
	}
	// The campaign keeps serving through the storms.
	if res.Completed == 0 || float64(res.Completed) < 0.5*float64(res.Admitted) {
		t.Fatalf("goodput collapsed: completed %d of %d admitted", res.Completed, res.Admitted)
	}
	// Accounting invariant.
	if res.Admitted != res.Completed+res.Faults+res.BreakerRejected+res.ShedDelay+res.Abandoned {
		t.Fatalf("admission invariant violated: %+v", res)
	}
}

// TestChaosOffMatchesLegacyStream pins the non-interference guarantee: with
// chaos off, a resilient campaign and the legacy path generate the same
// deterministic stream (same digest), and a clean workload trips nothing —
// zero breaker flaps, zero degradations, zero retries.
func TestChaosOffMatchesLegacyStream(t *testing.T) {
	spec := mustParse(t, chaosSpec)
	legacy, err := Serve(ServeConfig{Spec: spec, Workers: 3, MaxRequests: 200})
	if err != nil {
		t.Fatal(err)
	}
	resilient, err := Serve(ServeConfig{
		Spec:        spec,
		Workers:     3,
		MaxRequests: 200,
		Resilience:  &ResilienceConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.StreamDigest != resilient.StreamDigest {
		t.Fatalf("resilience changed the request stream: %s vs %s",
			resilient.StreamDigest, legacy.StreamDigest)
	}
	if resilient.ChaosDigest != "" {
		t.Fatal("chaos digest present with chaos off")
	}
	if resilient.BreakerTrips != 0 || resilient.Degradations != 0 ||
		resilient.Retries != 0 || resilient.Faults != 0 {
		t.Fatalf("clean campaign flapped: trips=%d degradations=%d retries=%d faults=%d",
			resilient.BreakerTrips, resilient.Degradations, resilient.Retries, resilient.Faults)
	}
	if resilient.Completed != resilient.Admitted {
		t.Fatalf("clean resilient campaign lost requests: completed %d of %d",
			resilient.Completed, resilient.Admitted)
	}
}

// TestStopUnblocksSaturatedProducer is the closed-loop shutdown regression:
// with one worker and a saturated queue, Stop must unblock the producer and
// the backlog must drain as abandoned — bounded by in-flight work, not by
// the queue.
func TestStopUnblocksSaturatedProducer(t *testing.T) {
	spec := mustParse(t, chaosSpec)
	stopCh := make(chan struct{})
	done := make(chan *ServeResult, 1)
	go func() {
		res, err := Serve(ServeConfig{
			Spec:       spec,
			Workers:    1,
			QueueDepth: 2,
			Stop:       stopCh,
		})
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- res
	}()
	time.Sleep(100 * time.Millisecond)
	close(stopCh)
	select {
	case res := <-done:
		if res == nil {
			return
		}
		if res.Admitted != res.Completed+res.Faults+res.Abandoned {
			t.Fatalf("shutdown accounting: admitted %d != completed %d + faults %d + abandoned %d",
				res.Admitted, res.Completed, res.Faults, res.Abandoned)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Stop with a saturated queue")
	}
}

// TestOverloadSweep runs a tiny calibrate-and-sweep campaign and checks the
// sweep's structure: capacity measured, speedups realize the multiples, and
// the past-saturation point sheds while still producing goodput.
func TestOverloadSweep(t *testing.T) {
	spec := mustParse(t, chaosSpec)
	var stages []string
	res, err := RunOverload(OverloadConfig{
		Spec:      spec,
		Workers:   2,
		Requests:  150,
		Multiples: []float64{0.5, 3},
		Progress:  func(stage string) { stages = append(stages, stage) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityPerSec <= 0 {
		t.Fatalf("no capacity measured: %+v", res)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points: %+v", res.Points)
	}
	if len(stages) != 3 {
		t.Fatalf("progress stages: %v", stages)
	}
	for _, p := range res.Points {
		wantSpeedup := p.Multiple * res.CapacityPerSec / spec.AggregateRate
		if diff := p.Speedup - wantSpeedup; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("point %gx speedup %v, want %v", p.Multiple, p.Speedup, wantSpeedup)
		}
		if p.Result == nil || p.Result.Generated == 0 {
			t.Fatalf("point %gx has no result", p.Multiple)
		}
		if p.Result.GoodputPerSec <= 0 {
			t.Fatalf("point %gx produced no goodput: %+v", p.Multiple, p.Result)
		}
	}
	// 3x capacity must overload a 2-worker pool: some mechanism sheds.
	over := res.Points[1].Result
	if over.Shed+over.ShedBucket+over.ShedDelay == 0 {
		t.Logf("warning: 3x point shed nothing (completed %d of %d generated)", over.Completed, over.Generated)
	}
}
