// Command specbench regenerates the paper's performance evaluation:
// Table IV (per-benchmark runtime and memory overhead on the SPEC
// CPU2006-like workloads) and Table V (aggregates on the SPEC CPU2017-like
// workloads, OpenMP-analogue parallel regions included).
//
// Usage:
//
//	specbench -suite 2006|2017|smoke [-reps 3] [-tools ASan,ASAN--,CECSan]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cecsan/internal/harness"
	"cecsan/internal/sanitizers"
	"cecsan/internal/specsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "specbench:", err)
		os.Exit(1)
	}
}

func run() error {
	suite := flag.String("suite", "2006", "workload suite: 2006, 2017 or smoke")
	reps := flag.Int("reps", 3, "repetitions per measurement (best-of)")
	toolsFlag := flag.String("tools", "ASan,ASAN--,CECSan", "comma-separated sanitizer list")
	model := flag.Bool("model", false, "also print the cycle-model overhead table (per-operation costs from the published instrumentation sequences)")
	flag.Parse()

	var ws []specsim.Workload
	switch *suite {
	case "2006":
		ws = specsim.Spec2006()
	case "2017":
		ws = specsim.Spec2017()
	case "smoke":
		ws = specsim.Smoke()
	default:
		return fmt.Errorf("unknown suite %q", *suite)
	}

	var tools []sanitizers.Name
	for _, t := range strings.Split(*toolsFlag, ",") {
		tools = append(tools, sanitizers.Name(strings.TrimSpace(t)))
	}

	harness.Verbose = true
	fmt.Printf("measuring %d workloads x %d tools (reps=%d)...\n", len(ws), len(tools), *reps)
	table, err := harness.EvaluatePerf(ws, tools, *reps)
	if err != nil {
		return err
	}
	if *suite == "2017" {
		fmt.Println(harness.FormatTable5(table))
	} else {
		fmt.Println(harness.FormatTable4(table))
	}
	if *model {
		ct, err := harness.EvaluateCycles(ws, tools)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatCycleTable(ct))
	}
	return nil
}
