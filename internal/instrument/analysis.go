// Package instrument implements the compile-time half of every sanitizer in
// this repository: the analogue of CECSan's LTO instrumentation pass (§III).
//
// Apply clones a program and rewrites it according to a sanitizer's
// rt.Profile: it classifies stack and global objects as safe or unsafe
// (§II.C.3), inserts dereference checks, sub-object narrowing (§II.D) and
// per-pointer metadata propagation (SoftBound), and then runs the §II.F
// optimization passes (redundant-check elimination, loop-invariant check
// relocation, monotonic check grouping, and type-based check removal).
package instrument

import (
	"cecsan/prog"
)

// objInfo is the pass's knowledge about what a register points at, the
// input to §II.F.2's type-based check removal: "use type information to
// ascertain the memory range of a pointer during compilation".
type objInfo struct {
	// known is true when the register provably points at the start of a
	// region of exactly size bytes.
	known bool
	size  int64
	// heap marks heap-rooted regions. Static in-bounds proofs never remove
	// checks on them: a heap object can be freed between the allocation and
	// the access, so dropping the check would silently drop use-after-free
	// detection. Stack objects are alive for their whole defining function
	// and globals are immortal, so spatial proofs suffice there.
	heap bool
}

// funcAnalysis holds per-function static facts shared by the passes.
type funcAnalysis struct {
	fn *prog.Func

	// defCount[r] is the number of instructions assigning r. Only
	// single-assignment registers carry object info (a cheap SSA check).
	defCount []int

	// info[r] is the pointed-at region for single-assignment registers.
	info []objInfo

	// aliases[r] reports that r is derived from some alloca or global
	// address (directly or through Mov/GEP chains); root[r] is the alloca
	// instruction index (or -1 for globals) it derives from.
	aliasRootAlloca []int    // -1: none/unknown; else index into fn.Code
	aliasRootGlobal []string // "" when not derived from a global

	// leader[i] is true when instruction i starts a basic block.
	leader []bool
}

// analyze computes the static facts for one function.
func analyze(f *prog.Func, globalSize map[string]int64) *funcAnalysis {
	a := &funcAnalysis{
		fn:              f,
		defCount:        make([]int, f.NumRegs),
		info:            make([]objInfo, f.NumRegs),
		aliasRootAlloca: make([]int, f.NumRegs),
		aliasRootGlobal: make([]string, f.NumRegs),
		leader:          make([]bool, len(f.Code)+1),
	}
	for r := range a.aliasRootAlloca {
		a.aliasRootAlloca[r] = -1
	}
	// Parameters count as definitions (values arrive from the caller).
	for r := 0; r < f.NumParams; r++ {
		a.defCount[r]++
	}

	for i := range f.Code {
		in := &f.Code[i]
		if in.Dst != prog.NoReg {
			a.defCount[in.Dst]++
		}
		switch in.Op {
		case prog.OpBr:
			a.leader[in.Imm] = true
			if i+1 <= len(f.Code) {
				a.leader[i+1] = true
			}
		case prog.OpCondBr:
			a.leader[in.Imm] = true
			a.leader[i+1] = true
		}
	}
	a.leader[0] = true

	// Object info, forward pass; only single-assignment registers keep it.
	set := func(r prog.Reg, oi objInfo) {
		if r != prog.NoReg && a.defCount[r] == 1 {
			a.info[r] = oi
		}
	}
	root := func(r prog.Reg) (int, string) {
		if r == prog.NoReg {
			return -1, ""
		}
		return a.aliasRootAlloca[r], a.aliasRootGlobal[r]
	}
	setRoot := func(r prog.Reg, ai int, g string) {
		if r != prog.NoReg && a.defCount[r] == 1 {
			a.aliasRootAlloca[r] = ai
			a.aliasRootGlobal[r] = g
		}
	}

	for i := range f.Code {
		in := &f.Code[i]
		switch in.Op {
		case prog.OpAlloca:
			set(in.Dst, objInfo{known: true, size: in.Size})
			setRoot(in.Dst, i, "")
		case prog.OpMalloc:
			// Only constant-size allocations have a compile-time range, and
			// heap provenance disqualifies the region from check removal.
			if in.A == prog.NoReg {
				set(in.Dst, objInfo{known: true, size: in.Size, heap: true})
			}
		case prog.OpGlobalAddr:
			if sz, ok := globalSize[in.Sym]; ok {
				set(in.Dst, objInfo{known: true, size: sz})
			}
			setRoot(in.Dst, -1, in.Sym)
		case prog.OpMov:
			if in.A != prog.NoReg && a.defCount[in.A] == 1 {
				set(in.Dst, a.info[in.A])
			}
			ai, g := root(in.A)
			setRoot(in.Dst, ai, g)
		case prog.OpGEP:
			// A statically safe GEP (§II.F.2) yields a pointer to a region
			// of in.Size bytes (field) or one element (const array index).
			if in.Has(prog.FlagStaticSafe) {
				sz := in.Size
				if sz == 0 && in.Type != nil {
					sz = in.Type.Size()
				}
				// Provenance: the derived region is heap-rooted unless the
				// base is provably an alloca or global.
				heapRooted := true
				if a.aliasRootAlloca[in.A] >= 0 || a.aliasRootGlobal[in.A] != "" {
					heapRooted = false
				} else if in.A != prog.NoReg && a.defCount[in.A] == 1 && a.info[in.A].known {
					heapRooted = a.info[in.A].heap
				}
				if sz > 0 {
					set(in.Dst, objInfo{known: true, size: sz, heap: heapRooted})
				}
			}
			ai, g := root(in.A)
			setRoot(in.Dst, ai, g)
		}
	}
	return a
}

// staticallySafeAccess reports whether the access [off, off+size) through
// register r is provably in-bounds of r's region: the §II.F.2 condition for
// removing the check.
func (a *funcAnalysis) staticallySafeAccess(r prog.Reg, off, size int64) bool {
	if r == prog.NoReg || a.defCount[r] != 1 {
		return false
	}
	oi := a.info[r]
	return oi.known && !oi.heap && off >= 0 && off+size <= oi.size
}

// classifyStackObjects decides, per §II.C.3, which allocas are "unsafe" and
// need metadata: objects whose address escapes (passed to calls, stored to
// memory, freed) or that are accessed through a pointer that cannot be
// statically proven in-bounds. Safe scalars accessed directly through the
// stack pointer stay untracked. It returns tracked[i] for each instruction
// index in f.Allocas.
func classifyStackObjects(f *prog.Func, a *funcAnalysis) map[int]bool {
	tracked := make(map[int]bool, len(f.Allocas))
	for _, ai := range f.Allocas {
		tracked[ai] = false
	}
	unsafeRoot := func(r prog.Reg) {
		if r == prog.NoReg {
			return
		}
		if ai := a.aliasRootAlloca[r]; ai >= 0 {
			tracked[ai] = true
		}
	}
	for i := range f.Code {
		in := &f.Code[i]
		switch in.Op {
		case prog.OpCall, prog.OpLibc, prog.OpCallExternal:
			for _, arg := range in.Args {
				unsafeRoot(arg)
			}
		case prog.OpParFor:
			unsafeRoot(in.A)
			unsafeRoot(in.B)
		case prog.OpStore:
			// Storing a derived pointer value: the address escapes.
			unsafeRoot(in.B)
			if !a.staticallySafeAccess(in.A, in.Off, in.Size) {
				unsafeRoot(in.A)
			}
		case prog.OpLoad:
			if !a.staticallySafeAccess(in.A, in.Off, in.Size) {
				unsafeRoot(in.A)
			}
		case prog.OpFree:
			unsafeRoot(in.A)
		case prog.OpRet:
			// Returning a pointer to a local: escapes (use-after-return).
			unsafeRoot(in.A)
		case prog.OpGEP:
			if !in.Has(prog.FlagStaticSafe) {
				unsafeRoot(in.A)
			}
		}
	}
	return tracked
}

// classifyGlobals marks globals whose address is used unsafely anywhere in
// the program, augmenting the author-declared AddressTaken flags, so that
// only unsafe globals pay for GPT indirection (§II.C.3).
func classifyGlobals(p *prog.Program) map[string]bool {
	unsafe := make(map[string]bool, len(p.Globals))
	sizes := make(map[string]int64, len(p.Globals))
	for _, g := range p.Globals {
		unsafe[g.Name] = g.AddressTaken
		sizes[g.Name] = g.Type.Size()
	}
	for _, name := range p.Order {
		f := p.Funcs[name]
		a := analyze(f, sizes)
		mark := func(r prog.Reg) {
			if r == prog.NoReg {
				return
			}
			if g := a.aliasRootGlobal[r]; g != "" {
				unsafe[g] = true
			}
		}
		for i := range f.Code {
			in := &f.Code[i]
			switch in.Op {
			case prog.OpCall, prog.OpLibc, prog.OpCallExternal:
				for _, arg := range in.Args {
					mark(arg)
				}
			case prog.OpStore:
				mark(in.B)
				if !a.staticallySafeAccess(in.A, in.Off, in.Size) {
					mark(in.A)
				}
			case prog.OpLoad:
				if !a.staticallySafeAccess(in.A, in.Off, in.Size) {
					mark(in.A)
				}
			case prog.OpFree, prog.OpRet:
				mark(in.A)
			case prog.OpGEP:
				if !in.Has(prog.FlagStaticSafe) {
					mark(in.A)
				}
			}
		}
	}
	return unsafe
}
