package traffic

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is a hand-rolled parser for the YAML subset workload specs use,
// in the repository's dependency-free style. The subset is deliberately
// small and fully documented (DESIGN.md "Traffic engine & serving"):
//
//   - block mappings:   key: value   /   key: (nested block on deeper indent)
//   - block sequences:  "- " items — scalar items, or mappings whose first
//     key rides inline on the dash line ("- id: interactive")
//   - scalars: double-quoted strings, bare strings, ints, floats, booleans
//   - comments ("#" at line start or after whitespace, outside quotes) and
//     blank lines are ignored
//   - indentation is spaces only; tabs are a parse error
//
// Anchors, aliases, flow syntax ({...}, [...]), multi-line scalars and
// multiple documents are out of scope: a spec that needs them fails loudly
// here instead of being half-understood.

// yamlLine is one significant source line: indentation stripped, comments
// removed, 1-based line number retained for error messages.
type yamlLine struct {
	indent int
	text   string
	n      int
}

// stripComment removes a trailing comment from s, respecting double quotes.
// A '#' starts a comment at the beginning of the content or after a space.
func stripComment(s string) string {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case '#':
			if !inQuote && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

// splitLines turns the source into significant lines, rejecting tab
// indentation (the classic silent YAML killer).
func splitLines(src string) ([]yamlLine, error) {
	var out []yamlLine
	for n, raw := range strings.Split(src, "\n") {
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			return nil, fmt.Errorf("line %d: tab in indentation (spaces only)", n+1)
		}
		text := strings.TrimSpace(stripComment(raw[indent:]))
		if text == "" {
			continue
		}
		out = append(out, yamlLine{indent: indent, text: text, n: n + 1})
	}
	return out, nil
}

// parseYAML parses the whole document into nested map[string]any /
// []any / scalar values.
func parseYAML(src string) (any, error) {
	lines, err := splitLines(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	v, next, err := parseBlock(lines, 0, 0)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("line %d: content outdented past the document root", lines[next].n)
	}
	return v, nil
}

// parseBlock parses the sequence or mapping starting at lines[i], whose
// first line sets the block indent (which must be >= min).
func parseBlock(lines []yamlLine, i, min int) (any, int, error) {
	if i >= len(lines) || lines[i].indent < min {
		return nil, i, fmt.Errorf("line %d: expected an indented block", blockErrLine(lines, i))
	}
	if isSeqItem(lines[i].text) {
		return parseSeq(lines, i, lines[i].indent)
	}
	return parseMap(lines, i, lines[i].indent)
}

func blockErrLine(lines []yamlLine, i int) int {
	if i < len(lines) {
		return lines[i].n
	}
	if len(lines) > 0 {
		return lines[len(lines)-1].n
	}
	return 0
}

func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// parseMap parses consecutive "key: ..." lines at exactly indent base.
func parseMap(lines []yamlLine, i, base int) (map[string]any, int, error) {
	m := make(map[string]any)
	for i < len(lines) {
		l := lines[i]
		if l.indent < base {
			break
		}
		if l.indent > base {
			return nil, i, fmt.Errorf("line %d: unexpected indent", l.n)
		}
		if isSeqItem(l.text) {
			return nil, i, fmt.Errorf("line %d: sequence item in a mapping block", l.n)
		}
		key, rest, found := cutKey(l.text)
		if !found {
			return nil, i, fmt.Errorf("line %d: expected \"key: value\"", l.n)
		}
		if _, dup := m[key]; dup {
			return nil, i, fmt.Errorf("line %d: duplicate key %q", l.n, key)
		}
		if rest == "" {
			if i+1 < len(lines) && lines[i+1].indent > base {
				v, next, err := parseBlock(lines, i+1, base+1)
				if err != nil {
					return nil, i, err
				}
				m[key] = v
				i = next
				continue
			}
			m[key] = nil
			i++
			continue
		}
		m[key] = parseScalar(rest)
		i++
	}
	return m, i, nil
}

// parseSeq parses consecutive "- ..." items at exactly indent base.
func parseSeq(lines []yamlLine, i, base int) ([]any, int, error) {
	var seq []any
	for i < len(lines) {
		l := lines[i]
		if l.indent < base {
			break
		}
		if l.indent > base {
			return nil, i, fmt.Errorf("line %d: unexpected indent", l.n)
		}
		if !isSeqItem(l.text) {
			return nil, i, fmt.Errorf("line %d: expected a \"- \" sequence item", l.n)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		// Continuation lines of this item are everything indented deeper
		// than the dash.
		j := i + 1
		for j < len(lines) && lines[j].indent > base {
			j++
		}
		switch {
		case rest == "":
			if j == i+1 {
				return nil, i, fmt.Errorf("line %d: empty sequence item", l.n)
			}
			v, next, err := parseBlock(lines, i+1, base+1)
			if err != nil {
				return nil, i, err
			}
			if next != j {
				return nil, i, fmt.Errorf("line %d: inconsistent indentation in sequence item", lines[next].n)
			}
			seq = append(seq, v)
		case hasKey(rest):
			// Mapping item with its first pair inline on the dash line:
			// rewrite the dash line as a mapping line at the continuation
			// indent and parse the whole item as one mapping block.
			itemIndent := base + 2
			if j > i+1 {
				itemIndent = lines[i+1].indent
			}
			sub := make([]yamlLine, 0, j-i)
			sub = append(sub, yamlLine{indent: itemIndent, text: rest, n: l.n})
			sub = append(sub, lines[i+1:j]...)
			v, next, err := parseMap(sub, 0, itemIndent)
			if err != nil {
				return nil, i, err
			}
			if next != len(sub) {
				return nil, i, fmt.Errorf("line %d: inconsistent indentation in sequence item", sub[next].n)
			}
			seq = append(seq, v)
		default:
			if j != i+1 {
				return nil, i, fmt.Errorf("line %d: scalar sequence item has indented continuation", lines[i+1].n)
			}
			seq = append(seq, parseScalar(rest))
		}
		i = j
	}
	return seq, i, nil
}

// cutKey splits "key: value" (or "key:") at the first colon outside quotes.
func cutKey(s string) (key, rest string, found bool) {
	if strings.HasPrefix(s, "\"") {
		return "", "", false // quoted keys are out of the subset
	}
	idx := strings.IndexByte(s, ':')
	if idx <= 0 {
		return "", "", false
	}
	after := s[idx+1:]
	if after != "" && after[0] != ' ' {
		return "", "", false // "12:30"-style scalars are not key/value pairs
	}
	return strings.TrimSpace(s[:idx]), strings.TrimSpace(after), true
}

// hasKey reports whether a dash-line remainder looks like an inline
// mapping pair rather than a scalar item.
func hasKey(s string) bool {
	_, _, found := cutKey(s)
	return found
}

// parseScalar types a scalar token: quoted string, bool, int, float, or
// bare string, in that order.
func parseScalar(s string) any {
	if strings.HasPrefix(s, "\"") && strings.HasSuffix(s, "\"") && len(s) >= 2 {
		if uq, err := strconv.Unquote(s); err == nil {
			return uq
		}
		return strings.Trim(s, "\"")
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v
	}
	if v, err := strconv.ParseUint(s, 10, 64); err == nil {
		return v
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v
	}
	return s
}
