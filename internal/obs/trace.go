package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// maxTraceEvents bounds the tracer's memory: a span past the cap is counted
// but not stored, so a runaway campaign cannot OOM through its own tracing.
const maxTraceEvents = 1 << 20

// Span is one completed phase on one lane, recorded as a Chrome trace_event
// complete event ("ph":"X").
type Span struct {
	Name  string
	Lane  int
	Start time.Time
	Dur   time.Duration
}

// Tracer records engine pipeline spans (instrument/execute/reset) for Chrome
// trace_event export. Lanes map to trace "tid"s: workers acquire the lowest
// free lane for the duration of a run, so the exported flame chart shows
// worker-pool utilization — concurrent runs occupy distinct rows, idle lanes
// are gaps.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	spans   []Span
	dropped int64
	lanes   []int // free-list of released lane ids, lowest reused first
	nextLn  int
}

// NewTracer returns a tracer whose timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// AcquireLane reserves the lowest free lane id for a worker's run.
func (t *Tracer) AcquireLane() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.lanes); n > 0 {
		// pop the smallest id so flame-chart rows stay dense
		best := 0
		for i, l := range t.lanes {
			if l < t.lanes[best] {
				best = i
			}
		}
		lane := t.lanes[best]
		t.lanes[best] = t.lanes[n-1]
		t.lanes = t.lanes[:n-1]
		return lane
	}
	lane := t.nextLn
	t.nextLn++
	return lane
}

// ReleaseLane returns a lane to the free-list.
func (t *Tracer) ReleaseLane(lane int) {
	t.mu.Lock()
	t.lanes = append(t.lanes, lane)
	t.mu.Unlock()
}

// Record stores one completed span.
func (t *Tracer) Record(name string, lane int, start time.Time, dur time.Duration) {
	t.mu.Lock()
	if len(t.spans) >= maxTraceEvents {
		t.dropped++
	} else {
		t.spans = append(t.spans, Span{Name: name, Lane: lane, Start: start, Dur: dur})
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped returns how many spans were discarded after the event cap.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// traceEvent is the Chrome trace_event JSON shape for a complete event.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`  // microseconds relative to the tracer epoch
	Dur  int64  `json:"dur"` // microseconds
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
}

// WriteJSON writes the recorded spans in Chrome's trace_event object format
// ({"traceEvents":[...]}), loadable in chrome://tracing and Perfetto.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := make([]traceEvent, 0, len(t.spans))
	for _, s := range t.spans {
		events = append(events, traceEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   s.Start.Sub(t.epoch).Microseconds(),
			Dur:  s.Dur.Microseconds(),
			Pid:  1,
			Tid:  s.Lane,
		})
	}
	t.mu.Unlock()
	data, err := json.Marshal(map[string]any{"traceEvents": events})
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
