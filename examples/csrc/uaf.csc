// A use-after-free driven by dummy-server input:
//
//   go run ./cmd/cecsan-run -src examples/csrc/uaf.csc

func main() {
    var session = malloc(64);
    var req = local char[16];
    recv(req, 1);
    if (req[0] == 'Q') { free(session); }
    recv(req, 1);
    if (req[0] == 'S') { session[8] = 1; }
    return 0;
}
