package specsim

import (
	"testing"

	"cecsan/internal/instrument"
	"cecsan/internal/interp"
	"cecsan/internal/sanitizers"
)

func TestSuitesWellFormed(t *testing.T) {
	if got := len(Spec2006()); got != 8 {
		t.Errorf("Spec2006 has %d workloads, want 8 (Table IV rows)", got)
	}
	if got := len(Spec2017()); got != 10 {
		t.Errorf("Spec2017 has %d workloads, want 10", got)
	}
	seen := map[string]bool{}
	for _, w := range append(Spec2006(), append(Spec2017(), Smoke()...)...) {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Build == nil {
			t.Errorf("%s: nil Build", w.Name)
		}
	}
	if _, ok := ByName("429.mcf"); !ok {
		t.Error("ByName(429.mcf) failed")
	}
	if _, ok := ByName("999.bogus"); ok {
		t.Error("ByName(999.bogus) succeeded")
	}
}

// TestSmokeWorkloadsCleanEverywhere runs every workload pattern (smoke
// scale) under every sanitizer: they are benign programs and must complete
// with identical results.
func TestSmokeWorkloadsCleanEverywhere(t *testing.T) {
	for _, w := range Smoke() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p := w.Build()
			var nativeRet uint64
			haveNative := false
			for _, name := range sanitizers.All() {
				san, err := sanitizers.New(name)
				if err != nil {
					t.Fatalf("New(%s): %v", name, err)
				}
				ip := instrument.Apply(p, san.Profile)
				m, err := interp.New(ip, san, interp.DefaultOptions())
				if err != nil {
					t.Fatalf("interp.New(%s): %v", name, err)
				}
				res := m.Run()
				if !res.Ok() {
					t.Fatalf("%s under %s: %+v", w.Name, name, resErr(res))
				}
				if !haveNative && name == sanitizers.Native {
					nativeRet = res.Ret
					haveNative = true
				} else if haveNative && res.Ret != nativeRet {
					t.Errorf("%s under %s: result %d != native %d", w.Name, name, res.Ret, nativeRet)
				}
				if res.Stats.Instructions == 0 {
					t.Errorf("%s under %s: no instructions recorded", w.Name, name)
				}
			}
		})
	}
}

func resErr(res *interp.Result) any {
	switch {
	case res.Violation != nil:
		return res.Violation
	case res.Fault != nil:
		return res.Fault
	default:
		return res.Err
	}
}

// TestWorkloadProfiles verifies each workload family has the operation mix
// its SPEC counterpart is modelled on (the property Tables IV/V depend on).
func TestWorkloadProfiles(t *testing.T) {
	stats := map[string]interp.Stats{}
	for _, w := range Smoke() {
		p := w.Build()
		san, _ := sanitizers.New(sanitizers.Native)
		ip := instrument.Apply(p, san.Profile)
		m, err := interp.New(ip, san, interp.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		if !res.Ok() {
			t.Fatalf("%s: %+v", w.Name, resErr(res))
		}
		stats[w.Name] = res.Stats
	}

	allocRate := func(name string) float64 {
		s := stats[name]
		return float64(s.Mallocs) / float64(s.Instructions) * 1000
	}
	// Allocation-heavy workloads must allocate at least 10x more per
	// instruction than the dense-loop workloads.
	for _, hot := range []string{"smoke.perlbench", "smoke.omnetpp"} {
		for _, cold := range []string{"smoke.lbm", "smoke.mcf", "smoke.sjeng"} {
			if allocRate(hot) < 10*allocRate(cold) {
				t.Errorf("%s alloc rate %.3f not >> %s alloc rate %.3f",
					hot, allocRate(hot), cold, allocRate(cold))
			}
		}
	}
	// sjeng must have a tiny footprint (its Table IV memory rows are ~2.5%).
	if s := stats["smoke.sjeng"]; s.PeakProgramBytes > 8<<20 {
		t.Errorf("sjeng footprint %d too large", s.PeakProgramBytes)
	}
}
