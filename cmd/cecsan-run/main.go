// Command cecsan-run executes a named workload — or a C-like source file —
// under a chosen sanitizer with individually toggleable CECSan
// optimizations: the driver behind the §II.F ablation experiments (Figure 4)
// and general poking-around.
//
// Usage:
//
//	cecsan-run -workload 462.libquantum [-sanitizer CECSan]
//	           [-no-subobject] [-no-redundant] [-no-loopinv] [-no-monotonic] [-no-typebased]
//	           [-hardened] [-gen-bits N] [-index-delay K] [-quarantine-bytes B]
//	cecsan-run -src prog.csc [-input hex] [-sanitizer ASan]
//	cecsan-run -list
//
// The §II.F ablations are measured with the check-site profiler: run once
// with a pass disabled and -profile-json baseline.json, then run with the
// pass enabled and -profile-diff baseline.json — the diff table shows
// exactly which site tables the pass emptied (fires dropping to zero or to
// the grouped stride).
//
// The temporal-hardening knobs apply to the CECSan-family sanitizers only:
// -hardened turns on every mitigation at its default strength, and the three
// fine-grained knobs override individual dials (a non-zero value implies the
// corresponding mitigation even without -hardened).
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cecsan/csrc"
	"cecsan/internal/cliutil"
	"cecsan/internal/core"
	"cecsan/internal/engine"
	"cecsan/internal/obs"
	"cecsan/internal/rt"
	"cecsan/internal/sanitizers"
	"cecsan/internal/specsim"
	"cecsan/prog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cecsan-run:", err)
		os.Exit(1)
	}
}

func run() error {
	workload := flag.String("workload", "", "workload name (see -list)")
	srcPath := flag.String("src", "", "compile and run a C-like source file instead of a workload")
	inputs := flag.String("input", "", "comma-separated hex payloads fed to the program's recv/fgets calls")
	list := flag.Bool("list", false, "list available workloads")
	tool := flag.String("sanitizer", "CECSan", "sanitizer name")
	noSub := flag.Bool("no-subobject", false, "disable §II.D sub-object narrowing")
	noRed := flag.Bool("no-redundant", false, "disable redundant-check elimination")
	noInv := flag.Bool("no-loopinv", false, "disable loop-invariant check relocation")
	noMono := flag.Bool("no-monotonic", false, "disable monotonic check grouping")
	noType := flag.Bool("no-typebased", false, "disable type-based check removal")
	hardened := flag.Bool("hardened", false, "enable all temporal-reuse mitigations at default strength (CECSan family)")
	genBits := flag.Uint("gen-bits", 0, "generation-stamp width in bits (0 = default when -hardened, else off)")
	indexDelay := flag.Int("index-delay", 0, "freed metatable indices held back until this many others are freed (0 = default when -hardened, else off)")
	quarBytes := flag.Int64("quarantine-bytes", 0, "allocator quarantine budget in bytes (0 = default when -hardened, else off)")
	seed := cliutil.SeedFlag(0, "seed for the program rand() stream and RNG-bearing runtimes (HWASan tags); 0 = stock")
	maxSteps := cliutil.MaxStepsFlag()
	maxDepth := cliutil.MaxDepthFlag()
	workers := cliutil.WorkersFlag()
	profileDiff := flag.String("profile-diff", "", "diff this run's check-site profile against a baseline written by -profile-json (implies -profile-checks)")
	obsFlags := cliutil.ObsFlagsCmd()
	flag.Parse()
	if *profileDiff != "" {
		obsFlags.ProfileChecks = true
	}

	if *list {
		for _, w := range append(specsim.Spec2006(), append(specsim.Spec2017(), specsim.Smoke()...)...) {
			par := ""
			if w.Parallel {
				par = " (parallel)"
			}
			fmt.Printf("%-20s suite %s%s\n", w.Name, w.Suite, par)
		}
		return nil
	}

	var programName string
	var build func() *prog.Program
	if *srcPath != "" {
		text, err := os.ReadFile(*srcPath)
		if err != nil {
			return err
		}
		compiled, err := csrc.Compile(string(text))
		if err != nil {
			return err
		}
		programName = *srcPath
		build = func() *prog.Program { return compiled }
	} else {
		w, ok := specsim.ByName(*workload)
		if !ok {
			for _, sw := range specsim.Smoke() {
				if sw.Name == *workload {
					w, ok = sw, true
					break
				}
			}
		}
		if !ok {
			return fmt.Errorf("unknown workload %q (try -list)", *workload)
		}
		programName = w.Name
		build = w.Build
	}

	o, srv, err := obsFlags.Build()
	if err != nil {
		return err
	}
	eopts := engine.Options{
		Workers:         *workers,
		Seed:            *seed,
		RuntimeSeed:     *seed,
		MaxInstructions: *maxSteps,
		MaxCallDepth:    *maxDepth,
		Obs:             o,
	}
	toolName := sanitizers.Name(*tool)
	if *hardened {
		// -hardened selects the temporally hardened variant; tools without
		// one (no tag-index reuse window to close) run unchanged.
		if h, ok := sanitizers.Hardened(toolName); ok {
			toolName = h
		}
	}
	if toolName == sanitizers.CECSan || toolName == sanitizers.CECSanHardened {
		opts := core.DefaultOptions()
		if toolName == sanitizers.CECSanHardened {
			opts = core.HardenedOptions()
		}
		opts.SubObject = !*noSub
		opts.OptRedundant = !*noRed
		opts.OptLoopInvariant = !*noInv
		opts.OptMonotonic = !*noMono
		opts.OptTypeBased = !*noType
		if *genBits > 0 {
			opts.TemporalGenerations = true
			opts.GenerationBits = *genBits
		}
		if *indexDelay > 0 {
			opts.IndexDelay = *indexDelay
		}
		if *quarBytes > 0 {
			opts.QuarantineBytes = *quarBytes
		}
		eopts.CECSan = &opts
	}
	eng, err := engine.New(toolName, eopts)
	if err != nil {
		return err
	}

	p := build()
	m, err := eng.NewMachine(p)
	if err != nil {
		return err
	}
	if *inputs != "" {
		for _, h := range strings.Split(*inputs, ",") {
			payload, err := hex.DecodeString(strings.TrimSpace(h))
			if err != nil {
				return fmt.Errorf("bad -input payload %q: %w", h, err)
			}
			m.Feed(payload)
		}
	}
	start := time.Now()
	res := m.Run()
	dur := time.Since(start)

	fmt.Printf("workload   %s under %s\n", programName, m.Runtime().Name())
	fmt.Printf("wall time  %v\n", dur)
	if res.Violation != nil {
		fmt.Printf("VIOLATION  %v\n", res.Violation)
	}
	if res.Fault != nil {
		fmt.Printf("FAULT      %v\n", res.Fault)
	}
	if res.Err != nil {
		fmt.Printf("ERROR      %v\n", res.Err)
	}
	for _, line := range m.Output() {
		fmt.Printf("output     %s\n", line)
	}
	s := res.Stats
	fmt.Printf("instructions      %d\n", s.Instructions)
	fmt.Printf("checks executed   %d\n", s.ChecksExecuted)
	fmt.Printf("subptr ops        %d\n", s.SubPtrOps)
	fmt.Printf("mallocs / frees   %d / %d\n", s.Mallocs, s.Frees)
	fmt.Printf("peak program      %d bytes\n", s.PeakProgramBytes)
	fmt.Printf("peak overhead     %d bytes\n", s.PeakOverheadBytes)
	fmt.Printf("peak RSS          %d bytes\n", s.PeakRSS)
	if th, ok := m.Runtime().(rt.TemporalHardened); ok &&
		(strings.HasSuffix(m.Runtime().Name(), "-hardened") || *genBits > 0 || *indexDelay > 0 || *quarBytes > 0) {
		ts := th.TemporalStats()
		fmt.Printf("temporal          gen-wraps %d  index-spills %d  quarantine evict %d / flush %d / held %d bytes\n",
			ts.GenerationWraps, ts.IndexSpills, ts.QuarantineEvictions, ts.QuarantineFlushes, ts.QuarantinedBytes)
	}
	if *profileDiff != "" && o != nil && o.Sites != nil {
		baseline, err := obs.LoadSitesFile(*profileDiff)
		if err != nil {
			return err
		}
		fmt.Printf("\ncheck-site diff vs %s\n", *profileDiff)
		obs.FormatSiteDiff(os.Stdout, baseline, o.Sites.Sites())
	}
	// The -profile-checks table attributes the observed check fires against
	// the run's ChecksExecuted total.
	return obsFlags.Finish(o, srv, res.Stats.ChecksExecuted)
}
