package traffic

import (
	"math"
	"sync"
	"time"
)

// codel is a CoDel-style adaptive admission controller. It sheds on
// sustained queue *delay*, not depth: a deep queue that drains fast is
// healthy, a shallow one whose head has waited past the target is not. A
// request's sojourn time is measured at dequeue; only when sojourn stays
// above the target for a full control interval does the controller enter a
// dropping episode, and within one it sheds at a rate growing with the
// square root of the drop count (the control law that drives a standing
// queue back to the target without oscillating). Any sub-target sojourn
// ends the episode immediately.
type codel struct {
	target   time.Duration
	interval time.Duration

	mu         sync.Mutex
	firstAbove time.Time // when the current above-target excursion would mature; zero = below
	dropNext   time.Time
	dropping   bool
	count      int
}

func newCoDel(cfg ResilienceConfig) *codel {
	if cfg.CoDelTargetUS < 0 {
		return nil
	}
	return &codel{
		target:   time.Duration(cfg.CoDelTargetUS) * time.Microsecond,
		interval: time.Duration(cfg.CoDelIntervalUS) * time.Microsecond,
	}
}

// shed reports whether the request dequeued at now after waiting delay
// should be shed instead of served.
func (c *codel) shed(now time.Time, delay time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if delay < c.target {
		c.firstAbove = time.Time{}
		c.dropping = false
		return false
	}
	if c.firstAbove.IsZero() {
		c.firstAbove = now.Add(c.interval)
		return false
	}
	if !c.dropping {
		if now.Before(c.firstAbove) {
			return false
		}
		// Delay has stayed above target for a whole interval: start
		// shedding.
		c.dropping = true
		c.count = 1
		c.dropNext = now.Add(c.nextInterval())
		return true
	}
	if now.Before(c.dropNext) {
		return false
	}
	c.count++
	c.dropNext = now.Add(c.nextInterval())
	return true
}

// nextInterval is the CoDel control law: interval / sqrt(count).
func (c *codel) nextInterval() time.Duration {
	return time.Duration(float64(c.interval) / math.Sqrt(float64(c.count)))
}

// tokenBucket rate-limits one class's open-loop admission. Each class gets
// rate = its offered share x BucketHeadroom, so a class bursting past its
// fair share (the one failure mode depth- or delay-based shedding cannot
// attribute) is shed at its own bucket instead of squeezing every other
// class through the shared queue.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// newTokenBucket starts full so a campaign's opening burst is not penalized
// before the refill clock has any history.
func newTokenBucket(rate, burst float64) *tokenBucket {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// allow takes one token if available, refilling from elapsed wall time.
func (tb *tokenBucket) allow(now time.Time) bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if !tb.last.IsZero() {
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}
