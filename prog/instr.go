package prog

import (
	"fmt"
	"sync/atomic"
)

// Reg identifies a virtual register within a function. Registers hold
// untyped 64-bit words; instruction semantics decide whether a word is an
// address or an integer, exactly as machine registers do.
type Reg int32

// NoReg marks an absent register operand.
const NoReg Reg = -1

// Op is an instruction opcode.
type Op uint8

// Program-authored opcodes. They start at 1 so the zero value (OpInvalid)
// is recognizably uninitialized.
const (
	OpInvalid Op = iota

	OpConst // Dst = Imm
	OpMov   // Dst = A
	OpBin   // Dst = A <binop X> B
	OpCmp   // Dst = (A <pred X> B) ? 1 : 0
	OpBr    // pc = Imm
	OpCondBr// if A != 0 { pc = Imm } else fall through

	OpAlloca     // Dst = &stack object of Type (Size bytes)
	OpMalloc     // Dst = malloc(A); if A == NoReg, malloc(Size)
	OpFree       // free(A)
	OpLoad       // Dst = *(A + Off), Size bytes
	OpStore      // *(A + Off) = B, Size bytes
	OpGEP        // Dst = A + Off + B*Imm (B may be NoReg); Type = pointee
	OpGlobalAddr // Dst = &global(Sym)

	OpCall         // Dst = Sym(Args...)
	OpCallExternal // Dst = external Sym(Args...); uninstrumented callee
	OpLibc         // Dst = libc Sym(Args...)
	OpParFor       // parallel-for: Sym(i) for i in [A,B), Imm threads
	OpRet          // return A (or void if A == NoReg)

	// Opcodes below are inserted by instrumentation (internal/instrument);
	// authoring them directly is a validation error unless the program is
	// marked pre-instrumented.

	OpCheckAccess // sanitizer check: access [A+Off, A+Off+Size), write if FlagWrite; if B != NoReg the size is dynamic (regs[B] bytes)

	// OpCheckPeriodic is the §II.F.1 grouped monotonic check (Figure 4a):
	// for a loop whose induction variable walks [start, limit) with a
	// constant step, the per-element check fires only every check_step-th
	// iteration, widened to cover the elements up to the next firing
	// (clamped at the loop limit). Encoding: Args = [ptr, indvar, limitReg],
	// Imm = start, Off = step*checkStep (the firing modulus), X = step,
	// Size = element size in bytes, FlagWrite selects the access kind.
	OpCheckPeriodic
	OpSubPtr      // Dst = sanitizer-narrowed sub-object pointer of A at [Off, Off+Size)
	OpSubRelease  // release sub-object metadata of A
	OpStripPtr    // Dst = strip(A): remove tag bits
	OpRetagPtr    // Dst = retag(A with tag of B)

	OpPtrMetaCopy  // per-pointer metadata: meta[Dst] = meta[A] (SoftBound)
	OpPtrMetaLoad  // per-pointer metadata: meta[Dst] = shadow[A+Off] (after pointer load)
	OpPtrMetaStore // per-pointer metadata: shadow[A+Off] = meta[B] (after pointer store)

	opMax
)

// BinOp selects the operation of an OpBin instruction (stored in Instr.X).
type BinOp uint8

// Binary operations.
const (
	BinAdd BinOp = iota + 1
	BinSub
	BinMul
	BinDiv // signed; division by zero faults the program
	BinRem // signed
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr // logical
)

// CmpPred selects the predicate of an OpCmp instruction (stored in Instr.X).
type CmpPred uint8

// Comparison predicates.
const (
	CmpEq CmpPred = iota + 1
	CmpNe
	CmpSLt
	CmpSLe
	CmpSGt
	CmpSGe
	CmpULt
	CmpULe
	CmpUGt
	CmpUGe
)

// Flag is a bitset of static facts attached to an instruction by the builder
// or by instrumentation passes.
type Flag uint16

// Instruction flags.
const (
	// FlagStaticSafe marks a GEP that is statically provably in-bounds with
	// respect to its base object (constant field offset, or constant array
	// index below the array length) — the §II.F.2 optimization input.
	FlagStaticSafe Flag = 1 << iota
	// FlagSubObject marks a GEP that selects a composite member and is
	// therefore a candidate for §II.D sub-object bounds narrowing.
	FlagSubObject
	// FlagPtrVal marks a load/store whose value is a pointer, which
	// per-pointer-metadata sanitizers (SoftBound) must shadow.
	FlagPtrVal
	// FlagWrite marks a check as covering a write access.
	FlagWrite
	// FlagRetPtr marks an external call returning a fresh foreign pointer.
	FlagRetPtr
	// FlagRetIsArg0 marks an external call that returns its first pointer
	// argument (strcpy-style), triggering the §II.E re-tag wrapper.
	FlagRetIsArg0
	// FlagTracked marks an alloca or global the instrumentation decided is
	// "unsafe" (§II.C.3) and therefore carries metadata.
	FlagTracked
	// FlagNoReuse marks an alloca whose metadata the sanitizer should keep
	// live to end of function (used in tests).
	FlagNoReuse
	// FlagResolvedTarget marks a branch inserted by an instrumentation pass
	// whose target is already an index into the rewritten code and must not
	// be remapped again.
	FlagResolvedTarget
)

// Instr is one IR instruction. The operand meaning depends on Op; see the
// opcode constants. Instr is a value type: programs are flat []Instr slices
// for interpreter cache friendliness.
type Instr struct {
	Op   Op
	X    uint8 // BinOp, CmpPred, or check-kind discriminator
	Dst  Reg
	A    Reg
	B    Reg
	Imm  int64
	Off  int64
	Size int64
	Type *Type
	Sym  string
	Args []Reg
	Flags Flag
}

// Has reports whether all bits of f are set.
func (i *Instr) Has(f Flag) bool { return i.Flags&f == f }

// Loop records the scalar-evolution facts the builder knows about one
// counted loop: the induction variable, its start, (exclusive) limit and
// step, and the half-open instruction ranges of the header and body. This is
// the information LLVM's ScalarEvolution derives and §II.F.1 consumes for
// invariant and monotonic check optimization.
type Loop struct {
	// HeadStart..HeadEnd is the header range (condition evaluation and the
	// conditional branch). BodyStart..BodyEnd is the body, excluding the
	// induction-variable increment and back edge, which occupy
	// BodyEnd..LatchEnd.
	HeadStart, HeadEnd   int
	BodyStart, BodyEnd   int
	LatchEnd             int
	IndVar               Reg
	Start, Limit         Operand
	Step                 int64
}

// Operand is either a constant or a register, used in Loop facts.
type Operand struct {
	Reg     Reg
	Const   int64
	IsConst bool
}

// ConstOperand returns a constant operand.
func ConstOperand(v int64) Operand { return Operand{Const: v, IsConst: true, Reg: NoReg} }

// RegOperand returns a register operand.
func RegOperand(r Reg) Operand { return Operand{Reg: r} }

// String renders the operand.
func (o Operand) String() string {
	if o.IsConst {
		return fmt.Sprintf("%d", o.Const)
	}
	return fmt.Sprintf("r%d", o.Reg)
}

// FuseKind classifies a fused superinstruction rooted at one instruction.
type FuseKind uint8

// Fusion kinds. A check fused with its guarded access executes both in one
// dispatch; the instruction stream itself is unchanged (PCs, and therefore
// violation reports and branch targets, are stable), so fusion is a pure
// dispatch-layer specialization recorded in a side table.
const (
	FuseNone  FuseKind = iota
	FuseLoad           // OpCheckAccess immediately followed by OpLoad
	FuseStore          // OpCheckAccess immediately followed by OpStore
)

// Func is one IR function: a flat instruction slice with branch targets as
// instruction indices, plus the builder-recorded loop facts.
type Func struct {
	Name      string
	NumParams int // parameters arrive in registers 0..NumParams-1
	NumRegs   int
	Code      []Instr
	Loops     []Loop

	// Allocas lists the indices of OpAlloca instructions, for the stack
	// object safety analysis.
	Allocas []int

	// Fused, when non-nil, is the superinstruction side table: Fused[pc]
	// describes the fusion rooted at Code[pc]. It is derived (instrument
	// populates it after the check-optimization passes), excluded from the
	// fingerprint, and semantically transparent: a branch into the middle of
	// a fused pair executes the plain tail instruction, exactly as unfused
	// code would.
	Fused []FuseKind
}

// GlobalSpec declares a program global.
type GlobalSpec struct {
	Name string
	Type *Type
	// Init optionally provides an initial value for the first 8 bytes
	// (enough for the flag/int globals Juliet-style control flow uses).
	Init int64
	// InitBytes optionally provides initial data (string literals).
	InitBytes []byte
	// AddressTaken marks globals whose address escapes; the instrumentation
	// treats them as unsafe (§II.C.3) and routes accesses through the GPT.
	AddressTaken bool
}

// Program is a complete translation unit: functions, globals and an entry
// point. Programs are immutable after Build; instrumentation copies them.
type Program struct {
	Funcs   map[string]*Func
	Order   []string // function names in definition order
	Globals []GlobalSpec
	Entry   string

	// fp memoizes Fingerprint. The engine fingerprints every program on
	// every cache lookup; programs are immutable once built, so the hash is
	// computed once. Clone deliberately leaves the copy's memo empty.
	fp atomic.Pointer[Fingerprint]
}

// Clone returns a deep copy of the program that instrumentation may rewrite
// freely.
func (p *Program) Clone() *Program {
	np := &Program{
		Funcs:   make(map[string]*Func, len(p.Funcs)),
		Order:   append([]string(nil), p.Order...),
		Globals: append([]GlobalSpec(nil), p.Globals...),
		Entry:   p.Entry,
	}
	for name, f := range p.Funcs {
		nf := &Func{
			Name:      f.Name,
			NumParams: f.NumParams,
			NumRegs:   f.NumRegs,
			Code:      append([]Instr(nil), f.Code...),
			Loops:     append([]Loop(nil), f.Loops...),
			Allocas:   append([]int(nil), f.Allocas...),
			Fused:     append([]FuseKind(nil), f.Fused...),
		}
		for i := range nf.Code {
			if nf.Code[i].Args != nil {
				nf.Code[i].Args = append([]Reg(nil), nf.Code[i].Args...)
			}
		}
		np.Funcs[name] = nf
	}
	return np
}
