package alloc

import "sync"

// Quarantine is a bounded FIFO that delays chunk-address reuse: instead of
// returning a chunk to the heap's size-class free lists at once, Free parks
// it here until the held total exceeds the byte budget, then evicts the
// oldest chunks back to the heap. The shape is ASan's quarantine, but it
// sits *under* the stock-allocator contract — chunks stay registered live in
// the Heap while held, so the allocator's layout, alignment and bookkeeping
// are untouched and the RSS cost of the delay shows up in the ordinary
// live-bytes accounting. CECSan-family hardened profiles route their
// deallocations through it to close the address half of the tag-reuse
// window.
//
// Degradation is graceful by construction: a budget of 0 (or any churn
// beyond the budget) evicts immediately, which is exactly today's
// immediate-reuse behaviour; evictions and explicit flushes are counted so
// the lost coverage is observable.
type Quarantine struct {
	mu     sync.Mutex
	budget int64
	chunks []quarChunk // FIFO, oldest first
	held   int64

	evictions int64 // chunks released early because the budget overflowed
	flushes   int64 // explicit whole-quarantine releases (OOM retry path)
}

type quarChunk struct {
	base uint64
	size int64
}

// QuarantineStats is a snapshot of quarantine counters.
type QuarantineStats struct {
	Budget     int64
	HeldBytes  int64
	HeldChunks int64
	Evictions  int64
	Flushes    int64
}

// NewQuarantine returns an empty quarantine with the given byte budget.
func NewQuarantine(budget int64) *Quarantine {
	if budget < 0 {
		budget = 0
	}
	return &Quarantine{budget: budget}
}

// Free delays the release of the chunk based at addr: the chunk is appended
// to the FIFO and the oldest chunks beyond the byte budget are released to
// the heap. An address that is not a live chunk base is forwarded to
// h.Free unchanged (preserving the allocator's silent-UB contract and its
// freeErrors counter). Reports whether addr was a live chunk.
func (q *Quarantine) Free(h *Heap, addr uint64) bool {
	size, ok := h.Lookup(addr)
	if !ok {
		return h.Free(addr)
	}
	q.mu.Lock()
	q.chunks = append(q.chunks, quarChunk{base: addr, size: size})
	q.held += size
	var evict []quarChunk
	for q.held > q.budget && len(q.chunks) > 0 {
		c := q.chunks[0]
		q.chunks = q.chunks[1:]
		q.held -= c.size
		q.evictions++
		evict = append(evict, c)
	}
	q.mu.Unlock()
	for _, c := range evict {
		h.Free(c.base)
	}
	return true
}

// Flush releases every held chunk to the heap and returns how many there
// were. The runtime's allocation path calls it when the heap reports OOM, so
// quarantined memory is traded back for progress before the program dies —
// the quarantine equivalent of the table's exhaustion fallback.
func (q *Quarantine) Flush(h *Heap) int {
	q.mu.Lock()
	chunks := q.chunks
	q.chunks = nil
	q.held = 0
	if len(chunks) > 0 {
		q.flushes++
	}
	q.mu.Unlock()
	for _, c := range chunks {
		h.Free(c.base)
	}
	return len(chunks)
}

// Reset restores the quarantine to its freshly-constructed state without
// touching the heap: held chunks are simply forgotten, matching Heap.Reset
// (which the engine resets in the same breath) dropping all live chunks.
func (q *Quarantine) Reset() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.chunks = nil
	q.held = 0
	q.evictions = 0
	q.flushes = 0
}

// Stats returns a snapshot of the quarantine counters.
func (q *Quarantine) Stats() QuarantineStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QuarantineStats{
		Budget:     q.budget,
		HeldBytes:  q.held,
		HeldChunks: int64(len(q.chunks)),
		Evictions:  q.evictions,
		Flushes:    q.flushes,
	}
}

// OverheadBytes returns the quarantine's own bookkeeping footprint (one
// (base, size) pair per held chunk). The held chunk bytes themselves remain
// program memory — they are still live in the Heap — so they are charged to
// the program RSS, not the sanitizer overhead.
func (q *Quarantine) OverheadBytes() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return int64(len(q.chunks)) * 16
}
