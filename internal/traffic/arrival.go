package traffic

import (
	"math"
	"time"
)

// rng is a splitmix64 stream, the same generator internal/fuzz uses: tiny,
// seedable, and stable across Go versions — the determinism contract
// (byte-identical streams for a fixed (spec, seed)) depends on that
// stability, which math/rand does not promise.
type rng struct{ s uint64 }

const golden = 0x9e3779b97f4a7c15

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = golden
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s += golden
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// mix derives an independent child seed from (seed, salt): the one-level
// seed tree that gives every client its own arrival and program streams.
func mix(seed, salt uint64) uint64 {
	r := rng{s: seed ^ (salt+1)*golden}
	return r.next()
}

// arrivalSampler draws inter-arrival times for one client class. All three
// processes are normalized to the same mean inter-arrival 1/rate, so
// rate_fraction splits traffic volume and the process only shapes its
// burstiness.
type arrivalSampler struct {
	r       *rng
	process string
	rate    float64 // arrivals per virtual second

	// gamma parameters (shape k, scale theta), precomputed.
	gammaK     float64
	gammaTheta float64
	// weibull parameters, precomputed so the mean lands on 1/rate.
	weibullK     float64
	weibullScale float64
}

// newArrivalSampler builds the sampler for one client's arrival spec at the
// client's absolute rate.
func newArrivalSampler(spec ArrivalSpec, rate float64, seed uint64) *arrivalSampler {
	a := &arrivalSampler{r: newRNG(seed), process: spec.Process, rate: rate}
	switch spec.Process {
	case ProcessGamma:
		// CV of a gamma is 1/sqrt(k): pick k from the requested CV, then
		// scale for mean k*theta = 1/rate.
		a.gammaK = 1 / (spec.CV * spec.CV)
		a.gammaTheta = 1 / (rate * a.gammaK)
	case ProcessWeibull:
		// Mean of a weibull is scale*Gamma(1+1/k).
		a.weibullK = spec.Shape
		a.weibullScale = 1 / (rate * math.Gamma(1+1/spec.Shape))
	}
	return a
}

// next draws one inter-arrival interval.
func (a *arrivalSampler) next() time.Duration {
	var sec float64
	switch a.process {
	case ProcessGamma:
		sec = a.gammaTheta * gammaDraw(a.r, a.gammaK)
	case ProcessWeibull:
		sec = a.weibullScale * math.Pow(expDraw(a.r), 1/a.weibullK)
	default: // poisson: exponential inter-arrivals
		sec = expDraw(a.r) / a.rate
	}
	return time.Duration(sec * float64(time.Second))
}

// expDraw is a unit-mean exponential draw. 1-u is in (0, 1], so the log is
// finite.
func expDraw(r *rng) float64 { return -math.Log(1 - r.float()) }

// normDraw is a standard normal draw via Box–Muller. It burns two uniforms
// per value (no cached spare), keeping the stream's state a single uint64.
func normDraw(r *rng) float64 {
	u := 1 - r.float() // (0, 1]
	v := r.float()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// gammaDraw samples a unit-scale gamma with shape k via Marsaglia–Tsang
// (2000); the k < 1 boost uses the standard Gamma(k+1)·U^(1/k) identity.
// Rejection loops are fine for determinism: the draw consumes a definite
// prefix of the seeded stream.
func gammaDraw(r *rng, k float64) float64 {
	if k < 1 {
		return gammaDraw(r, k+1) * math.Pow(1-r.float(), 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := normDraw(r)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := 1 - r.float() // (0, 1]
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
