package prog

import (
	"fmt"
)

// ProgramBuilder assembles a Program from functions and globals.
type ProgramBuilder struct {
	prog *Program
	errs []error
	fbs  []*FuncBuilder
}

// NewProgram returns an empty program builder.
func NewProgram() *ProgramBuilder {
	return &ProgramBuilder{prog: &Program{Funcs: make(map[string]*Func), Entry: "main"}}
}

// Global declares a zero-initialized global of the given type.
func (pb *ProgramBuilder) Global(name string, t *Type) {
	pb.prog.Globals = append(pb.prog.Globals, GlobalSpec{Name: name, Type: t})
}

// GlobalInit declares a global whose first 8 bytes are initialized to v
// (the flag/int globals Juliet-style control-flow variants branch on).
func (pb *ProgramBuilder) GlobalInit(name string, t *Type, v int64) {
	pb.prog.Globals = append(pb.prog.Globals, GlobalSpec{Name: name, Type: t, Init: v})
}

// GlobalBytes declares a global initialized with the given bytes (a string
// literal in the data segment). The type is char[len(b)+1], NUL-terminated.
func (pb *ProgramBuilder) GlobalBytes(name string, b []byte) {
	t := ArrayOf(Char(), int64(len(b))+1)
	pb.prog.Globals = append(pb.prog.Globals, GlobalSpec{Name: name, Type: t, InitBytes: append([]byte(nil), b...)})
}

// GlobalUnsafe declares an address-taken global, which the instrumentation
// treats as unsafe and protects through the GPT (§II.C.3).
func (pb *ProgramBuilder) GlobalUnsafe(name string, t *Type) {
	pb.prog.Globals = append(pb.prog.Globals, GlobalSpec{Name: name, Type: t, AddressTaken: true})
}

// Function opens a new function with the given number of parameters, which
// arrive in registers 0..numParams-1.
func (pb *ProgramBuilder) Function(name string, numParams int) *FuncBuilder {
	fb := &FuncBuilder{
		pb: pb,
		fn: &Func{Name: name, NumParams: numParams, NumRegs: numParams},
	}
	pb.fbs = append(pb.fbs, fb)
	return fb
}

// Build finalizes all functions, validates the program, and returns it.
func (pb *ProgramBuilder) Build() (*Program, error) {
	for _, fb := range pb.fbs {
		if _, dup := pb.prog.Funcs[fb.fn.Name]; dup {
			pb.errs = append(pb.errs, fmt.Errorf("prog: function %q defined twice", fb.fn.Name))
			continue
		}
		if fb.needsTrailingRet() {
			fb.RetVoid()
		}
		pb.prog.Funcs[fb.fn.Name] = fb.fn
		pb.prog.Order = append(pb.prog.Order, fb.fn.Name)
	}
	if len(pb.errs) > 0 {
		return nil, pb.errs[0]
	}
	if err := Validate(pb.prog); err != nil {
		return nil, err
	}
	return pb.prog, nil
}

// MustBuild is Build that panics on error, for statically known-good
// programs in tests and workload generators.
func (pb *ProgramBuilder) MustBuild() *Program {
	p, err := pb.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// FuncBuilder emits instructions into one function.
type FuncBuilder struct {
	pb *ProgramBuilder
	fn *Func

	consts map[Reg]int64 // registers with a known, never-clobbered constant
}

// Fn returns the function under construction (for inspection in tests).
func (f *FuncBuilder) Fn() *Func { return f.fn }

// NewReg allocates a fresh virtual register.
func (f *FuncBuilder) NewReg() Reg {
	r := Reg(f.fn.NumRegs)
	f.fn.NumRegs++
	return r
}

// Arg returns the register holding the i-th parameter.
func (f *FuncBuilder) Arg(i int) Reg {
	if i < 0 || i >= f.fn.NumParams {
		f.errf("Arg(%d) out of range for %q with %d params", i, f.fn.Name, f.fn.NumParams)
		return NoReg
	}
	return Reg(i)
}

func (f *FuncBuilder) errf(format string, args ...any) {
	f.pb.errs = append(f.pb.errs, fmt.Errorf("prog: %s: "+format, append([]any{f.fn.Name}, args...)...))
}

func (f *FuncBuilder) emit(in Instr) int {
	f.fn.Code = append(f.fn.Code, in)
	return len(f.fn.Code) - 1
}

func (f *FuncBuilder) pc() int { return len(f.fn.Code) }

// needsTrailingRet reports whether Build must append an implicit RetVoid:
// either the function does not end in a return, or some structured-control
// branch targets the position just past the last instruction (e.g. an If
// whose both arms return).
func (f *FuncBuilder) needsTrailingRet() bool {
	n := len(f.fn.Code)
	if n == 0 || f.fn.Code[n-1].Op != OpRet {
		return true
	}
	for _, in := range f.fn.Code {
		if (in.Op == OpBr || in.Op == OpCondBr) && in.Imm == int64(n) {
			return true
		}
	}
	return false
}

func (f *FuncBuilder) clobber(r Reg) {
	if f.consts != nil {
		delete(f.consts, r)
	}
}

// ConstValue reports the compile-time constant value of r, if known.
func (f *FuncBuilder) ConstValue(r Reg) (int64, bool) {
	v, ok := f.consts[r]
	return v, ok
}

// Const materializes an integer constant into a fresh register.
func (f *FuncBuilder) Const(v int64) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: OpConst, Dst: dst, Imm: v, A: NoReg, B: NoReg})
	if f.consts == nil {
		f.consts = make(map[Reg]int64)
	}
	f.consts[dst] = v
	return dst
}

// Mov copies src into a fresh register.
func (f *FuncBuilder) Mov(src Reg) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: OpMov, Dst: dst, A: src, B: NoReg})
	if v, ok := f.consts[src]; ok {
		f.consts[dst] = v
	}
	return dst
}

// Assign overwrites an existing register with src (the IR's mutation form,
// used for induction variables and accumulators).
func (f *FuncBuilder) Assign(dst, src Reg) {
	f.clobber(dst)
	f.emit(Instr{Op: OpMov, Dst: dst, A: src, B: NoReg})
}

// AssignConst overwrites an existing register with a constant.
func (f *FuncBuilder) AssignConst(dst Reg, v int64) {
	f.clobber(dst)
	f.emit(Instr{Op: OpConst, Dst: dst, Imm: v, A: NoReg, B: NoReg})
}

// Bin emits dst = a <op> b.
func (f *FuncBuilder) Bin(op BinOp, a, b Reg) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: OpBin, X: uint8(op), Dst: dst, A: a, B: b})
	return dst
}

// Add emits dst = a + b.
func (f *FuncBuilder) Add(a, b Reg) Reg { return f.Bin(BinAdd, a, b) }

// Sub emits dst = a - b.
func (f *FuncBuilder) Sub(a, b Reg) Reg { return f.Bin(BinSub, a, b) }

// Mul emits dst = a * b.
func (f *FuncBuilder) Mul(a, b Reg) Reg { return f.Bin(BinMul, a, b) }

// AddImm emits dst = a + k.
func (f *FuncBuilder) AddImm(a Reg, k int64) Reg { return f.Add(a, f.Const(k)) }

// Cmp emits dst = (a pred b) ? 1 : 0.
func (f *FuncBuilder) Cmp(pred CmpPred, a, b Reg) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: OpCmp, X: uint8(pred), Dst: dst, A: a, B: b})
	return dst
}

// Alloca emits a stack allocation of type t and returns the address
// register. The instrumentation's stack-safety analysis later decides
// whether the object is tracked.
func (f *FuncBuilder) Alloca(t *Type) Reg {
	dst := f.NewReg()
	idx := f.emit(Instr{Op: OpAlloca, Dst: dst, Size: t.Size(), Type: t, A: NoReg, B: NoReg})
	f.fn.Allocas = append(f.fn.Allocas, idx)
	return dst
}

// MallocType emits a heap allocation sized for type t.
func (f *FuncBuilder) MallocType(t *Type) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: OpMalloc, Dst: dst, Size: t.Size(), Type: t, A: NoReg, B: NoReg})
	return dst
}

// MallocBytes emits a heap allocation of a constant byte count with no type
// information (a void* allocation; §II.F.2's optimization will not apply).
func (f *FuncBuilder) MallocBytes(n int64) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: OpMalloc, Dst: dst, Size: n, A: NoReg, B: NoReg})
	return dst
}

// MallocReg emits a heap allocation whose size comes from a register (e.g.
// external input).
func (f *FuncBuilder) MallocReg(n Reg) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: OpMalloc, Dst: dst, A: n, B: NoReg})
	return dst
}

// Free emits free(ptr).
func (f *FuncBuilder) Free(ptr Reg) {
	f.emit(Instr{Op: OpFree, A: ptr, Dst: NoReg, B: NoReg})
}

// Load emits dst = *(ptr + off) of type t (scalar or pointer).
func (f *FuncBuilder) Load(ptr Reg, off int64, t *Type) Reg {
	dst := f.NewReg()
	in := Instr{Op: OpLoad, Dst: dst, A: ptr, Off: off, Size: t.Size(), Type: t, B: NoReg}
	if t.Kind() == KindPtr {
		in.Flags |= FlagPtrVal
	}
	f.emit(in)
	return dst
}

// Store emits *(ptr + off) = val of type t.
func (f *FuncBuilder) Store(ptr Reg, off int64, val Reg, t *Type) {
	in := Instr{Op: OpStore, A: ptr, B: val, Off: off, Size: t.Size(), Type: t, Dst: NoReg}
	if t.Kind() == KindPtr {
		in.Flags |= FlagPtrVal
	}
	f.emit(in)
}

// FieldPtr emits dst = &base->field for a struct pointer. The GEP carries
// the field's type and size, making it a §II.D sub-object narrowing
// candidate, and is statically safe per §II.F.2.
func (f *FuncBuilder) FieldPtr(base Reg, st *Type, field string) Reg {
	fl, ok := st.FieldByName(field)
	if !ok {
		f.errf("FieldPtr: struct %s has no field %q", st, field)
		return NoReg
	}
	dst := f.NewReg()
	f.emit(Instr{
		Op: OpGEP, Dst: dst, A: base, B: NoReg,
		Off: fl.Offset, Size: fl.Type.Size(), Type: fl.Type,
		Flags: FlagSubObject | FlagStaticSafe, Sym: field,
	})
	return dst
}

// IndexPtr emits dst = &base[idx] for an array of arr's element type. If idx
// is a known constant within the array bounds the GEP is marked statically
// safe (§II.F.2).
func (f *FuncBuilder) IndexPtr(base Reg, arr *Type, idx Reg) Reg {
	if arr.Kind() != KindArray {
		f.errf("IndexPtr: %s is not an array type", arr)
		return NoReg
	}
	dst := f.NewReg()
	in := Instr{Op: OpGEP, Dst: dst, A: base, B: idx, Imm: arr.Elem().Size(), Type: arr.Elem()}
	if v, ok := f.consts[idx]; ok && v >= 0 && v < arr.Len() {
		in.Flags |= FlagStaticSafe
	}
	f.emit(in)
	return dst
}

// ElemPtr emits dst = base + idx*elem.Size() where only the element type is
// known (pointer-to-elem arithmetic; bounds not statically known).
func (f *FuncBuilder) ElemPtr(base Reg, elem *Type, idx Reg) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: OpGEP, Dst: dst, A: base, B: idx, Imm: elem.Size(), Type: elem})
	return dst
}

// OffsetPtr emits dst = base + byteOff with no type information (void*
// arithmetic; never statically safe).
func (f *FuncBuilder) OffsetPtr(base Reg, byteOff int64) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: OpGEP, Dst: dst, A: base, B: NoReg, Off: byteOff})
	return dst
}

// OffsetPtrReg emits dst = base + off (byte offset in a register, no type
// information).
func (f *FuncBuilder) OffsetPtrReg(base Reg, off Reg) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: OpGEP, Dst: dst, A: base, B: off, Imm: 1})
	return dst
}

// GlobalAddr emits dst = &global.
func (f *FuncBuilder) GlobalAddr(name string) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: OpGlobalAddr, Dst: dst, Sym: name, A: NoReg, B: NoReg})
	return dst
}

// Call emits dst = fn(args...). The callee is instrumented code in the same
// program.
func (f *FuncBuilder) Call(fn string, args ...Reg) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: OpCall, Dst: dst, Sym: fn, Args: args, A: NoReg, B: NoReg})
	return dst
}

// CallExternal emits a call to external, uninstrumented code (§II.E). If
// retIsArg0 is true the callee returns its first argument (strcpy-style)
// and instrumentation will re-apply the stripped tag to the return value.
func (f *FuncBuilder) CallExternal(fn string, retIsArg0 bool, args ...Reg) Reg {
	dst := f.NewReg()
	in := Instr{Op: OpCallExternal, Dst: dst, Sym: fn, Args: args, A: NoReg, B: NoReg, Flags: FlagRetPtr}
	if retIsArg0 {
		in.Flags |= FlagRetIsArg0
	}
	f.emit(in)
	return dst
}

// Libc emits dst = libcFn(args...): one of the machine's simulated C library
// functions (memcpy, memset, strcpy, wcsncpy, fgets, recv, rand, ...).
func (f *FuncBuilder) Libc(fn string, args ...Reg) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: OpLibc, Dst: dst, Sym: fn, Args: args, A: NoReg, B: NoReg})
	return dst
}

// ParFor emits a parallel-for region: fn(i) is invoked for every i in
// [lo, hi), partitioned over the given number of threads — the repository's
// OpenMP analogue.
func (f *FuncBuilder) ParFor(fn string, lo, hi Reg, threads int) {
	f.emit(Instr{Op: OpParFor, Sym: fn, A: lo, B: hi, Imm: int64(threads), Dst: NoReg})
}

// Ret emits return val.
func (f *FuncBuilder) Ret(val Reg) {
	f.emit(Instr{Op: OpRet, A: val, Dst: NoReg, B: NoReg})
}

// RetVoid emits a void return.
func (f *FuncBuilder) RetVoid() {
	f.emit(Instr{Op: OpRet, A: NoReg, Dst: NoReg, B: NoReg})
}

// If emits a conditional: then() runs when cond != 0, els() (which may be
// nil) otherwise.
func (f *FuncBuilder) If(cond Reg, then func(), els func()) {
	jmpToThen := f.emit(Instr{Op: OpCondBr, A: cond, Dst: NoReg, B: NoReg})
	if els != nil {
		els()
	}
	jmpToEnd := f.emit(Instr{Op: OpBr, Dst: NoReg, A: NoReg, B: NoReg})
	f.fn.Code[jmpToThen].Imm = int64(f.pc())
	then()
	f.fn.Code[jmpToEnd].Imm = int64(f.pc())
}

// While emits a condition-controlled loop: body runs while cond() != 0.
// No scalar-evolution facts are recorded (the loop is not counted).
func (f *FuncBuilder) While(cond func() Reg, body func()) {
	head := f.pc()
	c := cond()
	exitIfZero := f.Cmp(CmpEq, c, f.Const(0))
	jmpExit := f.emit(Instr{Op: OpCondBr, A: exitIfZero, Dst: NoReg, B: NoReg})
	body()
	f.emit(Instr{Op: OpBr, Imm: int64(head), Dst: NoReg, A: NoReg, B: NoReg})
	f.fn.Code[jmpExit].Imm = int64(f.pc())
}

// ForRange emits a counted loop `for (i = start; i < limit; i += step)`,
// recording the scalar-evolution facts for §II.F.1. start and limit are
// Operands (constant or register); step must be a nonzero constant.
func (f *FuncBuilder) ForRange(start, limit Operand, step int64, body func(i Reg)) {
	if step == 0 {
		f.errf("ForRange: zero step")
		return
	}
	i := f.NewReg()
	if start.IsConst {
		f.AssignConst(i, start.Const)
	} else {
		f.Assign(i, start.Reg)
	}
	var limReg Reg
	if limit.IsConst {
		limReg = f.Const(limit.Const)
	} else {
		limReg = limit.Reg
	}
	headStart := f.pc()
	pred := CmpSGe // exit when i >= limit (ascending)
	if step < 0 {
		pred = CmpSLe // exit when i <= limit (descending)
	}
	done := f.Cmp(pred, i, limReg)
	jmpExit := f.emit(Instr{Op: OpCondBr, A: done, Dst: NoReg, B: NoReg})
	headEnd := f.pc()
	body(i)
	bodyEnd := f.pc()
	stepReg := f.Const(step)
	f.clobber(i)
	f.emit(Instr{Op: OpBin, X: uint8(BinAdd), Dst: i, A: i, B: stepReg})
	f.emit(Instr{Op: OpBr, Imm: int64(headStart), Dst: NoReg, A: NoReg, B: NoReg})
	latchEnd := f.pc()
	f.fn.Code[jmpExit].Imm = int64(latchEnd)
	f.fn.Loops = append(f.fn.Loops, Loop{
		HeadStart: headStart, HeadEnd: headEnd,
		BodyStart: headEnd, BodyEnd: bodyEnd,
		LatchEnd: latchEnd,
		IndVar:   i, Start: start, Limit: limit, Step: step,
	})
}
