package engine

import (
	"sync"
	"sync/atomic"

	"cecsan/internal/rt"
	"cecsan/prog"
)

// cacheShardCount is the number of lock-striped shards. A shard is selected
// by the low bits of the fingerprint's first byte, so structurally unrelated
// programs spread evenly (the fingerprint is an fnv128a hash).
const cacheShardCount = 64

// DefaultCacheCapacity bounds the total instrumented programs a Cache
// retains. Table II at full scale holds ~4k distinct shapes per tool across
// 8 tools, so the default leaves ample headroom while bounding a hostile
// campaign of all-distinct programs to ~tens of MB.
const DefaultCacheCapacity = 1 << 16

// Cache is a campaign-global instrumentation cache: one instrumented program
// per (instrumentation profile, program fingerprint), shared by any number
// of engines and goroutines. Lookups stripe across cacheShardCount
// mutex-guarded shards keyed by fingerprint prefix; instrumentation itself
// runs outside the shard lock under a per-entry sync.Once, so N workers
// hitting the same fingerprint instrument exactly once while other shards
// stay available (single-flight).
//
// The cache is capacity-bounded. When the owning shard is full, a new
// fingerprint is not admitted: the requesting engine instruments inline and
// the result is not retained — the campaign degrades to uncached throughput
// for the overflow tail instead of deadlocking or evicting hot entries.
type Cache struct {
	capPerShard int
	shards      [cacheShardCount]cacheShard

	// profMu guards the profile registry. Profile configurations (the
	// rt.Profile plus the instrument-time fusion flag — everything that
	// shapes the instrumented output besides the program) are interned to a
	// compact id so shard keys hash a (uint32, [16]byte) pair instead of the
	// full rt.Profile struct.
	profMu    sync.Mutex
	profIDs   map[profConfig]uint32
	prefills  atomic.Int64
	overflows atomic.Int64
}

type profConfig struct {
	profile rt.Profile
	fused   bool
}

type cacheShard struct {
	mu sync.Mutex
	m  map[cacheKey]*cacheEntry
}

type cacheKey struct {
	pid uint32
	fp  prog.Fingerprint
}

// cacheEntry is one instrumented program; the Once makes concurrent first
// requests for the same key instrument exactly once.
type cacheEntry struct {
	once sync.Once
	p    *prog.Program
}

// NewCache returns a cache bounded to roughly capacity instrumented
// programs (<= 0 selects DefaultCacheCapacity). The bound is enforced per
// shard, so a pathological fingerprint distribution can cap out a shard
// early; overflow degrades to uncached instrumentation, never an error.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	per := capacity / cacheShardCount
	if per < 1 {
		per = 1
	}
	c := &Cache{capPerShard: per, profIDs: make(map[profConfig]uint32)}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey]*cacheEntry)
	}
	return c
}

// profileID interns a profile configuration, assigning ids in first-seen
// order.
func (c *Cache) profileID(p rt.Profile, fused bool) uint32 {
	pc := profConfig{profile: p, fused: fused}
	c.profMu.Lock()
	defer c.profMu.Unlock()
	if id, ok := c.profIDs[pc]; ok {
		return id
	}
	id := uint32(len(c.profIDs))
	c.profIDs[pc] = id
	return id
}

// lookup returns the entry for (pid, fp), creating it when absent and the
// shard has room. full reports that the shard was at capacity and no entry
// exists: the caller must instrument inline without caching.
func (c *Cache) lookup(pid uint32, fp prog.Fingerprint) (ent *cacheEntry, full bool) {
	sh := &c.shards[fp[0]&(cacheShardCount-1)]
	key := cacheKey{pid: pid, fp: fp}
	sh.mu.Lock()
	ent, ok := sh.m[key]
	if !ok {
		if len(sh.m) >= c.capPerShard {
			sh.mu.Unlock()
			c.overflows.Add(1)
			return nil, true
		}
		ent = &cacheEntry{}
		sh.m[key] = ent
	}
	sh.mu.Unlock()
	return ent, false
}

// Len returns the number of cached instrumented programs across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Prefills returns the number of warm fills performed through Preinstrument
// across all engines sharing the cache.
func (c *Cache) Prefills() int64 { return c.prefills.Load() }

// Overflows returns the number of lookups rejected because the owning shard
// was at capacity.
func (c *Cache) Overflows() int64 { return c.overflows.Load() }
