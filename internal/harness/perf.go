package harness

import (
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"cecsan/internal/engine"
	"cecsan/internal/sanitizers"
	"cecsan/internal/specsim"
)

// PerfRow is one benchmark row of Table IV: runtime and memory overhead of
// each tool relative to the native baseline.
type PerfRow struct {
	Benchmark string
	// NativeSeconds is the baseline wall time (best of reps).
	NativeSeconds float64
	// NativeRSS is the baseline peak footprint in bytes.
	NativeRSS int64
	// RuntimePct and MemoryPct are overhead percentages per tool.
	RuntimePct map[sanitizers.Name]float64
	MemoryPct  map[sanitizers.Name]float64
}

// PerfTable aggregates the rows of one suite.
type PerfTable struct {
	Suite string
	Tools []sanitizers.Name
	Rows  []PerfRow
	// Engines holds each tool's pipeline counters across the whole suite
	// (native included).
	Engines map[sanitizers.Name]engine.Stats
}

// measurement is one tool's best-of-reps result on one workload.
type measurement struct {
	seconds float64
	rss     int64
	ret     uint64
}

// measure runs one workload through one tool's engine, returning the best
// wall time across reps and the peak footprint. The engine's cache means the
// program instruments once (compile time excluded); the engine runs in
// FreshRuntime mode so each rep gets a fresh sanitizer runtime AND a fresh
// address space, preserving the paper's fresh-process-per-rep measurement
// semantics (sanitizer state is per-process, and so is the page-fault
// profile the RSS model charges).
func measure(eng *engine.Engine, w specsim.Workload, reps int) (measurement, error) {
	p := w.Build()
	best := measurement{seconds: math.Inf(1)}
	for r := 0; r < reps; r++ {
		m, err := eng.NewMachine(p)
		if err != nil {
			return measurement{}, err
		}
		start := time.Now()
		res := m.Run()
		dur := time.Since(start).Seconds()
		if res.Violation != nil {
			return measurement{}, fmt.Errorf("harness: %s under %s reported: %v", w.Name, eng.Tool(), res.Violation)
		}
		if res.Fault != nil || res.Err != nil {
			return measurement{}, fmt.Errorf("harness: %s under %s failed: %v%v", w.Name, eng.Tool(), res.Fault, res.Err)
		}
		if dur < best.seconds {
			best.seconds = dur
			best.rss = res.Stats.PeakRSS
			best.ret = res.Ret
		}
	}
	return best, nil
}

// EvaluatePerf measures every workload under native plus the listed tools
// and returns the overhead table. reps <= 0 defaults to 3.
func EvaluatePerf(ws []specsim.Workload, tools []sanitizers.Name, reps int) (*PerfTable, error) {
	if reps <= 0 {
		reps = 3
	}
	table := &PerfTable{Tools: tools, Engines: make(map[sanitizers.Name]engine.Stats)}
	if len(ws) > 0 {
		table.Suite = ws[0].Suite
	}
	// One engine per tool for the whole suite: instrumentation is cached
	// across reps, execution stays fresh-per-rep.
	engines := make(map[sanitizers.Name]*engine.Engine, len(tools)+1)
	for _, tool := range append([]sanitizers.Name{sanitizers.Native}, tools...) {
		if _, ok := engines[tool]; ok {
			continue
		}
		eng, err := engine.New(tool, engine.Options{FreshRuntime: true, Obs: Obs})
		if err != nil {
			return nil, err
		}
		engines[tool] = eng
	}
	for _, w := range ws {
		if Verbose {
			fmt.Fprintf(os.Stderr, "  %-18s native...", w.Name)
		}
		base, err := measure(engines[sanitizers.Native], w, reps)
		if err != nil {
			return nil, err
		}
		if Verbose {
			fmt.Fprintf(os.Stderr, " %.0fms", base.seconds*1000)
		}
		row := PerfRow{
			Benchmark:     w.Name,
			NativeSeconds: base.seconds,
			NativeRSS:     base.rss,
			RuntimePct:    make(map[sanitizers.Name]float64, len(tools)),
			MemoryPct:     make(map[sanitizers.Name]float64, len(tools)),
		}
		for _, tool := range tools {
			if Verbose {
				fmt.Fprintf(os.Stderr, " %s...", tool)
			}
			m, err := measure(engines[tool], w, reps)
			if err != nil {
				return nil, err
			}
			if Verbose {
				fmt.Fprintf(os.Stderr, " %.0fms", m.seconds*1000)
			}
			if m.ret != base.ret {
				return nil, fmt.Errorf("harness: %s under %s computed %d, native computed %d (instrumentation changed semantics)",
					w.Name, tool, m.ret, base.ret)
			}
			row.RuntimePct[tool] = 100 * (m.seconds/base.seconds - 1)
			row.MemoryPct[tool] = 100 * (float64(m.rss)/float64(base.rss) - 1)
		}
		table.Rows = append(table.Rows, row)
		if Verbose {
			fmt.Fprintln(os.Stderr)
		}
	}
	for tool, eng := range engines {
		table.Engines[tool] = eng.Stats()
	}
	return table, nil
}

// Verbose enables per-cell progress logging on stderr during EvaluatePerf.
var Verbose bool

// Average returns the arithmetic-mean overhead of one tool.
func (t *PerfTable) Average(tool sanitizers.Name, memory bool) float64 {
	var sum float64
	for _, r := range t.Rows {
		if memory {
			sum += r.MemoryPct[tool]
		} else {
			sum += r.RuntimePct[tool]
		}
	}
	return sum / float64(len(t.Rows))
}

// Geomean returns the geometric mean of one tool's overhead percentages
// (the paper's second aggregate row). Values below 0.1% clamp to 0.1% so a
// near-zero row cannot zero the product.
func (t *PerfTable) Geomean(tool sanitizers.Name, memory bool) float64 {
	var logSum float64
	for _, r := range t.Rows {
		v := r.RuntimePct[tool]
		if memory {
			v = r.MemoryPct[tool]
		}
		if v < 0.1 {
			v = 0.1
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(t.Rows)))
}

// FormatTable4 renders the full per-benchmark overhead table (Table IV).
func FormatTable4(t *PerfTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV: Performance Overhead Comparison on SPEC%s-like workloads\n", t.Suite)
	fmt.Fprintf(&b, "%-18s", "Benchmark")
	for _, tool := range t.Tools {
		fmt.Fprintf(&b, " rt:%-10s", tool)
	}
	for _, tool := range t.Tools {
		fmt.Fprintf(&b, " mem:%-9s", tool)
	}
	b.WriteString("  native\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-18s", r.Benchmark)
		for _, tool := range t.Tools {
			fmt.Fprintf(&b, " %12.1f%%", r.RuntimePct[tool])
		}
		for _, tool := range t.Tools {
			fmt.Fprintf(&b, " %12.1f%%", r.MemoryPct[tool])
		}
		fmt.Fprintf(&b, "  %6.0fms\n", r.NativeSeconds*1000)
	}
	writeAgg := func(label string, f func(sanitizers.Name, bool) float64) {
		fmt.Fprintf(&b, "%-18s", label)
		for _, tool := range t.Tools {
			fmt.Fprintf(&b, " %12.1f%%", f(tool, false))
		}
		for _, tool := range t.Tools {
			fmt.Fprintf(&b, " %12.1f%%", f(tool, true))
		}
		b.WriteString("\n")
	}
	writeAgg("Average", t.Average)
	writeAgg("Geometric Mean", t.Geomean)
	return b.String()
}

// FormatTable5 renders the aggregate-only view the paper uses for SPEC2017
// (Table V).
func FormatTable5(t *PerfTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table V: Performance Overhead Comparison on SPEC%s-like workloads\n", t.Suite)
	fmt.Fprintf(&b, "%-28s %-12s %s\n", "Performance", "Average", "Geometric Mean")
	for _, tool := range t.Tools {
		fmt.Fprintf(&b, "Runtime Overhead  %-10s %10.1f%% %10.1f%%\n", tool, t.Average(tool, false), t.Geomean(tool, false))
	}
	for _, tool := range t.Tools {
		fmt.Fprintf(&b, "Memory Overhead   %-10s %10.1f%% %10.1f%%\n", tool, t.Average(tool, true), t.Geomean(tool, true))
	}
	return b.String()
}
