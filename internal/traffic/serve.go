package traffic

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cecsan/internal/engine"
	"cecsan/internal/obs"
	"cecsan/internal/sanitizers"
	"cecsan/prog"
)

// ServeConfig configures one campaign run.
type ServeConfig struct {
	// Spec is the validated workload spec.
	Spec *Spec
	// Seed, when nonzero, overrides the spec's seed.
	Seed uint64
	// Workers sizes the execution pool (<= 0 selects GOMAXPROCS).
	Workers int
	// MaxRequests, when nonzero, overrides the spec's max_requests bound.
	MaxRequests int
	// Duration, when nonzero, stops admission after this much wall time —
	// the bounded campaign mode CI smokes use.
	Duration time.Duration
	// QueueDepth sizes the admission queue (<= 0 = 4x workers). When the
	// producer runs open-loop (Speedup > 0) a full queue sheds the
	// request; closed-loop the producer blocks instead.
	QueueDepth int
	// Speedup > 0 replays the spec's virtual arrival schedule compressed
	// by that factor (open-loop: overload sheds). <= 0 runs closed-loop:
	// requests are admitted as fast as workers drain them, which is the
	// throughput-measurement mode.
	Speedup float64
	// Obs, when set, registers per-class latency histograms, percentile
	// gauges and deadline/shed counters, and is passed to the engines.
	Obs *obs.Observer
	// Stop, when set, ends admission early (signal handling in cmd/serve).
	Stop <-chan struct{}
	// Progress, when set, is called with the processed-request count every
	// 256 completions.
	Progress func(done int)
}

// ClassStats is one class's campaign accounting.
type ClassStats struct {
	Class          string  `json:"class"`
	Tool           string  `json:"tool"`
	Generated      int64   `json:"generated"`
	Admitted       int64   `json:"admitted"`
	Shed           int64   `json:"shed"`
	Completed      int64   `json:"completed"`
	Faults         int64   `json:"faults"`
	Detected       int64   `json:"detected"`
	DeadlineMisses int64   `json:"deadline_misses"`
	P50us          int64   `json:"p50_us"`
	P95us          int64   `json:"p95_us"`
	P99us          int64   `json:"p99_us"`
	MeanLatencyUS  float64 `json:"mean_latency_us"`
}

// ServeResult is the campaign summary (the BENCH_serve.json payload,
// minus the run metadata cmd/serve adds).
type ServeResult struct {
	Seed           uint64        `json:"seed"`
	Workers        int           `json:"workers"`
	Speedup        float64       `json:"speedup"`
	Elapsed        time.Duration `json:"-"`
	ElapsedSec     float64       `json:"elapsed_sec"`
	Generated      int64         `json:"generated"`
	Admitted       int64         `json:"admitted"`
	Shed           int64         `json:"shed"`
	Completed      int64         `json:"completed"`
	Faults         int64         `json:"faults"`
	Detected       int64         `json:"detected"`
	DeadlineMisses int64         `json:"deadline_misses"`
	RequestsPerSec float64       `json:"requests_per_sec"`
	CacheHitRate   float64       `json:"cache_hit_rate"`
	StreamDigest   string        `json:"stream_digest"`
	Classes        []ClassStats  `json:"classes"`
}

// classCounters is one class's live accounting. Counters are atomics
// because workers of every class share the pool; the histogram is the
// lock-free obs histogram.
type classCounters struct {
	generated      atomic.Int64
	admitted       atomic.Int64
	shed           atomic.Int64
	completed      atomic.Int64
	faults         atomic.Int64
	detected       atomic.Int64
	deadlineMisses atomic.Int64
	lat            *obs.Histogram
}

// queued is one admitted request plus its admission timestamp; latency is
// measured from admission, so queue wait counts against the deadline the
// way it would in a real serving system.
type queued struct {
	req *Request
	at  time.Time
}

// Serve runs a campaign: a single producer walks the deterministic
// request stream and admits into a bounded queue; Workers goroutines
// drain it through per-class engines sharing one instrumentation cache.
// The request stream (and its digest) is independent of Workers,
// QueueDepth and Speedup — only scheduling and latency vary.
func Serve(cfg ServeConfig) (*ServeResult, error) {
	spec := cfg.Spec
	stream, err := NewStream(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.MaxRequests > 0 {
		stream.SetLimit(cfg.MaxRequests)
	}
	seed := spec.Seed
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * workers
	}

	// One engine per class carries that class's budgets; all classes share
	// one campaign cache so cross-class variants of the same program (if
	// any) and repeat requests hit instrumentation cache.
	cache := engine.NewCache(0)
	engines := make([]*engine.Engine, len(spec.Clients))
	counters := make([]*classCounters, len(spec.Clients))
	for i := range spec.Clients {
		c := &spec.Clients[i]
		eng, err := engine.New(sanitizers.Name(c.Tool), engine.Options{
			Workers:         workers,
			MaxInstructions: c.Budget.MaxSteps,
			WallBudget:      time.Duration(c.Budget.WallMS * float64(time.Millisecond)),
			HeapBudget:      c.Budget.HeapBytes,
			Seed:            seed,
			RuntimeSeed:     seed,
			Obs:             cfg.Obs,
			Cache:           cache,
		})
		if err != nil {
			return nil, fmt.Errorf("traffic: client %q: %w", c.ID, err)
		}
		engines[i] = eng
		cc := &classCounters{}
		if cfg.Obs != nil {
			cc.lat = cfg.Obs.Registry.Histogram("traffic_latency_us", obs.L("class", c.ID))
			registerClassGauges(cfg.Obs, c.ID, cc)
		} else {
			cc.lat = &obs.Histogram{}
		}
		counters[i] = cc

		// Warm the instrumentation cache with the class's whole variant
		// family before admission starts, like a service pre-loading its
		// handlers.
		progs := make([]*prog.Program, 0, c.Program.Variants)
		for _, v := range stream.Variants(i) {
			progs = append(progs, v.Program)
		}
		eng.Preinstrument(progs)
	}

	done := make(chan struct{})
	var closeOnce sync.Once
	stop := func() { closeOnce.Do(func() { close(done) }) }
	if cfg.Duration > 0 {
		t := time.AfterFunc(cfg.Duration, stop)
		defer t.Stop()
	}
	if cfg.Stop != nil {
		go func() {
			select {
			case <-cfg.Stop:
				stop()
			case <-done:
			}
		}()
	}

	reqCh := make(chan queued, depth)
	var processed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range reqCh {
				runOne(engines[q.req.ClassIndex], counters[q.req.ClassIndex], q)
				n := processed.Add(1)
				if cfg.Progress != nil && n%256 == 0 {
					cfg.Progress(int(n))
				}
			}
		}()
	}

	start := time.Now()
producer:
	for {
		select {
		case <-done:
			break producer
		default:
		}
		req := stream.Next()
		if req == nil {
			break
		}
		cc := counters[req.ClassIndex]
		cc.generated.Add(1)
		if cfg.Speedup > 0 {
			target := start.Add(time.Duration(float64(req.Arrival) / cfg.Speedup))
			if d := time.Until(target); d > 0 {
				select {
				case <-done:
					break producer
				case <-time.After(d):
				}
			}
			select {
			case reqCh <- queued{req: req, at: time.Now()}:
				cc.admitted.Add(1)
			default:
				// Queue full under overload: shed instead of building an
				// unbounded backlog.
				cc.shed.Add(1)
			}
		} else {
			select {
			case reqCh <- queued{req: req, at: time.Now()}:
				cc.admitted.Add(1)
			case <-done:
				break producer
			}
		}
	}
	close(reqCh)
	wg.Wait()
	elapsed := time.Since(start)
	stop()

	res := &ServeResult{
		Seed:         seed,
		Workers:      workers,
		Speedup:      cfg.Speedup,
		Elapsed:      elapsed,
		ElapsedSec:   elapsed.Seconds(),
		StreamDigest: stream.Digest(),
	}
	var hits, misses int64
	for _, eng := range engines {
		st := eng.Stats()
		hits += st.CacheHits
		misses += st.CacheMisses
	}
	if hits+misses > 0 {
		res.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	for i := range spec.Clients {
		c := &spec.Clients[i]
		cc := counters[i]
		cs := ClassStats{
			Class:          c.ID,
			Tool:           c.Tool,
			Generated:      cc.generated.Load(),
			Admitted:       cc.admitted.Load(),
			Shed:           cc.shed.Load(),
			Completed:      cc.completed.Load(),
			Faults:         cc.faults.Load(),
			Detected:       cc.detected.Load(),
			DeadlineMisses: cc.deadlineMisses.Load(),
			P50us:          cc.lat.Quantile(0.50),
			P95us:          cc.lat.Quantile(0.95),
			P99us:          cc.lat.Quantile(0.99),
		}
		if n := cc.lat.Count(); n > 0 {
			cs.MeanLatencyUS = float64(cc.lat.Sum()) / float64(n)
		}
		res.Classes = append(res.Classes, cs)
		res.Generated += cs.Generated
		res.Admitted += cs.Admitted
		res.Shed += cs.Shed
		res.Completed += cs.Completed
		res.Faults += cs.Faults
		res.Detected += cs.Detected
		res.DeadlineMisses += cs.DeadlineMisses
	}
	if elapsed > 0 {
		res.RequestsPerSec = float64(res.Completed+res.Faults) / elapsed.Seconds()
	}
	return res, nil
}

// runOne executes one admitted request and accounts it. A sanitizer
// detection still counts as completed (the service answered); only
// harness faults (panic, budget exhaustion) and engine errors do not.
func runOne(eng *engine.Engine, cc *classCounters, q queued) {
	res, err := eng.Run(q.req.Program, q.req.Inputs...)
	lat := time.Since(q.at)
	cc.lat.Observe(lat.Microseconds())
	if q.req.Deadline > 0 && lat > q.req.Deadline {
		cc.deadlineMisses.Add(1)
	}
	if err != nil || engine.AsFault(res.Err) != nil || res.Err != nil {
		cc.faults.Add(1)
		return
	}
	cc.completed.Add(1)
	if res.Violation != nil {
		cc.detected.Add(1)
	}
}

// registerClassGauges mirrors a class's counters and latency percentiles
// into the obs registry, so a live /metrics scrape sees the campaign.
func registerClassGauges(o *obs.Observer, id string, cc *classCounters) {
	l := obs.L("class", id)
	reg := o.Registry
	gauge := func(name string, fn func() int64) {
		reg.GaugeFunc(name, func() float64 { return float64(fn()) }, l)
	}
	gauge("traffic_generated", cc.generated.Load)
	gauge("traffic_admitted", cc.admitted.Load)
	gauge("traffic_shed", cc.shed.Load)
	gauge("traffic_completed", cc.completed.Load)
	gauge("traffic_faults", cc.faults.Load)
	gauge("traffic_detected", cc.detected.Load)
	gauge("traffic_deadline_misses", cc.deadlineMisses.Load)
	gauge("traffic_latency_p50_us", func() int64 { return cc.lat.Quantile(0.50) })
	gauge("traffic_latency_p95_us", func() int64 { return cc.lat.Quantile(0.95) })
	gauge("traffic_latency_p99_us", func() int64 { return cc.lat.Quantile(0.99) })
}
