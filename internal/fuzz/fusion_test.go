package fuzz

import (
	"fmt"
	"strings"
	"testing"

	"cecsan/csrc"
	"cecsan/internal/engine"
	"cecsan/internal/interp"
	"cecsan/internal/sanitizers"
)

// TestFusedMatchesUnfused is the superinstruction equivalence property:
// across a seeded generated corpus and a spread of sanitizer models, an
// engine with check/access fusion enabled (the default) and one with
// -DisableFusion must be observationally identical — same violation, fault,
// error and return value, and the same complete interp.Stats (fusion
// advances the instruction counter for the fused tail, executes the same
// check, and charges the same allocator traffic, so even ChecksExecuted,
// DegradedAllocs and the temporal counters match exactly).
func TestFusedMatchesUnfused(t *testing.T) {
	tools := []sanitizers.Name{
		sanitizers.CECSan, sanitizers.CECSanHardened, sanitizers.ASan,
		sanitizers.HWASan, sanitizers.SoftBound,
	}
	const seed, corpus = 0xF05E, 80

	mk := func(tool sanitizers.Name, disable bool) *engine.Engine {
		eng, err := engine.New(tool, engine.Options{
			Seed: seed, RuntimeSeed: seed, DisableFusion: disable,
		})
		if err != nil {
			t.Fatalf("engine.New(%s): %v", tool, err)
		}
		return eng
	}

	for _, tool := range tools {
		t.Run(string(tool), func(t *testing.T) {
			fused, unfused := mk(tool, false), mk(tool, true)
			compiled := 0
			for i := 0; i < corpus; i++ {
				c := Generate(caseSeed(seed, i))
				p, err := csrc.Compile(c.Source)
				if err != nil {
					continue // generator emitted a shape this tool set can't compile; fine
				}
				compiled++
				rf, err := fused.Run(p, c.Inputs...)
				if err != nil {
					t.Fatalf("seed %d fused run: %v", i, err)
				}
				ru, err := unfused.Run(p, c.Inputs...)
				if err != nil {
					t.Fatalf("seed %d unfused run: %v", i, err)
				}
				if rf.Stats != ru.Stats {
					t.Fatalf("seed %d: stats diverge under fusion\nfused:   %+v\nunfused: %+v", i, rf.Stats, ru.Stats)
				}
				if rf.Ret != ru.Ret {
					t.Fatalf("seed %d: return value %d (fused) vs %d (unfused)", i, rf.Ret, ru.Ret)
				}
				if got, want := render(rf), render(ru); got != want {
					t.Fatalf("seed %d: outcome diverges under fusion\nfused:   %s\nunfused: %s", i, got, want)
				}
			}
			if compiled == 0 {
				t.Fatal("corpus compiled zero cases; the property was never exercised")
			}
		})
	}
}

// render flattens a result's externally visible outcome — the report, crash
// or error a harness would classify — into a comparable string.
func render(res *interp.Result) string {
	var b strings.Builder
	if res.Violation != nil {
		fmt.Fprintf(&b, "violation{%s %s@%d %s}", res.Violation.Kind, res.Violation.Func, res.Violation.PC, res.Violation.Error())
	}
	if res.Fault != nil {
		fmt.Fprintf(&b, "fault{%v}", res.Fault)
	}
	if res.Err != nil {
		fmt.Fprintf(&b, "err{%v}", res.Err)
	}
	if b.Len() == 0 {
		return "clean"
	}
	return b.String()
}
