// Command fuzz runs a differential fuzzing campaign: seeded random
// programs with ground-truth bug injection, executed across every
// sanitizer in the registry, with outcomes classified against the oracle
// (internal/fuzz). A campaign is deterministic in (-seed, -count): two
// runs produce byte-identical -json records.
//
// Usage:
//
//	fuzz -seed 1 -count 1000 [-workers N] [-json report.json]
//	     [-bench BENCH_fuzz.json] [-repro dir] [-progress]
//	fuzz -emit 42                 # print the program for one case seed
//
// Exit status 1 when the campaign surfaces findings (oracle
// disagreements); their minimized reproducers land in -repro.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cecsan/internal/cliutil"
	"cecsan/internal/fuzz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fuzz:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Uint64("seed", 1, "campaign base seed")
	count := flag.Int("count", 1000, "number of generated cases")
	jsonPath := flag.String("json", "", "write the deterministic campaign record to this path")
	benchPath := flag.String("bench", "", "write throughput counters (BENCH_fuzz.json) to this path")
	reproDir := flag.String("repro", "", "write minimized .csc reproducers for findings into this directory")
	emit := flag.Uint64("emit", 0, "print the generated program for one case seed and exit")
	progress := flag.Bool("progress", false, "print campaign progress to stderr")
	workers := cliutil.WorkersFlag()
	flag.Parse()

	if *emit != 0 {
		c := fuzz.Generate(*emit)
		fmt.Print(c.Source)
		return nil
	}

	cfg := fuzz.Config{Seed: *seed, Count: *count, Workers: cliutil.ResolveWorkers(*workers)}
	if *progress {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "fuzz: %d/%d cases\n", done, total)
		}
	}
	runner, err := fuzz.NewRunner(cfg)
	if err != nil {
		return err
	}
	rep, err := runner.Campaign()
	if err != nil {
		return err
	}

	fmt.Printf("fuzz campaign seed=%d count=%d: %d injected, %d clean\n",
		rep.Seed, rep.Count, rep.Injected, rep.CleanN)
	for _, tr := range rep.Tools {
		fmt.Printf("  %-16s detect %-5d miss(doc) %-5d prob %d/%d  clean %-5d findings %d\n",
			tr.Tool, tr.Detected, tr.MissDoc, tr.DetectedProb, tr.MissProb, tr.Clean, tr.Findings)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
	if *benchPath != "" {
		if err := cliutil.WriteJSON(*benchPath, benchRecord(rep, runner)); err != nil {
			return err
		}
	}
	if len(rep.Findings) > 0 {
		for i, f := range rep.Findings {
			fmt.Printf("FINDING %d: tool=%s shape=%s reason=%s seed=%d %s\n",
				i, f.Tool, f.Shape, f.Reason, f.Seed, f.Detail)
			if *reproDir != "" {
				if err := os.MkdirAll(*reproDir, 0o755); err != nil {
					return err
				}
				path := filepath.Join(*reproDir, fmt.Sprintf("finding_%03d_%s.csc", i, f.Reason))
				if err := os.WriteFile(path, []byte(f.Source), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
		return fmt.Errorf("%d findings", len(rep.Findings))
	}
	fmt.Println("no findings: every outcome matched its oracle expectation")
	return nil
}

// benchRecord is the throughput side of the campaign, kept apart from the
// deterministic report because it carries timing.
func benchRecord(rep *fuzz.Report, runner *fuzz.Runner) map[string]any {
	stats := runner.Stats()
	tools := map[string]any{}
	var runs int64
	var wallSec float64
	for _, tr := range rep.Tools {
		s := stats[tr.Tool]
		runs += s.Runs
		if sec := s.Wall.Seconds(); sec > wallSec {
			wallSec = sec
		}
		tools[tr.Tool] = map[string]any{
			"detected":       tr.Detected,
			"miss_doc":       tr.MissDoc,
			"detected_prob":  tr.DetectedProb,
			"miss_prob":      tr.MissProb,
			"clean":          tr.Clean,
			"findings":       tr.Findings,
			"cases_per_sec":  s.CasesPerSec(),
			"cache_hit_rate": s.CacheHitRate(),
		}
	}
	rec := map[string]any{
		"bench": "fuzz",
		"seed":  rep.Seed,
		"count": rep.Count,
		"runs":  runs,
		"tools": tools,
	}
	if wallSec > 0 {
		rec["cases_per_sec_total"] = float64(runs) / wallSec
	}
	return rec
}
