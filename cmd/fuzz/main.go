// Command fuzz runs a differential fuzzing campaign: seeded random
// programs with ground-truth bug injection, executed across every
// sanitizer in the registry, with outcomes classified against the oracle
// (internal/fuzz). A campaign is deterministic in (-seed, -count), and with
// -faults also in the fault seed: two runs produce byte-identical -json
// records regardless of -workers.
//
// Usage:
//
//	fuzz -seed 1 -count 1000 [-workers N] [-json report.json]
//	     [-bench BENCH_fuzz.json] [-repro dir] [-progress]
//	     [-faults SEED] [-hardened] [-max-steps N] [-max-depth N]
//	     [-checkpoint f.ckpt] [-checkpoint-every N] [-resume f.ckpt]
//	     [-metrics-json m.json] [-trace t.json] [-http 127.0.0.1:0]
//	     [-profile-checks]
//	fuzz -emit 42                 # print the program for one case seed
//
// -checkpoint arms periodic durable snapshots: the campaign runs in
// -checkpoint-every-case chunks (default 500) and atomically rewrites the
// snapshot between chunks. -resume restores one (validated against seed,
// fault seed, hardened mode, count and tool set) and continues from its
// case cursor; the resumed report — case digest included — is
// byte-identical to an uninterrupted run's. -resume implies -checkpoint
// to the same path unless one is given, so a resumed campaign keeps
// snapshotting.
//
// The observability flags attach internal/obs to every engine in the
// fan-out; -http serves live metric snapshots and pprof while the campaign
// runs. Campaign records stay byte-identical with or without them.
//
// Exit status separates verdicts from harness health:
//
//	0  every outcome matched its oracle expectation
//	1  findings (oracle disagreements); minimized reproducers land in -repro
//	2  harness faults (recovered panics, budget exhaustions) or internal
//	   errors — the campaign itself is suspect, whatever the findings say
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"cecsan/internal/checkpoint"
	"cecsan/internal/cliutil"
	"cecsan/internal/fuzz"
	"cecsan/internal/obs"
)

// Exit codes: findings are a verdict about the sanitizers; harness faults
// and internal errors are a verdict about the harness. The latter dominates.
const (
	exitOK       = 0
	exitFindings = 1
	exitHarness  = 2
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuzz:", err)
	}
	os.Exit(code)
}

func run() (int, error) {
	seed := flag.Uint64("seed", 1, "campaign base seed")
	count := flag.Int("count", 1000, "number of generated cases")
	jsonPath := flag.String("json", "", "write the deterministic campaign record to this path")
	benchPath := flag.String("bench", "", "write throughput counters (BENCH_fuzz.json) to this path")
	reproDir := flag.String("repro", "", "write minimized .csc reproducers for findings into this directory")
	emit := flag.Uint64("emit", 0, "print the generated program for one case seed and exit")
	progress := flag.Bool("progress", false, "print campaign progress to stderr")
	faults := flag.Uint64("faults", 0, "fault-injection seed: derive a deterministic fault plan per case (0 = off)")
	hardened := flag.Bool("hardened", false, "swap CECSan-family tools for their temporally hardened variants (reuse-window shapes become mandatory detections)")
	maxSteps := cliutil.MaxStepsFlag()
	maxDepth := cliutil.MaxDepthFlag()
	workers := cliutil.WorkersFlag()
	ckptPath := flag.String("checkpoint", "", "write a durable campaign snapshot to this path between chunks")
	ckptEvery := flag.Int("checkpoint-every", 0, "snapshot chunk size in cases (0 = 500)")
	resumePath := flag.String("resume", "", "restore this snapshot and continue from its case cursor")
	crashAfter := flag.Int("crash-after", 0, "kill -9 this process after N cases this incarnation (crash-injection testing; 0 = off)")
	obsFlags := cliutil.ObsFlagsCmd()
	flag.Parse()

	if *emit != 0 {
		c := fuzz.Generate(*emit)
		fmt.Print(c.Source)
		return exitOK, nil
	}

	o, srv, err := obsFlags.Build()
	if err != nil {
		return exitHarness, err
	}
	if *progress && o == nil {
		// The status line reads its rates from the registry, so -progress
		// alone still attaches a (registry-only) observer.
		o = obs.New()
	}

	var resume *fuzz.CampaignCheckpoint
	if *resumePath != "" {
		var ck fuzz.CampaignCheckpoint
		if err := checkpoint.Load(*resumePath, checkpoint.KindFuzz, &ck); err != nil {
			return exitHarness, fmt.Errorf("resume: %w", err)
		}
		resume = &ck
		if *ckptPath == "" {
			// A resumed campaign keeps snapshotting where it left off.
			*ckptPath = *resumePath
		}
	}

	cfg := fuzz.Config{
		Seed:            *seed,
		Count:           *count,
		Workers:         cliutil.ResolveWorkers(*workers),
		MaxInstructions: *maxSteps,
		MaxCallDepth:    *maxDepth,
		FaultSeed:       *faults,
		Hardened:        *hardened,
		Obs:             o,
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		Resume:          resume,
	}
	campaignStart := time.Now()
	if *progress {
		cfg.Progress = func(done, total int) {
			cps, _ := o.Registry.Value("fuzz_cases_per_sec")
			hit, _ := o.Registry.Value("fuzz_cache_hit_rate")
			fts, _ := o.Registry.Value("fuzz_faults_total")
			eta := "?"
			if done > 0 {
				left := time.Duration(float64(time.Since(campaignStart)) * float64(total-done) / float64(done))
				eta = left.Round(time.Second).String()
			}
			fmt.Fprintf(os.Stderr, "\rfuzz: %d/%d cases  %.0f runs/s  cache %.1f%%  faults %.0f  ETA %s   ",
				done, total, cps, 100*hit, fts, eta)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	if *crashAfter > 0 {
		// Crash injection for resume testing: die hard (no deferred cleanup,
		// no final snapshot) once this incarnation has processed its quota.
		// The base is the resume cursor, so a restarted incarnation makes
		// progress before dying again instead of re-crashing in place.
		base := 0
		if resume != nil {
			base = resume.NextCase
		}
		inner := cfg.Progress
		cfg.Progress = func(done, total int) {
			if inner != nil {
				inner(done, total)
			}
			if done-base >= *crashAfter {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}
	runner, err := fuzz.NewRunner(cfg)
	if err != nil {
		return exitHarness, err
	}
	rep, err := runner.Campaign()
	if err != nil {
		return exitHarness, err
	}

	fmt.Printf("fuzz campaign seed=%d count=%d: %d injected, %d clean\n",
		rep.Seed, rep.Count, rep.Injected, rep.CleanN)
	if rep.FaultSeed != 0 {
		fmt.Printf("  fault injection on (fault_seed=%d)\n", rep.FaultSeed)
	}
	if rep.Hardened {
		fmt.Println("  hardened profiles (CECSan-family temporal mitigations on)")
	}
	for _, tr := range rep.Tools {
		fmt.Printf("  %-16s detect %-5d miss(doc) %-5d prob %d/%d  clean %-5d pressure %-5d faults %-3d findings %d\n",
			tr.Tool, tr.Detected, tr.MissDoc, tr.DetectedProb, tr.MissProb, tr.Clean, tr.Pressure, tr.Faults, tr.Findings)
	}

	if *jsonPath != "" {
		if err := cliutil.WriteJSON(*jsonPath, rep); err != nil {
			return exitHarness, err
		}
	}
	if *benchPath != "" {
		if err := cliutil.WriteJSON(*benchPath, benchRecord(rep, runner)); err != nil {
			return exitHarness, err
		}
	}
	for i, f := range rep.Findings {
		fmt.Printf("FINDING %d: tool=%s shape=%s reason=%s seed=%d %s\n",
			i, f.Tool, f.Shape, f.Reason, f.Seed, f.Detail)
		if *reproDir != "" {
			if err := os.MkdirAll(*reproDir, 0o755); err != nil {
				return exitHarness, err
			}
			path := filepath.Join(*reproDir, fmt.Sprintf("finding_%03d_%s.csc", i, f.Reason))
			if err := os.WriteFile(path, []byte(f.Source), 0o644); err != nil {
				return exitHarness, err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	for _, fc := range rep.FaultCases {
		fmt.Printf("HARNESS FAULT: tool=%s shape=%s class=%s seed=%d\n",
			fc.Tool, fc.Shape, fc.Class, fc.Seed)
	}
	if err := obsFlags.Finish(o, srv, 0); err != nil {
		return exitHarness, err
	}
	switch {
	case rep.HarnessFaults > 0:
		return exitHarness, fmt.Errorf("%d harness faults (and %d findings)",
			rep.HarnessFaults, len(rep.Findings))
	case len(rep.Findings) > 0:
		return exitFindings, fmt.Errorf("%d findings", len(rep.Findings))
	}
	fmt.Println("no findings: every outcome matched its oracle expectation")
	return exitOK, nil
}

// benchRecord is the throughput side of the campaign, kept apart from the
// deterministic report because it carries timing.
func benchRecord(rep *fuzz.Report, runner *fuzz.Runner) map[string]any {
	stats := runner.Stats()
	tools := map[string]any{}
	var runs int64
	var wallSec float64
	for _, tr := range rep.Tools {
		s := stats[tr.Tool]
		runs += s.Runs
		if sec := s.Wall.Seconds(); sec > wallSec {
			wallSec = sec
		}
		tools[tr.Tool] = map[string]any{
			"detected":       tr.Detected,
			"miss_doc":       tr.MissDoc,
			"detected_prob":  tr.DetectedProb,
			"miss_prob":      tr.MissProb,
			"clean":          tr.Clean,
			"pressure":       tr.Pressure,
			"faults":         tr.Faults,
			"findings":       tr.Findings,
			"cases_per_sec":  s.CasesPerSec(),
			"cache_hit_rate": s.CacheHitRate(),
		}
	}
	rec := map[string]any{
		"bench": "fuzz",
		"seed":  rep.Seed,
		"count": rep.Count,
		"runs":  runs,
		"tools": tools,
	}
	if rep.FaultSeed != 0 {
		rec["fault_seed"] = rep.FaultSeed
		rec["harness_faults"] = rep.HarnessFaults
	}
	if wallSec > 0 {
		rec["cases_per_sec_total"] = float64(runs) / wallSec
	}
	return rec
}
