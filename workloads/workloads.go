// Package workloads is the public facade over the paper's experiment
// suites: the Juliet-style security cases (Tables I/II), the Linux-Flaw CVE
// scenarios (Table III) and the SPEC-like performance workloads (Tables
// IV/V). It lets downstream users regenerate or extend the evaluation
// without touching internal packages.
package workloads

import (
	"cecsan/internal/flaws"
	"cecsan/internal/juliet"
	"cecsan/internal/specsim"
)

// JulietCase is one generated security test case (good/bad program pair).
type JulietCase = juliet.Case

// CWE identifies a Juliet weakness class.
type CWE = juliet.CWE

// The evaluated CWE classes.
const (
	CWE121 = juliet.CWE121
	CWE122 = juliet.CWE122
	CWE124 = juliet.CWE124
	CWE126 = juliet.CWE126
	CWE127 = juliet.CWE127
	CWE415 = juliet.CWE415
	CWE416 = juliet.CWE416
	CWE761 = juliet.CWE761
)

// JulietCWEs lists the CWEs in Table I order.
func JulietCWEs() []CWE { return juliet.AllCWEs() }

// JulietTableI returns the paper's per-CWE case counts.
func JulietTableI() map[CWE]int { return juliet.TableI() }

// GenerateJuliet deterministically generates n cases of one CWE.
func GenerateJuliet(cwe CWE, n int) ([]*JulietCase, error) { return juliet.Generate(cwe, n) }

// JulietSuite generates the full 15,752-case Table I suite.
func JulietSuite() ([]*JulietCase, error) { return juliet.Suite() }

// Flaw is one Table III CVE scenario.
type Flaw = flaws.Flaw

// LinuxFlaws returns the ten Table III scenarios.
func LinuxFlaws() []Flaw { return flaws.All() }

// SpecWorkload is one SPEC-like performance workload.
type SpecWorkload = specsim.Workload

// Spec2006 returns the Table IV workload set.
func Spec2006() []SpecWorkload { return specsim.Spec2006() }

// Spec2017 returns the Table V workload set.
func Spec2017() []SpecWorkload { return specsim.Spec2017() }

// SpecSmoke returns scaled-down variants for quick runs.
func SpecSmoke() []SpecWorkload { return specsim.Smoke() }
