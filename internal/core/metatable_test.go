package core

import (
	"sync"
	"testing"
	"testing/quick"

	"cecsan/internal/tagptr"
)

func newTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable(tagptr.X8664)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tbl
}

func TestNewTableReservedEntry(t *testing.T) {
	tbl := newTable(t)
	low, high := tbl.Load(0)
	if low != 0 {
		t.Errorf("reserved entry low = %#x, want 0 (minimum base)", low)
	}
	if high != reservedHigh {
		t.Errorf("reserved entry high = %#x, want %#x (very high address)", high, reservedHigh)
	}
	if tbl.Capacity() != 1<<17 {
		t.Errorf("capacity = %d, want 2^17 (prototype configuration)", tbl.Capacity())
	}
}

func TestNewTableRejectsBadArch(t *testing.T) {
	if _, err := NewTable(tagptr.Arch{Name: "bad", AddrBits: 47, TagBits: 16}); err == nil {
		t.Fatal("NewTable accepted an inconsistent arch")
	}
}

func TestAllocateSequentialIndices(t *testing.T) {
	tbl := newTable(t)
	for want := uint64(1); want <= 5; want++ {
		idx, ok := tbl.Allocate(0x1000*want, 0x1000*want+64, false)
		if !ok || idx != want {
			t.Fatalf("Allocate #%d = (%d,%v), want (%d,true): GMI starts at 1 and increments", want, idx, ok, want)
		}
		low, high := tbl.Load(idx)
		if low != 0x1000*want || high != 0x1000*want+64 {
			t.Fatalf("entry %d bounds = [%#x,%#x)", idx, low, high)
		}
	}
}

func TestFreeInvalidatesEntry(t *testing.T) {
	tbl := newTable(t)
	idx, _ := tbl.Allocate(0x1000, 0x1040, false)
	tbl.Free(idx)
	low, high := tbl.Load(idx)
	if low != Invalid {
		t.Errorf("freed entry low = %#x, want INVALID %#x (§II.B.4)", low, Invalid)
	}
	if high != 0 {
		t.Errorf("freed entry high = %#x, want 0", high)
	}
}

// TestFreeListLIFOReuse reproduces Figure 2's encoded free list: freed
// entries are reused immediately (LIFO), and GMI is restored after reuse so
// no table space leaks.
func TestFreeListLIFOReuse(t *testing.T) {
	tbl := newTable(t)
	a, _ := tbl.Allocate(0x1000, 0x1010, false) // 1
	b, _ := tbl.Allocate(0x2000, 0x2010, false) // 2
	c, _ := tbl.Allocate(0x3000, 0x3010, false) // 3
	_ = a

	tbl.Free(b)
	tbl.Free(c)

	// LIFO: c is the free-list head, then b, then the virgin region at 4.
	r1, _ := tbl.Allocate(0x4000, 0x4010, false)
	if r1 != c {
		t.Fatalf("first reuse = %d, want %d (LIFO head)", r1, c)
	}
	r2, _ := tbl.Allocate(0x5000, 0x5010, false)
	if r2 != b {
		t.Fatalf("second reuse = %d, want %d", r2, b)
	}
	// Free list drained: next allocation must resume at the virgin index 4.
	r3, _ := tbl.Allocate(0x6000, 0x6010, false)
	if r3 != 4 {
		t.Fatalf("post-drain allocation = %d, want 4 (GMI restored per Figure 2)", r3)
	}
}

// TestFreeListOutOfOrder exercises the paper's offset encoding with negative
// nextID offsets (freeing an index above the current GMI).
func TestFreeListOutOfOrder(t *testing.T) {
	tbl := newTable(t)
	tbl.Allocate(0x1000, 0x1010, false) // 1
	b, _ := tbl.Allocate(0x2000, 0x2010, false)
	c, _ := tbl.Allocate(0x3000, 0x3010, false)
	tbl.Free(b) // GMI=2, b.next = 4-2-1 = 1
	tbl.Free(c) // GMI=3, c.next = 2-3-1 = -2 (negative offset)

	if r, _ := tbl.Allocate(0x4000, 0x4010, false); r != c {
		t.Fatalf("reuse = %d, want %d", r, c)
	}
	if r, _ := tbl.Allocate(0x5000, 0x5010, false); r != b {
		t.Fatalf("reuse = %d, want %d", r, b)
	}
	if r, _ := tbl.Allocate(0x6000, 0x6010, false); r != 4 {
		t.Fatalf("virgin allocation = %d, want 4", r)
	}
}

// TestFreeListProperty: under any interleaving of allocs and frees, (1) no
// two live entries share an index, (2) a drained free list resumes at the
// high-water virgin index, (3) live count is exact.
func TestFreeListProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		tbl, err := NewTable(tagptr.X8664)
		if err != nil {
			return false
		}
		live := make(map[uint64]bool)
		var liveCount int64
		for i, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				idx, ok := tbl.Allocate(uint64(i)*64+0x1000, uint64(i)*64+0x1040, false)
				if !ok {
					return false
				}
				if live[idx] {
					return false // index collision among live entries
				}
				live[idx] = true
				liveCount++
			} else {
				for idx := range live {
					tbl.Free(idx)
					delete(live, idx)
					liveCount--
					break
				}
			}
		}
		return tbl.Stats().Live == liveCount
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTableReuseKeepsHighWaterLow checks the free list's purpose (§V): heavy
// churn with few simultaneous live objects must not consume table space.
func TestTableReuseKeepsHighWaterLow(t *testing.T) {
	tbl := newTable(t)
	for i := 0; i < 100000; i++ {
		idx, ok := tbl.Allocate(0x1000, 0x1040, false)
		if !ok {
			t.Fatalf("iteration %d: table exhausted despite churn reuse", i)
		}
		tbl.Free(idx)
	}
	if hw := tbl.Stats().HighWater; hw > 2 {
		t.Fatalf("high water = %d after 100k alloc/free churn, want <= 2", hw)
	}
}

func TestTableExhaustion(t *testing.T) {
	tbl := newTable(t)
	n := tbl.Capacity()
	for i := uint64(1); i < n; i++ {
		if _, ok := tbl.Allocate(0x1000, 0x1040, false); !ok {
			t.Fatalf("premature exhaustion at %d of %d", i, n)
		}
	}
	// All 2^17-1 usable entries live: the next allocation must fall back.
	if _, ok := tbl.Allocate(0x1000, 0x1040, false); ok {
		t.Fatal("Allocate succeeded beyond capacity")
	}
	if got := tbl.Stats().Exhausted; got != 1 {
		t.Fatalf("Exhausted = %d, want 1", got)
	}
	// Freeing one entry must make the table usable again.
	tbl.Free(5)
	idx, ok := tbl.Allocate(0x9000, 0x9040, false)
	if !ok || idx != 5 {
		t.Fatalf("post-free Allocate = (%d,%v), want (5,true)", idx, ok)
	}
}

func TestReservedEntryNeverRecycled(t *testing.T) {
	tbl := newTable(t)
	tbl.Free(0) // must be a no-op
	low, high := tbl.Load(0)
	if low != 0 || high != reservedHigh {
		t.Fatal("Free(0) corrupted the reserved entry")
	}
	if idx, _ := tbl.Allocate(0x1000, 0x1040, false); idx != 1 {
		t.Fatalf("allocation after Free(0) = %d, want 1", idx)
	}
}

func TestSubFlagTracking(t *testing.T) {
	tbl := newTable(t)
	obj, _ := tbl.Allocate(0x1000, 0x1100, false)
	sub, _ := tbl.Allocate(0x1000, 0x1010, true)
	if tbl.IsSub(obj) {
		t.Error("object entry misflagged as sub-object")
	}
	if !tbl.IsSub(sub) {
		t.Error("sub-object entry not flagged")
	}
	// Recycling a sub entry as an object entry must clear the flag.
	tbl.Free(sub)
	again, _ := tbl.Allocate(0x2000, 0x2100, false)
	if again != sub {
		t.Fatalf("expected reuse of %d, got %d", sub, again)
	}
	if tbl.IsSub(again) {
		t.Error("recycled entry kept stale sub flag")
	}
}

func TestTouchedBytesLazyPages(t *testing.T) {
	tbl := newTable(t)
	base := tbl.TouchedBytes()
	if base != 4096 {
		t.Fatalf("fresh table TouchedBytes = %d, want one page", base)
	}
	// ~200 entries * 24B = ~4.8KB -> 2 pages.
	for i := 0; i < 200; i++ {
		tbl.Allocate(0x1000, 0x1040, false)
	}
	if got := tbl.TouchedBytes(); got < 8192 || got > 3*4096 {
		t.Fatalf("TouchedBytes = %d, want ~2 pages", got)
	}
}

func TestTableConcurrentChurn(t *testing.T) {
	tbl := newTable(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []uint64
			for i := 0; i < 2000; i++ {
				idx, ok := tbl.Allocate(uint64(w)<<20|uint64(i), uint64(w)<<20|uint64(i+16), false)
				if !ok {
					t.Error("unexpected exhaustion")
					return
				}
				mine = append(mine, idx)
				if len(mine) > 8 {
					tbl.Free(mine[0])
					mine = mine[1:]
				}
				// Concurrent lock-free reads against writer traffic.
				tbl.Load(idx)
			}
			for _, idx := range mine {
				tbl.Free(idx)
			}
		}(w)
	}
	wg.Wait()
	if got := tbl.Stats().Live; got != 0 {
		t.Fatalf("Live = %d after balanced churn, want 0", got)
	}
}

// TestResetRestoresFreshState drives a table through an allocate/free churn,
// resets it, and asserts it is indistinguishable from a new table: same
// reserved entry, same allocation index sequence, same counters, same
// touched-page footprint. This is the invariant the execution engine's
// runtime pooling depends on.
func TestResetRestoresFreshState(t *testing.T) {
	dirty := newTable(t)
	for i := uint64(1); i <= 40; i++ {
		if _, ok := dirty.Allocate(0x1000*i, 0x1000*i+64, i%3 == 0); !ok {
			t.Fatalf("Allocate #%d failed", i)
		}
	}
	for _, k := range []uint64{3, 7, 7, 12, 40, 1} {
		dirty.Free(k)
	}
	dirty.Reset()

	fresh := newTable(t)
	if got, want := dirty.Stats(), fresh.Stats(); got != want {
		t.Errorf("Stats after Reset = %+v, want %+v", got, want)
	}
	if got, want := dirty.TouchedBytes(), fresh.TouchedBytes(); got != want {
		t.Errorf("TouchedBytes after Reset = %d, want %d", got, want)
	}
	low, high := dirty.Load(0)
	if low != 0 || high != reservedHigh {
		t.Errorf("reserved entry after Reset = [%#x,%#x), want [0,%#x)", low, high, reservedHigh)
	}
	// Replaying the same allocation sequence on both tables must produce
	// identical indices, bounds and sub flags.
	for i := uint64(1); i <= 20; i++ {
		gi, gok := dirty.Allocate(0x2000*i, 0x2000*i+32, i%2 == 0)
		wi, wok := fresh.Allocate(0x2000*i, 0x2000*i+32, i%2 == 0)
		if gi != wi || gok != wok {
			t.Fatalf("replay Allocate #%d: reset table gave (%d,%v), fresh gave (%d,%v)", i, gi, gok, wi, wok)
		}
		glow, ghigh := dirty.Load(gi)
		wlow, whigh := fresh.Load(wi)
		if glow != wlow || ghigh != whigh {
			t.Fatalf("replay entry %d bounds differ: [%#x,%#x) vs [%#x,%#x)", gi, glow, ghigh, wlow, whigh)
		}
		if dirty.IsSub(gi) != fresh.IsSub(wi) {
			t.Fatalf("replay entry %d sub flag differs", gi)
		}
	}
	if got, want := dirty.Stats(), fresh.Stats(); got != want {
		t.Errorf("Stats after replay = %+v, want %+v", got, want)
	}
}

// TestResetPreservesReserveLast checks the CHAINED-tag reservation, which is
// construction-time configuration, survives a Reset.
func TestResetPreservesReserveLast(t *testing.T) {
	tbl := newTable(t)
	tbl.ReserveLast()
	tbl.Reset()
	limit := tbl.Capacity() - 1 // last index reserved
	var last uint64
	for {
		idx, ok := tbl.Allocate(0x1000, 0x1040, false)
		if !ok {
			break
		}
		last = idx
	}
	if last != limit-1 {
		t.Fatalf("last allocated index = %d, want %d (final entry stays reserved after Reset)", last, limit-1)
	}
}
