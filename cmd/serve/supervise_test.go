package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestChildArgs: the worker argv keeps campaign flags, loses supervision
// flags and any stale -resume, and gains -resume only once the snapshot
// file exists.
func TestChildArgs(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "serve.ckpt")
	base := []string{
		"-spec", "w.yaml", "-supervise", "-max-restarts", "3",
		"-checkpoint", ckpt, "-chaos-seed", "11", "-resume", "stale.ckpt",
	}
	want := []string{"-spec", "w.yaml", "-checkpoint", ckpt, "-chaos-seed", "11"}
	if got := childArgs(base, ckpt); !reflect.DeepEqual(got, want) {
		t.Fatalf("before snapshot exists:\ngot  %q\nwant %q", got, want)
	}

	if err := os.WriteFile(ckpt, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	want = append(want, "-resume", ckpt)
	if got := childArgs(base, ckpt); !reflect.DeepEqual(got, want) {
		t.Fatalf("after snapshot exists:\ngot  %q\nwant %q", got, want)
	}

	// Inline forms strip without eating the next argument.
	inline := []string{"-supervise=true", "-max-restarts=3", "-resume=stale.ckpt", "-workers", "4"}
	want = []string{"-workers", "4", "-resume", ckpt}
	if got := childArgs(inline, ckpt); !reflect.DeepEqual(got, want) {
		t.Fatalf("inline forms:\ngot  %q\nwant %q", got, want)
	}
}
