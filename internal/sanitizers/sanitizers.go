// Package sanitizers is the registry of every sanitizer bundle in the
// repository: CECSan itself plus the comparators of Table II and the
// performance baselines of Tables IV and V.
package sanitizers

import (
	"fmt"

	"cecsan/internal/core"
	"cecsan/internal/rt"
	"cecsan/internal/sanitizers/asan"
	"cecsan/internal/sanitizers/asanlite"
	"cecsan/internal/sanitizers/cryptsan"
	"cecsan/internal/sanitizers/hwasan"
	"cecsan/internal/sanitizers/nosan"
	"cecsan/internal/sanitizers/pacmem"
	"cecsan/internal/sanitizers/softbound"
)

// Name identifies a sanitizer in the registry.
type Name string

// Registry names.
const (
	Native    Name = "native"
	CECSan    Name = "CECSan"
	ASan      Name = "ASan"
	ASanLite  Name = "ASAN--"
	HWASan    Name = "HWASan"
	SoftBound Name = "SoftBound/CETS"
	PACMem    Name = "PACMem"
	CryptSan  Name = "CryptSan"
)

// All lists the registry names in Table II column order (native first).
func All() []Name {
	return []Name{Native, CECSan, PACMem, CryptSan, HWASan, ASan, ASanLite, SoftBound}
}

// New constructs a fresh sanitizer bundle. Every call returns an
// independent runtime: bundles are single-machine, like a process's
// sanitizer runtime.
func New(name Name) (rt.Sanitizer, error) {
	switch name {
	case Native:
		return nosan.Sanitizer(), nil
	case CECSan:
		return core.Sanitizer(core.DefaultOptions())
	case ASan:
		return asan.Sanitizer(asan.DefaultOptions()), nil
	case ASanLite:
		return asanlite.Sanitizer(), nil
	case HWASan:
		return hwasan.Sanitizer(1), nil
	case SoftBound:
		return softbound.Sanitizer(), nil
	case PACMem:
		return pacmem.Sanitizer()
	case CryptSan:
		return cryptsan.Sanitizer()
	default:
		return rt.Sanitizer{}, fmt.Errorf("sanitizers: unknown sanitizer %q", name)
	}
}
