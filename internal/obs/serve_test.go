package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServe(t *testing.T) {
	o := New()
	o.Registry.Counter("live_total", L("tool", "CECSan")).Add(42)
	o.Sites = NewSiteProfiler()
	o.Sites.ForTool("CECSan").ObserveCheck("main", 3, 8, time.Microsecond)
	srv, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	if code, body := get(t, base+"/metrics"); code != http.StatusOK ||
		!strings.Contains(body, `live_total{tool="CECSan"} 42`) {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	if code, body := get(t, base+"/metrics.json"); code != http.StatusOK ||
		!strings.Contains(body, `"live_total"`) {
		t.Fatalf("/metrics.json: %d\n%s", code, body)
	}
	if code, body := get(t, base+"/checks"); code != http.StatusOK ||
		!strings.Contains(body, "main") {
		t.Fatalf("/checks with profiling: %d\n%s", code, body)
	}
	if code, body := get(t, base+"/debug/pprof/"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d\n%s", code, body)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr)); err == nil {
		t.Fatal("server must stop serving after Close")
	}
}

func TestServeChecksWithoutProfiler(t *testing.T) {
	o := New()
	srv, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Without a site profiler, /checks explains itself with a 404.
	if code, _ := get(t, "http://"+srv.Addr+"/checks"); code != http.StatusNotFound {
		t.Fatalf("/checks without profiling: %d, want 404", code)
	}
}

func TestHealthEndpoints(t *testing.T) {
	o := New()
	srv, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	if code, body := get(t, base+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	// Readiness starts false and flips once the campaign reports ready
	// (after cache prewarm).
	if code, _ := get(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before ready: %d, want 503", code)
	}
	o.Health.SetReady(true)
	if code, body := get(t, base+"/readyz"); code != http.StatusOK || body != "ready\n" {
		t.Fatalf("/readyz after ready: %d %q", code, body)
	}
}

func TestSLOEndpoint(t *testing.T) {
	o := New()
	srv, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	// No SLO engine attached: the endpoint 404s rather than serving an
	// empty document.
	if code, _ := get(t, base+"/slo"); code != http.StatusNotFound {
		t.Fatalf("/slo without engine: %d, want 404", code)
	}

	s := NewSLO()
	c := s.Add(SLOConfig{Class: "interactive", Target: 0.95}, nil)
	c.Record(true)
	c.Record(false)
	o.SLO = s
	code, body := get(t, base+"/slo")
	if code != http.StatusOK {
		t.Fatalf("/slo: %d\n%s", code, body)
	}
	for _, want := range []string{`"class": "interactive"`, `"target": 0.95`, `"budget_used"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/slo missing %q:\n%s", want, body)
		}
	}
}
