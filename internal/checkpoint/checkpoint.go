// Package checkpoint provides durable, versioned campaign snapshots for
// the long-running drivers (cmd/serve, cmd/fuzz).
//
// A snapshot is a JSON envelope — magic string, format version, kind tag,
// payload, and a SHA-256 checksum over the payload — written with the full
// crash-durable atomic pattern: temp file in the target directory, write,
// fsync the file, rename over the target, fsync the directory. A crash at
// any point (including power loss) leaves either the previous complete
// snapshot or the new one, never a torn or empty file; a snapshot damaged
// by anything else is detected loudly at load time instead of silently
// resuming a forked campaign.
package checkpoint

import (
	"crypto/sha256"
	"encoding"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"os"
	"path/filepath"
)

const (
	magic = "cecsan-checkpoint"

	// Version is the snapshot format version. It bumps whenever the
	// envelope or any payload schema changes incompatibly; Load refuses
	// snapshots from other versions rather than guessing.
	Version = 1

	// KindServe and KindFuzz tag which driver wrote a snapshot, so a serve
	// resume can never consume a fuzz checkpoint or vice versa.
	KindServe = "serve"
	KindFuzz  = "fuzz"
)

// ErrCorrupt marks a checkpoint file that exists but cannot be trusted:
// truncated, bit-flipped, not a checkpoint at all, or carrying a payload
// that fails its checksum. Callers distinguish it from os.IsNotExist
// (no snapshot yet) with errors.Is.
var ErrCorrupt = errors.New("corrupt checkpoint")

// envelope is the on-disk frame around every snapshot payload.
type envelope struct {
	Magic    string          `json:"magic"`
	Version  int             `json:"version"`
	Kind     string          `json:"kind"`
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// Save marshals payload, wraps it in a checksummed envelope of the given
// kind, and writes it durably (atomic rename + file and directory fsync)
// to path.
func Save(path, kind string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal %s payload: %w", kind, err)
	}
	sum := sha256.Sum256(raw)
	data, err := json.Marshal(envelope{
		Magic:    magic,
		Version:  Version,
		Kind:     kind,
		Checksum: hex.EncodeToString(sum[:]),
		Payload:  raw,
	})
	if err != nil {
		return fmt.Errorf("checkpoint: marshal envelope: %w", err)
	}
	return WriteDurable(path, append(data, '\n'))
}

// Load reads the snapshot at path, verifies the envelope (magic, version,
// kind, payload checksum) and unmarshals the payload. A missing file
// surfaces as the plain os error so callers can test os.IsNotExist; every
// integrity failure wraps ErrCorrupt.
func Load(path, kind string, payload any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	if env.Magic != magic {
		return fmt.Errorf("%w: %s: not a checkpoint file", ErrCorrupt, path)
	}
	if env.Version != Version {
		return fmt.Errorf("checkpoint: %s: format version %d, this binary reads version %d", path, env.Version, Version)
	}
	if env.Kind != kind {
		return fmt.Errorf("checkpoint: %s: kind %q, want %q", path, env.Kind, kind)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.Checksum {
		return fmt.Errorf("%w: %s: payload checksum mismatch", ErrCorrupt, path)
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return fmt.Errorf("%w: %s: payload: %v", ErrCorrupt, path, err)
	}
	return nil
}

// WriteDurable writes data to path atomically and durably: temp file in
// the same directory, write, fsync, rename over the target, fsync the
// containing directory so the rename itself survives a power loss.
func WriteDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	fh, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := fh.Name()
	cleanup := func(err error) error {
		fh.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := fh.Write(data); err != nil {
		return cleanup(err)
	}
	if err := fh.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := fh.Sync(); err != nil {
		return cleanup(err)
	}
	if err := fh.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a just-renamed entry is durable.
func SyncDir(dir string) error {
	dh, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer dh.Close()
	return dh.Sync()
}

// MarshalHash serializes the internal state of a running hash (the running
// SHA-256 digests every campaign carries). All stdlib hashes implement
// encoding.BinaryMarshaler.
func MarshalHash(h hash.Hash) ([]byte, error) {
	m, ok := h.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("checkpoint: hash %T is not binary-marshalable", h)
	}
	return m.MarshalBinary()
}

// UnmarshalHash restores a running hash from state captured by MarshalHash.
func UnmarshalHash(h hash.Hash, data []byte) error {
	u, ok := h.(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("checkpoint: hash %T is not binary-unmarshalable", h)
	}
	if err := u.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("%w: digest state: %v", ErrCorrupt, err)
	}
	return nil
}
