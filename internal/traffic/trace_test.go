package traffic

import (
	"testing"

	"cecsan/internal/checkpoint"
	"cecsan/internal/obs"
)

// chaosFlightRun runs the standard chaos campaign with a flight recorder
// armed and returns the result plus the recorder.
func chaosFlightRun(t *testing.T, workers, retryMax int) (*ServeResult, *obs.FlightRecorder) {
	t.Helper()
	spec := mustParse(t, serveSpec)
	rec := obs.NewFlightRecorder(obs.FlightConfig{Budget: 4096, SampleN: 8})
	res, err := Serve(ServeConfig{
		Spec:        spec,
		Workers:     workers,
		MaxRequests: 400,
		ChaosSeed:   11,
		Resilience:  &ResilienceConfig{RetryMax: retryMax},
		Flight:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

// TestServeDigestsUnchangedByTracing is the zero-interference contract:
// arming the flight recorder must not move a single byte of either digest.
func TestServeDigestsUnchangedByTracing(t *testing.T) {
	spec := mustParse(t, serveSpec)
	run := func(rec *obs.FlightRecorder) *ServeResult {
		res, err := Serve(ServeConfig{
			Spec:        spec,
			Workers:     2,
			MaxRequests: 400,
			ChaosSeed:   11,
			Resilience:  &ResilienceConfig{},
			Flight:      rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	traced := run(obs.NewFlightRecorder(obs.FlightConfig{Budget: 1024, SampleN: 8}))
	if plain.StreamDigest != traced.StreamDigest {
		t.Fatalf("stream digest moved with tracing on: %s vs %s", plain.StreamDigest, traced.StreamDigest)
	}
	if plain.ChaosDigest != traced.ChaosDigest {
		t.Fatalf("chaos digest moved with tracing on: %s vs %s", plain.ChaosDigest, traced.ChaosDigest)
	}
}

// TestFlightWorkerIndependence: the retained trace-ID set of a chaos
// campaign is a pure function of (spec, seed, chaos seed) — scheduling
// (worker count) must not change it.
func TestFlightWorkerIndependence(t *testing.T) {
	_, recA := chaosFlightRun(t, 1, 0)
	_, recB := chaosFlightRun(t, 4, 0)
	a, b := recA.Records(), recB.Records()
	if len(a) == 0 {
		t.Fatal("chaos campaign retained no traces")
	}
	if len(a) != len(b) {
		t.Fatalf("retained %d traces at 1 worker, %d at 4", len(a), len(b))
	}
	for i := range a {
		if a[i].TraceID != b[i].TraceID {
			t.Fatalf("record %d: trace ID %s at 1 worker, %s at 4", i, a[i].TraceID, b[i].TraceID)
		}
	}
}

// TestFlightFaultedRetention: with retries disabled every chaos fault is
// terminal, and the recorder must retain 100% of faulted traces.
func TestFlightFaultedRetention(t *testing.T) {
	res, rec := chaosFlightRun(t, 2, -1)
	if res.Faults == 0 {
		t.Fatal("chaos campaign with retries disabled produced no faults")
	}
	sum := rec.Summary()
	if sum.EvictedInteresting != 0 {
		t.Fatalf("budget 4096 evicted %d interesting traces in a 400-request run", sum.EvictedInteresting)
	}
	if sum.Faulted != res.Faults {
		t.Fatalf("retained %d faulted traces, campaign accounted %d faults", sum.Faulted, res.Faults)
	}
	var seen int64
	for _, r := range rec.Records() {
		if r.Outcome == obs.OutcomeFault {
			seen++
		}
	}
	if seen != res.Faults {
		t.Fatalf("%d fault-outcome records, want %d", seen, res.Faults)
	}
}

// TestTraceLifecycleEvents: a retained trace from the resilience path
// carries the full lifecycle — generate, admit, dequeue, attempt, and the
// engine sub-spans (instrument, run, reset) from RunPlanned.
func TestTraceLifecycleEvents(t *testing.T) {
	_, rec := chaosFlightRun(t, 2, -1)
	for _, r := range rec.Records() {
		if r.Outcome != obs.OutcomeFault && r.Outcome != obs.OutcomeClean {
			continue
		}
		kinds := make(map[string]bool, len(r.Events))
		for _, ev := range r.Events {
			kinds[ev.Kind] = true
		}
		for _, want := range []string{"generate", "admit", "dequeue", "attempt", "instrument", "run"} {
			if !kinds[want] {
				t.Fatalf("trace %s (outcome %s) missing %q event: %+v", r.TraceID, r.Outcome, want, r.Events)
			}
		}
		return
	}
	t.Fatal("no executed trace retained")
}

// TestCheckpointFlightRoundtrip: the recorder's state rides the serve
// checkpoint — captured at the barrier, restored on resume — and a resume
// with mismatched arming fails loudly.
func TestCheckpointFlightRoundtrip(t *testing.T) {
	spec := mustParse(t, serveSpec)
	rec := obs.NewFlightRecorder(obs.FlightConfig{Budget: 256, SampleN: 4})
	dir := t.TempDir()
	ckptPath := dir + "/serve.ckpt"
	res, err := Serve(ServeConfig{
		Spec:            spec,
		Workers:         2,
		MaxRequests:     200,
		ChaosSeed:       11,
		Resilience:      &ResilienceConfig{RetryMax: -1},
		Flight:          rec,
		CheckpointPath:  ckptPath,
		CheckpointEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ck ServeCheckpoint
	if err := checkpoint.Load(ckptPath, checkpoint.KindServe, &ck); err != nil {
		t.Fatal(err)
	}
	if ck.Flight == nil {
		t.Fatal("checkpoint is missing the flight state")
	}
	if got := obs.FlightFromState(ck.Flight).Summary(); got.Faulted == 0 && res.Faults > 0 {
		t.Fatalf("final checkpoint retains no faulted traces (campaign had %d)", res.Faults)
	}

	// Resuming with a recorder restores the retained set.
	rec2 := obs.NewFlightRecorder(obs.FlightConfig{Budget: 256, SampleN: 4})
	if _, err := Serve(ServeConfig{
		Spec:        spec,
		Workers:     2,
		MaxRequests: 200,
		ChaosSeed:   11,
		Resilience:  &ResilienceConfig{RetryMax: -1},
		Flight:      rec2,
		Resume:      &ck,
	}); err != nil {
		t.Fatal(err)
	}

	// Resuming a flight-bearing checkpoint without a recorder is a shape
	// mismatch, not something to paper over.
	if _, err := Serve(ServeConfig{
		Spec:        spec,
		Workers:     2,
		MaxRequests: 200,
		ChaosSeed:   11,
		Resilience:  &ResilienceConfig{RetryMax: -1},
		Resume:      &ck,
	}); err == nil {
		t.Fatal("resume without a recorder must reject a checkpoint with flight state")
	}
}

// TestServeSLOStatus: a spec with slo: sections yields per-class SLO
// status in the result, and a clean campaign consumes no error budget.
func TestServeSLOStatus(t *testing.T) {
	spec := mustParse(t, `
version: "1"
seed: 21
aggregate_rate: 5000
clients:
  - id: interactive
    rate_fraction: 1.0
    deadline_ms: 200
    program:
      kind: spatial
      variants: 2
    slo:
      target: 0.95
      p99_ms: 200
`)
	res, err := Serve(ServeConfig{Spec: spec, Workers: 2, MaxRequests: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SLO) != 1 {
		t.Fatalf("slo status entries: %+v", res.SLO)
	}
	st := res.SLO[0]
	if st.Class != "interactive" || st.Target != 0.95 {
		t.Fatalf("slo status %+v", st)
	}
	if st.Total != res.Completed {
		t.Fatalf("slo total %d, campaign completed %d", st.Total, res.Completed)
	}
	if st.Exhausted || st.BudgetUsed != 0 {
		t.Fatalf("clean campaign consumed error budget: %+v", st)
	}
	if st.P99ObjectiveUS != 200_000 {
		t.Fatalf("p99 objective %dus, want 200000", st.P99ObjectiveUS)
	}
}
