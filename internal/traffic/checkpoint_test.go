package traffic

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cecsan/internal/checkpoint"
)

// loadServeCheckpoint reads the snapshot a partial campaign left behind.
func loadServeCheckpoint(t *testing.T, path string) *ServeCheckpoint {
	t.Helper()
	var ck ServeCheckpoint
	if err := checkpoint.Load(path, checkpoint.KindServe, &ck); err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	return &ck
}

// runPartial runs a checkpointed chaos campaign and aborts it (the
// in-process stand-in for kill -9: the campaign simply never reaches its
// end, and all that survives is the last on-disk snapshot) once roughly
// stopAfter requests have been processed.
func runPartial(t *testing.T, spec *Spec, ckpt string, workers, maxReq, every, stopAfter int, chaosSeed uint64) {
	t.Helper()
	stop := make(chan struct{})
	var once sync.Once
	_, err := Serve(ServeConfig{
		Spec:            spec,
		Workers:         workers,
		MaxRequests:     maxReq,
		ChaosSeed:       chaosSeed,
		CheckpointPath:  ckpt,
		CheckpointEvery: every,
		Stop:            stop,
		Progress: func(done int) {
			if done >= stopAfter {
				once.Do(func() { close(stop) })
			}
		},
	})
	if err != nil {
		t.Fatalf("partial run: %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("partial run left no checkpoint: %v", err)
	}
}

// TestServeCheckpointResume is the kill-resume digest-equality proof at
// the library level: a chaos campaign interrupted at randomized points and
// resumed from its last snapshot must land on stream and chaos digests
// byte-identical to an uninterrupted reference run — at 1 and 4 workers,
// with interruption points, snapshot cadences and resume worker counts
// varied independently (the digests are worker-count-independent by the
// chaos campaign's design, and resume must preserve that).
func TestServeCheckpointResume(t *testing.T) {
	spec := mustParse(t, serveSpec)
	const maxReq = 700
	const chaosSeed = 9

	ref, err := Serve(ServeConfig{Spec: spec, Workers: 2, MaxRequests: maxReq, ChaosSeed: chaosSeed})
	if err != nil {
		t.Fatal(err)
	}
	if ref.ChaosDigest == "" {
		t.Fatal("reference run produced no chaos digest")
	}

	trials := []struct {
		name          string
		every         int
		stopAfter     int
		workers       int
		resumeWorkers int
	}{
		{"early cut, 1 worker", 40, 256, 1, 1},
		{"early cut, 4 workers", 75, 256, 4, 4},
		{"late cut, cross workers", 100, 512, 1, 4},
		{"fine cadence", 25, 256, 4, 1},
	}
	for _, tr := range trials {
		t.Run(tr.name, func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), "serve.ckpt")
			runPartial(t, spec, ckpt, tr.workers, maxReq, tr.every, tr.stopAfter, chaosSeed)
			saved := loadServeCheckpoint(t, ckpt)
			if saved.Stream.Count == 0 || saved.Stream.Count >= maxReq {
				t.Fatalf("snapshot not mid-campaign: stream count %d of %d", saved.Stream.Count, maxReq)
			}

			res, err := Serve(ServeConfig{
				Spec:        spec,
				Workers:     tr.resumeWorkers,
				MaxRequests: maxReq,
				ChaosSeed:   chaosSeed,
				Resume:      saved,
			})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if res.StreamDigest != ref.StreamDigest {
				t.Fatalf("stream digest diverged after resume:\n%s\nvs reference\n%s", res.StreamDigest, ref.StreamDigest)
			}
			if res.ChaosDigest != ref.ChaosDigest {
				t.Fatalf("chaos digest diverged after resume:\n%s\nvs reference\n%s", res.ChaosDigest, ref.ChaosDigest)
			}
			if res.Generated != ref.Generated {
				t.Fatalf("generated = %d after resume, reference %d", res.Generated, ref.Generated)
			}
		})
	}
}

// TestServeCheckpointResumePlain covers the non-chaos shared-queue path:
// stream digest and end-to-end accounting must line up after a resume.
func TestServeCheckpointResumePlain(t *testing.T) {
	spec := mustParse(t, serveSpec)
	const maxReq = 500

	ref, err := Serve(ServeConfig{Spec: spec, Workers: 2, MaxRequests: maxReq})
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "serve.ckpt")
	runPartial(t, spec, ckpt, 2, maxReq, 60, 256, 0)
	saved := loadServeCheckpoint(t, ckpt)

	res, err := Serve(ServeConfig{Spec: spec, Workers: 2, MaxRequests: maxReq, Resume: saved})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.StreamDigest != ref.StreamDigest {
		t.Fatalf("stream digest diverged after plain resume:\n%s\nvs\n%s", res.StreamDigest, ref.StreamDigest)
	}
	if res.Generated != ref.Generated || res.Admitted != ref.Admitted {
		t.Fatalf("accounting diverged: generated %d/%d admitted %d/%d",
			res.Generated, ref.Generated, res.Admitted, ref.Admitted)
	}
	if got := res.Completed + res.Faults; got != res.Admitted {
		t.Fatalf("admitted = %d but completed+faults = %d after resume", res.Admitted, got)
	}
}

// TestServeResumeValidation: a snapshot resumed under the wrong identity
// (seed, chaos seed, spec) must fail loudly before any request runs.
func TestServeResumeValidation(t *testing.T) {
	spec := mustParse(t, serveSpec)
	ckpt := filepath.Join(t.TempDir(), "serve.ckpt")
	runPartial(t, spec, ckpt, 2, 500, 60, 256, 9)
	saved := loadServeCheckpoint(t, ckpt)

	bad := []struct {
		name string
		cfg  ServeConfig
	}{
		{"wrong seed", ServeConfig{Spec: spec, Seed: 12345, MaxRequests: 500, ChaosSeed: 9, Resume: saved}},
		{"wrong chaos seed", ServeConfig{Spec: spec, MaxRequests: 500, ChaosSeed: 10, Resume: saved}},
		{"chaos dropped", ServeConfig{Spec: spec, MaxRequests: 500, Resume: saved}},
		{"different spec", ServeConfig{Spec: mustParse(t, twoClassSpec), MaxRequests: 500, ChaosSeed: 9, Resume: saved}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Serve(tc.cfg); err == nil {
				t.Fatal("resume must reject a mismatched checkpoint")
			}
		})
	}
}

// TestServeCheckpointWriteFailureIsFatal: a campaign that cannot write its
// promised snapshots must fail, not silently continue uncheckpointed.
func TestServeCheckpointWriteFailureIsFatal(t *testing.T) {
	spec := mustParse(t, serveSpec)
	_, err := Serve(ServeConfig{
		Spec:            spec,
		Workers:         2,
		MaxRequests:     300,
		CheckpointPath:  filepath.Join(t.TempDir(), "no-such-dir", "serve.ckpt"),
		CheckpointEvery: 50,
	})
	if err == nil {
		t.Fatal("unwritable checkpoint path must fail the campaign")
	}
}
