// Command flawbench regenerates Table III: detection of the ten Linux Flaw
// Project CVE scenarios by CECSan.
//
// Usage:
//
//	flawbench [-tool CECSan] [-patched] [-workers N]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"cecsan/internal/cliutil"
	"cecsan/internal/engine"
	"cecsan/internal/flaws"
	"cecsan/internal/interp"
	"cecsan/internal/sanitizers"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flawbench:", err)
		os.Exit(1)
	}
}

func run() error {
	tool := flag.String("tool", "CECSan", "sanitizer to evaluate")
	patched := flag.Bool("patched", false, "run the fixed variants instead (expect no detections)")
	workers := cliutil.WorkersFlag()
	obsFlags := cliutil.ObsFlagsCmd()
	flag.Parse()

	list := flaws.All()
	if err := flaws.Validate(list); err != nil {
		return err
	}

	o, srv, err := obsFlags.Build()
	if err != nil {
		return err
	}
	eng, err := engine.New(sanitizers.Name(*tool), engine.Options{Workers: *workers, Obs: o})
	if err != nil {
		return err
	}

	fmt.Printf("Table III: Vulnerability Detection on Linux-Flaw-style scenarios (%s)\n", *tool)
	fmt.Printf("%-16s %-24s %s\n", "CVE", "Type", "Detected?")
	for _, fl := range list {
		detected, err := runFlaw(eng, fl, *patched)
		if err != nil {
			return fmt.Errorf("%s: %w", fl.CVE, err)
		}
		mark := "no"
		if detected {
			mark = "YES"
		}
		fmt.Printf("%-16s %-24s %s\n", fl.CVE, fl.Type, mark)
	}
	return obsFlags.Finish(o, srv, 0)
}

func runFlaw(eng *engine.Engine, fl flaws.Flaw, patched bool) (bool, error) {
	p, inputs := fl.Build(patched)
	res, err := eng.Run(p, inputs...)
	if err != nil {
		return false, err
	}
	switch {
	case res.Violation != nil, res.Fault != nil:
		return true, nil
	case errors.Is(res.Err, interp.ErrCallDepth):
		return true, nil // stack exhaustion crash
	case res.Err != nil:
		return false, res.Err
	default:
		return false, nil
	}
}
