package traffic

import (
	"math"
	"testing"
	"time"
)

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const twoClassSpec = `
version: "1"
seed: 11
aggregate_rate: 1000
clients:
  - id: fast
    rate_fraction: 0.6
    deadline_ms: 50
    program:
      kind: spatial
      variants: 3
  - id: bulk
    rate_fraction: 0.4
    arrival:
      process: gamma
      cv: 2.0
    program:
      kind: churn
      variants: 3
`

// TestStreamDeterminism checks the core contract: two independent streams
// over the same (spec, seed) produce identical requests and digests, and
// a different seed produces a different stream.
func TestStreamDeterminism(t *testing.T) {
	spec := mustParse(t, twoClassSpec)
	a, err := NewStream(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	for i := 0; i < 500; i++ {
		ra, rb := a.Next(), b.Next()
		if ra == nil || rb == nil {
			t.Fatalf("stream ended early at %d", i)
		}
		if ra.Class != rb.Class || ra.Arrival != rb.Arrival || ra.Variant != rb.Variant ||
			ra.ProgSeed != rb.ProgSeed || ra.Program.Fingerprint() != rb.Program.Fingerprint() {
			t.Fatalf("request %d diverged: %+v vs %+v", i, ra, rb)
		}
		if ra.Arrival < last {
			t.Fatalf("request %d arrives out of order: %v < %v", i, ra.Arrival, last)
		}
		last = ra.Arrival
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digests diverged: %s vs %s", a.Digest(), b.Digest())
	}

	c, err := NewStream(spec, 999)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		c.Next()
	}
	if c.Digest() == a.Digest() {
		t.Fatal("different seed produced an identical stream")
	}
}

// TestStreamMix checks both classes appear in roughly their rate
// fractions, deadlines are stamped, and max_requests bounds the stream.
func TestStreamMix(t *testing.T) {
	spec := mustParse(t, twoClassSpec)
	s, err := NewStream(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	byClass := map[string]int{}
	for i := 0; i < n; i++ {
		r := s.Next()
		byClass[r.Class]++
		if r.Class == "fast" && r.Deadline != 50*time.Millisecond {
			t.Fatalf("fast deadline = %v", r.Deadline)
		}
	}
	frac := float64(byClass["fast"]) / n
	if frac < 0.5 || frac > 0.7 {
		t.Fatalf("fast fraction %.3f, want ~0.6", frac)
	}

	spec2 := mustParse(t, twoClassSpec)
	spec2.MaxRequests = 37
	b, err := NewStream(spec2, 0)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for b.Next() != nil {
		count++
	}
	if count != 37 {
		t.Fatalf("bounded stream yielded %d requests, want 37", count)
	}
}

// sampleStats draws n inter-arrivals and returns their mean and CV.
func sampleStats(t *testing.T, spec ArrivalSpec, rate float64, seed uint64, n int) (mean, cv float64) {
	t.Helper()
	s := newArrivalSampler(spec, rate, seed)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.next().Seconds()
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	return mean, math.Sqrt(variance) / mean
}

// TestArrivalStatistics checks each process hits its configured mean and
// that gamma CV>1 really is burstier than poisson.
func TestArrivalStatistics(t *testing.T) {
	const n = 50000
	const rate = 100.0
	want := 1 / rate

	pMean, pCV := sampleStats(t, ArrivalSpec{Process: ProcessPoisson}, rate, 5, n)
	if math.Abs(pMean-want)/want > 0.05 {
		t.Fatalf("poisson mean %.5f, want %.5f +-5%%", pMean, want)
	}
	if math.Abs(pCV-1) > 0.1 {
		t.Fatalf("poisson CV %.3f, want ~1", pCV)
	}

	gMean, gCV := sampleStats(t, ArrivalSpec{Process: ProcessGamma, CV: 2.0}, rate, 6, n)
	if math.Abs(gMean-want)/want > 0.05 {
		t.Fatalf("gamma mean %.5f, want %.5f +-5%%", gMean, want)
	}
	if math.Abs(gCV-2.0) > 0.25 {
		t.Fatalf("gamma CV %.3f, want ~2", gCV)
	}
	if gCV <= pCV {
		t.Fatalf("gamma CV %.3f not burstier than poisson CV %.3f", gCV, pCV)
	}

	wMean, wCV := sampleStats(t, ArrivalSpec{Process: ProcessWeibull, Shape: 1.5}, rate, 7, n)
	if math.Abs(wMean-want)/want > 0.05 {
		t.Fatalf("weibull mean %.5f, want %.5f +-5%%", wMean, want)
	}
	// Weibull with shape > 1 is more regular than exponential.
	if wCV >= 1 {
		t.Fatalf("weibull(1.5) CV %.3f, want < 1", wCV)
	}
}

// TestVariantDeterminism checks program generation is a pure function of
// (kind, seed) and kinds actually differ.
func TestVariantDeterminism(t *testing.T) {
	for _, kind := range []string{KindSpatial, KindChurn, KindMixed, KindFuzz} {
		a, err := buildVariant(kind, 12345)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := buildVariant(kind, 12345)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if a.Source != b.Source || a.Program.Fingerprint() != b.Program.Fingerprint() {
			t.Fatalf("%s: variant not deterministic", kind)
		}
		c, err := buildVariant(kind, 54321)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if a.Source == c.Source {
			t.Fatalf("%s: different seeds rendered identical source", kind)
		}
	}
}
