// Package prog defines the C-like intermediate representation that plays the
// role of "a compiled C/C++ program" in this reproduction of CECSan.
//
// Real CECSan instruments LLVM IR at link time. Go cannot host LLVM, so this
// package provides the minimal IR that preserves everything the paper's
// instrumentation cares about:
//
//   - object lifetimes (alloca/malloc/free, function scopes, globals),
//   - pointer derivation with static type information (GEP with struct and
//     array types, the input to sub-object bounds narrowing, §II.D),
//   - statically analyzable loops (the builder records the scalar-evolution
//     facts LLVM's SCEV would derive, enabling the §II.F.1 loop check
//     optimizations),
//   - calls into external, uninstrumented code (§II.E),
//   - libc-style bulk memory functions and external input sources.
//
// Programs are built with Builder, validated, then instrumented (see
// internal/instrument) and executed on the machine (internal/interp).
package prog

import (
	"fmt"
	"strings"
)

// Kind classifies a Type.
type Kind uint8

// Type kinds. They start at 1 so the zero value is recognizably invalid.
const (
	KindInt Kind = iota + 1
	KindPtr
	KindArray
	KindStruct
)

// Type is a C type. Types are immutable once created; scalar types are
// shared singletons.
type Type struct {
	kind   Kind
	size   int64
	align  int64
	name   string
	elem   *Type // array element or pointee (may be nil for void*)
	length int64 // array length
	fields []Field
}

// Field is one member of a struct type, with its computed byte offset.
type Field struct {
	Name   string
	Type   *Type
	Offset int64
}

var (
	typeInt8  = &Type{kind: KindInt, size: 1, align: 1, name: "char"}
	typeInt16 = &Type{kind: KindInt, size: 2, align: 2, name: "short"}
	typeInt32 = &Type{kind: KindInt, size: 4, align: 4, name: "int"}
	typeInt64 = &Type{kind: KindInt, size: 8, align: 8, name: "int64"}
	typeWChar = &Type{kind: KindInt, size: 4, align: 4, name: "wchar_t"}
	typeVoidP = &Type{kind: KindPtr, size: 8, align: 8, name: "void*"}
)

// Char returns the 1-byte integer type.
func Char() *Type { return typeInt8 }

// Short returns the 2-byte integer type.
func Short() *Type { return typeInt16 }

// Int returns the 4-byte integer type.
func Int() *Type { return typeInt32 }

// Int64T returns the 8-byte integer type.
func Int64T() *Type { return typeInt64 }

// WChar returns the 4-byte wide-character type (Linux wchar_t).
func WChar() *Type { return typeWChar }

// VoidPtr returns the untyped 8-byte pointer type. Per §II.F.2, the
// type-based check-removal optimization never applies to it.
func VoidPtr() *Type { return typeVoidP }

// PtrTo returns a typed 8-byte pointer to elem.
func PtrTo(elem *Type) *Type {
	return &Type{kind: KindPtr, size: 8, align: 8, name: elem.name + "*", elem: elem}
}

// ArrayOf returns the type of an n-element array of elem. n must be positive.
func ArrayOf(elem *Type, n int64) *Type {
	if n <= 0 {
		panic(fmt.Sprintf("prog: ArrayOf length %d must be positive", n))
	}
	return &Type{
		kind:   KindArray,
		size:   elem.size * n,
		align:  elem.align,
		name:   fmt.Sprintf("%s[%d]", elem.name, n),
		elem:   elem,
		length: n,
	}
}

// FieldSpec names a struct member for StructOf.
type FieldSpec struct {
	Name string
	Type *Type
}

// StructOf returns a struct type with naturally aligned fields (each field
// at the next multiple of its alignment; total size padded to the struct's
// alignment), matching the x86-64 SysV layout for these kinds.
func StructOf(name string, fields ...FieldSpec) *Type {
	if len(fields) == 0 {
		panic("prog: StructOf requires at least one field")
	}
	t := &Type{kind: KindStruct, name: name}
	var off, maxAlign int64
	maxAlign = 1
	seen := make(map[string]bool, len(fields))
	for _, fs := range fields {
		if seen[fs.Name] {
			panic(fmt.Sprintf("prog: struct %s: duplicate field %q", name, fs.Name))
		}
		seen[fs.Name] = true
		a := fs.Type.align
		off = (off + a - 1) &^ (a - 1)
		t.fields = append(t.fields, Field{Name: fs.Name, Type: fs.Type, Offset: off})
		off += fs.Type.size
		if a > maxAlign {
			maxAlign = a
		}
	}
	t.align = maxAlign
	t.size = (off + maxAlign - 1) &^ (maxAlign - 1)
	return t
}

// Kind returns the type's kind.
func (t *Type) Kind() Kind { return t.kind }

// Size returns the type's size in bytes.
func (t *Type) Size() int64 { return t.size }

// Align returns the type's alignment in bytes.
func (t *Type) Align() int64 { return t.align }

// Name returns the type's C-ish spelling.
func (t *Type) Name() string { return t.name }

// Elem returns the array element or pointee type (nil for void* and
// non-containers).
func (t *Type) Elem() *Type { return t.elem }

// Len returns the array length (0 for non-arrays).
func (t *Type) Len() int64 { return t.length }

// Fields returns the struct fields (nil for non-structs). The returned slice
// must not be modified.
func (t *Type) Fields() []Field { return t.fields }

// FieldByName returns the named struct field.
func (t *Type) FieldByName(name string) (Field, bool) {
	for _, f := range t.fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// IsComposite reports whether the type is an aggregate (array or struct).
// Per §II.F.2, only composite objects participate in pointer arithmetic
// worth tracking.
func (t *Type) IsComposite() bool { return t.kind == KindArray || t.kind == KindStruct }

// String returns the type's spelling.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	return t.name
}

// SubObject describes one addressable sub-object (field or nested field)
// within a composite type, as enumerated by SubObjects.
type SubObject struct {
	Path   string // dotted field path, e.g. "hdr.name"
	Offset int64
	Type   *Type
}

// SubObjects recursively enumerates the sub-objects of a composite type, the
// candidates §II.D narrows bounds for. Scalars yield nothing.
func (t *Type) SubObjects() []SubObject {
	var out []SubObject
	var walk func(prefix string, base int64, ty *Type)
	walk = func(prefix string, base int64, ty *Type) {
		for _, f := range ty.fields {
			path := f.Name
			if prefix != "" {
				path = prefix + "." + f.Name
			}
			out = append(out, SubObject{Path: path, Offset: base + f.Offset, Type: f.Type})
			if f.Type.kind == KindStruct {
				walk(path, base+f.Offset, f.Type)
			}
		}
	}
	if t.kind == KindStruct {
		walk("", 0, t)
	}
	return out
}

// layoutString renders a struct layout for debugging.
func (t *Type) layoutString() string {
	if t.kind != KindStruct {
		return t.name
	}
	var b strings.Builder
	fmt.Fprintf(&b, "struct %s { // size=%d align=%d\n", t.name, t.size, t.align)
	for _, f := range t.fields {
		fmt.Fprintf(&b, "  +%-4d %s %s\n", f.Offset, f.Type, f.Name)
	}
	b.WriteString("}")
	return b.String()
}
