package traffic

import (
	"fmt"
	"testing"
)

// randomSpecSrc builds a randomized but valid spec from a splitmix64
// stream: 1-3 classes over mixed arrival processes, program kinds and
// variant counts, with normalized rate fractions.
func randomSpecSrc(r *rng) string {
	processes := []string{"poisson", "gamma", "weibull"}
	kinds := []string{"spatial", "churn", "mixed"}
	n := 1 + r.intn(3)
	fracs := make([]float64, n)
	total := 0.0
	for i := range fracs {
		fracs[i] = 1 + float64(r.intn(9))
		total += fracs[i]
	}
	src := fmt.Sprintf("version: \"1\"\nseed: %d\naggregate_rate: %d\nclients:\n",
		1+r.intn(1_000_000), 500+r.intn(5000))
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(`  - id: class%d
    rate_fraction: %.6f
    deadline_ms: %d
    arrival:
      process: %s
    program:
      kind: %s
      variants: %d
`, i, fracs[i]/total, 10*(1+r.intn(20)), processes[r.intn(len(processes))], kinds[r.intn(len(kinds))], 1+r.intn(4))
	}
	return src
}

// TestSeekEquivalence is the seek property test: for random specs and a
// random skip count n, Seek(n)-then-drain must equal
// generate-and-discard-n-then-drain — identical remaining requests and an
// identical final digest. The stream is the single-producer generator both
// the 1-worker and 4-worker serving paths consume, and its digest is
// already pinned worker-count-independent (TestServeDigestWorkerIndependence,
// TestServeCheckpointResume below cover workers ∈ {1, 4} end to end).
func TestSeekEquivalence(t *testing.T) {
	r := newRNG(0x5eeb)
	for trial := 0; trial < 8; trial++ {
		src := randomSpecSrc(r)
		spec, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generated spec invalid: %v\n%s", trial, err, src)
		}
		total := 50 + r.intn(200)
		n := r.intn(total)

		discard, err := NewStream(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		discard.SetLimit(total)
		seek, err := NewStream(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		seek.SetLimit(total)

		for i := 0; i < n; i++ {
			if discard.Next() == nil {
				t.Fatalf("trial %d: stream ended during discard at %d/%d", trial, i, n)
			}
		}
		if got := seek.Seek(n); got != n {
			t.Fatalf("trial %d: Seek(%d) skipped %d", trial, n, got)
		}
		if seek.Count() != discard.Count() {
			t.Fatalf("trial %d: counts diverged after seek: %d vs %d", trial, seek.Count(), discard.Count())
		}

		for i := n; ; i++ {
			a, b := discard.Next(), seek.Next()
			if (a == nil) != (b == nil) {
				t.Fatalf("trial %d: streams ended at different points near %d", trial, i)
			}
			if a == nil {
				break
			}
			if a.Index != b.Index || a.Class != b.Class || a.Arrival != b.Arrival ||
				a.Deadline != b.Deadline || a.Variant != b.Variant || a.ProgSeed != b.ProgSeed ||
				a.Program.Fingerprint() != b.Program.Fingerprint() {
				t.Fatalf("trial %d: request %d diverged:\n%+v\nvs\n%+v", trial, i, a, b)
			}
		}
		if discard.Digest() != seek.Digest() {
			t.Fatalf("trial %d (n=%d, total=%d): final digests diverged:\n%s\nvs\n%s",
				trial, n, total, discard.Digest(), seek.Digest())
		}
	}
}

// TestSeekStopsAtLimit: seeking past the stream bound skips only what the
// bound allows and reports it.
func TestSeekStopsAtLimit(t *testing.T) {
	spec := mustParse(t, twoClassSpec)
	s, err := NewStream(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLimit(30)
	if got := s.Seek(100); got != 30 {
		t.Fatalf("Seek(100) past a 30-request bound skipped %d, want 30", got)
	}
	if s.Next() != nil {
		t.Fatal("stream must be exhausted after seeking to its bound")
	}
}

// TestStreamStateRoundTrip: capturing mid-stream and restoring into a
// fresh stream over the same (spec, seed) resumes byte-identically.
func TestStreamStateRoundTrip(t *testing.T) {
	spec := mustParse(t, twoClassSpec)
	orig, err := NewStream(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	orig.SetLimit(200)
	for i := 0; i < 77; i++ {
		orig.Next()
	}
	st, err := orig.State()
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := NewStream(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	resumed.SetLimit(200)
	if err := resumed.Restore(st); err != nil {
		t.Fatal(err)
	}
	for {
		a, b := orig.Next(), resumed.Next()
		if (a == nil) != (b == nil) {
			t.Fatal("restored stream ended at a different point")
		}
		if a == nil {
			break
		}
		if a.Index != b.Index || a.Arrival != b.Arrival || a.ProgSeed != b.ProgSeed {
			t.Fatalf("request %d diverged after restore", a.Index)
		}
	}
	if orig.Digest() != resumed.Digest() {
		t.Fatal("digests diverged after state round trip")
	}

	// Restoring a state from a different spec shape fails loudly.
	other, err := NewStream(mustParse(t, serveSpec), 0)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Parse("version: \"1\"\nseed: 3\naggregate_rate: 100\nclients:\n  - id: only\n    rate_fraction: 1.0\n    program:\n      kind: spatial\n")
	if err != nil {
		t.Fatal(err)
	}
	oneClass, err := NewStream(single, 0)
	if err != nil {
		t.Fatal(err)
	}
	ost, err := oneClass.State()
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(ost); err == nil {
		t.Fatal("restoring a 1-client state into a 2-client stream must fail")
	}
}
