package instrument

import (
	"cecsan/prog"
)

// checkKey identifies a check for redundancy comparison.
type checkKey struct {
	ptr  prog.Reg
	off  int64
	size int64
}

// eliminateRedundantChecks removes checks that are dominated by an identical
// (or stronger) check earlier in the same basic block with no intervening
// instruction that could change the answer — the recurring-check
// elimination CECSan shares with ASAN--'s debloating (§II.F).
//
// Invalidation rules: redefining the checked register kills its entries;
// frees, calls (which may free), sub-pointer operations and parallel regions
// kill everything.
func eliminateRedundantChecks(f *prog.Func) {
	leaders := blockLeaders(f)
	seen := make(map[checkKey]bool) // value: a Write check was seen
	rw := newRewriter(f)
	for i := range f.Code {
		in := f.Code[i]
		rw.beginGroup(i)
		if leaders[i] {
			clear(seen)
		}
		switch in.Op {
		case prog.OpCheckAccess:
			if in.B == prog.NoReg { // only static-size checks participate
				k := checkKey{ptr: in.A, off: in.Off, size: in.Size}
				isWrite := in.Has(prog.FlagWrite)
				if wasWrite, ok := seen[k]; ok && (wasWrite || !isWrite) {
					continue // dominated: drop the check
				}
				seen[k] = isWrite || seen[k]
			}
			rw.emitOld(in)
		case prog.OpFree, prog.OpCall, prog.OpCallExternal, prog.OpLibc,
			prog.OpParFor, prog.OpSubPtr, prog.OpSubRelease:
			clear(seen)
			rw.emitOld(in)
		default:
			if in.Dst != prog.NoReg {
				for k := range seen {
					if k.ptr == in.Dst {
						delete(seen, k)
					}
				}
			}
			rw.emitOld(in)
		}
	}
	rw.finish()
}

// blockLeaders marks the instructions that begin a basic block.
func blockLeaders(f *prog.Func) []bool {
	leaders := make([]bool, len(f.Code)+1)
	leaders[0] = true
	for i := range f.Code {
		switch f.Code[i].Op {
		case prog.OpBr:
			leaders[f.Code[i].Imm] = true
			leaders[i+1] = true
		case prog.OpCondBr:
			leaders[f.Code[i].Imm] = true
			leaders[i+1] = true
		}
	}
	return leaders
}

// hoistInvariantChecks relocates checks on loop-invariant pointers out of
// loop bodies: "a single deduplicated check relocated after the loop, is
// sufficient" (§II.F.1). Redzone-based profiles may only relocate loads,
// because a hoisted store check could observe a redzone already overwritten;
// CECSan, not relying on redzones, handles both.
//
// A check is hoisted only from the body's first basic block (it provably
// executes every iteration) and only from loops containing no frees or
// calls (which could end the object's lifetime mid-loop).
func hoistInvariantChecks(f *prog.Func, redzoneBased bool) {
	if len(f.Loops) == 0 {
		return
	}
	leaders := blockLeaders(f)

	// hoisted[exitIdx] collects checks to emit right before old index
	// exitIdx (the loop exit target).
	hoisted := make(map[int][]prog.Instr)
	drop := make(map[int]bool)

	for _, l := range f.Loops {
		if loopHasLifetimeEvents(f, l) {
			continue
		}
		seenKeys := make(map[checkKey]bool)
		for i := l.BodyStart; i < l.BodyEnd; i++ {
			in := &f.Code[i]
			if in.Op != prog.OpCheckAccess || in.B != prog.NoReg {
				continue
			}
			if redzoneBased && in.Has(prog.FlagWrite) {
				continue
			}
			// Must be in the body's first block.
			inFirstBlock := true
			for j := l.BodyStart + 1; j <= i; j++ {
				if leaders[j] {
					inFirstBlock = false
					break
				}
			}
			if !inFirstBlock {
				continue
			}
			if regRedefinedIn(f, in.A, l.HeadStart, l.LatchEnd) {
				continue
			}
			k := checkKey{ptr: in.A, off: in.Off, size: in.Size}
			drop[i] = true
			if seenKeys[k] {
				continue // deduplicated
			}
			seenKeys[k] = true
			hoisted[l.LatchEnd] = append(hoisted[l.LatchEnd], *in)
		}
	}
	if len(drop) == 0 {
		return
	}

	rw := newRewriter(f)
	for i := range f.Code {
		rw.beginGroup(i)
		for _, h := range hoisted[i] {
			rw.emitNew(h)
		}
		if drop[i] {
			continue
		}
		rw.emitOld(f.Code[i])
	}
	// Checks hoisted to the very end of the function body.
	rw.beginGroup(len(f.Code))
	for _, h := range hoisted[len(f.Code)] {
		rw.emitNew(h)
	}
	rw.finish()
}

// loopHasLifetimeEvents reports whether the loop contains an operation that
// could end an object's lifetime (free, any call) between iterations.
func loopHasLifetimeEvents(f *prog.Func, l prog.Loop) bool {
	for i := l.HeadStart; i < l.LatchEnd && i < len(f.Code); i++ {
		switch f.Code[i].Op {
		case prog.OpFree, prog.OpCall, prog.OpCallExternal, prog.OpParFor, prog.OpSubRelease:
			return true
		}
	}
	return false
}

// regRedefinedIn reports whether r is assigned anywhere in [lo, hi).
func regRedefinedIn(f *prog.Func, r prog.Reg, lo, hi int) bool {
	for i := lo; i < hi && i < len(f.Code); i++ {
		if f.Code[i].Dst == r {
			return true
		}
	}
	return false
}

// groupMonotonicChecks rewrites per-element checks on linear induction
// accesses into OpCheckPeriodic grouped checks (§II.F.1, Figure 4a): the
// scalar-evolution facts recorded by the builder identify checks whose
// pointer is base + indvar*scale with constant start and step; those fire
// only every checkStep-th iteration with a widened range.
func groupMonotonicChecks(f *prog.Func, checkStep int64) {
	if len(f.Loops) == 0 {
		return
	}
	leaders := blockLeaders(f)
	type replacement struct {
		loop prog.Loop
		gep  prog.Instr
	}
	replace := make(map[int]replacement)

	for _, l := range f.Loops {
		if !l.Start.IsConst || l.Step <= 0 || l.Step > 255 {
			continue
		}
		// Locate the limit register: ForRange always materializes it in the
		// header's compare.
		limReg := loopLimitReg(f, l)
		if limReg == prog.NoReg {
			continue
		}
		// Map GEP dst -> GEP for linear induction pointers in the body.
		linear := make(map[prog.Reg]prog.Instr)
		for i := l.BodyStart; i < l.BodyEnd; i++ {
			in := &f.Code[i]
			if in.Op == prog.OpGEP && in.B == l.IndVar && in.Imm > 0 && in.Off == 0 &&
				!regRedefinedIn(f, in.A, l.HeadStart, l.LatchEnd) {
				linear[in.Dst] = *in
			}
		}
		for i := l.BodyStart; i < l.BodyEnd; i++ {
			in := &f.Code[i]
			if in.Op != prog.OpCheckAccess || in.B != prog.NoReg || in.Off != 0 {
				continue
			}
			gep, ok := linear[in.A]
			if !ok || in.Size != gep.Imm {
				continue // not a contiguous element access
			}
			// Must execute every iteration: body's first block only.
			inFirstBlock := true
			for j := l.BodyStart + 1; j <= i; j++ {
				if leaders[j] {
					inFirstBlock = false
					break
				}
			}
			if !inFirstBlock {
				continue
			}
			lcopy := l
			lcopy.Limit = prog.RegOperand(limReg)
			replace[i] = replacement{loop: lcopy, gep: gep}
		}
	}
	if len(replace) == 0 {
		return
	}

	rw := newRewriter(f)
	for i := range f.Code {
		in := f.Code[i]
		rw.beginGroup(i)
		rep, ok := replace[i]
		if !ok {
			rw.emitOld(in)
			continue
		}
		l := rep.loop
		pc := prog.Instr{
			Op:   prog.OpCheckPeriodic,
			X:    uint8(l.Step),
			Dst:  prog.NoReg,
			A:    prog.NoReg,
			B:    prog.NoReg,
			Imm:  l.Start.Const,
			Off:  l.Step * checkStep,
			Size: in.Size,
			Args: []prog.Reg{in.A, l.IndVar, l.Limit.Reg},
		}
		if in.Has(prog.FlagWrite) {
			pc.Flags |= prog.FlagWrite
		}
		rw.emitNew(pc)
	}
	rw.finish()
}

// loopLimitReg finds the register the loop header compares the induction
// variable against.
func loopLimitReg(f *prog.Func, l prog.Loop) prog.Reg {
	for i := l.HeadStart; i < l.HeadEnd && i < len(f.Code); i++ {
		in := &f.Code[i]
		if in.Op == prog.OpCmp && in.A == l.IndVar {
			return in.B
		}
	}
	return prog.NoReg
}
