// Package cryptsan models CryptSan (SAC 2022): memory safety via ARM
// Pointer Authentication with per-object metadata, object-granular like
// PACMem. It misses sub-object overflows by design (Table II shows 98.5% /
// 97.4% on CWE121/122, the sub-object cases), so the model reuses the core
// runtime with sub-object narrowing disabled.
//
// CryptSan's published evaluation covers a 5,364-case Juliet subset; the
// harness applies the same subset.
package cryptsan

import (
	"cecsan/internal/core"
	"cecsan/internal/rt"
	"cecsan/internal/tagptr"
)

// options returns the CryptSan configuration of the core runtime.
func options() core.Options {
	opts := core.DefaultOptions()
	opts.Name = "CryptSan"
	opts.Arch = tagptr.ARM64
	opts.SubObject = false
	// CryptSan performs no check-reducing compiler optimization passes.
	opts.OptLoopInvariant = false
	opts.OptMonotonic = false
	opts.OptRedundant = false
	return opts
}

// ProfileFor derives the CryptSan instrumentation profile without
// constructing a runtime (no metadata table is allocated).
func ProfileFor() rt.Profile { return core.ProfileFor(options()) }

// Sanitizer returns the CryptSan model bundle.
func Sanitizer() (rt.Sanitizer, error) {
	return core.Sanitizer(options())
}

// HardenedProfileFor derives the profile of the temporally hardened variant
// (identical instrumentation; the hardening is runtime-side).
func HardenedProfileFor() rt.Profile { return core.ProfileFor(core.Harden(options())) }

// HardenedSanitizer returns the CryptSan model with the temporal-reuse
// mitigations (generation stamping + address quarantine) layered on.
func HardenedSanitizer() (rt.Sanitizer, error) {
	return core.Sanitizer(core.Harden(options()))
}
