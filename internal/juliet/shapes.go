package juliet

import (
	"encoding/binary"

	"cecsan/prog"
)

// shapesFor returns the functional variants of one CWE. The lists repeat
// common shapes deliberately: the relative frequency of each bug shape is
// what turns each comparator's blind spots into Table II's detection rates.
func shapesFor(cwe CWE) []shape {
	var base []shape
	switch cwe {
	case CWE121, CWE122:
		base = overflowShapes
	case CWE124:
		base = underwriteShapes
	case CWE126:
		base = overreadShapes
	case CWE127:
		base = underreadShapes
	case CWE415:
		base = doubleFreeShapes
	case CWE416:
		base = uafShapes
	case CWE761:
		base = invalidFreeShapes
	default:
		return nil
	}
	return expandWeights(base)
}

// expandWeights repeats each shape per its weight, interleaved round-robin
// so consecutive case indices cycle through distinct shapes.
func expandWeights(base []shape) []shape {
	maxW := 1
	for _, sh := range base {
		if sh.weight > maxW {
			maxW = sh.weight
		}
	}
	var out []shape
	for round := 0; round < maxW; round++ {
		for _, sh := range base {
			w := sh.weight
			if w <= 0 {
				w = 1
			}
			if round < w {
				out = append(out, sh)
			}
		}
	}
	return out
}

// le16 renders v as a 2-byte little-endian payload for the dummy server.
func le16(v int64) []byte {
	b := make([]byte, 2)
	binary.LittleEndian.PutUint16(b, uint16(v))
	return b
}

// recvU16 emits code reading a 2-byte little-endian value from the dummy
// server into a fresh register.
func recvU16(c *caseBuilder) prog.Reg {
	f := c.f
	ibuf := f.Alloca(prog.ArrayOf(prog.Char(), 8))
	f.Libc("recv", ibuf, f.Const(2))
	return f.Load(ibuf, 0, prog.Short())
}

// ---- CWE121 / CWE122: buffer overflow (write past the end) ----

var overflowShapes = []shape{
	{
		// Write one element just past the end. Odd sizes make this an
		// intra-granule overflow HWASan cannot see.
		name:   "index_write",
		weight: 5,
		build: func(c *caseBuilder) {
			p, sz := c.buf()
			off := c.pick(sz-c.d.elem.Size(), sz)
			c.f.Store(p, off, c.f.Const(0x41), c.d.elem)
			c.releaseBuf(p)
		},
	},
	{
		// Classic counted loop overrunning by two elements.
		name:   "loop_write",
		weight: 6,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			limit := c.pick(c.d.n, c.d.n+2)
			c.f.ForRange(prog.ConstOperand(0), prog.ConstOperand(limit), 1, func(i prog.Reg) {
				c.f.Store(c.f.ElemPtr(p, c.d.elem, i), 0, i, c.d.elem)
			})
			c.releaseBuf(p)
		},
	},
	{
		// memcpy sized past the destination.
		name:   "memcpy_over",
		weight: 6,
		build: func(c *caseBuilder) {
			p, sz := c.buf()
			c.f.Libc("memcpy", p, c.f.GlobalAddr("g_src"), c.f.Const(c.pick(sz, 2*sz)))
			c.releaseBuf(p)
		},
	},
	{
		// memset sized past the destination.
		name:   "memset_over",
		weight: 5,
		build: func(c *caseBuilder) {
			p, sz := c.buf()
			c.f.Libc("memset", p, c.f.Const(0x43), c.f.Const(c.pick(sz, 2*sz)))
			c.releaseBuf(p)
		},
	},
	{
		// strcpy of a string longer than the destination.
		name:   "strcpy_long",
		weight: 5,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			src := "g_short"
			if c.bad {
				src = "g_long"
			}
			c.f.Libc("strcpy", p, c.f.GlobalAddr(src))
			c.releaseBuf(p)
		},
	},
	{
		// strncpy padding past the destination (bad), or exactly filling it
		// (good) — the good path trips the SoftBound prototype's buggy
		// off-by-one wrapper (modelled §IV.B false positives).
		name:   "strncpy_over",
		weight: 3,
		build: func(c *caseBuilder) {
			p, sz := c.buf()
			c.f.Libc("strncpy", p, c.f.GlobalAddr("g_short"), c.f.Const(c.pick(sz, 2*sz)))
			c.releaseBuf(p)
		},
	},
	{
		// Wide-character copy overrunning the destination: the interceptor
		// gap shared by ASan/HWASan and the missing SoftBound wrapper.
		name:   "wcsncpy_over",
		wide:   true,
		weight: 3,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			src := c.f.MallocType(prog.ArrayOf(prog.WChar(), c.d.n+8))
			c.f.Libc("wmemset", src, c.f.Const('W'), c.f.Const(c.d.n+7))
			c.f.Libc("wcsncpy", p, src, c.f.Const(c.pick(c.d.n, c.d.n+4)))
			c.f.Free(src)
			c.releaseBuf(p)
		},
	},
	{
		// Figure 3: memcpy sized for the whole struct into its first
		// member. Only sub-object granularity sees it.
		name:      "subobj_memcpy",
		subObject: true,
		weight:    1,
		build: func(c *caseBuilder) {
			st := prog.StructOf("CharContainer",
				prog.FieldSpec{Name: "data", Type: prog.ArrayOf(c.d.elem, c.d.n)},
				prog.FieldSpec{Name: "tail", Type: prog.Int64T()},
			)
			var obj prog.Reg
			if c.d.heap {
				obj = c.f.MallocType(st)
			} else {
				obj = c.f.Alloca(st)
			}
			dataSize := c.d.elem.Size() * c.d.n
			fp := c.f.FieldPtr(obj, st, "data")
			c.f.Libc("memcpy", fp, c.f.GlobalAddr("g_src"), c.f.Const(c.pick(dataSize, dataSize+8)))
			if c.d.heap {
				c.f.Free(obj)
			}
		},
	},
	{
		// Far stride: skips every redzone and lands in unpoisoned memory —
		// ASan's location-based blind spot.
		name:   "stride_far",
		weight: 3,
		build: func(c *caseBuilder) {
			p, sz := c.buf()
			c.f.Store(p, c.pick(0, sz+4096), c.f.Const(1), c.d.elem)
			c.releaseBuf(p)
		},
	},
	{
		// Index received from the dummy server (the cases prior
		// evaluations excluded).
		name:       "input_index",
		needsInput: true,
		weight:     4,
		build: func(c *caseBuilder) {
			p, sz := c.buf()
			c.input(le16(sz-c.d.elem.Size()), le16(sz))
			k := recvU16(c)
			c.f.Store(c.f.OffsetPtrReg(p, k), 0, c.f.Const(2), c.d.elem)
			c.releaseBuf(p)
		},
	},
	{
		// memcpy length received from the dummy server.
		name:       "input_size_memcpy",
		needsInput: true,
		weight:     3,
		build: func(c *caseBuilder) {
			p, sz := c.buf()
			c.input(le16(sz), le16(sz+16))
			n := recvU16(c)
			c.f.Libc("memcpy", p, c.f.GlobalAddr("g_src"), n)
			c.releaseBuf(p)
		},
	},
}

// ---- CWE124: buffer underwrite ----

var underwriteShapes = []shape{
	{
		name:   "index_neg_write",
		weight: 5,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			c.f.Store(p, c.pick(0, -c.d.elem.Size()), c.f.Const(9), c.d.elem)
			c.releaseBuf(p)
		},
	},
	{
		// Descending loop running one element below zero.
		name:   "loop_desc_write",
		weight: 5,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			limit := c.pick(-1, -2)
			c.f.ForRange(prog.ConstOperand(c.d.n-1), prog.ConstOperand(limit), -1, func(i prog.Reg) {
				c.f.Store(c.f.ElemPtr(p, c.d.elem, i), 0, i, c.d.elem)
			})
			c.releaseBuf(p)
		},
	},
	{
		name:   "memcpy_under",
		weight: 4,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			dst := c.f.OffsetPtr(p, c.pick(0, -8))
			c.f.Libc("memcpy", dst, c.f.GlobalAddr("g_src"), c.f.Const(8))
			c.releaseBuf(p)
		},
	},
	{
		// Far under-stride: lands before any redzone.
		name:   "stride_under",
		weight: 2,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			c.f.Store(p, c.pick(0, -4096), c.f.Const(3), c.d.elem)
			c.releaseBuf(p)
		},
	},
	{
		name:   "wmemset_under",
		wide:   true,
		weight: 2,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			dst := c.f.OffsetPtr(p, c.pick(0, -8))
			c.f.Libc("wmemset", dst, c.f.Const('U'), c.f.Const(2))
			c.releaseBuf(p)
		},
	},
	{
		name:       "input_offset_under",
		needsInput: true,
		weight:     3,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			c.input(le16(0), le16(uint16max(c.d.elem.Size())))
			k := recvU16(c)
			neg := c.f.Sub(c.f.Const(0), k)
			c.f.Store(c.f.OffsetPtrReg(p, neg), 0, c.f.Const(4), c.d.elem)
			c.releaseBuf(p)
		},
	},
}

// uint16max clamps an offset into the recv payload's 16-bit range.
func uint16max(v int64) int64 {
	if v > 0xFFFF {
		return 0xFFFF
	}
	return v
}

// ---- CWE126: buffer overread ----

var overreadShapes = []shape{
	{
		name:   "index_read",
		weight: 4,
		build: func(c *caseBuilder) {
			p, sz := c.buf()
			v := c.f.Load(p, c.pick(sz-c.d.elem.Size(), sz), c.d.elem)
			c.f.Libc("print_int", v)
			c.releaseBuf(p)
		},
	},
	{
		name:   "loop_read",
		weight: 5,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			f := c.f
			acc := f.NewReg()
			f.AssignConst(acc, 0)
			limit := c.pick(c.d.n, c.d.n+2)
			f.ForRange(prog.ConstOperand(0), prog.ConstOperand(limit), 1, func(i prog.Reg) {
				f.Assign(acc, f.Add(acc, f.Load(f.ElemPtr(p, c.d.elem, i), 0, c.d.elem)))
			})
			f.Libc("print_int", acc)
			c.releaseBuf(p)
		},
	},
	{
		name:   "memcpy_from_over",
		weight: 6,
		build: func(c *caseBuilder) {
			p, sz := c.buf()
			dst := c.f.MallocBytes(sz + 64)
			c.f.Libc("memcpy", dst, p, c.f.Const(c.pick(sz, sz+8)))
			c.f.Free(dst)
			c.releaseBuf(p)
		},
	},
	{
		// Unterminated string: strlen walks past the end.
		name:   "strlen_unterminated",
		weight: 4,
		build: func(c *caseBuilder) {
			p, sz := c.buf()
			c.f.Libc("memset", p, c.f.Const('A'), c.f.Const(c.pick(sz-1, sz)))
			n := c.f.Libc("strlen", p)
			c.f.Libc("print_int", n)
			c.releaseBuf(p)
		},
	},
	{
		name:   "wcslen_over",
		wide:   true,
		weight: 2,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			c.f.Libc("wmemset", p, c.f.Const('W'), c.f.Const(c.pick(c.d.n-1, c.d.n)))
			n := c.f.Libc("wcslen", p)
			c.f.Libc("print_int", n)
			c.releaseBuf(p)
		},
	},
	{
		// Far over-read: skips the redzone into unpoisoned memory.
		name:   "stride_read_far",
		weight: 2,
		build: func(c *caseBuilder) {
			p, sz := c.buf()
			v := c.f.Load(p, c.pick(0, sz+4096), c.d.elem)
			c.f.Libc("print_int", v)
			c.releaseBuf(p)
		},
	},
	{
		name:       "input_len_read",
		needsInput: true,
		weight:     3,
		build: func(c *caseBuilder) {
			p, sz := c.buf()
			c.input(le16(sz-c.d.elem.Size()), le16(sz))
			k := recvU16(c)
			v := c.f.Load(c.f.OffsetPtrReg(p, k), 0, c.d.elem)
			c.f.Libc("print_int", v)
			c.releaseBuf(p)
		},
	},
}

// ---- CWE127: buffer underread ----

var underreadShapes = []shape{
	{
		name:   "index_neg_read",
		weight: 5,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			v := c.f.Load(p, c.pick(0, -c.d.elem.Size()), c.d.elem)
			c.f.Libc("print_int", v)
			c.releaseBuf(p)
		},
	},
	{
		name:   "loop_desc_read",
		weight: 5,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			f := c.f
			acc := f.NewReg()
			f.AssignConst(acc, 0)
			limit := c.pick(-1, -2)
			f.ForRange(prog.ConstOperand(c.d.n-1), prog.ConstOperand(limit), -1, func(i prog.Reg) {
				f.Assign(acc, f.Add(acc, f.Load(f.ElemPtr(p, c.d.elem, i), 0, c.d.elem)))
			})
			f.Libc("print_int", acc)
			c.releaseBuf(p)
		},
	},
	{
		name:   "memcpy_from_under",
		weight: 4,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			dst := c.f.MallocBytes(64)
			src := c.f.OffsetPtr(p, c.pick(0, -8))
			c.f.Libc("memcpy", dst, src, c.f.Const(8))
			c.f.Free(dst)
			c.releaseBuf(p)
		},
	},
	{
		name:   "stride_under_read",
		weight: 2,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			v := c.f.Load(p, c.pick(0, -4096), c.d.elem)
			c.f.Libc("print_int", v)
			c.releaseBuf(p)
		},
	},
	{
		name:   "wmemcpy_under",
		wide:   true,
		weight: 2,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			dst := c.f.MallocType(prog.ArrayOf(prog.WChar(), 8))
			src := c.f.OffsetPtr(p, c.pick(0, -16))
			c.f.Libc("wmemcpy", dst, src, c.f.Const(4))
			c.f.Free(dst)
			c.releaseBuf(p)
		},
	},
	{
		name:       "input_offset_read",
		needsInput: true,
		weight:     3,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			c.input(le16(0), le16(uint16max(c.d.elem.Size())))
			k := recvU16(c)
			neg := c.f.Sub(c.f.Const(0), k)
			v := c.f.Load(c.f.OffsetPtrReg(p, neg), 0, c.d.elem)
			c.f.Libc("print_int", v)
			c.releaseBuf(p)
		},
	},
}

// ---- CWE415: double free ----

var doubleFreeShapes = []shape{
	{
		name:     "direct",
		heapOnly: true,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			c.f.Free(p)
			if c.bad {
				c.f.Free(p)
			}
		},
	},
	{
		name:     "alias",
		heapOnly: true,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			q := c.f.Mov(p)
			c.f.Free(p)
			if c.bad {
				c.f.Free(q)
			}
		},
	},
	{
		name:     "two_blocks",
		heapOnly: true,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			q := c.f.MallocBytes(32)
			c.f.Free(p)
			if c.bad {
				c.f.Free(p)
			} else {
				c.f.Free(q)
			}
		},
	},
	{
		name:     "helper_free",
		heapOnly: true,
		build: func(c *caseBuilder) {
			h := c.pb.Function("free_helper", 1)
			h.Free(h.Arg(0))
			h.RetVoid()
			p, _ := c.buf()
			c.f.Call("free_helper", p)
			if c.bad {
				c.f.Call("free_helper", p)
			}
		},
	},
	{
		name:     "loop_free",
		heapOnly: true,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			times := c.pick(1, 2)
			c.f.ForRange(prog.ConstOperand(0), prog.ConstOperand(times), 1, func(prog.Reg) {
				c.f.Free(p)
			})
		},
	},
	{
		name:       "input_guard_free",
		heapOnly:   true,
		needsInput: true,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			c.input([]byte{0x00}, []byte{0x99})
			f := c.f
			ibuf := f.Alloca(prog.ArrayOf(prog.Char(), 4))
			f.Libc("recv", ibuf, f.Const(1))
			b := f.Load(ibuf, 0, prog.Char())
			f.Free(p)
			f.If(f.Cmp(prog.CmpEq, b, f.Const(0x99)), func() { f.Free(p) }, nil)
		},
	},
}

// ---- CWE416: use after free ----

var uafShapes = []shape{
	{
		name:     "write_after_free",
		heapOnly: true,
		weight:   2,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			if c.bad {
				c.f.Free(p)
				c.f.Store(p, 0, c.f.Const(1), c.d.elem)
			} else {
				c.f.Store(p, 0, c.f.Const(1), c.d.elem)
				c.f.Free(p)
			}
		},
	},
	{
		name:     "read_after_free",
		heapOnly: true,
		weight:   2,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			if c.bad {
				c.f.Free(p)
				c.f.Libc("print_int", c.f.Load(p, 0, c.d.elem))
			} else {
				c.f.Libc("print_int", c.f.Load(p, 0, c.d.elem))
				c.f.Free(p)
			}
		},
	},
	{
		// Dangling pointer reloaded from memory: SoftBound's shadow loses
		// the CETS key (modelled prototype flaw).
		name:     "reloaded_write",
		heapOnly: true,
		weight:   2,
		build: func(c *caseBuilder) {
			f := c.f
			cell := f.MallocType(prog.PtrTo(c.d.elem))
			p, _ := c.buf()
			f.Store(cell, 0, p, prog.PtrTo(c.d.elem))
			if c.bad {
				f.Free(p)
				reloaded := f.Load(cell, 0, prog.PtrTo(c.d.elem))
				f.Store(reloaded, 0, f.Const(5), c.d.elem)
			} else {
				reloaded := f.Load(cell, 0, prog.PtrTo(c.d.elem))
				f.Store(reloaded, 0, f.Const(5), c.d.elem)
				f.Free(p)
			}
			f.Free(cell)
		},
	},
	{
		name:     "reloaded_read",
		heapOnly: true,
		build: func(c *caseBuilder) {
			f := c.f
			cell := f.MallocType(prog.PtrTo(c.d.elem))
			p, _ := c.buf()
			f.Store(cell, 0, p, prog.PtrTo(c.d.elem))
			if c.bad {
				f.Free(p)
				reloaded := f.Load(cell, 0, prog.PtrTo(c.d.elem))
				f.Libc("print_int", f.Load(reloaded, 0, c.d.elem))
			} else {
				reloaded := f.Load(cell, 0, prog.PtrTo(c.d.elem))
				f.Libc("print_int", f.Load(reloaded, 0, c.d.elem))
				f.Free(p)
			}
			f.Free(cell)
		},
	},
	{
		// Access to freed memory through a wide-character function: the
		// interceptor gap turns this into an ASan/HWASan/SoftBound miss.
		name:     "wide_uaf",
		wide:     true,
		heapOnly: true,
		build: func(c *caseBuilder) {
			f := c.f
			p, _ := c.buf()
			src := f.MallocType(prog.ArrayOf(prog.WChar(), 4))
			f.Libc("wmemset", src, f.Const('U'), f.Const(3))
			if c.bad {
				f.Free(p)
				f.Libc("wcsncpy", p, src, f.Const(4))
			} else {
				f.Libc("wcsncpy", p, src, f.Const(4))
				f.Free(p)
			}
			f.Free(src)
		},
	},
	{
		// Dangling string printed: printf-family interception is off for
		// the comparators; CECSan instruments the call site.
		name:     "print_after_free",
		heapOnly: true,
		build: func(c *caseBuilder) {
			f := c.f
			p, _ := c.buf()
			f.Libc("memset", p, f.Const('S'), f.Const(4))
			f.Store(p, 4, f.Const(0), prog.Char())
			if c.bad {
				f.Free(p)
				f.Libc("print_str", p)
			} else {
				f.Libc("print_str", p)
				f.Free(p)
			}
		},
	},
	{
		// UAF after the quarantine was flushed and the chunk reused:
		// ASan's design-level temporal limit.
		name:     "quarantine_flush",
		heapOnly: true,
		build: func(c *caseBuilder) {
			f := c.f
			p := f.MallocBytes(128 << 10)
			if c.bad {
				f.Free(p)
			}
			// In the bad version this claims p's recycled metadata entry,
			// so the stale tag resolves to foreign bounds.
			small := f.MallocBytes(24)
			f.ForRange(prog.ConstOperand(0), prog.ConstOperand(80), 1, func(i prog.Reg) {
				t := f.MallocBytes(128<<10 + 16)
				f.Store(t, 0, i, prog.Int64T())
				f.Free(t)
			})
			keep := f.MallocBytes(128 << 10) // reuses p's chunk, unpoisoning it
			f.Store(p, 8, f.Const(7), prog.Int64T())
			if !c.bad {
				f.Free(p)
			}
			f.Free(keep)
			f.Free(small)
		},
	},
	{
		name:     "helper_uaf",
		heapOnly: true,
		weight:   2,
		build: func(c *caseBuilder) {
			h := c.pb.Function("uaf_free_helper", 1)
			h.Free(h.Arg(0))
			h.RetVoid()
			f := c.f
			p, _ := c.buf()
			if c.bad {
				f.Call("uaf_free_helper", p)
				f.Store(p, 0, f.Const(1), c.d.elem)
			} else {
				f.Store(p, 0, f.Const(1), c.d.elem)
				f.Call("uaf_free_helper", p)
			}
		},
	},
	{
		name:       "input_guard_uaf",
		heapOnly:   true,
		needsInput: true,
		build: func(c *caseBuilder) {
			f := c.f
			p, _ := c.buf()
			c.input([]byte{0x00}, []byte{0x77})
			ibuf := f.Alloca(prog.ArrayOf(prog.Char(), 4))
			f.Libc("recv", ibuf, f.Const(1))
			b := f.Load(ibuf, 0, prog.Char())
			f.Free(p)
			f.If(f.Cmp(prog.CmpEq, b, f.Const(0x77)), func() {
				f.Store(p, 0, f.Const(2), c.d.elem)
			}, nil)
		},
	},
}

// ---- CWE761: free of pointer not at start of buffer ----

var invalidFreeShapes = []shape{
	{
		name:     "interior_const",
		heapOnly: true,
		weight:   4,
		build: func(c *caseBuilder) {
			// The bad pointer stays INSIDE the buffer (one element in), as
			// in Juliet's CWE761 cases — which is exactly why a pure tag
			// comparison cannot reject it.
			p, _ := c.buf()
			c.f.Free(c.f.OffsetPtr(p, c.pick(0, c.d.elem.Size())))
		},
	},
	{
		// Pointer advanced in a loop (strchr-style scan), then freed.
		name:     "interior_loop",
		heapOnly: true,
		weight:   3,
		build: func(c *caseBuilder) {
			f := c.f
			p, _ := c.buf()
			q := f.NewReg()
			f.Assign(q, p)
			steps := c.pick(0, 4)
			f.ForRange(prog.ConstOperand(0), prog.ConstOperand(steps), 1, func(prog.Reg) {
				f.Assign(q, f.OffsetPtr(q, c.d.elem.Size()))
			})
			f.Free(q)
		},
	},
	{
		// Freeing a stack object: HWASan's tag check passes (the pointer's
		// tag matches the stack memory), so it reaches the allocator
		// silently — part of its 0% CWE761 row.
		name:     "free_stack",
		heapOnly: true,
		weight:   2,
		build: func(c *caseBuilder) {
			f := c.f
			p, _ := c.buf() // heap buffer, freed legally on the good path
			sbuf := f.Alloca(prog.ArrayOf(prog.Char(), 16))
			f.Libc("memset", sbuf, f.Const(0), f.Const(16))
			if c.bad {
				f.Free(sbuf)
			}
			f.Free(p)
		},
	},
	{
		// Freeing an unsafe global.
		name:     "free_global",
		heapOnly: true,
		build: func(c *caseBuilder) {
			f := c.f
			p, _ := c.buf()
			g := f.GlobalAddr("g_src")
			f.Libc("memset", g, f.Const(0), f.Const(8))
			if c.bad {
				f.Free(g)
			}
			f.Free(p)
		},
	},
	{
		name:     "wide_interior",
		wide:     true,
		heapOnly: true,
		build: func(c *caseBuilder) {
			p, _ := c.buf()
			c.f.Free(c.f.OffsetPtr(p, c.pick(0, 4)))
		},
	},
	{
		name:       "input_offset_free",
		heapOnly:   true,
		needsInput: true,
		build: func(c *caseBuilder) {
			f := c.f
			p, _ := c.buf()
			c.input(le16(0), le16(8))
			k := recvU16(c)
			f.Free(f.OffsetPtrReg(p, k))
		},
	},
}
