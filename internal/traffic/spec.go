package traffic

import (
	"fmt"
	"math"
	"os"
	"sort"

	"cecsan/internal/obs"
	"cecsan/internal/sanitizers"
)

// Spec is a parsed workload specification: the traffic a campaign serves,
// decomposed into heterogeneous client classes the way serving-system
// workload generators model real populations (rate fractions, per-class
// arrival processes, per-class request shapes).
type Spec struct {
	// Version is the spec format version; "1" (or empty) today.
	Version string
	// Seed is the campaign base seed; every client stream derives from it.
	Seed uint64
	// AggregateRate is the total arrival rate across all clients, in
	// requests per second of virtual time.
	AggregateRate float64
	// MaxRequests bounds the generated stream; 0 means unbounded (the
	// long-running service mode — cmd/serve then bounds by -duration or a
	// signal).
	MaxRequests int
	// Clients are the traffic classes, in spec order. Spec order is part of
	// the determinism contract: it breaks arrival-time ties.
	Clients []ClientSpec
}

// ClientSpec is one traffic class.
type ClientSpec struct {
	// ID names the class; unique within a spec.
	ID string
	// RateFraction is this class's share of AggregateRate; fractions sum
	// to 1 (±1e-6).
	RateFraction float64
	// Tool is the sanitizer profile requests of this class run under — a
	// sanitizers registry name ("CECSan", "CECSan-hardened", "ASan", ...).
	Tool string
	// DeadlineMS is the per-request latency SLO in wall-clock milliseconds,
	// measured from admission to completion; 0 disables deadline-miss
	// accounting for the class.
	DeadlineMS float64
	// Arrival selects the inter-arrival process.
	Arrival ArrivalSpec
	// Program selects the request-shape generator.
	Program ProgramSpec
	// Budget bounds each request's execution (the PR 3 fault machinery).
	Budget BudgetSpec
	// SLO declares the class's service-level objectives; nil means the
	// class has none (no burn-rate evaluation, no slo_* gauges).
	SLO *SLOSpec
}

// SLOSpec declares one class's service-level objectives, evaluated by the
// obs SLO engine as cumulative budget consumption plus multi-window burn
// rates over the class's terminal accounting.
type SLOSpec struct {
	// Target is the goodput objective in (0, 1): the fraction of terminally
	// accounted requests that must be good — completed within the class
	// deadline. 1 - Target is the error budget.
	Target float64
	// P99MS, when > 0, additionally bounds the class's p99 latency in
	// milliseconds (read from the class latency histogram).
	P99MS float64
	// ShortWindowS / LongWindowS are the burn-rate windows in seconds
	// (defaults 10 / 60; at most 240).
	ShortWindowS float64
	LongWindowS  float64
}

// ArrivalSpec selects and parameterizes an inter-arrival process.
type ArrivalSpec struct {
	// Process is "poisson", "gamma" or "weibull".
	Process string
	// CV is the gamma process's coefficient of variation (CV > 1 = bursty,
	// CV < 1 = regular); default 2.0. Ignored by the other processes.
	CV float64
	// Shape is the weibull shape parameter; default 1.5. Ignored by the
	// other processes.
	Shape float64
}

// ProgramSpec selects the per-request program generator for a class.
type ProgramSpec struct {
	// Kind is "spatial" (short check-heavy programs), "churn" (alloc-churn /
	// temporal programs), "mixed" (both in one program) or "fuzz" (the full
	// differential-fuzzing generator, taxonomy bugs included).
	Kind string
	// Variants is how many distinct programs the class draws from (like a
	// production service replaying a bounded family of handlers); requests
	// pick uniformly among them, so the instrumentation cache converges to
	// run-path hits. Default 8.
	Variants int
}

// BudgetSpec bounds one request's execution.
type BudgetSpec struct {
	// MaxSteps is the per-request instruction budget (0 = engine default).
	MaxSteps int64
	// WallMS is the per-request wall-clock watchdog in milliseconds
	// (0 = none).
	WallMS float64
	// HeapBytes is the per-request live-heap bound (0 = none).
	HeapBytes int64
}

// Arrival process names.
const (
	ProcessPoisson = "poisson"
	ProcessGamma   = "gamma"
	ProcessWeibull = "weibull"
)

// Program generator kinds.
const (
	KindSpatial = "spatial"
	KindChurn   = "churn"
	KindMixed   = "mixed"
	KindFuzz    = "fuzz"
)

// DefaultVariants is the per-class program-variant count when the spec does
// not set one.
const DefaultVariants = 8

// Load reads and parses a workload spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("traffic: %w", err)
	}
	s, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("traffic: %s: %w", path, err)
	}
	return s, nil
}

// Parse parses a workload spec from YAML source and validates it.
func Parse(src string) (*Spec, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	top, ok := root.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("spec root must be a mapping")
	}
	d := &decoder{}
	spec := &Spec{
		Version:       d.str(top, "version", ""),
		Seed:          d.uint64(top, "seed", 1),
		AggregateRate: d.float(top, "aggregate_rate", 0),
		MaxRequests:   int(d.int64(top, "max_requests", 0)),
	}
	clients, ok := top["clients"].([]any)
	if top["clients"] != nil && !ok {
		d.errf("clients: must be a sequence")
	}
	for i, cv := range clients {
		cm, ok := cv.(map[string]any)
		if !ok {
			d.errf("clients[%d]: must be a mapping", i)
			continue
		}
		c := ClientSpec{
			ID:           d.str(cm, "id", ""),
			RateFraction: d.float(cm, "rate_fraction", 0),
			Tool:         d.str(cm, "profile", string(sanitizers.CECSan)),
			DeadlineMS:   d.float(cm, "deadline_ms", 0),
			Arrival:      ArrivalSpec{Process: ProcessPoisson, CV: 2.0, Shape: 1.5},
			Program:      ProgramSpec{Kind: KindSpatial, Variants: DefaultVariants},
		}
		if am := d.section(cm, "arrival", i); am != nil {
			c.Arrival.Process = d.str(am, "process", ProcessPoisson)
			c.Arrival.CV = d.float(am, "cv", 2.0)
			c.Arrival.Shape = d.float(am, "shape", 1.5)
		}
		if pm := d.section(cm, "program", i); pm != nil {
			c.Program.Kind = d.str(pm, "kind", KindSpatial)
			c.Program.Variants = int(d.int64(pm, "variants", DefaultVariants))
		}
		if bm := d.section(cm, "budget", i); bm != nil {
			c.Budget.MaxSteps = d.int64(bm, "max_steps", 0)
			c.Budget.WallMS = d.float(bm, "wall_ms", 0)
			c.Budget.HeapBytes = d.int64(bm, "heap_bytes", 0)
		}
		if sm := d.section(cm, "slo", i); sm != nil {
			c.SLO = &SLOSpec{
				Target:       d.float(sm, "target", 0),
				P99MS:        d.float(sm, "p99_ms", 0),
				ShortWindowS: d.float(sm, "short_window_s", 10),
				LongWindowS:  d.float(sm, "long_window_s", 60),
			}
		}
		spec.Clients = append(spec.Clients, c)
	}
	if d.err != nil {
		return nil, d.err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// decoder accumulates type errors while pulling fields out of the generic
// parse tree, so one Parse call reports the first real problem with its
// field path.
type decoder struct{ err error }

func (d *decoder) errf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) section(m map[string]any, key string, client int) map[string]any {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	sm, ok := v.(map[string]any)
	if !ok {
		d.errf("clients[%d].%s: must be a mapping", client, key)
		return nil
	}
	return sm
}

func (d *decoder) str(m map[string]any, key, def string) string {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.errf("%s: expected a string, got %T", key, v)
		return def
	}
	return s
}

func (d *decoder) float(m map[string]any, key string, def float64) float64 {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	switch n := v.(type) {
	case float64:
		return n
	case int64:
		return float64(n)
	case uint64:
		return float64(n)
	}
	d.errf("%s: expected a number, got %T", key, v)
	return def
}

func (d *decoder) int64(m map[string]any, key string, def int64) int64 {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	switch n := v.(type) {
	case int64:
		return n
	case uint64:
		if n <= math.MaxInt64 {
			return int64(n)
		}
	}
	d.errf("%s: expected an integer, got %T", key, v)
	return def
}

func (d *decoder) uint64(m map[string]any, key string, def uint64) uint64 {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	switch n := v.(type) {
	case int64:
		if n >= 0 {
			return uint64(n)
		}
	case uint64:
		return n
	}
	d.errf("%s: expected a non-negative integer, got %T", key, v)
	return def
}

// Validate checks the spec's cross-field invariants.
func (s *Spec) Validate() error {
	if s.Version != "" && s.Version != "1" {
		return fmt.Errorf("unsupported spec version %q (want \"1\")", s.Version)
	}
	if s.AggregateRate <= 0 {
		return fmt.Errorf("aggregate_rate must be > 0")
	}
	if s.MaxRequests < 0 {
		return fmt.Errorf("max_requests must be >= 0")
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("spec needs at least one client")
	}
	seen := map[string]bool{}
	var fracSum float64
	for i := range s.Clients {
		c := &s.Clients[i]
		where := fmt.Sprintf("clients[%d]", i)
		if c.ID != "" {
			where = fmt.Sprintf("client %q", c.ID)
		}
		if c.ID == "" {
			return fmt.Errorf("%s: id is required", where)
		}
		if seen[c.ID] {
			return fmt.Errorf("duplicate client id %q", c.ID)
		}
		seen[c.ID] = true
		if c.RateFraction <= 0 || c.RateFraction > 1 {
			return fmt.Errorf("%s: rate_fraction must be in (0, 1]", where)
		}
		fracSum += c.RateFraction
		if _, err := sanitizers.ProfileFor(sanitizers.Name(c.Tool)); err != nil {
			return fmt.Errorf("%s: unknown profile %q", where, c.Tool)
		}
		switch c.Arrival.Process {
		case ProcessPoisson:
		case ProcessGamma:
			if c.Arrival.CV <= 0 {
				return fmt.Errorf("%s: gamma cv must be > 0", where)
			}
		case ProcessWeibull:
			if c.Arrival.Shape <= 0 {
				return fmt.Errorf("%s: weibull shape must be > 0", where)
			}
		default:
			return fmt.Errorf("%s: unknown arrival process %q (want %s)", where,
				c.Arrival.Process, processNames())
		}
		switch c.Program.Kind {
		case KindSpatial, KindChurn, KindMixed, KindFuzz:
		default:
			return fmt.Errorf("%s: unknown program kind %q (want %s)", where,
				c.Program.Kind, kindNames())
		}
		if c.Program.Variants < 1 {
			return fmt.Errorf("%s: program variants must be >= 1", where)
		}
		if c.DeadlineMS < 0 || c.Budget.WallMS < 0 || c.Budget.MaxSteps < 0 || c.Budget.HeapBytes < 0 {
			return fmt.Errorf("%s: deadlines and budgets must be >= 0", where)
		}
		if o := c.SLO; o != nil {
			if o.Target <= 0 || o.Target >= 1 {
				return fmt.Errorf("%s: slo target must be in (0, 1)", where)
			}
			if o.P99MS < 0 {
				return fmt.Errorf("%s: slo p99_ms must be >= 0", where)
			}
			maxWindow := obs.MaxSLOWindow.Seconds()
			if o.ShortWindowS <= 0 || o.LongWindowS <= 0 ||
				o.ShortWindowS > o.LongWindowS || o.LongWindowS > maxWindow {
				return fmt.Errorf("%s: slo windows must satisfy 0 < short <= long <= %.0fs", where, maxWindow)
			}
		}
	}
	if math.Abs(fracSum-1) > 1e-6 {
		return fmt.Errorf("rate_fractions sum to %.6f, want 1", fracSum)
	}
	return nil
}

func processNames() string { return ProcessPoisson + "|" + ProcessGamma + "|" + ProcessWeibull }

func kindNames() string {
	names := []string{KindSpatial, KindChurn, KindMixed, KindFuzz}
	sort.Strings(names)
	return names[0] + "|" + names[1] + "|" + names[2] + "|" + names[3]
}
