package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("c_total"); same != c {
		t.Fatal("re-registering the same counter must return the existing instrument")
	}
	g := r.Gauge("g", L("tool", "CECSan"))
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	// Same name, different labels: distinct series.
	g2 := r.Gauge("g", L("tool", "ASan"))
	if g2 == g {
		t.Fatal("different label sets must be distinct series")
	}
	if v, ok := r.Value("g", L("tool", "CECSan")); !ok || v != 5 {
		t.Fatalf("Value(g{tool=CECSan}) = %v, %v", v, ok)
	}
	if _, ok := r.Value("absent"); ok {
		t.Fatal("Value must report absent series")
	}
}

func TestGaugeFuncOverwrite(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("fn", func() float64 { return 1 })
	r.GaugeFunc("fn", func() float64 { return 2 })
	if v, ok := r.Value("fn"); !ok || v != 2 {
		t.Fatalf("Value(fn) = %v, %v; want 2 (last registration wins)", v, ok)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("a", L("x", "2")).Set(4)
	r.Gauge("a", L("x", "1")).Set(3)
	snap := r.Snapshot()
	var names []string
	for _, m := range snap {
		names = append(names, m.Name+labelKey(labelsOf(m)))
	}
	want := []string{`a`, `a{x="1"}`, `a{x="2"}`, `b`}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order %v, want %v", names, want)
		}
	}
	var b1, b2 strings.Builder
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("two snapshots of identical state must render identically")
	}
}

func labelsOf(m Metric) []Label {
	var ls []Label
	for k, v := range m.Labels {
		ls = append(ls, L(k, v))
	}
	return ls
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", L("tool", "CECSan")).Add(3)
	h := r.Histogram("dur_us")
	h.Observe(1)
	h.Observe(5)
	h.Observe(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dur_us histogram",
		"# TYPE runs_total counter",
		`runs_total{tool="CECSan"} 3`,
		`dur_us_bucket{le="1"} 1`,
		`dur_us_bucket{le="7"} 3`, // cumulative: the le=7 bucket includes le=1
		`dur_us_bucket{le="+Inf"} 3`,
		"dur_us_sum 11",
		"dur_us_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	// Exactly backslash, double-quote and newline are escaped in label
	// values; a tab must pass through literally (Go's %q would emit the
	// invalid \t escape).
	r.Counter("esc_total", L("v", "a\\b\"c\nd\te")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{v="a\\b\"c\nd` + "\t" + `e"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped series missing, want %q in:\n%s", want, b.String())
	}
}

func TestPrometheusHelpBeforeType(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Inc()
	r.Counter("a_total").Inc()
	r.SetHelp("a_total", "the a counter\nsecond line \\ with backslash")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	help := strings.Index(out, `# HELP a_total the a counter\nsecond line \\ with backslash`)
	typ := strings.Index(out, "# TYPE a_total counter")
	if help < 0 || typ < 0 {
		t.Fatalf("missing HELP or TYPE line:\n%s", out)
	}
	if help > typ {
		t.Fatalf("# HELP must precede # TYPE for a family:\n%s", out)
	}
	if strings.Contains(out, "# HELP b_total") {
		t.Fatalf("b_total has no registered help, none must be emitted:\n%s", out)
	}
}

func TestPrometheusTypeLineOncePerFamily(t *testing.T) {
	r := NewRegistry()
	r.Counter("multi_total", L("class", "a")).Inc()
	r.Counter("multi_total", L("class", "b")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), "# TYPE multi_total counter"); n != 1 {
		t.Fatalf("TYPE line emitted %d times for a two-series family:\n%s", n, b.String())
	}
}

func TestPrometheusHistogramConformance(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", L("class", "a"))
	h.Observe(1)
	h.Observe(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// The +Inf bucket is mandatory, must equal _count, and must come after
	// every finite bucket; _sum and _count close the family.
	var infIdx, lastBucketIdx, sumIdx, countIdx int = -1, -1, -1, -1
	for i, ln := range lines {
		switch {
		case strings.HasPrefix(ln, `lat_us_bucket{class="a",le="+Inf"}`):
			infIdx = i
		case strings.HasPrefix(ln, "lat_us_bucket"):
			lastBucketIdx = i
		case strings.HasPrefix(ln, "lat_us_sum"):
			sumIdx = i
		case strings.HasPrefix(ln, "lat_us_count"):
			countIdx = i
		}
	}
	if infIdx < 0 || sumIdx < 0 || countIdx < 0 {
		t.Fatalf("missing +Inf bucket, _sum or _count:\n%s", out)
	}
	if lastBucketIdx > infIdx {
		t.Fatalf("+Inf bucket must be the last bucket:\n%s", out)
	}
	if !strings.HasSuffix(lines[infIdx], " 2") || !strings.HasSuffix(lines[countIdx], " 2") {
		t.Fatalf("+Inf bucket and _count must both equal the observation count:\n%s", out)
	}
	if !strings.HasSuffix(lines[sumIdx], " 6") {
		t.Fatalf("_sum must be 6 (1+5):\n%s", out)
	}
}
