// Loopopt reproduces the paper's Figure 4 check optimizations (§II.F):
// it runs the same array-sweep program with each CECSan optimization pass
// toggled and prints how many runtime checks actually executed — the
// loop-invariant relocation, the monotonic check_step grouping, and the
// type-based removal.
package main

import (
	"fmt"
	"os"

	"cecsan"
	"cecsan/prog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loopopt:", err)
		os.Exit(1)
	}
}

// build constructs the Figure 4-flavoured kernel:
//
//	int64 buf_good[64]; int64 *heapbuf = malloc(8*N);
//	for (i = 0; i < N; i++) heapbuf[i] = i;     // monotonic accesses
//	for (i = 0; i < N; i++) *flag = i;          // loop-invariant store
//	x = buf_good[15];                            // statically in-bounds
func build(n int64) (*prog.Program, error) {
	pb := prog.NewProgram()
	pb.Global("buf_good", prog.ArrayOf(prog.Int64T(), 64))
	f := pb.Function("main", 0)
	heapbuf := f.MallocBytes(8 * n)
	flag := f.MallocBytes(8)
	r := f.Libc("rand")
	flagp := f.OffsetPtrReg(flag, f.Bin(prog.BinAnd, r, f.Const(0)))

	f.ForRange(prog.ConstOperand(0), prog.ConstOperand(n), 1, func(i prog.Reg) {
		f.Store(f.ElemPtr(heapbuf, prog.Int64T(), i), 0, i, prog.Int64T())
	})
	f.ForRange(prog.ConstOperand(0), prog.ConstOperand(n), 1, func(i prog.Reg) {
		f.Store(flagp, 0, i, prog.Int64T())
	})
	g := f.GlobalAddr("buf_good")
	x := f.Load(f.IndexPtr(g, prog.ArrayOf(prog.Int64T(), 64), f.Const(15)), 0, prog.Int64T())
	f.Libc("print_int", x)
	f.Free(heapbuf)
	f.Free(flag)
	f.RetVoid()
	return pb.Build()
}

func run() error {
	const n = 100000
	p, err := build(n)
	if err != nil {
		return err
	}

	configs := []struct {
		label string
		tweak func(*cecsan.CECSanOptions)
	}{
		{"all optimizations ON (paper default)", func(*cecsan.CECSanOptions) {}},
		{"monotonic grouping OFF", func(o *cecsan.CECSanOptions) { o.OptMonotonic = false }},
		{"loop-invariant relocation OFF", func(o *cecsan.CECSanOptions) { o.OptLoopInvariant = false }},
		{"type-based removal OFF", func(o *cecsan.CECSanOptions) { o.OptTypeBased = false }},
		{"redundancy elimination OFF", func(o *cecsan.CECSanOptions) { o.OptRedundant = false }},
		{"ALL optimizations OFF", func(o *cecsan.CECSanOptions) {
			o.OptMonotonic, o.OptLoopInvariant, o.OptTypeBased, o.OptRedundant = false, false, false, false
		}},
	}

	fmt.Printf("kernel: two %d-iteration loops + one statically safe access\n\n", n)
	fmt.Printf("%-40s %15s\n", "configuration", "checks executed")
	for _, cfg := range configs {
		opts := cecsan.DefaultCECSanOptions()
		cfg.tweak(&opts)
		res, err := cecsan.Run(p, cecsan.Config{Sanitizer: cecsan.CECSan, CECSan: &opts})
		if err != nil {
			return err
		}
		if res.Violation != nil {
			return fmt.Errorf("unexpected report under %q: %v", cfg.label, res.Violation)
		}
		fmt.Printf("%-40s %15d\n", cfg.label, res.Stats.ChecksExecuted)
	}
	return nil
}
