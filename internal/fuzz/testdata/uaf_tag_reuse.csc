// Minimized fuzz reproducer: staged tag-reuse use-after-free
// (taxonomy shape uaf_quarantine_flush, minimized from campaign
// seed 5266705631892356520).
//
// The stale pointer o dangles into a chunk that a same-size malloc has
// recycled. The churn loop flushes ASan's 2 MiB quarantine, and the
// metadata table's GMI free structure (internal/core/metatable.go,
// Figure 2) hands the freed entry index straight back to the final
// malloc — so o's tag resolves to a live entry whose bounds cover the
// very address it dangles into.
//
// Expected outcomes (see internal/fuzz/models.go):
//   CECSan, PACMem, CryptSan  silent  (tag/index reuse window)
//   ASan, ASAN--              silent  (quarantine flushed, chunk recycled)
//   HWASan                    probabilistic (free and re-malloc retag)
//   SoftBound/CETS            reports use-after-free (key/lock mismatch)
//   native                    silent
func main() {
    var o = malloc(27);
    free(o);
    for (i = 0; i < 24; i += 1) { var t = malloc(131072); free(t); }
    var u = malloc(27);
    o[10] = 3;
    return 0;
}
