// Command julietbench regenerates the paper's security evaluation on the
// Juliet-style suite: Table I (suite composition) and Table II (per-CWE
// detection rates for CECSan, PACMem, CryptSan, HWASan, ASan and
// SoftBound/CETS, each on its published evaluation subset).
//
// Usage:
//
//	julietbench [-table 1|2] [-scale 1.0] [-workers N] [-progress N]
//	            [-json BENCH_table2.json]
//
// -scale shrinks the suite proportionally (e.g. 0.1 runs ~1,575 cases) for
// quick runs; 1.0 is the full 15,752-case Table I suite. -json additionally
// writes a machine-readable benchmark record (wall time, cases/sec,
// instrumentation-cache hit rate, per-tool rates and false positives).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cecsan/internal/cliutil"
	"cecsan/internal/harness"
	"cecsan/internal/juliet"
	"cecsan/internal/sanitizers"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "julietbench:", err)
		os.Exit(1)
	}
}

// toolJSON is one tool's entry in the -json record.
type toolJSON struct {
	Name              string             `json:"name"`
	Cases             int                `json:"cases"`
	Runs              int64              `json:"runs"`
	FalsePositives    int                `json:"false_positives"`
	RatesPct          map[string]float64 `json:"rates_pct"`
	WallSeconds       float64            `json:"wall_seconds"`
	CasesPerSec       float64            `json:"cases_per_sec"`
	CacheHits         int64              `json:"cache_hits"`
	CacheMisses       int64              `json:"cache_misses"`
	CachePrefills     int64              `json:"cache_prefills"`
	CacheOverflows    int64              `json:"cache_overflows"`
	CacheHitRate      float64            `json:"cache_hit_rate"`
	InstrumentSeconds float64            `json:"instrument_seconds"`
	ExecuteSeconds    float64            `json:"execute_seconds"`
}

// benchJSON is the BENCH_table2.json schema.
type benchJSON struct {
	Table       int        `json:"table"`
	Scale       float64    `json:"scale"`
	Cases       int        `json:"cases"`
	Workers     int        `json:"workers"`
	WallSeconds float64    `json:"wall_seconds"`
	CasesPerSec float64    `json:"cases_per_sec"`
	Tools       []toolJSON `json:"tools"`
}

func run() error {
	table := flag.Int("table", 2, "which table to regenerate (1 or 2)")
	scale := flag.Float64("scale", 1.0, "suite scale factor (1.0 = full 15,752 cases)")
	workers := cliutil.WorkersFlag()
	progress := flag.Int("progress", 200, "print per-tool progress every N cases (0 = off)")
	jsonPath := flag.String("json", "", "also write a machine-readable benchmark record to this path")
	obsFlags := cliutil.ObsFlagsCmd()
	flag.Parse()

	o, srv, err := obsFlags.Build()
	if err != nil {
		return err
	}
	harness.Obs = o
	defer func() { harness.Obs = nil }()

	counts := juliet.TableI()
	var suite []*juliet.Case
	for _, cwe := range juliet.AllCWEs() {
		n := int(float64(counts[cwe]) * *scale)
		if n < 1 {
			n = 1
		}
		cases, err := juliet.Generate(cwe, n)
		if err != nil {
			return err
		}
		suite = append(suite, cases...)
	}

	if *table == 1 {
		fmt.Println(harness.FormatTable1(suite))
		return nil
	}

	if *progress > 0 {
		harness.ProgressEvery = *progress
		harness.Progress = func(tool sanitizers.Name, done, total int) {
			fmt.Fprintf(os.Stderr, "  %-14s %d/%d cases\n", tool, done, total)
		}
	}

	tools := []sanitizers.Name{
		sanitizers.CECSan, sanitizers.PACMem, sanitizers.CryptSan,
		sanitizers.HWASan, sanitizers.ASan, sanitizers.SoftBound,
	}
	fmt.Printf("evaluating %d cases x %d tools...\n", len(suite), len(tools))
	start := time.Now()
	eval, err := harness.EvaluateJuliet(suite, tools, *workers)
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	fmt.Println(harness.FormatTable2(eval))
	fmt.Printf("(%d cases, %.1fs)\n", len(suite), wall)

	var totalRuns int64
	var totalHits, totalLookups int64
	for _, tr := range eval.Tools {
		totalRuns += tr.Engine.Runs
		totalHits += tr.Engine.CacheHits
		totalLookups += tr.Engine.CacheHits + tr.Engine.CacheMisses
	}
	hitRate := 0.0
	if totalLookups > 0 {
		hitRate = float64(totalHits) / float64(totalLookups)
	}
	fmt.Printf("engine: %d runs, %.0f cases/sec, instrumentation cache hit rate %.1f%%\n",
		totalRuns, float64(totalRuns)/wall, 100*hitRate)

	if *jsonPath != "" {
		rec := benchJSON{
			Table:       *table,
			Scale:       *scale,
			Cases:       len(suite),
			Workers:     cliutil.ResolveWorkers(*workers),
			WallSeconds: wall,
			CasesPerSec: float64(totalRuns) / wall,
		}
		for _, tr := range eval.Tools {
			tj := toolJSON{
				Name:              string(tr.Name),
				Cases:             tr.Cases,
				Runs:              tr.Engine.Runs,
				FalsePositives:    tr.TotalFalsePositives(),
				RatesPct:          make(map[string]float64),
				WallSeconds:       tr.Engine.Wall.Seconds(),
				CasesPerSec:       tr.Engine.CasesPerSec(),
				CacheHits:         tr.Engine.CacheHits,
				CacheMisses:       tr.Engine.CacheMisses,
				CachePrefills:     tr.Engine.CachePrefills,
				CacheOverflows:    tr.Engine.CacheOverflows,
				CacheHitRate:      tr.Engine.CacheHitRate(),
				InstrumentSeconds: tr.Engine.InstrumentTime.Seconds(),
				ExecuteSeconds:    tr.Engine.ExecuteTime.Seconds(),
			}
			for cwe, s := range tr.PerCWE {
				tj.RatesPct[cwe.String()] = s.Rate()
			}
			rec.Tools = append(rec.Tools, tj)
		}
		if err := cliutil.WriteJSON(*jsonPath, rec); err != nil {
			return err
		}
	}
	return obsFlags.Finish(o, srv, 0)
}
