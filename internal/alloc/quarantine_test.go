package alloc

import "testing"

// TestQuarantineDelaysAddressReuse pins the quarantine's core property: a
// freed chunk's address is not re-handed-out while the chunk is held, even
// though the allocator's LIFO size-class lists would otherwise recycle it on
// the very next same-size allocation.
func TestQuarantineDelaysAddressReuse(t *testing.T) {
	h := NewHeap()
	a, err := h.Alloc(64)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	q := NewQuarantine(1 << 20)
	if !q.Free(h, a) {
		t.Fatal("Free returned false for a live chunk")
	}
	if _, live := h.Lookup(a); !live {
		t.Fatal("quarantined chunk left the heap's live set; its RSS must stay program-visible")
	}
	b, err := h.Alloc(64)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if b == a {
		t.Fatal("quarantined address was recycled immediately")
	}
	// Flushing trades the delay back: the chunk is genuinely freed and the
	// LIFO list hands its address out again.
	if n := q.Flush(h); n != 1 {
		t.Fatalf("Flush released %d chunks, want 1", n)
	}
	if _, live := h.Lookup(a); live {
		t.Fatal("chunk still live after Flush")
	}
	c, err := h.Alloc(64)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if c != a {
		t.Fatalf("post-flush Alloc = %#x, want the flushed address %#x", c, a)
	}
	if got := q.Stats().Flushes; got != 1 {
		t.Errorf("Flushes = %d, want 1", got)
	}
}

// TestQuarantineEviction pins the bounded-budget degradation: once held
// bytes exceed the budget the oldest chunks are released (counted), so the
// RSS cost is capped and coverage degrades FIFO-gracefully rather than
// failing.
func TestQuarantineEviction(t *testing.T) {
	h := NewHeap()
	var addrs [3]uint64
	for i := range addrs {
		a, err := h.Alloc(64)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		addrs[i] = a
	}
	q := NewQuarantine(128)
	for _, a := range addrs {
		q.Free(h, a)
	}
	s := q.Stats()
	if s.Evictions != 1 || s.HeldChunks != 2 || s.HeldBytes != 128 {
		t.Fatalf("Stats = %+v, want 1 eviction with 2 chunks / 128 bytes held", s)
	}
	// The evicted (oldest) address is reusable; the held ones are not.
	b, err := h.Alloc(64)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if b != addrs[0] {
		t.Fatalf("post-eviction Alloc = %#x, want the evicted address %#x", b, addrs[0])
	}
}

// TestQuarantineForeignFree pins the silent-UB contract: an address that is
// not a live chunk base bypasses the quarantine and lands in Heap.Free's
// ordinary error accounting.
func TestQuarantineForeignFree(t *testing.T) {
	h := NewHeap()
	q := NewQuarantine(1 << 20)
	if q.Free(h, 0xdead0) {
		t.Error("Free of a non-chunk address reported true")
	}
	if got := q.Stats().HeldChunks; got != 0 {
		t.Errorf("non-chunk free was quarantined: %d chunks held", got)
	}
}

// TestQuarantineReset pins the pooling contract: Reset forgets held chunks
// and zeroes every counter without touching the heap (the engine resets the
// heap in the same breath).
func TestQuarantineReset(t *testing.T) {
	h := NewHeap()
	a, err := h.Alloc(64)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	q := NewQuarantine(16)
	q.Free(h, a) // evicts immediately (64 > 16): counter churn
	b, _ := h.Alloc(128)
	q.Free(h, b)
	q.Flush(h)
	q.Reset()
	if got, want := q.Stats(), (QuarantineStats{Budget: 16}); got != want {
		t.Errorf("Stats after Reset = %+v, want %+v", got, want)
	}
	if got := q.OverheadBytes(); got != 0 {
		t.Errorf("OverheadBytes after Reset = %d, want 0", got)
	}
}
