package traffic

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cecsan/internal/core"
	"cecsan/internal/engine"
	"cecsan/internal/faultinject"
	"cecsan/internal/interp"
	"cecsan/internal/sanitizers"
)

// ResilienceConfig tunes the overload-resilience layer: adaptive admission,
// the retry policy, per-class circuit breakers and the graceful-degradation
// ladder. The zero value selects the documented defaults; -1 disables the
// corresponding mechanism (0 never means "off", so a partially filled config
// still gets sane behaviour everywhere else).
type ResilienceConfig struct {
	// BreakerWindow is the sliding window of recent execution attempts a
	// class's circuit breaker evaluates (default 24).
	BreakerWindow int
	// BreakerThreshold is the fault rate over a full window that trips the
	// breaker open (default 0.3).
	BreakerThreshold float64
	// BreakerCooldown is how many requests the breaker rejects while open
	// before letting one probe through half-open. Counting requests rather
	// than wall time keeps the state machine deterministic under the chaos
	// campaign (default 12). -1 disables breakers.
	BreakerCooldown int
	// RetryMax bounds retries per request (default 2, -1 disables retries).
	RetryMax int
	// RetryBaseUS is the exponential-backoff base delay in microseconds
	// (default 500); RetryCapUS caps it (default 10_000).
	RetryBaseUS int64
	RetryCapUS  int64
	// LadderTrips is how many breaker trips at the current rung step a
	// class one rung down the degradation ladder (default 2, -1 freezes
	// the ladder at full hardening).
	LadderTrips int
	// LadderRecovery is how many consecutive clean completions step a
	// degraded class one rung back up (default 48).
	LadderRecovery int
	// CoDelTargetUS is the queue-delay target of the CoDel-style admission
	// controller: requests are shed only when dequeue delay stays above
	// the target for a full control interval (default 5_000). -1 disables
	// delay-based shedding. The controller is wall-clock driven and is
	// therefore not armed in the deterministic chaos mode.
	CoDelTargetUS int64
	// CoDelIntervalUS is the CoDel control interval (default 50_000).
	CoDelIntervalUS int64
	// BucketHeadroom scales each class's open-loop token-bucket rate above
	// its fair share of the offered load (default 1.5): a class may burst
	// to headroom x its share, beyond which its requests are shed before
	// admission instead of starving other classes. -1 disables buckets.
	BucketHeadroom float64
}

// Resilience defaults (see ResilienceConfig).
const (
	defaultBreakerWindow   = 24
	defaultBreakerThresh   = 0.3
	defaultBreakerCooldown = 12
	defaultRetryMax        = 2
	defaultRetryBaseUS     = 500
	defaultRetryCapUS      = 10_000
	defaultLadderTrips     = 2
	defaultLadderRecovery  = 48
	defaultCoDelTargetUS   = 5_000
	defaultCoDelIntervalUS = 50_000
	defaultBucketHeadroom  = 1.5
)

// resolve fills defaults and normalizes the -1 sentinels into usable values
// (disabled mechanisms keep the sentinel; callers test for it).
func (c ResilienceConfig) resolve() ResilienceConfig {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.BreakerWindow, defaultBreakerWindow)
	def(&c.BreakerCooldown, defaultBreakerCooldown)
	def(&c.RetryMax, defaultRetryMax)
	def(&c.LadderTrips, defaultLadderTrips)
	def(&c.LadderRecovery, defaultLadderRecovery)
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = defaultBreakerThresh
	}
	if c.RetryBaseUS == 0 {
		c.RetryBaseUS = defaultRetryBaseUS
	}
	if c.RetryCapUS == 0 {
		c.RetryCapUS = defaultRetryCapUS
	}
	if c.CoDelTargetUS == 0 {
		c.CoDelTargetUS = defaultCoDelTargetUS
	}
	if c.CoDelIntervalUS == 0 {
		c.CoDelIntervalUS = defaultCoDelIntervalUS
	}
	if c.BucketHeadroom == 0 {
		c.BucketHeadroom = defaultBucketHeadroom
	}
	return c
}

// Circuit-breaker states, in gauge encoding (traffic_breaker_state).
const (
	breakerClosed int32 = iota
	breakerHalfOpen
	breakerOpen
)

// breaker is one class's circuit breaker. It watches a sliding window of
// execution-attempt outcomes; when a full window's fault rate reaches the
// threshold it opens and rejects requests outright — the class is failing
// fast instead of burning workers on doomed runs. After cooldown rejected
// requests it half-opens, letting exactly one probe through: a clean probe
// closes it, a faulted probe re-opens it. All state transitions are driven
// by request counts and outcomes, never wall time, so a fixed outcome
// sequence walks a fixed state sequence — the property the chaos campaign's
// byte-determinism rests on.
type breaker struct {
	threshold float64
	cooldown  int

	mu       sync.Mutex
	window   []bool // ring buffer, true = fault
	filled   int
	idx      int
	faults   int
	state    int32
	coolLeft int
	probing  bool

	trips    atomic.Int64
	rejected atomic.Int64
	stateG   atomic.Int32 // lock-free mirror for the state gauge
}

func newBreaker(cfg ResilienceConfig) *breaker {
	if cfg.BreakerCooldown < 0 {
		return nil
	}
	return &breaker{
		threshold: cfg.BreakerThreshold,
		cooldown:  cfg.BreakerCooldown,
		window:    make([]bool, cfg.BreakerWindow),
	}
}

// allow reports whether a request may execute. A false return means the
// breaker rejected it (counted); the caller must not run it.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		b.coolLeft--
		if b.coolLeft <= 0 {
			b.state = breakerHalfOpen
			b.stateG.Store(breakerHalfOpen)
			b.probing = true
			return true // this request is the half-open probe
		}
		b.rejected.Add(1)
		return false
	default: // half-open
		if !b.probing {
			b.probing = true
			return true
		}
		b.rejected.Add(1)
		return false
	}
}

// record folds one execution attempt's outcome in and reports whether it
// tripped the breaker (the caller feeds trips to the degradation ladder).
func (b *breaker) record(fault bool) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		if fault {
			b.trip()
			return true
		}
		// Probe came back clean: close on a fresh window.
		b.clearWindow()
		b.state = breakerClosed
		b.stateG.Store(breakerClosed)
		return false
	case breakerOpen:
		// A request admitted just before a concurrent trip: its outcome
		// arrives while open. Nothing to learn — the window restarts on
		// the next close anyway.
		return false
	}
	if b.filled == len(b.window) {
		if b.window[b.idx] {
			b.faults--
		}
	} else {
		b.filled++
	}
	b.window[b.idx] = fault
	if fault {
		b.faults++
	}
	b.idx = (b.idx + 1) % len(b.window)
	if b.filled == len(b.window) && float64(b.faults) >= b.threshold*float64(len(b.window)) {
		b.trip()
		return true
	}
	return false
}

// trip opens the breaker (caller holds the lock).
func (b *breaker) trip() {
	b.trips.Add(1)
	b.state = breakerOpen
	b.stateG.Store(breakerOpen)
	b.coolLeft = b.cooldown
	b.clearWindow()
}

func (b *breaker) clearWindow() {
	for i := range b.window {
		b.window[i] = false
	}
	b.filled, b.idx, b.faults = 0, 0, 0
}

// BreakerState is a circuit breaker's full serializable state. The breaker
// is request-counted — no wall clocks anywhere in its state machine — so a
// restore resumes it exactly, which is what keeps resumed chaos campaigns
// byte-identical to uninterrupted ones.
type BreakerState struct {
	Window   []bool `json:"window"`
	Filled   int    `json:"filled"`
	Idx      int    `json:"idx"`
	Faults   int    `json:"faults"`
	State    int32  `json:"state"`
	CoolLeft int    `json:"cool_left"`
	Probing  bool   `json:"probing"`
	Trips    int64  `json:"trips"`
	Rejected int64  `json:"rejected"`
}

// export captures the breaker state under its lock.
func (b *breaker) export() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerState{
		Window:   append([]bool(nil), b.window...),
		Filled:   b.filled,
		Idx:      b.idx,
		Faults:   b.faults,
		State:    b.state,
		CoolLeft: b.coolLeft,
		Probing:  b.probing,
		Trips:    b.trips.Load(),
		Rejected: b.rejected.Load(),
	}
}

// restore overwrites the breaker with exported state. The window length is
// part of the state machine's identity, so a resume under a different
// -breaker-window fails instead of silently reshaping the ring.
func (b *breaker) restore(st BreakerState) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(st.Window) != len(b.window) {
		return fmt.Errorf("traffic: breaker window is %d wide, checkpoint has %d", len(b.window), len(st.Window))
	}
	copy(b.window, st.Window)
	b.filled, b.idx, b.faults = st.Filled, st.Idx, st.Faults
	b.state, b.coolLeft, b.probing = st.State, st.CoolLeft, st.Probing
	b.stateG.Store(st.State)
	b.trips.Store(st.Trips)
	b.rejected.Store(st.Rejected)
	return nil
}

// LadderState is a degradation ladder's serializable state (the rung
// engines themselves are rebuilt from the spec; only the position and
// streak counters carry over).
type LadderState struct {
	Level        int   `json:"level"`
	Trips        int   `json:"trips"`
	Clean        int   `json:"clean"`
	Degradations int64 `json:"degradations"`
	Recoveries   int64 `json:"recoveries"`
}

// export captures the ladder state under its lock.
func (l *ladder) export() LadderState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LadderState{
		Level:        l.level,
		Trips:        l.trips,
		Clean:        l.clean,
		Degradations: l.degradations.Load(),
		Recoveries:   l.recoveries.Load(),
	}
}

// restore overwrites the ladder with exported state.
func (l *ladder) restore(st LadderState) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st.Level < 0 || st.Level >= len(l.rungs) {
		return fmt.Errorf("traffic: ladder level %d out of range (ladder has %d rungs)", st.Level, len(l.rungs))
	}
	l.level, l.trips, l.clean = st.Level, st.Trips, st.Clean
	l.levelG.Store(int32(st.Level))
	l.degradations.Store(st.Degradations)
	l.recoveries.Store(st.Recoveries)
	return nil
}

// rung is one step of a class's degradation ladder: a named engine
// configuration, ordered from full hardening (rung 0) down to the cheapest
// acceptable profile.
type rung struct {
	name string
	eng  *engine.Engine
}

// ladder is one class's graceful-degradation state. Every LadderTrips
// breaker trips at the current rung step the class one rung down — shedding
// hardening cost deterministically instead of failing unpredictably — and
// every LadderRecovery consecutive clean completions step it back up, so
// degradation is reversible once pressure clears.
type ladder struct {
	mu        sync.Mutex
	rungs     []rung
	level     int
	stepTrips int
	recovery  int
	trips     int // breaker trips at the current level
	clean     int // consecutive clean completions

	levelG       atomic.Int32
	degradations atomic.Int64
	recoveries   atomic.Int64
}

// engine returns the current rung's engine.
func (l *ladder) engine() *engine.Engine {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rungs[l.level].eng
}

// engineRung returns the current rung's engine and name (for the request
// trace's attempt annotation).
func (l *ladder) engineRung() (*engine.Engine, string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := l.rungs[l.level]
	return r.eng, r.name
}

// onTrip records a breaker trip, stepping down when the budget is spent.
func (l *ladder) onTrip() {
	if l.stepTrips < 0 || len(l.rungs) == 1 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.trips++
	l.clean = 0
	if l.trips >= l.stepTrips && l.level < len(l.rungs)-1 {
		l.level++
		l.trips = 0
		l.levelG.Store(int32(l.level))
		l.degradations.Add(1)
	}
}

// onFault records a non-trip fault: it only resets the recovery streak.
func (l *ladder) onFault() {
	l.mu.Lock()
	l.clean = 0
	l.mu.Unlock()
}

// onClean records a clean completion, stepping back up after a full
// recovery streak.
func (l *ladder) onClean() {
	if l.stepTrips < 0 || len(l.rungs) == 1 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clean++
	if l.clean >= l.recovery && l.level > 0 {
		l.level--
		l.clean = 0
		l.trips = 0
		l.levelG.Store(int32(l.level))
		l.recoveries.Add(1)
	}
}

// buildLadder constructs a class's degradation rungs under mk (which wires
// engines into the campaign cache and budgets). CECSan-hardened classes get
// the full four-rung ladder of the design — drop the address quarantine,
// then delayed index reuse, then hardening itself — because those knobs are
// this repository's core runtime options. The other hardened comparators
// step straight to their default profile; unhardened tools have nothing
// cheaper to offer and stay single-rung.
func buildLadder(tool sanitizers.Name, cfg ResilienceConfig,
	mk func(tool sanitizers.Name, cecsan *core.Options) (*engine.Engine, error)) (*ladder, error) {

	l := &ladder{stepTrips: cfg.LadderTrips, recovery: cfg.LadderRecovery}
	full, err := mk(tool, nil)
	if err != nil {
		return nil, err
	}
	l.rungs = append(l.rungs, rung{name: "full", eng: full})

	addRung := func(name string, t sanitizers.Name, o *core.Options) error {
		eng, err := mk(t, o)
		if err != nil {
			return fmt.Errorf("ladder rung %q: %w", name, err)
		}
		l.rungs = append(l.rungs, rung{name: name, eng: eng})
		return nil
	}

	switch tool {
	case sanitizers.CECSanHardened:
		noQuar := core.HardenedOptions()
		noQuar.QuarantineBytes = 0
		noDelay := noQuar
		noDelay.IndexDelay = -1 // sentinel: disable delayed reuse outright
		base, _ := sanitizers.Base(tool)
		if err := addRung("no-quarantine", tool, &noQuar); err != nil {
			return nil, err
		}
		if err := addRung("no-index-delay", tool, &noDelay); err != nil {
			return nil, err
		}
		if err := addRung("default", base, nil); err != nil {
			return nil, err
		}
	case sanitizers.PACMemHardened, sanitizers.CryptSanHardened:
		base, _ := sanitizers.Base(tool)
		if err := addRung("default", base, nil); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// backoffUS computes the retry backoff for one (request, attempt) pair:
// exponential in the attempt number, capped, with seeded jitter in the upper
// half of the delay so synchronized retry storms decorrelate without
// sacrificing reproducibility — the jitter derives from (seed, request
// index, attempt), not from a shared RNG or the clock.
func backoffUS(cfg ResilienceConfig, seed, reqIndex uint64, attempt int) int64 {
	d := cfg.RetryBaseUS << (attempt - 1)
	if d > cfg.RetryCapUS || d <= 0 {
		d = cfg.RetryCapUS
	}
	if d <= 1 {
		return d
	}
	half := uint64(d / 2)
	j := mix(seed^reqIndex, 0xb0ff^uint64(attempt)) % half
	return int64(half) + int64(j)
}

// retryable classifies whether a failed attempt deserves another try.
// Chaos-armed machine faults are transient by construction (the retry runs
// with the plan dropped); pool-suspect panics and wall-budget exhaustion are
// the environmental faults a fresh attempt can clear. Deterministic faults
// — step/heap budget, genuine program panics — would fail identically and
// are not retried.
func retryable(armed faultinject.ChaosPlan, res *interp.Result, err error) bool {
	if !armed.Run.Zero() {
		return true
	}
	if err != nil || res == nil {
		return false
	}
	fo := engine.AsFault(res.Err)
	if fo == nil {
		return false
	}
	switch fo.Class {
	case engine.FaultPanic:
		return !fo.Deterministic
	case engine.FaultWallBudget:
		return true
	}
	return false
}
