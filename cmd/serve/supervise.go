package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cecsan/internal/checkpoint"
	"cecsan/internal/cliutil"
	"cecsan/internal/obs"
	"cecsan/internal/traffic"
)

// restartEnv carries the supervisor's restart count into the worker so the
// campaign summary records how many times it died.
const restartEnv = "CECSAN_SERVE_RESTARTS"

// restartCount reads the supervisor-provided restart count (0 outside a
// supervised run).
func restartCount() int64 {
	n, err := strconv.ParseInt(os.Getenv(restartEnv), 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// runSupervised re-executes this binary as a worker campaign and restarts
// it from the last checkpoint after abnormal exits — signal death (kill -9,
// OOM kill), panics and internal errors (exit 2). Normal completion (exit
// 0) and assertion failures (exit 1) end the loop: an assertion verdict is
// deterministic, so a restart would only replay it. The budget bounds
// crash-looping; each restart backs off twice as long as the last.
//
// When the campaign records flight traces, each abnormal exit dumps the
// last checkpoint's retained traces to <flightPath>.crash before the
// restart: the worker died without writing its own dump, but the
// checkpoint's flight state is the post-mortem as of the last barrier.
func runSupervised(ckptPath string, maxRestarts int, flightPath string) (int, error) {
	exe, err := os.Executable()
	if err != nil {
		return exitInternal, err
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	backoff := 250 * time.Millisecond
	for restarts := 0; ; restarts++ {
		cmd := exec.Command(exe, childArgs(os.Args[1:], ckptPath)...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%d", restartEnv, restarts))
		if err := cmd.Start(); err != nil {
			return exitInternal, err
		}

		waitCh := make(chan error, 1)
		go func() { waitCh <- cmd.Wait() }()
		var werr error
		interrupted := false
		select {
		case werr = <-waitCh:
		case sig := <-sigCh:
			// Forward the stop to the worker and wait for its graceful exit;
			// a signal the user sent is not a crash to recover from.
			interrupted = true
			_ = cmd.Process.Signal(sig)
			werr = <-waitCh
		}

		code, signaled := exitStatus(werr)
		if werr == nil || interrupted || code == exitShort {
			return code, werr
		}
		if flightPath != "" {
			if derr := dumpFlight(ckptPath, flightPath+".crash"); derr != nil {
				fmt.Fprintf(os.Stderr, "serve: supervise: flight dump failed: %v\n", derr)
			}
		}
		if restarts >= maxRestarts {
			return exitInternal, fmt.Errorf("supervise: worker died %d times (budget %d), giving up: %v",
				restarts+1, maxRestarts, werr)
		}
		cause := fmt.Sprintf("exit %d", code)
		if signaled {
			cause = werr.Error()
		}
		fmt.Fprintf(os.Stderr, "serve: supervise: worker died (%s); restart %d/%d from %s in %v\n",
			cause, restarts+1, maxRestarts, ckptPath, backoff)
		time.Sleep(backoff)
		backoff *= 2
	}
}

// dumpFlight reconstructs a flight recorder from the last checkpoint's
// flight state and writes its retained traces (as JSON lines) to path. The
// supervisor cannot see the dead worker's memory; the checkpoint's
// consistent cut is the best post-mortem available. A checkpoint without
// flight state (recorder not armed, or none taken yet) is not an error —
// there is simply nothing to dump.
func dumpFlight(ckptPath, path string) error {
	var ck traffic.ServeCheckpoint
	if err := checkpoint.Load(ckptPath, checkpoint.KindServe, &ck); err != nil {
		return err
	}
	if ck.Flight == nil {
		return nil
	}
	rec := obs.FlightFromState(ck.Flight)
	if err := cliutil.WriteAtomic(path, rec.WriteJSONLines); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: supervise: dumped %d retained traces to %s\n",
		len(ck.Flight.Interesting)+len(ck.Flight.Sampled), path)
	return nil
}

// exitStatus classifies a Wait error: the worker's exit code, and whether a
// signal (not an exit) killed it.
func exitStatus(err error) (code int, signaled bool) {
	if err == nil {
		return exitOK, false
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
			return exitInternal, true
		}
		return ee.ExitCode(), false
	}
	return exitInternal, false
}

// childArgs rewrites the supervisor's own argument list for the worker:
// the supervision flags go away, any stale -resume goes away, and a fresh
// -resume is appended only once a snapshot actually exists — the first
// incarnation starts clean, every later one resumes.
func childArgs(args []string, ckptPath string) []string {
	out := make([]string, 0, len(args)+2)
	skipValue := false
	for _, a := range args {
		if skipValue {
			skipValue = false
			continue
		}
		if !strings.HasPrefix(a, "-") {
			out = append(out, a)
			continue
		}
		name := strings.TrimLeft(a, "-")
		hasInline := false
		if i := strings.IndexByte(name, '='); i >= 0 {
			name, hasInline = name[:i], true
		}
		switch name {
		case "supervise":
			// Boolean flag: a following value is only consumed inline.
		case "resume", "max-restarts":
			skipValue = !hasInline
		default:
			out = append(out, a)
		}
	}
	if _, err := os.Stat(ckptPath); err == nil {
		out = append(out, "-resume", ckptPath)
	}
	return out
}
