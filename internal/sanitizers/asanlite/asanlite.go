// Package asanlite models ASAN-- ("Debloating Address Sanitizer", USENIX
// Security 2022): stock ASan's runtime with compiler passes that remove
// redundant and recurring checks and hoist loop-invariant LOAD checks
// (stores cannot be relocated past redzones, the §II.F.1 contrast).
// Detection behaviour is ASan's; only the check count shrinks.
package asanlite

import (
	"cecsan/internal/rt"
	"cecsan/internal/sanitizers/asan"
)

// Sanitizer returns the ASAN-- bundle.
func Sanitizer() rt.Sanitizer {
	opts := asan.DefaultOptions()
	opts.Name = "ASAN--"
	san := asan.Sanitizer(opts)
	san.Profile.Name = opts.Name
	san.Profile.OptRedundant = true
	san.Profile.OptLoopInvariant = true // loads only: RedzoneBased is set
	return san
}
