// Package tagptr implements the tagged-pointer codec at the heart of CECSan
// (§II.B of the paper).
//
// On 64-bit architectures only the low 47 (x86-64) or 48 (ARM64) bits of a
// user-space pointer carry address information. CECSan repurposes the unused
// high bits to store an index into its compact metadata table. Because the
// index rides in the pointer value itself, it propagates implicitly through
// pointer assignment, arithmetic and derivation — the property that lets
// CECSan skip explicit metadata propagation entirely.
package tagptr

import "fmt"

// Arch describes a target architecture's pointer layout.
type Arch struct {
	// Name is the architecture name, e.g. "x86-64".
	Name string
	// AddrBits is the number of usable virtual-address bits.
	AddrBits uint
	// TagBits is the number of high bits available for the metadata index.
	TagBits uint
}

// X8664 is the x86-64 layout: 47 address bits, 17 tag bits, and therefore a
// 2^17-entry metadata table (the paper's prototype configuration).
var X8664 = Arch{Name: "x86-64", AddrBits: 47, TagBits: 17}

// ARM64 is the AArch64 layout: 48 address bits, 16 tag bits.
var ARM64 = Arch{Name: "arm64", AddrBits: 48, TagBits: 16}

// Validate reports whether the layout is internally consistent: address and
// tag bits must partition the 64-bit word.
func (a Arch) Validate() error {
	if a.AddrBits+a.TagBits != 64 {
		return fmt.Errorf("tagptr: arch %q: AddrBits(%d) + TagBits(%d) != 64", a.Name, a.AddrBits, a.TagBits)
	}
	if a.AddrBits < 32 || a.AddrBits > 57 {
		return fmt.Errorf("tagptr: arch %q: AddrBits %d out of range [32,57]", a.Name, a.AddrBits)
	}
	return nil
}

// TableEntries returns the number of metadata table entries addressable by
// the tag (2^TagBits).
func (a Arch) TableEntries() uint64 { return uint64(1) << a.TagBits }

// MaxIndex returns the largest encodable metadata index.
func (a Arch) MaxIndex() uint64 { return a.TableEntries() - 1 }

// addrMask returns a mask covering the address bits.
func (a Arch) addrMask() uint64 { return (uint64(1) << a.AddrBits) - 1 }

// Pack embeds the metadata index idx into the high bits of addr, producing a
// tagged pointer. addr must be canonical and idx must fit in TagBits; both
// are programming errors of the sanitizer itself, so Pack reports them as
// errors rather than silently corrupting the pointer.
func (a Arch) Pack(addr, idx uint64) (uint64, error) {
	if addr&^a.addrMask() != 0 {
		return 0, fmt.Errorf("tagptr: address %#x has bits above %d set (already tagged?)", addr, a.AddrBits)
	}
	if idx > a.MaxIndex() {
		return 0, fmt.Errorf("tagptr: index %d exceeds max %d", idx, a.MaxIndex())
	}
	return addr | idx<<a.AddrBits, nil
}

// MustPack is Pack for statically valid inputs; it panics on misuse. It is
// intended for hot paths where the caller has already range-checked idx.
func (a Arch) MustPack(addr, idx uint64) uint64 {
	p, err := a.Pack(addr, idx)
	if err != nil {
		panic(err)
	}
	return p
}

// Index extracts the metadata index from a (possibly tagged) pointer.
// Untagged pointers yield index 0, the reserved entry for foreign pointers
// returned by uninstrumented code (§II.E).
func (a Arch) Index(ptr uint64) uint64 { return ptr >> a.AddrBits }

// Strip removes the tag, recovering the raw canonical address.
func (a Arch) Strip(ptr uint64) uint64 { return ptr & a.addrMask() }

// Retag replaces ptr's tag with the tag of src, implementing the §II.E
// wrapper for external functions that return one of their pointer arguments:
// the callee saw a stripped pointer, and the original tag is reapplied to
// the returned value.
func (a Arch) Retag(ptr, src uint64) uint64 {
	return a.Strip(ptr) | src&^a.addrMask()
}

// IsTagged reports whether ptr carries a nonzero metadata index.
func (a Arch) IsTagged(ptr uint64) bool { return ptr>>a.AddrBits != 0 }
