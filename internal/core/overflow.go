package core

import (
	"sort"
	"sync"
)

// §V discusses the table-exhaustion limitation: with 2^T entries, a program
// keeping more than 2^T objects live simultaneously cannot tag them all,
// and the paper suggests "techniques like linked lists for storing
// conflicted metadata" as future work, noting the expected performance
// cost. spillIndex implements that extension.
//
// One tag value — the table's last index — is reserved as the CHAINED tag.
// When the table is exhausted, new objects are tagged with it and their
// bounds go into a disjoint ordered index. A check on a chained pointer
// cannot find its entry directly (many objects share the tag), so it
// searches the index by address — the O(log n) cost standing in for the
// paper's linked-list walk. Entries are removed on free; double frees and
// UAFs through chained pointers are caught by the entry's absence.
type spillIndex struct {
	mu sync.Mutex
	// spans is kept sorted by base address.
	spans []span

	inserts int64
	lookups int64
}

// span is one chained object's bounds.
type span struct {
	base uint64
	end  uint64
}

// insert records a chained object. Overlapping spans cannot occur: the
// allocator never hands out overlapping live chunks.
func (s *spillIndex) insert(base, end uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].base >= base })
	s.spans = append(s.spans, span{})
	copy(s.spans[i+1:], s.spans[i:])
	s.spans[i] = span{base: base, end: end}
	s.inserts++
}

// lookup finds the span containing addr.
func (s *spillIndex) lookup(addr uint64) (span, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups++
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].base > addr })
	if i == 0 {
		return span{}, false
	}
	sp := s.spans[i-1]
	if addr >= sp.end {
		return span{}, false
	}
	return sp, true
}

// remove deletes the span whose base is exactly base, reporting success.
func (s *spillIndex) remove(base uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].base >= base })
	if i >= len(s.spans) || s.spans[i].base != base {
		return false
	}
	s.spans = append(s.spans[:i], s.spans[i+1:]...)
	return true
}

// size returns the number of chained objects.
func (s *spillIndex) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.spans)
}

// bytes returns the index's metadata footprint.
func (s *spillIndex) bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.spans)) * 16
}
