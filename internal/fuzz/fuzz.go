// Package fuzz is the repository's adversarial correctness subsystem: a
// seeded random program generator with ground-truth bug injection, a
// differential executor that fans every generated case across all seven
// sanitizer models, and a delta-debugging minimizer for disagreements.
//
// The Juliet-style generator (internal/juliet) enumerates fixed bug shapes;
// this package probes the space BETWEEN those shapes. Each case is a small
// random C-like program rendered as csrc source (so every artifact is
// printable and replayable with cmd/cecsan-run), compiled to the prog IR,
// and optionally injected with exactly one labelled bug from the taxonomy
// in taxonomy.go. The ground truth travels with the case as an Oracle
// record; models.go turns the oracle into a per-sanitizer expectation
// derived from each model's documented mechanism:
//
//   - CECSan must detect every injected bug with the expected violation
//     kind, and must stay silent on clean programs. The single exception —
//     found by this fuzzer, now part of the oracle — is the staged
//     tag-reuse UAF (uaf_quarantine_flush): the metadata table recycles
//     freed entries through the GMI free structure, so a same-size
//     reallocation rebuilds the stale pointer's entry over the same
//     address range and the dangling access validates.
//   - native (nosan) must never report and never fault.
//   - Every baseline miss must match that model's documented blind spot
//     (HWASan's intra-granule slack, ASan's redzone-skipping strides,
//     SoftBound's uninstrumented wide/memset wrappers, ...). A miss outside
//     the documented set — or a detection where the mechanism says the tool
//     must be blind — is a finding.
//
// Findings are minimized by statement deletion (minimize.go) and emitted as
// .csc reproducers.
package fuzz

import (
	"cecsan/internal/rt"
)

// Bug classes, the top level of the taxonomy.
const (
	ClassSpatial     = "spatial"
	ClassSubObject   = "subobject"
	ClassTemporal    = "temporal"
	ClassInvalidFree = "invalidfree"
	ClassExternal    = "external"
)

// Oracle is the ground-truth record attached to a generated case. For an
// injected bug it carries the attributes the per-sanitizer expectation
// models key on; for a clean program only Injected=false matters.
type Oracle struct {
	Injected bool   `json:"injected"`
	Class    string `json:"class,omitempty"` // ClassSpatial, ...
	Shape    string `json:"shape,omitempty"` // taxonomy entry name
	Kind     rt.Kind `json:"-"`              // exact kind CECSan must report

	// Attributes of the buggy access, consumed by models.go.
	Seg         string `json:"seg,omitempty"`  // "heap", "stack", "global"
	Libc        string `json:"libc,omitempty"` // libc carrier ("" = direct access)
	Wide        bool   `json:"wide,omitempty"` // wide-char libc carrier (wcs*/wmem*)
	SubObject   bool   `json:"sub_object,omitempty"`
	Underflow   bool   `json:"underflow,omitempty"`
	FarStride   bool   `json:"far_stride,omitempty"`  // lands beyond any redzone
	Extern      bool   `json:"extern,omitempty"`      // access through an externret pointer
	Reloaded    bool   `json:"reloaded,omitempty"`    // pointer reloaded from memory
	InputDriven bool   `json:"input_driven,omitempty"`
	// Reuse marks a UAF staged so the freed chunk is genuinely recycled
	// before the stale access: enough churn to flush ASan's quarantine,
	// followed by a same-size allocation that (with this allocator's LIFO
	// size classes) reoccupies the chunk — and, for the CECSan family,
	// reclaims the freed metadata-table index.
	Reuse bool `json:"reuse,omitempty"`
	// IndexReuse marks a UAF staged so only the CECSan family's reuse
	// window opens: a same-size realloc recycles the chunk address and the
	// metadata-table index through the stale tag, but the churn is far too
	// small to flush ASan's quarantine, so redzone-based tools still see
	// poisoned shadow.
	IndexReuse bool `json:"index_reuse,omitempty"`

	// Byte extent of the violating access relative to the object base, and
	// the object's size: the inputs to the granule arithmetic (HWASan's
	// 16-byte tag granules, ASan's 8-byte shadow encoding).
	OffStart int64 `json:"off_start,omitempty"`
	OffEnd   int64 `json:"off_end,omitempty"`
	ObjBytes int64 `json:"obj_bytes,omitempty"`
}

// KindName renders the expected CECSan kind for JSON records.
func (o *Oracle) KindName() string {
	if !o.Injected {
		return ""
	}
	return o.Kind.String()
}

// Case is one generated program plus its ground truth. Source always
// recompiles (csrc.Compile) to a program with Program's fingerprint; the
// minimizer relies on that round trip.
type Case struct {
	Seed   uint64
	Source string
	Inputs [][]byte
	Oracle Oracle

	// Generator internals retained for minimization: the op list Source
	// was rendered from.
	objects []object
	ops     []op
}

// rng is a splitmix64 stream: tiny, seedable, and stable across Go
// versions (unlike math/rand), which the determinism guarantee needs.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeIn returns a value in [lo, hi] inclusive.
func (r *rng) rangeIn(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// chance returns true with probability num/den.
func (r *rng) chance(num, den int) bool { return r.intn(den) < num }

// caseSeed derives the per-case seed from a campaign base seed and index.
func caseSeed(base uint64, i int) uint64 {
	r := rng{s: base ^ (uint64(i)+1)*0x9e3779b97f4a7c15}
	return r.next()
}
