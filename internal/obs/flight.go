package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// FlightConfig sizes and shapes a FlightRecorder.
type FlightConfig struct {
	// Budget bounds the total number of retained traces. A quarter of it is
	// reserved for the deterministic healthy sample, the rest for
	// interesting traces; interesting traces are never evicted to make room
	// for healthy ones. Default 4096.
	Budget int
	// SampleN keeps 1 healthy trace in N, keyed on the trace ID so the
	// sample is identical at any worker count. <= 0 disables healthy
	// sampling (interesting traces are still kept).
	SampleN int
	// DeterministicOnly restricts the "interesting" classification to
	// signals that are pure functions of (spec, seed, chaos seed) — outcome
	// and retry count — excluding wall-clock-driven deadline misses. Chaos
	// campaigns arm it so the retained ID set is byte-identical across
	// worker counts, mirroring what the chaos digest excludes.
	DeterministicOnly bool
}

// DefaultFlightBudget is the retained-trace budget when the config leaves
// Budget zero.
const DefaultFlightBudget = 4096

// DefaultFlightSampleN is the healthy sampling rate when the config leaves
// SampleN zero at the CLI layer (the recorder itself treats <= 0 as "no
// healthy sampling").
const DefaultFlightSampleN = 64

// TraceRecord is the serialized form of a finished RequestTrace — the unit
// the flight recorder retains, checkpoints and exports.
type TraceRecord struct {
	TraceID string `json:"trace_id"`
	Class   string `json:"class"`
	Index   uint64 `json:"index"`
	// StartUS is the trace start relative to the recorder epoch. Wall-clock
	// only — not part of any determinism contract.
	StartUS      int64        `json:"start_us"`
	Outcome      string       `json:"outcome"`
	Attempts     int          `json:"attempts,omitempty"`
	Retried      bool         `json:"retried,omitempty"`
	DeadlineMiss bool         `json:"deadline_miss,omitempty"`
	// Sampled marks a healthy trace kept by the 1-in-N sample rather than
	// by the always-keep interest rules.
	Sampled bool         `json:"sampled,omitempty"`
	Events  []TraceEvent `json:"events"`
}

// FlightSummary is the recorder's accounting, embedded in the serve summary.
// Finished and the Evicted counters are monotonic; the rest count currently
// retained records by category.
type FlightSummary struct {
	Finished           int64 `json:"finished"`
	Retained           int   `json:"retained"`
	Interesting        int   `json:"interesting"`
	SampledHealthy     int   `json:"sampled_healthy"`
	Faulted            int64 `json:"faulted"`
	Retried            int64 `json:"retried"`
	Rejected           int64 `json:"rejected"`
	Shed               int64 `json:"shed"`
	DeadlineMissed     int64 `json:"deadline_missed"`
	Abandoned          int64 `json:"abandoned"`
	EvictedInteresting int64 `json:"evicted_interesting"`
	EvictedSampled     int64 `json:"evicted_sampled"`
}

// FlightState is a FlightRecorder's full serializable contents, carried in
// the campaign checkpoint so a crash-and-resume (or the supervisor's
// postmortem dump) keeps the black box.
type FlightState struct {
	Budget             int           `json:"budget"`
	SampleN            int           `json:"sample_n"`
	Deterministic      bool          `json:"deterministic,omitempty"`
	Finished           int64         `json:"finished"`
	EvictedInteresting int64         `json:"evicted_interesting,omitempty"`
	EvictedSampled     int64         `json:"evicted_sampled,omitempty"`
	Interesting        []TraceRecord `json:"interesting"`
	Sampled            []TraceRecord `json:"sampled,omitempty"`
}

// FlightRecorder is the tail-sampling trace sink: every finished trace
// passes through Finish, which always keeps interesting ones (faulted,
// retried, shed, rejected, abandoned, deadline-missed) and a deterministic
// 1-in-N sample of healthy ones, under a fixed budget. Finish takes one
// short mutex section — it is off the execution hot path (traces are
// finished after terminal accounting) and only exists at all when a
// recorder is armed.
type FlightRecorder struct {
	mu    sync.Mutex
	cfg   FlightConfig
	epoch time.Time

	interesting []TraceRecord // FIFO ring, never evicted by healthy traces
	sampled     []TraceRecord // FIFO ring for the healthy sample

	finished           int64
	evictedInteresting int64
	evictedSampled     int64
}

// NewFlightRecorder builds a recorder; a zero Budget takes the default.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultFlightBudget
	}
	return &FlightRecorder{cfg: cfg, epoch: time.Now()}
}

// SetDeterministicOnly toggles the deterministic interest classification.
// Call before any Finish (the serving layer arms it when a chaos campaign
// starts).
func (f *FlightRecorder) SetDeterministicOnly(v bool) {
	f.mu.Lock()
	f.cfg.DeterministicOnly = v
	f.mu.Unlock()
}

// caps returns the ring capacities under the budget split.
func (f *FlightRecorder) caps() (interesting, sampled int) {
	sampled = f.cfg.Budget / 4
	if sampled < 1 {
		sampled = 1
	}
	return f.cfg.Budget - sampled, sampled
}

// Finish marks the trace's terminal outcome and retains it under the
// sampling policy. It is the hand-off point: the caller must not touch the
// trace afterwards.
func (f *FlightRecorder) Finish(t *RequestTrace, outcome string) {
	t.Complete(outcome)
	rec := TraceRecord{
		TraceID:      t.ID.String(),
		Class:        t.Class,
		Index:        t.Index,
		StartUS:      t.Start.Sub(f.epoch).Microseconds(),
		Outcome:      t.Outcome,
		Attempts:     t.Attempts,
		Retried:      t.Retried,
		DeadlineMiss: t.DeadlineMiss,
		Events:       t.Events,
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.finished++
	iCap, sCap := f.caps()
	if f.interestingLocked(t) {
		if len(f.interesting) >= iCap {
			f.interesting = f.interesting[1:]
			f.evictedInteresting++
		}
		f.interesting = append(f.interesting, rec)
		return
	}
	if f.cfg.SampleN > 0 && uint64(t.ID)%uint64(f.cfg.SampleN) == 0 {
		rec.Sampled = true
		if len(f.sampled) >= sCap {
			f.sampled = f.sampled[1:]
			f.evictedSampled++
		}
		f.sampled = append(f.sampled, rec)
	}
}

// interestingLocked is the always-keep classification. Outcome and retry
// count are pure functions of (spec, seed, chaos seed); a deadline miss is
// wall-clock-driven, so DeterministicOnly excludes it — the same exclusion
// the chaos digest makes.
func (f *FlightRecorder) interestingLocked(t *RequestTrace) bool {
	if t.Retried {
		return true
	}
	switch t.Outcome {
	case OutcomeFault, OutcomeRejected, OutcomeShedQueue, OutcomeShedBucket,
		OutcomeShedDelay, OutcomeAbandoned:
		return true
	}
	return t.DeadlineMiss && !f.cfg.DeterministicOnly
}

// Records returns every retained record, sorted by stream index — the
// deterministic order exports use.
func (f *FlightRecorder) Records() []TraceRecord {
	f.mu.Lock()
	out := make([]TraceRecord, 0, len(f.interesting)+len(f.sampled))
	out = append(out, f.interesting...)
	out = append(out, f.sampled...)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Summary returns the recorder's accounting.
func (f *FlightRecorder) Summary() FlightSummary {
	f.mu.Lock()
	s := FlightSummary{
		Finished:           f.finished,
		Retained:           len(f.interesting) + len(f.sampled),
		Interesting:        len(f.interesting),
		SampledHealthy:     len(f.sampled),
		EvictedInteresting: f.evictedInteresting,
		EvictedSampled:     f.evictedSampled,
	}
	for _, r := range f.interesting {
		switch r.Outcome {
		case OutcomeFault:
			s.Faulted++
		case OutcomeRejected:
			s.Rejected++
		case OutcomeShedQueue, OutcomeShedBucket, OutcomeShedDelay:
			s.Shed++
		case OutcomeAbandoned:
			s.Abandoned++
		}
		if r.Retried {
			s.Retried++
		}
		if r.DeadlineMiss {
			s.DeadlineMissed++
		}
	}
	f.mu.Unlock()
	return s
}

// WriteJSONLines writes the retained records as JSON lines (one record per
// line, stream-index order) — the flight-record dump format.
func (f *FlightRecorder) WriteJSONLines(w io.Writer) error {
	for _, r := range f.Records() {
		data, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace writes the retained records in the Chrome trace_event
// format (chrome://tracing, Perfetto). Each class renders as one tid row;
// timed events become complete ("X") slices, instants become "i" marks.
func (f *FlightRecorder) WriteChromeTrace(w io.Writer) error {
	type chromeEvent struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		TS    int64          `json:"ts"`
		Dur   int64          `json:"dur,omitempty"`
		PID   int            `json:"pid"`
		TID   int            `json:"tid"`
		Scope string         `json:"s,omitempty"`
		Args  map[string]any `json:"args,omitempty"`
	}
	tids := map[string]int{}
	var events []chromeEvent
	for _, r := range f.Records() {
		tid, ok := tids[r.Class]
		if !ok {
			tid = len(tids) + 1
			tids[r.Class] = tid
		}
		args := map[string]any{"trace_id": r.TraceID, "outcome": r.Outcome}
		for _, ev := range r.Events {
			ce := chromeEvent{
				Name: ev.Kind,
				TS:   r.StartUS + ev.AtUS,
				PID:  1,
				TID:  tid,
				Args: args,
			}
			if ev.DurUS > 0 {
				ce.Phase, ce.Dur = "X", ev.DurUS
			} else {
				ce.Phase, ce.Scope = "i", "t"
			}
			events = append(events, ce)
		}
	}
	data, err := json.Marshal(map[string]any{"traceEvents": events})
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Export captures the recorder's full state for the campaign checkpoint.
// Only a quiescent capture (the checkpoint barrier) is guaranteed to be a
// consistent cut.
func (f *FlightRecorder) Export() FlightState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FlightState{
		Budget:             f.cfg.Budget,
		SampleN:            f.cfg.SampleN,
		Deterministic:      f.cfg.DeterministicOnly,
		Finished:           f.finished,
		EvictedInteresting: f.evictedInteresting,
		EvictedSampled:     f.evictedSampled,
		Interesting:        append([]TraceRecord(nil), f.interesting...),
		Sampled:            append([]TraceRecord(nil), f.sampled...),
	}
}

// Import overwrites the recorder with previously exported state. The
// sampling shape (budget, sample rate) must match this recorder's — a
// resume under a different policy would silently fork the retained set.
func (f *FlightRecorder) Import(st *FlightState) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st.Budget != f.cfg.Budget || st.SampleN != f.cfg.SampleN {
		return fmt.Errorf("obs: flight state budget/sample %d/%d, recorder configured %d/%d",
			st.Budget, st.SampleN, f.cfg.Budget, f.cfg.SampleN)
	}
	f.cfg.DeterministicOnly = st.Deterministic
	f.finished = st.Finished
	f.evictedInteresting = st.EvictedInteresting
	f.evictedSampled = st.EvictedSampled
	f.interesting = append([]TraceRecord(nil), st.Interesting...)
	f.sampled = append([]TraceRecord(nil), st.Sampled...)
	return nil
}

// FlightFromState rebuilds a recorder directly from checkpointed state —
// the supervisor's crash-dump path, where no live recorder exists.
func FlightFromState(st *FlightState) *FlightRecorder {
	f := NewFlightRecorder(FlightConfig{
		Budget:            st.Budget,
		SampleN:           st.SampleN,
		DeterministicOnly: st.Deterministic,
	})
	// Import cannot fail: the config was just built from the state itself.
	_ = f.Import(st)
	return f
}
