package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// Server is a live introspection endpoint bound to one Observer. It serves
// metric snapshots in both exposition formats, the check-site table when
// profiling is on, and the stdlib pprof handlers — so a long-running
// campaign can be watched and CPU/heap-profiled without stopping it.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr (e.g. "127.0.0.1:0") and
// returns once the listener is bound. Routes:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  expvar-style JSON snapshot
//	/checks        check-site table (404 unless -profile-checks)
//	/healthz       liveness: 200 while the process answers
//	/readyz        readiness: 503 until the consumer flips Health (the
//	               serving layer does after cache prewarm), then 200
//	/slo           per-class objective status (404 unless the campaign
//	               declared SLOs)
//	/debug/pprof/  net/http/pprof index, profile, heap, ...
func (o *Observer) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Registry.WriteJSON(w)
	})
	mux.HandleFunc("/checks", func(w http.ResponseWriter, _ *http.Request) {
		if o.Sites == nil {
			http.Error(w, "check-site profiling not enabled (-profile-checks)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		o.Sites.FormatSites(w, 0, 0)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !o.Health.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, _ *http.Request) {
		if o.SLO == nil {
			http.Error(w, "no SLOs declared (workload spec has no slo sections)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(o.SLO.Status())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "obs: http server: %v\n", err)
		}
	}()
	return s, nil
}

// Close shuts the endpoint down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
