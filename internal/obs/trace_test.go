package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerLanes(t *testing.T) {
	tr := NewTracer()
	a := tr.AcquireLane()
	b := tr.AcquireLane()
	if a == b {
		t.Fatalf("concurrent lanes must differ, both %d", a)
	}
	tr.ReleaseLane(a)
	if c := tr.AcquireLane(); c != a {
		t.Fatalf("freed lane %d must be reused, got %d", a, c)
	}
	// The lowest free lane wins, keeping flame-chart rows dense.
	tr.ReleaseLane(b)
	a2 := tr.AcquireLane() // a is held again; next free is b
	if a2 != b {
		t.Fatalf("lowest free lane is %d, got %d", b, a2)
	}
}

func TestTraceExport(t *testing.T) {
	tr := NewTracer()
	lane := tr.AcquireLane()
	start := time.Now()
	tr.Record("execute CECSan", lane, start, 1500*time.Microsecond)
	tr.Record("reset CECSan", lane, start.Add(2*time.Millisecond), 40*time.Microsecond)
	tr.ReleaseLane(lane)

	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "execute CECSan" || ev.Ph != "X" || ev.Dur != 1500 || ev.Tid != lane {
		t.Fatalf("event = %+v", ev)
	}
	if doc.TraceEvents[1].Ts <= ev.Ts {
		t.Fatalf("timestamps must be relative and increasing: %d then %d", ev.Ts, doc.TraceEvents[1].Ts)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped())
	}
}
