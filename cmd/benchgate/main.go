// Command benchgate is the CI performance-trend gate: it compares a freshly
// generated bench-smoke record against the committed baseline
// (BENCH_table2.json) and exits non-zero on drift.
//
// Usage:
//
//	benchgate -baseline BENCH_table2.json -fresh BENCH_fresh.json
//	          [-max-slowdown 0.5] [-hit-drop 0.02]
//
// Two families of checks run, with different strictness because they have
// different noise floors:
//
//   - cases_per_sec (overall and per tool) is machine-dependent, so it gates
//     with a generous relative tolerance: the fresh run must reach at least
//     (1 - max-slowdown) of the baseline throughput.
//   - cache_hit_rate is machine-independent (it counts requests, not time),
//     so it must not regress by more than hit-drop absolute — a drop means
//     the pre-instrumentation or sharding logic stopped covering the run
//     path, which no amount of hardware variance explains.
//
// Structural drift — a tool present in the baseline but missing from the
// fresh record, or a changed case count at the same scale — also fails.
//
// With -serve-baseline/-serve-fresh the gate also (or instead) compares
// cmd/serve campaign records (BENCH_serve.json): requests/sec gates with
// the same max-slowdown tolerance, the stream digest must match exactly
// (it is a pure function of (spec, seed) — a mismatch means the traffic
// generator changed without a baseline regen), and every baseline class
// must still complete requests. A missing serve baseline file skips the
// serve checks with a note instead of failing, so the gate can be wired
// into CI before the first baseline is committed.
//
// With -overload-baseline/-overload-fresh the gate also (or instead)
// compares cmd/serve -overload sweep records (BENCH_overload.json):
// per-point goodput gates with the max-slowdown tolerance, and a point
// that degrades (ladder step-downs > 0) where the baseline point did not
// fails outright — degradation under a load the deployment used to absorb
// at full hardening is a resilience regression no hardware variance
// explains. A missing overload baseline skips with a note, like serve.
//
// Exit status:
//
//	0  all gates passed
//	1  a gate failed (regression or structural drift)
//	2  a record file is corrupt (truncated or unparseable JSON) — the
//	   input is damaged, not the build; regenerate the record or restore
//	   the committed baseline
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
)

// corruptError marks a record file that exists but cannot be parsed — a
// truncated write, a merge accident, a hand edit gone wrong. It gets its
// own exit code so CI distinguishes "the input is damaged" from "the
// build regressed".
type corruptError struct {
	path string
	err  error
}

func (e *corruptError) Error() string {
	return fmt.Sprintf("corrupt record %s: %v (regenerate it or restore the committed file)", e.path, e.err)
}

func (e *corruptError) Unwrap() error { return e.err }

// toolRecord mirrors the per-tool fields benchgate reads from the
// julietbench -json schema; unknown fields are ignored so the gate tolerates
// schema growth.
type toolRecord struct {
	Name         string  `json:"name"`
	Cases        int     `json:"cases"`
	CasesPerSec  float64 `json:"cases_per_sec"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// benchRecord mirrors the top-level julietbench -json schema.
type benchRecord struct {
	Scale       float64      `json:"scale"`
	Cases       int          `json:"cases"`
	CasesPerSec float64      `json:"cases_per_sec"`
	Tools       []toolRecord `json:"tools"`
}

// serveClassRecord mirrors the per-class fields benchgate reads from the
// cmd/serve -json schema.
type serveClassRecord struct {
	Class     string `json:"class"`
	Completed int64  `json:"completed"`
}

// serveFlightRecord mirrors the flight-recorder summary fields benchgate
// reads from the cmd/serve -json schema.
type serveFlightRecord struct {
	Retained           int64 `json:"retained"`
	EvictedInteresting int64 `json:"evicted_interesting"`
}

// serveSLORecord mirrors the per-class SLO status fields benchgate reads.
type serveSLORecord struct {
	Class       string `json:"class"`
	Exhausted   bool   `json:"exhausted"`
	P99Violated bool   `json:"p99_violated"`
}

// serveRecord mirrors the top-level cmd/serve -json schema.
type serveRecord struct {
	Seed           uint64             `json:"seed"`
	Generated      int64              `json:"generated"`
	Completed      int64              `json:"completed"`
	RequestsPerSec float64            `json:"requests_per_sec"`
	StreamDigest   string             `json:"stream_digest"`
	Classes        []serveClassRecord `json:"classes"`
	Flight         *serveFlightRecord `json:"flight,omitempty"`
	SLO            []serveSLORecord   `json:"slo,omitempty"`
}

// overloadPointRecord mirrors the per-point fields benchgate reads from
// the cmd/serve -overload schema.
type overloadPointRecord struct {
	Multiple float64 `json:"multiple"`
	Result   struct {
		Completed     int64   `json:"completed"`
		GoodputPerSec float64 `json:"goodput_per_sec"`
		Degradations  int64   `json:"degradations"`
		BreakerTrips  int64   `json:"breaker_trips"`
	} `json:"result"`
}

// overloadRecord mirrors the top-level cmd/serve -overload schema.
type overloadRecord struct {
	CapacityPerSec float64               `json:"capacity_per_sec"`
	Points         []overloadPointRecord `json:"points"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		var ce *corruptError
		if errors.As(err, &ce) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func load(path string) (*benchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec := &benchRecord{}
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, &corruptError{path: path, err: err}
	}
	return rec, nil
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_table2.json", "committed baseline benchmark record")
	freshPath := flag.String("fresh", "", "freshly generated benchmark record to gate (required)")
	maxSlowdown := flag.Float64("max-slowdown", 0.5, "maximum tolerated relative cases/sec regression (0.5 = fresh may be half the baseline)")
	hitDrop := flag.Float64("hit-drop", 0.02, "maximum tolerated absolute cache hit-rate regression")
	serveBaselinePath := flag.String("serve-baseline", "", "committed cmd/serve baseline record (BENCH_serve.json)")
	serveFreshPath := flag.String("serve-fresh", "", "freshly generated cmd/serve record to gate")
	overloadBaselinePath := flag.String("overload-baseline", "", "committed cmd/serve -overload baseline record (BENCH_overload.json)")
	overloadFreshPath := flag.String("overload-fresh", "", "freshly generated cmd/serve -overload record to gate")
	flag.Parse()
	if *freshPath == "" && *serveFreshPath == "" && *overloadFreshPath == "" {
		return fmt.Errorf("one of -fresh / -serve-fresh / -overload-fresh is required")
	}
	if *serveFreshPath != "" {
		if err := gateServe(*serveBaselinePath, *serveFreshPath, *maxSlowdown); err != nil {
			return err
		}
	}
	if *overloadFreshPath != "" {
		if err := gateOverload(*overloadBaselinePath, *overloadFreshPath, *maxSlowdown); err != nil {
			return err
		}
	}
	if *freshPath == "" {
		return nil
	}

	base, err := load(*baselinePath)
	if err != nil {
		return err
	}
	fresh, err := load(*freshPath)
	if err != nil {
		return err
	}

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	if base.Scale != fresh.Scale {
		fail("scale mismatch: baseline %.3f, fresh %.3f (records are not comparable)", base.Scale, fresh.Scale)
	} else if base.Cases != fresh.Cases {
		fail("case count drift at scale %.3f: baseline %d, fresh %d", base.Scale, base.Cases, fresh.Cases)
	}

	floor := base.CasesPerSec * (1 - *maxSlowdown)
	status := "ok"
	if fresh.CasesPerSec < floor {
		status = "FAIL"
		fail("overall cases/sec %.0f below floor %.0f (baseline %.0f, max slowdown %.0f%%)",
			fresh.CasesPerSec, floor, base.CasesPerSec, 100**maxSlowdown)
	}
	fmt.Printf("%-16s cases/sec %10.0f baseline %10.0f floor %10.0f  %s\n",
		"overall", fresh.CasesPerSec, base.CasesPerSec, floor, status)

	baseTools := make(map[string]toolRecord, len(base.Tools))
	for _, t := range base.Tools {
		baseTools[t.Name] = t
	}
	for _, ft := range fresh.Tools {
		bt, ok := baseTools[ft.Name]
		if !ok {
			continue // new tool: nothing to regress against
		}
		delete(baseTools, ft.Name)
		status := "ok"
		if ft.CacheHitRate < bt.CacheHitRate-*hitDrop {
			status = "FAIL"
			fail("%s cache hit rate %.1f%% regressed below baseline %.1f%% (allowed drop %.1f pts)",
				ft.Name, 100*ft.CacheHitRate, 100*bt.CacheHitRate, 100**hitDrop)
		}
		fmt.Printf("%-16s hit rate %12.1f%% baseline %8.1f%%  %s\n",
			ft.Name, 100*ft.CacheHitRate, 100*bt.CacheHitRate, status)
	}
	for name := range baseTools {
		fail("tool %s present in baseline but missing from fresh record", name)
	}

	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Println("DRIFT:", f)
		}
		return fmt.Errorf("%d check(s) failed against %s", len(failures), *baselinePath)
	}
	fmt.Println("benchgate: no drift")
	return nil
}

// loadServe reads a cmd/serve campaign record.
func loadServe(path string) (*serveRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec := &serveRecord{}
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, &corruptError{path: path, err: err}
	}
	return rec, nil
}

// gateServe compares a fresh cmd/serve record against the committed
// baseline. A missing baseline file skips with a note (first-run
// bootstrap); everything else gates.
func gateServe(baselinePath, freshPath string, maxSlowdown float64) error {
	fresh, err := loadServe(freshPath)
	if err != nil {
		return err
	}
	if fresh.Completed == 0 {
		return fmt.Errorf("fresh serve record %s completed 0 requests", freshPath)
	}
	// Observability gates run on the fresh record alone: trace loss and SLO
	// violations are absolute failures, not trends against a baseline.
	if fresh.Flight != nil && fresh.Flight.EvictedInteresting > 0 {
		return fmt.Errorf("fresh serve record %s evicted %d interesting traces (flight budget too small for the smoke)",
			freshPath, fresh.Flight.EvictedInteresting)
	}
	for _, st := range fresh.SLO {
		if st.Exhausted {
			return fmt.Errorf("fresh serve record %s: class %q SLO budget exhausted", freshPath, st.Class)
		}
		if st.P99Violated {
			return fmt.Errorf("fresh serve record %s: class %q p99 objective violated", freshPath, st.Class)
		}
	}
	if baselinePath == "" {
		fmt.Println("serve: no -serve-baseline given, record is well-formed; skipping trend checks")
		return nil
	}
	base, err := loadServe(baselinePath)
	if os.IsNotExist(err) {
		fmt.Printf("serve: baseline %s does not exist yet; skipping trend checks\n", baselinePath)
		return nil
	}
	if err != nil {
		return err
	}

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	// The stream digest is a pure function of (spec, seed) — byte-equal
	// across machines and worker counts. Drift means the traffic generator
	// changed semantically without a baseline regen.
	if base.Seed == fresh.Seed && base.StreamDigest != fresh.StreamDigest {
		fail("stream digest drift at seed %d: baseline %s, fresh %s",
			base.Seed, base.StreamDigest, fresh.StreamDigest)
	}

	floor := base.RequestsPerSec * (1 - maxSlowdown)
	status := "ok"
	if fresh.RequestsPerSec < floor {
		status = "FAIL"
		fail("serve requests/sec %.0f below floor %.0f (baseline %.0f, max slowdown %.0f%%)",
			fresh.RequestsPerSec, floor, base.RequestsPerSec, 100*maxSlowdown)
	}
	fmt.Printf("%-16s req/sec   %10.0f baseline %10.0f floor %10.0f  %s\n",
		"serve", fresh.RequestsPerSec, base.RequestsPerSec, floor, status)

	freshClasses := make(map[string]serveClassRecord, len(fresh.Classes))
	for _, c := range fresh.Classes {
		freshClasses[c.Class] = c
	}
	for _, bc := range base.Classes {
		fc, ok := freshClasses[bc.Class]
		if !ok {
			fail("class %q present in serve baseline but missing from fresh record", bc.Class)
			continue
		}
		if fc.Completed == 0 {
			fail("class %q completed 0 requests (baseline %d)", bc.Class, bc.Completed)
		}
	}

	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Println("DRIFT:", f)
		}
		return fmt.Errorf("%d serve check(s) failed against %s", len(failures), baselinePath)
	}
	fmt.Println("serve: no drift")
	return nil
}

// loadOverload reads a cmd/serve -overload sweep record.
func loadOverload(path string) (*overloadRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec := &overloadRecord{}
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, &corruptError{path: path, err: err}
	}
	return rec, nil
}

// gateOverload compares a fresh overload-sweep record against the committed
// baseline. Goodput (deadline-meeting completions per second) gates with the
// relative max-slowdown tolerance, per point and for calibrated capacity. A
// fresh point that steps down the degradation ladder where the baseline
// point stayed at full hardening fails outright: that is the resilience
// layer reporting the same offered multiple now exceeds what full hardening
// can absorb, which is a code regression, not machine noise (the multiple is
// relative to each machine's own calibrated capacity). A missing baseline
// file skips with a note (first-run bootstrap); everything else gates.
func gateOverload(baselinePath, freshPath string, maxSlowdown float64) error {
	fresh, err := loadOverload(freshPath)
	if err != nil {
		return err
	}
	if len(fresh.Points) == 0 {
		return fmt.Errorf("fresh overload record %s has no sweep points", freshPath)
	}
	for _, p := range fresh.Points {
		if p.Result.Completed == 0 {
			return fmt.Errorf("fresh overload record %s point %gx completed 0 requests", freshPath, p.Multiple)
		}
	}
	if baselinePath == "" {
		fmt.Println("overload: no -overload-baseline given, record is well-formed; skipping trend checks")
		return nil
	}
	base, err := loadOverload(baselinePath)
	if os.IsNotExist(err) {
		fmt.Printf("overload: baseline %s does not exist yet; skipping trend checks\n", baselinePath)
		return nil
	}
	if err != nil {
		return err
	}

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	capFloor := base.CapacityPerSec * (1 - maxSlowdown)
	status := "ok"
	if fresh.CapacityPerSec < capFloor {
		status = "FAIL"
		fail("overload capacity %.0f req/s below floor %.0f (baseline %.0f, max slowdown %.0f%%)",
			fresh.CapacityPerSec, capFloor, base.CapacityPerSec, 100*maxSlowdown)
	}
	fmt.Printf("%-16s capacity  %10.0f baseline %10.0f floor %10.0f  %s\n",
		"overload", fresh.CapacityPerSec, base.CapacityPerSec, capFloor, status)

	freshPoints := make(map[float64]overloadPointRecord, len(fresh.Points))
	for _, p := range fresh.Points {
		freshPoints[p.Multiple] = p
	}
	for _, bp := range base.Points {
		fp, ok := freshPoints[bp.Multiple]
		if !ok {
			fail("sweep point %gx present in overload baseline but missing from fresh record", bp.Multiple)
			continue
		}
		floor := bp.Result.GoodputPerSec * (1 - maxSlowdown)
		status := "ok"
		if fp.Result.GoodputPerSec < floor {
			status = "FAIL"
			fail("point %gx goodput %.0f req/s below floor %.0f (baseline %.0f, max slowdown %.0f%%)",
				bp.Multiple, fp.Result.GoodputPerSec, floor, bp.Result.GoodputPerSec, 100*maxSlowdown)
		}
		if bp.Result.Degradations == 0 && fp.Result.Degradations > 0 {
			status = "FAIL"
			fail("point %gx stepped down the degradation ladder %d time(s); baseline held full hardening",
				bp.Multiple, fp.Result.Degradations)
		}
		fmt.Printf("%-16s goodput   %10.0f baseline %10.0f floor %10.0f  %s\n",
			fmt.Sprintf("point %gx", bp.Multiple), fp.Result.GoodputPerSec, bp.Result.GoodputPerSec, floor, status)
	}

	if len(failures) > 0 {
		fmt.Println()
		for _, f := range failures {
			fmt.Println("DRIFT:", f)
		}
		return fmt.Errorf("%d overload check(s) failed against %s", len(failures), baselinePath)
	}
	fmt.Println("overload: no drift")
	return nil
}
