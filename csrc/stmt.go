package csrc

import "cecsan/prog"

// stmt parses one statement.
func (p *parser) stmt() error {
	if p.cur().kind == tokIdent {
		switch p.cur().text {
		case "var":
			return p.varStmt()
		case "if":
			return p.ifStmt()
		case "while":
			return p.whileStmt()
		case "for":
			return p.forStmt()
		case "return":
			return p.returnStmt()
		case "free":
			return p.freeStmt()
		}
	}
	return p.assignOrExprStmt()
}

// varStmt parses `var name = expr ;`.
func (p *parser) varStmt() error {
	p.next() // var
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if _, dup := p.vars[name.text]; dup {
		return p.errf("variable %q already declared", name.text)
	}
	if p.reservedName(name.text) {
		return p.errf("%q is reserved", name.text)
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return err
	}
	v, err := p.expr()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	// Bind a dedicated register so later assignment works.
	reg := p.fb.NewReg()
	p.fb.Assign(reg, v.reg)
	p.vars[name.text] = &binding{reg: reg, pointee: v.pointee}
	return nil
}

// reservedName rejects shadowing of callables and keywords.
func (p *parser) reservedName(n string) bool {
	if libcNames[n] {
		return true
	}
	if _, ok := p.funcs[n]; ok {
		return true
	}
	switch n {
	case "var", "if", "else", "while", "for", "return", "free", "malloc",
		"new", "local", "extern", "externret", "global", "struct", "func":
		return true
	}
	return false
}

// ifStmt parses `if (expr) block (else block)?`.
func (p *parser) ifStmt() error {
	p.next() // if
	if _, err := p.expect(tokPunct, "("); err != nil {
		return err
	}
	cond, err := p.expr()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return err
	}
	var blockErr error
	// Builder layout note: If emits the else arm first; source order of
	// parsing must follow the emission order, so stash the then-tokens.
	thenStart := p.pos
	if err := p.skipBlock(); err != nil {
		return err
	}
	elseStart := -1
	afterThen := p.pos
	if p.cur().kind == tokIdent && p.cur().text == "else" {
		p.next()
		elseStart = p.pos
		if err := p.skipBlock(); err != nil {
			return err
		}
	}
	end := p.pos

	var elseFn func()
	if elseStart >= 0 {
		elseFn = func() {
			p.pos = elseStart
			if err := p.block(); err != nil && blockErr == nil {
				blockErr = err
			}
		}
	}
	p.fb.If(cond.reg, func() {
		p.pos = thenStart
		if err := p.block(); err != nil && blockErr == nil {
			blockErr = err
		}
	}, elseFn)
	_ = afterThen
	p.pos = end
	return blockErr
}

// skipBlock advances past a balanced `{ ... }` without emitting code.
func (p *parser) skipBlock() error {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.next()
		switch {
		case t.kind == tokEOF:
			return p.errf("unterminated block")
		case t.kind == tokPunct && t.text == "{":
			depth++
		case t.kind == tokPunct && t.text == "}":
			depth--
		}
	}
	return nil
}

// whileStmt parses `while (expr) block`.
func (p *parser) whileStmt() error {
	p.next() // while
	if _, err := p.expect(tokPunct, "("); err != nil {
		return err
	}
	condStart := p.pos
	// Pre-scan the condition so we can emit it inside the builder closure.
	if err := p.skipParenExpr(); err != nil {
		return err
	}
	bodyStart := p.pos
	if err := p.skipBlock(); err != nil {
		return err
	}
	end := p.pos

	var blockErr error
	p.fb.While(
		func() prog.Reg {
			p.pos = condStart
			v, err := p.expr()
			if err != nil && blockErr == nil {
				blockErr = err
				return p.fb.Const(0)
			}
			if _, err := p.expect(tokPunct, ")"); err != nil && blockErr == nil {
				blockErr = err
			}
			return v.reg
		},
		func() {
			p.pos = bodyStart
			if err := p.block(); err != nil && blockErr == nil {
				blockErr = err
			}
		},
	)
	p.pos = end
	return blockErr
}

// skipParenExpr advances past the remainder of a parenthesized expression
// (the opening parenthesis has been consumed).
func (p *parser) skipParenExpr() error {
	depth := 1
	for depth > 0 {
		t := p.next()
		switch {
		case t.kind == tokEOF:
			return p.errf("unterminated ( )")
		case t.kind == tokPunct && t.text == "(":
			depth++
		case t.kind == tokPunct && t.text == ")":
			depth--
		}
	}
	return nil
}

// forStmt parses `for (i = start; i < limit; i += step) block` where start
// and limit are integer literals or variables and step is a literal —
// exactly the counted-loop form whose scalar-evolution facts the builder
// records for §II.F.1.
func (p *parser) forStmt() error {
	p.next() // for
	if _, err := p.expect(tokPunct, "("); err != nil {
		return err
	}
	iv, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if _, dup := p.vars[iv.text]; dup {
		return p.errf("loop variable %q shadows an existing variable", iv.text)
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return err
	}
	start, err := p.loopOperand()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	if _, err := p.expect(tokIdent, iv.text); err != nil {
		return err
	}
	cmp, err := p.expect(tokPunct, "")
	if err != nil {
		return err
	}
	if cmp.text != "<" && cmp.text != ">" {
		return p.errf("for condition must be %q or %q", "<", ">")
	}
	limit, err := p.loopOperand()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	if _, err := p.expect(tokIdent, iv.text); err != nil {
		return err
	}
	op, err := p.expect(tokPunct, "")
	if err != nil {
		return err
	}
	if op.text != "+=" && op.text != "-=" {
		return p.errf("for increment must be += or -=")
	}
	stepTok, err := p.expect(tokInt, "")
	if err != nil {
		return err
	}
	step := stepTok.val
	if op.text == "-=" {
		step = -step
	}
	if (cmp.text == "<" && step <= 0) || (cmp.text == ">" && step >= 0) {
		return p.errf("for step direction does not match the condition")
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return err
	}

	var blockErr error
	p.fb.ForRange(start, limit, step, func(i prog.Reg) {
		p.vars[iv.text] = &binding{reg: i}
		if err := p.block(); err != nil && blockErr == nil {
			blockErr = err
		}
	})
	delete(p.vars, iv.text)
	return blockErr
}

// loopOperand parses an integer literal or variable reference.
func (p *parser) loopOperand() (prog.Operand, error) {
	if p.cur().kind == tokInt {
		return prog.ConstOperand(p.next().val), nil
	}
	if p.cur().kind == tokPunct && p.cur().text == "-" {
		p.next()
		n, err := p.expect(tokInt, "")
		if err != nil {
			return prog.Operand{}, err
		}
		return prog.ConstOperand(-n.val), nil
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return prog.Operand{}, err
	}
	b, ok := p.vars[name.text]
	if !ok {
		return prog.Operand{}, p.errf("undefined variable %q", name.text)
	}
	return prog.RegOperand(b.reg), nil
}

// returnStmt parses `return expr? ;`.
func (p *parser) returnStmt() error {
	p.next() // return
	if p.accept(tokPunct, ";") {
		p.fb.RetVoid()
		return nil
	}
	v, err := p.expr()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	p.fb.Ret(v.reg)
	return nil
}

// freeStmt parses `free(expr);`.
func (p *parser) freeStmt() error {
	p.next() // free
	if _, err := p.expect(tokPunct, "("); err != nil {
		return err
	}
	v, err := p.expr()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	p.fb.Free(v.reg)
	return nil
}

// assignOrExprStmt parses either a store through a place or a bare
// expression statement.
func (p *parser) assignOrExprStmt() error {
	pl, err := p.parsePlace()
	if err != nil {
		return err
	}
	if pl != nil && p.accept(tokPunct, "=") {
		v, err := p.expr()
		if err != nil {
			return err
		}
		if err := p.storePlace(pl, v); err != nil {
			return err
		}
		_, err = p.expect(tokPunct, ";")
		return err
	}
	// Not an assignment: continue as an expression statement. If we parsed
	// a place, fold it into a value and keep parsing operators after it.
	var left value
	if pl != nil {
		left, err = p.loadPlace(pl)
		if err != nil {
			return err
		}
		left, err = p.continueExpr(left, 0)
		if err != nil {
			return err
		}
	} else {
		left, err = p.expr()
		if err != nil {
			return err
		}
	}
	_ = left
	_, err = p.expect(tokPunct, ";")
	return err
}
