package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// siteJSON is the machine-readable form of one check site, flattened for
// stable marshalling. Cost is exported in nanoseconds so the file has no
// locale- or formatting-dependent fields.
type siteJSON struct {
	Tool   string `json:"tool"`
	Func   string `json:"func"`
	PC     int    `json:"pc"`
	Fires  int64  `json:"fires"`
	Bytes  int64  `json:"bytes"`
	CostNS int64  `json:"cost_ns"`
}

// profileJSON is the -profile-json file schema: the full site table (hottest
// first) plus the attribution total.
type profileJSON struct {
	TotalFires int64      `json:"total_fires"`
	Sites      []siteJSON `json:"sites"`
}

// WriteJSON writes the full site table as JSON, hottest sites first. The
// file is the input to a later -profile-diff run, which is how the §II.F
// ablations are measured: profile once with a pass disabled, once with it
// enabled, and diff to see which site tables the pass emptied.
func (p *SiteProfiler) WriteJSON(w io.Writer) error {
	sites := p.Sites()
	out := profileJSON{Sites: make([]siteJSON, 0, len(sites))}
	for _, s := range sites {
		out.TotalFires += s.Fires
		out.Sites = append(out.Sites, siteJSON{
			Tool: s.Key.Tool, Func: s.Key.Func, PC: s.Key.PC,
			Fires: s.Fires, Bytes: s.Bytes, CostNS: s.Cost.Nanoseconds(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadSitesFile reads a site profile previously written by WriteJSON.
func LoadSitesFile(path string) ([]SiteStat, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var in profileJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("obs: parse site profile %s: %w", path, err)
	}
	stats := make([]SiteStat, 0, len(in.Sites))
	for _, s := range in.Sites {
		stats = append(stats, SiteStat{
			Key:   SiteKey{Tool: s.Tool, Func: s.Func, PC: s.PC},
			Fires: s.Fires, Bytes: s.Bytes, Cost: time.Duration(s.CostNS),
		})
	}
	return stats, nil
}

// FormatSiteDiff writes a per-site comparison of a baseline profile against
// the current one: fires and bytes deltas per site, with sites the current
// run no longer fires marked "gone" and newly appearing sites marked "new".
// Rows are sorted by baseline fires descending, so the hot sites a check
// optimization emptied lead the table. The footer totals both profiles.
func FormatSiteDiff(w io.Writer, baseline, current []SiteStat) {
	type row struct {
		key        SiteKey
		base, cur  *SiteStat
	}
	idx := make(map[SiteKey]*row, len(baseline)+len(current))
	order := make([]*row, 0, len(baseline)+len(current))
	add := func(s SiteStat, isBase bool) {
		r, ok := idx[s.Key]
		if !ok {
			r = &row{key: s.Key}
			idx[s.Key] = r
			order = append(order, r)
		}
		c := s
		if isBase {
			r.base = &c
		} else {
			r.cur = &c
		}
	}
	for _, s := range baseline {
		add(s, true)
	}
	for _, s := range current {
		add(s, false)
	}
	sort.Slice(order, func(i, j int) bool {
		bi, bj := int64(0), int64(0)
		if order[i].base != nil {
			bi = order[i].base.Fires
		}
		if order[j].base != nil {
			bj = order[j].base.Fires
		}
		if bi != bj {
			return bi > bj
		}
		ki, kj := order[i].key, order[j].key
		if ki.Tool != kj.Tool {
			return ki.Tool < kj.Tool
		}
		if ki.Func != kj.Func {
			return ki.Func < kj.Func
		}
		return ki.PC < kj.PC
	})

	fmt.Fprintf(w, "%-12s %-20s %6s %12s %12s %12s %8s\n",
		"TOOL", "FUNC", "PC", "BASE FIRES", "CUR FIRES", "ΔFIRES", "STATUS")
	var baseFires, curFires int64
	var gone, fresh int
	for _, r := range order {
		var bf, cf int64
		if r.base != nil {
			bf = r.base.Fires
		}
		if r.cur != nil {
			cf = r.cur.Fires
		}
		baseFires += bf
		curFires += cf
		status := ""
		switch {
		case r.cur == nil:
			status, gone = "gone", gone+1
		case r.base == nil:
			status, fresh = "new", fresh+1
		}
		fmt.Fprintf(w, "%-12s %-20s %6d %12d %12d %+12d %8s\n",
			r.key.Tool, r.key.Func, r.key.PC, bf, cf, cf-bf, status)
	}
	fmt.Fprintf(w, "baseline %d sites / %d fires -> current %d sites / %d fires (%+d fires, %d sites emptied, %d new)\n",
		len(baseline), baseFires, len(current), curFires, curFires-baseFires, gone, fresh)
}
