package traffic

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"cecsan/internal/checkpoint"
	"cecsan/internal/obs"
)

// ServeCheckpoint is one serve campaign's serializable mid-run state — the
// consistent cut the checkpoint barrier captures. At capture time no
// request is in flight (everything admitted is terminally accounted), so
// the snapshot plus the (spec, seed, chaos seed) triple fully determines
// the rest of the campaign: a resumed run generates the identical request
// stream, walks identical breaker/ladder transitions, and lands on final
// digests byte-identical to an uninterrupted run.
//
// Wall-clock mechanisms (CoDel, token buckets, latency-derived deadline
// accounting) deliberately restart fresh on resume: they are not part of
// the determinism contract and carry no state worth forging continuity
// for. Everything request-counted is restored exactly.
type ServeCheckpoint struct {
	SpecFingerprint string            `json:"spec_fingerprint"`
	Seed            uint64            `json:"seed"`
	ChaosSeed       uint64            `json:"chaos_seed,omitempty"`
	Processed       int64             `json:"processed"`
	Stream          StreamState       `json:"stream"`
	Classes         []ClassCheckpoint `json:"classes"`
	// Flight is the flight recorder's retained-trace state, present only
	// when a recorder is armed. Optional so pre-tracing checkpoints still
	// load; the supervisor also reads it to dump traces after a crash.
	Flight *obs.FlightState `json:"flight,omitempty"`
}

// ClassCheckpoint is one class's share of the snapshot.
type ClassCheckpoint struct {
	ID       string             `json:"id"`
	Counters ClassCounterState  `json:"counters"`
	Latency  obs.HistogramState `json:"latency"`
	Breaker  *BreakerState      `json:"breaker,omitempty"`
	Ladder   *LadderState       `json:"ladder,omitempty"`
	// Chain is the class's chaos accounting chain (running SHA-256 state),
	// present only in chaos campaigns.
	Chain []byte `json:"chain,omitempty"`
}

// ClassCounterState is the serialized form of classCounters.
type ClassCounterState struct {
	Generated      int64 `json:"generated"`
	Admitted       int64 `json:"admitted"`
	Shed           int64 `json:"shed"`
	ShedBucket     int64 `json:"shed_bucket"`
	ShedDelay      int64 `json:"shed_delay"`
	Completed      int64 `json:"completed"`
	Good           int64 `json:"good"`
	Faults         int64 `json:"faults"`
	Detected       int64 `json:"detected"`
	DeadlineMisses int64 `json:"deadline_misses"`
	Abandoned      int64 `json:"abandoned"`
	Retries        int64 `json:"retries"`
	RetrySuccesses int64 `json:"retry_successes"`
	ChaosInjected  int64 `json:"chaos_injected"`
}

// Fingerprint is a stable identity for the spec's content: the hex SHA-256
// of its canonical JSON encoding. Checkpoints embed it so a resume against
// a different spec fails loudly instead of silently forking the stream.
func (s *Spec) Fingerprint() string {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data; Marshal cannot fail on a validated spec.
		panic(fmt.Sprintf("traffic: spec fingerprint: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// capture snapshots the campaign at a barrier (producer-side, pipeline
// drained — the caller guarantees quiescence).
func (s *server) capture(stream *Stream) (*ServeCheckpoint, error) {
	st, err := stream.State()
	if err != nil {
		return nil, err
	}
	ck := &ServeCheckpoint{
		SpecFingerprint: s.spec.Fingerprint(),
		Seed:            s.seed,
		ChaosSeed:       s.chaos,
		Processed:       s.processed.Load(),
		Stream:          *st,
	}
	for i := range s.spec.Clients {
		cc := s.counters[i]
		cls := s.classes[i]
		c := ClassCheckpoint{
			ID: s.spec.Clients[i].ID,
			Counters: ClassCounterState{
				Generated:      cc.generated.Load(),
				Admitted:       cc.admitted.Load(),
				Shed:           cc.shed.Load(),
				ShedBucket:     cc.shedBucket.Load(),
				ShedDelay:      cc.shedDelay.Load(),
				Completed:      cc.completed.Load(),
				Good:           cc.good.Load(),
				Faults:         cc.faults.Load(),
				Detected:       cc.detected.Load(),
				DeadlineMisses: cc.deadlineMisses.Load(),
				Abandoned:      cc.abandoned.Load(),
				Retries:        cc.retries.Load(),
				RetrySuccesses: cc.retrySuccesses.Load(),
				ChaosInjected:  cc.chaosInjected.Load(),
			},
			Latency: cc.lat.Export(),
		}
		if cls.breaker != nil {
			b := cls.breaker.export()
			c.Breaker = &b
		}
		if cls.ladder != nil {
			l := cls.ladder.export()
			c.Ladder = &l
		}
		if cls.digest != nil {
			chain, err := checkpoint.MarshalHash(cls.digest.h)
			if err != nil {
				return nil, err
			}
			c.Chain = chain
		}
		ck.Classes = append(ck.Classes, c)
	}
	if s.rec != nil {
		st := s.rec.Export()
		ck.Flight = &st
	}
	return ck, nil
}

// restore rewinds the campaign to a snapshot before admission starts. The
// snapshot must match this campaign's identity — spec fingerprint, seed,
// chaos seed — and its resilience shape must match the configured one
// (breaker state in the snapshot requires breakers armed now, and so on);
// any mismatch is a configuration error, not something to paper over.
func (s *server) restore(stream *Stream, ck *ServeCheckpoint) error {
	if got, want := ck.SpecFingerprint, s.spec.Fingerprint(); got != want {
		return fmt.Errorf("traffic: resume: checkpoint is for a different spec (fingerprint %.12s, this spec %.12s)", got, want)
	}
	if ck.Seed != s.seed {
		return fmt.Errorf("traffic: resume: checkpoint seed %d, campaign seed %d", ck.Seed, s.seed)
	}
	if ck.ChaosSeed != s.chaos {
		return fmt.Errorf("traffic: resume: checkpoint chaos seed %d, campaign chaos seed %d", ck.ChaosSeed, s.chaos)
	}
	if len(ck.Classes) != len(s.spec.Clients) {
		return fmt.Errorf("traffic: resume: checkpoint has %d classes, spec has %d", len(ck.Classes), len(s.spec.Clients))
	}
	if err := stream.Restore(&ck.Stream); err != nil {
		return err
	}
	var admitted int64
	for i := range ck.Classes {
		c := &ck.Classes[i]
		if c.ID != s.spec.Clients[i].ID {
			return fmt.Errorf("traffic: resume: class %d is %q in the checkpoint, %q in the spec", i, c.ID, s.spec.Clients[i].ID)
		}
		cc := s.counters[i]
		cls := s.classes[i]
		n := &c.Counters
		cc.generated.Store(n.Generated)
		cc.admitted.Store(n.Admitted)
		cc.shed.Store(n.Shed)
		cc.shedBucket.Store(n.ShedBucket)
		cc.shedDelay.Store(n.ShedDelay)
		cc.completed.Store(n.Completed)
		cc.good.Store(n.Good)
		cc.faults.Store(n.Faults)
		cc.detected.Store(n.Detected)
		cc.deadlineMisses.Store(n.DeadlineMisses)
		cc.abandoned.Store(n.Abandoned)
		cc.retries.Store(n.Retries)
		cc.retrySuccesses.Store(n.RetrySuccesses)
		cc.chaosInjected.Store(n.ChaosInjected)
		if err := cc.lat.Import(c.Latency); err != nil {
			return fmt.Errorf("traffic: resume: class %q: %w", c.ID, err)
		}
		if (c.Breaker != nil) != (cls.breaker != nil) {
			return fmt.Errorf("traffic: resume: class %q: breaker state %v in checkpoint, breakers armed %v now", c.ID, c.Breaker != nil, cls.breaker != nil)
		}
		if c.Breaker != nil {
			if err := cls.breaker.restore(*c.Breaker); err != nil {
				return fmt.Errorf("traffic: resume: class %q: %w", c.ID, err)
			}
		}
		if (c.Ladder != nil) != (cls.ladder != nil) {
			return fmt.Errorf("traffic: resume: class %q: ladder state %v in checkpoint, ladder armed %v now", c.ID, c.Ladder != nil, cls.ladder != nil)
		}
		if c.Ladder != nil {
			if err := cls.ladder.restore(*c.Ladder); err != nil {
				return fmt.Errorf("traffic: resume: class %q: %w", c.ID, err)
			}
		}
		if (c.Chain != nil) != (cls.digest != nil) {
			return fmt.Errorf("traffic: resume: class %q: chaos chain %v in checkpoint, chaos armed %v now", c.ID, c.Chain != nil, cls.digest != nil)
		}
		if c.Chain != nil {
			if err := checkpoint.UnmarshalHash(cls.digest.h, c.Chain); err != nil {
				return fmt.Errorf("traffic: resume: class %q: %w", c.ID, err)
			}
		}
		admitted += n.Admitted
	}
	if (ck.Flight != nil) != (s.rec != nil) {
		return fmt.Errorf("traffic: resume: flight state %v in checkpoint, recorder armed %v now", ck.Flight != nil, s.rec != nil)
	}
	if ck.Flight != nil {
		if err := s.rec.Import(ck.Flight); err != nil {
			return fmt.Errorf("traffic: resume: %w", err)
		}
	}
	// At the barrier every admitted request was terminally accounted, so
	// the resumed pipeline starts drained.
	s.admittedAll.Store(admitted)
	s.finalized.Store(admitted)
	s.processed.Store(ck.Processed)
	return nil
}
