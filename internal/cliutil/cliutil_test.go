package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// newFlagSet builds a quiet FlagSet with the full shared flag complement
// registered, mirroring what every cmd/ tool does at startup.
type sharedFlags struct {
	workers  *int
	maxSteps *int64
	maxDepth *int
	seed     *uint64
	jsonPath *string
	obs      *ObsFlags
}

func newFlagSet() (*flag.FlagSet, *sharedFlags) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs, &sharedFlags{
		workers:  RegisterWorkersFlag(fs),
		maxSteps: RegisterMaxStepsFlag(fs),
		maxDepth: RegisterMaxDepthFlag(fs),
		seed:     RegisterSeedFlag(fs, 1, "seed"),
		jsonPath: RegisterJSONFlag(fs, "json path"),
		obs:      RegisterObsFlags(fs),
	}
}

func TestSharedFlagParsing(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		check func(t *testing.T, f *sharedFlags)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, f *sharedFlags) {
				if *f.workers != 0 || *f.maxSteps != 0 || *f.maxDepth != 0 {
					t.Fatalf("engine knob defaults: workers=%d steps=%d depth=%d", *f.workers, *f.maxSteps, *f.maxDepth)
				}
				if *f.seed != 1 {
					t.Fatalf("seed default = %d, want the registered default 1", *f.seed)
				}
				if *f.jsonPath != "" {
					t.Fatalf("json default = %q, want empty", *f.jsonPath)
				}
				if f.obs.Enabled() {
					t.Fatalf("obs flags must default to disabled: %+v", *f.obs)
				}
				if f.obs.ProfileTop != 10 {
					t.Fatalf("profile-top default = %d, want 10", f.obs.ProfileTop)
				}
			},
		},
		{
			name: "engine knobs",
			args: []string{"-workers", "4", "-max-steps", "1000", "-max-depth", "32", "-seed", "99", "-json", "out.json"},
			check: func(t *testing.T, f *sharedFlags) {
				if *f.workers != 4 || *f.maxSteps != 1000 || *f.maxDepth != 32 {
					t.Fatalf("engine knobs: workers=%d steps=%d depth=%d", *f.workers, *f.maxSteps, *f.maxDepth)
				}
				if *f.seed != 99 || *f.jsonPath != "out.json" {
					t.Fatalf("seed=%d json=%q", *f.seed, *f.jsonPath)
				}
			},
		},
		{
			name: "obs flags",
			args: []string{"-metrics-json", "m.json", "-trace", "t.json", "-http", "127.0.0.1:0", "-profile-checks", "-profile-top", "5"},
			check: func(t *testing.T, f *sharedFlags) {
				o := f.obs
				if !o.Enabled() {
					t.Fatal("obs flags set but Enabled() is false")
				}
				if o.MetricsJSON != "m.json" || o.TracePath != "t.json" || o.HTTPAddr != "127.0.0.1:0" {
					t.Fatalf("obs paths: %+v", *o)
				}
				if !o.ProfileChecks || o.ProfileTop != 5 {
					t.Fatalf("profile knobs: %+v", *o)
				}
			},
		},
		{
			name: "single obs flag enables",
			args: []string{"-metrics-json", "m.json"},
			check: func(t *testing.T, f *sharedFlags) {
				if !f.obs.Enabled() {
					t.Fatal("-metrics-json alone must enable observability")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, f := newFlagSet()
			if err := fs.Parse(tc.args); err != nil {
				t.Fatalf("parse %v: %v", tc.args, err)
			}
			tc.check(t, f)
		})
	}
}

func TestSharedFlagRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "abc"},
		{"-max-steps", "1.5"},
		{"-seed", "-1"},
		{"-profile-top", "x"},
	} {
		fs, _ := newFlagSet()
		if err := fs.Parse(args); err == nil {
			t.Fatalf("parse %v: expected an error", args)
		}
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(3); got != 3 {
		t.Fatalf("ResolveWorkers(3) = %d", got)
	}
	if got := ResolveWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("ResolveWorkers(0) = %d, want GOMAXPROCS", got)
	}
	if got := ResolveWorkers(-2); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("ResolveWorkers(-2) = %d, want GOMAXPROCS", got)
	}
}

func TestWriteJSONAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")

	if err := WriteJSON(path, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]int
	if err := json.Unmarshal(first, &v); err != nil || v["a"] != 1 {
		t.Fatalf("first write round-trip: %v %v", v, err)
	}

	// Overwrite: the replacement must be complete and the directory must not
	// accumulate temporary files.
	if err := WriteJSON(path, map[string]int{"a": 2}); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &v); err != nil || v["a"] != 2 {
		t.Fatalf("second write round-trip: %v %v", v, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out.json" {
		t.Fatalf("directory holds %v, want only out.json (no temp-file litter)", entries)
	}

	// A failed write must leave the existing file untouched.
	if err := WriteJSON(path, map[string]any{"bad": func() {}}); err == nil {
		t.Fatal("marshaling a func must fail")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(second) {
		t.Fatalf("failed write corrupted the previous file:\n%s", after)
	}
}

func TestWriteToFailureLeavesNoLitter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := writeTo(path, func(w io.Writer) error {
		return fmt.Errorf("stream failed")
	}); err == nil {
		t.Fatal("writeTo must propagate the stream error")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed writeTo must not create %s", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("directory holds %v, want empty (temp removed on failure)", entries)
	}
}

func TestObsFlagsBuild(t *testing.T) {
	// No flags: nil observer, nil server — callers pass both straight on.
	f := &ObsFlags{}
	o, srv, err := f.Build()
	if err != nil || o != nil || srv != nil {
		t.Fatalf("Build() with no flags = %v, %v, %v", o, srv, err)
	}
	if err := f.Finish(o, srv, 0); err != nil {
		t.Fatalf("Finish with nil observer: %v", err)
	}

	// Trace + profile: the corresponding facilities come enabled.
	f = &ObsFlags{TracePath: t.TempDir() + "/t.json", ProfileChecks: true}
	o, srv, err = f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.Tracer == nil || o.Sites == nil || srv != nil {
		t.Fatalf("Build() = %+v, srv=%v", o, srv)
	}
	if err := f.Finish(o, srv, 0); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

// TestWriteToDurable: the happy path syncs the data and the directory — a
// successful write leaves exactly the target file, readable back in full
// (the sync calls themselves are untestable without fault injection, but a
// bad file descriptor in either would fail the write loudly).
func TestWriteToDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := writeTo(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "payload" {
		t.Fatalf("read back %q", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want just the target", len(entries))
	}
}

// TestWriteAtomicCreatesParents: artifact paths like artifacts/foo.jsonl
// must work on a fresh checkout — the writer creates missing parent
// directories before staging the temp file.
func TestWriteAtomicCreatesParents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifacts", "nested", "out.jsonl")
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := fmt.Fprintln(w, `{"ok":true}`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{\"ok\":true}\n" {
		t.Fatalf("content %q", data)
	}

	// A failed write must leave no file behind.
	failPath := filepath.Join(t.TempDir(), "sub", "bad.json")
	if err := WriteAtomic(failPath, func(io.Writer) error {
		return fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("write error not propagated")
	}
	if _, err := os.Stat(failPath); !os.IsNotExist(err) {
		t.Fatalf("failed write left %s behind", failPath)
	}
}
