package csrc

import "cecsan/prog"

// value is an evaluated expression: its register plus the pointee type the
// compiler could track (nil for plain integers / untyped pointers).
type value struct {
	reg     prog.Reg
	pointee *prog.Type
}

// placeKind classifies assignable locations.
type placeKind int

const (
	placeVar   placeKind = iota + 1 // a named variable's register
	placeMem                        // memory at addr+off of scalar type typ
	placeValue                      // not assignable: an r-value that fell out of chain parsing
)

// place is a parsed postfix chain that may be stored to or loaded from.
type place struct {
	kind placeKind
	bind *binding   // placeVar
	addr prog.Reg   // placeMem base register
	off  int64      // placeMem static offset
	typ  *prog.Type // placeMem scalar type
	val  value      // placeValue
}

// returnsDst marks libc functions returning their first pointer argument.
var returnsDst = map[string]bool{
	"memcpy": true, "memmove": true, "memset": true, "strcpy": true,
	"strncpy": true, "strcat": true, "strncat": true, "wcsncpy": true,
	"wmemcpy": true, "wmemset": true,
}

// expr parses a full expression.
func (p *parser) expr() (value, error) {
	left, err := p.unary()
	if err != nil {
		return value{}, err
	}
	return p.continueExpr(left, 0)
}

// binOps lists binary operators by precedence level (low to high).
var binOps = [][]string{
	{"&&", "||"},
	{"==", "!=", "<", "<=", ">", ">="},
	{"&", "|", "^"},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

// continueExpr finishes a binary expression whose left operand is already
// evaluated, by precedence climbing: operators at minLevel or tighter are
// consumed; looser ones are left for the caller.
func (p *parser) continueExpr(left value, minLevel int) (value, error) {
	for {
		level, op, ok := p.peekAnyOp()
		if !ok || level < minLevel {
			return left, nil
		}
		p.next()
		right, err := p.unary()
		if err != nil {
			return value{}, err
		}
		// Bind tighter levels on the right first.
		right, err = p.continueExpr(right, level+1)
		if err != nil {
			return value{}, err
		}
		left = p.applyBinOp(op, left, right)
	}
}

// peekAnyOp returns the precedence level of the operator at the cursor.
func (p *parser) peekAnyOp() (int, string, bool) {
	if p.cur().kind != tokPunct {
		return 0, "", false
	}
	for level, ops := range binOps {
		for _, op := range ops {
			if p.cur().text == op {
				return level, op, true
			}
		}
	}
	return 0, "", false
}

// applyBinOp emits the operation. Pointer arithmetic is in bytes (char*
// semantics); the pointee type rides along through + and -.
func (p *parser) applyBinOp(op string, a, b value) value {
	f := p.fb
	switch op {
	case "+":
		return value{reg: f.Add(a.reg, b.reg), pointee: firstPointee(a, b)}
	case "-":
		return value{reg: f.Sub(a.reg, b.reg), pointee: firstPointee(a, b)}
	case "*":
		return value{reg: f.Mul(a.reg, b.reg)}
	case "/":
		return value{reg: f.Bin(prog.BinDiv, a.reg, b.reg)}
	case "%":
		return value{reg: f.Bin(prog.BinRem, a.reg, b.reg)}
	case "&":
		return value{reg: f.Bin(prog.BinAnd, a.reg, b.reg)}
	case "|":
		return value{reg: f.Bin(prog.BinOr, a.reg, b.reg)}
	case "^":
		return value{reg: f.Bin(prog.BinXor, a.reg, b.reg)}
	case "<<":
		return value{reg: f.Bin(prog.BinShl, a.reg, b.reg)}
	case ">>":
		return value{reg: f.Bin(prog.BinShr, a.reg, b.reg)}
	case "==":
		return value{reg: f.Cmp(prog.CmpEq, a.reg, b.reg)}
	case "!=":
		return value{reg: f.Cmp(prog.CmpNe, a.reg, b.reg)}
	case "<":
		return value{reg: f.Cmp(prog.CmpSLt, a.reg, b.reg)}
	case "<=":
		return value{reg: f.Cmp(prog.CmpSLe, a.reg, b.reg)}
	case ">":
		return value{reg: f.Cmp(prog.CmpSGt, a.reg, b.reg)}
	case ">=":
		return value{reg: f.Cmp(prog.CmpSGe, a.reg, b.reg)}
	case "&&":
		an := f.Cmp(prog.CmpNe, a.reg, f.Const(0))
		bn := f.Cmp(prog.CmpNe, b.reg, f.Const(0))
		return value{reg: f.Bin(prog.BinAnd, an, bn)}
	case "||":
		an := f.Cmp(prog.CmpNe, a.reg, f.Const(0))
		bn := f.Cmp(prog.CmpNe, b.reg, f.Const(0))
		return value{reg: f.Bin(prog.BinOr, an, bn)}
	}
	return a // unreachable: binOps covers all cases
}

func firstPointee(a, b value) *prog.Type {
	if a.pointee != nil {
		return a.pointee
	}
	return b.pointee
}

// unary parses -x, !x and primaries.
func (p *parser) unary() (value, error) {
	if p.cur().kind == tokPunct {
		switch p.cur().text {
		case "-":
			p.next()
			v, err := p.unary()
			if err != nil {
				return value{}, err
			}
			return value{reg: p.fb.Sub(p.fb.Const(0), v.reg)}, nil
		case "!":
			p.next()
			v, err := p.unary()
			if err != nil {
				return value{}, err
			}
			return value{reg: p.fb.Cmp(prog.CmpEq, v.reg, p.fb.Const(0))}, nil
		case "(":
			p.next()
			v, err := p.expr()
			if err != nil {
				return value{}, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return value{}, err
			}
			return v, nil
		}
	}
	return p.primary()
}

// primary parses literals, calls, allocation forms and places.
func (p *parser) primary() (value, error) {
	t := p.cur()
	if t.kind == tokInt {
		p.next()
		return value{reg: p.fb.Const(t.val)}, nil
	}
	if t.kind != tokIdent {
		return value{}, p.errf("unexpected token %q in expression", t.text)
	}

	switch t.text {
	case "malloc":
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return value{}, err
		}
		// Constant sizes keep their compile-time size information.
		if p.cur().kind == tokInt && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == ")" {
			n := p.next().val
			p.next() // )
			return value{reg: p.fb.MallocBytes(n), pointee: prog.Char()}, nil
		}
		n, err := p.expr()
		if err != nil {
			return value{}, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return value{}, err
		}
		return value{reg: p.fb.MallocReg(n.reg), pointee: prog.Char()}, nil

	case "new":
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return value{}, err
		}
		ty, err := p.parseType()
		if err != nil {
			return value{}, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return value{}, err
		}
		return value{reg: p.fb.MallocType(ty), pointee: ty}, nil

	case "local":
		p.next()
		ty, err := p.parseType()
		if err != nil {
			return value{}, err
		}
		return value{reg: p.fb.Alloca(ty), pointee: ty}, nil

	case "extern", "externret":
		retIsArg0 := t.text == "externret"
		p.next()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return value{}, err
		}
		args, err := p.callArgs()
		if err != nil {
			return value{}, err
		}
		regs := make([]prog.Reg, len(args))
		for i, a := range args {
			regs[i] = a.reg
		}
		v := value{reg: p.fb.CallExternal(name.text, retIsArg0, regs...)}
		if retIsArg0 && len(args) > 0 {
			v.pointee = args[0].pointee
		}
		return v, nil
	}

	if libcNames[t.text] {
		p.next()
		args, err := p.callArgs()
		if err != nil {
			return value{}, err
		}
		regs := make([]prog.Reg, len(args))
		for i, a := range args {
			regs[i] = a.reg
		}
		v := value{reg: p.fb.Libc(t.text, regs...)}
		switch {
		case returnsDst[t.text] && len(args) > 0:
			v.pointee = args[0].pointee
		case t.text == "calloc" || t.text == "realloc":
			v.pointee = prog.Char()
		}
		return v, nil
	}

	if _, ok := p.funcs[t.text]; ok {
		p.next()
		args, err := p.callArgs()
		if err != nil {
			return value{}, err
		}
		if len(args) != p.funcs[t.text] {
			return value{}, p.errf("call of %q with %d args, want %d", t.text, len(args), p.funcs[t.text])
		}
		regs := make([]prog.Reg, len(args))
		for i, a := range args {
			regs[i] = a.reg
		}
		return value{reg: p.fb.Call(t.text, regs...)}, nil
	}

	pl, err := p.parsePlace()
	if err != nil {
		return value{}, err
	}
	if pl == nil {
		return value{}, p.errf("undefined name %q", t.text)
	}
	return p.loadPlace(pl)
}

// callArgs parses `( expr, ... )`.
func (p *parser) callArgs() ([]value, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var args []value
	for !p.accept(tokPunct, ")") {
		if len(args) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	return args, nil
}

// parsePlace parses an identifier postfix chain (`x`, `p[i]`, `s->f`,
// `s->buf[i]`, `g`). It returns nil without consuming tokens when the
// cursor does not start a place (callables and literals).
func (p *parser) parsePlace() (*place, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, nil
	}
	if p.reservedName(t.text) {
		return nil, nil
	}

	var cur value
	if b, ok := p.vars[t.text]; ok {
		p.next()
		// A bare variable with no postfix is itself the place.
		if !p.isPostfix() {
			return &place{kind: placeVar, bind: b}, nil
		}
		cur = value{reg: b.reg, pointee: b.pointee}
	} else if gt, ok := p.globals[t.text]; ok {
		p.next()
		addr := p.fb.GlobalAddr(t.text)
		if gt.IsComposite() {
			// Arrays/structs decay to a typed pointer.
			cur = value{reg: addr, pointee: gt}
			if !p.isPostfix() {
				return &place{kind: placeValue, val: cur}, nil
			}
		} else {
			// Scalar global: an assignable memory place.
			if p.isPostfix() {
				return nil, p.errf("cannot index scalar global %q", t.text)
			}
			return &place{kind: placeMem, addr: addr, typ: gt}, nil
		}
	} else {
		return nil, nil
	}

	// Postfix chain.
	for {
		switch {
		case p.accept(tokPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			elem := prog.Char()
			var gep prog.Reg
			if pt := cur.pointee; pt != nil && pt.Kind() == prog.KindArray {
				elem = pt.Elem()
				gep = p.fb.IndexPtr(cur.reg, pt, idx.reg)
			} else {
				if pt := cur.pointee; pt != nil && pt.Kind() != prog.KindStruct {
					elem = pt
				} else if pt != nil {
					elem = pt // array of structs via pointer
				}
				gep = p.fb.ElemPtr(cur.reg, elem, idx.reg)
			}
			if elem.Kind() == prog.KindStruct {
				cur = value{reg: gep, pointee: elem}
				continue
			}
			if p.isPostfix() {
				return nil, p.errf("cannot chain further after scalar index")
			}
			return &place{kind: placeMem, addr: gep, typ: elem}, nil

		case p.accept(tokPunct, "->"):
			fieldTok, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			st := cur.pointee
			if st == nil || st.Kind() != prog.KindStruct {
				return nil, p.errf("-> requires a struct pointer")
			}
			fl, ok := st.FieldByName(fieldTok.text)
			if !ok {
				return nil, p.errf("struct %s has no field %q", st.Name(), fieldTok.text)
			}
			switch fl.Type.Kind() {
			case prog.KindArray:
				// Array fields decay via a sub-object GEP (the §II.D
				// narrowing candidate).
				cur = value{reg: p.fb.FieldPtr(cur.reg, st, fieldTok.text), pointee: fl.Type}
				if !p.isPostfix() {
					return &place{kind: placeValue, val: cur}, nil
				}
			case prog.KindStruct:
				cur = value{reg: p.fb.FieldPtr(cur.reg, st, fieldTok.text), pointee: fl.Type}
			default:
				// Scalar field: a direct typed access at a static offset.
				if p.isPostfix() {
					return nil, p.errf("cannot chain further after scalar field")
				}
				return &place{kind: placeMem, addr: cur.reg, off: fl.Offset, typ: fl.Type}, nil
			}

		default:
			return &place{kind: placeValue, val: cur}, nil
		}
	}
}

// isPostfix reports whether the cursor starts a postfix operator.
func (p *parser) isPostfix() bool {
	return p.cur().kind == tokPunct && (p.cur().text == "[" || p.cur().text == "->")
}

// loadPlace converts a place into a value.
func (p *parser) loadPlace(pl *place) (value, error) {
	switch pl.kind {
	case placeVar:
		return value{reg: pl.bind.reg, pointee: pl.bind.pointee}, nil
	case placeMem:
		v := value{reg: p.fb.Load(pl.addr, pl.off, pl.typ)}
		return v, nil
	case placeValue:
		return pl.val, nil
	}
	return value{}, p.errf("internal: bad place")
}

// storePlace assigns a value to a place.
func (p *parser) storePlace(pl *place, v value) error {
	switch pl.kind {
	case placeVar:
		p.fb.Assign(pl.bind.reg, v.reg)
		pl.bind.pointee = v.pointee
		return nil
	case placeMem:
		p.fb.Store(pl.addr, pl.off, v.reg, pl.typ)
		return nil
	default:
		return p.errf("left side of = is not assignable")
	}
}
