GO ?= go

.PHONY: all build test race fuzz-smoke fuzz-smoke-hardened fault-smoke obs-smoke ci bench-smoke bench-gate serve-smoke overload-smoke resume-smoke trace-smoke bench-table2 bench-table4 clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/interp/... ./internal/engine/... ./internal/core/...

# Differential fuzzing smoke: a fixed-seed 200-case campaign across all
# eight sanitizer models. Exits non-zero on any oracle disagreement, so it
# doubles as the cross-sanitizer regression gate.
fuzz-smoke:
	$(GO) run ./cmd/fuzz -seed 7 -count 200

# Hardened-profile smoke: the same fixed-seed campaign with every
# CECSan-family tool swapped for its temporally hardened variant. The
# oracle flips the reuse-window shapes (uaf_quarantine_flush,
# uaf_realloc_reuse) from documented misses to mandatory detections, so
# this gate proves the mitigations close the window without introducing
# false positives.
fuzz-smoke-hardened:
	$(GO) run ./cmd/fuzz -seed 7 -count 200 -hardened

# Fault-injection smoke: the same fixed-seed campaign under deterministic
# resource-pressure injection (nth-malloc OOM, metadata-table clamps,
# page-map failures). Exit 1 = oracle disagreement, exit 2 = the harness
# itself faulted; both fail the gate.
fault-smoke:
	$(GO) run ./cmd/fuzz -seed 7 -count 200 -faults 3

# Observability smoke: a 50-case campaign with every obs flag on — metrics
# snapshot, trace export, check-site profiling, live endpoint on an
# ephemeral port. Exit 0 plus non-empty exports proves the layer stays off
# the report path while every facility records.
obs-smoke:
	$(GO) run ./cmd/fuzz -seed 7 -count 50 -metrics-json artifacts/metrics-smoke.json \
		-trace artifacts/trace-smoke.json -profile-checks -http 127.0.0.1:0
	test -s artifacts/metrics-smoke.json
	test -s artifacts/trace-smoke.json

# The full local CI gate: static checks, build, the race-enabled unit
# suites, the fuzz smokes (clean + hardened + fault-injected), and the
# observability smoke.
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke
	$(MAKE) fuzz-smoke-hardened
	$(MAKE) fault-smoke
	$(MAKE) obs-smoke

# Quick end-to-end benchmark pass: ~5% of the Table II suite, with the
# machine-readable record. Finishes in a few seconds; use it to sanity-check
# detection rates and the engine's cache/pooling behaviour after a change.
bench-smoke:
	$(GO) run ./cmd/julietbench -table 2 -scale 0.05 -progress 0 -json BENCH_table2.json \
		-metrics-json artifacts/metrics-smoke.json
	$(GO) run ./cmd/temporalbench -json BENCH_temporal.json

# Performance-trend gate: regenerate the bench-smoke record into a scratch
# file and compare it against the committed BENCH_table2.json baseline.
# Throughput gates with a generous machine-variance tolerance; the
# instrumentation-cache hit rate is machine-independent and must not
# regress. Run before bench-smoke — bench-smoke overwrites the baseline.
bench-gate:
	$(GO) run ./cmd/julietbench -table 2 -scale 0.05 -progress 0 -json BENCH_fresh.json
	$(GO) run ./cmd/benchgate -baseline BENCH_table2.json -fresh BENCH_fresh.json
	$(GO) run ./cmd/serve -spec examples/workloads/interactive-batch.yaml \
		-max-requests 2000 -min-completed 1 -json BENCH_serve_fresh.json
	$(GO) run ./cmd/benchgate -serve-baseline BENCH_serve.json -serve-fresh BENCH_serve_fresh.json
	rm -f BENCH_fresh.json BENCH_serve_fresh.json

# Traffic-campaign smoke: a bounded closed-loop run of the shipped
# interactive/batch spec through cmd/serve, with the flight recorder armed
# at default sampling and the SLO gate live (-slo-exit: any exhausted error
# budget or violated p99 objective fails the target). -min-completed 1
# asserts every class made progress; the JSON record is the committed serve
# baseline and the CI artifact. Runs after bench-gate — it overwrites the
# baseline.
serve-smoke:
	$(GO) run ./cmd/serve -spec examples/workloads/interactive-batch.yaml \
		-max-requests 2000 -min-completed 1 -slo-exit -json BENCH_serve.json \
		-flight artifacts/serve-flight.jsonl \
		-metrics-json artifacts/metrics-serve-smoke.json
	test -s BENCH_serve.json
	test -s artifacts/metrics-serve-smoke.json
	test -s artifacts/serve-flight.jsonl

# Overload-resilience smoke, three gates in one target:
#
#  1. Chaos determinism: the same seeded chaos campaign (3 storm/calm
#     phases = 1152 requests) at two worker counts must produce
#     byte-identical chaos digests, and both runs must actually exercise
#     the machinery — breaker trips, ladder step-downs AND recoveries.
#  2. Zero-flap clean run: with resilience armed but no chaos, a healthy
#     closed-loop campaign must not trip a single breaker — the overload
#     layer must be invisible when nothing is wrong.
#  3. Overload trend gate: a fresh calibrate-and-sweep record against the
#     committed BENCH_overload.json baseline — capacity and per-point
#     goodput floors, plus no ladder degradation at a multiple where the
#     baseline held full hardening. The fresh record then replaces the
#     local baseline file, becoming the CI artifact (like serve-smoke).
overload-smoke:
	$(GO) run ./cmd/serve -spec examples/workloads/interactive-batch.yaml \
		-seed 42 -chaos-seed 11 -max-requests 1152 -workers 2 \
		-min-breaker-trips 1 -min-degradations 1 -min-recoveries 1 \
		-json chaos-a.json
	$(GO) run ./cmd/serve -spec examples/workloads/interactive-batch.yaml \
		-seed 42 -chaos-seed 11 -max-requests 1152 -workers 7 \
		-min-breaker-trips 1 -min-degradations 1 -min-recoveries 1 \
		-json chaos-b.json
	grep '"chaos_digest"' chaos-a.json > chaos-a.digest
	grep '"chaos_digest"' chaos-b.json > chaos-b.digest
	cmp chaos-a.digest chaos-b.digest
	$(GO) run ./cmd/serve -spec examples/workloads/interactive-batch.yaml \
		-max-requests 2000 -resilience -min-completed 1 -max-breaker-trips 0
	$(GO) run ./cmd/serve -spec examples/workloads/interactive-batch.yaml \
		-overload -json BENCH_overload_fresh.json
	$(GO) run ./cmd/benchgate -overload-baseline BENCH_overload.json \
		-overload-fresh BENCH_overload_fresh.json
	mv BENCH_overload_fresh.json BENCH_overload.json
	rm -f chaos-a.json chaos-b.json chaos-a.digest chaos-b.digest

# Crash-recovery smoke, the kill -9 acceptance gate, four legs in one
# scratch dir:
#
#  1. Serve reference: an uninterrupted chaos campaign (same shape as
#     overload-smoke's determinism leg) records the expected digests.
#  2. Serve kill+resume: the same campaign with checkpointing armed
#     SIGKILLs itself mid-flight (the `if` inverts the expected death);
#     resuming from the surviving snapshot must land on byte-identical
#     stream and chaos digests.
#  3. Serve supervision: `-supervise` restarts the same crashy worker
#     from its checkpoints until completion — digests must again match,
#     with zero human involvement.
#  4. Fuzz kill+resume: same story over the case index — the resumed
#     campaign's full JSON report (case digest included) must be
#     byte-identical to the uninterrupted one's.
RSM := .resume-smoke
RSM_SERVE := -spec examples/workloads/interactive-batch.yaml \
	-seed 42 -chaos-seed 11 -max-requests 1152 -workers 2
RSM_FUZZ := -seed 7 -count 600 -faults 3
resume-smoke:
	rm -rf $(RSM) && mkdir -p $(RSM)
	$(GO) build -o $(RSM)/serve ./cmd/serve
	$(GO) build -o $(RSM)/fuzz ./cmd/fuzz
	$(RSM)/serve $(RSM_SERVE) -json $(RSM)/serve-ref.json
	if $(RSM)/serve $(RSM_SERVE) -checkpoint $(RSM)/serve.ckpt \
		-checkpoint-every 256 -crash-after 500 >/dev/null 2>&1; \
		then echo "resume-smoke: serve crash run unexpectedly survived"; exit 1; fi
	test -s $(RSM)/serve.ckpt
	$(RSM)/serve $(RSM_SERVE) -resume $(RSM)/serve.ckpt -json $(RSM)/serve-res.json
	grep '"stream_digest"' $(RSM)/serve-ref.json > $(RSM)/ref.digest
	grep '"chaos_digest"' $(RSM)/serve-ref.json >> $(RSM)/ref.digest
	grep '"stream_digest"' $(RSM)/serve-res.json > $(RSM)/res.digest
	grep '"chaos_digest"' $(RSM)/serve-res.json >> $(RSM)/res.digest
	cmp $(RSM)/ref.digest $(RSM)/res.digest
	rm -f $(RSM)/serve.ckpt
	$(RSM)/serve $(RSM_SERVE) -checkpoint $(RSM)/serve.ckpt -checkpoint-every 256 \
		-crash-after 500 -supervise -json $(RSM)/serve-sup.json
	grep '"stream_digest"' $(RSM)/serve-sup.json > $(RSM)/sup.digest
	grep '"chaos_digest"' $(RSM)/serve-sup.json >> $(RSM)/sup.digest
	cmp $(RSM)/ref.digest $(RSM)/sup.digest
	grep -q '"restarts":' $(RSM)/serve-sup.json
	$(RSM)/fuzz $(RSM_FUZZ) -json $(RSM)/fuzz-ref.json
	if $(RSM)/fuzz $(RSM_FUZZ) -checkpoint $(RSM)/fuzz.ckpt \
		-checkpoint-every 200 -crash-after 300 >/dev/null 2>&1; \
		then echo "resume-smoke: fuzz crash run unexpectedly survived"; exit 1; fi
	test -s $(RSM)/fuzz.ckpt
	$(RSM)/fuzz $(RSM_FUZZ) -resume $(RSM)/fuzz.ckpt -json $(RSM)/fuzz-res.json
	cmp $(RSM)/fuzz-ref.json $(RSM)/fuzz-res.json
	rm -rf $(RSM)

# Request-tracing smoke, three gates in one scratch dir:
#
#  1. Trace-ID determinism: the same seeded chaos campaign at two worker
#     counts must retain byte-identical trace-ID sets — IDs derive from
#     (seed, stream index) and chaos retention runs in deterministic-only
#     mode, so the flight record is scheduling-independent.
#  2. Fault retention: the chaos record must actually contain faulted
#     traces (cmd/serve additionally self-checks 100% faulted retention
#     against the campaign's fault counter and exits 2 on loss).
#  3. Crash post-mortem: a supervised crashy campaign must leave a
#     readable <flight>.crash dump reconstructed from the last checkpoint
#     by the supervisor — the worker died without writing its own.
TSM := .trace-smoke
# -retry-max -1 makes chaos faults terminal (instead of retried away), so
# the record provably retains faulted traces.
TSM_SERVE := -spec examples/workloads/interactive-batch.yaml \
	-seed 42 -chaos-seed 11 -max-requests 1152 -retry-max -1
trace-smoke:
	rm -rf $(TSM) && mkdir -p $(TSM)
	$(GO) build -o $(TSM)/serve ./cmd/serve
	$(TSM)/serve $(TSM_SERVE) -workers 2 -flight $(TSM)/a.jsonl \
		-flight-chrome $(TSM)/a-chrome.json
	$(TSM)/serve $(TSM_SERVE) -workers 7 -flight $(TSM)/b.jsonl
	grep -o '"trace_id":"[0-9a-f]*"' $(TSM)/a.jsonl | sort > $(TSM)/a.ids
	grep -o '"trace_id":"[0-9a-f]*"' $(TSM)/b.jsonl | sort > $(TSM)/b.ids
	test -s $(TSM)/a.ids
	cmp $(TSM)/a.ids $(TSM)/b.ids
	grep -q '"outcome":"fault"' $(TSM)/a.jsonl
	test -s $(TSM)/a-chrome.json
	$(TSM)/serve $(TSM_SERVE) -workers 2 -checkpoint $(TSM)/sup.ckpt \
		-checkpoint-every 256 -crash-after 500 -supervise \
		-flight $(TSM)/sup.jsonl
	test -s $(TSM)/sup.jsonl.crash
	test -s $(TSM)/sup.jsonl
	rm -rf $(TSM)

# Full-scale table regenerations.
bench-table2:
	$(GO) run ./cmd/julietbench -table 2 -json BENCH_table2.json

bench-table4:
	$(GO) run ./cmd/specbench -suite 2006 -json BENCH_table4.json

clean:
	rm -f BENCH_fresh.json BENCH_serve_fresh.json BENCH_overload_fresh.json \
		chaos-a.json chaos-b.json chaos-a.digest chaos-b.digest
	rm -rf .resume-smoke .trace-smoke artifacts
