package engine

import (
	"errors"
	"testing"

	"cecsan/internal/faultinject"
	"cecsan/internal/sanitizers"
	"cecsan/prog"
)

// RunPlanned must execute under exactly the plan the caller hands it —
// overriding the engine's own FaultPlanFor policy in both directions: an
// explicit plan fires even when the policy would inject nothing, and a zero
// plan suppresses a policy that would.
func TestRunPlannedOverridesFaultPolicy(t *testing.T) {
	p := compileSrc(t, normalSrc)
	fp := p.Fingerprint()

	eng, err := New(sanitizers.CECSan, Options{
		MaxInstructions: 100_000,
		FaultPlanFor: func(got prog.Fingerprint) faultinject.Plan {
			if got == fp {
				return faultinject.Plan{MallocFailNth: 1}
			}
			return faultinject.Plan{}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Zero plan: the policy's injection must NOT fire.
	res, err := eng.RunPlanned(p, PlannedRun{})
	if err != nil {
		t.Fatalf("RunPlanned(zero): %v", err)
	}
	if res.Err != nil || res.Violation != nil {
		t.Fatalf("zero-plan run not clean: err=%v violation=%v", res.Err, res.Violation)
	}

	// Explicit plan on an engine whose policy injects nothing for it.
	clean, err := New(sanitizers.CECSan, Options{MaxInstructions: 100_000})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err = clean.RunPlanned(p, PlannedRun{Plan: faultinject.Plan{MallocFailNth: 1}})
	if err != nil {
		t.Fatalf("RunPlanned(oom): %v", err)
	}
	if !errors.Is(res.Err, faultinject.ErrInjectedOOM) {
		t.Fatalf("planned OOM run err = %v, want ErrInjectedOOM", res.Err)
	}
	if res.Stats.InjectedFaults == 0 {
		t.Fatal("planned OOM run recorded no injected faults")
	}
}

// An injected panic under RunPlanned surfaces as a FaultPanic outcome with no
// automatic fresh-runtime retry: the serving layer owns the retry policy, so
// the engine must hand the fault straight back.
func TestRunPlannedPanicNoAutoRetry(t *testing.T) {
	p := compileSrc(t, normalSrc)
	eng, err := New(sanitizers.CECSan, Options{MaxInstructions: 100_000})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Warm the recycled-resources pool so an auto-retry would be observable.
	if _, err := eng.Run(p); err != nil {
		t.Fatalf("warm Run: %v", err)
	}

	res, err := eng.RunPlanned(p, PlannedRun{Plan: faultinject.Plan{MallocPanicNth: 1}})
	if err != nil {
		t.Fatalf("RunPlanned: %v", err)
	}
	fo := AsFault(res.Err)
	if fo == nil || fo.Class != FaultPanic {
		t.Fatalf("planned panic outcome = %v, want FaultPanic", res.Err)
	}
	if got := eng.Stats().FaultRetries; got != 0 {
		t.Fatalf("FaultRetries = %d, want 0 (RunPlanned must not auto-retry)", got)
	}
}

// BypassCache instruments inline without touching the cache: the bypass
// counter moves, the hit/miss accounting does not, and the result matches a
// cached run.
func TestRunPlannedCacheBypass(t *testing.T) {
	p := compileSrc(t, normalSrc)
	eng, err := New(sanitizers.CECSan, Options{MaxInstructions: 100_000})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	want, err := eng.Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	before := eng.Stats()

	res, err := eng.RunPlanned(p, PlannedRun{BypassCache: true})
	if err != nil {
		t.Fatalf("RunPlanned: %v", err)
	}
	if res.Err != nil || res.Violation != nil {
		t.Fatalf("bypass run not clean: err=%v violation=%v", res.Err, res.Violation)
	}
	if res.Ret != want.Ret {
		t.Fatalf("bypass run Ret = %d, cached run Ret = %d", res.Ret, want.Ret)
	}

	after := eng.Stats()
	if after.CacheBypasses != before.CacheBypasses+1 {
		t.Fatalf("CacheBypasses %d -> %d, want +1", before.CacheBypasses, after.CacheBypasses)
	}
	if after.CacheHits != before.CacheHits || after.CacheMisses != before.CacheMisses {
		t.Fatalf("bypass run moved hit/miss accounting: hits %d->%d misses %d->%d",
			before.CacheHits, after.CacheHits, before.CacheMisses, after.CacheMisses)
	}
}
