package mem

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func newSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace(47)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	return s
}

func TestNewSpaceWidthValidation(t *testing.T) {
	tests := []struct {
		name    string
		bits    uint
		wantErr bool
	}{
		{name: "x86-64 user width", bits: 47, wantErr: false},
		{name: "arm64 user width", bits: 48, wantErr: false},
		{name: "minimum width", bits: SpanBits, wantErr: false},
		{name: "too narrow", bits: SpanBits - 1, wantErr: true},
		{name: "too wide", bits: 58, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSpace(tt.bits)
			if gotErr := err != nil; gotErr != tt.wantErr {
				t.Fatalf("NewSpace(%d) error = %v, wantErr %v", tt.bits, err, tt.wantErr)
			}
		})
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	s := newSpace(t)
	tests := []struct {
		name string
		addr uint64
		size int64
		val  uint64
		want uint64
	}{
		{name: "byte", addr: 0x1000, size: 1, val: 0xAB, want: 0xAB},
		{name: "byte truncates", addr: 0x1001, size: 1, val: 0x1FF, want: 0xFF},
		{name: "half word", addr: 0x2000, size: 2, val: 0xBEEF, want: 0xBEEF},
		{name: "word", addr: 0x3000, size: 4, val: 0xDEADBEEF, want: 0xDEADBEEF},
		{name: "double word", addr: 0x4000, size: 8, val: 0x0123456789ABCDEF, want: 0x0123456789ABCDEF},
		{name: "word truncates high bits", addr: 0x5000, size: 4, val: 0xAA_DEADBEEF, want: 0xDEADBEEF},
		{name: "chunk-straddling word", addr: ChunkSize - 2, size: 4, val: 0xCAFEBABE, want: 0xCAFEBABE},
		{name: "chunk-straddling double", addr: 3*ChunkSize - 3, size: 8, val: 0x1122334455667788, want: 0x1122334455667788},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if f := s.Store(tt.addr, tt.size, tt.val); f != nil {
				t.Fatalf("Store: %v", f)
			}
			got, f := s.Load(tt.addr, tt.size)
			if f != nil {
				t.Fatalf("Load: %v", f)
			}
			if got != tt.want {
				t.Fatalf("Load = %#x, want %#x", got, tt.want)
			}
		})
	}
}

func TestLoadIsLittleEndian(t *testing.T) {
	s := newSpace(t)
	if f := s.WriteBytes(0x100, []byte{0x01, 0x02, 0x03, 0x04}); f != nil {
		t.Fatalf("WriteBytes: %v", f)
	}
	got, f := s.Load(0x100, 4)
	if f != nil {
		t.Fatalf("Load: %v", f)
	}
	if want := uint64(0x04030201); got != want {
		t.Fatalf("Load = %#x, want %#x", got, want)
	}
}

func TestUntouchedMemoryReadsZero(t *testing.T) {
	s := newSpace(t)
	got, f := s.Load(0x7FFF_0000, 8)
	if f != nil {
		t.Fatalf("Load: %v", f)
	}
	if got != 0 {
		t.Fatalf("Load of untouched memory = %#x, want 0", got)
	}
}

func TestOutOfSpanAccessesFault(t *testing.T) {
	s := newSpace(t)
	tests := []struct {
		name string
		addr uint64
		size int64
	}{
		{name: "just past span", addr: SpanSize, size: 1},
		{name: "straddles span end", addr: SpanSize - 4, size: 8},
		{name: "tagged pointer dereference", addr: (uint64(3) << 47) | 0x1000, size: 8},
		{name: "high canonical but unmapped", addr: uint64(1) << 46, size: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, f := s.Load(tt.addr, tt.size); f == nil {
				t.Errorf("Load(%#x) did not fault", tt.addr)
			}
			if f := s.Store(tt.addr, tt.size, 1); f == nil {
				t.Errorf("Store(%#x) did not fault", tt.addr)
			}
			if _, f := s.ReadBytes(tt.addr, tt.size); f == nil {
				t.Errorf("ReadBytes(%#x) did not fault", tt.addr)
			}
			if f := s.WriteBytes(tt.addr, make([]byte, tt.size)); f == nil {
				t.Errorf("WriteBytes(%#x) did not fault", tt.addr)
			}
			if f := s.Set(tt.addr, 0xFF, tt.size); f == nil {
				t.Errorf("Set(%#x) did not fault", tt.addr)
			}
		})
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Addr: 0xABC, Size: 8, Wr: true}
	if got := f.Error(); got == "" {
		t.Fatal("Fault.Error() returned empty string")
	}
	r := &Fault{Addr: 0xABC, Size: 8}
	if f.Error() == r.Error() {
		t.Fatal("read and write faults render identically")
	}
}

func TestCanonical(t *testing.T) {
	s := newSpace(t)
	if !s.Canonical(0x7FFF_FFFF_FFFF) {
		t.Error("47-bit address should be canonical")
	}
	if s.Canonical(uint64(1) << 47) {
		t.Error("bit 47 set should be non-canonical under 47-bit width")
	}
	s48, err := NewSpace(48)
	if err != nil {
		t.Fatalf("NewSpace(48): %v", err)
	}
	if !s48.Canonical(uint64(1) << 47) {
		t.Error("bit 47 set should be canonical under 48-bit width")
	}
}

func TestReadWriteBytes(t *testing.T) {
	s := newSpace(t)
	payload := make([]byte, 3*ChunkSize+17) // force multiple chunk crossings
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	const base = ChunkSize - 9
	if f := s.WriteBytes(base, payload); f != nil {
		t.Fatalf("WriteBytes: %v", f)
	}
	got, f := s.ReadBytes(base, int64(len(payload)))
	if f != nil {
		t.Fatalf("ReadBytes: %v", f)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("ReadBytes payload mismatch after WriteBytes")
	}
}

func TestCopyOverlapping(t *testing.T) {
	s := newSpace(t)
	src := []byte("abcdefghij")
	if f := s.WriteBytes(0x100, src); f != nil {
		t.Fatalf("WriteBytes: %v", f)
	}
	// Overlapping forward copy, memmove semantics.
	if f := s.Copy(0x104, 0x100, 10); f != nil {
		t.Fatalf("Copy: %v", f)
	}
	got, f := s.ReadBytes(0x100, 14)
	if f != nil {
		t.Fatalf("ReadBytes: %v", f)
	}
	if want := "abcdabcdefghij"; string(got) != want {
		t.Fatalf("overlapping copy = %q, want %q", got, want)
	}
}

func TestSetFill(t *testing.T) {
	s := newSpace(t)
	const base = 2*ChunkSize - 100
	const n = 300 // straddles a chunk boundary
	if f := s.Set(base, 0x5A, n); f != nil {
		t.Fatalf("Set: %v", f)
	}
	got, f := s.ReadBytes(base, n)
	if f != nil {
		t.Fatalf("ReadBytes: %v", f)
	}
	for i, b := range got {
		if b != 0x5A {
			t.Fatalf("byte %d = %#x, want 0x5A", i, b)
		}
	}
	// Bytes just outside the fill must be untouched.
	before, _ := s.Load(base-1, 1)
	after, _ := s.Load(base+n, 1)
	if before != 0 || after != 0 {
		t.Fatalf("Set leaked outside range: before=%#x after=%#x", before, after)
	}
}

func TestTouchedBytesTracksChunks(t *testing.T) {
	s := newSpace(t)
	if got := s.TouchedBytes(); got != 0 {
		t.Fatalf("fresh space TouchedBytes = %d, want 0", got)
	}
	s.Store(0, 1, 1)
	if got := s.TouchedBytes(); got != ChunkSize {
		t.Fatalf("TouchedBytes = %d, want %d", got, ChunkSize)
	}
	s.Store(10, 8, 1) // same chunk
	if got := s.TouchedBytes(); got != ChunkSize {
		t.Fatalf("TouchedBytes after same-chunk store = %d, want %d", got, ChunkSize)
	}
	s.Store(5*ChunkSize, 1, 1)
	if got := s.TouchedBytes(); got != 2*ChunkSize {
		t.Fatalf("TouchedBytes = %d, want %d", got, 2*ChunkSize)
	}
	// Loads also materialize (demand paging of zero pages).
	s.Load(9*ChunkSize, 8)
	if got := s.TouchedBytes(); got != 3*ChunkSize {
		t.Fatalf("TouchedBytes after load = %d, want %d", got, 3*ChunkSize)
	}
}

func TestConcurrentMaterialization(t *testing.T) {
	s := newSpace(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * 4 * ChunkSize
			for i := 0; i < 1000; i++ {
				addr := base + uint64(i%4)*ChunkSize + uint64((i/4)*8)%(ChunkSize-8)
				if f := s.Store(addr, 8, uint64(w)); f != nil {
					t.Errorf("worker %d Store: %v", w, f)
					return
				}
				if _, f := s.Load(addr, 8); f != nil {
					t.Errorf("worker %d Load: %v", w, f)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := s.TouchedBytes(), int64(workers*4*ChunkSize); got != want {
		t.Fatalf("TouchedBytes = %d, want %d", got, want)
	}
}

// TestLoadStoreProperty checks that for arbitrary (addr, size, value) the
// store/load pair round-trips the value modulo truncation to size bytes.
func TestLoadStoreProperty(t *testing.T) {
	s := newSpace(t)
	sizes := []int64{1, 2, 4, 8}
	prop := func(addrSeed uint32, sizeIdx uint8, val uint64) bool {
		addr := uint64(addrSeed) % (SpanSize - 8)
		size := sizes[int(sizeIdx)%len(sizes)]
		if f := s.Store(addr, size, val); f != nil {
			return false
		}
		got, f := s.Load(addr, size)
		if f != nil {
			return false
		}
		want := val
		if size < 8 {
			want = val & ((uint64(1) << (8 * uint(size))) - 1)
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCopyMatchesGoCopy cross-checks Space.Copy against Go's copy on a
// reference buffer for arbitrary overlapping ranges.
func TestCopyMatchesGoCopy(t *testing.T) {
	prop := func(dstOff, srcOff uint16, n uint8, seed uint64) bool {
		s, err := NewSpace(47)
		if err != nil {
			return false
		}
		const base = 0x1000
		ref := make([]byte, 1<<17)
		rnd := seed
		for i := range ref {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			ref[i] = byte(rnd >> 56)
		}
		if f := s.WriteBytes(base, ref); f != nil {
			return false
		}
		d, sr, ln := int(dstOff), int(srcOff), int(n)
		if f := s.Copy(base+uint64(d), base+uint64(sr), int64(ln)); f != nil {
			return false
		}
		tmp := make([]byte, ln)
		copy(tmp, ref[sr:sr+ln])
		copy(ref[d:d+ln], tmp)
		got, f := s.ReadBytes(base, int64(len(ref)))
		if f != nil {
			return false
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLoad8(b *testing.B) {
	s, _ := NewSpace(47)
	s.Store(0x1000, 8, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, f := s.Load(0x1000, 8); f != nil {
			b.Fatal(f)
		}
	}
}

func BenchmarkStore8(b *testing.B) {
	s, _ := NewSpace(47)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := s.Store(0x1000, 8, uint64(i)); f != nil {
			b.Fatal(f)
		}
	}
}

func TestSpaceReset(t *testing.T) {
	s := newSpace(t)
	addrs := []uint64{0, ChunkSize - 1, ChunkSize, 5 * ChunkSize, SpanSize - 8}
	for _, a := range addrs {
		if f := s.Store(a, 1, 0xAB); f != nil {
			t.Fatalf("store at %#x: %v", a, f)
		}
	}
	if s.TouchedBytes() == 0 {
		t.Fatal("no pages touched before reset")
	}
	s.Reset()
	if got := s.TouchedBytes(); got != 0 {
		t.Errorf("TouchedBytes after Reset = %d, want 0", got)
	}
	for _, a := range addrs {
		v, f := s.Load(a, 1)
		if f != nil {
			t.Fatalf("load at %#x after reset: %v", a, f)
		}
		if v != 0 {
			t.Errorf("byte at %#x after Reset = %#x, want 0 (stale data leaked)", a, v)
		}
	}
	// A reset space must behave like a fresh one: touching the same pages
	// again yields the same footprint.
	for _, a := range addrs {
		if f := s.Store(a, 1, 0xCD); f != nil {
			t.Fatalf("store at %#x after reset: %v", a, f)
		}
	}
	fresh := newSpace(t)
	for _, a := range addrs {
		if f := fresh.Store(a, 1, 0xCD); f != nil {
			t.Fatalf("store at %#x on fresh space: %v", a, f)
		}
	}
	if s.TouchedBytes() != fresh.TouchedBytes() {
		t.Errorf("TouchedBytes after reuse = %d, fresh = %d", s.TouchedBytes(), fresh.TouchedBytes())
	}
}
