package hwasan

import (
	"testing"

	"cecsan/internal/alloc"
	"cecsan/internal/mem"
	"cecsan/internal/rt"
)

func newRuntime(t *testing.T) *Runtime {
	t.Helper()
	r := New(7)
	space, err := mem.NewSpace(47)
	if err != nil {
		t.Fatal(err)
	}
	env := rt.Env{Space: space, Heap: alloc.NewHeap(), Globals: alloc.NewGlobals()}
	if err := r.Attach(&env); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTagCodec(t *testing.T) {
	p := withTag(0x12345678, 0xAB)
	if tagOf(p) != 0xAB {
		t.Fatalf("tagOf = %#x", tagOf(p))
	}
	if strip(p) != 0x12345678 {
		t.Fatalf("strip = %#x", strip(p))
	}
}

func TestMallocTagsPointerAndMemory(t *testing.T) {
	r := newRuntime(t)
	p, _, err := r.Malloc(48)
	if err != nil {
		t.Fatal(err)
	}
	if tagOf(p) == 0 {
		t.Fatal("malloc returned untagged pointer")
	}
	// In-bounds accesses pass; granule-crossing overflow fails.
	if v := r.Check(p, rt.PtrMeta{}, 0, 48, rt.Write); v != nil {
		t.Fatalf("in-bounds: %v", v)
	}
	if v := r.Check(p, rt.PtrMeta{}, 48, 1, rt.Write); v == nil {
		t.Fatal("cross-granule overflow not detected (48 is granule-aligned)")
	}
}

func TestIntraGranuleBlindSpot(t *testing.T) {
	r := newRuntime(t)
	p, _, err := r.Malloc(13) // rounded to one 16-byte granule
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Check(p, rt.PtrMeta{}, 13, 1, rt.Write); v != nil {
		t.Fatalf("intra-granule overflow unexpectedly detected: %v (the design gap)", v)
	}
	if v := r.Check(p, rt.PtrMeta{}, 16, 1, rt.Write); v == nil {
		t.Fatal("next-granule overflow not detected")
	}
}

func TestFreeRetagsSoUAFIsCaught(t *testing.T) {
	r := newRuntime(t)
	p, _, _ := r.Malloc(32)
	if v := r.Free(p, rt.PtrMeta{}); v != nil {
		t.Fatalf("legal free: %v", v)
	}
	if v := r.Check(p, rt.PtrMeta{}, 0, 8, rt.Read); v == nil {
		t.Fatal("use-after-free not detected after retag")
	}
	// Double free: pointer tag no longer matches the retagged memory.
	if v := r.Free(p, rt.PtrMeta{}); v == nil {
		t.Fatal("double free not detected")
	}
}

func TestInteriorFreePassesSilently(t *testing.T) {
	r := newRuntime(t)
	p, _, _ := r.Malloc(64)
	// Interior pointer: same tag as the chunk -> the tag-only free check
	// passes and the allocator silently ignores it (CWE761 = 0%).
	if v := r.Free(p+16, rt.PtrMeta{}); v != nil {
		t.Fatalf("interior free reported by HWASan: %v (should be its blind spot)", v)
	}
	// The object must still be intact and usable.
	if v := r.Check(p, rt.PtrMeta{}, 0, 64, rt.Write); v != nil {
		t.Fatalf("object damaged by interior free: %v", v)
	}
}

func TestUntaggedPointersUnchecked(t *testing.T) {
	r := newRuntime(t)
	if v := r.Check(alloc.HeapBase+0x999, rt.PtrMeta{}, 1<<20, 8, rt.Write); v != nil {
		t.Fatalf("untagged pointer checked: %v", v)
	}
}

func TestStackTaggingAndUARGap(t *testing.T) {
	r := newRuntime(t)
	p, _ := r.StackAlloc(alloc.StackBase+0x100, 32, true)
	if tagOf(p) == 0 {
		t.Fatal("tracked stack object untagged")
	}
	if v := r.Check(p, rt.PtrMeta{}, 32, 1, rt.Write); v == nil {
		t.Fatal("stack overflow not detected")
	}
	// Frames are NOT retagged on release: use-after-return passes.
	r.StackRelease(p, 32)
	if v := r.Check(p, rt.PtrMeta{}, 0, 8, rt.Read); v != nil {
		t.Fatalf("use-after-return unexpectedly detected: %v (design gap)", v)
	}
}

func TestDeterministicTagStream(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.nextTag() != b.nextTag() {
			t.Fatal("tag streams diverged for equal seeds")
		}
	}
	if New(1).nextTag() == New(2).nextTag() && New(1).nextTag() == New(2).nextTag() {
		t.Log("different seeds produced an equal prefix (possible but unlikely)")
	}
}

func TestWideInterceptorGap(t *testing.T) {
	r := newRuntime(t)
	p, _, _ := r.Malloc(16)
	if v := r.LibcCheck("wcsncpy", p, rt.PtrMeta{}, 64, rt.Write); v != nil {
		t.Fatalf("wide function checked: %v (gap expected)", v)
	}
	if v := r.LibcCheck("memcpy", p, rt.PtrMeta{}, 64, rt.Write); v == nil {
		t.Fatal("memcpy interceptor missing")
	}
}

func TestOverheadIsTagShadowOnly(t *testing.T) {
	r := newRuntime(t)
	before := r.OverheadBytes()
	for i := 0; i < 100; i++ {
		r.Malloc(1 << 12)
	}
	after := r.OverheadBytes()
	if after <= before {
		t.Fatal("tag shadow not accounted")
	}
	// 1/16 shadow of ~400KB data, chunk-granular: well under 1 MiB.
	if after > 1<<20 {
		t.Fatalf("overhead %d too large for tag shadow", after)
	}
}
