// Subobject reproduces the paper's Figure 3 end to end: a memcpy whose
// size is sizeof(struct) instead of sizeof(field) silently corrupts the
// adjacent function pointer under every comparator, while CECSan's
// narrowed sub-object bounds (§II.D) report it.
package main

import (
	"fmt"
	"os"

	"cecsan"
	"cecsan/prog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "subobject:", err)
		os.Exit(1)
	}
}

func run() error {
	// typedef struct {
	//     char charFirst[16];
	//     void *voidSecond;     // imagine a function pointer here
	// } charVoid;
	charVoid := prog.StructOf("charVoid",
		prog.FieldSpec{Name: "charFirst", Type: prog.ArrayOf(prog.Char(), 16)},
		prog.FieldSpec{Name: "voidSecond", Type: prog.VoidPtr()},
	)
	fmt.Printf("struct %s: size=%d, field charFirst=%d bytes, field voidSecond at offset %d\n",
		charVoid.Name(), charVoid.Size(), 16, 16)

	build := func(copyLen int64) (*prog.Program, error) {
		pb := prog.NewProgram()
		pb.GlobalBytes("SRC_STRING", []byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"))
		f := pb.Function("main", 0)
		obj := f.MallocType(charVoid)
		// structCharVoid->voidSecond = a "function pointer" we must protect.
		f.Store(f.FieldPtr(obj, charVoid, "voidSecond"), 0, f.Const(0x401000), prog.VoidPtr())
		// memcpy(structCharVoid->charFirst, SRC_STRING, copyLen);
		f.Libc("memcpy", f.FieldPtr(obj, charVoid, "charFirst"), f.GlobalAddr("SRC_STRING"), f.Const(copyLen))
		fp := f.Load(obj, 16, prog.VoidPtr())
		f.Libc("print_int", fp) // "call" through the pointer
		f.Free(obj)
		f.RetVoid()
		return pb.Build()
	}

	for _, scenario := range []struct {
		label   string
		copyLen int64
	}{
		{"GOOD: memcpy(field, src, sizeof(field))  = 16", 16},
		{"BAD:  memcpy(field, src, sizeof(struct)) = 24", 24},
	} {
		fmt.Printf("\n--- %s ---\n", scenario.label)
		p, err := build(scenario.copyLen)
		if err != nil {
			return err
		}
		for _, name := range []string{cecsan.CECSan, cecsan.ASan, cecsan.HWASan, cecsan.PACMem, cecsan.SoftBound} {
			m, err := cecsan.NewMachine(p, cecsan.Config{Sanitizer: name})
			if err != nil {
				return err
			}
			res := m.Run()
			if res.Violation != nil {
				fmt.Printf("%-16s DETECTED %s\n", name, res.Violation.Kind)
				continue
			}
			out := m.Output()
			corrupted := len(out) > 0 && out[0] != fmt.Sprintf("%d", 0x401000)
			if corrupted {
				fmt.Printf("%-16s MISSED — function pointer silently corrupted to %s\n", name, out[0])
			} else {
				fmt.Printf("%-16s clean\n", name)
			}
		}
	}
	return nil
}
