package traffic

import (
	"fmt"
	"strings"

	"cecsan/csrc"
	"cecsan/internal/fuzz"
	"cecsan/prog"
)

// Variant is one compiled request-program variant a client class draws
// from. A class with N variants models a service replaying a bounded
// family of handlers: the instrumentation cache converges to run-path
// hits while requests still differ in shape.
type Variant struct {
	// Seed is the generator seed this variant was rendered from.
	Seed uint64
	// Source is the csrc source text (part of the determinism contract:
	// stream digests hash the compiled program's fingerprint).
	Source string
	// Inputs are the recv payloads the program consumes, if any.
	Inputs [][]byte
	// Program is the compiled program.
	Program *prog.Program
}

// buildVariant renders and compiles one variant of the given kind. All
// kinds are deterministic in seed.
func buildVariant(kind string, seed uint64) (*Variant, error) {
	v := &Variant{Seed: seed}
	switch kind {
	case KindFuzz:
		c := fuzz.Generate(seed)
		v.Source = c.Source
		v.Inputs = c.Inputs
	case KindSpatial:
		v.Source = genSpatial(newRNG(seed), seed)
	case KindChurn:
		v.Source = genChurn(newRNG(seed), seed)
	case KindMixed:
		r := newRNG(seed)
		v.Source = genMixed(r, seed)
	default:
		return nil, fmt.Errorf("traffic: unknown program kind %q", kind)
	}
	p, err := csrc.Compile(v.Source)
	if err != nil {
		return nil, fmt.Errorf("traffic: %s variant seed=%d: %w", kind, seed, err)
	}
	v.Program = p
	return v, nil
}

// genSpatial renders a short, spatial-check-heavy program: stack and
// global buffers filled and summed in tight loops, plus libc copies. The
// "interactive" request shape — lots of bounds checks, no allocator
// churn, quick to finish.
func genSpatial(r *rng, seed uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// traffic spatial seed=%d\n", seed)
	gN := 16 + r.intn(49) // 16..64
	fmt.Fprintf(&b, "global char G0[%d];\n", gN)
	b.WriteString("func main() {\n")
	sN := 16 + r.intn(49)
	fmt.Fprintf(&b, "    var b0 = local char[%d];\n", sN)
	fmt.Fprintf(&b, "    memset(b0, %d, %d);\n", 1+r.intn(40), sN)
	cp := sN
	if gN < cp {
		cp = gN
	}
	fmt.Fprintf(&b, "    memcpy(b0, G0, %d);\n", 1+r.intn(cp))
	b.WriteString("    var s0 = 0;\n")
	fmt.Fprintf(&b, "    for (i0 = 0; i0 < %d; i0 += 1) { s0 = s0 + b0[i0]; }\n", sN)
	fmt.Fprintf(&b, "    for (i1 = 0; i1 < %d; i1 += 1) { G0[i1] = %d; }\n", gN, r.intn(100))
	fmt.Fprintf(&b, "    for (i2 = 0; i2 < %d; i2 += 1) { s0 = s0 + G0[i2]; }\n", gN)
	wN := 4 + r.intn(13) // 4..16
	fmt.Fprintf(&b, "    var w0 = local int[%d];\n", wN)
	fmt.Fprintf(&b, "    for (i3 = 0; i3 < %d; i3 += 1) { w0[i3] = %d; }\n", wN, r.intn(100))
	fmt.Fprintf(&b, "    for (i4 = 0; i4 < %d; i4 += 1) { s0 = s0 + w0[i4]; }\n", wN)
	b.WriteString("    print_int(s0);\n")
	b.WriteString("    return 0;\n}\n")
	return b.String()
}

// genChurn renders an alloc-churn / temporal program: a held allocation
// outliving a malloc/touch/free loop, exercising allocator metadata,
// quarantine and tag-reuse paths. The "batch" request shape.
func genChurn(r *rng, seed uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// traffic churn seed=%d\n", seed)
	b.WriteString("func main() {\n")
	hold := 16 + 8*r.intn(7) // 16..64, 8-aligned
	fmt.Fprintf(&b, "    var h0 = malloc(%d);\n", hold)
	fmt.Fprintf(&b, "    memset(h0, %d, %d);\n", 1+r.intn(40), hold)
	b.WriteString("    var s0 = 0;\n")
	rounds := 6 + r.intn(11) // 6..16
	sz := 8 + 8*r.intn(6)    // 8..48
	fmt.Fprintf(&b,
		"    for (i0 = 0; i0 < %d; i0 += 1) { var p0 = malloc(%d); memset(p0, %d, %d); s0 = s0 + p0[%d]; free(p0); }\n",
		rounds, sz, 1+r.intn(40), sz, r.intn(sz))
	sz2 := 8 + 8*r.intn(6)
	fmt.Fprintf(&b,
		"    for (i1 = 0; i1 < %d; i1 += 1) { var p1 = malloc(%d); p1[%d] = %d; s0 = s0 + p1[0]; free(p1); }\n",
		3+r.intn(8), sz2, r.intn(sz2), r.intn(100))
	fmt.Fprintf(&b, "    s0 = s0 + h0[%d];\n", r.intn(hold))
	b.WriteString("    free(h0);\n")
	b.WriteString("    print_int(s0);\n")
	b.WriteString("    return 0;\n}\n")
	return b.String()
}

// genMixed renders a program with both shapes: a spatial prologue over a
// stack buffer followed by a churn loop against a held heap allocation.
func genMixed(r *rng, seed uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// traffic mixed seed=%d\n", seed)
	b.WriteString("func main() {\n")
	sN := 16 + r.intn(33)
	fmt.Fprintf(&b, "    var b0 = local char[%d];\n", sN)
	fmt.Fprintf(&b, "    memset(b0, %d, %d);\n", 1+r.intn(40), sN)
	b.WriteString("    var s0 = 0;\n")
	fmt.Fprintf(&b, "    for (i0 = 0; i0 < %d; i0 += 1) { s0 = s0 + b0[i0]; }\n", sN)
	hold := 16 + 8*r.intn(5)
	fmt.Fprintf(&b, "    var h0 = malloc(%d);\n", hold)
	fmt.Fprintf(&b, "    memset(h0, %d, %d);\n", 1+r.intn(40), hold)
	sz := 8 + 8*r.intn(5)
	fmt.Fprintf(&b,
		"    for (i1 = 0; i1 < %d; i1 += 1) { var p0 = malloc(%d); memset(p0, %d, %d); s0 = s0 + p0[%d]; free(p0); }\n",
		4+r.intn(9), sz, 1+r.intn(40), sz, r.intn(sz))
	fmt.Fprintf(&b, "    s0 = s0 + h0[%d];\n", r.intn(hold))
	b.WriteString("    free(h0);\n")
	b.WriteString("    print_int(s0);\n")
	b.WriteString("    return 0;\n}\n")
	return b.String()
}
