// Package engine is the unified execution engine: one object that owns the
// whole compile → instrument → execute pipeline for a chosen sanitizer.
//
// Every consumer in the repository — the public cecsan API, the Juliet and
// CVE harnesses, the performance suites and the cmd/ tools — goes through an
// Engine instead of wiring instrument.Apply and interp.New together by hand.
// Centralizing the pipeline buys three things:
//
//   - An instrumentation cache. Instrumentation is deterministic in
//     (program, profile), and the interpreter never mutates instructions, so
//     one instrumented program is shared by any number of concurrent
//     machines. The cache is content-addressed by (profile, Fingerprint),
//     sharded by fingerprint prefix with single-flight instrumentation (see
//     Cache), and campaign-global: Options.Cache lets every engine in a
//     multi-tool campaign share one bounded cache, and Preinstrument warms
//     it for known case families so the run path never compiles inline.
//
//   - Pooled execution resources. Address spaces, heaps and globals layouts
//     are recycled through a sync.Pool via interp.Resources.Reset, which is
//     byte-identical to fresh construction (same addresses, zeroed pages,
//     RSS gauge restarted) — detection results and stats cannot change, only
//     allocation pressure drops. Perf measurement opts out with
//     Options.FreshRuntime, preserving its fresh-process-per-rep semantics.
//
//   - A scheduler. ForEach fans work items across a bounded worker pool and
//     the engine aggregates run counters (cache hits, instrument vs execute
//     time split, cases/sec) into Stats.
//
// Sanitizer runtimes are per-process state (metadata tables, shadow,
// quarantine) and are never shared between live machines. Runtimes that
// implement rt.Resettable — the CECSan family, ASan's shadow, SoftBound's
// metadata maps, and HWASan (whose reset rewinds the tag RNG to the
// constructor seed, so the recycled tag stream is byte-identical to a fresh
// runtime's) — are recycled through a pool after an explicit reset back to
// post-constructor state; all others are built fresh for every machine.
// FreshRuntime mode disables both pools.
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cecsan/internal/core"
	"cecsan/internal/faultinject"
	"cecsan/internal/instrument"
	"cecsan/internal/interp"
	"cecsan/internal/obs"
	"cecsan/internal/rt"
	"cecsan/internal/sanitizers"
	"cecsan/prog"
)

// Options configures an Engine. The zero value is usable: default worker
// count, default interpreter limits, pooled resources.
type Options struct {
	// CECSan overrides CECSan's own options (ablations, temporal-hardening
	// knobs). Only consulted when the engine's tool is CECSan or
	// CECSan-hardened.
	CECSan *core.Options
	// Workers bounds ForEach concurrency; <= 0 selects GOMAXPROCS.
	Workers int
	// MaxInstructions bounds each run's executed instructions — the per-case
	// step budget (0 = interpreter default). Exhaustion is classified as a
	// FaultOutcome of class FaultStepBudget.
	MaxInstructions int64
	// MaxCallDepth bounds each run's program recursion (0 = interpreter
	// default).
	MaxCallDepth int
	// WallBudget bounds each run's wall-clock time via a cancellable
	// watchdog; 0 disables the watchdog. Exceeding it interrupts the machine
	// at the next loop backedge or call and classifies the run as
	// FaultWallBudget.
	WallBudget time.Duration
	// HeapBudget bounds each run's live simulated heap in bytes; 0 = no
	// bound. Exceeding it is classified as FaultHeapBudget.
	HeapBudget int64
	// Seed seeds each machine's program-visible rand() stream (0 = 1).
	Seed uint64
	// FaultSeed enables deterministic fault injection: each case's fault
	// plan derives from (FaultSeed, program fingerprint), so campaigns are
	// byte-reproducible whatever the worker count. 0 disables injection.
	FaultSeed uint64
	// FaultPlanFor, when set, overrides FaultSeed with an explicit per-case
	// plan lookup (tests target individual programs this way).
	FaultPlanFor func(prog.Fingerprint) faultinject.Plan
	// RuntimeSeed seeds RNG-bearing sanitizer runtimes (HWASan's tag RNG)
	// so differential runs are reproducible; 0 keeps each runtime's stock
	// stream.
	RuntimeSeed uint64
	// FreshRuntime disables resource pooling: every machine gets a fresh
	// address space, heap and globals layout, like a new OS process. The
	// perf harness uses this so each rep pays the same page-fault profile
	// the paper's fresh-process measurements pay.
	FreshRuntime bool
	// Progress, when set, is called from ForEach with (done, total) every
	// ProgressEvery completions and once at the end.
	Progress func(done, total int)
	// ProgressEvery is the progress callback stride (<= 0 = 100).
	ProgressEvery int
	// Obs, when set, attaches the observability layer: engine counters are
	// mirrored as registry gauges, pipeline phases (instrument/execute/reset)
	// are recorded as tracer spans when Obs.Tracer is set, and executed
	// checks are attributed to their static sites when Obs.Sites is set.
	// Observability only reads execution state — results are identical with
	// or without it.
	Obs *obs.Observer
	// Cache, when set, is the campaign-global instrumentation cache this
	// engine shares with others (typically one Cache across all tools of a
	// Table II campaign). Nil gives the engine a private cache of
	// DefaultCacheCapacity — the pre-campaign-cache behaviour.
	Cache *Cache
	// DisableFusion turns off the check+access superinstruction fusion pass
	// for this engine's instrumented programs (equivalence testing; fused
	// and unfused execution are semantically identical).
	DisableFusion bool
}

// Engine runs programs under one sanitizer with cached instrumentation and
// pooled execution resources. It is safe for concurrent use.
type Engine struct {
	tool       sanitizers.Name
	opts       Options
	profile    rt.Profile
	interpOpts interp.Options

	cache *Cache
	pid   uint32 // the engine's profile id within the cache

	pool    sync.Pool // *interp.Resources, Reset between uses
	sanPool sync.Pool // rt.Sanitizer bundles whose runtime is rt.Resettable

	runs           atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cachePrefills  atomic.Int64
	cacheOverflows atomic.Int64
	cacheBypasses  atomic.Int64
	instrumentNS   atomic.Int64
	executeNS      atomic.Int64

	// wallMu guards the wall-clock span over all Run calls. A mutex (not a
	// pair of atomics) so Stats() snapshots first-start and last-end
	// consistently relative to in-flight runs.
	wallMu     sync.Mutex
	firstStart time.Time
	lastEnd    time.Time

	faults              atomic.Int64
	faultsDeterministic atomic.Int64
	faultsPoolSuspect   atomic.Int64
	faultRetries        atomic.Int64
	degradedAllocs      atomic.Int64
	injectedFaults      atomic.Int64

	generationWraps     atomic.Int64
	indexSpills         atomic.Int64
	quarantineEvictions atomic.Int64
	quarantineFlushes   atomic.Int64

	// Observability instruments, resolved once in New when Options.Obs is
	// set; all nil otherwise so the hot path stays a pair of nil checks.
	runDurUS  *obs.Histogram // per-run execute wall time, microseconds
	runChecks *obs.Histogram // per-run executed check count
}

// New builds an engine for the named sanitizer. Only the instrumentation
// profile is resolved here; runtimes are constructed per machine.
func New(tool sanitizers.Name, opts Options) (*Engine, error) {
	var profile rt.Profile
	var err error
	if (tool == sanitizers.CECSan || tool == sanitizers.CECSanHardened) && opts.CECSan != nil {
		profile = core.ProfileFor(*opts.CECSan)
	} else {
		profile, err = sanitizers.ProfileFor(tool)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	iopts := interp.DefaultOptions()
	if opts.MaxInstructions > 0 {
		iopts.MaxInstructions = opts.MaxInstructions
	}
	if opts.MaxCallDepth > 0 {
		iopts.MaxCallDepth = opts.MaxCallDepth
	}
	if opts.HeapBudget > 0 {
		iopts.MaxHeapBytes = opts.HeapBudget
	}
	if opts.Seed != 0 {
		iopts.Seed = opts.Seed
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewCache(0)
	}
	e := &Engine{
		tool:       tool,
		opts:       opts,
		profile:    profile,
		interpOpts: iopts,
		cache:      cache,
		pid:        cache.profileID(profile, !opts.DisableFusion),
	}
	if o := opts.Obs; o != nil {
		if o.Sites != nil {
			e.interpOpts.CheckObserver = o.Sites.ForTool(string(tool))
		}
		e.initObs(o)
	}
	return e, nil
}

// initObs registers the engine's counters as registry series labelled by
// tool. Func gauges read the live atomics at snapshot time, so re-building
// an engine for the same tool simply re-points the series at the new engine
// (GaugeFunc replaces the callback).
func (e *Engine) initObs(o *obs.Observer) {
	r := o.Registry
	tl := obs.L("tool", string(e.tool))
	for _, g := range []struct {
		name string
		fn   func() float64
	}{
		{"engine_runs_total", func() float64 { return float64(e.runs.Load()) }},
		{"engine_cache_hits", func() float64 { return float64(e.cacheHits.Load()) }},
		{"engine_cache_misses", func() float64 { return float64(e.cacheMisses.Load()) }},
		{"engine_cache_prefills", func() float64 { return float64(e.cachePrefills.Load()) }},
		{"engine_cache_overflows", func() float64 { return float64(e.cacheOverflows.Load()) }},
		{"engine_cache_bypasses", func() float64 { return float64(e.cacheBypasses.Load()) }},
		{"engine_cache_hit_rate", func() float64 { return e.Stats().CacheHitRate() }},
		{"engine_cases_per_sec", func() float64 { return e.Stats().CasesPerSec() }},
		{"engine_execute_seconds", func() float64 { return time.Duration(e.executeNS.Load()).Seconds() }},
		{"engine_instrument_seconds", func() float64 { return time.Duration(e.instrumentNS.Load()).Seconds() }},
		{"engine_faults_total", func() float64 { return float64(e.faults.Load()) }},
		{"engine_faults_deterministic", func() float64 { return float64(e.faultsDeterministic.Load()) }},
		{"engine_faults_pool_suspect", func() float64 { return float64(e.faultsPoolSuspect.Load()) }},
		{"engine_fault_retries", func() float64 { return float64(e.faultRetries.Load()) }},
		{"engine_degraded_allocs", func() float64 { return float64(e.degradedAllocs.Load()) }},
		{"engine_injected_faults", func() float64 { return float64(e.injectedFaults.Load()) }},
		{"engine_generation_wraps", func() float64 { return float64(e.generationWraps.Load()) }},
		{"engine_index_spills", func() float64 { return float64(e.indexSpills.Load()) }},
		{"engine_quarantine_evictions", func() float64 { return float64(e.quarantineEvictions.Load()) }},
		{"engine_quarantine_flushes", func() float64 { return float64(e.quarantineFlushes.Load()) }},
	} {
		r.GaugeFunc(g.name, g.fn, tl)
	}
	e.runDurUS = r.Histogram("engine_run_duration_us", tl)
	e.runChecks = r.Histogram("engine_run_checks", tl)
}

// Tool returns the engine's sanitizer name.
func (e *Engine) Tool() sanitizers.Name { return e.tool }

// Profile returns the instrumentation profile the engine compiles with.
func (e *Engine) Profile() rt.Profile { return e.profile }

// newSanitizer constructs a fresh sanitizer bundle for one machine.
func (e *Engine) newSanitizer() (rt.Sanitizer, error) {
	if (e.tool == sanitizers.CECSan || e.tool == sanitizers.CECSanHardened) && e.opts.CECSan != nil {
		return core.Sanitizer(*e.opts.CECSan)
	}
	return sanitizers.NewSeeded(e.tool, e.opts.RuntimeSeed)
}

// Instrument returns the instrumented form of p under the engine's profile,
// from the (possibly campaign-shared) cache when a structurally identical
// program was seen before. Cache accounting is per request: every call
// counts exactly one hit or miss, whatever the sharding or concurrency, so
// Stats.CacheHitRate stays comparable across cache topologies.
func (e *Engine) Instrument(p *prog.Program) *prog.Program {
	return e.instrument(p, false)
}

// Preinstrument warms the instrumentation cache for the given programs (the
// known case families of a campaign — e.g. every bad and good variant)
// before the run loop, fanning out across the engine's worker count. Warm
// fills count as Stats.CachePrefills, not as run-path hits or misses: after
// a complete pass, the run loop serves every Instrument request from cache
// and its hit rate reflects that.
func (e *Engine) Preinstrument(progs []*prog.Program) {
	n := len(progs)
	if n == 0 {
		return
	}
	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				e.instrument(progs[i], true)
			}
		}()
	}
	wg.Wait()
}

// instrument is the shared cache path. prefill marks a warm fill from
// Preinstrument, which is accounted separately from run-path requests.
func (e *Engine) instrument(p *prog.Program, prefill bool) *prog.Program {
	fp := p.Fingerprint()
	ent, full := e.cache.lookup(e.pid, fp)
	if full {
		// Shard at capacity: degrade gracefully to uncached instrumentation.
		e.cacheOverflows.Add(1)
		if prefill {
			e.cachePrefills.Add(1)
		} else {
			e.cacheMisses.Add(1)
		}
		return e.apply(p)
	}
	miss := false
	ent.once.Do(func() {
		miss = true
		ent.p = e.apply(p)
	})
	switch {
	case prefill:
		e.cachePrefills.Add(1)
		if miss {
			e.cache.prefills.Add(1)
		}
	case miss:
		e.cacheMisses.Add(1)
	default:
		e.cacheHits.Add(1)
	}
	return ent.p
}

// apply runs the instrumentation pass, recording time and tracer spans.
func (e *Engine) apply(p *prog.Program) *prog.Program {
	start := time.Now()
	ip := instrument.Apply(p, e.profile)
	if !e.opts.DisableFusion {
		instrument.Fuse(ip)
	}
	dur := time.Since(start)
	e.instrumentNS.Add(dur.Nanoseconds())
	if t := e.tracer(); t != nil {
		lane := t.AcquireLane()
		t.Record("instrument "+string(e.tool), lane, start, dur)
		t.ReleaseLane(lane)
	}
	return ip
}

// acquire hands out a resource bundle: a pooled one (already Reset) when
// available, a fresh one otherwise. The second return reports which.
func (e *Engine) acquire() (*interp.Resources, bool, error) {
	if r, ok := e.pool.Get().(*interp.Resources); ok && r != nil {
		return r, true, nil
	}
	r, err := interp.NewResources(e.interpOpts.AddrBits)
	return r, false, err
}

// release resets a bundle and returns it to the pool.
func (e *Engine) release(r *interp.Resources) {
	r.Reset()
	e.pool.Put(r)
}

// acquireSanitizer hands out a sanitizer bundle: a recycled one when the
// pool has one, fresh otherwise (the second return reports which). Only
// bundles whose runtime implements rt.Resettable ever enter the pool, so a
// pooled bundle is already back in post-constructor state.
func (e *Engine) acquireSanitizer() (rt.Sanitizer, bool, error) {
	if s, ok := e.sanPool.Get().(rt.Sanitizer); ok {
		return s, true, nil
	}
	s, err := e.newSanitizer()
	return s, false, err
}

// releaseSanitizer recycles a bundle when its runtime can be restored to
// freshly-constructed state; otherwise the bundle is dropped for the GC.
func (e *Engine) releaseSanitizer(s rt.Sanitizer) {
	if r, ok := s.Runtime.(rt.Resettable); ok {
		r.ResetRuntime()
		e.sanPool.Put(s)
	}
}

// Machine is one prepared execution: an instrumented program bound to a
// fresh sanitizer runtime on (pooled or fresh) resources. A Machine is used
// by a single goroutine and Run at most once.
type Machine struct {
	eng      *Engine
	inner    *interp.Machine
	san      rt.Sanitizer
	res      *interp.Resources
	inj      *faultinject.Injector // nil outside fault mode
	fresh    bool                  // built for FreshRuntime/retry: never pooled
	recycled bool                  // runtime or resources came from a pool
	faulted  bool                  // a panic unwound through this machine
	released bool

	lane    int  // tracer lane held from Run until Release
	hasLane bool
}

// tracer returns the attached span recorder, nil when tracing is off.
func (e *Engine) tracer() *obs.Tracer {
	if e.opts.Obs == nil {
		return nil
	}
	return e.opts.Obs.Tracer
}

// planFor resolves the fault-injection plan for one program: the explicit
// per-case lookup when configured, the seeded schedule otherwise, and the
// empty plan when fault mode is off.
func (e *Engine) planFor(p *prog.Program) faultinject.Plan {
	if e.opts.FaultPlanFor != nil {
		return e.opts.FaultPlanFor(p.Fingerprint())
	}
	if e.opts.FaultSeed != 0 {
		fp := p.Fingerprint()
		return faultinject.Schedule(e.opts.FaultSeed, binary.LittleEndian.Uint64(fp[:8]))
	}
	return faultinject.Plan{}
}

// NewMachine instruments p (cached) and prepares a machine on a fresh
// sanitizer runtime. Call Release when done with it so pooled resources
// return to the pool; forgetting Release only costs pool misses.
func (e *Engine) NewMachine(p *prog.Program) (*Machine, error) {
	return e.newMachine(p, e.opts.FreshRuntime)
}

// machineConfig is the full construction policy for one machine. The zero
// value is the ordinary pooled path under the engine's own fault policy.
type machineConfig struct {
	// fresh builds on never-pooled runtime and resources (FreshRuntime mode
	// and the fault-retry path, which must rule out pool-state corruption).
	fresh bool
	// plan, when non-nil, overrides the engine's fault policy (FaultPlanFor /
	// FaultSeed) with an explicit per-run plan — the serving chaos mode's
	// per-request injection.
	plan *faultinject.Plan
	// bypassCache instruments inline without consulting the cache, modelling
	// a cache-fill failure.
	bypassCache bool
}

// newMachine builds a machine, on fresh (never-pooled) runtime and resources
// when fresh is set, on pooled ones otherwise. The fault-retry path forces
// fresh to rule out pool-state corruption.
func (e *Engine) newMachine(p *prog.Program, fresh bool) (*Machine, error) {
	return e.newMachineCfg(p, machineConfig{fresh: fresh})
}

// newMachineCfg builds a machine under an explicit construction policy.
func (e *Engine) newMachineCfg(p *prog.Program, mc machineConfig) (*Machine, error) {
	fresh := mc.fresh
	var ip *prog.Program
	if mc.bypassCache {
		e.cacheBypasses.Add(1)
		ip = e.apply(p)
	} else {
		ip = e.Instrument(p)
	}
	var (
		san      rt.Sanitizer
		res      *interp.Resources
		recycled bool
		err      error
	)
	if fresh {
		san, err = e.newSanitizer()
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		res, err = interp.NewResources(e.interpOpts.AddrBits)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	} else {
		var sanPooled, resPooled bool
		san, sanPooled, err = e.acquireSanitizer()
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		res, resPooled, err = e.acquire()
		if err != nil {
			e.releaseSanitizer(san)
			return nil, fmt.Errorf("engine: %w", err)
		}
		recycled = sanPooled || resPooled
	}
	m := &Machine{eng: e, san: san, res: res, fresh: fresh, recycled: recycled}
	plan := e.planFor(p)
	if mc.plan != nil {
		plan = *mc.plan
	}
	if !plan.Zero() {
		m.inj = faultinject.New(plan)
		if plan.MetatableCap > 0 {
			if c, ok := san.Runtime.(rt.MetaTableClamper); ok {
				c.ClampMetaTable(plan.MetatableCap)
			}
		}
		// The event hooks are armed in Run, not here: machine construction
		// (global init writes pages through the same space) is harness setup,
		// and injected faults target the program's own execution.
	}
	inner, err := interp.NewOn(res, ip, san, e.interpOpts)
	if err != nil {
		if !fresh {
			e.release(res) // Reset also clears the fault hooks
			e.releaseSanitizer(san)
		}
		return nil, fmt.Errorf("engine: %w", err)
	}
	m.inner = inner
	return m, nil
}

// Feed queues input payloads for the program's fgets/recv calls.
func (m *Machine) Feed(payloads ...[]byte) { m.inner.Feed(payloads...) }

// Run executes the program to completion or abort, recording execute time
// and run counts in the engine's stats. Panics from the interpreter or the
// sanitizer runtime are recovered, and budget exhaustions classified, into a
// structured FaultOutcome in the result's Err — one hostile case can neither
// kill the process nor poison the pools (a panicked machine's runtime and
// resources are dropped at Release instead of recycled).
func (m *Machine) Run() *interp.Result {
	e := m.eng
	if m.inj != nil {
		m.res.Heap.SetFaultHook(m.inj.OnMalloc)
		m.res.Space.SetFaultHook(m.inj.OnPageMap)
	}
	t := e.tracer()
	if t != nil {
		m.lane, m.hasLane = t.AcquireLane(), true
	}
	start := time.Now()
	e.noteStart(start)
	res := m.runGuarded()
	end := time.Now()
	dur := end.Sub(start)
	e.executeNS.Add(dur.Nanoseconds())
	e.noteEnd(end)
	e.runs.Add(1)
	if t != nil {
		t.Record("execute "+string(e.tool), m.lane, start, dur)
	}
	if e.runDurUS != nil {
		e.runDurUS.Observe(dur.Microseconds())
		e.runChecks.Observe(res.Stats.ChecksExecuted)
	}
	m.classifyFault(res)
	return res
}

// runGuarded executes the inner machine under the per-case sandbox: a
// cancellable wall-clock watchdog and a panic recovery that converts a
// main-thread panic into a PanicError result (parallel-region panics are
// already recovered inside the interpreter).
func (m *Machine) runGuarded() (res *interp.Result) {
	if wb := m.eng.opts.WallBudget; wb > 0 {
		watchdog := time.AfterFunc(wb, func() { m.inner.Interrupt(interp.ErrWallBudget) })
		defer watchdog.Stop()
	}
	defer func() {
		if v := recover(); v != nil {
			res = &interp.Result{Err: &interp.PanicError{
				Value: fmt.Sprint(v),
				Stack: string(debug.Stack()),
			}}
		}
	}()
	return m.inner.Run()
}

// classifyFault rewrites harness-level failure causes in res into a
// FaultOutcome, folds fault-injection and degradation counters into the
// result stats, and updates the engine's fault accounting.
func (m *Machine) classifyFault(res *interp.Result) {
	e := m.eng
	if m.inj != nil {
		res.Stats.InjectedFaults = m.inj.Triggered()
		e.injectedFaults.Add(res.Stats.InjectedFaults)
	}
	if res.Stats.DegradedAllocs > 0 {
		e.degradedAllocs.Add(res.Stats.DegradedAllocs)
	}
	if s := &res.Stats; s.GenerationWraps|s.IndexSpills|s.QuarantineEvictions|s.QuarantineFlushes != 0 {
		e.generationWraps.Add(s.GenerationWraps)
		e.indexSpills.Add(s.IndexSpills)
		e.quarantineEvictions.Add(s.QuarantineEvictions)
		e.quarantineFlushes.Add(s.QuarantineFlushes)
	}
	if res.Err == nil {
		return
	}
	var fo *FaultOutcome
	switch {
	case errors.Is(res.Err, interp.ErrInstructionBudget):
		// Step and heap budgets trigger on deterministic program state, so
		// no fresh-runtime retry is needed to attribute them.
		fo = &FaultOutcome{Class: FaultStepBudget, Deterministic: true, Err: res.Err}
	case errors.Is(res.Err, interp.ErrWallBudget):
		fo = &FaultOutcome{Class: FaultWallBudget, Err: res.Err}
	case errors.Is(res.Err, interp.ErrHeapBudget):
		fo = &FaultOutcome{Class: FaultHeapBudget, Deterministic: true, Err: res.Err}
	default:
		var pe *interp.PanicError
		if errors.As(res.Err, &pe) {
			m.faulted = true
			fo = &FaultOutcome{Class: FaultPanic, PanicValue: pe.Value, Stack: pe.Stack, Err: pe}
			if !m.recycled {
				// First occurrence was already on a never-pooled runtime:
				// pool corruption is ruled out without a retry.
				fo.Deterministic = true
			}
		}
	}
	if fo == nil {
		return
	}
	e.faults.Add(1)
	if fo.Deterministic {
		e.faultsDeterministic.Add(1)
	}
	res.Err = fo
}

// Output returns lines the program printed. Valid after Release.
func (m *Machine) Output() []string { return m.inner.Output() }

// Runtime returns the machine's sanitizer runtime for white-box inspection.
func (m *Machine) Runtime() rt.Runtime { return m.san.Runtime }

// Release recycles the machine's resources — and, for resettable runtimes,
// its sanitizer — into the engine pools. The machine must not Run, touch
// simulated memory, or inspect its Runtime afterwards; Output and the last
// Result remain valid. Release is idempotent and a no-op in FreshRuntime
// mode. Fault isolation: a machine through which a panic unwound may hold a
// runtime with a poisoned lock or half-updated metadata, so its runtime and
// resources are dropped for the GC instead of pooled.
func (m *Machine) Release() {
	if m.released || m.res == nil {
		return
	}
	m.released = true
	res := m.res
	m.res = nil
	t := m.eng.tracer()
	if m.hasLane {
		defer t.ReleaseLane(m.lane)
	}
	if m.fresh || m.faulted {
		return
	}
	if t != nil && m.hasLane {
		start := time.Now()
		m.eng.release(res) // Reset also clears any fault hooks
		t.Record("reset "+string(m.eng.tool), m.lane, start, time.Since(start))
	} else {
		m.eng.release(res)
	}
	m.eng.releaseSanitizer(m.san)
}

// Run is the one-shot convenience: instrument (cached), execute on pooled
// resources, release, return the result.
//
// When a run panics on a machine whose runtime or resources came from a
// pool, the fault is ambiguous: the case may be hostile, or an earlier case
// may have corrupted the pooled state. Run retries such a case exactly once
// on a fresh, never-pooled machine: a reproduced panic is classified
// deterministic (the case's own fault), a vanished one as pool-suspect.
// Either way the retry's result is returned, and both verdicts land in
// Stats. Budget faults skip the retry — their triggers cannot depend on pool
// state.
func (e *Engine) Run(p *prog.Program, inputs ...[]byte) (*interp.Result, error) {
	m, err := e.NewMachine(p)
	if err != nil {
		return nil, err
	}
	m.Feed(inputs...)
	res := m.Run()
	recycled := m.recycled
	m.Release()
	fo := AsFault(res.Err)
	if fo == nil || fo.Class != FaultPanic || !recycled {
		return res, nil
	}
	e.faultRetries.Add(1)
	fm, err := e.newMachine(p, true)
	if err != nil {
		return res, nil // cannot retry; keep the unattributed fault
	}
	fm.Feed(inputs...)
	res2 := fm.Run()
	fm.Release()
	if fo2 := AsFault(res2.Err); fo2 != nil {
		// classifyFault already marked a reproduced panic deterministic
		// (the retry machine is never recycled).
		fo2.Retried = true
		return res2, nil
	}
	// The fault vanished on a fresh runtime: the recycled state is suspect.
	e.faultsPoolSuspect.Add(1)
	return res2, nil
}

// PlannedRun configures one RunPlanned execution.
type PlannedRun struct {
	// Plan is the explicit fault-injection schedule armed on the machine.
	// The zero plan injects nothing but still overrides the engine's own
	// fault policy (FaultSeed / FaultPlanFor are not consulted).
	Plan faultinject.Plan
	// BypassCache makes instrumentation skip the cache entirely — the
	// cache-fill-failure chaos mode. The inline result is not cached.
	BypassCache bool
	// Trace, when set, receives instrument/run/reset sub-spans for this
	// execution — the request-lifecycle tracing of the serving layer. Nil
	// keeps the path branch-only.
	Trace *obs.RequestTrace
}

// RunPlanned executes p exactly once under an explicit per-run fault plan.
// Unlike Run it never auto-retries a panic on recycled state: callers that
// inject faults on purpose (the serving layer's chaos mode) own the retry
// policy themselves, and a retry under the same plan would just reproduce
// the injection. Panicked machines are still dropped from the pools.
func (e *Engine) RunPlanned(p *prog.Program, pr PlannedRun, inputs ...[]byte) (*interp.Result, error) {
	tr := pr.Trace
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	m, err := e.newMachineCfg(p, machineConfig{
		fresh:       e.opts.FreshRuntime,
		plan:        &pr.Plan,
		bypassCache: pr.BypassCache,
	})
	if tr != nil {
		// Machine construction is where instrumentation happens (cached or
		// fresh), so the span covers the whole lookup-or-instrument phase.
		tr.Span("instrument", t0, time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	m.Feed(inputs...)
	if tr != nil {
		t0 = time.Now()
	}
	res := m.Run()
	if tr != nil {
		tr.Span("run", t0, time.Since(t0))
		t0 = time.Now()
	}
	m.Release()
	if tr != nil {
		tr.Span("reset", t0, time.Since(t0))
	}
	return res, nil
}

// ForEach runs fn(0..n-1) across the engine's worker pool. All items run
// even when some fail; the error for the lowest-indexed failing item is
// returned, making error reporting deterministic under concurrency. The
// Progress callback, when configured, fires every ProgressEvery completions.
func (e *Engine) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	every := e.opts.ProgressEvery
	if every <= 0 {
		every = 100
	}
	var (
		next, done atomic.Int64
		wg         sync.WaitGroup
		errMu      sync.Mutex
		firstErr   error
		errIdx     = -1
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					errMu.Unlock()
				}
				if d := int(done.Add(1)); e.opts.Progress != nil && (d%every == 0 || d == n) {
					e.opts.Progress(d, n)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// noteStart records the wall-clock start of the engine's first run.
func (e *Engine) noteStart(t time.Time) {
	e.wallMu.Lock()
	if e.firstStart.IsZero() {
		e.firstStart = t
	}
	e.wallMu.Unlock()
}

// noteEnd advances the wall-clock end of the engine's latest run.
func (e *Engine) noteEnd(t time.Time) {
	e.wallMu.Lock()
	if t.After(e.lastEnd) {
		e.lastEnd = t
	}
	e.wallMu.Unlock()
}

// Stats is a snapshot of the engine's aggregate counters.
type Stats struct {
	// Runs is the number of completed machine runs.
	Runs int64
	// CacheHits and CacheMisses count run-path Instrument requests served
	// from / added to the instrumentation cache. Accounting is per request
	// — a request that waited on another worker's in-flight instrumentation
	// of the same fingerprint is a hit; the one that performed it is a miss
	// — so the rate is comparable whether the cache is private or shared,
	// sharded or not.
	CacheHits   int64
	CacheMisses int64
	// CachePrefills counts Preinstrument warm fills (not part of the hit
	// rate: they happen before the run loop by design).
	CachePrefills int64
	// CacheOverflows counts requests that found their cache shard at
	// capacity and instrumented inline without caching.
	CacheOverflows int64
	// CacheBypasses counts RunPlanned executions that skipped the cache on
	// purpose (injected cache-fill failures). Like prefills and overflows
	// they are kept out of the hit rate, which stays a run-path measure.
	CacheBypasses int64
	// InstrumentTime is total time spent instrumenting (cache misses only).
	InstrumentTime time.Duration
	// ExecuteTime is total machine-run time summed over runs (can exceed
	// Wall under concurrency).
	ExecuteTime time.Duration
	// Wall is the wall-clock span from the first run's start to the latest
	// run's end.
	Wall time.Duration
	// Faults counts runs that ended in a FaultOutcome (panic or budget),
	// including retry runs.
	Faults int64
	// FaultsDeterministic counts faults attributed to the case itself: budget
	// exhaustions and panics that occurred (or reproduced) on a never-pooled
	// runtime.
	FaultsDeterministic int64
	// FaultsPoolSuspect counts panics on recycled state that vanished on the
	// fresh-runtime retry — evidence of pool-state corruption.
	FaultsPoolSuspect int64
	// FaultRetries counts fresh-runtime retry runs triggered by panics on
	// recycled state.
	FaultRetries int64
	// DegradedAllocs counts allocations that lost metadata protection to
	// exhaustion across all runs (the CECSan entry-0 graceful degradation).
	DegradedAllocs int64
	// InjectedFaults counts fault-injection trigger firings across all runs;
	// 0 outside fault mode.
	InjectedFaults int64
	// Temporal-hardening degradation totals aggregated across all runs
	// (rt.TemporalStats); 0 for default profiles.
	GenerationWraps     int64
	IndexSpills         int64
	QuarantineEvictions int64
	QuarantineFlushes   int64
}

// CacheHitRate returns the fraction of Instrument requests served from
// cache, in [0,1]; 0 when nothing was instrumented.
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// CasesPerSec returns completed runs per wall-clock second.
func (s Stats) CasesPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Runs) / s.Wall.Seconds()
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Runs:                e.runs.Load(),
		CacheHits:           e.cacheHits.Load(),
		CacheMisses:         e.cacheMisses.Load(),
		CachePrefills:       e.cachePrefills.Load(),
		CacheOverflows:      e.cacheOverflows.Load(),
		CacheBypasses:       e.cacheBypasses.Load(),
		InstrumentTime:      time.Duration(e.instrumentNS.Load()),
		ExecuteTime:         time.Duration(e.executeNS.Load()),
		Faults:              e.faults.Load(),
		FaultsDeterministic: e.faultsDeterministic.Load(),
		FaultsPoolSuspect:   e.faultsPoolSuspect.Load(),
		FaultRetries:        e.faultRetries.Load(),
		DegradedAllocs:      e.degradedAllocs.Load(),
		InjectedFaults:      e.injectedFaults.Load(),
		GenerationWraps:     e.generationWraps.Load(),
		IndexSpills:         e.indexSpills.Load(),
		QuarantineEvictions: e.quarantineEvictions.Load(),
		QuarantineFlushes:   e.quarantineFlushes.Load(),
	}
	e.wallMu.Lock()
	start, end := e.firstStart, e.lastEnd
	e.wallMu.Unlock()
	if !start.IsZero() && end.After(start) {
		s.Wall = end.Sub(start)
	}
	return s
}
