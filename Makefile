GO ?= go

.PHONY: all build test race fuzz-smoke fuzz-smoke-hardened fault-smoke obs-smoke ci bench-smoke bench-gate serve-smoke bench-table2 bench-table4 clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/interp/... ./internal/engine/... ./internal/core/...

# Differential fuzzing smoke: a fixed-seed 200-case campaign across all
# eight sanitizer models. Exits non-zero on any oracle disagreement, so it
# doubles as the cross-sanitizer regression gate.
fuzz-smoke:
	$(GO) run ./cmd/fuzz -seed 7 -count 200

# Hardened-profile smoke: the same fixed-seed campaign with every
# CECSan-family tool swapped for its temporally hardened variant. The
# oracle flips the reuse-window shapes (uaf_quarantine_flush,
# uaf_realloc_reuse) from documented misses to mandatory detections, so
# this gate proves the mitigations close the window without introducing
# false positives.
fuzz-smoke-hardened:
	$(GO) run ./cmd/fuzz -seed 7 -count 200 -hardened

# Fault-injection smoke: the same fixed-seed campaign under deterministic
# resource-pressure injection (nth-malloc OOM, metadata-table clamps,
# page-map failures). Exit 1 = oracle disagreement, exit 2 = the harness
# itself faulted; both fail the gate.
fault-smoke:
	$(GO) run ./cmd/fuzz -seed 7 -count 200 -faults 3

# Observability smoke: a 50-case campaign with every obs flag on — metrics
# snapshot, trace export, check-site profiling, live endpoint on an
# ephemeral port. Exit 0 plus non-empty exports proves the layer stays off
# the report path while every facility records.
obs-smoke:
	$(GO) run ./cmd/fuzz -seed 7 -count 50 -metrics-json metrics-smoke.json \
		-trace trace-smoke.json -profile-checks -http 127.0.0.1:0
	test -s metrics-smoke.json
	test -s trace-smoke.json

# The full local CI gate: static checks, build, the race-enabled unit
# suites, the fuzz smokes (clean + hardened + fault-injected), and the
# observability smoke.
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke
	$(MAKE) fuzz-smoke-hardened
	$(MAKE) fault-smoke
	$(MAKE) obs-smoke

# Quick end-to-end benchmark pass: ~5% of the Table II suite, with the
# machine-readable record. Finishes in a few seconds; use it to sanity-check
# detection rates and the engine's cache/pooling behaviour after a change.
bench-smoke:
	$(GO) run ./cmd/julietbench -table 2 -scale 0.05 -progress 0 -json BENCH_table2.json \
		-metrics-json metrics-smoke.json
	$(GO) run ./cmd/temporalbench -json BENCH_temporal.json

# Performance-trend gate: regenerate the bench-smoke record into a scratch
# file and compare it against the committed BENCH_table2.json baseline.
# Throughput gates with a generous machine-variance tolerance; the
# instrumentation-cache hit rate is machine-independent and must not
# regress. Run before bench-smoke — bench-smoke overwrites the baseline.
bench-gate:
	$(GO) run ./cmd/julietbench -table 2 -scale 0.05 -progress 0 -json BENCH_fresh.json
	$(GO) run ./cmd/benchgate -baseline BENCH_table2.json -fresh BENCH_fresh.json
	$(GO) run ./cmd/serve -spec examples/workloads/interactive-batch.yaml \
		-max-requests 2000 -min-completed 1 -json BENCH_serve_fresh.json
	$(GO) run ./cmd/benchgate -serve-baseline BENCH_serve.json -serve-fresh BENCH_serve_fresh.json
	rm -f BENCH_fresh.json BENCH_serve_fresh.json

# Traffic-campaign smoke: a bounded closed-loop run of the shipped
# interactive/batch spec through cmd/serve. -min-completed 1 asserts every
# class made progress; the JSON record is the committed serve baseline and
# the CI artifact. Runs after bench-gate — it overwrites the baseline.
serve-smoke:
	$(GO) run ./cmd/serve -spec examples/workloads/interactive-batch.yaml \
		-max-requests 2000 -min-completed 1 -json BENCH_serve.json \
		-metrics-json metrics-serve-smoke.json
	test -s BENCH_serve.json
	test -s metrics-serve-smoke.json

# Full-scale table regenerations.
bench-table2:
	$(GO) run ./cmd/julietbench -table 2 -json BENCH_table2.json

bench-table4:
	$(GO) run ./cmd/specbench -suite 2006 -json BENCH_table4.json

clean:
	rm -f BENCH_fresh.json BENCH_serve_fresh.json metrics-smoke.json \
		metrics-serve-smoke.json trace-smoke.json
