package engine

import (
	"sync"
	"testing"

	"cecsan/internal/instrument"
	"cecsan/internal/interp"
	"cecsan/internal/juliet"
	"cecsan/internal/sanitizers"
	"cecsan/prog"
)

// sampleSuite generates a small Juliet sample spanning every CWE.
func sampleSuite(t *testing.T, perCWE int) []*juliet.Case {
	t.Helper()
	var suite []*juliet.Case
	for _, cwe := range juliet.AllCWEs() {
		cs, err := juliet.Generate(cwe, perCWE)
		if err != nil {
			t.Fatalf("Generate(%v): %v", cwe, err)
		}
		suite = append(suite, cs...)
	}
	return suite
}

// uncachedRun is the pre-engine pipeline: fresh sanitizer, fresh
// instrumentation, fresh machine. The property tests compare the engine's
// cached/pooled path against it.
func uncachedRun(t *testing.T, tool sanitizers.Name, p *prog.Program, inputs [][]byte) *interp.Result {
	t.Helper()
	san, err := sanitizers.New(tool)
	if err != nil {
		t.Fatalf("New(%s): %v", tool, err)
	}
	ip := instrument.Apply(p, san.Profile)
	m, err := interp.New(ip, san, interp.DefaultOptions())
	if err != nil {
		t.Fatalf("interp.New: %v", err)
	}
	for _, in := range inputs {
		m.Feed(in)
	}
	return m.Run()
}

// sameResult compares everything the harness can observe about a run.
func sameResult(a, b *interp.Result) bool {
	if (a.Violation == nil) != (b.Violation == nil) {
		return false
	}
	if a.Violation != nil && (a.Violation.Kind != b.Violation.Kind ||
		a.Violation.Func != b.Violation.Func || a.Violation.PC != b.Violation.PC) {
		return false
	}
	if (a.Fault == nil) != (b.Fault == nil) {
		return false
	}
	if a.Fault != nil && *a.Fault != *b.Fault {
		return false
	}
	if (a.Err == nil) != (b.Err == nil) {
		return false
	}
	return a.Ret == b.Ret && a.Stats == b.Stats
}

// TestCachedMatchesUncached is the engine's core property: for every tool,
// running a sampled Juliet subset through the cached + pooled pipeline gives
// byte-identical results (violations, faults, return values and all stats,
// including the RSS gauges) to the fresh-everything pipeline.
func TestCachedMatchesUncached(t *testing.T) {
	suite := sampleSuite(t, 3)
	for _, tool := range sanitizers.All() {
		eng, err := New(tool, Options{})
		if err != nil {
			t.Fatalf("engine.New(%s): %v", tool, err)
		}
		for _, cs := range suite {
			// Run each program twice through the engine so the second pass
			// exercises both the instrumentation cache and recycled
			// resources.
			for round := 0; round < 2; round++ {
				for _, v := range []struct {
					p      *prog.Program
					inputs [][]byte
					which  string
				}{{cs.Bad, cs.BadInputs, "bad"}, {cs.Good, cs.GoodInputs, "good"}} {
					got, err := eng.Run(v.p, v.inputs...)
					if err != nil {
						t.Fatalf("%s %s %s: engine run: %v", tool, cs.ID, v.which, err)
					}
					want := uncachedRun(t, tool, v.p, v.inputs)
					if !sameResult(got, want) {
						t.Fatalf("%s %s %s round %d: cached run diverged:\n got %+v\nwant %+v",
							tool, cs.ID, v.which, round, got, want)
					}
				}
			}
		}
		s := eng.Stats()
		if s.CacheHits == 0 {
			t.Errorf("%s: no cache hits after repeated runs (misses=%d)", tool, s.CacheMisses)
		}
		if s.Runs == 0 || s.ExecuteTime <= 0 {
			t.Errorf("%s: stats not recorded: %+v", tool, s)
		}
	}
}

// TestConcurrentEngineUse hammers one engine from many goroutines — shared
// cache entries, racing pool traffic — and checks every result against the
// sequential reference. Run with -race this is the engine's thread-safety
// proof.
func TestConcurrentEngineUse(t *testing.T) {
	suite := sampleSuite(t, 2)
	tool := sanitizers.CECSan
	eng, err := New(tool, Options{Workers: 8})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	want := make([]*interp.Result, len(suite))
	for i, cs := range suite {
		want[i] = uncachedRun(t, tool, cs.Bad, cs.BadInputs)
	}
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, rounds)
	for r := 0; r < rounds; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- eng.ForEach(len(suite), func(i int) error {
				got, err := eng.Run(suite[i].Bad, suite[i].BadInputs...)
				if err != nil {
					return err
				}
				if !sameResult(got, want[i]) {
					t.Errorf("case %d diverged under concurrency", i)
				}
				return nil
			})
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("ForEach: %v", err)
		}
	}
	if s := eng.Stats(); s.Runs != int64(rounds*len(suite)) {
		t.Errorf("Runs = %d, want %d", s.Runs, rounds*len(suite))
	}
}

// TestInstrumentCacheKeying verifies hits only happen for structurally
// identical programs and that hit/miss counters add up.
func TestInstrumentCacheKeying(t *testing.T) {
	build := func(off int64) *prog.Program {
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		buf := f.MallocBytes(16)
		f.Store(buf, off, f.Const(1), prog.Char())
		f.Free(buf)
		f.RetVoid()
		return pb.MustBuild()
	}
	eng, err := New(sanitizers.ASan, Options{})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	a1, a2, b := build(0), build(0), build(8)
	ia := eng.Instrument(a1)
	if eng.Instrument(a2) != ia {
		t.Error("structurally identical program did not hit the cache")
	}
	if eng.Instrument(b) == ia {
		t.Error("distinct program shared a cache entry")
	}
	s := eng.Stats()
	if s.CacheHits != 1 || s.CacheMisses != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", s.CacheHits, s.CacheMisses)
	}
	if s.InstrumentTime <= 0 {
		t.Error("instrument time not recorded")
	}
}

// TestFreshRuntimeMode checks the perf-harness mode: no pooling, every
// machine on untouched resources, results still identical.
func TestFreshRuntimeMode(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	buf := f.MallocBytes(1024)
	f.Store(buf, 0, f.Const(7), prog.Int64T())
	v := f.Load(buf, 0, prog.Int64T())
	f.Free(buf)
	f.Ret(v)
	p := pb.MustBuild()

	fresh, err := New(sanitizers.CECSan, Options{FreshRuntime: true})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	pooled, err := New(sanitizers.CECSan, Options{})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	fr, err := fresh.Run(p)
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	pr, err := pooled.Run(p)
	if err != nil {
		t.Fatalf("pooled run: %v", err)
	}
	if !sameResult(fr, pr) {
		t.Fatalf("fresh and pooled runs diverged:\n fresh %+v\npooled %+v", fr, pr)
	}
}

// TestRuntimeRecycling pins the engine's sanitizer pooling: sequential
// machines on a CECSan engine reuse the same runtime instance (its
// constructor's 3 MiB table allocation is the dominant per-run cost), an
// HWASan engine recycles too (ResetRuntime rewinds the tag RNG to the
// constructor seed, so the recycled tag stream is byte-identical to a fresh
// runtime's), and a FreshRuntime engine never recycles anything.
func TestRuntimeRecycling(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	buf := f.MallocBytes(64)
	f.Store(buf, 0, f.Const(1), prog.Int64T())
	f.Free(buf)
	f.Ret(f.Const(0))
	p := pb.MustBuild()

	runOnce := func(e *Engine) interface{} {
		m, err := e.NewMachine(p)
		if err != nil {
			t.Fatalf("NewMachine: %v", err)
		}
		rt := m.Runtime()
		if res := m.Run(); res.Err != nil || res.Violation != nil || res.Fault != nil {
			t.Fatalf("run failed: %+v", res)
		}
		m.Release()
		return rt
	}

	cec, err := New(sanitizers.CECSan, Options{})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	if first, second := runOnce(cec), runOnce(cec); first != second {
		t.Error("CECSan engine did not recycle the runtime across sequential machines")
	}

	hw, err := New(sanitizers.HWASan, Options{})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	if first, second := runOnce(hw), runOnce(hw); first != second {
		t.Error("HWASan engine did not recycle the runtime; ResetRuntime rewinds the tag RNG, so pooling is safe")
	}

	fresh, err := New(sanitizers.CECSan, Options{FreshRuntime: true})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	if first, second := runOnce(fresh), runOnce(fresh); first == second {
		t.Error("FreshRuntime engine recycled a runtime; perf mode must rebuild per machine")
	}
}

// TestHardenedPooledByteIdentity is the temporal-hardening pooling proof: a
// hardened runtime carries extra cross-run state (generation stamps in entry
// high slots, the delayed-reuse FIFO, quarantined chunks), and a recycled
// runtime must shed all of it on Reset. A multi-case batch — violating and
// clean programs interleaved, run twice — on a pooled hardened engine must
// produce results byte-identical (violations, return values, every stat
// including the temporal counters) to a FreshRuntime engine that rebuilds
// the 3 MiB table and quarantine per case.
func TestHardenedPooledByteIdentity(t *testing.T) {
	suite := sampleSuite(t, 2)
	for _, tool := range []sanitizers.Name{
		sanitizers.CECSanHardened, sanitizers.PACMemHardened, sanitizers.CryptSanHardened,
	} {
		pooled, err := New(tool, Options{})
		if err != nil {
			t.Fatalf("engine.New(%s): %v", tool, err)
		}
		fresh, err := New(tool, Options{FreshRuntime: true})
		if err != nil {
			t.Fatalf("engine.New(%s, fresh): %v", tool, err)
		}
		for round := 0; round < 2; round++ {
			for _, cs := range suite {
				for _, v := range []struct {
					p      *prog.Program
					inputs [][]byte
					which  string
				}{{cs.Bad, cs.BadInputs, "bad"}, {cs.Good, cs.GoodInputs, "good"}} {
					got, err := pooled.Run(v.p, v.inputs...)
					if err != nil {
						t.Fatalf("%s %s %s: pooled run: %v", tool, cs.ID, v.which, err)
					}
					want, err := fresh.Run(v.p, v.inputs...)
					if err != nil {
						t.Fatalf("%s %s %s: fresh run: %v", tool, cs.ID, v.which, err)
					}
					if !sameResult(got, want) {
						t.Fatalf("%s %s %s round %d: pooled hardened run diverged:\n got %+v\nwant %+v",
							tool, cs.ID, v.which, round, got, want)
					}
				}
			}
		}
	}
}
