package csrc

import (
	"fmt"

	"cecsan/prog"
)

// Compile translates C-like source into a prog.Program.
//
// Language summary:
//
//	struct Name { char buf[16]; int n; ptr next; }
//	global char src[4096];
//	global int flag = 1;
//	global char msg[] = "hello";
//
//	func main() {
//	    var p = malloc(64);          // byte buffer
//	    var s = new(Name);           // typed heap object
//	    var b = local char[16];      // stack array (alloca)
//	    p[3] = 'A';                  // typed indexing
//	    s->n = p[3];                 // scalar field access
//	    memcpy(s->buf, msg, 6);      // libc call (array fields decay)
//	    if (flag == 1) { ... } else { ... }
//	    for (i = 0; i < 16; i += 1) { b[i] = i; }
//	    while (x < 10) { x = x + 1; }
//	    var q = extern ext_identity(p);     // uninstrumented call
//	    var r = externret ext_identity(p);  // returns its first argument
//	    free(p); free(s);
//	    return 0;
//	}
//
// Types: char(1), short(2), int(4), long(8), wchar(4), ptr(8), declared
// structs, and `T[n]` arrays. Variables are 64-bit values; the compiler
// tracks the pointee type of pointer-producing expressions so indexing and
// field access emit properly typed and flagged IR (including the GEP
// sub-object flags CECSan's §II.D narrowing keys on).
func Compile(src string) (*prog.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, structs: map[string]*prog.Type{}, funcs: map[string]int{}}
	return p.compile()
}

// MustCompile is Compile that panics on error, for tests and examples.
func MustCompile(src string) *prog.Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// libcNames are callable as bare identifiers.
var libcNames = map[string]bool{
	"memcpy": true, "memmove": true, "memset": true, "memcmp": true,
	"memchr": true, "strlen": true, "strnlen": true, "strcpy": true,
	"strncpy": true, "strcat": true, "strncat": true, "strcmp": true,
	"strncmp": true, "wcslen": true, "wcsncpy": true, "wmemcpy": true,
	"wmemset": true, "fgets": true, "recv": true, "rand": true,
	"print_int": true, "print_str": true, "calloc": true, "realloc": true,
}

// binding is a named value in a function scope.
type binding struct {
	reg prog.Reg
	// pointee is the type this value points at, when known (nil for plain
	// integers). For array pointees, indexing uses the element type.
	pointee *prog.Type
}

// parser holds compilation state.
type parser struct {
	toks []token
	pos  int

	pb      *prog.ProgramBuilder
	structs map[string]*prog.Type
	funcs   map[string]int // name -> arity
	globals map[string]*prog.Type

	fb   *prog.FuncBuilder
	vars map[string]*binding
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("csrc:%d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

// accept consumes the token if it matches.
func (p *parser) accept(kind tokKind, text string) bool {
	if p.cur().kind == kind && (text == "" || p.cur().text == text) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required token.
func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.cur().kind != kind || (text != "" && p.cur().text != text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, p.errf("expected %q, found %q", want, p.cur().text)
	}
	return p.next(), nil
}

// compile runs two passes: declaration scan (function arities), then code
// generation.
func (p *parser) compile() (*prog.Program, error) {
	// Pass 1: function names and arities (for forward calls).
	save := p.pos
	for p.cur().kind != tokEOF {
		if p.cur().kind == tokIdent && p.cur().text == "func" {
			p.pos++
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			arity := 0
			for !p.accept(tokPunct, ")") {
				if arity > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				if _, err := p.expect(tokIdent, ""); err != nil {
					return nil, err
				}
				arity++
			}
			if _, dup := p.funcs[name.text]; dup {
				return nil, fmt.Errorf("csrc:%d: function %q defined twice", name.line, name.text)
			}
			p.funcs[name.text] = arity
		} else {
			p.pos++
		}
	}
	p.pos = save

	p.pb = prog.NewProgram()
	p.globals = map[string]*prog.Type{}
	for p.cur().kind != tokEOF {
		switch {
		case p.cur().kind == tokIdent && p.cur().text == "struct":
			if err := p.structDecl(); err != nil {
				return nil, err
			}
		case p.cur().kind == tokIdent && p.cur().text == "global":
			if err := p.globalDecl(); err != nil {
				return nil, err
			}
		case p.cur().kind == tokIdent && p.cur().text == "func":
			if err := p.funcDecl(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected struct, global or func, found %q", p.cur().text)
		}
	}
	return p.pb.Build()
}

// parseType parses a scalar/struct name plus optional [n] suffix.
func (p *parser) parseType() (*prog.Type, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	var t *prog.Type
	switch name.text {
	case "char":
		t = prog.Char()
	case "short":
		t = prog.Short()
	case "int":
		t = prog.Int()
	case "long":
		t = prog.Int64T()
	case "wchar":
		t = prog.WChar()
	case "ptr":
		t = prog.VoidPtr()
	default:
		st, ok := p.structs[name.text]
		if !ok {
			return nil, fmt.Errorf("csrc:%d: unknown type %q", name.line, name.text)
		}
		t = st
	}
	if p.accept(tokPunct, "[") {
		n, err := p.expect(tokInt, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		t = prog.ArrayOf(t, n.val)
	}
	return t, nil
}

// structDecl parses `struct Name { fields }`.
func (p *parser) structDecl() error {
	p.next() // struct
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if _, dup := p.structs[name.text]; dup {
		return fmt.Errorf("csrc:%d: struct %q defined twice", name.line, name.text)
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return err
	}
	var fields []prog.FieldSpec
	for !p.accept(tokPunct, "}") {
		ft, err := p.parseType()
		if err != nil {
			return err
		}
		fname, err := p.expect(tokIdent, "")
		if err != nil {
			return err
		}
		// Allow the array suffix after the field name too (C style).
		if p.accept(tokPunct, "[") {
			n, err := p.expect(tokInt, "")
			if err != nil {
				return err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return err
			}
			ft = prog.ArrayOf(ft, n.val)
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return err
		}
		fields = append(fields, prog.FieldSpec{Name: fname.text, Type: ft})
	}
	if len(fields) == 0 {
		return fmt.Errorf("csrc:%d: struct %q has no fields", name.line, name.text)
	}
	p.structs[name.text] = prog.StructOf(name.text, fields...)
	return nil
}

// globalDecl parses `global type name[n]? (= int|string)? ;`.
func (p *parser) globalDecl() error {
	p.next() // global
	t, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if p.accept(tokPunct, "[") {
		if p.accept(tokPunct, "]") {
			// size from the string initializer below
			t = nil
		} else {
			n, err := p.expect(tokInt, "")
			if err != nil {
				return err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return err
			}
			t = prog.ArrayOf(t, n.val)
		}
	}
	if p.accept(tokPunct, "=") {
		switch p.cur().kind {
		case tokInt:
			v := p.next().val
			if t == nil {
				return p.errf("integer initializer needs a sized type")
			}
			p.pb.GlobalInit(name.text, t, v)
		case tokString:
			s := p.next().text
			p.pb.GlobalBytes(name.text, []byte(s))
			t = prog.ArrayOf(prog.Char(), int64(len(s))+1)
		default:
			return p.errf("bad global initializer")
		}
	} else {
		if t == nil {
			return p.errf("unsized global %q needs a string initializer", name.text)
		}
		p.pb.Global(name.text, t)
	}
	p.globals[name.text] = t
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	return nil
}

// funcDecl parses a function definition.
func (p *parser) funcDecl() error {
	p.next() // func
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return err
	}
	var params []string
	for !p.accept(tokPunct, ")") {
		if len(params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return err
			}
		}
		pn, err := p.expect(tokIdent, "")
		if err != nil {
			return err
		}
		params = append(params, pn.text)
	}
	p.fb = p.pb.Function(name.text, len(params))
	p.vars = map[string]*binding{}
	for i, pn := range params {
		if _, dup := p.vars[pn]; dup {
			return fmt.Errorf("csrc: duplicate parameter %q", pn)
		}
		p.vars[pn] = &binding{reg: p.fb.Arg(i)}
	}
	return p.block()
}

// block parses `{ stmt* }`.
func (p *parser) block() error {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return err
	}
	for !p.accept(tokPunct, "}") {
		if p.cur().kind == tokEOF {
			return p.errf("unterminated block")
		}
		if err := p.stmt(); err != nil {
			return err
		}
	}
	return nil
}
