package asan

import (
	"testing"

	"cecsan/internal/alloc"
	"cecsan/internal/mem"
	"cecsan/internal/rt"
)

// TestNoLiveAliasingUnderEviction: with quarantine eviction active, no two
// live chunks may ever overlap.
func TestNoLiveAliasingUnderEviction(t *testing.T) {
	opts := DefaultOptions()
	opts.QuarantineBytes = 32 << 10
	r := New(opts)
	space, _ := mem.NewSpace(47)
	env := rt.Env{Space: space, Heap: alloc.NewHeap(), Globals: alloc.NewGlobals()}
	if err := r.Attach(&env); err != nil {
		t.Fatal(err)
	}
	live := map[uint64]bool{}
	var order []uint64
	rng := uint64(12345)
	for i := 0; i < 60000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		if rng%3 != 0 || len(order) == 0 {
			p, _, err := r.Malloc(48)
			if err != nil {
				t.Fatal(err)
			}
			if live[p] {
				t.Fatalf("iteration %d: Malloc returned live pointer %#x", i, p)
			}
			live[p] = true
			order = append(order, p)
		} else {
			idx := int(rng>>32) % len(order)
			p := order[idx]
			order = append(order[:idx], order[idx+1:]...)
			delete(live, p)
			if v := r.Free(p, rt.PtrMeta{}); v != nil {
				t.Fatalf("iteration %d: Free(%#x): %v", i, p, v)
			}
		}
	}
}
