// Quickstart: build a tiny C-like program with a heap overflow, run it
// under CECSan, and print the report — the 60-second tour of the public
// API.
package main

import (
	"fmt"
	"os"

	"cecsan"
	"cecsan/prog"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// The C program this builds:
	//
	//	int main(void) {
	//	    char *buf = malloc(16);
	//	    for (int i = 0; i <= 16; i++)   // off by one
	//	        buf[i] = 'A';
	//	    free(buf);
	//	}
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	buf := f.MallocBytes(16)
	f.ForRange(prog.ConstOperand(0), prog.ConstOperand(17), 1, func(i prog.Reg) {
		f.Store(f.ElemPtr(buf, prog.Char(), i), 0, f.Const('A'), prog.Char())
	})
	f.Free(buf)
	f.RetVoid()
	p, err := pb.Build()
	if err != nil {
		return err
	}

	// Run it under every sanitizer and compare.
	for _, name := range cecsan.SanitizerNames() {
		res, err := cecsan.Run(p, cecsan.Config{Sanitizer: name})
		if err != nil {
			return err
		}
		switch {
		case res.Violation != nil:
			fmt.Printf("%-16s DETECTED: %s in %s segment (checks executed: %d)\n",
				name, res.Violation.Kind, res.Violation.Seg, res.Stats.ChecksExecuted)
		default:
			fmt.Printf("%-16s silent (program completed)\n", name)
		}
	}
	return nil
}
