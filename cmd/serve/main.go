// Command serve runs a long-lived traffic campaign: a YAML workload spec
// (internal/traffic) is expanded into a deterministic request stream of
// heterogeneous client classes, admitted through a bounded queue into
// per-class engine pools, with deadline-miss, shed and per-class latency
// percentile accounting.
//
// Usage:
//
//	serve -spec examples/workloads/interactive-batch.yaml
//	      [-seed N] [-workers N] [-max-requests N] [-duration 30s]
//	      [-speedup X] [-queue N] [-min-completed N]
//	      [-json BENCH_serve.json] [-progress]
//	      [-metrics-json m.json] [-trace t.json] [-http 127.0.0.1:0]
//
// With -speedup X the spec's virtual arrival schedule replays compressed
// X-fold on the wall clock (open loop: a full admission queue sheds).
// Without it the campaign runs closed-loop — requests are admitted as
// fast as the workers drain them — which is the throughput-measurement
// mode CI gates on.
//
// The request stream (and the stream_digest in the summary) depends only
// on (spec, seed): rerunning with a different -workers or -speedup
// changes scheduling and latency, never the traffic.
//
// Exit status:
//
//	0  campaign completed
//	1  -min-completed violated (some class completed fewer requests)
//	2  spec or internal error
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cecsan/internal/cliutil"
	"cecsan/internal/traffic"
)

const (
	exitOK       = 0
	exitShort    = 1
	exitInternal = 2
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
	}
	os.Exit(code)
}

// benchRecord is the BENCH_serve.json payload: run metadata plus the
// campaign summary.
type benchRecord struct {
	Bench string `json:"bench"`
	Spec  string `json:"spec"`
	*traffic.ServeResult
}

func run() (int, error) {
	specPath := flag.String("spec", "", "workload spec YAML (required)")
	seed := cliutil.SeedFlag(0, "override the spec's campaign seed (0 = use spec)")
	workers := cliutil.WorkersFlag()
	maxRequests := flag.Int("max-requests", 0, "stop after N requests (0 = spec's max_requests)")
	duration := flag.Duration("duration", 0, "stop admission after this wall time (0 = until stream ends)")
	speedup := flag.Float64("speedup", 0, "replay the virtual arrival schedule compressed X-fold (0 = closed loop)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
	minCompleted := flag.Int("min-completed", 0, "exit 1 unless every class completes at least N requests")
	jsonPath := cliutil.JSONFlag("write the BENCH_serve.json campaign summary to this path")
	progress := flag.Bool("progress", false, "print a progress line every 256 processed requests")
	obsFlags := cliutil.ObsFlagsCmd()
	flag.Parse()

	if *specPath == "" {
		flag.Usage()
		return exitInternal, fmt.Errorf("-spec is required")
	}
	spec, err := traffic.Load(*specPath)
	if err != nil {
		return exitInternal, err
	}
	if spec.MaxRequests == 0 && *maxRequests == 0 && *duration == 0 {
		fmt.Fprintln(os.Stderr, "serve: unbounded campaign (no -duration / -max-requests); stop with ^C")
	}

	observer, srv, err := obsFlags.Build()
	if err != nil {
		return exitInternal, err
	}

	stop := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "serve: stopping (signal)")
		close(stop)
		signal.Stop(sigCh)
	}()

	cfg := traffic.ServeConfig{
		Spec:        spec,
		Seed:        *seed,
		Workers:     cliutil.ResolveWorkers(*workers),
		MaxRequests: *maxRequests,
		Duration:    *duration,
		QueueDepth:  *queue,
		Speedup:     *speedup,
		Obs:         observer,
		Stop:        stop,
	}
	if *progress {
		start := time.Now()
		cfg.Progress = func(done int) {
			fmt.Fprintf(os.Stderr, "serve: %d requests processed (%.0f/sec)\n",
				done, float64(done)/time.Since(start).Seconds())
		}
	}

	res, err := traffic.Serve(cfg)
	if err != nil {
		return exitInternal, err
	}
	if ferr := obsFlags.Finish(observer, srv, 0); ferr != nil && err == nil {
		err = ferr
	}

	fmt.Printf("serve: %s workers=%d elapsed=%.2fs generated=%d completed=%d faults=%d shed=%d misses=%d (%.0f req/sec, cache hit %.3f)\n",
		*specPath, res.Workers, res.ElapsedSec, res.Generated, res.Completed,
		res.Faults, res.Shed, res.DeadlineMisses, res.RequestsPerSec, res.CacheHitRate)
	for _, cs := range res.Classes {
		fmt.Printf("  class %-14s tool=%-16s completed=%-6d detected=%-4d shed=%-5d misses=%-5d p50=%dus p95=%dus p99=%dus\n",
			cs.Class, cs.Tool, cs.Completed, cs.Detected, cs.Shed, cs.DeadlineMisses,
			cs.P50us, cs.P95us, cs.P99us)
	}
	fmt.Printf("  stream digest %s\n", res.StreamDigest)

	if *jsonPath != "" {
		rec := benchRecord{Bench: "serve", Spec: *specPath, ServeResult: res}
		if werr := cliutil.WriteJSON(*jsonPath, rec); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return exitInternal, err
	}
	if *minCompleted > 0 {
		for _, cs := range res.Classes {
			if cs.Completed < int64(*minCompleted) {
				return exitShort, fmt.Errorf("class %q completed %d < %d requests",
					cs.Class, cs.Completed, *minCompleted)
			}
		}
	}
	return exitOK, nil
}
