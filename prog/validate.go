package prog

import (
	"errors"
	"fmt"
)

// Validate checks a freshly built (uninstrumented) program for structural
// errors: dangling branch targets, undefined call targets and globals,
// malformed access sizes, arity mismatches, and hand-authored
// instrumentation opcodes. It returns all problems joined into one error.
func Validate(p *Program) error {
	var errs []error
	addf := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	entry, ok := p.Funcs[p.Entry]
	if !ok {
		addf("prog: entry function %q not defined", p.Entry)
	} else if entry.NumParams != 0 {
		addf("prog: entry function %q must take no parameters, has %d", p.Entry, entry.NumParams)
	}

	globals := make(map[string]bool, len(p.Globals))
	for _, g := range p.Globals {
		if globals[g.Name] {
			addf("prog: global %q declared twice", g.Name)
		}
		globals[g.Name] = true
		if g.Type == nil {
			addf("prog: global %q has no type", g.Name)
		} else if g.InitBytes != nil && int64(len(g.InitBytes)) > g.Type.Size() {
			addf("prog: global %q init bytes (%d) exceed type size (%d)", g.Name, len(g.InitBytes), g.Type.Size())
		}
	}

	for _, name := range p.Order {
		f := p.Funcs[name]
		validateFunc(p, f, globals, addf)
	}
	return errors.Join(errs...)
}

func validateFunc(p *Program, f *Func, globals map[string]bool, addf func(string, ...any)) {
	n := len(f.Code)
	if n == 0 {
		addf("prog: %s: empty function", f.Name)
		return
	}
	if last := f.Code[n-1].Op; last != OpRet && last != OpBr {
		addf("prog: %s: function does not end in a terminator", f.Name)
	}

	checkReg := func(pc int, what string, r Reg, allowNone bool) {
		if r == NoReg {
			if !allowNone {
				addf("prog: %s@%d: missing %s register", f.Name, pc, what)
			}
			return
		}
		if r < 0 || int(r) >= f.NumRegs {
			addf("prog: %s@%d: %s register r%d out of range [0,%d)", f.Name, pc, what, r, f.NumRegs)
		}
	}
	checkTarget := func(pc int, t int64) {
		if t < 0 || t >= int64(n) {
			addf("prog: %s@%d: branch target %d out of range [0,%d)", f.Name, pc, t, n)
		}
	}
	checkSize := func(pc int, s int64) {
		switch s {
		case 1, 2, 4, 8:
		default:
			addf("prog: %s@%d: access size %d not in {1,2,4,8}", f.Name, pc, s)
		}
	}

	for pc := range f.Code {
		in := &f.Code[pc]
		switch in.Op {
		case OpConst:
			checkReg(pc, "dst", in.Dst, false)
		case OpMov:
			checkReg(pc, "dst", in.Dst, false)
			checkReg(pc, "src", in.A, false)
		case OpBin:
			checkReg(pc, "dst", in.Dst, false)
			checkReg(pc, "lhs", in.A, false)
			checkReg(pc, "rhs", in.B, false)
			if BinOp(in.X) < BinAdd || BinOp(in.X) > BinShr {
				addf("prog: %s@%d: invalid binop %d", f.Name, pc, in.X)
			}
		case OpCmp:
			checkReg(pc, "dst", in.Dst, false)
			checkReg(pc, "lhs", in.A, false)
			checkReg(pc, "rhs", in.B, false)
			if CmpPred(in.X) < CmpEq || CmpPred(in.X) > CmpUGe {
				addf("prog: %s@%d: invalid predicate %d", f.Name, pc, in.X)
			}
		case OpBr:
			checkTarget(pc, in.Imm)
		case OpCondBr:
			checkReg(pc, "cond", in.A, false)
			checkTarget(pc, in.Imm)
		case OpAlloca:
			checkReg(pc, "dst", in.Dst, false)
			if in.Type == nil {
				addf("prog: %s@%d: alloca without type", f.Name, pc)
			}
		case OpMalloc:
			checkReg(pc, "dst", in.Dst, false)
			checkReg(pc, "size", in.A, true)
			if in.A == NoReg && in.Size <= 0 {
				addf("prog: %s@%d: malloc with non-positive constant size %d", f.Name, pc, in.Size)
			}
		case OpFree:
			checkReg(pc, "ptr", in.A, false)
		case OpLoad:
			checkReg(pc, "dst", in.Dst, false)
			checkReg(pc, "ptr", in.A, false)
			checkSize(pc, in.Size)
		case OpStore:
			checkReg(pc, "ptr", in.A, false)
			checkReg(pc, "val", in.B, false)
			checkSize(pc, in.Size)
		case OpGEP:
			checkReg(pc, "dst", in.Dst, false)
			checkReg(pc, "base", in.A, false)
			checkReg(pc, "index", in.B, true)
		case OpGlobalAddr:
			checkReg(pc, "dst", in.Dst, false)
			if !globals[in.Sym] {
				addf("prog: %s@%d: undefined global %q", f.Name, pc, in.Sym)
			}
		case OpCall:
			checkReg(pc, "dst", in.Dst, false)
			callee, ok := p.Funcs[in.Sym]
			if !ok {
				addf("prog: %s@%d: undefined function %q", f.Name, pc, in.Sym)
			} else if len(in.Args) != callee.NumParams {
				addf("prog: %s@%d: call %q with %d args, want %d", f.Name, pc, in.Sym, len(in.Args), callee.NumParams)
			}
			for _, a := range in.Args {
				checkReg(pc, "arg", a, false)
			}
		case OpCallExternal, OpLibc:
			checkReg(pc, "dst", in.Dst, false)
			if in.Sym == "" {
				addf("prog: %s@%d: call without symbol", f.Name, pc)
			}
			for _, a := range in.Args {
				checkReg(pc, "arg", a, false)
			}
		case OpParFor:
			checkReg(pc, "lo", in.A, false)
			checkReg(pc, "hi", in.B, false)
			callee, ok := p.Funcs[in.Sym]
			if !ok {
				addf("prog: %s@%d: undefined parfor body %q", f.Name, pc, in.Sym)
			} else if callee.NumParams != 1 {
				addf("prog: %s@%d: parfor body %q must take 1 param, has %d", f.Name, pc, in.Sym, callee.NumParams)
			}
			if in.Imm < 1 || in.Imm > 64 {
				addf("prog: %s@%d: parfor thread count %d out of range [1,64]", f.Name, pc, in.Imm)
			}
		case OpRet:
			checkReg(pc, "val", in.A, true)
		case OpCheckAccess, OpCheckPeriodic, OpSubPtr, OpSubRelease, OpStripPtr, OpRetagPtr,
			OpPtrMetaCopy, OpPtrMetaLoad, OpPtrMetaStore:
			addf("prog: %s@%d: instrumentation opcode %d in hand-authored program", f.Name, pc, in.Op)
		default:
			addf("prog: %s@%d: invalid opcode %d", f.Name, pc, in.Op)
		}
	}

	for li, l := range f.Loops {
		if l.HeadStart < 0 || l.HeadStart > l.HeadEnd || l.HeadEnd > l.BodyStart ||
			l.BodyStart > l.BodyEnd || l.BodyEnd > l.LatchEnd || l.LatchEnd > n {
			addf("prog: %s: loop %d has inconsistent ranges %+v", f.Name, li, l)
		}
	}
}
