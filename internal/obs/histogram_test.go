package obs

import (
	"math"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// One value per boundary-interesting spot: zero, bucket edges, a
	// negative (clamps to the zero bucket), and a huge value.
	for _, v := range []int64{0, -3, 1, 2, 3, 4, 7, 8, math.MaxInt64} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d, want 9", h.Count())
	}
	_, _, bs := h.snapshot()
	got := map[int64]int64{}
	for _, b := range bs {
		got[b.Le] = b.Count
	}
	want := map[int64]int64{
		0:             2, // 0 and the clamped -3
		1:             1, // 1
		3:             2, // 2, 3
		7:             2, // 4, 7
		15:            1, // 8
		math.MaxInt64: 1,
	}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for le, n := range want {
		if got[le] != n {
			t.Fatalf("bucket le=%d count = %d, want %d (all: %v)", le, got[le], n, got)
		}
	}
	var total int64
	for _, b := range bs {
		total += b.Count
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, want count %d", total, h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// 100 observations of 100: every quantile lands in the [64,127]
	// bucket that holds them.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		if v < 64 || v > 127 {
			t.Fatalf("q=%v = %d, want within [64,127]", q, v)
		}
	}
	// Add a small tail of much larger values: p50 stays in the low
	// bucket, p99 moves to the high one, and quantiles are monotone.
	for i := 0; i < 2; i++ {
		h.Observe(100000)
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if p50 > 127 {
		t.Fatalf("p50 = %d, want low bucket", p50)
	}
	if p99 < 65536 {
		t.Fatalf("p99 = %d, want high bucket", p99)
	}
	if p95 > p99 || p50 > p95 {
		t.Fatalf("quantiles not monotone: %d %d %d", p50, p95, p99)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	// An empty histogram answers 0 for every q, including the boundaries:
	// latency gauges read this before the first observation lands.
	for _, q := range []float64{0, 0.001, 0.5, 0.99, 1.0} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, v)
		}
	}
}

func TestHistogramQuantileSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(5)
	// With one observation every quantile resolves to the same rank, so
	// every q must answer identically, and the estimate must stay inside
	// the log2 bucket that holds the value (here (3, 7] for 5).
	want := h.Quantile(0.5)
	if want < 4 || want > 7 {
		t.Fatalf("single-observation quantile = %d, want within (3, 7]", want)
	}
	for _, q := range []float64{0.001, 0.25, 0.99, 1.0} {
		if v := h.Quantile(q); v != want {
			t.Fatalf("Quantile(%v) = %d, want %d (single observation)", q, v, want)
		}
	}
}

func TestHistogramQuantileFullRange(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	// q=1.0 is the maximum-rank estimate: it must land in the bucket
	// holding the largest observation ((511, 1023] for 1000) and never
	// exceed its upper bound.
	top := h.Quantile(1.0)
	if top < 512 || top > 1023 {
		t.Fatalf("Quantile(1.0) = %d, want within (511, 1023]", top)
	}
	// q<=0 clamps to rank 1 (the minimum), same as the smallest positive q.
	if h.Quantile(0) != h.Quantile(0.0001) {
		t.Fatalf("Quantile(0) = %d, Quantile(0.0001) = %d; q<=0 must clamp to rank 1",
			h.Quantile(0), h.Quantile(0.0001))
	}
	// Quantile estimates are monotone non-decreasing across a fine q sweep.
	prev := int64(-1)
	for q := 0.05; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %d < Quantile(%v) = %d: not monotone", q, v, q-0.05, prev)
		}
		prev = v
	}
}

func TestHistogramExportImportRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 3, 90, 90, 1500, 1 << 40} {
		h.Observe(v)
	}
	st := h.Export()

	var r Histogram
	if err := r.Import(st); err != nil {
		t.Fatal(err)
	}
	if r.Count() != h.Count() || r.Sum() != h.Sum() {
		t.Fatalf("restored count/sum = %d/%d, want %d/%d", r.Count(), r.Sum(), h.Count(), h.Sum())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if r.Quantile(q) != h.Quantile(q) {
			t.Fatalf("Quantile(%v): restored %d, original %d", q, r.Quantile(q), h.Quantile(q))
		}
	}

	// Restored histograms keep observing on top of the imported state.
	h.Observe(7)
	r.Observe(7)
	if r.Count() != h.Count() || r.Quantile(0.5) != h.Quantile(0.5) {
		t.Fatal("post-import observations diverged from the original")
	}

	// Oversized state (layout change without a version bump) is refused.
	st.Buckets = make([]int64, 200)
	if err := r.Import(st); err == nil {
		t.Fatal("Import must reject state with more buckets than the layout")
	}
}
