// Package alloc implements the machine's stock memory allocators: a
// glibc-style heap, per-thread stacks and a static globals segment.
//
// CECSan's compatibility claim (§I, §II) is that it does NOT replace the
// allocator — unlike ASan, which substitutes its own. To exercise that claim
// every sanitizer in this repository, including the ASan model, sits on top
// of this one allocator; ASan's redzones and quarantine are layered above it
// exactly the way its runtime layers them above the system allocator.
//
// Like glibc, the heap recycles freed chunks immediately (LIFO per size
// class) and performs no integrity checking: freeing a pointer that is not a
// live chunk base is silent undefined behaviour (a counter records it). That
// silence is what makes undetected temporal bugs "succeed" in the test
// harness, mirroring real execution.
package alloc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Segment layout. Everything sits below mem.SpanSize (4 GiB); see the mem
// package for why dereferencing a still-tagged pointer then faults.
const (
	// GlobalsBase is the start of the static data segment.
	GlobalsBase uint64 = 16 << 20
	// GlobalsLimit is the end of the static data segment.
	GlobalsLimit uint64 = 64 << 20
	// StackBase is the start of the stack region; each thread carves a
	// fixed-size stack out of it.
	StackBase uint64 = 64 << 20
	// StackLimit is the end of the stack region.
	StackLimit uint64 = 256 << 20
	// HeapBase is the start of the heap segment.
	HeapBase uint64 = 256 << 20
	// HeapLimit is the end of the heap segment.
	HeapLimit uint64 = 4096 << 20
	// ThreadStackSize is the size of one thread's stack.
	ThreadStackSize uint64 = 8 << 20
)

// Align is the allocation alignment guarantee, matching glibc's 16 bytes.
const Align = 16

// ErrOutOfMemory is returned when a segment is exhausted.
var ErrOutOfMemory = errors.New("alloc: out of memory")

// Segment identifies which region an address belongs to.
type Segment int

// Segment values. They start at 1 so the zero value is recognizably unset.
const (
	SegNone Segment = iota
	SegGlobals
	SegStack
	SegHeap
)

// String returns the segment name.
func (s Segment) String() string {
	switch s {
	case SegGlobals:
		return "global"
	case SegStack:
		return "stack"
	case SegHeap:
		return "heap"
	default:
		return "unmapped"
	}
}

// SegmentOf classifies a raw (untagged) address.
func SegmentOf(addr uint64) Segment {
	switch {
	case addr >= GlobalsBase && addr < GlobalsLimit:
		return SegGlobals
	case addr >= StackBase && addr < StackLimit:
		return SegStack
	case addr >= HeapBase && addr < HeapLimit:
		return SegHeap
	default:
		return SegNone
	}
}

// roundUp rounds n up to the next multiple of Align.
func roundUp(n int64) int64 {
	if n <= 0 {
		n = 1
	}
	return (n + Align - 1) &^ (Align - 1)
}

// Heap is the glibc-analogue heap allocator: bump allocation from a segment
// plus LIFO size-class free lists for immediate reuse. It is safe for
// concurrent use (one arena lock, like a single-arena malloc).
type Heap struct {
	mu   sync.Mutex
	brk  uint64 // bump pointer
	free map[int64][]uint64

	live map[uint64]int64 // base -> rounded size, live chunks only

	liveBytes  int64
	peakLive   int64
	liveCount  int64
	allocCount int64
	freeErrors int64 // invalid/double frees silently ignored (UB)

	// faultHook, when set, is consulted before each allocation; a non-nil
	// return fails the allocation with that error. Fault injection installs
	// it to exercise OOM paths deterministically; Reset clears it.
	faultHook atomic.Pointer[func() error]
}

// NewHeap returns an empty heap over the heap segment.
func NewHeap() *Heap {
	return &Heap{
		brk:  HeapBase,
		free: make(map[int64][]uint64),
		live: make(map[uint64]int64),
	}
}

// Alloc returns the base address of a new chunk of at least size bytes,
// 16-byte aligned. Size is rounded up to the allocator's class size.
func (h *Heap) Alloc(size int64) (uint64, error) {
	if hook := h.faultHook.Load(); hook != nil {
		// Called before the lock is taken: a hook that panics (injected
		// runtime-bug simulation) must not leave the arena lock held.
		if err := (*hook)(); err != nil {
			return 0, err
		}
	}
	rs := roundUp(size)
	h.mu.Lock()
	defer h.mu.Unlock()

	var base uint64
	if fl := h.free[rs]; len(fl) > 0 {
		base = fl[len(fl)-1]
		h.free[rs] = fl[:len(fl)-1]
	} else {
		if h.brk+uint64(rs) > HeapLimit {
			return 0, fmt.Errorf("%w: heap segment exhausted (brk=%#x, request=%d)", ErrOutOfMemory, h.brk, rs)
		}
		base = h.brk
		h.brk += uint64(rs)
	}
	h.live[base] = rs
	h.liveBytes += rs
	h.liveCount++
	h.allocCount++
	if h.liveBytes > h.peakLive {
		h.peakLive = h.liveBytes
	}
	return base, nil
}

// Reset returns the heap to its freshly-constructed state: the bump pointer
// rewinds to the segment base and every free list, live chunk and counter is
// dropped. The caller must guarantee no machine is still allocating from the
// heap. A reset heap hands out byte-identical addresses to a new one.
func (h *Heap) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.brk = HeapBase
	clear(h.free)
	clear(h.live)
	h.liveBytes = 0
	h.peakLive = 0
	h.liveCount = 0
	h.allocCount = 0
	h.freeErrors = 0
	h.faultHook.Store(nil)
}

// SetFaultHook installs (or, with nil, removes) the pre-allocation fault
// hook. The caller must not race it with allocations.
func (h *Heap) SetFaultHook(f func() error) {
	if f == nil {
		h.faultHook.Store(nil)
		return
	}
	h.faultHook.Store(&f)
}

// LiveBytes returns the bytes currently allocated (rounded sizes). The
// machine's heap-budget check reads it on every allocation, so it takes the
// lock once rather than snapshotting all counters via Stats.
func (h *Heap) LiveBytes() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.liveBytes
}

// Free releases the chunk whose base address is addr. Freeing anything that
// is not a live chunk base is undefined behaviour: it is silently ignored
// and counted, just as glibc may silently corrupt its arena.
func (h *Heap) Free(addr uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	rs, ok := h.live[addr]
	if !ok {
		h.freeErrors++
		return false
	}
	delete(h.live, addr)
	h.liveBytes -= rs
	h.liveCount--
	h.free[rs] = append(h.free[rs], addr)
	return true
}

// Lookup reports whether addr is the base of a live chunk and, if so, its
// rounded size. Sanitizer runtimes that shadow the allocator (ASan's
// interceptor model) use this the way ASan consults its own chunk headers.
func (h *Heap) Lookup(addr uint64) (int64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rs, ok := h.live[addr]
	return rs, ok
}

// Stats is a snapshot of heap counters.
type Stats struct {
	LiveBytes  int64
	PeakLive   int64
	LiveCount  int64
	AllocCount int64
	FreeErrors int64
	BrkBytes   int64 // total segment bytes ever bumped
}

// Stats returns a consistent snapshot of the heap counters.
func (h *Heap) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Stats{
		LiveBytes:  h.liveBytes,
		PeakLive:   h.peakLive,
		LiveCount:  h.liveCount,
		AllocCount: h.allocCount,
		FreeErrors: h.freeErrors,
		BrkBytes:   int64(h.brk - HeapBase),
	}
}

// Stack is one thread's bump stack (grown upward for simplicity; direction
// does not matter to any sanitizer here). Frames save and restore the stack
// pointer; allocas are served from the current frame. A Stack is used by a
// single thread and needs no lock.
type Stack struct {
	base  uint64
	limit uint64
	sp    uint64
	peak  uint64
}

// NewStack carves the tid-th thread stack out of the stack region.
func NewStack(tid int) (*Stack, error) {
	base := StackBase + uint64(tid)*ThreadStackSize
	if base+ThreadStackSize > StackLimit {
		return nil, fmt.Errorf("alloc: thread id %d exceeds stack region", tid)
	}
	return &Stack{base: base, limit: base + ThreadStackSize, sp: base}, nil
}

// Mark returns the current stack pointer, to be passed to Release at frame
// exit.
func (s *Stack) Mark() uint64 { return s.sp }

// Release pops everything allocated since the corresponding Mark.
func (s *Stack) Release(mark uint64) { s.sp = mark }

// Alloc reserves size bytes, 16-byte aligned, in the current frame.
func (s *Stack) Alloc(size int64) (uint64, error) {
	rs := roundUp(size)
	if s.sp+uint64(rs) > s.limit {
		return 0, fmt.Errorf("%w: stack overflow (sp=%#x)", ErrOutOfMemory, s.sp)
	}
	addr := s.sp
	s.sp += uint64(rs)
	if s.sp-s.base > s.peak {
		s.peak = s.sp - s.base
	}
	return addr, nil
}

// PeakBytes returns the high-water mark of this stack.
func (s *Stack) PeakBytes() int64 { return int64(s.peak) }

// Reset rewinds the stack to empty and clears its high-water mark.
func (s *Stack) Reset() {
	s.sp = s.base
	s.peak = 0
}

// Globals lays out the static data segment at program load.
type Globals struct {
	mu     sync.Mutex
	next   uint64
	byName map[string]GlobalDef
	order  []string
}

// GlobalDef records one laid-out global object.
type GlobalDef struct {
	Name string
	Addr uint64
	Size int64
}

// NewGlobals returns an empty globals layout.
func NewGlobals() *Globals {
	return &Globals{next: GlobalsBase, byName: make(map[string]GlobalDef)}
}

// Define places a global of the given size and returns its address. Defining
// the same name twice is a linker error.
func (g *Globals) Define(name string, size int64) (uint64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.byName[name]; dup {
		return 0, fmt.Errorf("alloc: global %q defined twice", name)
	}
	rs := roundUp(size)
	if g.next+uint64(rs) > GlobalsLimit {
		return 0, fmt.Errorf("%w: globals segment exhausted", ErrOutOfMemory)
	}
	def := GlobalDef{Name: name, Addr: g.next, Size: size}
	g.byName[name] = def
	g.order = append(g.order, name)
	g.next += uint64(rs)
	return def.Addr, nil
}

// Reset returns the layout to its freshly-constructed state, forgetting all
// definitions. A reset layout lays out byte-identical addresses to a new one.
func (g *Globals) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.next = GlobalsBase
	clear(g.byName)
	g.order = g.order[:0]
}

// Lookup returns the definition of a named global.
func (g *Globals) Lookup(name string) (GlobalDef, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	def, ok := g.byName[name]
	return def, ok
}

// All returns the definitions in layout order.
func (g *Globals) All() []GlobalDef {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]GlobalDef, 0, len(g.order))
	for _, n := range g.order {
		out = append(out, g.byName[n])
	}
	return out
}

// TotalBytes returns the bytes laid out so far.
func (g *Globals) TotalBytes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return int64(g.next - GlobalsBase)
}
