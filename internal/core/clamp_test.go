package core

import (
	"testing"
)

// TestClampLimitsAllocatable pins the fault-injection clamp semantics:
// Clamp(n) leaves exactly n allocatable entries (indices 1..n — the reserved
// entry 0 is excluded), allocation n+1 fails through the normal exhaustion
// path, and Clamp(0) lifts the cap.
func TestClampLimitsAllocatable(t *testing.T) {
	tbl := newTable(t)
	tbl.Clamp(4)
	for i := 1; i <= 4; i++ {
		idx, ok := tbl.Allocate(0x1000, 0x1040, false)
		if !ok {
			t.Fatalf("Allocate #%d failed under clamp 4", i)
		}
		if idx == 0 || idx > 4 {
			t.Fatalf("Allocate #%d = index %d, want 1..4", i, idx)
		}
	}
	if idx, ok := tbl.Allocate(0x1000, 0x1040, false); ok {
		t.Fatalf("Allocate #5 succeeded (index %d) under clamp 4", idx)
	}
	if got := tbl.Stats().Exhausted; got != 1 {
		t.Fatalf("Exhausted = %d, want 1", got)
	}
	// Freeing makes room again under the same clamp.
	tbl.Free(2)
	if _, ok := tbl.Allocate(0x2000, 0x2040, false); !ok {
		t.Fatal("Allocate after Free failed under clamp 4")
	}
	// Lifting the clamp restores full capacity.
	tbl.Clamp(0)
	if _, ok := tbl.Allocate(0x3000, 0x3040, false); !ok {
		t.Fatal("Allocate failed after lifting the clamp")
	}
}

// TestClampClearedByReset pins the run-state contract: a clamp is injected
// per-run configuration, so Reset must clear it and leave the table
// indistinguishable from fresh construction — the property the engine's
// runtime pool depends on after a fault-injected case.
func TestClampClearedByReset(t *testing.T) {
	dirty := newTable(t)
	dirty.Clamp(3)
	for i := 0; i < 5; i++ {
		dirty.Allocate(0x1000, 0x1040, false) // two of these exhaust
	}
	dirty.Reset()

	fresh := newTable(t)
	if got, want := dirty.Stats(), fresh.Stats(); got != want {
		t.Errorf("Stats after Reset = %+v, want %+v", got, want)
	}
	// Replay far past the old clamp: indices, bounds and outcomes must match
	// a never-clamped table exactly.
	for i := uint64(1); i <= 40; i++ {
		gi, gok := dirty.Allocate(0x2000*i, 0x2000*i+32, false)
		wi, wok := fresh.Allocate(0x2000*i, 0x2000*i+32, false)
		if gi != wi || gok != wok {
			t.Fatalf("replay Allocate #%d: reset table gave (%d,%v), fresh gave (%d,%v)", i, gi, gok, wi, wok)
		}
		glow, ghigh := dirty.Load(gi)
		wlow, whigh := fresh.Load(wi)
		if glow != wlow || ghigh != whigh {
			t.Fatalf("replay entry %d bounds differ: [%#x,%#x) vs [%#x,%#x)", gi, glow, ghigh, wlow, whigh)
		}
	}
	if got, want := dirty.Stats(), fresh.Stats(); got != want {
		t.Errorf("Stats after replay = %+v, want %+v", got, want)
	}
}
